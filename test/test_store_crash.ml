(* Deterministic crash-recovery harness for the log-structured store.

   A fixed operation sequence runs once under an empty fault plan to
   count every crossing of every storage fault point; then, for each
   (point, crossing, fault-kind) triple, the sequence replays in a
   fresh directory with exactly that fault planted.  A simulated kill
   ([Chaos.Crashed]) abandons the handle mid-flight — no sync, no
   cleanup — and recovery must produce a state equal to the
   acknowledged-operations oracle, with the in-flight operation either
   fully present or fully absent (atomicity), never half of it.  The
   run then continues on the recovered handle and the final state must
   match the oracle again after one more clean reopen. *)

open Perso_store
module Chaos = Relal.Chaos
module SMap = Map.Make (String)

let fresh_dir () =
  let f = Filename.temp_file "storecrash" "" in
  Sys.remove f;
  f

let config = { Store.segment_bytes = 96; compact_segments = 2; fsync = false }

let e cond degree = { Codec.cond; degree }

(* ------------------------------ workload ----------------------------- *)

type op =
  | Save of string * int * Codec.entry list
  | Delete of string * int
  | Compact

let ops =
  let pad i = e (Printf.sprintf "COND.%02d = 'x'" i) (0.1 +. (0.01 *. float_of_int i)) in
  [
    Save ("julie", 1, [ pad 1; pad 2 ]);
    Save ("bob", 1, [ pad 3 ]);
    Save ("julie", 2, [ pad 4 ]);
    Save ("ann", 1, [ pad 5; pad 6; pad 7 ]);
    Save ("bob", 2, [ pad 8 ]);
    Delete ("ann", 2);
    Save ("carl", 1, [ pad 9 ]);
    Save ("julie", 3, [ pad 10; pad 11 ]);
    Compact;
    Save ("dana", 1, [ pad 12 ]);
    Delete ("bob", 3);
    Save ("ann", 3, [ pad 13 ]);
    Save ("carl", 2, [ pad 14; pad 15 ]);
    Save ("dana", 2, [ pad 16 ]);
    Save ("julie", 4, [ pad 17 ]);
    Compact;
    Save ("erin", 1, [ pad 18 ]);
    Delete ("carl", 3);
    Save ("erin", 2, [ pad 19; pad 20 ]);
  ]

(* The oracle: user -> (revision, live entries option), exactly the
   memory backend's semantics. *)
let apply oracle = function
  | Save (u, r, es) -> SMap.add u (r, Some es) oracle
  | Delete (u, r) -> SMap.add u (r, None) oracle
  | Compact -> oracle

let run_op s = function
  | Save (u, r, es) -> Store.save s ~user:u ~revision:r es
  | Delete (u, r) -> Store.delete s ~user:u ~revision:r
  | Compact -> Store.compact_now s

(* Observable store state, fully re-read from disk. *)
let state_of s =
  ( Store.revisions s,
    List.map (fun u -> (u, Store.load s ~user:u)) (Store.users s) )

let state_of_oracle oracle =
  ( SMap.bindings oracle |> List.map (fun (u, (r, _)) -> (u, r)),
    SMap.bindings oracle
    |> List.filter_map (fun (u, (_, es)) ->
           match es with Some es -> Some (u, Some es) | None -> None) )

let fault_points =
  [ Chaos.Wal_append; Chaos.Manifest_write; Chaos.Compact_write;
    Chaos.Compact_rename ]

let fault_kinds =
  [
    Chaos.Torn_write 0.3;
    Chaos.Torn_write 0.9;
    Chaos.Short_write 0.5;
    Chaos.Fsync_fail;
    Chaos.Crash;
  ]

let kind_name = function
  | Chaos.Torn_write f -> Printf.sprintf "torn(%g)" f
  | Chaos.Short_write f -> Printf.sprintf "short(%g)" f
  | Chaos.Fsync_fail -> "fsync-fail"
  | Chaos.Crash -> "crash"
  | Chaos.Flip_byte f -> Printf.sprintf "flip(%g)" f

(* Count kill sites: one clean run under an empty plan. *)
let count_crossings () =
  let dir = fresh_dir () in
  Chaos.plan [];
  Fun.protect ~finally:Chaos.unplan @@ fun () ->
  let s = Store.open_ ~config dir in
  List.iter (run_op s) ops;
  Store.close s;
  List.map (fun pt -> (pt, Chaos.crossings pt)) fault_points

let check_state ~ctx s expected =
  let got = state_of s in
  if got <> expected then
    Alcotest.failf "%s: recovered state diverges from oracle" ctx

(* One replay with a single planted fault.  Returns unit or fails the
   test with a [ctx]-labelled divergence. *)
let replay pt k kind =
  let ctx =
    Printf.sprintf "%s#%d %s" (Chaos.point_name pt) k (kind_name kind)
  in
  let dir = fresh_dir () in
  Chaos.plan [ (pt, k, kind) ];
  Fun.protect ~finally:Chaos.unplan @@ fun () ->
  (* The init manifest write is itself a kill site. *)
  let handle = ref None in
  let oracle = ref SMap.empty in
  let reopen () =
    Chaos.unplan ();
    let s = Store.open_ ~config dir in
    check_state ~ctx:(ctx ^ " (recovery)") s (state_of_oracle !oracle);
    handle := Some s
  in
  (match Store.open_ ~config dir with
  | s -> handle := Some s
  | exception Chaos.Crashed _ -> reopen ()
  | exception Chaos.Injected _ ->
      Chaos.unplan ();
      handle := Some (Store.open_ ~config dir));
  List.iter
    (fun op ->
      let s = Option.get !handle in
      match run_op s op with
      | () -> oracle := apply !oracle op
      | exception Chaos.Injected _ ->
          (* Transient: the store rolled the operation back and stays
             usable; the oracle must not advance. *)
          check_state ~ctx:(ctx ^ " (after transient)") s
            (state_of_oracle !oracle)
      | exception Chaos.Crashed _ ->
          (* Simulated kill: drop the handle cold and recover.  The
             in-flight operation must be all-or-nothing: the recovered
             state equals the oracle with or without it. *)
          Store.abandon s;
          Chaos.unplan ();
          let s' = Store.open_ ~config dir in
          let without = state_of_oracle !oracle in
          let with_op = state_of_oracle (apply !oracle op) in
          let got = state_of s' in
          if got = without then ()
          else if got = with_op then oracle := apply !oracle op
          else
            Alcotest.failf
              "%s: recovered state is neither pre- nor post-operation" ctx;
          handle := Some s')
    ops;
  let s = Option.get !handle in
  check_state ~ctx:(ctx ^ " (final)") s (state_of_oracle !oracle);
  Store.close s;
  (* Durability: one more cold open must see the same state. *)
  let s' = Store.open_ ~config dir in
  check_state ~ctx:(ctx ^ " (reopen)") s' (state_of_oracle !oracle);
  Store.close s'

let test_every_kill_site () =
  let crossings = count_crossings () in
  let total = List.fold_left (fun a (_, n) -> a + n) 0 crossings in
  Alcotest.(check bool)
    (Printf.sprintf "found kill sites (%d)" total)
    true (total > 0);
  List.iter
    (fun (pt, n) ->
      for k = 0 to n - 1 do
        List.iter (fun kind -> replay pt k kind) fault_kinds
      done)
    crossings

(* A fault-free replay of the same workload agrees with the oracle —
   the harness's own control. *)
let test_clean_control () =
  let dir = fresh_dir () in
  let s = Store.open_ ~config dir in
  let oracle = List.fold_left apply SMap.empty ops in
  List.iter (run_op s) ops;
  check_state ~ctx:"control" s (state_of_oracle oracle);
  Store.close s;
  let s' = Store.open_ ~config dir in
  check_state ~ctx:"control reopen" s' (state_of_oracle oracle);
  Store.close s'

let () =
  Alcotest.run "store-crash"
    [
      ( "crash-recovery",
        [
          Alcotest.test_case "clean control" `Quick test_clean_control;
          Alcotest.test_case "every kill site x every fault" `Quick
            test_every_kill_site;
        ] );
    ]
