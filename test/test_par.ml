(* Multicore data-parallel execution and the sharded profile store:
   byte-identity of parallel evaluation at several domain counts,
   shared-counter budget accounting under partitioned loops (the
   no-double-count regression), chaos fault-schedule parity between
   sequential and parallel runs, and a threaded hammer on a sharded
   server with the cross-shard HEALTH ledger audit. *)

open Perso_server

(* Retry backoff must not cost wall-clock in tests. *)
let () = Relal.Chaos.set_sleep ignore

let with_domains d f =
  if d <= 1 then f ()
  else begin
    let pool = Putil.Dpool.create ~domains:d in
    Relal.Exec.set_pool (Some pool);
    Fun.protect
      ~finally:(fun () ->
        Relal.Exec.set_pool None;
        Putil.Dpool.shutdown pool)
      f
  end

let domain_counts = [ 1; 2; 4; 8 ]

(* ----------------------- determinism: §7 workload --------------------- *)

(* Structural equality of whole results: same column names, same rows,
   same order — the byte-identity contract of Exec.set_pool. *)
let check_identical label (seq : Relal.Exec.result) (par : Relal.Exec.result) =
  if seq <> par then
    Alcotest.failf "%s: parallel result differs from sequential" label

let test_workload_identical () =
  let db = Moviedb.Datagen.(generate (scale ~seed:7 800)) in
  let sqls =
    Moviedb.Workload.queries db ~n:10 ~seed:5
    |> List.map Relal.Sql_print.query_to_string
  in
  (* A couple of shapes the random walk does not emit: grouped
     aggregation and an ORDER BY ... LIMIT pipeline over a join big
     enough to cross the parallel threshold. *)
  let sqls =
    sqls
    @ [
        "select g.genre, count(*) as n from movie m, genre g where m.mid = \
         g.mid group by g.genre";
        "select m.title, a.name from movie m, cast c, actor a where m.mid = \
         c.mid and c.aid = a.aid order by m.title limit 50";
        "select distinct m.year from movie m, play p where m.mid = p.mid";
      ]
  in
  let baseline = List.map (fun sql -> Relal.Engine.run_sql db sql) sqls in
  List.iter
    (fun d ->
      with_domains d (fun () ->
          List.iter2
            (fun sql expect ->
              check_identical
                (Printf.sprintf "domains=%d %s" d sql)
                expect
                (Relal.Engine.run_sql db sql))
            sqls baseline))
    domain_counts

let test_personalize_identical () =
  let db = Moviedb.Datagen.(generate (scale ~seed:9 400)) in
  let profile =
    Moviedb.Profile_gen.generate db
      { Moviedb.Profile_gen.default with seed = 10; n_selections = 40 }
  in
  let sqls =
    Moviedb.Workload.queries db ~n:4 ~seed:21
    |> List.map Relal.Sql_print.query_to_string
  in
  let run method_ sql =
    let params =
      {
        Perso.Personalize.default_params with
        k = Perso.Criteria.Top_r 10;
        method_;
        rank = method_ = `MQ;
      }
    in
    match Perso.Personalize.personalize_sql_r ~params db profile sql with
    | Ok r ->
        ( List.map Perso.Personalize.degradation_to_string
            r.Perso.Personalize.degradations,
          Option.map
            (fun (o : Perso.Personalize.outcome) ->
              Relal.Sql_print.query_to_string o.Perso.Personalize.personalized)
            r.Perso.Personalize.outcome,
          r.Perso.Personalize.result )
    | Error e -> Alcotest.failf "personalize failed: %s" (Perso.Error.to_string e)
  in
  let baseline =
    List.concat_map (fun sql -> [ run `MQ sql; run `SQ sql ]) sqls
  in
  List.iter
    (fun d ->
      with_domains d (fun () ->
          let got =
            List.concat_map (fun sql -> [ run `MQ sql; run `SQ sql ]) sqls
          in
          if got <> baseline then
            Alcotest.failf "domains=%d: personalized runs differ" d))
    domain_counts

(* Preference selection never touches the executor, and an armed pool
   must not perturb it either: Select vs Brute stays degree-identical
   with domains armed. *)
let test_select_vs_brute_under_pool () =
  with_domains 4 (fun () ->
      List.iter
        (fun seed ->
          let cfg =
            {
              Moviedb.Datagen.default with
              movies = 120;
              actors = 60;
              directors = 20;
              theatres = 8;
            }
          in
          let db = Moviedb.Datagen.generate { cfg with seed } in
          let profile =
            Moviedb.Profile_gen.generate db
              {
                Moviedb.Profile_gen.default with
                seed = seed + 1;
                n_selections = 12;
              }
          in
          let rng = Putil.Rng.create (seed + 2) in
          let q = Relal.Binder.bind db (Moviedb.Workload.random_query db rng) in
          let qg = Perso.Qgraph.of_query db q in
          let g = Perso.Pgraph.of_profile profile in
          List.iter
            (fun ci ->
              let degs l =
                List.map
                  (fun (p : Perso.Path.t) ->
                    Float.round (Perso.Degree.to_float p.Perso.Path.degree *. 1e9))
                  l
              in
              let fast = Perso.Select.select db g qg ci in
              let slow = Perso.Brute.select db g qg ci in
              Alcotest.(check (list (float 0.)))
                (Printf.sprintf "seed %d" seed)
                (degs slow) (degs fast))
            [ Perso.Criteria.top_r 5; Perso.Criteria.above 0.5 ])
        [ 1; 2; 3; 4 ])

(* --------------- governor: shared counters, no double count ----------- *)

let test_governor_no_double_count () =
  let db = Moviedb.Datagen.(generate (scale ~seed:7 800)) in
  let sql =
    "select m.title, a.name from movie m, cast c, actor a where m.mid = c.mid \
     and c.aid = a.aid"
  in
  let budget rows =
    { Relal.Governor.deadline_ms = None; max_rows = rows; max_expansions = None }
  in
  (* Measure the true charge with an unbounded governor. *)
  let total =
    let gov = Relal.Governor.start (budget None) in
    ignore (Relal.Engine.run_sql ~gov db sql : Relal.Exec.result);
    (Relal.Governor.progress gov).Relal.Governor.rows_produced
  in
  Alcotest.(check bool) "query is big enough to partition" true (total > 4096);
  let charge_at d limit =
    with_domains d (fun () ->
        let gov = Relal.Governor.start (budget (Some limit)) in
        match Relal.Engine.run_sql ~gov db sql with
        | (_ : Relal.Exec.result) -> `Completed
        | exception Relal.Governor.Exhausted _ -> `Exhausted)
  in
  List.iter
    (fun d ->
      (* A limit equal to the true total must not trip: partitioned
         loops charge the shared counters exactly once per row.  Any
         double counting (the old per-fork re-add bug) trips it. *)
      (match charge_at d total with
      | `Completed -> ()
      | `Exhausted ->
          Alcotest.failf "domains=%d: rows double-counted (limit=total tripped)"
            d);
      match charge_at d (total - 1) with
      | `Exhausted -> ()
      | `Completed ->
          Alcotest.failf "domains=%d: limit below total did not trip" d)
    domain_counts

(* --------------------- chaos: fault-schedule parity ------------------- *)

(* Chaos points are crossed on the caller thread, once per operator,
   outside the chunk loops — so an armed seed injects the same fault at
   the same point whether or not a pool is armed, and the typed outcome
   must match exactly. *)
let test_chaos_parity () =
  let db = Moviedb.Datagen.(generate (scale ~seed:3 120)) in
  let sqls =
    Moviedb.Workload.queries db ~n:6 ~seed:13
    |> List.map Relal.Sql_print.query_to_string
  in
  let outcome seed domains sql =
    ignore (Relal.Chaos.arm ~seed ~p:0.15 () : Relal.Chaos.stats);
    Fun.protect ~finally:Relal.Chaos.disarm (fun () ->
        with_domains domains (fun () ->
            match Perso.Error.guard (fun () -> Relal.Engine.run_sql db sql) with
            | Ok r -> Ok r
            | Error e -> Error (Perso.Error.to_string e)))
  in
  let faults = ref 0 in
  for seed = 0 to 7 do
    List.iter
      (fun sql ->
        let seq = outcome seed 1 sql in
        let par = outcome seed 4 sql in
        (match seq with Error _ -> incr faults | Ok _ -> ());
        if seq <> par then
          Alcotest.failf "seed=%d: sequential and parallel outcomes differ" seed)
      sqls
  done;
  Alcotest.(check bool) "some seeds actually injected faults" true (!faults > 0)

(* ------------------ sharded store: threaded hammer -------------------- *)

let fresh_socket =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "perso_par_%d_%d.sock" (Unix.getpid ()) !n)

let stat name stats =
  match List.assoc_opt name stats with
  | Some v -> int_of_string v
  | None -> Alcotest.failf "HEALTH missing %s" name

let test_sharded_hammer () =
  let n_threads = 8 and per_thread = 15 and shards = 4 in
  let db = Moviedb.Datagen.(generate (scale ~seed:7 100)) in
  let socket = fresh_socket () in
  let cfg =
    {
      (Server.default_config ~socket_path:socket) with
      Server.workers = 3;
      queue_capacity = 8;
      deadline_ms = Some 2_000.;
      shards;
    }
  in
  let t = Server.start cfg db in
  Fun.protect
    ~finally:(fun () ->
      ignore (Server.stop t : Server.drain_outcome);
      Relal.Chaos.disarm ())
  @@ fun () ->
  (* Worker systhreads race on the one ambient pool; losers fall back
     to their sequential loops, which produce the same bytes. *)
  with_domains 4 @@ fun () ->
  let queries =
    Moviedb.Workload.queries db ~n:per_thread ~seed:11
    |> List.map Relal.Sql_print.query_to_string
    |> Array.of_list
  in
  ignore (Relal.Chaos.arm ~seed:1337 ~p:0.05 () : Relal.Chaos.stats);
  let ok = Atomic.make 0 and failed = Atomic.make 0 and broken = Atomic.make 0 in
  let worker tid =
    let c = Client.connect socket in
    for i = 0 to per_thread - 1 do
      let sql = queries.(i mod Array.length queries) in
      let user = Printf.sprintf "user%d" tid in
      let cmd =
        match i mod 4 with
        | 0 ->
            Printf.sprintf
              "PROFILE SAVE %s [ GENRE.genre = 'comedy', 0.9 ] [ MOVIE.mid = \
               GENRE.mid, 0.8 ]"
              user
        | 1 -> Printf.sprintf "PERSONALIZE %s %s" user sql
        | 2 -> Printf.sprintf "PROFILE LOAD %s" user
        | _ -> "RUN " ^ sql
      in
      match Client.request c cmd with
      | Ok (Protocol.Rows _) | Ok (Protocol.Message _) -> Atomic.incr ok
      | Ok (Protocol.Failed { code; _ }) when code >= 1 && code <= 5 ->
          Atomic.incr failed
      | Ok _ | Error _ -> Atomic.incr broken
    done;
    Client.close c
  in
  let threads = List.init n_threads (fun tid -> Thread.create worker tid) in
  List.iter Thread.join threads;
  Relal.Chaos.disarm ();
  let total = n_threads * per_thread in
  Alcotest.(check int) "no untyped outcomes" 0 (Atomic.get broken);
  Alcotest.(check int) "every request answered" total
    (Atomic.get ok + Atomic.get failed);
  Alcotest.(check bool) "some requests succeeded" true (Atomic.get ok > 0);
  let c = Client.connect socket in
  let stats =
    match Client.request c "HEALTH" with
    | Ok (Protocol.Stats s) -> s
    | _ -> Alcotest.fail "HEALTH failed"
  in
  Client.close c;
  Alcotest.(check int) "shards reported" shards (stat "shards" stats);
  Alcotest.(check int) "ledger: queue idle" 0 (stat "queue_depth" stats);
  Alcotest.(check int) "ledger: nothing in flight" 0 (stat "in_flight" stats);
  Alcotest.(check int) "ledger: accepted = ok + err + expired"
    (stat "accepted" stats)
    (stat "completed_ok" stats
    + stat "completed_err" stats
    + stat "shed_expired" stats);
  (* The cross-shard audit: the cache columns are summed over every
     shard's cache, and together they must still account for each
     completed PERSONALIZE exactly once. *)
  Alcotest.(check int) "ledger: pers outcomes = summed shard cache sources"
    (stat "pers_ok" stats + stat "pers_err" stats)
    (stat "cache_hit" stats
    + stat "cache_miss" stats
    + stat "cache_incremental" stats
    + stat "cache_bypass" stats);
  let outcome = Server.stop t in
  Alcotest.(check bool) "drains clean" true outcome.Server.drained

let () =
  Alcotest.run "par"
    [
      ( "determinism",
        [
          Alcotest.test_case "workload byte-identical" `Quick
            test_workload_identical;
          Alcotest.test_case "personalize byte-identical" `Quick
            test_personalize_identical;
          Alcotest.test_case "select vs brute under pool" `Quick
            test_select_vs_brute_under_pool;
        ] );
      ( "governor",
        [
          Alcotest.test_case "no double count across domains" `Quick
            test_governor_no_double_count;
        ] );
      ( "chaos",
        [ Alcotest.test_case "fault-schedule parity" `Quick test_chaos_parity ]
      );
      ( "sharded-store",
        [ Alcotest.test_case "threaded hammer" `Quick test_sharded_hammer ] );
    ]
