(* The replicated profile tier: WAL shipping, scrub-and-salvage,
   automatic failover, legacy migration, the hot-profile LRU, and the
   streaming CRC the divergence check is built on. *)

open Perso_store

let fresh_dir () =
  let f = Filename.temp_file "replica" "" in
  Sys.remove f;
  f

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let e cond degree = { Codec.cond; degree }

let member root i = Filename.concat root (Printf.sprintf "r%d" i)

(* XOR-flip one byte of a file in place (deterministic corruption). *)
let flip_at path off =
  let b = Bytes.of_string (read_file path) in
  Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0xFF));
  write_file path (Bytes.to_string b)

(* Cut [n] bytes off the end of a file (a torn tail). *)
let truncate_by path n =
  let s = read_file path in
  write_file path (String.sub s 0 (String.length s - n))

let active_wal_of root i =
  match Store.read_manifest (member root i) with
  | Some (_, wal) -> Filename.concat (member root i) wal
  | None -> Alcotest.fail "member has no manifest"

let rollups_equal root n =
  let r0 = Scrub.rollup (member root 0) in
  let rec go i = i >= n || (Scrub.rollup (member root i) = r0 && go (i + 1)) in
  go 1

let no_fsync = { Store.default_config with fsync = false }

(* ------------------------------ streaming crc ----------------------------- *)

let test_crc_stream_vector () =
  (* whole buffer in one update *)
  let s = "123456789" in
  Alcotest.(check int) "one chunk" 0xCBF43926
    (Crc32.finish (Crc32.update Crc32.init s ~pos:0 ~len:9));
  (* known split *)
  let st = Crc32.update Crc32.init s ~pos:0 ~len:4 in
  let st = Crc32.update st s ~pos:4 ~len:5 in
  Alcotest.(check int) "two chunks" 0xCBF43926 (Crc32.finish st);
  (* empty chunks are identity *)
  let st = Crc32.update Crc32.init s ~pos:0 ~len:0 in
  let st = Crc32.update st s ~pos:0 ~len:9 in
  let st = Crc32.update st s ~pos:9 ~len:0 in
  Alcotest.(check int) "empty chunks" 0xCBF43926 (Crc32.finish st);
  Alcotest.(check int) "empty string" (Crc32.string "")
    (Crc32.finish Crc32.init)

(* For any split of [s] into consecutive chunks, folding [update] over
   them equals the whole-buffer CRC — the property the per-file rollup
   relies on. *)
let prop_crc_incremental =
  QCheck.Test.make ~count:300 ~name:"incremental crc = whole-buffer crc"
    QCheck.(pair (string_of_size Gen.(0 -- 300)) (small_list small_nat))
    (fun (s, cuts) ->
      let n = String.length s in
      let cuts = List.map (fun c -> c mod (n + 1)) cuts in
      let bounds = List.sort_uniq compare ((0 :: n :: cuts) : int list) in
      let rec go st = function
        | a :: (b :: _ as rest) -> go (Crc32.update st s ~pos:a ~len:(b - a)) rest
        | _ -> st
      in
      Crc32.finish (go Crc32.init bounds) = Crc32.string s)

(* ------------------------------ replica basics ---------------------------- *)

let test_basics_shipping () =
  let root = fresh_dir () in
  let t = Replica.open_ ~config:no_fsync ~replicas:3 root in
  Alcotest.(check int) "replicas" 3 (Replica.replicas t);
  Alcotest.(check int) "primary" 0 (Replica.primary_index t);
  Replica.save t ~user:"julie" ~revision:1 [ e "GENRE.genre = 'comedy'" 0.9 ];
  Replica.save t ~user:"bob" ~revision:1 [ e "MOVIE.year > 1990" 0.4 ];
  Replica.save t ~user:"julie" ~revision:2 [ e "GENRE.genre = 'drama'" 0.8 ];
  Replica.delete t ~user:"bob" ~revision:2;
  Alcotest.(check (list string)) "users" [ "julie" ] (Replica.users t);
  Alcotest.(check int) "revision" 2 (Replica.revision t ~user:"julie");
  (match Replica.load t ~user:"julie" with
  | Some [ { Codec.cond = "GENRE.genre = 'drama'"; _ } ] -> ()
  | _ -> Alcotest.fail "load after ship");
  Replica.close t;
  Alcotest.(check bool) "members byte-identical" true (rollups_equal root 3);
  (* reopen adopts the recorded count; a clean reopen repairs nothing *)
  let t = Replica.open_ ~config:no_fsync root in
  Alcotest.(check int) "adopted count" 3 (Replica.replicas t);
  let r = Replica.rstats t in
  Alcotest.(check int) "clean failovers" 0 r.failovers;
  Alcotest.(check int) "clean quarantined" 0 r.quarantined;
  Alcotest.(check int) "clean catchups" 0 r.catchups;
  Alcotest.(check (list (pair string int)))
    "revisions survive" [ ("bob", 2); ("julie", 2) ] (Replica.revisions t);
  Replica.close t

let test_replstate_mismatch () =
  let root = fresh_dir () in
  Replica.close (Replica.open_ ~config:no_fsync ~replicas:3 root);
  match Replica.open_r ~config:no_fsync ~replicas:2 root with
  | Error (Store.Malformed _) -> ()
  | Error err ->
      Alcotest.failf "wrong error: %s" (Store.error_to_string err)
  | Ok _ -> Alcotest.fail "count mismatch accepted"

let test_legacy_migration () =
  let root = fresh_dir () in
  (* a pre-replication layout: store files directly in the root *)
  let s = Store.open_ ~config:no_fsync root in
  Store.save s ~user:"julie" ~revision:1 [ e "GENRE.genre = 'comedy'" 0.9 ];
  Store.close s;
  Alcotest.(check bool) "flat manifest" true
    (Sys.file_exists (Filename.concat root Store.manifest_file));
  let t = Replica.open_ ~config:no_fsync ~replicas:2 root in
  Alcotest.(check bool) "migrated to r0" true
    (Sys.file_exists (Filename.concat (member root 0) Store.manifest_file));
  Alcotest.(check bool) "flat manifest gone" false
    (Sys.file_exists (Filename.concat root Store.manifest_file));
  Alcotest.(check (list string)) "data survives" [ "julie" ] (Replica.users t);
  Replica.close t;
  Alcotest.(check bool) "follower cloned" true (rollups_equal root 2)

(* ------------------------------- failover --------------------------------- *)

let test_failover_bad_crc () =
  let root = fresh_dir () in
  let t = Replica.open_ ~config:no_fsync ~replicas:2 root in
  Replica.save t ~user:"julie" ~revision:1 [ e "GENRE.genre = 'comedy'" 0.9 ];
  Replica.close t;
  (* a mid-payload flip in the primary's WAL: structurally complete
     frame, bad checksum — real damage, not a torn tail *)
  flip_at (active_wal_of root 0) 12;
  let t = Replica.open_ ~config:no_fsync root in
  Alcotest.(check int) "promoted" 1 (Replica.primary_index t);
  (match Replica.load t ~user:"julie" with
  | Some [ { Codec.cond = "GENRE.genre = 'comedy'"; _ } ] -> ()
  | _ -> Alcotest.fail "load after failover");
  let r = Replica.rstats t in
  Alcotest.(check int) "failovers" 1 r.failovers;
  Alcotest.(check int) "quarantined" 1 r.quarantined;
  Alcotest.(check int) "salvaged (nothing before the damage)" 0 r.salvaged;
  Alcotest.(check int) "catchups" 1 r.catchups;
  Alcotest.(check bool) "quarantine preserved" true
    (Sys.file_exists (Filename.concat (member root 0) Scrub.quarantine_dirname));
  Replica.close t;
  Alcotest.(check bool) "repaired byte-identical" true (rollups_equal root 2)

let test_salvage_credits_prefix () =
  let root = fresh_dir () in
  let t = Replica.open_ ~config:no_fsync ~replicas:2 root in
  Replica.save t ~user:"julie" ~revision:1 [ e "GENRE.genre = 'comedy'" 0.9 ];
  Replica.save t ~user:"bob" ~revision:1 [ e "MOVIE.year > 1990" 0.4 ];
  Replica.close t;
  (* damage the last frame: the first record is still decodable and is
     credited as salvaged before the suffix is rebuilt from r1 *)
  let wal = active_wal_of root 0 in
  flip_at wal (String.length (read_file wal) - 1);
  let t = Replica.open_ ~config:no_fsync root in
  let r = Replica.rstats t in
  Alcotest.(check int) "failovers" 1 r.failovers;
  Alcotest.(check int) "salvaged" 1 r.salvaged;
  Alcotest.(check int) "quarantined" 1 r.quarantined;
  Alcotest.(check (list string)) "both users intact" [ "bob"; "julie" ]
    (Replica.users t);
  Replica.close t

let test_watermark_promotion () =
  let root = fresh_dir () in
  let t = Replica.open_ ~config:no_fsync ~replicas:2 root in
  Replica.save t ~user:"julie" ~revision:1 [ e "GENRE.genre = 'comedy'" 0.9 ];
  Replica.save t ~user:"bob" ~revision:1 [ e "MOVIE.year > 1990" 0.4 ];
  Replica.close t;
  (* tear the primary's WAL tail: it reopens fine (truncation is the
     legitimate crash signature) but silently lost an acked record —
     the follower's higher watermark must win the open-time election *)
  truncate_by (active_wal_of root 0) 3;
  let t = Replica.open_ ~config:no_fsync root in
  Alcotest.(check int) "freshest promoted" 1 (Replica.primary_index t);
  Alcotest.(check (list string)) "acked record served" [ "bob"; "julie" ]
    (Replica.users t);
  let r = Replica.rstats t in
  Alcotest.(check int) "failovers" 1 r.failovers;
  Alcotest.(check int) "torn member re-cloned" 1 r.catchups;
  Alcotest.(check int) "no quarantine (no bad frame)" 0 r.quarantined;
  Replica.close t;
  Alcotest.(check bool) "members byte-identical" true (rollups_equal root 2)

let test_no_healthy_replica_fatal () =
  let root = fresh_dir () in
  let t = Replica.open_ ~config:no_fsync ~replicas:2 root in
  Replica.save t ~user:"julie" ~revision:1 [ e "GENRE.genre = 'comedy'" 0.9 ];
  Replica.close t;
  flip_at (active_wal_of root 0) 12;
  flip_at (active_wal_of root 1) 12;
  (* both copies damaged: the tier must raise the same typed fatal a
     single-copy store would *)
  match Replica.open_r ~config:no_fsync root with
  | Error (Store.Bad_crc _) -> ()
  | Error err -> Alcotest.failf "wrong error: %s" (Store.error_to_string err)
  | Ok _ -> Alcotest.fail "opened with every replica damaged"

let test_single_replica_fatal () =
  let root = fresh_dir () in
  let t = Replica.open_ ~config:no_fsync ~replicas:1 root in
  Replica.save t ~user:"julie" ~revision:1 [ e "GENRE.genre = 'comedy'" 0.9 ];
  Replica.close t;
  flip_at (active_wal_of root 0) 12;
  match Replica.open_r ~config:no_fsync root with
  | Error (Store.Bad_crc _) -> ()
  | Error err -> Alcotest.failf "wrong error: %s" (Store.error_to_string err)
  | Ok _ -> Alcotest.fail "single-copy damage not fatal"

(* ------------------------------ ship faults ------------------------------- *)

let with_plan plan f =
  Relal.Chaos.plan plan;
  Fun.protect ~finally:Relal.Chaos.unplan f

let test_ship_error_never_fails_save () =
  let root = fresh_dir () in
  let t = Replica.open_ ~config:no_fsync ~replicas:2 root in
  with_plan [ (Relal.Chaos.Ship_append, 0, Relal.Chaos.Fsync_fail) ] (fun () ->
      (* the follower's ship fails; the save is still acknowledged and
         the follower caught up before the call returns *)
      Replica.save t ~user:"julie" ~revision:1 [ e "GENRE.genre = 'comedy'" 0.9 ]);
  let r = Replica.rstats t in
  Alcotest.(check int) "ship_errors" 1 r.ship_errors;
  Alcotest.(check int) "catchups" 1 r.catchups;
  Alcotest.(check int) "failovers" 0 r.failovers;
  Alcotest.(check int) "revision acked" 1 (Replica.revision t ~user:"julie");
  Replica.close t;
  Alcotest.(check bool) "converged" true (rollups_equal root 2)

let test_latent_follower_corruption () =
  let root = fresh_dir () in
  let t = Replica.open_ ~config:no_fsync ~replicas:2 root in
  with_plan [ (Relal.Chaos.Ship_append, 0, Relal.Chaos.Flip_byte 0.5) ] (fun () ->
      (* the ship lands but a byte of the follower's WAL is silently
         flipped — damage surfaces only at the next recovery *)
      Replica.save t ~user:"julie" ~revision:1 [ e "GENRE.genre = 'comedy'" 0.9 ]);
  Replica.save t ~user:"bob" ~revision:1 [ e "MOVIE.year > 1990" 0.4 ];
  Replica.close t;
  let t = Replica.open_ ~config:no_fsync root in
  Alcotest.(check int) "primary untouched" 0 (Replica.primary_index t);
  let r = Replica.rstats t in
  Alcotest.(check int) "no failover" 0 r.failovers;
  Alcotest.(check int) "follower quarantined" 1 r.quarantined;
  Alcotest.(check int) "follower re-cloned" 1 r.catchups;
  Alcotest.(check (list string)) "data intact" [ "bob"; "julie" ]
    (Replica.users t);
  Replica.close t;
  Alcotest.(check bool) "repaired byte-identical" true (rollups_equal root 2)

(* -------------------------------- scrub ----------------------------------- *)

let test_scrub_clean_and_repair () =
  let root = fresh_dir () in
  let t = Replica.open_ ~config:no_fsync ~replicas:2 root in
  Replica.save t ~user:"julie" ~revision:1 [ e "GENRE.genre = 'comedy'" 0.9 ];
  (* clean scrub: one report per member, nothing damaged *)
  let reports = Replica.scrub_now t in
  Alcotest.(check int) "report per member" 2 (List.length reports);
  List.iter
    (fun rep -> Alcotest.(check int) "no damage" 0 (List.length rep.Scrub.damaged))
    reports;
  (* damage the follower on disk; the scrub must find and repair it *)
  flip_at (active_wal_of root 1) 12;
  let reports = Replica.scrub_now t in
  let damaged = List.concat_map (fun rep -> rep.Scrub.damaged) reports in
  Alcotest.(check int) "damage found" 1 (List.length damaged);
  let r = Replica.rstats t in
  Alcotest.(check int) "quarantined" 1 r.quarantined;
  Alcotest.(check int) "re-cloned" 1 r.catchups;
  Alcotest.(check int) "primary kept" 0 (Replica.primary_index t);
  (* post-repair scrub is clean again *)
  let reports = Replica.scrub_now t in
  List.iter
    (fun rep -> Alcotest.(check int) "clean again" 0 (List.length rep.Scrub.damaged))
    reports;
  Replica.close t;
  Alcotest.(check bool) "byte-identical" true (rollups_equal root 2)

let test_scrub_fails_over_damaged_primary () =
  let root = fresh_dir () in
  let t = Replica.open_ ~config:no_fsync ~replicas:2 root in
  Replica.save t ~user:"julie" ~revision:1 [ e "GENRE.genre = 'comedy'" 0.9 ];
  flip_at (active_wal_of root 0) 12;
  ignore (Replica.scrub_now t);
  Alcotest.(check int) "promoted away from damage" 1 (Replica.primary_index t);
  let r = Replica.rstats t in
  Alcotest.(check int) "failover" 1 r.failovers;
  Alcotest.(check int) "quarantined" 1 r.quarantined;
  (match Replica.load t ~user:"julie" with
  | Some _ -> ()
  | None -> Alcotest.fail "load after scrub failover");
  Replica.close t

(* ---------------------------- hot-profile LRU ------------------------------ *)

let plru_stats_check name lru ~hits ~misses ~evictions ~invalidations ~entries =
  let s = Perso_server.Profile_lru.stats lru in
  Alcotest.(check int) (name ^ " hits") hits s.hits;
  Alcotest.(check int) (name ^ " misses") misses s.misses;
  Alcotest.(check int) (name ^ " evictions") evictions s.evictions;
  Alcotest.(check int) (name ^ " invalidations") invalidations s.invalidations;
  Alcotest.(check int) (name ^ " entries") entries s.entries

let test_profile_lru () =
  let module L = Perso_server.Profile_lru in
  let lru = L.create ~capacity:2 () in
  let p = Perso.Profile.empty in
  Alcotest.(check bool) "cold miss" true (L.find lru ~user:"a" ~revision:1 = None);
  L.put lru ~user:"a" ~revision:1 p;
  Alcotest.(check bool) "hit" true (L.find lru ~user:"a" ~revision:1 <> None);
  plru_stats_check "warm" lru ~hits:1 ~misses:1 ~evictions:0 ~invalidations:0
    ~entries:1;
  (* a save bumped the registry revision: the old entry is stale — it
     stops matching and is dropped *)
  Alcotest.(check bool) "stale revision misses" true
    (L.find lru ~user:"a" ~revision:2 = None);
  plru_stats_check "stale" lru ~hits:1 ~misses:2 ~evictions:0 ~invalidations:0
    ~entries:0;
  (* capacity pressure evicts the least recently used *)
  L.put lru ~user:"a" ~revision:2 p;
  L.put lru ~user:"b" ~revision:1 p;
  ignore (L.find lru ~user:"a" ~revision:2);
  L.put lru ~user:"c" ~revision:1 p;
  Alcotest.(check bool) "lru evicted" true (L.find lru ~user:"b" ~revision:1 = None);
  Alcotest.(check bool) "recent kept" true (L.find lru ~user:"a" ~revision:2 <> None);
  plru_stats_check "evict" lru ~hits:3 ~misses:3 ~evictions:1 ~invalidations:0
    ~entries:2;
  (* eager subscriber-hook invalidation *)
  L.remove lru ~user:"a";
  L.remove lru ~user:"nope";
  plru_stats_check "invalidate" lru ~hits:3 ~misses:3 ~evictions:1
    ~invalidations:1 ~entries:1

let test_profile_lru_disabled () =
  let module L = Perso_server.Profile_lru in
  let lru = L.create ~capacity:0 () in
  L.put lru ~user:"a" ~revision:1 Perso.Profile.empty;
  Alcotest.(check bool) "capacity 0 never hits" true
    (L.find lru ~user:"a" ~revision:1 = None);
  let s = L.stats lru in
  Alcotest.(check int) "no entries" 0 s.entries

let () =
  Alcotest.run "replica"
    [
      ( "crc-stream",
        [
          Alcotest.test_case "known vectors" `Quick test_crc_stream_vector;
          QCheck_alcotest.to_alcotest prop_crc_incremental;
        ] );
      ( "replica",
        [
          Alcotest.test_case "basics + shipping" `Quick test_basics_shipping;
          Alcotest.test_case "replstate mismatch" `Quick test_replstate_mismatch;
          Alcotest.test_case "legacy migration" `Quick test_legacy_migration;
        ] );
      ( "failover",
        [
          Alcotest.test_case "bad crc promotes" `Quick test_failover_bad_crc;
          Alcotest.test_case "salvage credits prefix" `Quick
            test_salvage_credits_prefix;
          Alcotest.test_case "watermark promotion" `Quick
            test_watermark_promotion;
          Alcotest.test_case "no healthy replica fatal" `Quick
            test_no_healthy_replica_fatal;
          Alcotest.test_case "single replica fatal" `Quick
            test_single_replica_fatal;
        ] );
      ( "shipping-faults",
        [
          Alcotest.test_case "ship error never fails save" `Quick
            test_ship_error_never_fails_save;
          Alcotest.test_case "latent follower corruption" `Quick
            test_latent_follower_corruption;
        ] );
      ( "scrub",
        [
          Alcotest.test_case "clean + repair" `Quick test_scrub_clean_and_repair;
          Alcotest.test_case "fails over damaged primary" `Quick
            test_scrub_fails_over_damaged_primary;
        ] );
      ( "profile-lru",
        [
          Alcotest.test_case "hit/miss/evict/invalidate" `Quick test_profile_lru;
          Alcotest.test_case "capacity 0 disables" `Quick
            test_profile_lru_disabled;
        ] );
    ]
