(* Differential check on the wire path: PERSONALIZE through the real
   socket server (PROFILE SAVE + Client round-trip) must return
   byte-identical notes, columns, and rows to calling
   Personalize.personalize_sql_r in-process on an identical database
   with the same parsed profile and the same capped budget. *)

open Perso_server

(* Retry backoff must not cost wall-clock in tests. *)
let () = Relal.Chaos.set_sleep ignore

let fresh_socket =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "perso_diff_%d_%d.sock" (Unix.getpid ()) !n)

(* The server's budget for a headerless request is exactly the config
   cap; mirror it for the in-process run.  Deadline stays None so both
   sides are wall-clock independent. *)
let budget =
  { Relal.Governor.deadline_ms = None;
    max_rows = Some 500_000;
    max_expansions = Some 5_000 }

(* One profile, serialized once; both sides parse the same text, so
   degree-printing round-trips cannot skew the comparison. *)
let profile_and_wire db =
  let p =
    Moviedb.Profile_gen.generate db
      { Moviedb.Profile_gen.default with seed = 9; n_selections = 12 }
  in
  let text = Perso.Profile.to_string p in
  let wire =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
    |> String.concat " "
  in
  match Perso.Profile.of_string text with
  | Ok parsed -> (parsed, wire)
  | Error e -> Alcotest.failf "profile text does not re-parse: %s" e

let local_rows (res : Relal.Exec.result) =
  List.map
    (fun row -> Array.to_list (Array.map Relal.Value.to_string row))
    res.Relal.Exec.rows

let test_wire_matches_inprocess () =
  let mk_db () = Moviedb.Datagen.(generate (scale ~seed:7 120)) in
  let db_server = mk_db () and db_local = mk_db () in
  let profile, wire_entries = profile_and_wire db_local in
  let socket_path = fresh_socket () in
  let cfg =
    {
      (Server.default_config ~socket_path) with
      Server.workers = 2;
      deadline_ms = None;
      max_rows = budget.Relal.Governor.max_rows;
      max_expansions = budget.Relal.Governor.max_expansions;
    }
  in
  let t = Server.start cfg db_server in
  Fun.protect
    ~finally:(fun () -> ignore (Server.stop t : Server.drain_outcome))
    (fun () ->
      let c = Client.connect ~wait_ms:2000. socket_path in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          (match Client.request c ("PROFILE SAVE u1 " ^ wire_entries) with
          | Ok (Protocol.Message _) -> ()
          | Ok _ -> Alcotest.fail "unexpected PROFILE SAVE reply shape"
          | Error e -> Alcotest.failf "PROFILE SAVE failed: %s" e);
          let sqls =
            Moviedb.Workload.queries db_local ~n:4 ~seed:5
            |> List.map Relal.Sql_print.query_to_string
          in
          List.iter
            (fun sql ->
              let w_notes, w_cols, w_rows =
                match Client.request c ("PERSONALIZE u1 " ^ sql) with
                | Ok (Protocol.Rows { notes; cols; rows }) -> (notes, cols, rows)
                | Ok _ -> Alcotest.failf "unexpected reply shape for %s" sql
                | Error e -> Alcotest.failf "request failed (%s): %s" sql e
              in
              match
                Perso.Personalize.personalize_sql_r ~budget db_local profile sql
              with
              | Error e ->
                  Alcotest.failf "in-process personalize failed (%s): %s" sql
                    (Perso.Error.to_string e)
              | Ok run ->
                  let notes =
                    List.map Perso.Personalize.degradation_to_string
                      run.Perso.Personalize.degradations
                  in
                  let res = run.Perso.Personalize.result in
                  Alcotest.(check (list string))
                    ("notes: " ^ sql) notes w_notes;
                  Alcotest.(check (list string))
                    ("cols: " ^ sql)
                    (Array.to_list res.Relal.Exec.cols)
                    w_cols;
                  Alcotest.(check (list (list string)))
                    ("rows byte-identical: " ^ sql) (local_rows res) w_rows)
            sqls))

let () =
  Alcotest.run "serve-diff"
    [
      ( "differential",
        [
          Alcotest.test_case "wire = in-process (4 queries)" `Quick
            test_wire_matches_inprocess;
        ] );
    ]
