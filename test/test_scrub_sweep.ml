(* Deterministic corruption sweep: every committed store file of a
   replica root x every corruption kind x replica counts 1-3.

   With a single copy, damage must surface as the typed fatal error a
   bare store raises (or, for the active WAL's tail, as the counted
   torn-tail truncation).  With two or more copies, recovery must
   restore the exact pre-corruption state — byte-identical members,
   every acknowledged revision served — and the repair must be
   accounted in the rstats ledger (failover + quarantined + catchups).

   [make scrub-sweep] runs exactly this binary; it also rides in the
   default [dune runtest] alias. *)

open Perso_store

let fresh_dir () =
  let f = Filename.temp_file "sweep" "" in
  Sys.remove f;
  f

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let rec copy_tree src dst =
  Unix.mkdir dst 0o755;
  Array.iter
    (fun name ->
      let s = Filename.concat src name and d = Filename.concat dst name in
      if Sys.is_directory s then copy_tree s d else write_file d (read_file s))
    (Sys.readdir src)

let e cond degree = { Codec.cond; degree }

let member root i = Filename.concat root (Printf.sprintf "r%d" i)

(* Tiny segments so the fixture spans the whole file-set shape: sealed
   segments plus a non-empty active WAL. *)
let cfg = { Store.segment_bytes = 96; compact_segments = 100; fsync = false }

type kind = Flip_early | Flip_late | Truncate_tail

let kind_name = function
  | Flip_early -> "flip@0.2"
  | Flip_late -> "flip@0.8"
  | Truncate_tail -> "truncate-3"

let corrupt kind path =
  match kind with
  | Flip_early -> Relal.Chaos.flip_byte_in_file path 0.2
  | Flip_late -> Relal.Chaos.flip_byte_in_file path 0.8
  | Truncate_tail ->
      let s = read_file path in
      write_file path (String.sub s 0 (String.length s - 3))

(* Build a pristine n-replica root with rotated segments, an active
   WAL, and a tombstone; return it with the oracle state. *)
let build_fixture n =
  let root = fresh_dir () in
  let t = Replica.open_ ~config:cfg ~replicas:n root in
  for i = 0 to 5 do
    let user = Printf.sprintf "user%d" i in
    Replica.save t ~user ~revision:1
      [ e (Printf.sprintf "GENRE.genre = 'g%d'" i) 0.9; e "MOVIE.year > 1990" 0.4 ]
  done;
  Replica.save t ~user:"user1" ~revision:2 [ e "GENRE.genre = 'drama'" 0.7 ];
  Replica.delete t ~user:"user5" ~revision:2;
  let oracle_revisions = Replica.revisions t in
  let oracle_users = Replica.users t in
  Replica.close t;
  (root, oracle_revisions, oracle_users)

(* The committed file set of member 0, from its manifest (sealed
   segments first, active WAL last). *)
let targets root =
  match Store.read_manifest (member root 0) with
  | None -> Alcotest.fail "fixture has no manifest"
  | Some (sealed, wal) ->
      List.filter
        (fun f ->
          let size =
            try (Unix.stat (Filename.concat (member root 0) f)).st_size
            with Unix.Unix_error _ -> 0
          in
          size > 8)
        (List.map fst sealed @ [ wal ])

let check_members_identical root n =
  let r0 = Scrub.rollup (member root 0) in
  for i = 1 to n - 1 do
    if Scrub.rollup (member root i) <> r0 then
      Alcotest.failf "member r%d diverges from r0" i
  done

(* n = 1: the bare-store contract.  Damage is fatal with the typed
   error, or — only for the WAL's torn tail — truncated and counted.
   Either way nothing is silently wrong: an opening store either
   accounts the truncation or still serves the full oracle. *)
let check_single_copy label root oracle_revisions =
  match Replica.open_r ~config:cfg root with
  | Error (Store.Torn_log _ | Store.Bad_crc _ | Store.Malformed _) -> ()
  | Ok t ->
      let torn = (Replica.stats t).Store.torn_truncated in
      let revs = Replica.revisions t in
      Replica.close t;
      if torn = 0 && revs <> oracle_revisions then
        Alcotest.failf "%s: silent data loss with a single copy" label

(* n >= 2: full recovery.  The root must reopen, serve the exact oracle
   state, leave every member byte-identical, and account the repair. *)
let check_replicated label root n oracle_revisions oracle_users =
  let t =
    match Replica.open_r ~config:cfg root with
    | Ok t -> t
    | Error err ->
        Alcotest.failf "%s: fatal with %d replicas: %s" label n
          (Store.error_to_string err)
  in
  let revs = Replica.revisions t in
  let users = Replica.users t in
  let r = Replica.rstats t in
  (* every user's record must still decode from the promoted copy *)
  List.iter
    (fun user ->
      match Replica.load t ~user with
      | Some _ -> ()
      | None -> Alcotest.failf "%s: user %s lost" label user)
    users;
  Replica.close t;
  if revs <> oracle_revisions then
    Alcotest.failf "%s: revisions diverge from oracle" label;
  if users <> oracle_users then
    Alcotest.failf "%s: users diverge from oracle" label;
  if r.failovers + r.quarantined + r.catchups = 0 then
    Alcotest.failf "%s: corruption repaired without any ledger entry" label;
  if r.quarantined > 0 && r.catchups = 0 then
    Alcotest.failf "%s: quarantined a file but never re-cloned" label;
  check_members_identical root n;
  (* a second open after the repair must be clean *)
  let t = Replica.open_ ~config:cfg root in
  let r = Replica.rstats t in
  Replica.close t;
  if r.failovers + r.quarantined + r.catchups > 0 then
    Alcotest.failf "%s: repair did not converge (failovers=%d quarantined=%d catchups=%d)"
      label r.failovers r.quarantined r.catchups

let test_sweep n () =
  let pristine, oracle_revisions, oracle_users = build_fixture n in
  let files = targets pristine in
  Alcotest.(check bool) "fixture spans sealed segments and a WAL" true
    (List.length files >= 2);
  let cases = ref 0 in
  List.iter
    (fun file ->
      List.iter
        (fun kind ->
          incr cases;
          let work = fresh_dir () in
          copy_tree pristine work;
          let label =
            Printf.sprintf "n=%d %s %s" n file (kind_name kind)
          in
          corrupt kind (Filename.concat (member work 0) file);
          if n = 1 then check_single_copy label work oracle_revisions
          else check_replicated label work n oracle_revisions oracle_users)
        [ Flip_early; Flip_late; Truncate_tail ])
    files;
  Alcotest.(check bool) "swept every file x kind" true (!cases >= 6)

(* control: an uncorrupted root reopens with a zero repair ledger *)
let test_clean_control n () =
  let root, oracle_revisions, _ = build_fixture n in
  let t = Replica.open_ ~config:cfg root in
  let r = Replica.rstats t in
  Alcotest.(check int) "failovers" 0 r.failovers;
  Alcotest.(check int) "quarantined" 0 r.quarantined;
  Alcotest.(check int) "catchups" 0 r.catchups;
  Alcotest.(check bool) "oracle served" true
    (Replica.revisions t = oracle_revisions);
  Replica.close t;
  check_members_identical root n

let () =
  Alcotest.run "scrub-sweep"
    [
      ( "control",
        [
          Alcotest.test_case "clean n=1" `Quick (test_clean_control 1);
          Alcotest.test_case "clean n=2" `Quick (test_clean_control 2);
          Alcotest.test_case "clean n=3" `Quick (test_clean_control 3);
        ] );
      ( "sweep",
        [
          Alcotest.test_case "n=1 typed fatal or counted truncation" `Quick
            (test_sweep 1);
          Alcotest.test_case "n=2 byte-identical recovery" `Quick (test_sweep 2);
          Alcotest.test_case "n=3 byte-identical recovery" `Quick (test_sweep 3);
        ] );
    ]
