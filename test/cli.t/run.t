End-to-end CLI transcripts: the demo, SQL execution, profile generation
and learning, database dump/load, and personalization with top-N.

The paper's Julie example on the tiny database:

  $ perso_cli demo | head -12
  == Original query ==
  select mv.title
  from movie mv,
       play pl
  where mv.mid = pl.mid and pl.date = '2003-07-02'
  
  == Selected preferences (P_K) ==
   1. MOVIE.mid = GENRE.mid and GENRE.genre = 'comedy'                       doi=0.81  (via mv)
   2. PLAY.tid = THEATRE.tid and THEATRE.region = 'downtown'                 doi=0.8  (via pl)
   3. MOVIE.mid = DIRECTED.mid and DIRECTED.did = DIRECTOR.did and DIRECTOR.name = 'D. Lynch' doi=0.8  (via mv)
  mandatory: 0, optional: 3
  selection stats: 9 pops, 12 pushes, 5 expansions, 0 conflicts discarded, 7 cycles pruned, max queue 7

Ad-hoc SQL on the tiny database (--movies 0):

  $ perso_cli run-sql --movies 0 "select count(*) as n from movie m"
  +----+
  | n  |
  +----+
  | 12 |
  +----+
  (1 rows)

  $ perso_cli run-sql --movies 0 "select g.genre, count(*) as n from genre g group by g.genre having count(*) >= 3 order by n desc, g.genre asc"
  +------------+---+
  | genre      | n |
  +------------+---+
  | 'comedy'   | 4 |
  | 'thriller' | 3 |
  +------------+---+
  (2 rows)

Errors are reported, not crashes:

  $ perso_cli run-sql --movies 0 "select nope"
  parse error: expected keyword FROM (at EOF)
  [1]

  $ perso_cli run-sql --movies 0 "select m.title from missing m"
  bind error: unknown table missing
  [1]

Dump the tiny database to disk and query the on-disk copy:

  $ perso_cli dump-data --movies 0 --dir data > /dev/null
  $ ls data | head -3
  actor.csv
  cast.csv
  directed.csv
  $ perso_cli run-sql --data-dir data "select count(*) as n from play p"
  +----+
  | n  |
  +----+
  | 16 |
  +----+
  (1 rows)

Learn a profile from a query log and personalize with it:

  $ cat > log.sql <<'SQL'
  > select m.title from movie m, genre g where m.mid = g.mid and g.genre = 'comedy'
  > select m.title from movie m, genre g where m.mid = g.mid and g.genre = 'comedy'
  > select m.title from movie m, cast c, actor a where m.mid = c.mid and c.aid = a.aid and a.name = 'N. Kidman'
  > SQL
  $ perso_cli learn-profile --movies 0 --log log.sql --out learned.profile
  learned 5 preferences from 3 queries -> learned.profile
  $ cat learned.profile
  [ GENRE.genre = 'comedy', 0.525 ]
  [ MOVIE.mid = GENRE.mid, 0.525 ]
  [ ACTOR.name = 'N. Kidman', 0.3833 ]
  [ CAST.aid = ACTOR.aid, 0.3833 ]
  [ MOVIE.mid = CAST.mid, 0.3833 ]

  $ perso_cli personalize --movies 0 --profile learned.profile -k 2 --top 3 "select mv.title from movie mv, play pl where mv.mid = pl.mid and pl.date = '2/7/2003'" | tail -5
  
  == Top-3 results (1/2 partials executed, 4 probes) ==
    'Sweet Chaos'                            doi=0.3164
    'Double Take'                            doi=0.2756
    'Laughing Waters'                        doi=0.2756

A hand-written Figure-2-style profile with the semantic filter:

  $ cat > julie.profile <<'PROFILE'
  > [ MOVIE.mid = GENRE.mid, 0.9 ]
  > [ MOVIE.mid = DIRECTED.mid, 1 ]
  > [ DIRECTED.did = DIRECTOR.did, 1 ]
  > [ GENRE.genre = 'comedy', 0.9 ]
  > [ DIRECTOR.name = 'D. Lynch', 0.8 ]
  > PROFILE
  $ perso_cli personalize --movies 0 --profile julie.profile -k 5 --semantic "select m.title from movie m, genre g where m.mid = g.mid and g.genre = 'comedy'" | head -4
  == Selected preferences (P_K) ==
   1. GENRE.genre = 'comedy'                                                 doi=0.9  (via g)
  mandatory: 0, optional: 1
  selection stats: 4 pops, 4 pushes, 2 expansions, 0 conflicts discarded, 1 cycles pruned, max queue 2

Out-of-range flags fail fast as typed usage errors (exit code 6),
before any database is built:

  $ perso_cli run-sql --movies 0 --domains 0 "select m.title from movie m"
  usage error: --domains must be positive (got 0)
  [6]

  $ perso_cli personalize --movies 0 --profile julie.profile --domains=-2 "select m.title from movie m"
  usage error: --domains must be positive (got -2)
  [6]
