(* The synthetic-data substrate: generator invariants (integrity, skew,
   determinism), profile generation, workload generation. *)

open Relal

let small_cfg seed =
  { Moviedb.Datagen.default with seed; movies = 300; actors = 120; directors = 30; theatres = 10 }

let test_datagen_cardinalities () =
  let cfg = small_cfg 1 in
  let db = Moviedb.Datagen.generate cfg in
  let card t = Table.cardinality (Database.table db t) in
  Alcotest.(check int) "movies" 300 (card "movie");
  Alcotest.(check int) "actors" 120 (card "actor");
  Alcotest.(check int) "directors" 30 (card "director");
  Alcotest.(check int) "theatres" 10 (card "theatre");
  Alcotest.(check int) "one directed row per movie" 300 (card "directed");
  Alcotest.(check bool) "genres within 1..3 per movie" true
    (card "genre" >= 300 && card "genre" <= 900);
  Alcotest.(check bool) "cast at least 2 per movie" true (card "cast" >= 600);
  Alcotest.(check int) "plays per theatre-day" (10 * 7 * 3) (card "play")

let test_datagen_fk_integrity () =
  let db = Moviedb.Datagen.generate (small_cfg 2) in
  List.iter
    (fun { Schema.from_table; from_col; to_table; to_col } ->
      let parent = Database.table db to_table in
      let child = Database.table db from_table in
      let pidx = Option.get (Schema.col_index (Table.schema parent) to_col) in
      let cidx = Option.get (Schema.col_index (Table.schema child) from_col) in
      let keys = Hashtbl.create 64 in
      Table.iter parent (fun r -> Hashtbl.replace keys r.(pidx) ());
      Table.iter child (fun r ->
          if not (Hashtbl.mem keys r.(cidx)) then
            Alcotest.failf "dangling %s.%s -> %s.%s" from_table from_col to_table
              to_col))
    (Database.fks db)

let test_datagen_deterministic () =
  let q = "select g.genre, count(*) as n from genre g group by g.genre order by n desc, g.genre asc" in
  let r1 = Helpers.run (Moviedb.Datagen.generate (small_cfg 3)) q in
  let r2 = Helpers.run (Moviedb.Datagen.generate (small_cfg 3)) q in
  Alcotest.(check bool) "same seed, same data" true (Exec.result_equal_list r1 r2);
  let r3 = Helpers.run (Moviedb.Datagen.generate (small_cfg 4)) q in
  Alcotest.(check bool) "different seed differs" false (Exec.result_equal_list r1 r3)

let test_datagen_zipf_skew () =
  let db = Moviedb.Datagen.generate (small_cfg 5) in
  let res =
    Helpers.run db "select g.genre, count(*) as n from genre g group by g.genre order by n desc"
  in
  match (res.Exec.rows, List.rev res.Exec.rows) with
  | top :: _, bottom :: _ ->
      let n = function Value.Int i -> i | _ -> 0 in
      Alcotest.(check bool) "head much heavier than tail" true
        (n top.(1) > 3 * n bottom.(1))
  | _ -> Alcotest.fail "no genres"

let test_datagen_dates_in_window () =
  let db = Moviedb.Datagen.generate (small_cfg 6) in
  let res = Helpers.run db "select distinct p.date from play p order by p.date asc" in
  Alcotest.(check int) "seven distinct days" 7 (List.length res.Exec.rows);
  let example = Moviedb.Datagen.example_date in
  Alcotest.(check bool) "example date present" true
    (List.exists (fun r -> Value.equal r.(0) example) res.Exec.rows)

let test_datagen_play_movies_distinct_per_slot () =
  let db = Moviedb.Datagen.generate (small_cfg 7) in
  let res =
    Helpers.run db
      "select p.tid, count(*) as n from play p where p.date = '2003-07-01' group \
       by p.tid"
  in
  List.iter
    (fun r ->
      match r.(1) with
      | Value.Int n -> Alcotest.(check int) "three distinct movies" 3 n
      | _ -> Alcotest.fail "count")
    res.Exec.rows

(* Statistical sanity on the Zipf-driven genre skew: the *ranking* of
   genres by frequency is a property of the Zipf weights, not the seed,
   so independent seeds must agree on which genre dominates, and the
   sorted frequency sequence is monotone with a heavy head. *)
let genre_counts_desc db =
  let res =
    Helpers.run db
      "select g.genre, count(*) as n from genre g group by g.genre order by n \
       desc, g.genre asc"
  in
  List.map
    (fun r ->
      match (r.(0), r.(1)) with
      | Value.Str g, Value.Int n -> (g, n)
      | _ -> Alcotest.fail "genre count shape")
    res.Exec.rows

let test_datagen_frequency_ranks () =
  let ranks seed = genre_counts_desc (Moviedb.Datagen.generate (small_cfg seed)) in
  let r1 = ranks 21 and r2 = ranks 22 in
  let counts = List.map snd r1 in
  Alcotest.(check (list int)) "sorted counts monotone"
    (List.sort (fun a b -> compare b a) counts)
    counts;
  Alcotest.(check string) "top genre seed-independent" (fst (List.hd r1))
    (fst (List.hd r2));
  let total = List.fold_left ( + ) 0 counts in
  Alcotest.(check bool) "head genre at least 2x the uniform share" true
    (List.hd counts * List.length counts > 2 * total)

let test_datagen_exact_reproduction () =
  (* Byte-exact, table-by-table — stronger than query-level equality. *)
  let rows db t =
    let acc = ref [] in
    Table.iter (Database.table db t) (fun r ->
        acc := (Array.to_list r |> List.map Value.to_string) :: !acc);
    List.rev !acc
  in
  let db1 = Moviedb.Datagen.generate (small_cfg 23) in
  let db2 = Moviedb.Datagen.generate (small_cfg 23) in
  List.iter
    (fun t ->
      Alcotest.(check (list (list string)))
        (Printf.sprintf "table %s identical" t)
        (rows db1 t) (rows db2 t))
    [ "movie"; "actor"; "director"; "genre"; "cast"; "directed"; "play" ]

let test_scale_proportions () =
  let cfg = Moviedb.Datagen.scale 4000 in
  Alcotest.(check int) "movies" 4000 cfg.Moviedb.Datagen.movies;
  Alcotest.(check int) "actors scale" 1600 cfg.Moviedb.Datagen.actors;
  Alcotest.(check int) "directors scale" 400 cfg.Moviedb.Datagen.directors

(* --------------------------- Profile_gen --------------------------- *)

let test_profile_gen_size_and_validity () =
  let db = Moviedb.Datagen.generate (small_cfg 8) in
  let cfg = { Moviedb.Profile_gen.default with seed = 9; n_selections = 25 } in
  let p = Moviedb.Profile_gen.generate db cfg in
  Alcotest.(check int) "requested size" 25 (Perso.Profile.size p);
  Alcotest.(check bool) "validates" true (Perso.Profile.validate db p = Ok ());
  (* Degrees within configured ranges. *)
  List.iter
    (fun (atom, deg) ->
      let f = Perso.Degree.to_float deg in
      match atom with
      | Perso.Atom.Sel _ ->
          Alcotest.(check bool) "sel range" true (f >= 0.3 && f <= 1.0)
      | Perso.Atom.Join _ ->
          Alcotest.(check bool) "join range" true (f >= 0.6 && f <= 1.0))
    (Perso.Profile.entries p)

let test_profile_gen_deterministic () =
  let db = Moviedb.Datagen.generate (small_cfg 8) in
  let cfg = { Moviedb.Profile_gen.default with seed = 10; n_selections = 15 } in
  let p1 = Moviedb.Profile_gen.generate db cfg in
  let p2 = Moviedb.Profile_gen.generate db cfg in
  Alcotest.(check string) "same profile text" (Perso.Profile.to_string p1)
    (Perso.Profile.to_string p2)

let test_profile_gen_join_fraction () =
  let db = Moviedb.Datagen.generate (small_cfg 8) in
  let cfg =
    { Moviedb.Profile_gen.default with seed = 11; n_selections = 5; join_fraction = 0.5 }
  in
  let p = Moviedb.Profile_gen.generate db cfg in
  let joins = Perso.Profile.cardinal p - Perso.Profile.size p in
  Alcotest.(check int) "half the 14 directed joins" 7 joins

(* ---------------------------- Workload ----------------------------- *)

let test_workload_queries_bind_and_run () =
  let db = Moviedb.Datagen.generate (small_cfg 12) in
  let qs = Moviedb.Workload.queries db ~n:100 ~seed:13 in
  Alcotest.(check int) "one hundred" 100 (List.length qs);
  List.iter
    (fun q ->
      let bound = Binder.bind db q in
      (* Conjunctive SPJ by construction. *)
      ignore (Perso.Qgraph.of_query db bound);
      ignore (Exec.run db bound))
    qs

let test_workload_connected () =
  (* Every multi-relation query must have enough join predicates to
     connect its FROM list (walk construction guarantees |joins| =
     |rels| - 1). *)
  let db = Moviedb.Datagen.generate (small_cfg 12) in
  let qs = Moviedb.Workload.queries db ~n:50 ~seed:14 in
  List.iter
    (fun q ->
      let n_rels = List.length q.Sql_ast.from in
      let joins =
        List.filter
          (function
            | Sql_ast.P_cmp (Sql_ast.Eq, Sql_ast.S_attr a, Sql_ast.S_attr b) ->
                a.Sql_ast.tv <> b.Sql_ast.tv
            | _ -> false)
          (Sql_ast.conjuncts q.Sql_ast.where)
      in
      Alcotest.(check int) "spanning joins" (n_rels - 1) (List.length joins))
    qs

let test_workload_deterministic () =
  let db = Moviedb.Datagen.generate (small_cfg 12) in
  let s q = Sql_print.query_to_string q in
  let q1 = List.map s (Moviedb.Workload.queries db ~n:20 ~seed:15) in
  let q2 = List.map s (Moviedb.Workload.queries db ~n:20 ~seed:15) in
  Alcotest.(check (list string)) "same batch" q1 q2

let test_tonight_query_shape () =
  let q = Moviedb.Workload.tonight_query () in
  Alcotest.(check int) "movie+play" 2 (List.length q.Sql_ast.from);
  let db = Moviedb.Personas.tiny_db () in
  let res = Engine.run_query db q in
  Alcotest.(check int) "twelve screenings" 12 (List.length res.Exec.rows)

(* ----------------------------- Personas ---------------------------- *)

let test_personas_validate () =
  let db = Moviedb.Personas.tiny_db () in
  Alcotest.(check bool) "julie valid" true
    (Perso.Profile.validate db (Moviedb.Personas.julie ()) = Ok ());
  Alcotest.(check bool) "rob valid" true
    (Perso.Profile.validate db (Moviedb.Personas.rob ()) = Ok ())

let test_tiny_db_contents () =
  let db = Moviedb.Personas.tiny_db () in
  let res =
    Helpers.run db
      "select m.title from movie m, directed d, director r where m.mid = d.mid and \
       d.did = r.did and r.name = 'W. Allen'"
  in
  Alcotest.(check int) "three Allen movies" 3 (List.length res.Exec.rows)

let () =
  Alcotest.run "moviedb"
    [
      ( "datagen",
        [
          Alcotest.test_case "cardinalities" `Quick test_datagen_cardinalities;
          Alcotest.test_case "fk integrity" `Quick test_datagen_fk_integrity;
          Alcotest.test_case "deterministic" `Quick test_datagen_deterministic;
          Alcotest.test_case "zipf skew" `Quick test_datagen_zipf_skew;
          Alcotest.test_case "frequency ranks" `Quick test_datagen_frequency_ranks;
          Alcotest.test_case "exact reproduction" `Quick
            test_datagen_exact_reproduction;
          Alcotest.test_case "date window" `Quick test_datagen_dates_in_window;
          Alcotest.test_case "plays distinct" `Quick
            test_datagen_play_movies_distinct_per_slot;
          Alcotest.test_case "scale proportions" `Quick test_scale_proportions;
        ] );
      ( "profile-gen",
        [
          Alcotest.test_case "size/validity" `Quick test_profile_gen_size_and_validity;
          Alcotest.test_case "deterministic" `Quick test_profile_gen_deterministic;
          Alcotest.test_case "join fraction" `Quick test_profile_gen_join_fraction;
        ] );
      ( "workload",
        [
          Alcotest.test_case "bind and run x100" `Quick test_workload_queries_bind_and_run;
          Alcotest.test_case "connected" `Quick test_workload_connected;
          Alcotest.test_case "deterministic" `Quick test_workload_deterministic;
          Alcotest.test_case "tonight query" `Quick test_tonight_query_shape;
        ] );
      ( "personas",
        [
          Alcotest.test_case "profiles validate" `Quick test_personas_validate;
          Alcotest.test_case "tiny db contents" `Quick test_tiny_db_contents;
        ] );
    ]
