(* The log-structured profile store: codec round trips, WAL tail
   classification, rotation, compaction, recovery, and damage
   detection. *)

open Perso_store

let fresh_dir () =
  let f = Filename.temp_file "store" "" in
  Sys.remove f;
  f

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let e cond degree = { Codec.cond; degree }

let entries_t =
  Alcotest.testable
    (fun ppf l ->
      List.iter (fun { Codec.cond; degree } ->
          Format.fprintf ppf "(%s,%g)" cond degree)
        l)
    (List.equal (fun a b ->
         a.Codec.cond = b.Codec.cond && a.Codec.degree = b.Codec.degree))

(* ------------------------------- crc32 ------------------------------ *)

let test_crc_vector () =
  (* CRC-32/IEEE check value. *)
  Alcotest.(check int) "123456789" 0xCBF43926 (Crc32.string "123456789");
  Alcotest.(check int) "sub matches slice" (Crc32.string "456")
    (Crc32.sub "123456789" ~pos:3 ~len:3);
  Alcotest.(check bool) "damage changes crc" true
    (Crc32.string "123456788" <> Crc32.string "123456789")

(* ------------------------------- codec ------------------------------ *)

let roundtrip c v =
  match Codec.decode c (Codec.encode c v) with
  | Ok v' -> v'
  | Error msg -> Alcotest.failf "decode failed: %s" msg

let test_codec_roundtrip () =
  List.iter
    (fun n -> Alcotest.(check int) "varint" n (roundtrip Codec.varint n))
    [ 0; 1; 127; 128; 300; 1 lsl 20; max_int ];
  List.iter
    (fun f ->
      Alcotest.(check bool) "float bit-exact" true
        (Int64.equal
           (Int64.bits_of_float f)
           (Int64.bits_of_float (roundtrip Codec.float64 f))))
    [ 0.; 0.1; -1.5; infinity; 0.9; 1e-300 ];
  let r =
    Codec.Put
      {
        user = "julie";
        revision = 7;
        entries = [ e "GENRE.genre = 'comedy'" 0.9; e "" 0.5 ];
      }
  in
  (match Codec.decode_record (Codec.encode_record r) with
  | Ok r' -> Alcotest.(check bool) "record" true (r = r')
  | Error msg -> Alcotest.failf "record decode: %s" msg);
  let d = Codec.Delete { user = "bob"; revision = 3 } in
  match Codec.decode_record (Codec.encode_record d) with
  | Ok d' -> Alcotest.(check bool) "tombstone" true (d = d')
  | Error msg -> Alcotest.failf "tombstone decode: %s" msg

let test_codec_rejects_damage () =
  let s = Codec.encode_record (Codec.Put { user = "u"; revision = 1; entries = [] }) in
  (* truncation *)
  (match Codec.decode_record (String.sub s 0 (String.length s - 1)) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated record decoded");
  (* trailing garbage *)
  (match Codec.decode_record (s ^ "x") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing bytes accepted");
  (* unknown tag *)
  match Codec.decode_record "\xff" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad tag accepted"

(* -------------------------------- wal ------------------------------- *)

let test_wal_scan_classification () =
  let f1 = Wal.frame "hello" and f2 = Wal.frame "world!" in
  let whole = f1 ^ f2 in
  let collect data =
    let got = ref [] in
    let len, fin = Wal.scan_string data (fun ~pos:_ p -> got := p :: !got) in
    (List.rev !got, len, fin)
  in
  (* clean *)
  (match collect whole with
  | [ "hello"; "world!" ], len, Wal.Clean ->
      Alcotest.(check int) "clean length" (String.length whole) len
  | _, _, _ -> Alcotest.fail "clean scan misparsed");
  (* torn: partial header of the second frame *)
  (match collect (String.sub whole 0 (String.length f1 + 3)) with
  | [ "hello" ], len, Wal.Torn { at; _ } ->
      Alcotest.(check int) "valid prefix" (String.length f1) len;
      Alcotest.(check int) "torn at" (String.length f1) at
  | _ -> Alcotest.fail "partial header not Torn");
  (* torn: payload cut short *)
  (match collect (String.sub whole 0 (String.length whole - 2)) with
  | [ "hello" ], _, Wal.Torn _ -> ()
  | _ -> Alcotest.fail "short payload not Torn");
  (* corrupt: flip a payload byte in a complete frame *)
  let b = Bytes.of_string whole in
  Bytes.set b (Wal.header_bytes + 1) 'X';
  (match collect (Bytes.to_string b) with
  | [], 0, Wal.Corrupt { at = 0; _ } -> ()
  | _ -> Alcotest.fail "bad CRC not Corrupt at 0");
  (* corrupt: absurd length field is corruption, not a torn tail *)
  let b = Bytes.of_string whole in
  Bytes.set_int32_le b 0 0x7fffffffl;
  match collect (Bytes.to_string b) with
  | [], 0, Wal.Corrupt _ -> ()
  | _ -> Alcotest.fail "absurd length not Corrupt"

let test_wal_append_read () =
  let dir = fresh_dir () in
  Sys.mkdir dir 0o755;
  let path = Filename.concat dir "w.log" in
  let w = Wal.open_append path in
  let off1 = Wal.append w "one" in
  let off2 = Wal.append w "twotwo" in
  Wal.close w;
  Alcotest.(check int) "first at 0" 0 off1;
  Alcotest.(check (result string string))
    "read back"
    (Ok "twotwo")
    (Wal.read_frame ~path ~off:off2 ~len:(Wal.header_bytes + 6));
  (* reopening appends after the existing frames *)
  let w = Wal.open_append path in
  let off3 = Wal.append w "three" in
  Wal.close w;
  Alcotest.(check bool) "appends at end" true (off3 > off2)

(* ------------------------------- store ------------------------------ *)

let small_config =
  { Store.default_config with segment_bytes = 128; fsync = false }

let test_store_basics () =
  let dir = fresh_dir () in
  let s = Store.open_ ~config:small_config dir in
  Alcotest.(check (option entries_t)) "absent" None (Store.load s ~user:"u");
  Store.save s ~user:"julie" ~revision:1 [ e "a" 0.9 ];
  Store.save s ~user:"bob" ~revision:1 [ e "b" 0.5 ];
  Store.save s ~user:"julie" ~revision:2 [ e "a" 0.9; e "c" 0.4 ];
  Alcotest.(check (option entries_t))
    "latest wins"
    (Some [ e "a" 0.9; e "c" 0.4 ])
    (Store.load s ~user:"julie");
  Alcotest.(check int) "revision" 2 (Store.revision s ~user:"julie");
  Alcotest.(check (list string)) "users" [ "bob"; "julie" ] (Store.users s);
  Store.delete s ~user:"bob" ~revision:2;
  Alcotest.(check (option entries_t)) "deleted" None (Store.load s ~user:"bob");
  Alcotest.(check (list string)) "live users" [ "julie" ] (Store.users s);
  Alcotest.(check (list (pair string int)))
    "revisions keep tombstones"
    [ ("bob", 2); ("julie", 2) ]
    (Store.revisions s);
  Store.close s

let test_reopen_replays () =
  let dir = fresh_dir () in
  let s = Store.open_ ~config:small_config dir in
  (* enough traffic to force several rotations *)
  for i = 1 to 40 do
    Store.save s
      ~user:(Printf.sprintf "u%02d" (i mod 7))
      ~revision:i
      [ e (String.make 20 'x') (float_of_int i) ]
  done;
  Store.delete s ~user:"u03" ~revision:41;
  let want_users = Store.users s in
  let want_revs = Store.revisions s in
  let rotations = (Store.stats s).Store.rotations in
  Store.close s;
  Alcotest.(check bool) "rotated" true (rotations > 0);
  let s' = Store.open_ ~config:small_config dir in
  Alcotest.(check (list string)) "users survive" want_users (Store.users s');
  Alcotest.(check (list (pair string int)))
    "revisions survive" want_revs (Store.revisions s');
  Alcotest.(check (option entries_t)) "tombstone survives" None
    (Store.load s' ~user:"u03");
  Store.close s'

let test_compaction () =
  let dir = fresh_dir () in
  let s = Store.open_ ~config:small_config dir in
  for i = 1 to 60 do
    Store.save s
      ~user:(Printf.sprintf "u%d" (i mod 3))
      ~revision:i
      [ e (String.make 24 'y') 0.5 ]
  done;
  Store.delete s ~user:"u0" ~revision:61;
  Store.compact_now s;
  let st = Store.stats s in
  Alcotest.(check int) "one sealed segment" 1 st.Store.segments;
  Alcotest.(check bool) "compacted" true (st.Store.compactions > 0);
  Alcotest.(check (list string)) "live users" [ "u1"; "u2" ] (Store.users s);
  Store.close s;
  (* the compacted state recovers *)
  let s' = Store.open_ ~config:small_config dir in
  Alcotest.(check int) "u0 tombstone revision survives compaction" 61
    (Store.revision s' ~user:"u0");
  Alcotest.(check (option entries_t)) "u0 stays deleted" None
    (Store.load s' ~user:"u0");
  Alcotest.(check bool) "u1 content intact" true
    (Store.load s' ~user:"u1" <> None);
  Store.close s'

(* ------------------------------ damage ------------------------------ *)

let sealed_segment dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun n -> String.length n >= 4 && String.sub n 0 4 = "seg-")
  |> function
  | [] -> Alcotest.fail "no sealed segment on disk"
  | n :: _ -> Filename.concat dir n

let store_with_sealed () =
  let dir = fresh_dir () in
  let s = Store.open_ ~config:small_config dir in
  for i = 1 to 20 do
    Store.save s ~user:(Printf.sprintf "u%d" i) ~revision:i
      [ e (String.make 24 'z') 0.5 ]
  done;
  Store.close s;
  dir

let test_sealed_bad_crc () =
  let dir = store_with_sealed () in
  let victim = sealed_segment dir in
  let b = Bytes.of_string (read_file victim) in
  Bytes.set b (Wal.header_bytes + 2)
    (if Bytes.get b (Wal.header_bytes + 2) = 'z' then 'q' else 'z');
  write_file victim (Bytes.to_string b);
  match Store.open_r ~config:small_config dir with
  | Error (Store.Bad_crc _) -> ()
  | Error e -> Alcotest.failf "expected Bad_crc: %s" (Store.error_to_string e)
  | Ok _ -> Alcotest.fail "corrupt sealed segment opened"

let test_sealed_truncated () =
  let dir = store_with_sealed () in
  let victim = sealed_segment dir in
  let contents = read_file victim in
  write_file victim (String.sub contents 0 (String.length contents - 3));
  match Store.open_r ~config:small_config dir with
  | Error (Store.Torn_log _) -> ()
  | Error e -> Alcotest.failf "expected Torn_log: %s" (Store.error_to_string e)
  | Ok _ -> Alcotest.fail "truncated sealed segment opened"

let test_wal_torn_tail_truncated () =
  let dir = fresh_dir () in
  let s = Store.open_ ~config:small_config dir in
  Store.save s ~user:"keep" ~revision:1 [ e "a" 0.9 ];
  Store.close s;
  (* simulate a crash mid-append: a partial frame at the WAL tail *)
  let wal =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun n -> String.length n >= 4 && String.sub n 0 4 = "wal-")
    |> function
    | [ n ] -> Filename.concat dir n
    | _ -> Alcotest.fail "expected one wal file"
  in
  let torn = Wal.frame (Codec.encode_record
      (Codec.Put { user = "lost"; revision = 2; entries = [] }))
  in
  write_file wal (read_file wal ^ String.sub torn 0 (String.length torn - 2));
  let s' = Store.open_ ~config:small_config dir in
  Alcotest.(check int) "tail truncated" 1 (Store.stats s').Store.torn_truncated;
  Alcotest.(check (option entries_t)) "prefix kept" (Some [ e "a" 0.9 ])
    (Store.load s' ~user:"keep");
  Alcotest.(check int) "unacknowledged record gone" 0
    (Store.revision s' ~user:"lost");
  (* and the truncation is durable: the next open is clean *)
  Store.close s';
  let s'' = Store.open_ ~config:small_config dir in
  Alcotest.(check int) "no torn tail second time" 0
    (Store.stats s'').Store.torn_truncated;
  Store.close s''

let test_wal_mid_corruption_fatal () =
  let dir = fresh_dir () in
  let s = Store.open_ ~config:small_config dir in
  Store.save s ~user:"a" ~revision:1 [ e "x" 0.1 ];
  Store.save s ~user:"b" ~revision:2 [ e "y" 0.2 ];
  Store.close s;
  let wal =
    Sys.readdir dir |> Array.to_list
    |> List.find (fun n -> String.length n >= 4 && String.sub n 0 4 = "wal-")
  in
  let path = Filename.concat dir wal in
  let b = Bytes.of_string (read_file path) in
  (* flip a byte inside the FIRST frame: not a tail, so not torn *)
  Bytes.set b (Wal.header_bytes)
    (Char.chr (Char.code (Bytes.get b Wal.header_bytes) lxor 1));
  write_file path (Bytes.to_string b);
  match Store.open_r ~config:small_config dir with
  | Error (Store.Bad_crc _) -> ()
  | Error e -> Alcotest.failf "expected Bad_crc: %s" (Store.error_to_string e)
  | Ok _ -> Alcotest.fail "mid-log corruption silently dropped"

let test_strays_removed () =
  let dir = store_with_sealed () in
  let stray_wal = Filename.concat dir "wal-999999.log" in
  let stray_tmp = Filename.concat dir "MANIFEST.tmp" in
  write_file stray_wal "leftover";
  write_file stray_tmp "leftover";
  let s = Store.open_ ~config:small_config dir in
  Alcotest.(check bool) "stray wal removed" false (Sys.file_exists stray_wal);
  Alcotest.(check bool) "stray tmp removed" false (Sys.file_exists stray_tmp);
  Store.close s

let test_missing_manifest () =
  (* with sealed segments: refuse *)
  let dir = store_with_sealed () in
  Sys.remove (Filename.concat dir "MANIFEST");
  (match Store.open_r ~config:small_config dir with
  | Error (Store.Malformed _) -> ()
  | Error e -> Alcotest.failf "expected Malformed: %s" (Store.error_to_string e)
  | Ok _ -> Alcotest.fail "manifest-less store with segments opened");
  (* with only wal files: crash during init, nothing acknowledged —
     re-initialize fresh *)
  let dir2 = fresh_dir () in
  Sys.mkdir dir2 0o755;
  write_file (Filename.concat dir2 "wal-000001.log") "partial init";
  let s = Store.open_ ~config:small_config dir2 in
  Alcotest.(check (list string)) "fresh store" [] (Store.users s);
  Store.close s

let test_empty_manifest_malformed () =
  let dir = fresh_dir () in
  let s = Store.open_ ~config:small_config dir in
  Store.close s;
  write_file (Filename.concat dir "MANIFEST") "";
  match Store.open_r ~config:small_config dir with
  | Error (Store.Malformed _) -> ()
  | Error e -> Alcotest.failf "expected Malformed: %s" (Store.error_to_string e)
  | Ok _ -> Alcotest.fail "empty manifest accepted"

(* ------------------------------ backend ----------------------------- *)

let test_backend_parity () =
  let dir = fresh_dir () in
  let mem = Backend.memory () in
  let dsk = Backend.disk ~config:small_config dir in
  let ops b =
    b.Backend.save ~user:"u1" ~revision:1 [ e "a" 0.9 ];
    b.Backend.save ~user:"u2" ~revision:1 [ e "b" 0.8 ];
    b.Backend.save ~user:"u1" ~revision:2 [ e "c" 0.7 ];
    b.Backend.delete ~user:"u2" ~revision:2
  in
  ops mem;
  ops dsk;
  List.iter
    (fun (b, name) ->
      Alcotest.(check (option entries_t))
        (name ^ " u1") (Some [ e "c" 0.7 ])
        (b.Backend.load ~user:"u1");
      Alcotest.(check (option entries_t)) (name ^ " u2") None
        (b.Backend.load ~user:"u2");
      Alcotest.(check (list (pair string int)))
        (name ^ " revisions")
        [ ("u1", 2); ("u2", 2) ]
        (b.Backend.revisions ()))
    [ (mem, "memory"); (dsk, "disk") ];
  dsk.Backend.close ();
  mem.Backend.close ()

let () =
  Alcotest.run "store"
    [
      ( "crc32",
        [ Alcotest.test_case "check vector" `Quick test_crc_vector ] );
      ( "codec",
        [
          Alcotest.test_case "roundtrip" `Quick test_codec_roundtrip;
          Alcotest.test_case "rejects damage" `Quick test_codec_rejects_damage;
        ] );
      ( "wal",
        [
          Alcotest.test_case "scan classification" `Quick
            test_wal_scan_classification;
          Alcotest.test_case "append + read_frame" `Quick test_wal_append_read;
        ] );
      ( "store",
        [
          Alcotest.test_case "basics" `Quick test_store_basics;
          Alcotest.test_case "reopen replays" `Quick test_reopen_replays;
          Alcotest.test_case "compaction" `Quick test_compaction;
        ] );
      ( "damage",
        [
          Alcotest.test_case "sealed bad crc" `Quick test_sealed_bad_crc;
          Alcotest.test_case "sealed truncated" `Quick test_sealed_truncated;
          Alcotest.test_case "wal torn tail truncated" `Quick
            test_wal_torn_tail_truncated;
          Alcotest.test_case "wal mid corruption fatal" `Quick
            test_wal_mid_corruption_fatal;
          Alcotest.test_case "strays removed" `Quick test_strays_removed;
          Alcotest.test_case "missing manifest" `Quick test_missing_manifest;
          Alcotest.test_case "empty manifest" `Quick
            test_empty_manifest_malformed;
        ] );
      ( "backend",
        [ Alcotest.test_case "memory/disk parity" `Quick test_backend_parity ] );
    ]
