(* Fault injection: under a seeded 5% fault rate, the §7 random
   workload must end every query in a structured answer or a typed
   error — never an escaped exception. *)

open Relal

let seed =
  match Sys.getenv_opt "CHAOS_SEED" with
  | Some s -> (try int_of_string s with _ -> 1337)
  | None -> 1337

let test_workload_under_faults () =
  let db = Moviedb.Datagen.(generate (scale ~seed 200)) in
  let profile =
    Moviedb.Profile_gen.generate db
      { Moviedb.Profile_gen.default with seed; n_selections = 10 }
  in
  let queries = Moviedb.Workload.queries db ~n:100 ~seed in
  let ok = ref 0 and degraded = ref 0 and errors = ref 0 in
  let (), stats =
    Chaos.with_faults ~seed ~p:0.05 (fun () ->
        List.iter
          (fun q ->
            match Perso.Personalize.personalize_r db profile q with
            | Ok run ->
                incr ok;
                if run.Perso.Personalize.degradations <> [] then incr degraded
            | Error e ->
                incr errors;
                (* every error renders as a one-line typed message *)
                Alcotest.(check bool) "error has a message" true
                  (String.length (Perso.Error.to_string e) > 0))
          queries)
  in
  Alcotest.(check int) "every query accounted for" 100 (!ok + !errors);
  Alcotest.(check bool) "chaos actually injected faults" true
    (stats.Chaos.injected > 0);
  Alcotest.(check bool) "chaos points were evaluated" true
    (stats.Chaos.evaluations > stats.Chaos.injected);
  Alcotest.(check bool) "some queries still succeed" true (!ok > 0);
  Alcotest.(check bool) "chaos disarmed afterwards" false (Chaos.armed ())

let test_determinism () =
  (* Same seed, same coin flips: the armed RNG stream is reproducible. *)
  let flips seed =
    let stats = Chaos.arm ~seed ~p:0.5 () in
    Fun.protect ~finally:Chaos.disarm (fun () ->
        List.init 100 (fun _ ->
            match Chaos.point Chaos.Scan with
            | () -> false
            | exception Chaos.Injected _ -> true)
        |> fun l -> (l, stats.Chaos.injected))
  in
  let a, na = flips 7 in
  let b, nb = flips 7 in
  Alcotest.(check (list bool)) "identical fault schedule" a b;
  Alcotest.(check int) "identical counts" na nb;
  Alcotest.(check bool) "p=0.5 injects roughly half" true (na > 20 && na < 80)

let test_disarmed_is_free () =
  Alcotest.(check bool) "disarmed by default" false (Chaos.armed ());
  Chaos.point Chaos.Scan;
  Chaos.point Chaos.Persist_write

let test_retry_transient () =
  let calls = ref 0 in
  let v =
    Chaos.retry ~attempts:3 ~backoff_ms:0. (fun () ->
        incr calls;
        if !calls < 3 then
          raise (Chaos.Injected { point = Chaos.Scan; transient = true });
        42)
  in
  Alcotest.(check int) "returned after retries" 42 v;
  Alcotest.(check int) "attempted thrice" 3 !calls

let test_retry_exhausts () =
  let calls = ref 0 in
  (match
     Chaos.retry ~attempts:2 ~backoff_ms:0. (fun () ->
         incr calls;
         raise (Chaos.Injected { point = Chaos.Scan; transient = true }))
   with
  | (_ : int) -> Alcotest.fail "expected the fault to escape"
  | exception Chaos.Injected { transient = true; _ } -> ());
  Alcotest.(check int) "bounded attempts" 2 !calls

let test_retry_permanent_not_retried () =
  let calls = ref 0 in
  (match
     Chaos.retry ~attempts:5 ~backoff_ms:0. (fun () ->
         incr calls;
         raise (Chaos.Injected { point = Chaos.Join_build; transient = false }))
   with
  | (_ : int) -> Alcotest.fail "expected the fault to escape"
  | exception Chaos.Injected { transient = false; _ } -> ());
  Alcotest.(check int) "no retry for permanent faults" 1 !calls

let test_error_classification () =
  let storage =
    Perso.Error.of_exn_any
      (Chaos.Injected { point = Chaos.Persist_write; transient = false })
  in
  (match storage with
  | Perso.Error.Storage _ -> ()
  | e -> Alcotest.failf "persist fault should be storage: %s" (Perso.Error.to_string e));
  match
    Perso.Error.of_exn_any
      (Chaos.Injected { point = Chaos.Scan; transient = true })
  with
  | Perso.Error.Internal msg ->
      let contains s sub =
        let n = String.length sub in
        let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "names the point" true (contains msg "scan")
  | e -> Alcotest.failf "scan fault should be internal: %s" (Perso.Error.to_string e)

let () =
  Alcotest.run "chaos"
    [
      ( "injection",
        [
          Alcotest.test_case "workload under 5% faults" `Quick
            test_workload_under_faults;
          Alcotest.test_case "deterministic from seed" `Quick test_determinism;
          Alcotest.test_case "disarmed hooks are no-ops" `Quick
            test_disarmed_is_free;
        ] );
      ( "retry",
        [
          Alcotest.test_case "transient retried" `Quick test_retry_transient;
          Alcotest.test_case "attempts bounded" `Quick test_retry_exhausts;
          Alcotest.test_case "permanent not retried" `Quick
            test_retry_permanent_not_retried;
          Alcotest.test_case "typed classification" `Quick
            test_error_classification;
        ] );
    ]
