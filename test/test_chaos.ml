(* Fault injection: under a seeded 5% fault rate, the §7 random
   workload must end every query in a structured answer or a typed
   error — never an escaped exception. *)

open Relal

(* Retry backoff must not cost wall-clock in tests; per-call [?sleep]
   still takes precedence where a test inspects the waits. *)
let () = Chaos.set_sleep ignore

let seed =
  match Sys.getenv_opt "CHAOS_SEED" with
  | Some s -> (try int_of_string s with _ -> 1337)
  | None -> 1337

let test_workload_under_faults () =
  let db = Moviedb.Datagen.(generate (scale ~seed 200)) in
  let profile =
    Moviedb.Profile_gen.generate db
      { Moviedb.Profile_gen.default with seed; n_selections = 10 }
  in
  let queries = Moviedb.Workload.queries db ~n:100 ~seed in
  let ok = ref 0 and degraded = ref 0 and errors = ref 0 in
  let (), stats =
    Chaos.with_faults ~seed ~p:0.05 (fun () ->
        List.iter
          (fun q ->
            match Perso.Personalize.personalize_r db profile q with
            | Ok run ->
                incr ok;
                if run.Perso.Personalize.degradations <> [] then incr degraded
            | Error e ->
                incr errors;
                (* every error renders as a one-line typed message *)
                Alcotest.(check bool) "error has a message" true
                  (String.length (Perso.Error.to_string e) > 0))
          queries)
  in
  Alcotest.(check int) "every query accounted for" 100 (!ok + !errors);
  Alcotest.(check bool) "chaos actually injected faults" true
    (stats.Chaos.injected > 0);
  Alcotest.(check bool) "chaos points were evaluated" true
    (stats.Chaos.evaluations > stats.Chaos.injected);
  Alcotest.(check bool) "some queries still succeed" true (!ok > 0);
  Alcotest.(check bool) "chaos disarmed afterwards" false (Chaos.armed ())

let test_determinism () =
  (* Same seed, same coin flips: the armed RNG stream is reproducible. *)
  let flips seed =
    let stats = Chaos.arm ~seed ~p:0.5 () in
    Fun.protect ~finally:Chaos.disarm (fun () ->
        List.init 100 (fun _ ->
            match Chaos.point Chaos.Scan with
            | () -> false
            | exception Chaos.Injected _ -> true)
        |> fun l -> (l, stats.Chaos.injected))
  in
  let a, na = flips 7 in
  let b, nb = flips 7 in
  Alcotest.(check (list bool)) "identical fault schedule" a b;
  Alcotest.(check int) "identical counts" na nb;
  Alcotest.(check bool) "p=0.5 injects roughly half" true (na > 20 && na < 80)

let test_disarmed_is_free () =
  Alcotest.(check bool) "disarmed by default" false (Chaos.armed ());
  Chaos.point Chaos.Scan;
  Chaos.point Chaos.Persist_write

let test_retry_transient () =
  let calls = ref 0 in
  let v =
    Chaos.retry ~attempts:3 ~backoff_ms:0. (fun () ->
        incr calls;
        if !calls < 3 then
          raise (Chaos.Injected { point = Chaos.Scan; transient = true });
        42)
  in
  Alcotest.(check int) "returned after retries" 42 v;
  Alcotest.(check int) "attempted thrice" 3 !calls

let test_retry_exhausts () =
  let calls = ref 0 in
  (match
     Chaos.retry ~attempts:2 ~backoff_ms:0. (fun () ->
         incr calls;
         raise (Chaos.Injected { point = Chaos.Scan; transient = true }))
   with
  | (_ : int) -> Alcotest.fail "expected the fault to escape"
  | exception Chaos.Injected { transient = true; _ } -> ());
  Alcotest.(check int) "bounded attempts" 2 !calls

let test_retry_permanent_not_retried () =
  let calls = ref 0 in
  (match
     Chaos.retry ~attempts:5 ~backoff_ms:0. (fun () ->
         incr calls;
         raise (Chaos.Injected { point = Chaos.Join_build; transient = false }))
   with
  | (_ : int) -> Alcotest.fail "expected the fault to escape"
  | exception Chaos.Injected { transient = false; _ } -> ());
  Alcotest.(check int) "no retry for permanent faults" 1 !calls

let always_transient calls () =
  incr calls;
  raise (Chaos.Injected { point = Chaos.Scan; transient = true })

let sleeps_of ?attempts ?backoff_ms ?jitter_seed () =
  let sleeps = ref [] and calls = ref 0 in
  (match
     Chaos.retry ?attempts ?backoff_ms ?jitter_seed
       ~sleep:(fun ms -> sleeps := ms :: !sleeps)
       (always_transient calls)
   with
  | (_ : int) -> Alcotest.fail "expected the fault to escape"
  | exception Chaos.Injected { transient = true; _ } -> ());
  (List.rev !sleeps, !calls)

let test_retry_jitter_bounds () =
  (* Decorrelated jitter: one wait per retry, the first equal to the
     base, each subsequent one drawn from [base, 3 x previous], capped
     at 100 ms. *)
  let base = 4. in
  let sleeps, calls = sleeps_of ~attempts:6 ~backoff_ms:base () in
  Alcotest.(check int) "six attempts" 6 calls;
  Alcotest.(check int) "one wait per retry" 5 (List.length sleeps);
  Alcotest.(check (float 0.)) "first wait is the base" base (List.hd sleeps);
  let rec check_chain prev = function
    | [] -> ()
    | w :: tl ->
        Alcotest.(check bool) "wait >= base" true (w >= base);
        Alcotest.(check bool) "wait <= 3 x previous" true
          (w <= Float.max base (3. *. prev) +. 1e-9);
        Alcotest.(check bool) "wait <= cap" true (w <= 100.);
        check_chain w tl
  in
  check_chain (List.hd sleeps) (List.tl sleeps)

let test_retry_jitter_deterministic () =
  let a, _ = sleeps_of ~attempts:5 ~backoff_ms:2. ~jitter_seed:21 () in
  let b, _ = sleeps_of ~attempts:5 ~backoff_ms:2. ~jitter_seed:21 () in
  Alcotest.(check (list (float 0.))) "same seed, same schedule" a b

let test_retry_zero_backoff_no_sleep () =
  let sleeps, _ = sleeps_of ~attempts:4 ~backoff_ms:0. () in
  Alcotest.(check (list (float 0.))) "zero backoff never sleeps" [] sleeps

(* ------------------------ profile-save atomicity --------------------- *)

let profile_of_strings entries =
  match Perso.Profile.of_string (String.concat "\n" entries) with
  | Ok p -> p
  | Error e -> Alcotest.failf "bad profile text: %s" e

let profile_fingerprint p =
  Perso.Profile.entries p
  |> List.map (fun (atom, deg) ->
         Printf.sprintf "%s@%g" (Perso.Atom.to_string atom)
           (Perso.Degree.to_float deg))
  |> List.sort compare

let load_fingerprint db user =
  match Perso.Profile_store.load db ~user with
  | Ok p -> profile_fingerprint p
  | Error errs -> Alcotest.failf "load failed: %s" (String.concat "; " errs)

let test_profile_save_atomic () =
  (* All-or-nothing under injected Store_mutate faults: whatever seed
     the fault lands on, a failed save leaves the OLD profile loadable
     and a successful one the NEW — never an empty or partial store.
     Another user's rows ride along to catch cross-user clobbering. *)
  let old_p =
    profile_of_strings [ "[ GENRE.genre = 'comedy', 0.9 ]" ]
  in
  let new_p =
    profile_of_strings
      [ "[ GENRE.genre = 'drama', 0.8 ]"; "[ THEATRE.region = 'downtown', 0.7 ]" ]
  in
  let rob =
    profile_of_strings [ "[ GENRE.genre = 'sci-fi', 1 ]" ]
  in
  let old_fp = profile_fingerprint old_p
  and new_fp = profile_fingerprint new_p
  and rob_fp = profile_fingerprint rob in
  let saw_fault = ref false and saw_success = ref false in
  for seed = 0 to 19 do
    let db = Moviedb.Personas.tiny_db () in
    Perso.Profile_store.save db ~user:"julie" old_p;
    Perso.Profile_store.save db ~user:"rob" rob;
    let stats = Chaos.arm ~transient_ratio:0. ~seed ~p:0.3 () in
    let outcome =
      match Perso.Profile_store.save db ~user:"julie" new_p with
      | () -> `Saved
      | exception Chaos.Injected _ -> `Faulted
    in
    Chaos.disarm ();
    Alcotest.(check bool) "store mutations crossed chaos points" true
      (stats.Chaos.evaluations > 0);
    (match outcome with
    | `Saved ->
        saw_success := true;
        Alcotest.(check (list string)) "new profile loadable" new_fp
          (load_fingerprint db "julie")
    | `Faulted ->
        saw_fault := true;
        Alcotest.(check (list string)) "old profile intact" old_fp
          (load_fingerprint db "julie"));
    Alcotest.(check (list string)) "other user untouched" rob_fp
      (load_fingerprint db "rob")
  done;
  Alcotest.(check bool) "some seeds faulted" true !saw_fault;
  Alcotest.(check bool) "some seeds succeeded" true !saw_success

let test_profile_save_transient_retried () =
  (* The server saves under Chaos.retry: a store rewrite that fails with
     a transient fault mid-way rolls back, and a later retry lands the
     new profile — for every seed, the save must come out whole. *)
  let old_p = profile_of_strings [ "[ GENRE.genre = 'comedy', 0.9 ]" ] in
  let new_p = profile_of_strings [ "[ GENRE.genre = 'drama', 0.8 ]" ] in
  let new_fp = profile_fingerprint new_p in
  let saw_inject = ref false in
  for seed = 0 to 9 do
    let db = Moviedb.Personas.tiny_db () in
    Perso.Profile_store.save db ~user:"julie" old_p;
    let (), stats =
      Chaos.with_faults ~transient_ratio:1.0 ~seed ~p:0.5 (fun () ->
          Chaos.retry ~attempts:50 ~backoff_ms:0. (fun () ->
              Perso.Profile_store.save db ~user:"julie" new_p))
    in
    if stats.Chaos.injected > 0 then saw_inject := true;
    Alcotest.(check (list string)) "retry landed the new profile" new_fp
      (load_fingerprint db "julie")
  done;
  Alcotest.(check bool) "faults were injected" true !saw_inject

let test_error_classification () =
  let storage =
    Perso.Error.of_exn_any
      (Chaos.Injected { point = Chaos.Persist_write; transient = false })
  in
  (match storage with
  | Perso.Error.Storage _ -> ()
  | e -> Alcotest.failf "persist fault should be storage: %s" (Perso.Error.to_string e));
  match
    Perso.Error.of_exn_any
      (Chaos.Injected { point = Chaos.Scan; transient = true })
  with
  | Perso.Error.Internal msg ->
      let contains s sub =
        let n = String.length sub in
        let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "names the point" true (contains msg "scan")
  | e -> Alcotest.failf "scan fault should be internal: %s" (Perso.Error.to_string e)

let () =
  Alcotest.run "chaos"
    [
      ( "injection",
        [
          Alcotest.test_case "workload under 5% faults" `Quick
            test_workload_under_faults;
          Alcotest.test_case "deterministic from seed" `Quick test_determinism;
          Alcotest.test_case "disarmed hooks are no-ops" `Quick
            test_disarmed_is_free;
        ] );
      ( "retry",
        [
          Alcotest.test_case "transient retried" `Quick test_retry_transient;
          Alcotest.test_case "attempts bounded" `Quick test_retry_exhausts;
          Alcotest.test_case "permanent not retried" `Quick
            test_retry_permanent_not_retried;
          Alcotest.test_case "decorrelated jitter bounds" `Quick
            test_retry_jitter_bounds;
          Alcotest.test_case "jitter deterministic from seed" `Quick
            test_retry_jitter_deterministic;
          Alcotest.test_case "zero backoff never sleeps" `Quick
            test_retry_zero_backoff_no_sleep;
          Alcotest.test_case "typed classification" `Quick
            test_error_classification;
        ] );
      ( "store",
        [
          Alcotest.test_case "profile save is all-or-nothing" `Quick
            test_profile_save_atomic;
          Alcotest.test_case "transient save fault retried clean" `Quick
            test_profile_save_transient_retried;
        ] );
    ]
