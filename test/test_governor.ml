(* Query governor: budgets trip with partial-progress stats, and the
   personalization degradation ladder records each step it takes. *)

open Relal

let tiny () = Moviedb.Personas.tiny_db ()

let join_sql =
  "select m.title from movie m, genre g where m.mid = g.mid"

let exhausted_of f =
  match f () with
  | _ -> Alcotest.fail "expected Governor.Exhausted"
  | exception Governor.Exhausted p -> p

(* ------------------------------ budgets --------------------------- *)

let test_max_rows () =
  let db = tiny () in
  let gov = Governor.start { Governor.unlimited with max_rows = Some 1 } in
  let p = exhausted_of (fun () -> Engine.run_sql ~gov db join_sql) in
  Alcotest.(check string) "what ran out" "rows" p.Governor.exhausted;
  Alcotest.(check bool) "partial progress recorded" true
    (p.Governor.rows_produced > 1);
  Alcotest.(check bool) "elapsed measured" true (p.Governor.elapsed_ms >= 0.)

let test_expired_deadline () =
  let db = tiny () in
  let gov = Governor.start { Governor.unlimited with deadline_ms = Some 0. } in
  let p = exhausted_of (fun () -> Engine.run_sql ~gov db join_sql) in
  Alcotest.(check string) "what ran out" "deadline" p.Governor.exhausted

let test_one_row_one_ms () =
  (* The resilience contract's acceptance case: a 1-row, 1 ms budget
     yields a typed Resource_exhausted carrying progress stats. *)
  let db = tiny () in
  let gov =
    Governor.start
      { Governor.deadline_ms = Some 1.; max_rows = Some 1;
        max_expansions = None }
  in
  match Perso.Error.guard (fun () -> Engine.run_sql ~gov db join_sql) with
  | Ok _ -> Alcotest.fail "expected Resource_exhausted"
  | Error (Perso.Error.Resource_exhausted p) ->
      Alcotest.(check bool) "names the spent budget" true
        (List.mem p.Governor.exhausted [ "rows"; "deadline" ]);
      Alcotest.(check bool) "message carries stats" true
        (String.length (Governor.progress_to_string p) > 0)
  | Error e -> Alcotest.failf "wrong family: %s" (Perso.Error.to_string e)

let test_unlimited_transparent () =
  let db = tiny () in
  let plain = Engine.run_sql db join_sql in
  let gov = Governor.start Governor.unlimited in
  let governed = Engine.run_sql ~gov db join_sql in
  Alcotest.(check int) "same row count"
    (List.length plain.Exec.rows)
    (List.length governed.Exec.rows)

let test_selection_expansions () =
  let db = tiny () in
  let julie = Moviedb.Personas.julie () in
  let q = Moviedb.Workload.tonight_query () in
  let gov =
    Governor.start { Governor.unlimited with max_expansions = Some 0 }
  in
  let p =
    exhausted_of (fun () -> Perso.Personalize.personalize ~gov db julie q)
  in
  Alcotest.(check string) "what ran out" "expansions" p.Governor.exhausted;
  Alcotest.(check int) "stopped at the first expansion" 1 p.Governor.expansions

let test_poll_stride () =
  (* Pin the amortization contract: [poll] reads the clock exactly every
     64th call, so with an already-expired deadline the first 63 polls
     pass and the 64th raises.  Executor inner loops rely on this being
     cheap; deadline overshoot is bounded by 63 polls' worth of work.
     (The deadline is negative because 63 no-op polls can complete
     within the clock's resolution — elapsed 0 must still count as
     past-deadline.) *)
  let expired = { Governor.unlimited with deadline_ms = Some (-1.) } in
  let gov = Governor.start expired in
  for _ = 1 to 63 do
    Governor.poll gov
  done;
  (match Governor.poll gov with
  | () -> Alcotest.fail "64th poll must read the clock and trip"
  | exception Governor.Exhausted p ->
      Alcotest.(check string) "deadline tripped" "deadline"
        p.Governor.exhausted);
  (* A batch-sized add_rows checks the deadline immediately — a single
     call can announce a whole cross product. *)
  let gov = Governor.start expired in
  (match Governor.add_rows gov 64 with
  | () -> Alcotest.fail "batch-sized add_rows must check immediately"
  | exception Governor.Exhausted _ -> ());
  (* Row-at-a-time accounting stays on the amortized stride. *)
  let gov = Governor.start expired in
  for _ = 1 to 63 do
    Governor.add_rows gov 1
  done;
  match Governor.add_rows gov 1 with
  | () -> Alcotest.fail "64th add_rows must read the clock and trip"
  | exception Governor.Exhausted _ -> ()

(* ------------------------- degradation ladder --------------------- *)

let test_ladder_to_unpersonalized () =
  let db = tiny () in
  let julie = Moviedb.Personas.julie () in
  let q = Moviedb.Workload.tonight_query () in
  let budget = { Governor.unlimited with max_expansions = Some 0 } in
  match Perso.Personalize.personalize_r ~budget db julie q with
  | Error e -> Alcotest.failf "expected a degraded run: %s" (Perso.Error.to_string e)
  | Ok run ->
      Alcotest.(check bool) "unpersonalized answer" true
        (run.Perso.Personalize.outcome = None);
      Alcotest.(check int) "two rungs recorded" 2
        (List.length run.Perso.Personalize.degradations);
      (match run.Perso.Personalize.degradations with
      | [ Perso.Personalize.Reduced { params; cause }; Perso.Personalize.Unpersonalized _ ]
        ->
          (match params.Perso.Personalize.k with
          | Perso.Criteria.Top_r r ->
              Alcotest.(check bool) "K halved" true (r < 5)
          | _ -> Alcotest.fail "unexpected criteria shape");
          (match cause with
          | Perso.Error.Resource_exhausted _ -> ()
          | e -> Alcotest.failf "wrong cause: %s" (Perso.Error.to_string e))
      | _ -> Alcotest.fail "expected Reduced then Unpersonalized");
      Alcotest.(check bool) "plain query still answered" true
        (List.length run.Perso.Personalize.result.Exec.rows > 0)

let test_no_degradation_under_generous_budget () =
  let db = tiny () in
  let julie = Moviedb.Personas.julie () in
  let q = Moviedb.Workload.tonight_query () in
  let budget =
    { Governor.deadline_ms = Some 60_000.; max_rows = Some 1_000_000;
      max_expansions = Some 100_000 }
  in
  match Perso.Personalize.personalize_r ~budget db julie q with
  | Error e -> Alcotest.failf "unexpected error: %s" (Perso.Error.to_string e)
  | Ok run ->
      Alcotest.(check int) "no degradations" 0
        (List.length run.Perso.Personalize.degradations);
      Alcotest.(check bool) "personalized outcome kept" true
        (run.Perso.Personalize.outcome <> None)

let test_hard_errors_not_degraded () =
  let db = tiny () in
  let julie = Moviedb.Personas.julie () in
  match Perso.Personalize.personalize_sql_r db julie "select nope" with
  | Error (Perso.Error.Parse _) -> ()
  | Error e -> Alcotest.failf "wrong family: %s" (Perso.Error.to_string e)
  | Ok _ -> Alcotest.fail "parse errors must not be degraded away"

let test_halve_params () =
  let p =
    { Perso.Personalize.default_params with
      k = Perso.Criteria.Top_r 5; l = `At_least 3 }
  in
  let h = Perso.Personalize.halve_params p in
  (match h.Perso.Personalize.k with
  | Perso.Criteria.Top_r r -> Alcotest.(check int) "K halved" 2 r
  | _ -> Alcotest.fail "criteria shape changed");
  (match h.Perso.Personalize.l with
  | `At_least n -> Alcotest.(check int) "L halved" 1 n
  | _ -> Alcotest.fail "L shape changed");
  let again = Perso.Personalize.halve_params h in
  (match again.Perso.Personalize.k with
  | Perso.Criteria.Top_r r -> Alcotest.(check int) "K floors at 1" 1 r
  | _ -> Alcotest.fail "criteria shape changed")

let () =
  Alcotest.run "governor"
    [
      ( "budgets",
        [
          Alcotest.test_case "max rows" `Quick test_max_rows;
          Alcotest.test_case "expired deadline" `Quick test_expired_deadline;
          Alcotest.test_case "1 row + 1 ms acceptance" `Quick
            test_one_row_one_ms;
          Alcotest.test_case "unlimited is transparent" `Quick
            test_unlimited_transparent;
          Alcotest.test_case "selection expansions" `Quick
            test_selection_expansions;
          Alcotest.test_case "every-64th-call poll granularity" `Quick
            test_poll_stride;
        ] );
      ( "ladder",
        [
          Alcotest.test_case "degrades to unpersonalized" `Quick
            test_ladder_to_unpersonalized;
          Alcotest.test_case "generous budget, no degradation" `Quick
            test_no_degradation_under_generous_budget;
          Alcotest.test_case "hard errors stay errors" `Quick
            test_hard_errors_not_degraded;
          Alcotest.test_case "halve_params" `Quick test_halve_params;
        ] );
    ]
