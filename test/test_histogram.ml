(* Latency histogram: log-bucket boundaries, quantile monotonicity and
   error bound against a sorted-array oracle, and merge algebra
   (associativity/commutativity as qcheck properties). *)

module H = Putil.Histogram

(* ------------------------- bucket boundaries ------------------------- *)

let test_unit_buckets () =
  (* Below sub_count every value gets its own exact bucket. *)
  for v = 0 to H.sub_count - 1 do
    Alcotest.(check int) (Printf.sprintf "index_of %d" v) v (H.index_of v);
    Alcotest.(check (pair int int))
      (Printf.sprintf "bounds %d" v)
      (v, v)
      (H.bounds_of_index v)
  done;
  Alcotest.(check int) "negative clamps" 0 (H.index_of (-17))

let test_octave_boundaries () =
  (* Hand-picked vectors across octave edges: (value, low, high). *)
  let vectors =
    [
      (64, 64, 65);
      (65, 64, 65);
      (66, 66, 67);
      (126, 126, 127);
      (127, 126, 127);
      (128, 128, 131);
      (131, 128, 131);
      (132, 132, 135);
      (255, 252, 255);
      (256, 256, 263);
      (1024, 1024, 1055);
      (1_000_000, 999_424, 1_015_807);
    ]
  in
  List.iter
    (fun (v, low, high) ->
      let l, h = H.bounds_of_index (H.index_of v) in
      Alcotest.(check (pair int int))
        (Printf.sprintf "bucket of %d" v)
        (low, high) (l, h))
    vectors

let test_index_roundtrip () =
  (* Every value lies inside its own bucket, and bucket indexes are
     monotone in the value. *)
  let rng = Putil.Rng.create 11 in
  let prev_idx = ref (-1) in
  let v = ref 0 in
  while !v < 1 lsl 40 do
    let i = H.index_of !v in
    let low, high = H.bounds_of_index i in
    if not (low <= !v && !v <= high) then
      Alcotest.failf "%d outside bucket [%d,%d]" !v low high;
    if i < !prev_idx then Alcotest.failf "index not monotone at %d" !v;
    prev_idx := i;
    (* Stride grows with magnitude so the loop terminates quickly while
       still probing every octave. *)
    v := !v + 1 + Putil.Rng.int_in rng 0 (max 1 (!v / 7))
  done

let test_bucket_width_bound () =
  (* Bucket width never exceeds low/32: the quantile error contract. *)
  for i = H.sub_count to H.n_buckets - 1 do
    let low, high = H.bounds_of_index i in
    if high - low > low / 32 then
      Alcotest.failf "bucket %d [%d,%d] wider than low/32" i low high
  done

(* ----------------------- recording + quantiles ----------------------- *)

let test_empty () =
  let h = H.create () in
  Alcotest.(check int) "count" 0 (H.count h);
  Alcotest.(check int) "q50" 0 (H.quantile h 0.5);
  Alcotest.(check int) "min" 0 (H.min_value h);
  Alcotest.(check int) "max" 0 (H.max_value h);
  Alcotest.(check bool) "mean nan" true (Float.is_nan (H.mean h))

let test_single_value () =
  let h = H.create () in
  H.record h 42;
  Alcotest.(check int) "count" 1 (H.count h);
  List.iter
    (fun q ->
      Alcotest.(check int) (Printf.sprintf "q%.3f" q) 42 (H.quantile h q))
    [ 0.; 0.5; 0.99; 0.999; 1. ];
  Alcotest.(check int) "min" 42 (H.min_value h);
  Alcotest.(check int) "max" 42 (H.max_value h);
  Alcotest.(check int) "total" 42 (H.total h)

let test_exact_small_quantiles () =
  (* All values < sub_count are bucketed exactly, so quantiles match the
     nearest-rank definition on the raw data. *)
  let h = H.create () in
  List.iter (H.record h) [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ];
  Alcotest.(check int) "q0" 1 (H.quantile h 0.);
  Alcotest.(check int) "q10" 1 (H.quantile h 0.10);
  Alcotest.(check int) "q50" 5 (H.quantile h 0.50);
  Alcotest.(check int) "q51" 6 (H.quantile h 0.51);
  Alcotest.(check int) "q100" 10 (H.quantile h 1.)

(* Nearest-rank quantile on a sorted array: rank ceil(q*n), 1-based,
   clamped to [1,n]. *)
let oracle_quantile sorted q =
  let n = Array.length sorted in
  let rank = max 1 (min n (int_of_float (Float.ceil (q *. float_of_int n)))) in
  sorted.(rank - 1)

let seeded_samples seed n =
  let rng = Putil.Rng.create seed in
  Array.init n (fun _ ->
      (* Mix magnitudes: unit buckets, mid octaves, and a heavy tail. *)
      match Putil.Rng.int_in rng 0 3 with
      | 0 -> Putil.Rng.int_in rng 0 63
      | 1 -> Putil.Rng.int_in rng 64 5_000
      | 2 -> Putil.Rng.int_in rng 5_000 1_000_000
      | _ -> Putil.Rng.int_in rng 1_000_000 200_000_000)

let test_oracle_quantiles () =
  List.iter
    (fun seed ->
      let samples = seeded_samples seed 5_000 in
      let h = H.create () in
      Array.iter (H.record h) samples;
      let sorted = Array.copy samples in
      Array.sort compare sorted;
      List.iter
        (fun q ->
          let got = H.quantile h q in
          let want = oracle_quantile sorted q in
          (* Bucketed answer must sit within the documented error band:
             oracle <= got <= oracle + oracle/32. *)
          if not (want <= got && got - want <= want / 32) then
            Alcotest.failf "seed %d q%.4f: oracle %d, histogram %d" seed q
              want got)
        [ 0.; 0.01; 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 0.999; 1. ])
    [ 1; 2; 7; 42 ]

let test_quantile_monotone () =
  let samples = seeded_samples 99 2_000 in
  let h = H.create () in
  Array.iter (H.record h) samples;
  let prev = ref (-1) in
  let q = ref 0. in
  while !q <= 1.0 do
    let v = H.quantile h !q in
    if v < !prev then Alcotest.failf "quantile not monotone at q=%.3f" !q;
    prev := v;
    q := !q +. 0.001
  done;
  Alcotest.(check bool) "q1 upper-bounds max" true
    (H.quantile h 1. >= H.max_value h)

(* ------------------------------ merging ------------------------------ *)

let hist_of_list vs =
  let h = H.create () in
  List.iter (H.record h) vs;
  h

let hist_equal a b =
  H.count a = H.count b
  && H.total a = H.total b
  && H.min_value a = H.min_value b
  && H.max_value a = H.max_value b
  && List.for_all
       (fun q -> H.quantile a q = H.quantile b q)
       [ 0.; 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 0.999; 1. ]

let small_values = QCheck.(list (int_range 0 2_000_000))

let qcheck_merge_commutative =
  QCheck.Test.make ~name:"merge commutative" ~count:200
    QCheck.(pair small_values small_values)
    (fun (xs, ys) ->
      let a = hist_of_list xs and b = hist_of_list ys in
      hist_equal (H.merge a b) (H.merge b a))

let qcheck_merge_associative =
  QCheck.Test.make ~name:"merge associative" ~count:200
    QCheck.(triple small_values small_values small_values)
    (fun (xs, ys, zs) ->
      let a = hist_of_list xs and b = hist_of_list ys and c = hist_of_list zs in
      hist_equal (H.merge (H.merge a b) c) (H.merge a (H.merge b c)))

let qcheck_merge_is_concat =
  QCheck.Test.make ~name:"merge = histogram of concatenation" ~count:200
    QCheck.(pair small_values small_values)
    (fun (xs, ys) ->
      hist_equal (H.merge (hist_of_list xs) (hist_of_list ys))
        (hist_of_list (xs @ ys)))

let test_merge_into_threadlike () =
  (* The bench's shape: per-client-thread histograms merged into one.
     Splitting a stream in any way must give the whole-stream answer. *)
  let samples = seeded_samples 5 3_000 in
  let whole = H.create () in
  Array.iter (H.record whole) samples;
  let parts = Array.init 4 (fun _ -> H.create ()) in
  Array.iteri (fun i v -> H.record parts.(i mod 4) v) samples;
  let merged = H.create () in
  Array.iter (fun p -> H.merge_into ~dst:merged p) parts;
  Alcotest.(check bool) "merged = whole" true (hist_equal merged whole)

let test_record_n () =
  let a = H.create () and b = H.create () in
  H.record_n a 100 5;
  for _ = 1 to 5 do
    H.record b 100
  done;
  Alcotest.(check bool) "record_n = repeated record" true (hist_equal a b);
  H.record_n a 7 0;
  Alcotest.(check int) "zero multiplicity is a no-op" 5 (H.count a)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ qcheck_merge_commutative; qcheck_merge_associative; qcheck_merge_is_concat ]

let () =
  Alcotest.run "histogram"
    [
      ( "buckets",
        [
          Alcotest.test_case "unit buckets" `Quick test_unit_buckets;
          Alcotest.test_case "octave boundaries" `Quick test_octave_boundaries;
          Alcotest.test_case "index roundtrip" `Quick test_index_roundtrip;
          Alcotest.test_case "width bound" `Quick test_bucket_width_bound;
        ] );
      ( "quantiles",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "single value" `Quick test_single_value;
          Alcotest.test_case "exact below 64" `Quick test_exact_small_quantiles;
          Alcotest.test_case "sorted-array oracle" `Quick test_oracle_quantiles;
          Alcotest.test_case "monotone in q" `Quick test_quantile_monotone;
        ] );
      ( "merge",
        [
          Alcotest.test_case "thread-shaped merge_into" `Quick
            test_merge_into_threadlike;
          Alcotest.test_case "record_n" `Quick test_record_n;
        ] );
      ("properties", qsuite);
    ]
