(* The preference model's numeric backbone (§3): combination functions,
   their required bounds, and the subsumption theorem — all checked both
   on the paper's worked examples and by qcheck properties. *)

open Perso

let d = Helpers.deg
let f = Degree.to_float

(* ------------------------- Worked examples ------------------------- *)

let test_paper_transitive () =
  (* Movies starring N. Kidman: 0.8 * 1 * 0.9 = 0.72 (§3.2). *)
  Helpers.check_float "kidman" 0.72 (f (Degree.trans [ d 0.8; d 1.0; d 0.9 ]))

let test_paper_conjunction () =
  (* Comedies directed by W. Allen: 1-(1-0.7)(1-0.81) = 0.943 (§3.3). *)
  Helpers.check_float "comedy+allen" 0.943 (f (Degree.conj [ d 0.7; d 0.81 ]))

let test_paper_disjunction () =
  (* Comedy or W. Allen movie: (0.7+0.81)/2 = 0.755 (§3.3). *)
  Helpers.check_float "comedy|allen" 0.755 (f (Degree.disj [ d 0.7; d 0.81 ]))

let test_validation () =
  Alcotest.(check bool) "1.1 rejected" true (Degree.of_float_opt 1.1 = None);
  Alcotest.(check bool) "-0.1 rejected" true (Degree.of_float_opt (-0.1) = None);
  Alcotest.(check bool) "nan rejected" true (Degree.of_float_opt Float.nan = None);
  Alcotest.(check bool) "bounds accepted" true
    (Degree.of_float_opt 0. <> None && Degree.of_float_opt 1. <> None);
  Alcotest.check_raises "of_float raises"
    (Invalid_argument "Degree.of_float: 2 not in [0,1]") (fun () ->
      ignore (Degree.of_float 2.))

let test_empty_cases () =
  Helpers.check_float "empty transitive = 1" 1.0 (f (Degree.trans []));
  Alcotest.(check bool) "empty conj rejected" true
    (try
       ignore (Degree.conj []);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "empty disj rejected" true
    (try
       ignore (Degree.disj []);
       false
     with Invalid_argument _ -> true)

let test_to_string () =
  Alcotest.(check string) "trim zeros" "0.81" (Degree.to_string (d 0.81));
  Alcotest.(check string) "full precision" "0.943" (Degree.to_string (d 0.943));
  Alcotest.(check string) "one" "1.0" (Degree.to_string (d 1.0))

(* --------------------------- Properties ---------------------------- *)

let degrees_gen = QCheck.(list_of_size Gen.(1 -- 8) (float_range 0.0 1.0))
let to_ds = List.map Degree.of_float

(* §3.2: f⊙(D) <= min(D). *)
let prop_trans_bound =
  QCheck.Test.make ~name:"trans <= min" ~count:500 degrees_gen (fun fs ->
      let ds = to_ds fs in
      f (Degree.trans ds) <= List.fold_left min 1.0 fs +. 1e-12)

(* §3.3: f∧(D) >= max(D). *)
let prop_conj_bound =
  QCheck.Test.make ~name:"conj >= max" ~count:500 degrees_gen (fun fs ->
      let ds = to_ds fs in
      f (Degree.conj ds) >= List.fold_left max 0.0 fs -. 1e-12)

(* §3.3: min(D) <= f∨(D) <= max(D). *)
let prop_disj_bounds =
  QCheck.Test.make ~name:"min <= disj <= max" ~count:500 degrees_gen (fun fs ->
      let ds = to_ds fs in
      let v = f (Degree.disj ds) in
      v >= List.fold_left min 1.0 fs -. 1e-12
      && v <= List.fold_left max 0.0 fs +. 1e-12)

(* All three stay inside [0,1]. *)
let prop_closed =
  QCheck.Test.make ~name:"combinators closed over [0,1]" ~count:500 degrees_gen
    (fun fs ->
      let ds = to_ds fs in
      let ok v = v >= -.1e-12 && v <= 1. +. 1e-12 in
      ok (f (Degree.trans ds)) && ok (f (Degree.conj ds)) && ok (f (Degree.disj ds)))

(* Monotonicity: growing a transitive chain can only lower the degree;
   growing a conjunction can only raise it. *)
let prop_monotone_growth =
  QCheck.Test.make ~name:"trans anti-monotone / conj monotone in extension"
    ~count:500
    QCheck.(pair degrees_gen (float_range 0.0 1.0))
    (fun (fs, x) ->
      let ds = to_ds fs in
      let dx = Degree.of_float x in
      f (Degree.trans (dx :: ds)) <= f (Degree.trans ds) +. 1e-12
      && f (Degree.conj (dx :: ds)) >= f (Degree.conj ds) -. 1e-12)

(* Commutativity: all three combinators are set functions — a
   permutation of the inputs cannot change the result (§3 defines them
   over sets of preferences, not sequences). *)
let shuffled seed fs =
  let a = Array.of_list fs in
  Putil.Rng.shuffle (Putil.Rng.create seed) a;
  Array.to_list a

let prop_commutative =
  QCheck.Test.make ~name:"trans/conj/disj commutative" ~count:500
    QCheck.(pair degrees_gen small_int)
    (fun (fs, seed) ->
      let eq g xs ys = Float.abs (f (g (to_ds xs)) -. f (g (to_ds ys))) < 1e-9 in
      let fs' = shuffled seed fs in
      eq Degree.trans fs fs' && eq Degree.conj fs fs' && eq Degree.disj fs fs')

(* Associativity where the paper's choices support it: the product
   (transitive) and the complement-product (conjunction) both split
   over any partition of the inputs.  The disjunction (an average) does
   not, and no such property is claimed for it. *)
let prop_trans_conj_associative =
  QCheck.Test.make ~name:"trans/conj associative over partitions" ~count:500
    QCheck.(pair degrees_gen degrees_gen)
    (fun (xs, ys) ->
      let t = f (Degree.trans (to_ds (xs @ ys))) in
      let t' = f (Degree.trans [ Degree.trans (to_ds xs); Degree.trans (to_ds ys) ]) in
      let c = f (Degree.conj (to_ds (xs @ ys))) in
      let c' = f (Degree.conj [ Degree.conj (to_ds xs); Degree.conj (to_ds ys) ]) in
      Float.abs (t -. t') < 1e-9 && Float.abs (c -. c') < 1e-9)

(* The full ordering chain on one input set:
   f⊙ <= min <= f∨ <= max <= f∧. *)
let prop_combinator_chain =
  QCheck.Test.make ~name:"trans <= min <= disj <= max <= conj" ~count:500
    degrees_gen (fun fs ->
      let ds = to_ds fs in
      let lo = List.fold_left min 1.0 fs and hi = List.fold_left max 0.0 fs in
      f (Degree.trans ds) <= lo +. 1e-12
      && lo <= f (Degree.disj ds) +. 1e-12
      && f (Degree.disj ds) <= hi +. 1e-12
      && hi <= f (Degree.conj ds) +. 1e-12)

(* The subsumption theorem (§3.3): conditions express "any L of the top K"
   over the same preference set; c1 is subsumed by c2 when K1 <= K2 and
   L1 >= L2 (satisfying more of fewer/better preferences is strictly
   harder), and the theorem requires degree(c1) >= degree(c2) where
   degree(any L of K) = f∨ over the f∧ of every L-subset of the top K. *)
let any_l_of_k_degree ds l k =
  let top_k = List.filteri (fun i _ -> i < k) ds in
  let subsets = Putil.Combin.subsets top_k l in
  Degree.disj (List.map Degree.conj subsets)

let prop_subsumption =
  QCheck.Test.make ~name:"subsumption theorem (any-L-of-K monotonicity)" ~count:200
    QCheck.(
      triple
        (list_of_size Gen.(3 -- 6) (float_range 0.01 1.0))
        (int_range 1 3) (int_range 1 3))
    (fun (fs, l_extra, k_extra) ->
      let ds = List.sort (fun a b -> compare b a) fs |> List.map Degree.of_float in
      let n = List.length ds in
      let k2 = min n (1 + k_extra) in
      let k1 = max 1 (k2 - 1) in
      let l2 = min k1 1 in
      let l1 = min k1 (l2 + l_extra) in
      f (any_l_of_k_degree ds l1 k1) >= f (any_l_of_k_degree ds l2 k2) -. 1e-9)

let () =
  Alcotest.run "degree"
    [
      ( "worked-examples",
        [
          Alcotest.test_case "transitive (Kidman)" `Quick test_paper_transitive;
          Alcotest.test_case "conjunction (comedy+Allen)" `Quick test_paper_conjunction;
          Alcotest.test_case "disjunction (comedy|Allen)" `Quick test_paper_disjunction;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "empty cases" `Quick test_empty_cases;
          Alcotest.test_case "to_string" `Quick test_to_string;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_trans_bound; prop_conj_bound; prop_disj_bounds; prop_closed;
            prop_monotone_growth; prop_commutative;
            prop_trans_conj_associative; prop_combinator_chain;
            prop_subsumption;
          ] );
    ]
