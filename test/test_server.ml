(* Concurrent personalization server: breaker state machine, reader/
   writer isolation, admission control + shedding, graceful drain, and
   the N-thread chaos hammer of the resilience contract. *)

open Perso_server

(* Retry backoff must not cost wall-clock in tests. *)
let () = Relal.Chaos.set_sleep ignore

(* ------------------------------ breaker ------------------------------ *)

(* A hand-cranked clock makes trip→cooldown→probe cycles deterministic. *)
let fake_clock start =
  let now = ref start in
  ((fun () -> !now), fun ms -> now := !now +. ms)

let test_breaker_trips () =
  let now, advance = fake_clock 0. in
  let b = Breaker.create ~now ~threshold:3 ~cooldown_ms:100. () in
  Alcotest.(check bool) "closed allows" true (Breaker.allow b);
  Breaker.failure b;
  Breaker.failure b;
  Alcotest.(check string) "two failures stay closed" "closed"
    (Breaker.state_name (Breaker.state b));
  Breaker.failure b;
  Alcotest.(check string) "third failure trips" "open"
    (Breaker.state_name (Breaker.state b));
  Alcotest.(check bool) "open rejects" false (Breaker.allow b);
  Alcotest.(check int) "one trip" 1 (Breaker.trips b);
  advance 99.;
  Alcotest.(check bool) "still cooling" false (Breaker.allow b);
  advance 1.;
  Alcotest.(check string) "cooled to half-open" "half-open"
    (Breaker.state_name (Breaker.state b))

let test_breaker_halfopen_probe () =
  let now, advance = fake_clock 0. in
  let b = Breaker.create ~now ~threshold:1 ~cooldown_ms:50. () in
  Breaker.failure b;
  advance 50.;
  Alcotest.(check bool) "probe admitted" true (Breaker.allow b);
  Alcotest.(check bool) "single probe slot" false (Breaker.allow b);
  Breaker.success b;
  Alcotest.(check string) "probe success closes" "closed"
    (Breaker.state_name (Breaker.state b));
  Alcotest.(check bool) "closed again" true (Breaker.allow b)

let test_breaker_halfopen_reopen () =
  let now, advance = fake_clock 0. in
  let b = Breaker.create ~now ~threshold:1 ~cooldown_ms:50. () in
  Breaker.failure b;
  advance 50.;
  Alcotest.(check bool) "probe admitted" true (Breaker.allow b);
  Breaker.failure b;
  Alcotest.(check string) "probe failure reopens" "open"
    (Breaker.state_name (Breaker.state b));
  Alcotest.(check int) "second trip counted" 2 (Breaker.trips b);
  advance 49.;
  Alcotest.(check bool) "cooldown restarted" false (Breaker.allow b);
  advance 1.;
  Alcotest.(check bool) "half-open again" true (Breaker.allow b)

(* ------------------------------ rwlock ------------------------------- *)

let test_rwlock_write_exclusive () =
  (* A non-atomic read-modify-write counter: without the write lock the
     8×500 increments would lose updates under contention. *)
  let lock = Rwlock.create () in
  let counter = ref 0 in
  let writers =
    List.init 8 (fun _ ->
        Thread.create
          (fun () ->
            for _ = 1 to 500 do
              Rwlock.with_write lock (fun () ->
                  let v = !counter in
                  Thread.yield ();
                  counter := v + 1)
            done)
          ())
  in
  List.iter Thread.join writers;
  Alcotest.(check int) "no lost updates" 4000 !counter

let test_rwlock_readers_shared () =
  let lock = Rwlock.create () in
  let m = Mutex.create () in
  let active = ref 0 and max_active = ref 0 in
  let readers =
    List.init 4 (fun _ ->
        Thread.create
          (fun () ->
            (* A real sleep inside the read section parks this thread
               with the lock held: if readers are truly shared the four
               of them must pile up inside. *)
            for _ = 1 to 5 do
              Rwlock.with_read lock (fun () ->
                  Mutex.lock m;
                  incr active;
                  if !active > !max_active then max_active := !active;
                  Mutex.unlock m;
                  Thread.delay 0.01;
                  Mutex.lock m;
                  decr active;
                  Mutex.unlock m)
            done)
          ())
  in
  List.iter Thread.join readers;
  Alcotest.(check bool) "readers overlapped" true (!max_active > 1)

(* --------------------------- server helpers -------------------------- *)

let fresh_socket =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "perso_test_%d_%d.sock" (Unix.getpid ()) !n)

let with_server ?(movies = 0) cfg_of f =
  let db =
    if movies = 0 then Moviedb.Personas.tiny_db ()
    else Moviedb.Datagen.(generate (scale ~seed:7 movies))
  in
  let socket_path = fresh_socket () in
  let t = Server.start (cfg_of (Server.default_config ~socket_path)) db in
  Fun.protect
    ~finally:(fun () ->
      ignore (Server.stop t : Server.drain_outcome);
      Relal.Chaos.disarm ())
    (fun () -> f t socket_path)

let stat name stats =
  match List.assoc_opt name stats with
  | Some v -> int_of_string v
  | None -> Alcotest.failf "HEALTH missing %s" name

let health_of socket =
  let c = Client.connect socket in
  Fun.protect
    ~finally:(fun () -> Client.close c)
    (fun () ->
      match Client.request c "HEALTH" with
      | Ok (Protocol.Stats stats) -> stats
      | other ->
          Alcotest.failf "HEALTH failed: %s"
            (match other with Error e -> e | Ok _ -> "wrong response shape"))

(* A six-way cross product with no join predicate: the executor grinds
   cartesian batches until the governor's deadline trips, so the request
   occupies a worker for roughly its deadline (a second or two naturally
   at 12–15 movies — large enough to sequence other requests against,
   small enough that its biggest selection vector stays tens of MB).
   The tests that use it disable the server's row cap so the deadline is
   the only budget. *)
let slow_sql =
  "select count(*) as n from movie a, movie b, movie c, movie d, movie e, \
   movie f"

(* Sequencing against observable server state instead of sleeps: the
   control-plane HEALTH command answers even while every worker is
   wedged, so tests wait for the queue/in-flight shape they need next
   (>=, so a heavily loaded test host can only overshoot, not miss). *)
let wait_for_stat socket name value =
  let deadline = Unix.gettimeofday () +. 10. in
  let rec go () =
    if stat name (health_of socket) >= value then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "timed out waiting for %s >= %d" name value
    else begin
      Thread.delay 0.01;
      go ()
    end
  in
  go ()

(* ---------------------------- admission ------------------------------ *)

let test_shed_and_expiry () =
  with_server ~movies:15
    (fun cfg ->
      {
        cfg with
        Server.workers = 1;
        queue_capacity = 1;
        max_rows = None;
        max_expansions = None;
      })
    (fun _t socket ->
      (* A occupies the single worker until its 800 ms deadline trips. *)
      let result_a = ref (Error "unset") in
      let ta =
        Thread.create
          (fun () ->
            let c = Client.connect socket in
            result_a := Client.request ~deadline_ms:800. c ("RUN " ^ slow_sql);
            Client.close c)
          ()
      in
      wait_for_stat socket "in_flight" 1;
      (* B fills the only queue slot; its 10 ms deadline will have
         expired long before the worker frees up. *)
      let result_b = ref (Error "unset") in
      let tb =
        Thread.create
          (fun () ->
            let c = Client.connect socket in
            result_b := Client.request ~deadline_ms:10. c ("RUN " ^ slow_sql);
            Client.close c)
          ()
      in
      wait_for_stat socket "queue_depth" 1;
      (* C finds the queue full: immediate typed rejection. *)
      let c = Client.connect socket in
      (match Client.request c "RUN select count(*) as n from movie m" with
      | Ok (Protocol.Failed { family; code; _ }) ->
          Alcotest.(check string) "queue-full family" "overloaded" family;
          Alcotest.(check int) "overloaded exit code" 5 code
      | other ->
          Alcotest.failf "expected queue-full shedding, got %s"
            (match other with
            | Ok _ -> "a result"
            | Error e -> e));
      Client.close c;
      Thread.join ta;
      Thread.join tb;
      (match !result_a with
      | Ok (Protocol.Failed { family = "resource-exhausted"; _ }) -> ()
      | Ok (Protocol.Rows _) -> ()  (* finished within budget *)
      | other ->
          Alcotest.failf "A should finish or exhaust, got %s"
            (match other with
            | Ok (Protocol.Failed { message; _ }) -> message
            | Error e -> e
            | _ -> "wrong shape"));
      (match !result_b with
      | Ok (Protocol.Failed { family = "overloaded"; message; _ }) ->
          Alcotest.(check bool) "names queue expiry" true
            (String.length message > 0)
      | other ->
          Alcotest.failf "B should be shed as expired, got %s"
            (match other with
            | Ok (Protocol.Failed { message; _ }) -> message
            | Error e -> e
            | _ -> "wrong shape"));
      let stats = health_of socket in
      Alcotest.(check int) "one queue-full shed" 1 (stat "shed_queue_full" stats);
      Alcotest.(check int) "one expiry shed" 1 (stat "shed_expired" stats))

let test_budget_capped_by_server () =
  with_server ~movies:120
    (fun cfg ->
      { cfg with Server.max_rows = Some 50; deadline_ms = None;
        max_expansions = None })
    (fun _t socket ->
      let c = Client.connect socket in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          (* The client asks for a huge row budget; the server's 50-row
             cap must win. *)
          match Client.request ~max_rows:100_000_000 c ("RUN " ^ slow_sql) with
          | Ok (Protocol.Failed { family; code; _ }) ->
              Alcotest.(check string) "capped to resource exhaustion"
                "resource-exhausted" family;
              Alcotest.(check int) "resource exit code" 3 code
          | other ->
              Alcotest.failf "expected resource-exhausted, got %s"
                (match other with
                | Ok _ -> "a result"
                | Error e -> e)))

(* ------------------------- breaker integration ----------------------- *)

let request_exn c ?deadline_ms cmd =
  match Client.request ?deadline_ms c cmd with
  | Ok r -> r
  | Error e -> Alcotest.failf "request failed: %s" e

let test_breaker_serves_unpersonalized () =
  with_server
    (fun cfg ->
      { cfg with Server.breaker_threshold = 2; breaker_cooldown_ms = 300. })
    (fun _t socket ->
      let c = Client.connect socket in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          let q =
            "PERSONALIZE julie select mv.title from movie mv, play pl where \
             mv.mid = pl.mid and pl.date = '2003-07-02'"
          in
          ignore
            (request_exn c
               "PROFILE SAVE julie [ GENRE.genre = 'comedy', 0.9 ] [ \
                MOVIE.mid = GENRE.mid, 0.9 ]");
          (match request_exn c q with
          | Protocol.Rows { notes = []; cols; _ } ->
              Alcotest.(check (list string)) "personalized answer is ranked"
                [ "title"; "doi" ] cols
          | _ -> Alcotest.fail "expected a clean personalized answer");
          (* Permanent faults at p=1: every profile load fails, and two
             consecutive failures trip the breaker.  (The queries' own
             scans fault too, so these replies are storage errors — what
             matters here is the trip.) *)
          ignore
            (Relal.Chaos.arm ~transient_ratio:0. ~seed:3 ~p:1.0 ()
              : Relal.Chaos.stats);
          for _ = 1 to 2 do
            match request_exn c q with
            | Protocol.Failed _ | Protocol.Rows _ -> ()
            | _ -> Alcotest.fail "expected a typed fault or degraded rows"
          done;
          Relal.Chaos.disarm ();
          (* The breaker is now open and short-circuits the load: with
             the faults lifted the query itself runs clean and is served
             unpersonalized with an explanatory note.  PROFILE SAVE is
             refused with a typed error. *)
          (match request_exn c q with
          | Protocol.Rows { notes = [ n ]; cols; _ } ->
              Alcotest.(check string) "breaker-open note"
                "unpersonalized: profile-store circuit breaker open" n;
              Alcotest.(check (list string)) "plain answer shape" [ "title" ]
                cols
          | _ -> Alcotest.fail "open breaker must serve plain answers");
          (match request_exn c "PROFILE SAVE julie [ GENRE.genre = 'drama', 1 ]" with
          | Protocol.Failed { family = "overloaded"; code = 5; _ } -> ()
          | _ -> Alcotest.fail "open breaker must refuse writes");
          let stats = health_of socket in
          Alcotest.(check bool) "trip counted" true
            (stat "breaker_trips" stats >= 1);
          Alcotest.(check bool) "plain-served counted" true
            (stat "unpersonalized_breaker" stats >= 1);
          Alcotest.(check bool) "refused save counted" true
            (stat "shed_breaker" stats >= 1);
          (* Let the cooldown pass: the half-open probe's load succeeds
             and personalization returns. *)
          Thread.delay 0.35;
          match request_exn c q with
          | Protocol.Rows { notes = []; cols; _ } ->
              Alcotest.(check (list string)) "personalization recovered"
                [ "title"; "doi" ] cols
          | _ -> Alcotest.fail "breaker must close after a good probe"))

(* ---------------------------- graceful drain ------------------------- *)

let test_graceful_drain () =
  with_server ~movies:15
    (fun cfg ->
      {
        cfg with
        Server.workers = 2;
        drain_ms = 5_000.;
        max_rows = None;
        max_expansions = None;
      })
    (fun t socket ->
      (* Slow requests in flight, then a drain: they must still get
         answers (or a typed shed), and new work must be refused.  Only
         one request needs to be *observed* in flight before the stop —
         waiting for both races against their own completion when the
         test host is loaded. *)
      let results = Array.make 2 (Error "unset") in
      let threads =
        Array.to_list
          (Array.init 2 (fun i ->
               Thread.create
                 (fun () ->
                   let c = Client.connect socket in
                   results.(i) <-
                     Client.request ~deadline_ms:600. c ("RUN " ^ slow_sql);
                   Client.close c)
                 ()))
      in
      wait_for_stat socket "in_flight" 1;
      Server.request_stop t;
      let deadline = Unix.gettimeofday () +. 10. in
      while
        List.assoc "state" (health_of socket) <> "draining"
        && Unix.gettimeofday () < deadline
      do
        Thread.delay 0.01
      done;
      (* Admission is closed while draining — but the control plane and
         the drain itself keep working. *)
      let c = Client.connect socket in
      (match Client.request c "RUN select count(*) as n from movie m" with
      | Ok (Protocol.Failed { family = "overloaded"; _ }) -> ()
      | _ -> Alcotest.fail "draining server must shed new work");
      Client.close c;
      List.iter Thread.join threads;
      Array.iter
        (fun r ->
          match r with
          | Ok (Protocol.Rows _) | Ok (Protocol.Failed _) -> ()
          | _ -> Alcotest.fail "in-flight request lost during drain")
        results;
      let outcome = Server.stop t in
      Alcotest.(check bool) "drained within deadline" true
        outcome.Server.drained;
      Alcotest.(check int) "nothing abandoned" 0 outcome.Server.shed_at_stop)

(* ------------------------------- hammer ------------------------------ *)

(* The resilience acceptance test: 10 threads of mixed RUN / PERSONALIZE
   / PROFILE SAVE against a small pool under 5% seeded faults.  Every
   request must end in a result or a typed error, the server must stay
   live, and the HEALTH ledger must account for every request. *)
let test_hammer () =
  let n_threads = 10 and per_thread = 20 in
  with_server ~movies:100
    (fun cfg ->
      {
        cfg with
        Server.workers = 3;
        queue_capacity = 4;
        deadline_ms = Some 2_000.;
        breaker_threshold = 3;
        breaker_cooldown_ms = 50.;
      })
    (fun t socket ->
      let db_for_queries = Moviedb.Datagen.(generate (scale ~seed:7 100)) in
      let queries =
        List.map Relal.Sql_print.query_to_string
          (Moviedb.Workload.queries db_for_queries ~n:per_thread ~seed:11)
        |> Array.of_list
      in
      ignore (Relal.Chaos.arm ~seed:1337 ~p:0.05 () : Relal.Chaos.stats);
      let ok = Atomic.make 0
      and failed = Atomic.make 0
      and overloaded = Atomic.make 0
      and broken = Atomic.make 0 in
      let worker tid =
        let c = Client.connect socket in
        for i = 0 to per_thread - 1 do
          let sql = queries.(i mod Array.length queries) in
          let cmd =
            match i mod 5 with
            | 0 ->
                Printf.sprintf
                  "PROFILE SAVE user%d [ GENRE.genre = 'comedy', 0.9 ] [ \
                   MOVIE.mid = GENRE.mid, 0.8 ]"
                  tid
            | 1 -> Printf.sprintf "PERSONALIZE user%d %s" tid sql
            | _ -> "RUN " ^ sql
          in
          (* A zero deadline is expired by the time a worker pops it:
             deterministic shedding mixed into the stream. *)
          let deadline_ms = if i mod 7 = 0 then Some 0. else None in
          match Client.request ?deadline_ms c cmd with
          | Ok (Protocol.Rows _) | Ok (Protocol.Message _) ->
              Atomic.incr ok
          | Ok (Protocol.Failed { family = "overloaded"; code = 5; _ }) ->
              Atomic.incr overloaded;
              Atomic.incr failed
          | Ok (Protocol.Failed { code; _ }) when code >= 1 && code <= 5 ->
              Atomic.incr failed
          | Ok _ | Error _ -> Atomic.incr broken
        done;
        Client.close c
      in
      let threads = List.init n_threads (fun tid -> Thread.create worker tid) in
      List.iter Thread.join threads;
      Relal.Chaos.disarm ();
      let total = n_threads * per_thread in
      Alcotest.(check int) "no untyped outcomes" 0 (Atomic.get broken);
      Alcotest.(check int) "every request accounted (client side)" total
        (Atomic.get ok + Atomic.get failed);
      Alcotest.(check bool) "some requests succeeded" true (Atomic.get ok > 0);
      Alcotest.(check bool) "saturation shed with typed Overloaded" true
        (Atomic.get overloaded > 0);
      (* The server is still live and observable after the storm. *)
      let c = Client.connect socket in
      (match Client.request c "PING" with
      | Ok (Protocol.Message "pong") -> ()
      | _ -> Alcotest.fail "server must stay live after the hammer");
      Client.close c;
      let stats = health_of socket in
      Alcotest.(check int) "ledger: queue idle" 0 (stat "queue_depth" stats);
      Alcotest.(check int) "ledger: nothing in flight" 0
        (stat "in_flight" stats);
      Alcotest.(check int) "ledger: accepted = ok + err + expired"
        (stat "accepted" stats)
        (stat "completed_ok" stats
        + stat "completed_err" stats
        + stat "shed_expired" stats);
      Alcotest.(check int) "ledger: arrivals = accepted + shed"
        total
        (stat "accepted" stats
        + stat "shed_queue_full" stats
        + stat "shed_draining" stats);
      Alcotest.(check int) "ledger: server ok = client ok"
        (Atomic.get ok)
        (stat "completed_ok" stats);
      let outcome = Server.stop t in
      Alcotest.(check bool) "drains clean after the hammer" true
        outcome.Server.drained)

(* ------------------------ durable store parity ----------------------- *)

let fresh_store_root =
  let n = ref 0 in
  fun () ->
    incr n;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "perso_test_store_%d_%d" (Unix.getpid ()) !n)
    in
    dir

let render_response = function
  | Ok (Protocol.Rows { notes; cols; rows }) ->
      String.concat "\n"
        (notes @ [ String.concat "|" cols ] @ List.map (String.concat "|") rows)
  | Ok (Protocol.Stats kvs) ->
      String.concat "\n" (List.map (fun (k, v) -> k ^ "=" ^ v) kvs)
  | Ok (Protocol.Message m) -> "msg:" ^ m
  | Ok (Protocol.Failed { family; code; message }) ->
      Printf.sprintf "failed:%s:%d:%s" family code message
  | Error e -> "err:" ^ e

let pers_sql =
  "select mv.title from movie mv, play pl where mv.mid = pl.mid and pl.date \
   = '2003-07-02'"

let parity_script =
  [
    "PROFILE SAVE julie [ GENRE.genre = 'comedy', 0.9 ] [ MOVIE.mid = \
     GENRE.mid, 0.9 ]";
    "PROFILE SAVE bob [ ACTOR.name = 'N. Kidman', 0.7 ] [ CAST.aid = \
     ACTOR.aid, 0.9 ] [ MOVIE.mid = CAST.mid, 0.9 ]";
    "PERSONALIZE julie " ^ pers_sql;
    "PROFILE LOAD julie";
    "PROFILE SAVE julie [ GENRE.genre = 'drama', 0.8 ] [ MOVIE.mid = \
     GENRE.mid, 0.9 ]";
    "PERSONALIZE julie " ^ pers_sql;
    "PERSONALIZE bob " ^ pers_sql;
    "PROFILE LOAD bob";
    "PROFILE LOAD nobody";
    "RUN select count(*) as n from movie m";
    "PROFILE SAVE julie [ not a condition, 2 ]";
  ]

let run_script socket script =
  let c = Client.connect socket in
  Fun.protect
    ~finally:(fun () -> Client.close c)
    (fun () -> List.map (fun cmd -> render_response (Client.request c cmd)) script)

let test_disk_memory_differential () =
  (* The same traffic over the disk backend answers byte-identically to
     the memory backend, and the saved state survives a restart. *)
  let mem =
    with_server
      (fun cfg -> { cfg with Server.shards = 2 })
      (fun _t socket -> run_script socket parity_script)
  in
  let root = fresh_store_root () in
  Fun.protect ~finally:(fun () -> ignore (Sys.command ("rm -rf " ^ Filename.quote root)))
  @@ fun () ->
  let dsk =
    with_server
      (fun cfg -> { cfg with Server.shards = 2; store_dir = Some root })
      (fun _t socket -> run_script socket parity_script)
  in
  List.iter2
    (fun m d -> Alcotest.(check string) "memory/disk parity" m d)
    mem dsk;
  (* Restart on the same root: recovery replays the WALs; the last
     acknowledged profile is served, the in-memory-only run's state is
     gone with its process. *)
  let after_restart =
    with_server
      (fun cfg -> { cfg with Server.shards = 2; store_dir = Some root })
      (fun _t socket ->
        run_script socket [ "PROFILE LOAD julie"; "PERSONALIZE julie " ^ pers_sql ])
  in
  Alcotest.(check string) "personalize after restart" (List.nth mem 5)
    (List.nth after_restart 1)

let () =
  Alcotest.run "server"
    [
      ( "breaker",
        [
          Alcotest.test_case "trips after threshold" `Quick test_breaker_trips;
          Alcotest.test_case "half-open probe closes" `Quick
            test_breaker_halfopen_probe;
          Alcotest.test_case "half-open failure reopens" `Quick
            test_breaker_halfopen_reopen;
        ] );
      ( "rwlock",
        [
          Alcotest.test_case "writers exclusive" `Quick
            test_rwlock_write_exclusive;
          Alcotest.test_case "readers shared" `Quick test_rwlock_readers_shared;
        ] );
      ( "admission",
        [
          Alcotest.test_case "queue-full + expiry shedding" `Quick
            test_shed_and_expiry;
          Alcotest.test_case "client budgets capped by server" `Quick
            test_budget_capped_by_server;
        ] );
      ( "breaker-integration",
        [
          Alcotest.test_case "open breaker serves unpersonalized" `Quick
            test_breaker_serves_unpersonalized;
        ] );
      ( "drain",
        [ Alcotest.test_case "graceful drain" `Quick test_graceful_drain ] );
      ( "hammer",
        [ Alcotest.test_case "mixed load under 5% faults" `Quick test_hammer ]
      );
      ( "durable-store",
        [
          Alcotest.test_case "memory/disk parity + restart" `Quick
            test_disk_memory_differential;
        ] );
    ]
