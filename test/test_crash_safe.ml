(* Crash-safe database dumps: atomic save protocol, manifest
   verification, torn-dump detection and recovery. *)

open Relal

let fresh_dir () =
  let f = Filename.temp_file "crashsafe" "" in
  Sys.remove f;
  f

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let saved_tiny () =
  let db = Moviedb.Personas.tiny_db () in
  let dir = fresh_dir () in
  Csv.save_db ~dir db;
  (db, dir)

let expect_torn = function
  | Error (Csv.Torn_dump _) -> ()
  | Error e -> Alcotest.failf "expected Torn_dump, got: %s" (Csv.load_error_to_string e)
  | Ok _ -> Alcotest.fail "expected Torn_dump, load succeeded"

(* ------------------------------ happy path ------------------------ *)

let test_roundtrip_with_manifest () =
  let db, dir = saved_tiny () in
  Alcotest.(check bool) "manifest written" true
    (Sys.file_exists (Filename.concat dir Csv.manifest_file));
  match Csv.load_db_r ~dir with
  | Error e -> Alcotest.failf "load failed: %s" (Csv.load_error_to_string e)
  | Ok db' ->
      List.iter
        (fun t ->
          let name = Schema.name (Table.schema t) in
          Alcotest.(check int) (name ^ " rows") (Table.cardinality t)
            (Table.cardinality (Database.table db' name)))
        (Database.tables db)

let test_resave_over_existing () =
  let db, dir = saved_tiny () in
  Csv.save_db ~dir db;
  (* a stale temp directory from a crashed save must not block either *)
  Unix.mkdir (dir ^ ".save-tmp") 0o755;
  write_file (Filename.concat (dir ^ ".save-tmp") "junk") "junk";
  Csv.save_db ~dir db;
  match Csv.load_db_r ~dir with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "load failed: %s" (Csv.load_error_to_string e)

(* ------------------------------ torn dumps ------------------------ *)

let test_truncated_file () =
  let _, dir = saved_tiny () in
  let victim = Filename.concat dir "movie.csv" in
  let contents = read_file victim in
  write_file victim (String.sub contents 0 (String.length contents / 2));
  expect_torn (Csv.load_db_r ~dir)

let test_missing_table_file () =
  let _, dir = saved_tiny () in
  Sys.remove (Filename.concat dir "movie.csv");
  expect_torn (Csv.load_db_r ~dir)

let test_checksum_mismatch () =
  let _, dir = saved_tiny () in
  let victim = Filename.concat dir "movie.csv" in
  let contents = Bytes.of_string (read_file victim) in
  (* same size, different bytes: only the checksum can notice *)
  let i = Bytes.length contents - 2 in
  Bytes.set contents i (if Bytes.get contents i = 'x' then 'y' else 'x');
  write_file victim (Bytes.to_string contents);
  expect_torn (Csv.load_db_r ~dir)

let test_missing_dump () =
  match Csv.load_db_r ~dir:(fresh_dir ()) with
  | Error (Csv.Missing_dump _) -> ()
  | Error e -> Alcotest.failf "expected Missing_dump: %s" (Csv.load_error_to_string e)
  | Ok _ -> Alcotest.fail "expected Missing_dump"

(* --------------------------- crash recovery ----------------------- *)

let test_old_dir_recovered () =
  (* A crash between the two commit renames leaves only <dir>.old; the
     loader must move it back and serve the previous dump. *)
  let db, dir = saved_tiny () in
  Sys.rename dir (dir ^ ".old");
  (match Csv.load_db_r ~dir with
  | Error e -> Alcotest.failf "recovery failed: %s" (Csv.load_error_to_string e)
  | Ok db' ->
      Alcotest.(check int) "movie rows survive"
        (Table.cardinality (Database.table db "movie"))
        (Table.cardinality (Database.table db' "movie")));
  Alcotest.(check bool) "dump restored in place" true (Sys.file_exists dir)

let test_empty_manifest () =
  (* A zero-length (or whitespace-only) manifest can only be a
     truncated write: saves always list at least schema.ddl.  It must
     read as torn, not as "nothing to verify". *)
  let _, dir = saved_tiny () in
  write_file (Filename.concat dir Csv.manifest_file) "";
  expect_torn (Csv.load_db_r ~dir);
  write_file (Filename.concat dir Csv.manifest_file) "\n\n";
  expect_torn (Csv.load_db_r ~dir)

let test_dir_wins_over_old () =
  (* If both <dir> and <dir>.old exist (crash after the second rename's
     first half), the committed dump in <dir> is authoritative; the
     parked copy must not clobber it. *)
  let db, dir = saved_tiny () in
  let old = dir ^ ".old" in
  Unix.mkdir old 0o755;
  write_file (Filename.concat old "marker") "stale";
  (match Csv.load_db_r ~dir with
  | Error e -> Alcotest.failf "load failed: %s" (Csv.load_error_to_string e)
  | Ok db' ->
      Alcotest.(check int) "rows from committed dump"
        (Table.cardinality (Database.table db "movie"))
        (Table.cardinality (Database.table db' "movie")));
  Alcotest.(check bool) "parked copy untouched" true
    (Sys.file_exists (Filename.concat old "marker"))

let test_interrupted_save_keeps_previous () =
  (* Fail every persistence write: the save reports an error and the
     existing dump stays fully loadable. *)
  let db, dir = saved_tiny () in
  let before = read_file (Filename.concat dir Csv.manifest_file) in
  let outcome, _stats =
    Chaos.with_faults ~transient_ratio:0. ~seed:99 ~p:1. (fun () ->
        Csv.save_db_r ~dir db)
  in
  (match outcome with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "save should have failed under p=1 faults");
  Alcotest.(check string) "previous dump untouched" before
    (read_file (Filename.concat dir Csv.manifest_file));
  match Csv.load_db_r ~dir with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "previous dump unloadable: %s" (Csv.load_error_to_string e)

let test_transient_write_faults_retried () =
  (* Low-probability transient faults are absorbed by bounded retry. *)
  let db = Moviedb.Personas.tiny_db () in
  let dir = fresh_dir () in
  let outcome, stats =
    (* seed chosen so the deterministic schedule injects faults the
       bounded retry can absorb (no three-in-a-row on one file) *)
    Chaos.with_faults ~transient_ratio:1. ~seed:1 ~p:0.3 (fun () ->
        Csv.save_db_r ~dir db)
  in
  Alcotest.(check bool) "faults were injected" true (stats.Chaos.injected > 0);
  (match outcome with
  | Ok () -> ()
  | Error e -> Alcotest.failf "retry should have absorbed the faults: %s" e);
  match Csv.load_db_r ~dir with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "dump unloadable: %s" (Csv.load_error_to_string e)

(* ------------------------- legacy + wrappers ---------------------- *)

let test_manifestless_legacy_load () =
  let _, dir = saved_tiny () in
  Sys.remove (Filename.concat dir Csv.manifest_file);
  match Csv.load_db_r ~dir with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "legacy load failed: %s" (Csv.load_error_to_string e)

let test_malformed_content () =
  let _, dir = saved_tiny () in
  Sys.remove (Filename.concat dir Csv.manifest_file);
  write_file (Filename.concat dir "movie.csv") "not,a,valid\nheader at all";
  match Csv.load_db_r ~dir with
  | Error (Csv.Malformed _) -> ()
  | Error e -> Alcotest.failf "expected Malformed: %s" (Csv.load_error_to_string e)
  | Ok _ -> Alcotest.fail "expected Malformed"

let test_raising_wrapper () =
  let _, dir = saved_tiny () in
  Sys.remove (Filename.concat dir "movie.csv");
  match Csv.load_db ~dir with
  | (_ : Database.t) -> Alcotest.fail "expected Csv_error"
  | exception Csv.Csv_error _ -> ()

let test_error_taxonomy_mapping () =
  let _, dir = saved_tiny () in
  Sys.remove (Filename.concat dir "movie.csv");
  match Csv.load_db_r ~dir with
  | Error e -> (
      match Perso.Error.of_load_error e with
      | Perso.Error.Storage _ -> ()
      | e' -> Alcotest.failf "expected Storage: %s" (Perso.Error.to_string e'))
  | Ok _ -> Alcotest.fail "expected a load error"

let () =
  Alcotest.run "crash-safe"
    [
      ( "atomic save",
        [
          Alcotest.test_case "round-trip with manifest" `Quick
            test_roundtrip_with_manifest;
          Alcotest.test_case "resave over existing" `Quick
            test_resave_over_existing;
          Alcotest.test_case "interrupted save keeps previous" `Quick
            test_interrupted_save_keeps_previous;
          Alcotest.test_case "transient faults retried" `Quick
            test_transient_write_faults_retried;
        ] );
      ( "torn dumps",
        [
          Alcotest.test_case "truncated file" `Quick test_truncated_file;
          Alcotest.test_case "missing table file" `Quick
            test_missing_table_file;
          Alcotest.test_case "checksum mismatch" `Quick test_checksum_mismatch;
          Alcotest.test_case "missing dump" `Quick test_missing_dump;
          Alcotest.test_case ".old recovered" `Quick test_old_dir_recovered;
          Alcotest.test_case "empty manifest" `Quick test_empty_manifest;
          Alcotest.test_case "dir wins over .old" `Quick
            test_dir_wins_over_old;
        ] );
      ( "legacy + wrappers",
        [
          Alcotest.test_case "manifest-less load" `Quick
            test_manifestless_legacy_load;
          Alcotest.test_case "malformed content" `Quick test_malformed_content;
          Alcotest.test_case "raising wrapper" `Quick test_raising_wrapper;
          Alcotest.test_case "taxonomy mapping" `Quick
            test_error_taxonomy_mapping;
        ] );
    ]
