(* Parser fuzzing: on arbitrary byte strings the SQL front end may
   accept or reject, but the only permitted rejections are the typed
   Lex_error / Parse_error — no Invalid_argument, no Failure, no
   assertion from deep inside the lexer. *)

open Relal

(* true iff the front end held its contract on this input *)
let front_end_total s =
  match Sql_parser.parse s with
  | (_ : Sql_ast.query) -> true
  | exception Sql_parser.Parse_error _ -> true
  | exception Sql_lexer.Lex_error _ -> true
  | exception _ -> false

let fuzz_random_bytes =
  QCheck.Test.make ~count:2000 ~name:"parser total on random bytes"
    QCheck.(string_gen Gen.char)
    front_end_total

let fuzz_almost_sql =
  (* Mutations close to real SQL reach deeper into the parser than
     uniform noise does. *)
  let fragment =
    QCheck.Gen.oneofl
      [
        "select"; "from"; "where"; "and"; "or"; "group by"; "order";
        "m.title"; "movie m"; "*"; ","; "("; ")"; "'"; "''"; "0.5"; "42";
        "="; "<>"; "<="; ">"; "count"; "distinct"; "as"; "having";
        "union all"; "not"; "null"; "--"; "\n"; " "; "\t"; "\x00"; "\xff";
      ]
  in
  let gen =
    QCheck.Gen.(map (String.concat " ") (list_size (int_range 0 12) fragment))
  in
  QCheck.Test.make ~count:2000 ~name:"parser total on SQL-ish mutations"
    (QCheck.make ~print:(fun s -> String.escaped s) gen)
    front_end_total

let adversarial_corpus =
  [
    "";
    " ";
    "select";
    "select ";
    "select * from";
    "select m. from m";
    "select 'unterminated from movie m";
    "select m.title from movie m where";
    "select m.title from movie m where m.year = ";
    "select ((((((((((";
    "select m.title from (select from) x";
    "select \x00\x01\x02 from \xfe\xff";
    String.make 10_000 '(';
    String.make 100_000 'a';
    "select " ^ String.concat ", " (List.init 2000 (fun i -> Printf.sprintf "t.c%d" i)) ^ " from t";
    "SELECT M.TITLE FROM MOVIE M WHERE M.YEAR = 2003";
    "select m.title from movie m where m.title = '\\'";
    "select m.title -- comment\nfrom movie m";
  ]

let test_adversarial () =
  List.iteri
    (fun i s ->
      Alcotest.(check bool)
        (Printf.sprintf "corpus case %d" i)
        true (front_end_total s))
    adversarial_corpus

let () =
  Alcotest.run "fuzz"
    [
      ( "sql front end",
        [
          QCheck_alcotest.to_alcotest fuzz_random_bytes;
          QCheck_alcotest.to_alcotest fuzz_almost_sql;
          Alcotest.test_case "adversarial corpus" `Quick test_adversarial;
        ] );
    ]
