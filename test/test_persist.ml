(* Persistence: the DDL subset and CSV storage. *)

open Relal

let tmpdir () = Filename.temp_file "perdb" "" |> fun f -> Sys.remove f; f

(* ------------------------------ DDL ------------------------------- *)

let movie_ddl =
  {|
-- the paper's schema, in DDL form
create table theatre (
  tid int primary key,
  name string,
  phone string,
  region string
);
create table movie (mid int primary key, title string, year int);
create table play (
  tid int references theatre(tid),
  mid int references movie(mid),
  date date,
  primary key (tid, mid, date)
);
create table genre (
  mid int references movie(mid),
  genre string,
  primary key (mid, genre)
);
|}

(* Alcotest has no testable for Value.ty; build one locally. *)
let ty_testable =
  Alcotest.testable
    (fun fmt t -> Format.pp_print_string fmt (Value.ty_name t))
    ( = )

let test_ddl_parse_types () =
  let db = Ddl.parse movie_ddl in
  Alcotest.(check int) "four tables" 4 (List.length (Database.tables db));
  Alcotest.(check int) "three fks" 3 (List.length (Database.fks db));
  Alcotest.(check bool) "movie.mid unique" true
    (Schema.is_unique_col (Table.schema (Database.table db "movie")) "mid");
  Alcotest.(check bool) "genre.mid not unique (composite)" false
    (Schema.is_unique_col (Table.schema (Database.table db "genre")) "mid");
  Alcotest.(check bool) "to-one derived from ddl" true
    (Database.join_is_to_one db ~from_:("play", "mid") ~to_:("movie", "mid"));
  Alcotest.(check (option ty_testable)) "date column type" (Some Value.TDate)
    (Schema.col_type (Table.schema (Database.table db "play")) "date")

let test_ddl_unique_and_aliases () =
  let db =
    Ddl.parse
      "create table u (a integer primary key, b varchar unique, c real, d boolean)"
  in
  let s = Table.schema (Database.table db "u") in
  Alcotest.(check bool) "b unique" true (Schema.is_unique_col s "b");
  Alcotest.(check (option ty_testable)) "varchar -> string" (Some Value.TStr)
    (Schema.col_type s "b");
  Alcotest.(check (option ty_testable)) "real -> float" (Some Value.TFloat)
    (Schema.col_type s "c");
  Alcotest.(check (option ty_testable)) "boolean -> bool" (Some Value.TBool)
    (Schema.col_type s "d")

let test_ddl_errors () =
  let expect_err what text =
    Alcotest.(check bool) what true
      (try
         ignore (Ddl.parse text);
         false
       with Ddl.Ddl_error _ -> true)
  in
  expect_err "unknown type" "create table t (a blob)";
  expect_err "duplicate table" "create table t (a int); create table t (a int)";
  expect_err "bad references" "create table t (a int references missing(x))";
  expect_err "trailing garbage" "create table t (a int) extra";
  expect_err "missing paren" "create table t a int";
  expect_err "duplicate column" "create table t (a int, a string)"

let test_ddl_roundtrip () =
  let db = Moviedb.Movie_schema.create () in
  let text = Ddl.to_string db in
  let db2 = Ddl.parse text in
  Alcotest.(check int) "same table count" (List.length (Database.tables db))
    (List.length (Database.tables db2));
  Alcotest.(check int) "same fk count" (List.length (Database.fks db))
    (List.length (Database.fks db2));
  (* Uniqueness (hence join directions) survives. *)
  List.iter
    (fun (r1, a1, r2, a2) ->
      Alcotest.(check bool)
        (Printf.sprintf "to-one %s.%s->%s.%s preserved" r1 a1 r2 a2)
        (Database.join_is_to_one db ~from_:(r1, a1) ~to_:(r2, a2))
        (Database.join_is_to_one db2 ~from_:(r1, a1) ~to_:(r2, a2)))
    Moviedb.Movie_schema.fk_joins

(* ------------------------------ CSV ------------------------------- *)

let test_csv_table_roundtrip () =
  let schema =
    Schema.make ~name:"t"
      ~cols:
        [
          ("i", Value.TInt); ("f", Value.TFloat); ("s", Value.TStr);
          ("b", Value.TBool); ("d", Value.TDate);
        ]
      ()
  in
  let t = Table.create schema in
  Table.insert_values t
    [ Value.Int 1; Value.Float 2.5; Value.Str "plain"; Value.Bool true;
      Value.date_of_ymd 2003 7 2 ];
  Table.insert_values t
    [ Value.Int (-7); Value.Float 1e-9; Value.Str "comma, \"quote\"\nnewline";
      Value.Bool false; Value.Null ];
  Table.insert_values t
    [ Value.Null; Value.Null; Value.Str ""; Value.Null; Value.Null ];
  let text = Csv.table_to_string t in
  let t2 = Csv.table_of_string schema text in
  Alcotest.(check int) "row count" (Table.cardinality t) (Table.cardinality t2);
  for i = 0 to Table.cardinality t - 1 do
    let r1 = Table.get t i and r2 = Table.get t2 i in
    Array.iteri
      (fun j v ->
        Alcotest.(check Helpers.value_testable)
          (Printf.sprintf "row %d col %d" i j)
          v r2.(j))
      r1
  done

let test_csv_null_vs_empty_string () =
  let schema = Schema.make ~name:"t" ~cols:[ ("s", Value.TStr) ] () in
  let t = Table.create schema in
  Table.insert_values t [ Value.Str "" ];
  Table.insert_values t [ Value.Null ];
  let t2 = Csv.table_of_string schema (Csv.table_to_string t) in
  Alcotest.(check Helpers.value_testable) "empty string" (Value.Str "") (Table.get t2 0).(0);
  Alcotest.(check Helpers.value_testable) "null" Value.Null (Table.get t2 1).(0)

let test_csv_errors () =
  let schema = Schema.make ~name:"t" ~cols:[ ("i", Value.TInt) ] () in
  let expect_err what text =
    Alcotest.(check bool) what true
      (try
         ignore (Csv.table_of_string schema text);
         false
       with Csv.Csv_error _ -> true)
  in
  expect_err "header mismatch" "wrong\n1\n";
  expect_err "bad int" "i\nnotanint\n";
  expect_err "arity" "i\n1,2\n";
  expect_err "unterminated quote" "i\n\"1\n"

let test_db_roundtrip_on_disk () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "perdb_csv_test" in
  let db = Moviedb.Personas.tiny_db () in
  Csv.save_db ~dir db;
  let db2 = Csv.load_db ~dir in
  (* Same cardinalities... *)
  List.iter
    (fun t ->
      let name = Schema.name (Table.schema t) in
      Alcotest.(check int) (name ^ " cardinality") (Table.cardinality t)
        (Table.cardinality (Database.table db2 name)))
    (Database.tables db);
  (* ... and the same query answers, including through the whole
     personalization pipeline. *)
  let q = "select m.title from movie m, directed d, director r where m.mid = d.mid and d.did = r.did and r.name = 'W. Allen'" in
  Alcotest.(check bool) "same query answers" true
    (Exec.result_equal_bag (Engine.run_sql db q) (Engine.run_sql db2 q));
  let outcome, res =
    Perso.Personalize.personalize_sql db2 (Moviedb.Personas.julie ())
      "select mv.title from movie mv, play pl where mv.mid = pl.mid and pl.date = '2/7/2003'"
  in
  Alcotest.(check bool) "personalization works on loaded db" true
    (outcome.Perso.Personalize.selected <> [] && res.Exec.rows <> [])

(* ------------------- revision high-water marks -------------------- *)

let test_revisions_survive_dump () =
  (* The profile registry's revision counters live in the profile_revs
     catalog table, so a dump + reload "restart" continues the counters
     instead of resetting them — cached plans for a pre-restart
     revision can never be mistaken for fresh ones. *)
  let db = Moviedb.Personas.tiny_db () in
  let julie = Moviedb.Personas.julie () in
  Perso.Profile_store.save db ~user:"julie" julie;
  Perso.Profile_store.save db ~user:"julie" (Moviedb.Personas.rob ());
  Perso.Profile_store.save db ~user:"bob" julie;
  Perso.Profile_store.delete db ~user:"bob";
  Alcotest.(check int) "julie at 2" 2
    (Perso.Profile_store.revision db ~user:"julie");
  Alcotest.(check int) "bob tombstone at 2" 2
    (Perso.Profile_store.revision db ~user:"bob");
  let dir = tmpdir () in
  Csv.save_db ~dir db;
  let db2 = Csv.load_db ~dir in
  Alcotest.(check (list (pair string int)))
    "marks survive the restart"
    [ ("bob", 2); ("julie", 2) ]
    (Perso.Profile_store.revisions db2);
  (* and the counters continue above the high-water mark *)
  Perso.Profile_store.save db2 ~user:"julie" julie;
  Alcotest.(check int) "monotone across restart" 3
    (Perso.Profile_store.revision db2 ~user:"julie")

(* Randomized CSV round-trip over generated tables of every type. *)
let prop_csv_roundtrip =
  let gen_value ty =
    let open QCheck.Gen in
    match ty with
    | Value.TInt -> map (fun i -> Value.Int i) small_signed_int
    | Value.TFloat -> map (fun f -> Value.Float f) (float_range (-1e6) 1e6)
    | Value.TBool -> map (fun b -> Value.Bool b) bool
    | Value.TDate ->
        map2
          (fun m d -> Value.date_of_ymd 2003 (1 + (m mod 12)) (1 + (d mod 28)))
          small_nat small_nat
    | Value.TStr ->
        oneof
          [
            map (fun s -> Value.Str s) (string_size ~gen:printable (0 -- 12));
            oneofl
              [
                Value.Str ""; Value.Str "a,b"; Value.Str "say \"hi\"";
                Value.Str "line\nbreak"; Value.Null;
              ];
          ]
  in
  let tys = [| Value.TInt; Value.TFloat; Value.TStr; Value.TBool; Value.TDate |] in
  let gen_table =
    let open QCheck.Gen in
    list_size (0 -- 20)
      (map (fun xs -> xs) (flatten_l (List.map gen_value (Array.to_list tys))))
  in
  QCheck.Test.make ~name:"CSV round-trip on random tables" ~count:100
    (QCheck.make gen_table)
    (fun rows ->
      let schema =
        Schema.make ~name:"t"
          ~cols:(Array.to_list (Array.mapi (fun i ty -> (Printf.sprintf "c%d" i, ty)) tys))
          ()
      in
      let t = Table.create schema in
      List.iter (fun r -> Table.insert t (Array.of_list r)) rows;
      let t2 = Csv.table_of_string schema (Csv.table_to_string t) in
      Table.cardinality t = Table.cardinality t2
      && List.for_all2
           (fun a b -> List.for_all2 Value.equal a b)
           (List.map Array.to_list (Table.to_list t))
           (List.map Array.to_list (Table.to_list t2)))

let () =
  ignore tmpdir;
  Alcotest.run "persist"
    [
      ( "ddl",
        [
          Alcotest.test_case "parse types" `Quick test_ddl_parse_types;
          Alcotest.test_case "unique/aliases" `Quick test_ddl_unique_and_aliases;
          Alcotest.test_case "errors" `Quick test_ddl_errors;
          Alcotest.test_case "round-trip" `Quick test_ddl_roundtrip;
        ] );
      ( "revisions",
        [
          Alcotest.test_case "survive dump + reload" `Quick
            test_revisions_survive_dump;
        ] );
      ( "csv",
        [
          Alcotest.test_case "table round-trip" `Quick test_csv_table_roundtrip;
          Alcotest.test_case "null vs empty" `Quick test_csv_null_vs_empty_string;
          Alcotest.test_case "errors" `Quick test_csv_errors;
          Alcotest.test_case "db round-trip on disk" `Quick test_db_roundtrip_on_disk;
          QCheck_alcotest.to_alcotest prop_csv_roundtrip;
        ] );
    ]
