(* The two I/O runtimes must be indistinguishable on the wire: an
   identical request script against `--io threads` and `--io evloop`
   (memory and disk backends) must produce byte-identical reply
   transcripts — including the final HEALTH block, so every ledger
   counter matches too.  Plus direct unit checks on the Evloop scheduler
   under its virtual clock. *)

open Perso_server

(* Retry backoff must not cost wall-clock in tests. *)
let () = Relal.Chaos.set_sleep ignore

let fresh_name =
  let n = ref 0 in
  fun prefix suffix ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s_%d_%d%s" prefix (Unix.getpid ()) !n suffix)

(* ------------------------- evloop scheduler -------------------------- *)

let test_evloop_order () =
  let order = ref [] in
  let log x = order := x :: !order in
  let r =
    Evloop.run ~clock:`Virtual (fun () ->
        let t1 =
          Evloop.spawn (fun () ->
              Evloop.sleep 0.2;
              log "t1")
        in
        let t2 =
          Evloop.spawn (fun () ->
              Evloop.sleep 0.1;
              log "t2")
        in
        Evloop.join t1;
        Evloop.join t2;
        log "main";
        Alcotest.(check (float 1e-9)) "virtual now" 0.2 (Evloop.now ()))
  in
  (match r with
  | Ok () -> ()
  | Error e -> Alcotest.failf "evloop failed: %s" e);
  Alcotest.(check (list string))
    "timer order" [ "main"; "t1"; "t2" ] !order

let test_evloop_mutex_cond () =
  let got = ref [] in
  let r =
    Evloop.run ~clock:`Virtual (fun () ->
        let m = Evloop.R.mutex_create () in
        let c = Evloop.R.cond_create () in
        let box = ref None in
        let consumer =
          Evloop.spawn (fun () ->
              Evloop.R.lock m;
              while !box = None do
                Evloop.R.wait c m
              done;
              got := [ Option.get !box ];
              Evloop.R.unlock m)
        in
        let producer =
          Evloop.spawn (fun () ->
              Evloop.sleep 0.05;
              Evloop.R.lock m;
              box := Some 42;
              Evloop.R.signal c;
              Evloop.R.unlock m)
        in
        Evloop.join consumer;
        Evloop.join producer)
  in
  (match r with
  | Ok () -> ()
  | Error e -> Alcotest.failf "evloop failed: %s" e);
  Alcotest.(check (list int)) "handoff" [ 42 ] !got

let test_evloop_deadlock_detected () =
  match
    Evloop.run ~clock:`Virtual (fun () ->
        let m = Evloop.R.mutex_create () in
        let t =
          Evloop.spawn (fun () ->
              Evloop.R.lock m;
              (* never unlocked *)
              ())
        in
        Evloop.join t;
        Evloop.R.lock m;
        Evloop.R.lock m (* self-deadlock: parks forever *))
  with
  | Ok () -> Alcotest.fail "expected a deadlock report"
  | Error e ->
      Alcotest.(check bool)
        (Printf.sprintf "mentions deadlock: %s" e)
        true
        (String.length e >= 8 && String.sub e 0 8 = "deadlock")

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_evloop_crash_is_fatal () =
  match Evloop.run ~clock:`Virtual (fun () -> failwith "boom") with
  | Ok () -> Alcotest.fail "expected loop failure"
  | Error e ->
      Alcotest.(check bool) "names the crash" true (contains e "boom")

(* -------------------------- raw-byte client -------------------------- *)

let connect_raw path =
  let deadline = Unix.gettimeofday () +. 5. in
  let rec go () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> fd
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) ->
        Unix.close fd;
        if Unix.gettimeofday () > deadline then
          Alcotest.failf "connect to %s timed out" path;
        Unix.sleepf 0.01;
        go ()
  in
  go ()

let is_err_line line =
  String.length line >= 4 && String.sub line 0 4 = "ERR "

(* One raw response: every byte up to and including END or a single ERR
   line. *)
let read_raw ic =
  let b = Buffer.create 256 in
  let rec go () =
    match In_channel.input_line ic with
    | None -> Alcotest.fail "connection closed mid-response"
    | Some line ->
        Buffer.add_string b line;
        Buffer.add_char b '\n';
        if line = "END" || is_err_line line then () else go ()
  in
  go ();
  Buffer.contents b

(* --------------------------- the script ------------------------------ *)

let profile_wire db =
  let p =
    Moviedb.Profile_gen.generate db
      { Moviedb.Profile_gen.default with seed = 9; n_selections = 10 }
  in
  Perso.Profile.to_string p
  |> String.split_on_char '\n'
  |> List.map String.trim
  |> List.filter (fun l -> l <> "")
  |> String.concat " "

(* A request is the full wire text (headers included).  The script mixes
   every command family, a cache hit, an identical re-save, a protocol
   error, and budget headers — all deterministic, so even the trailing
   HEALTH counters must agree across runtimes. *)
let script db =
  let wire = profile_wire db in
  let sqls =
    Moviedb.Workload.queries db ~n:3 ~seed:5
    |> List.map Relal.Sql_print.query_to_string
  in
  let q n = List.nth sqls n in
  [
    "PING";
    "PROFILE SAVE u1 " ^ wire;
    "PROFILE LOAD u1";
    "PERSONALIZE u1 " ^ q 0;
    "RUN " ^ q 1;
    "PERSONALIZE u2 " ^ q 0;
    "FROB nonsense";
    "PROFILE SAVE u1 " ^ wire;
    "PERSONALIZE u1 " ^ q 0;
    (* Budget header exercised but not tripped: the exhaustion message
       embeds elapsed wall-clock, which can never be byte-stable. *)
    "MAX-ROWS 100000\nRUN " ^ q 2;
    "DEADLINE-MS 5000\nPERSONALIZE u1 " ^ q 1;
    "PROFILE LOAD nobody";
    "HEALTH";
  ]

(* Run the script over one connection; the transcript is the
   concatenation of every raw response. *)
let transcript_of socket_path requests =
  let fd = connect_raw socket_path in
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let b = Buffer.create 4096 in
      List.iter
        (fun req ->
          output_string oc req;
          output_char oc '\n';
          flush oc;
          Buffer.add_string b (read_raw ic))
        requests;
      output_string oc "QUIT\n";
      flush oc;
      Buffer.contents b)

let mk_db () = Moviedb.Datagen.(generate (scale ~seed:7 120))

let mk_cfg ~socket_path ~store_dir =
  {
    (Server.default_config ~socket_path) with
    Server.workers = 2;
    queue_capacity = 8;
    deadline_ms = None;
    shards = 2;
    store_dir;
  }

let with_store_dir backend f =
  match backend with
  | `Memory -> f None
  | `Disk ->
      let dir = fresh_name "perso_io_store" "" in
      Unix.mkdir dir 0o755;
      f (Some dir)

let run_threads cfg db requests =
  let t = Server.start cfg db in
  Fun.protect
    ~finally:(fun () -> ignore (Server.stop t : Server.drain_outcome))
    (fun () -> transcript_of cfg.Server.socket_path requests)

let run_evloop (cfg : Server.config) db requests =
  let t = Server_ev.start cfg db in
  Fun.protect
    ~finally:(fun () -> ignore (Server_ev.stop t : Server_ev.drain_outcome))
    (fun () -> transcript_of cfg.Server.socket_path requests)

(* Parse the trailing HEALTH block out of a transcript and audit the
   ledger: everything accepted is accounted, nothing is left queued. *)
let audit_ledger label transcript =
  let stats =
    String.split_on_char '\n' transcript
    |> List.filter_map (fun line ->
           match String.split_on_char ' ' line with
           | "STAT" :: k :: v -> Some (k, String.concat " " v)
           | _ -> None)
  in
  let n k =
    match List.assoc_opt k stats with
    | Some v -> ( match int_of_string_opt v with Some i -> i | None -> 0)
    | None -> Alcotest.failf "%s: HEALTH lacks %s" label k
  in
  Alcotest.(check int) (label ^ ": queue_depth") 0 (n "queue_depth");
  Alcotest.(check int) (label ^ ": in_flight") 0 (n "in_flight");
  Alcotest.(check int)
    (label ^ ": accepted fully accounted")
    (n "accepted")
    (n "completed_ok" + n "completed_err" + n "shed_expired");
  Alcotest.(check int)
    (label ^ ": pers ledger")
    (n "pers_ok" + n "pers_err")
    (n "cache_hit" + n "cache_miss" + n "cache_incremental" + n "cache_bypass")

let diff_backend backend () =
  let requests = script (mk_db ()) in
  let t_threads =
    with_store_dir backend (fun store_dir ->
        let cfg =
          mk_cfg ~socket_path:(fresh_name "perso_io_t" ".sock") ~store_dir
        in
        run_threads cfg (mk_db ()) requests)
  in
  let t_evloop =
    with_store_dir backend (fun store_dir ->
        let cfg =
          mk_cfg ~socket_path:(fresh_name "perso_io_e" ".sock") ~store_dir
        in
        run_evloop cfg (mk_db ()) requests)
  in
  audit_ledger "threads" t_threads;
  audit_ledger "evloop" t_evloop;
  if not (String.equal t_threads t_evloop) then begin
    (* Pinpoint the first differing line for the failure message. *)
    let a = String.split_on_char '\n' t_threads
    and b = String.split_on_char '\n' t_evloop in
    let rec first_diff i = function
      | x :: xs, y :: ys ->
          if String.equal x y then first_diff (i + 1) (xs, ys)
          else Alcotest.failf "line %d differs:\n  threads: %s\n  evloop:  %s" i x y
      | [], y :: _ -> Alcotest.failf "evloop has extra line %d: %s" i y
      | x :: _, [] -> Alcotest.failf "threads has extra line %d: %s" i x
      | [], [] -> Alcotest.fail "transcripts differ but no line does?"
    in
    first_diff 0 (a, b)
  end

(* ------------------------- loadgen liveness -------------------------- *)

(* The silent-server failure shapes must yield a typed error within the
   configured bound — never a hang (the bench gate depends on it). *)

let overloaded_err = function
  | Error (Perso.Error.Overloaded _) -> true
  | _ -> false

let lg_cfg socket_path =
  {
    (Loadgen.default_config ~socket_path) with
    Loadgen.connect_timeout_ms = 300.;
    requests = 8;
    clients = 1;
  }

let test_loadgen_no_server () =
  let cfg = lg_cfg (fresh_name "perso_lg_absent" ".sock") in
  let t0 = Unix.gettimeofday () in
  let r = Loadgen.run cfg ~sqls:[| "select 1" |] ~profiles:[| "x" |] in
  let dt = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "typed overloaded error" true (overloaded_err r);
  Alcotest.(check bool)
    (Printf.sprintf "bounded by the deadline (took %.2f s)" dt)
    true (dt < 5.)

let test_loadgen_never_accepts () =
  (* Bind + listen but never accept: connect(2) succeeds into the
     backlog, so only the PING receive deadline can catch this. *)
  let path = fresh_name "perso_lg_deaf" ".sock" in
  let lfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind lfd (Unix.ADDR_UNIX path);
  Unix.listen lfd 8;
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close lfd with Unix.Unix_error _ -> ());
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let cfg = lg_cfg path in
      let t0 = Unix.gettimeofday () in
      let r = Loadgen.run cfg ~sqls:[| "select 1" |] ~profiles:[| "x" |] in
      let dt = Unix.gettimeofday () -. t0 in
      Alcotest.(check bool) "typed overloaded error" true (overloaded_err r);
      Alcotest.(check bool)
        (Printf.sprintf "bounded by the deadline (took %.2f s)" dt)
        true (dt < 5.))

let test_loadgen_script_shape () =
  let cfg =
    { (Loadgen.default_config ~socket_path:"unused") with Loadgen.requests = 500 }
  in
  let script = Loadgen.make_script cfg ~sqls:[| "select 1" |] ~profiles:[| "x" |] in
  Alcotest.(check int) "length" 500 (Array.length script);
  Array.iteri
    (fun i s ->
      if i > 0 && s.Loadgen.at < script.(i - 1).Loadgen.at then
        Alcotest.failf "arrival %d not monotone" i)
    script;
  (* Same seed, same schedule. *)
  let script' = Loadgen.make_script cfg ~sqls:[| "select 1" |] ~profiles:[| "x" |] in
  Alcotest.(check bool) "deterministic" true (script = script')

let () =
  Alcotest.run "serve_io"
    [
      ( "evloop",
        [
          Alcotest.test_case "timer/join order" `Quick test_evloop_order;
          Alcotest.test_case "mutex + condvar" `Quick test_evloop_mutex_cond;
          Alcotest.test_case "deadlock detected" `Quick
            test_evloop_deadlock_detected;
          Alcotest.test_case "task crash is fatal" `Quick
            test_evloop_crash_is_fatal;
        ] );
      ( "differential",
        [
          Alcotest.test_case "threads = evloop (memory)" `Quick
            (diff_backend `Memory);
          Alcotest.test_case "threads = evloop (disk)" `Quick
            (diff_backend `Disk);
        ] );
      ( "loadgen",
        [
          Alcotest.test_case "no server: typed error, bounded" `Quick
            test_loadgen_no_server;
          Alcotest.test_case "never accepts: typed error, bounded" `Quick
            test_loadgen_never_accepts;
          Alcotest.test_case "script: seeded, monotone arrivals" `Quick
            test_loadgen_script_shape;
        ] );
      ( "sim",
        [
          Alcotest.test_case "evloop under virtual time (seeds 1-3)" `Quick
            (fun () ->
              List.iter
                (fun seed ->
                  match Perso_sim.Evloop_check.run ~seed with
                  | Ok () -> ()
                  | Error e -> Alcotest.failf "seed %d: %s" seed e)
                [ 1; 2; 3 ]);
        ] );
    ]
