Scripted session of the interactive personalized-SQL shell.

  $ perso_repl <<'SESSION'
  > .help
  > .like [ GENRE.genre = 'comedy', 0.9 ]
  > .like [ MOVIE.mid = GENRE.mid, 0.9 ]
  > select mv.title from movie mv, play pl where mv.mid = pl.mid and pl.date = '2/7/2003'
  > select mv.title from movie mv, play pl where mv.mid = pl.mid and pl.date = '2/7/2003'
  > .cache
  > .cache off
  > .cache
  > .cache on
  > .unlike [ MOVIE.title = 'Double Take', 1 ]
  > select mv.title from movie mv, play pl where mv.mid = pl.mid and pl.date = '2/7/2003'
  > .k 3
  > .show
  > .plain select count(*) as n from play p
  > .explain select mv.title from movie mv where mv.year = 2003
  > .badcmd
  > select nonsense
  > .quit
  > SESSION
  perdb personalized-SQL shell — .help for commands
  perdb> commands: .help .load DIR .tiny .gen N .profile FILE .like [COND, D]
            .unlike [COND, D] .k N .l N .m N .method sq|mq .cache [on|off]
            .plain SQL .show .explain SQL .quit — anything else runs as personalized SQL
  perdb> added GENRE.genre = 'comedy' (0.9)
  perdb> added MOVIE.mid = GENRE.mid (0.9)
  perdb> preferences used: 1 (cache miss)
  +-------------------+------+
  | title             | doi  |
  +-------------------+------+
  | 'Sweet Chaos'     | 0.81 |
  | 'Laughing Waters' | 0.81 |
  | 'Double Take'     | 0.81 |
  | 'Second Spring'   | 0.81 |
  +-------------------+------+
  (4 rows)
  perdb> preferences used: 1 (cache hit)
  +-------------------+------+
  | title             | doi  |
  +-------------------+------+
  | 'Sweet Chaos'     | 0.81 |
  | 'Laughing Waters' | 0.81 |
  | 'Double Take'     | 0.81 |
  | 'Second Spring'   | 0.81 |
  +-------------------+------+
  (4 rows)
  perdb> cache on: 1 hits, 0 incremental, 1 misses, 0 evictions, 0 invalidations, 1 entries
  perdb> cache off
  perdb> cache off
  perdb> cache on
  perdb> added dislike MOVIE.title = 'Double Take' (1.0)
  perdb> likes used: 1, dislikes used: 1
    'Laughing Waters'                        score=0.8100
    'Second Spring'                          score=0.8100
    'Sweet Chaos'                            score=0.8100
  (3 rows)
  perdb> perdb> database: tiny example database
  theatre             4 rows
  play               16 rows
  movie              12 rows
  cast               19 rows
  actor               6 rows
  directed           12 rows
  director            4 rows
  genre              17 rows
  profile: 2 preferences (1 selections)
  [ GENRE.genre = 'comedy', 0.9 ]
  [ MOVIE.mid = GENRE.mid, 0.9 ]
  dislikes:
  [ MOVIE.title = 'Double Take', 1.0 ]
  params: K=3 L=1 M=0 method=mq
  perdb> +----+
  | n  |
  +----+
  | 16 |
  +----+
  (1 rows)
  perdb> == Selected preferences (P_K) ==
   1. MOVIE.mid = GENRE.mid and GENRE.genre = 'comedy'                       doi=0.81  (via mv)
  mandatory: 0, optional: 1
  selection stats: 2 pops, 2 pushes, 1 expansions, 0 conflicts discarded, 0 cycles pruned, max queue 1
  == Personalized query ==
  select temp.title as title, degree_of_conjunction(temp.doi, temp.pref) as doi
  from (
    (
      select distinct mv.title as title, 0.81 as doi, 0 as pref
      from movie mv,
           genre ge
      where mv.year = 2003 and mv.mid = ge.mid and ge.genre = 'comedy'
    )
  ) temp
  group by temp.title
  having count(*) >= 1
  order by doi desc
  perdb> unknown command .badcmd (try .help)
  perdb> parse error: expected keyword FROM (at EOF)
  perdb> 
