(* Differential executor test: the batch (vrel / row-id) executor must
   agree, on sorted rows, with an *independent* cross-product + filter
   reference evaluator written here against plain value lists — no vrel,
   no Batch, no shared join machinery.  The corpus is the full SQL set
   exercised by test_exec.ml plus the Moviedb.Workload generator's query
   set; shapes the reference cannot express (aggregates, derived tables,
   LIMIT) are still cross-checked Auto vs Cost vs Naive. *)

open Relal
open Sql_ast

exception Unsupported

(* ------------------- Independent reference evaluator ------------------- *)

(* Environments are association lists (tv -> (column names, row)); the
   FROM product is built by list comprehension, WHERE is evaluated per
   environment, and projection materializes plain rows.  ORDER BY is
   ignored (all comparisons are on sorted rows); LIMIT is refused. *)
let ref_eval db (q : query) : Exec.result =
  if q.group_by <> [] || q.having <> None || q.limit <> None then
    raise Unsupported;
  let tables =
    List.map
      (function
        | F_derived _ -> raise Unsupported
        | F_rel r -> (
            match Database.find_table db r.rel with
            | None -> raise Unsupported
            | Some t ->
                let cols =
                  Array.map
                    (fun c -> c.Schema.cname)
                    (Schema.columns (Table.schema t))
                in
                (r.alias, cols, Table.to_list t)))
      q.from
  in
  let envs =
    List.fold_left
      (fun acc (tv, cols, rows) ->
        List.concat_map
          (fun env -> List.map (fun row -> (tv, cols, row) :: env) rows)
          acc)
      [ [] ] tables
  in
  let lookup env (a : attr) =
    let _, cols, row =
      try List.find (fun (tv, _, _) -> tv = a.tv) env
      with Not_found -> raise Unsupported
    in
    let rec find i =
      if i >= Array.length cols then raise Unsupported
      else if cols.(i) = a.col then row.(i)
      else find (i + 1)
    in
    find 0
  in
  let scalar env = function S_const c -> c | S_attr a -> lookup env a in
  let rec holds env = function
    | P_true -> true
    | P_false -> false
    | P_not p -> not (holds env p)
    | P_and ps -> List.for_all (holds env) ps
    | P_or ps -> List.exists (holds env) ps
    | P_cmp (op, l, r) -> (
        let a = scalar env l and b = scalar env r in
        match op with
        | Eq -> Value.equal a b
        | Ne -> not (Value.equal a b)
        | Lt -> Value.compare a b < 0
        | Le -> Value.compare a b <= 0
        | Gt -> Value.compare a b > 0
        | Ge -> Value.compare a b >= 0)
  in
  let project env =
    Array.of_list
      (List.map
         (function
           | Sel_attr (a, _) -> lookup env a
           | Sel_const (v, _) -> v
           | Sel_agg _ -> raise Unsupported)
         q.select)
  in
  let rows =
    List.filter_map
      (fun env -> if holds env q.where then Some (project env) else None)
      envs
  in
  let rows =
    if q.distinct then begin
      let seen = Hashtbl.create 64 in
      List.filter (fun r ->
          let k = Array.to_list r in
          if Hashtbl.mem seen k then false
          else begin
            Hashtbl.add seen k ();
            true
          end)
        rows
    end
    else rows
  in
  { Exec.cols = Array.of_list (select_output_names q); rows }

(* ----------------------------- Corpus ---------------------------------- *)

(* Every SQL text test_exec.ml runs (operator coverage); the reference
   evaluator handles the SPJ subset and raises [Unsupported] on the rest,
   which stays covered by the strategy cross-check. *)
let corpus =
  [
    "select m.title from movie m where m.year = 2000";
    "select m.title, 1 as tag from movie m where m.year = 1998";
    "select title from movie where year = 2003";
    "select m.title from movie m, play p where m.mid = p.mid and p.date = \
     '2003-07-02'";
    "select m.title from movie m, play p where m.mid = p.mid and p.date = \
     '2/7/2003'";
    "select m.title from movie m, directed d, director r where m.mid = d.mid \
     and d.did = r.did and r.name = 'D. Lynch'";
    "select distinct m2.title from movie m1, directed d1, directed d2, movie \
     m2 where m1.title = 'Sweet Chaos' and m1.mid = d1.mid and d1.did = \
     d2.did and d2.mid = m2.mid";
    "select m.title, d.name from movie m, director d where m.year = 1998";
    "select g.genre from genre g";
    "select distinct g.genre from genre g";
    "select distinct m.title from movie m, genre g where m.mid = g.mid and \
     (g.genre = 'sci-fi' or g.genre = 'action')";
    "select m.title from movie m, genre g where m.mid = g.mid and (g.genre = \
     'mystery' or g.genre = 'thriller')";
    "select g.genre, count(*) as n from genre g group by g.genre having \
     count(*) >= 3 order by n desc, g.genre asc";
    "select d.name, count(*) as n, min(m.year) as lo, max(m.year) as hi, \
     avg(m.year) as mean, sum(m.year) as total from director d, directed dd, \
     movie m where d.did = dd.did and dd.mid = m.mid group by d.name order \
     by d.name asc";
    "select count(*) as n from movie m where m.year = 1800";
    "select t.title from ((select m.title from movie m where m.year = 2000) \
     union all (select m.title from movie m where m.year = 2000)) t group by \
     t.title having count(*) >= 2";
    "select t.title from ((select distinct m.title from movie m, genre g \
     where m.mid = g.mid and g.genre = 'comedy') union all (select distinct \
     m.title from movie m, genre g where m.mid = g.mid and g.genre = \
     'drama')) t group by t.title having count(*) >= 2";
    "select t.title, degree_of_conjunction(t.doi, t.pref) as doi from \
     ((select distinct m.title as title, 0.8 as doi, 0 as pref from movie m, \
     genre g where m.mid = g.mid and g.genre = 'comedy') union all (select \
     distinct m.title as title, 0.5 as doi, 1 as pref from movie m, genre g \
     where m.mid = g.mid and g.genre = 'drama')) t group by t.title order \
     by doi desc, t.title asc";
    "select t.title, degree_of_conjunction(t.doi, t.pref) as doi from \
     ((select distinct m.title as title, 0.5 as doi, 0 as pref from movie m \
     where m.year = 2000) union all (select distinct m.title as title, 0.5 \
     as doi, 0 as pref from movie m where m.year = 2000)) t group by t.title";
    "select m.title, m.year from movie m order by m.year desc, m.title asc \
     limit 3";
    "select m.title from movie m where m.year = 1800";
    "select m.title from movie m where false";
    "select m.title from movie m where true";
    "select m.title from movie m where not m.year = 2003 and not m.year = \
     2002";
    "select distinct m.title, m.year from movie m, genre g where m.mid = \
     g.mid and (g.genre = 'comedy' or g.genre = 'thriller') order by m.year \
     desc, m.title asc limit 3";
    "select m.title from movie m, director r where m.year = 1998";
    "select distinct m1.title from movie m1, movie m2 where m1.year < \
     m2.year and m2.title = 'Sweet Chaos'";
  ]

let check_query db label bound =
  let auto = Exec.run ~strategy:`Auto db bound in
  let cost = Exec.run ~strategy:`Cost db bound in
  let naive = Exec.run ~strategy:`Naive db bound in
  Alcotest.(check bool)
    (label ^ ": auto = naive (sorted rows)")
    true
    (Exec.result_equal_bag auto naive);
  Alcotest.(check bool)
    (label ^ ": cost = naive (sorted rows)")
    true
    (Exec.result_equal_bag cost naive);
  match ref_eval db bound with
  | reference ->
      Alcotest.(check bool)
        (label ^ ": batch executor = reference evaluator (sorted rows)")
        true
        (Exec.result_equal_bag auto reference)
  | exception Unsupported -> ()

let test_corpus () =
  let db = Moviedb.Personas.tiny_db () in
  let n_ref = ref 0 in
  List.iter
    (fun sql ->
      let bound = Binder.bind db (Sql_parser.parse sql) in
      (match ref_eval db bound with
      | _ -> incr n_ref
      | exception Unsupported -> ());
      check_query db sql bound)
    corpus;
  (* Guard against the reference silently opting out of everything. *)
  Alcotest.(check bool)
    "reference evaluator covered most of the corpus" true (!n_ref >= 15)

let test_workload () =
  let db = Moviedb.Personas.tiny_db () in
  List.iteri
    (fun i q ->
      let bound = Binder.bind db q in
      check_query db (Printf.sprintf "workload query %d" i) bound)
    (Moviedb.Workload.queries db ~n:50 ~seed:4242)

let () =
  Alcotest.run "exec-diff"
    [
      ( "differential",
        [
          Alcotest.test_case "test_exec corpus" `Quick test_corpus;
          Alcotest.test_case "workload queries" `Quick test_workload;
        ] );
    ]
