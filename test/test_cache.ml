(* The personalization plan cache: profile-store revisions and
   invalidation hooks, LRU bounds, hit/incremental/miss sources, the
   resilient cached ladder, and the cold/cached/incremental
   byte-equality oracle swept across many seeds. *)

open Perso
open Relal

let d = Helpers.deg

let motivating_sql =
  "select mv.title from movie mv, play pl where mv.mid = pl.mid and pl.date \
   = '2003-07-02'"

let q db sql = Binder.bind db (Sql_parser.parse sql)

let src_name = function
  | Perso_cache.Hit -> "hit"
  | Perso_cache.Incremental -> "incremental"
  | Perso_cache.Miss -> "miss"
  | Perso_cache.Bypass -> "bypass"

let check_src name expected got =
  Alcotest.(check string) name (src_name expected) (src_name got)

let sql_of o = Sql_print.query_to_string o.Personalize.personalized

let rows_of db o =
  (Personalize.execute db o).Exec.rows
  |> List.map (fun row ->
         Array.to_list row |> List.map Value.to_string |> String.concat "\t")

(* ----------------------- revisions and no-op saves ------------------ *)

let test_revision_bumps () =
  let db = Moviedb.Personas.tiny_db () in
  let julie = Moviedb.Personas.julie () in
  let events = ref [] in
  Profile_store.subscribe db (fun ~user ev -> events := (user, ev) :: !events);
  Alcotest.(check int) "fresh user at 0" 0 (Profile_store.revision db ~user:"julie");
  Profile_store.save db ~user:"julie" julie;
  Alcotest.(check int) "save bumps" 1 (Profile_store.revision db ~user:"julie");
  Alcotest.(check int) "saved event fired" 1 (List.length !events);
  let a = Atom.sel "genre" "genre" (Value.Str "drama") in
  Profile_store.save db ~user:"Julie" (Profile.add julie a (d 0.5));
  Alcotest.(check int) "changed save bumps (case-folded)" 2
    (Profile_store.revision db ~user:"julie");
  Profile_store.delete db ~user:"julie";
  Alcotest.(check int) "delete bumps" 3 (Profile_store.revision db ~user:"julie");
  Alcotest.(check bool) "delete event" true
    (match !events with ("julie", Profile_store.Deleted) :: _ -> true | _ -> false);
  Profile_store.delete db ~user:"julie";
  Alcotest.(check int) "deleting an absent user is a no-op" 3
    (Profile_store.revision db ~user:"julie");
  Alcotest.(check int) "no event for the no-op delete" 3 (List.length !events);
  Alcotest.(check int) "other users unaffected" 0
    (Profile_store.revision db ~user:"rob")

let test_identical_save_noop () =
  let db = Moviedb.Personas.tiny_db () in
  let julie = Moviedb.Personas.julie () in
  let events = ref 0 in
  Profile_store.subscribe db (fun ~user:_ _ -> incr events);
  Profile_store.save db ~user:"julie" julie;
  Alcotest.(check int) "first save fires" 1 !events;
  (* Any table rewrite crosses Chaos.Store_mutate; with faults armed at
     p=1 a rewrite must raise, so surviving proves the re-save never
     touched storage. *)
  let (_ : Chaos.stats) = Chaos.arm ~transient_ratio:0. ~seed:7 ~p:1.0 () in
  Fun.protect ~finally:Chaos.disarm (fun () ->
      Profile_store.save db ~user:"julie" julie);
  Alcotest.(check int) "identical re-save: no rewrite, no bump, no event" 1
    !events;
  Alcotest.(check int) "revision unchanged" 1
    (Profile_store.revision db ~user:"julie")

(* --------------------------- cache behaviour ------------------------ *)

let setup () =
  let db = Moviedb.Personas.tiny_db () in
  let julie = Moviedb.Personas.julie () in
  Profile_store.save db ~user:"julie" julie;
  (db, julie, Perso_cache.create db)

let test_hit_is_byte_identical () =
  let db, julie, cache = setup () in
  let query = q db motivating_sql in
  let cold = Personalize.personalize db julie query in
  let o1, s1 = Perso_cache.personalize cache ~user:"julie" julie query in
  let o2, s2 = Perso_cache.personalize cache ~user:"julie" julie query in
  check_src "first consult misses" Perso_cache.Miss s1;
  check_src "second consult hits" Perso_cache.Hit s2;
  Alcotest.(check string) "miss = cold sql" (sql_of cold) (sql_of o1);
  Alcotest.(check string) "hit = cold sql" (sql_of cold) (sql_of o2);
  Alcotest.(check (list string)) "hit = cold rows" (rows_of db cold) (rows_of db o2);
  let st = Perso_cache.stats cache in
  Alcotest.(check int) "one entry" 1 st.Perso_cache.entries;
  Alcotest.(check bool) "bytes accounted" true (st.Perso_cache.bytes > 0)

let test_params_split_keys () =
  let db, julie, cache = setup () in
  let query = q db motivating_sql in
  let p3 = { Personalize.default_params with k = Criteria.top_r 3 } in
  let _, s1 = Perso_cache.personalize cache ~user:"julie" julie query in
  let _, s2 = Perso_cache.personalize cache ~params:p3 ~user:"julie" julie query in
  let _, s3 = Perso_cache.personalize cache ~params:p3 ~user:"julie" julie query in
  check_src "default params miss" Perso_cache.Miss s1;
  check_src "different params re-miss" Perso_cache.Miss s2;
  check_src "same params hit" Perso_cache.Hit s3;
  Alcotest.(check int) "two entries" 2 (Perso_cache.stats cache).Perso_cache.entries

let test_lru_eviction () =
  let db = Moviedb.Personas.tiny_db () in
  let julie = Moviedb.Personas.julie () in
  Profile_store.save db ~user:"julie" julie;
  let cache = Perso_cache.create ~max_entries:2 db in
  let sqls =
    [
      motivating_sql;
      "select m.title from movie m where m.year = 1999";
      "select g.genre from genre g, movie m where m.mid = g.mid";
    ]
  in
  List.iter
    (fun sql ->
      ignore (Perso_cache.personalize cache ~user:"julie" julie (q db sql)))
    sqls;
  let st = Perso_cache.stats cache in
  Alcotest.(check int) "bounded to 2" 2 st.Perso_cache.entries;
  Alcotest.(check int) "one eviction" 1 st.Perso_cache.evictions;
  (* The oldest key was evicted; the newest two still hit. *)
  let _, s_old =
    Perso_cache.personalize cache ~user:"julie" julie (q db (List.hd sqls))
  in
  check_src "evicted key re-misses" Perso_cache.Miss s_old

let test_byte_bound_evicts () =
  let db, julie, _ = setup () in
  let cache = Perso_cache.create ~max_bytes:1 db in
  ignore (Perso_cache.personalize cache ~user:"julie" julie (q db motivating_sql));
  let st = Perso_cache.stats cache in
  Alcotest.(check int) "over-budget entry evicted" 0 st.Perso_cache.entries;
  Alcotest.(check bool) "eviction counted" true (st.Perso_cache.evictions >= 1)

let test_invalidation_on_save_and_delete () =
  let db, julie, cache = setup () in
  let query = q db motivating_sql in
  ignore (Perso_cache.personalize cache ~user:"julie" julie query);
  let julie' =
    Profile.add julie (Atom.sel "genre" "genre" (Value.Str "drama")) (d 0.4)
  in
  Profile_store.save db ~user:"julie" julie';
  let st = Perso_cache.stats cache in
  Alcotest.(check int) "save invalidates the fresh entry" 1
    st.Perso_cache.invalidations;
  Alcotest.(check int) "entry stays as a patch donor" 1 st.Perso_cache.entries;
  let o, s = Perso_cache.personalize cache ~user:"julie" julie' query in
  Alcotest.(check bool) "stale entry is not served as a hit" true
    (s <> Perso_cache.Hit);
  let cold = Personalize.personalize db julie' query in
  Alcotest.(check string) "recomputed = cold" (sql_of cold) (sql_of o);
  Profile_store.delete db ~user:"julie";
  Alcotest.(check int) "delete drops the user's entries" 0
    (Perso_cache.stats cache).Perso_cache.entries

let test_incremental_retune () =
  let db, julie, cache = setup () in
  let query = q db motivating_sql in
  (* K far above the number of related paths: the donor P_K is not cut
     off, so retuning a selected preference is patchable.  (Under the
     default K=5 julie's P_K is full and the patcher must — and does —
     fall back cold; see the fallback test.) *)
  let params = { Personalize.default_params with k = Criteria.top_r 50 } in
  ignore (Perso_cache.personalize cache ~params ~user:"julie" julie query);
  (* 0.65 rather than 0.7: julie already holds thriller at 0.7, and a
     cross-list degree tie makes the merge order ambiguous, so the
     patcher would (rightly) refuse and go cold. *)
  let julie' =
    Profile.add julie (Atom.sel "genre" "genre" (Value.Str "comedy")) (d 0.65)
  in
  Profile_store.save db ~user:"julie" julie';
  let o, s = Perso_cache.personalize cache ~params ~user:"julie" julie' query in
  check_src "single-selection retune patches" Perso_cache.Incremental s;
  let cold = Personalize.personalize ~params db julie' query in
  Alcotest.(check string) "patched sql = cold sql" (sql_of cold) (sql_of o);
  Alcotest.(check (list string)) "patched rows = cold rows" (rows_of db cold)
    (rows_of db o);
  let _, s2 = Perso_cache.personalize cache ~params ~user:"julie" julie' query in
  check_src "patched entry then hits" Perso_cache.Hit s2

let test_retune_selected_at_cutoff_falls_back () =
  let db, julie, cache = setup () in
  let query = q db motivating_sql in
  ignore (Perso_cache.personalize cache ~user:"julie" julie query);
  let julie' =
    Profile.add julie (Atom.sel "genre" "genre" (Value.Str "comedy")) (d 0.7)
  in
  Profile_store.save db ~user:"julie" julie';
  (* comedy is in the donor's full top-5: slots freed at the cutoff may
     admit paths the donor never materialized, so this must go cold. *)
  let o, s = Perso_cache.personalize cache ~user:"julie" julie' query in
  check_src "retune of a cut-off selection recomputes" Perso_cache.Miss s;
  let cold = Personalize.personalize db julie' query in
  Alcotest.(check string) "fallback = cold" (sql_of cold) (sql_of o)

let test_incremental_add_remove () =
  let db, julie, cache = setup () in
  let query = q db motivating_sql in
  let extra = Atom.sel "genre" "genre" (Value.Str "drama") in
  ignore (Perso_cache.personalize cache ~user:"julie" julie query);
  let with_extra = Profile.add julie extra (d 0.45) in
  Profile_store.save db ~user:"julie" with_extra;
  let o_add, s_add = Perso_cache.personalize cache ~user:"julie" with_extra query in
  check_src "adding a selection patches" Perso_cache.Incremental s_add;
  let cold_add = Personalize.personalize db with_extra query in
  Alcotest.(check string) "add = cold" (sql_of cold_add) (sql_of o_add);
  Profile_store.save db ~user:"julie" julie;
  let o_rem, s_rem = Perso_cache.personalize cache ~user:"julie" julie query in
  check_src "removing it patches back" Perso_cache.Incremental s_rem;
  let cold_rem = Personalize.personalize db julie query in
  Alcotest.(check string) "remove = cold" (sql_of cold_rem) (sql_of o_rem)

let test_join_edit_falls_back_cold () =
  let db, julie, cache = setup () in
  let query = q db motivating_sql in
  ignore (Perso_cache.personalize cache ~user:"julie" julie query);
  let join_edit =
    Profile.add julie (Atom.join ("movie", "mid") ("genre", "mid")) (d 0.55)
  in
  Profile_store.save db ~user:"julie" join_edit;
  let o, s = Perso_cache.personalize cache ~user:"julie" join_edit query in
  check_src "join retune is never patched" Perso_cache.Miss s;
  let cold = Personalize.personalize db join_edit query in
  Alcotest.(check string) "fallback = cold" (sql_of cold) (sql_of o)

let test_sql_r_sources_and_bypass () =
  let db, julie, cache = setup () in
  let run src_check ?cache ?user () =
    let r, s =
      Perso_cache.personalize_sql_r ?cache ?user db julie motivating_sql
    in
    (match r with
    | Ok _ -> ()
    | Error e -> Alcotest.fail ("unexpected error: " ^ Error.to_string e));
    src_check s
  in
  run (check_src "no cache -> bypass" Perso_cache.Bypass) ();
  run (check_src "no user -> bypass" Perso_cache.Bypass) ~cache ();
  run (check_src "cached -> miss" Perso_cache.Miss) ~cache ~user:"julie" ();
  run (check_src "cached again -> hit" Perso_cache.Hit) ~cache ~user:"julie" ();
  let other_db = Moviedb.Personas.tiny_db () in
  let r, s =
    Perso_cache.personalize_sql_r ~cache ~user:"julie" other_db julie
      motivating_sql
  in
  Alcotest.(check bool) "foreign db still answers" true (Result.is_ok r);
  check_src "foreign db -> bypass" Perso_cache.Bypass s;
  let r_bad, s_bad =
    Perso_cache.personalize_sql_r ~cache ~user:"julie" db julie "select nope"
  in
  Alcotest.(check bool) "parse error surfaces" true (Result.is_error r_bad);
  check_src "parse error -> bypass" Perso_cache.Bypass s_bad;
  let st = Perso_cache.stats cache in
  (* The no-cache call has no stats object to tick: 3, not 4. *)
  Alcotest.(check int) "bypasses counted on the cache" 3 st.Perso_cache.bypasses

let test_clear_and_invalidate_user () =
  let db, julie, cache = setup () in
  ignore (Perso_cache.personalize cache ~user:"julie" julie (q db motivating_sql));
  Alcotest.(check int) "explicit invalidation drops entries" 1
    (Perso_cache.invalidate_user cache ~user:"julie");
  ignore (Perso_cache.personalize cache ~user:"julie" julie (q db motivating_sql));
  Perso_cache.clear cache;
  Alcotest.(check int) "clear empties" 0
    (Perso_cache.stats cache).Perso_cache.entries

(* ------------------------ size estimate ----------------------------- *)

(* The structural estimate that replaced [Obj.reachable_words] in the
   byte accounting must stay within 2× of the exact measure (either
   direction) on representative outcomes: small persona profiles on the
   tiny db and generated 10–20-selection profiles on a datagen db,
   under both integration methods and several K. *)
let test_size_estimate () =
  let word_bytes = Sys.word_size / 8 in
  let exact key profile outcome =
    Obj.reachable_words (Obj.repr (key, profile, outcome)) * word_bytes
  in
  let cases = ref 0 in
  let check_case name db profile params sql =
    let outcome =
      Personalize.personalize ~params db profile (Sql_parser.parse sql)
    in
    let key = "julie\x01mq|top#5\x01" ^ sql in
    let est = Size_est.entry_bytes ~key profile outcome in
    let ex = exact key profile outcome in
    let ratio = float_of_int est /. float_of_int (max 1 ex) in
    incr cases;
    (if Sys.getenv_opt "SIZE_EST_DEBUG" <> None then
       Printf.eprintf "%s: est=%d exact=%d ratio=%.2f\n%!" name est ex ratio);
    if ratio < 0.5 || ratio > 2.0 then
      Alcotest.failf "%s: estimate %dB vs exact %dB (ratio %.2f) out of 2x"
        name est ex ratio
  in
  let tiny = Moviedb.Personas.tiny_db () in
  let julie = Moviedb.Personas.julie () in
  let p ?(k = 5) method_ =
    { Personalize.default_params with k = Criteria.top_r k; method_ }
  in
  check_case "tiny mq" tiny julie (p `MQ) motivating_sql;
  check_case "tiny sq" tiny julie (p `SQ) motivating_sql;
  check_case "tiny mq k1" tiny julie (p ~k:1 `MQ) motivating_sql;
  let db = Moviedb.Datagen.(generate (scale ~seed:7 120)) in
  let rng = Putil.Rng.create 99 in
  for seed = 1 to 6 do
    let profile =
      Moviedb.Profile_gen.generate db
        { Moviedb.Profile_gen.default with seed; n_selections = 4 * seed }
    in
    let sql =
      Sql_print.query_to_string (Moviedb.Workload.random_query db rng)
    in
    check_case
      (Printf.sprintf "datagen seed %d mq" seed)
      db profile
      (p ~k:(3 + seed) `MQ)
      sql;
    check_case
      (Printf.sprintf "datagen seed %d sq" seed)
      db profile
      (p ~k:(3 + seed) `SQ)
      sql
  done;
  Alcotest.(check bool)
    (Printf.sprintf "representative cases covered (%d)" !cases)
    true (!cases >= 10)

(* -------------------- oracle sweep: 100 seeded runs ----------------- *)

let test_oracle_sweep () =
  let n_inc = ref 0 and n_cold = ref 0 in
  for seed = 1 to 100 do
    let checks = Perso_sim.Oracle.cache_checks ~movies:120 ~selections:12 seed "sweep" in
    List.iter
      (fun c ->
        if not c.Perso_sim.Oracle.ok then
          Alcotest.failf "seed %d: %s: %s" seed c.Perso_sim.Oracle.name
            c.Perso_sim.Oracle.detail;
        Scanf.sscanf_opt c.Perso_sim.Oracle.detail "incremental=%d cold=%d"
          (fun a b -> (a, b))
        |> Option.iter (fun (a, b) ->
               n_inc := !n_inc + a;
               n_cold := !n_cold + b))
      checks
  done;
  Alcotest.(check bool)
    (Printf.sprintf "incremental path exercised (%d incremental, %d cold)"
       !n_inc !n_cold)
    true (!n_inc > 0)

let () =
  Alcotest.run "perso_cache"
    [
      ( "store-revisions",
        [
          Alcotest.test_case "bumps and events" `Quick test_revision_bumps;
          Alcotest.test_case "identical save no-op" `Quick
            test_identical_save_noop;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit byte-identical" `Quick
            test_hit_is_byte_identical;
          Alcotest.test_case "params split keys" `Quick test_params_split_keys;
          Alcotest.test_case "lru eviction" `Quick test_lru_eviction;
          Alcotest.test_case "byte bound" `Quick test_byte_bound_evicts;
          Alcotest.test_case "invalidation" `Quick
            test_invalidation_on_save_and_delete;
          Alcotest.test_case "clear / invalidate_user" `Quick
            test_clear_and_invalidate_user;
        ] );
      ( "size-estimate",
        [
          Alcotest.test_case "within 2x of reachable_words" `Quick
            test_size_estimate;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "retune" `Quick test_incremental_retune;
          Alcotest.test_case "retune at cutoff falls back" `Quick
            test_retune_selected_at_cutoff_falls_back;
          Alcotest.test_case "add / remove" `Quick test_incremental_add_remove;
          Alcotest.test_case "join edit falls back" `Quick
            test_join_edit_falls_back_cold;
        ] );
      ( "resilient",
        [
          Alcotest.test_case "sources and bypass" `Quick
            test_sql_r_sources_and_bypass;
        ] );
      ( "oracle",
        [ Alcotest.test_case "100-seed sweep" `Quick test_oracle_sweep ] );
    ]
