(* The deterministic-simulation harness testing itself: scheduler
   reproducibility, scenario audits over many seeds, the shrinker, the
   step-list wire format, the mutation self-test (the harness must
   catch an injected ledger bug and minimize the repro), and the
   metamorphic/differential oracle at 10× the unit-suite scale. *)

open Perso_sim

(* --------------------------- scheduler ----------------------------- *)

(* A little contended program: three tasks bump a shared counter under
   a mutex with sleeps and yields in the critical section. *)
let counter_program () =
  let m = Sched.mutex_create () in
  let counter = ref 0 in
  let tasks =
    List.init 3 (fun i ->
        Sched.spawn ~name:(Printf.sprintf "w%d" i) (fun () ->
            for _ = 1 to 5 do
              Sched.lock m;
              let v = !counter in
              Sched.yield ();
              Sched.sleep 0.001;
              counter := v + 1;
              Sched.unlock m
            done))
  in
  List.iter Sched.join tasks;
  if !counter <> 15 then Sched.fail "lost update"

let test_sched_deterministic () =
  let o1 = Sched.run ~seed:11 counter_program in
  let o2 = Sched.run ~seed:11 counter_program in
  Alcotest.(check bool) "run ok" true (o1.Sched.result = Ok ());
  Alcotest.(check string) "same seed, same digest" o1.Sched.digest o2.Sched.digest;
  Alcotest.(check int) "same seed, same steps" o1.Sched.steps o2.Sched.steps;
  (* Different seeds still finish correctly (the mutex protects the
     counter under every interleaving). *)
  let o3 = Sched.run ~seed:12 counter_program in
  Alcotest.(check bool) "other seed ok" true (o3.Sched.result = Ok ())

let test_sched_deadlock_detected () =
  let o =
    Sched.run ~seed:1 (fun () ->
        let m = Sched.mutex_create () in
        let c = Sched.cond_create () in
        Sched.lock m;
        (* Nobody will ever signal. *)
        Sched.wait c m)
  in
  match o.Sched.result with
  | Error msg ->
      Alcotest.(check bool) "reports deadlock" true
        (String.length msg >= 8 && String.sub msg 0 8 = "deadlock")
  | Ok () -> Alcotest.fail "lost wakeup not detected"

let test_sched_virtual_time () =
  (* 10 s of simulated sleeping must cost no wall-clock. *)
  let wall0 = Unix.gettimeofday () in
  let o = Sched.run ~seed:3 (fun () -> Sched.sleep 10.) in
  Alcotest.(check bool) "vnow advanced" true (o.Sched.vnow >= 10.);
  Alcotest.(check bool) "instantaneous in wall time" true
    (Unix.gettimeofday () -. wall0 < 1.)

(* --------------------------- scenarios ----------------------------- *)

let test_scenario_seeds_pass () =
  for seed = 42 to 49 do
    let r = Scenario.run_seed ~seed in
    match r.Scenario.verdict with
    | Ok () -> ()
    | Error f ->
        Alcotest.failf "seed %d: %s: %s (replay: perso_cli sim --seed %d)" seed
          f.Scenario.invariant f.Scenario.detail seed
  done

let test_scenario_bit_reproducible () =
  List.iter
    (fun seed ->
      let r1 = Scenario.run_seed ~seed in
      let r2 = Scenario.run_seed ~seed in
      Alcotest.(check string)
        (Printf.sprintf "seed %d digest" seed)
        r1.Scenario.digest r2.Scenario.digest)
    [ 42; 43; 44 ]

let test_steps_roundtrip () =
  List.iter
    (fun seed ->
      let steps = Scenario.generate ~seed in
      let s = Scenario.steps_to_string steps in
      match Scenario.steps_of_string s with
      | Ok steps' ->
          Alcotest.(check bool)
            (Printf.sprintf "seed %d exact round-trip" seed)
            true (steps = steps');
          Alcotest.(check string)
            (Printf.sprintf "seed %d re-encoding" seed)
            s
            (Scenario.steps_to_string steps')
      | Error e -> Alcotest.failf "seed %d: %s does not parse: %s" seed s e)
    [ 42; 43; 44; 45; 46 ]

(* --------------------------- shrinker ------------------------------ *)

let test_shrink_minimizes () =
  let xs = List.init 20 (fun i -> i + 1) in
  let shrunk = Shrink.minimize ~check:(fun ys -> List.mem 7 ys) xs in
  Alcotest.(check (list int)) "1-minimal witness" [ 7 ] shrunk

let test_shrink_pair () =
  let xs = List.init 30 (fun i -> i) in
  let shrunk =
    Shrink.minimize ~check:(fun ys -> List.mem 3 ys && List.mem 23 ys) xs
  in
  Alcotest.(check (list int)) "keeps both causes" [ 3; 23 ] shrunk

(* --------------------------- mutation ------------------------------ *)

(* Inject the dropped-completed_ok bug; the ledger audit must fire and
   the shrinker must minimize the repro to at most 10 steps (the
   acceptance bar for the harness's own sensitivity). *)
let test_mutation_caught_and_shrunk () =
  let saved = !Perso_server.Server_core.mutate_drop_completed_ok in
  Perso_server.Server_core.mutate_drop_completed_ok := true;
  Fun.protect
    ~finally:(fun () ->
      Perso_server.Server_core.mutate_drop_completed_ok := saved)
    (fun () ->
      let rec hunt seed =
        if seed > 50 then Alcotest.fail "ledger bug never caught"
        else
          let steps = Scenario.generate ~seed in
          match (Scenario.run ~seed steps).Scenario.verdict with
          | Error f -> (seed, steps, f)
          | Ok () -> hunt (seed + 1)
      in
      let seed, steps, f = hunt 42 in
      Alcotest.(check string) "ledger audit fired" "ledger" f.Scenario.invariant;
      let shrunk = Scenario.shrink ~seed steps f in
      Alcotest.(check bool)
        (Printf.sprintf "shrunk to %d <= 10 steps (%s)" (List.length shrunk)
           (Scenario.steps_to_string shrunk))
        true
        (List.length shrunk <= 10);
      (* The shrunk trace still reproduces the same invariant. *)
      match (Scenario.run ~seed shrunk).Scenario.verdict with
      | Error f' ->
          Alcotest.(check string) "same invariant on replay" f.Scenario.invariant
            f'.Scenario.invariant
      | Ok () -> Alcotest.fail "shrunk repro no longer fails")

(* ---------------------------- oracle ------------------------------- *)

let test_oracle_10x () =
  (* 1200 movies / 120 selections — 10× test_select's random_setting. *)
  let report = Oracle.run ~movies:1200 ~selections:120 ~cases:2 ~seed:42 () in
  (* 9 theorem/metamorphic checks per case, plus the plan-cache
     relation: 6 edit steps × 4 byte-identity/hit checks + 1 summary. *)
  Alcotest.(check int) "68 checks" 68 (List.length report.Oracle.checks);
  match Oracle.failures report with
  | [] -> ()
  | fs ->
      Alcotest.failf "%d oracle failures: %s" (List.length fs)
        (String.concat "; "
           (List.map (fun c -> c.Oracle.name ^ ": " ^ c.Oracle.detail) fs))

(* ---------------------------- driver ------------------------------- *)

let test_driver_replay_line_parses () =
  (* The replay command the driver prints must reconstruct the exact
     step list it ran. *)
  let steps = Scenario.generate ~seed:46 in
  let encoded = Scenario.steps_to_string steps in
  match Scenario.steps_of_string encoded with
  | Ok steps' ->
      let r1 = Scenario.run ~seed:46 steps in
      let r2 = Scenario.run ~seed:46 steps' in
      Alcotest.(check string) "replayed digest identical" r1.Scenario.digest
        r2.Scenario.digest
  | Error e -> Alcotest.failf "replay line does not parse: %s" e

let () =
  Alcotest.run "sim"
    [
      ( "sched",
        [
          Alcotest.test_case "deterministic digests" `Quick test_sched_deterministic;
          Alcotest.test_case "deadlock detected" `Quick test_sched_deadlock_detected;
          Alcotest.test_case "virtual time is free" `Quick test_sched_virtual_time;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "seeds 42-49 pass" `Quick test_scenario_seeds_pass;
          Alcotest.test_case "bit-reproducible" `Quick test_scenario_bit_reproducible;
          Alcotest.test_case "step round-trip" `Quick test_steps_roundtrip;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "single cause" `Quick test_shrink_minimizes;
          Alcotest.test_case "pair of causes" `Quick test_shrink_pair;
        ] );
      ( "mutation",
        [
          Alcotest.test_case "ledger bug caught+shrunk" `Quick
            test_mutation_caught_and_shrunk;
        ] );
      ( "oracle",
        [ Alcotest.test_case "metamorphic suite at 10x" `Quick test_oracle_10x ] );
      ( "driver",
        [
          Alcotest.test_case "replay line round-trips" `Quick
            test_driver_replay_line_parses;
        ] );
    ]
