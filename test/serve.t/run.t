The concurrent personalization server, end to end over its Unix-domain
socket: start, probe liveness, run plain and personalized queries, save
a profile, read the health counters, then drain gracefully.

  $ perso_cli serve --movies 0 --socket ./perso.sock --workers 2 --queue 8 2>serve.log &

The client retries the connection while the server starts:

  $ perso_cli call --socket ./perso.sock --wait-ms 5000 PING
  pong

Plain SQL through the admission queue:

  $ perso_cli call --socket ./perso.sock "RUN select count(*) as n from movie m"
  n
  12
  (1 rows)

Store Julie's profile and personalize the paper's motivating query —
comedies rank with doi 0.9 x 0.9 = 0.81:

  $ perso_cli call --socket ./perso.sock "PROFILE SAVE julie [ GENRE.genre = 'comedy', 0.9 ] [ MOVIE.mid = GENRE.mid, 0.9 ]"
  saved user=julie entries=2

  $ perso_cli call --socket ./perso.sock "PERSONALIZE julie select mv.title from movie mv, play pl where mv.mid = pl.mid and pl.date = '2003-07-02'"
  title | doi
  'Sweet Chaos' | 0.81
  'Laughing Waters' | 0.81
  'Double Take' | 0.81
  'Second Spring' | 0.81
  (4 rows)

  $ perso_cli call --socket ./perso.sock "PROFILE LOAD julie"
  condition | degree
  'GENRE.genre = ''comedy''' | 0.9
  'MOVIE.mid = GENRE.mid' | 0.9
  (2 rows)

Errors come back as one typed line, mapped to the family's exit code:

  $ perso_cli call --socket ./perso.sock "RUN select nope"
  parse error: expected keyword FROM (at EOF) (family parse)
  [1]

The control plane answers without queueing; every request above is
accounted for (5 data-plane requests: 4 ok, 1 parse error):

  $ perso_cli call --socket ./perso.sock HEALTH
  state running
  shards 1
  store_backend memory
  store_replicas 1
  store_appends 0
  store_compactions 0
  store_torn_truncated 0
  store_failover 0
  store_salvaged 0
  store_quarantined 0
  store_catchups 0
  store_ship_errors 0
  queue_depth 0
  in_flight 0
  workers 2
  queue_capacity 8
  accepted 5
  completed_ok 4
  completed_err 1
  shed_queue_full 0
  shed_expired 0
  shed_draining 0
  shed_breaker 0
  breaker_state closed
  breaker_trips 0
  unpersonalized_breaker 0
  pers_ok 1
  pers_err 0
  cache_hit 0
  cache_miss 1
  cache_incremental 0
  cache_bypass 0
  cache_invalidate 0
  profile_lru_hit 0
  profile_lru_miss 1

Graceful drain: SHUTDOWN stops admission, in-flight work finishes, and
the server exits 0 having shed nothing:

  $ perso_cli call --socket ./perso.sock SHUTDOWN
  draining

  $ wait

  $ cat serve.log
  serving on ./perso.sock (workers=2 queue=8)
  drained=true shed_at_stop=0

Durable profiles: --store disk:DIR puts the profile store on a
crash-consistent log-structured store (one per shard).  Save a profile,
drain, restart on the same directory — the profile and its revision
survive the restart because recovery replays the write-ahead logs:

  $ perso_cli serve --movies 0 --socket ./perso.sock --workers 2 --shards 2 --store disk:./pstore 2>serve2.log &

  $ perso_cli call --socket ./perso.sock --wait-ms 5000 "PROFILE SAVE julie [ GENRE.genre = 'drama', 0.8 ] [ MOVIE.mid = GENRE.mid, 0.9 ]"
  saved user=julie entries=2

  $ perso_cli call --socket ./perso.sock HEALTH | grep store
  store_backend disk
  store_replicas 1
  store_appends 1
  store_compactions 0
  store_torn_truncated 0
  store_failover 0
  store_salvaged 0
  store_quarantined 0
  store_catchups 0
  store_ship_errors 0

  $ perso_cli call --socket ./perso.sock SHUTDOWN
  draining

  $ wait

  $ perso_cli serve --movies 0 --socket ./perso.sock --workers 2 --shards 2 --store disk:./pstore 2>serve3.log &

  $ perso_cli call --socket ./perso.sock --wait-ms 5000 "PROFILE LOAD julie"
  condition | degree
  'MOVIE.mid = GENRE.mid' | 0.9
  'GENRE.genre = ''drama''' | 0.8
  (2 rows)

  $ perso_cli call --socket ./perso.sock SHUTDOWN
  draining

  $ wait

Reopening with a different shard count is refused with a typed storage
error — record placement depends on the shard count:

  $ perso_cli serve --movies 0 --socket ./perso.sock --shards 3 --store disk:./pstore
  storage error: malformed store file ./pstore/SHARDS: store was created with 2 shards; restart with --shards 2 (resharding migration is not implemented)
  [2]

Out-of-range flags are usage errors (their own family and exit code),
caught before the server starts:

  $ perso_cli serve --movies 0 --socket ./perso.sock --shards 0
  usage error: --shards must be positive (got 0)
  [6]

  $ perso_cli serve --movies 0 --socket ./perso.sock --store disk
  usage error: --store must be 'memory' or 'disk:DIR' (got "disk")
  [6]

Replication: --replicas N keeps N byte-identical copies of every shard
store (WAL shipping).  Saves ship to all members and the replica
counters surface in HEALTH:

  $ perso_cli serve --movies 0 --socket ./perso.sock --workers 2 --queue 8 --store disk:./pstore2 --replicas 3 2>serve4.log &

  $ perso_cli call --socket ./perso.sock --wait-ms 5000 "PROFILE SAVE julie [ GENRE.genre = 'comedy', 0.9 ]"
  saved user=julie entries=1

  $ perso_cli call --socket ./perso.sock HEALTH | grep -E "store_backend|store_replicas|store_failover"
  store_backend replicated
  store_replicas 3
  store_failover 0

  $ perso_cli call --socket ./perso.sock SHUTDOWN
  draining

  $ wait

  $ cat serve4.log
  serving on ./perso.sock (workers=2 queue=8)
  drained=true shed_at_stop=0

The offline scrubber re-verifies every member's records:

  $ perso_cli scrub ./pstore2
  shard-00/r0/wal-000001.log: ok (1 records)
  shard-00/r1/wal-000001.log: ok (1 records)
  shard-00/r2/wal-000001.log: ok (1 records)

Corrupt one byte of the primary member's write-ahead log; the scrubber
catches the checksum mismatch and exits 2:

  $ printf '\377' | dd of=./pstore2/shard-00/r0/wal-000001.log bs=1 seek=12 conv=notrunc status=none

  $ perso_cli scrub ./pstore2
  shard-00/r0/wal-000001.log: bad checksum in wal-000001.log: at 0: frame checksum mismatch (0 records)
  shard-00/r1/wal-000001.log: ok (1 records)
  shard-00/r2/wal-000001.log: ok (1 records)
  scrub: 1 damaged file(s)
  [2]

Restarting fails over to the freshest healthy follower, quarantines the
damaged file, rebuilds the member by cloning, and serves the profile
from the promoted copy — same answers, exit codes unchanged:

  $ perso_cli serve --movies 0 --socket ./perso.sock --workers 2 --queue 8 --store disk:./pstore2 --replicas 3 2>serve5.log &

  $ perso_cli call --socket ./perso.sock --wait-ms 5000 "PROFILE LOAD julie"
  condition | degree
  'GENRE.genre = ''comedy''' | 0.9
  (1 rows)

  $ perso_cli call --socket ./perso.sock HEALTH | grep -E "store_failover|store_salvaged|store_quarantined|store_catchups"
  store_failover 1
  store_salvaged 0
  store_quarantined 1
  store_catchups 1

  $ perso_cli call --socket ./perso.sock SHUTDOWN
  draining

  $ wait

  $ cat serve5.log
  recovery: failover=1 quarantined=1 salvaged=0 catchups=1
  serving on ./perso.sock (workers=2 queue=8)
  drained=true shed_at_stop=0

The repaired store scans clean again, and the damaged bytes are
preserved under quarantine/ for post-mortem, never deleted:

  $ perso_cli scrub ./pstore2
  shard-00/r0/wal-000001.log: ok (1 records)
  shard-00/r1/wal-000001.log: ok (1 records)
  shard-00/r2/wal-000001.log: ok (1 records)

  $ ls ./pstore2/shard-00/r0/quarantine
  wal-000001.log

Reopening with a different replica count is refused with a typed
storage error, like --shards:

  $ perso_cli serve --movies 0 --socket ./perso.sock --store disk:./pstore2 --replicas 2
  storage error: malformed store file ./pstore2/shard-00/REPLSTATE: store was created with 3 replicas; restart with --replicas 3
  [2]

The event-loop runtime (--io evloop): same wire protocol, same drain
discipline, on a single-domain readiness loop instead of a thread per
connection.  The serving line names the runtime; SIGTERM drains it:

  $ perso_cli serve --movies 0 --socket ./perso.sock --workers 2 --queue 8 --io evloop 2>serve6.log &

  $ EVPID=$!

  $ perso_cli call --socket ./perso.sock --wait-ms 5000 PING
  pong

  $ perso_cli call --socket ./perso.sock "RUN select count(*) as n from movie m"
  n
  12
  (1 rows)

  $ kill -TERM $EVPID

  $ wait

  $ cat serve6.log
  serving on ./perso.sock (workers=2 queue=8) io=evloop
  drained=true shed_at_stop=0

An unknown runtime is a usage error, caught before anything binds:

  $ perso_cli serve --movies 0 --socket ./perso.sock --io bogus
  usage error: --io must be 'threads' or 'evloop' (got "bogus")
  [6]
