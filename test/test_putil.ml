(* Unit + property tests for the utility library: RNG determinism, Zipf
   distribution shape, priority-queue ordering and stability,
   combinatorics. *)

open Putil

(* ------------------------------ Rng ------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create 123 and b = Rng.create 123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  Alcotest.(check bool) "different seeds diverge" true (!same < 4)

let test_rng_int_bounds () =
  let r = Rng.create 99 in
  for _ = 1 to 1000 do
    let v = Rng.int r 7 in
    Alcotest.(check bool) "0 <= v < 7" true (v >= 0 && v < 7)
  done

let test_rng_int_invalid () =
  let r = Rng.create 1 in
  Alcotest.check_raises "n=0 rejected" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_rng_int_in () =
  let r = Rng.create 5 in
  for _ = 1 to 500 do
    let v = Rng.int_in r (-3) 3 in
    Alcotest.(check bool) "in [-3,3]" true (v >= -3 && v <= 3)
  done

let test_rng_float_range () =
  let r = Rng.create 11 in
  for _ = 1 to 1000 do
    let f = Rng.float r 2.5 in
    Alcotest.(check bool) "in [0,2.5)" true (f >= 0. && f < 2.5)
  done

let test_rng_copy_independent () =
  let a = Rng.create 4 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.bits64 a) (Rng.bits64 b)

let test_rng_split () =
  let a = Rng.create 4 in
  let b = Rng.split a in
  let xs = List.init 16 (fun _ -> Rng.bits64 a) in
  let ys = List.init 16 (fun _ -> Rng.bits64 b) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let test_rng_shuffle_permutation () =
  let r = Rng.create 8 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let test_rng_sample_without_replacement () =
  let r = Rng.create 3 in
  (* Both the dense and the sparse branch. *)
  List.iter
    (fun (k, n) ->
      let s = Rng.sample_without_replacement r k n in
      Alcotest.(check int) "count" k (List.length s);
      Alcotest.(check int) "distinct" k (List.length (List.sort_uniq compare s));
      List.iter
        (fun v -> Alcotest.(check bool) "in range" true (v >= 0 && v < n))
        s)
    [ (10, 12); (5, 1000); (0, 4); (4, 4) ]

(* ------------------------------ Zipf ------------------------------ *)

let test_zipf_uniform_when_s0 () =
  let z = Zipf.create ~n:4 ~s:0. in
  List.iter
    (fun i -> Alcotest.(check (float 1e-9)) "uniform pmf" 0.25 (Zipf.pmf z i))
    [ 0; 1; 2; 3 ]

let test_zipf_skew () =
  let z = Zipf.create ~n:100 ~s:1.0 in
  Alcotest.(check bool) "rank 0 most popular" true (Zipf.pmf z 0 > Zipf.pmf z 1);
  Alcotest.(check bool) "monotone" true (Zipf.pmf z 10 > Zipf.pmf z 90)

let test_zipf_pmf_sums_to_one () =
  let z = Zipf.create ~n:50 ~s:1.3 in
  let total = ref 0. in
  for i = 0 to 49 do
    total := !total +. Zipf.pmf z i
  done;
  Alcotest.(check (float 1e-9)) "sums to 1" 1.0 !total

let test_zipf_sample_distribution () =
  let z = Zipf.create ~n:10 ~s:1.0 in
  let r = Rng.create 17 in
  let counts = Array.make 10 0 in
  let trials = 20_000 in
  for _ = 1 to trials do
    let i = Zipf.sample z r in
    counts.(i) <- counts.(i) + 1
  done;
  (* Empirical frequency of rank 0 should be close to its pmf. *)
  let freq0 = float_of_int counts.(0) /. float_of_int trials in
  Alcotest.(check bool) "rank-0 frequency near pmf" true
    (abs_float (freq0 -. Zipf.pmf z 0) < 0.02);
  Alcotest.(check bool) "rank order respected" true (counts.(0) > counts.(9))

let test_zipf_invalid () =
  Alcotest.check_raises "n=0" (Invalid_argument "Zipf.create: n must be positive")
    (fun () -> ignore (Zipf.create ~n:0 ~s:1.));
  Alcotest.check_raises "s<0" (Invalid_argument "Zipf.create: s must be non-negative")
    (fun () -> ignore (Zipf.create ~n:3 ~s:(-1.)))

(* ----------------------------- Pqueue ----------------------------- *)

let test_pqueue_order () =
  let q = Pqueue.create () in
  List.iter (fun (p, v) -> Pqueue.push q p v) [ (0.3, "c"); (0.9, "a"); (0.5, "b") ];
  let popped = List.init 3 (fun _ -> snd (Option.get (Pqueue.pop q))) in
  Alcotest.(check (list string)) "descending priority" [ "a"; "b"; "c" ] popped

let test_pqueue_fifo_ties () =
  let q = Pqueue.create () in
  List.iteri (fun i v -> Pqueue.push q 0.5 (i, v)) [ "x"; "y"; "z" ];
  Pqueue.push q 0.7 (99, "first");
  let popped = List.init 4 (fun _ -> snd (snd (Option.get (Pqueue.pop q)))) in
  Alcotest.(check (list string)) "ties pop FIFO" [ "first"; "x"; "y"; "z" ] popped

let test_pqueue_interleaved () =
  let q = Pqueue.create () in
  Pqueue.push q 1.0 "a";
  Pqueue.push q 0.2 "e";
  Alcotest.(check (option (pair (float 0.) string))) "peek max" (Some (1.0, "a"))
    (Pqueue.peek q);
  ignore (Pqueue.pop q);
  Pqueue.push q 0.6 "b";
  Pqueue.push q 0.6 "c";
  ignore (Pqueue.pop q);
  (* popped b *)
  Pqueue.push q 0.6 "d";
  let rest = List.init 3 (fun _ -> snd (Option.get (Pqueue.pop q))) in
  Alcotest.(check (list string)) "stable among equals" [ "c"; "d"; "e" ] rest;
  Alcotest.(check bool) "now empty" true (Pqueue.is_empty q)

let test_pqueue_to_sorted_list () =
  let q = Pqueue.create () in
  List.iter (fun p -> Pqueue.push q p p) [ 0.1; 0.9; 0.4; 0.9 ];
  let l = Pqueue.to_sorted_list q in
  Alcotest.(check (list (float 0.))) "sorted non-destructively"
    [ 0.9; 0.9; 0.4; 0.1 ] (List.map fst l);
  Alcotest.(check int) "queue intact" 4 (Pqueue.length q)

let prop_pqueue_matches_sort =
  QCheck.Test.make ~name:"pqueue pops = stable sort desc" ~count:200
    QCheck.(list (pair (float_range 0. 1.) small_int))
    (fun items ->
      let q = Pqueue.create () in
      List.iteri (fun i (p, v) -> Pqueue.push q p (i, v)) items;
      let popped = ref [] in
      let rec drain () =
        match Pqueue.pop q with
        | None -> ()
        | Some (_, x) ->
            popped := x :: !popped;
            drain ()
      in
      drain ();
      let expected =
        List.mapi (fun i (p, v) -> (p, (i, v))) items
        |> List.stable_sort (fun (p1, (i1, _)) (p2, (i2, _)) ->
               match compare p2 p1 with 0 -> compare i1 i2 | c -> c)
        |> List.map snd
      in
      List.rev !popped = expected)

(* Interleaved push/pop/peek sequences against a sorted-list model.
   Priorities are drawn from six values, so duplicates are the common
   case and tie-stability is exercised on every run. *)
let prop_pqueue_ops_model =
  QCheck.Test.make ~name:"pqueue op sequences = sorted-list model" ~count:300
    QCheck.(list (pair (int_range 0 3) (int_range 0 5)))
    (fun ops ->
      let q = Pqueue.create () in
      (* Model: (priority, insertion seq, value), kept sorted by
         priority desc then seq asc — the queue's documented order. *)
      let model = ref [] in
      let seq = ref 0 in
      let insert (p, s, v) =
        let rec go = function
          | [] -> [ (p, s, v) ]
          | ((p', s', _) :: rest as l) ->
              if p > p' || (p = p' && s < s') then (p, s, v) :: l
              else List.hd l :: go rest
        in
        model := go !model
      in
      let ok = ref true in
      List.iter
        (fun (op, pi) ->
          let p = float_of_int pi /. 4. in
          match op with
          | 0 | 1 ->
              let v = !seq in
              incr seq;
              Pqueue.push q p v;
              insert (p, v, v)
          | 2 -> (
              match (Pqueue.pop q, !model) with
              | Some (pp, vv), (p', _, v') :: rest ->
                  model := rest;
                  if pp <> p' || vv <> v' then ok := false
              | None, [] -> ()
              | _ -> ok := false)
          | _ -> (
              match (Pqueue.peek q, !model) with
              | Some (pp, vv), (p', _, v') :: _ ->
                  if pp <> p' || vv <> v' then ok := false
              | None, [] -> ()
              | _ -> ok := false))
        ops;
      !ok && Pqueue.length q = List.length !model)

(* Statistical sanity + exact reproducibility for the Zipf sampler. *)
let test_zipf_same_seed_sequence () =
  let z = Zipf.create ~n:50 ~s:1.1 in
  let draw seed =
    let r = Rng.create seed in
    List.init 200 (fun _ -> Zipf.sample z r)
  in
  Alcotest.(check (list int)) "same seed, identical samples" (draw 21) (draw 21);
  Alcotest.(check bool) "different seed diverges" true (draw 21 <> draw 22)

let test_zipf_bucket_ranks_monotone () =
  let z = Zipf.create ~n:12 ~s:1.0 in
  let r = Rng.create 31 in
  let counts = Array.make 12 0 in
  for _ = 1 to 30_000 do
    let i = Zipf.sample z r in
    counts.(i) <- counts.(i) + 1
  done;
  (* Per-rank counts are noisy; sums over rank buckets must decrease. *)
  let bucket lo hi =
    let s = ref 0 in
    for i = lo to hi do s := !s + counts.(i) done;
    !s
  in
  let b0 = bucket 0 3 and b1 = bucket 4 7 and b2 = bucket 8 11 in
  Alcotest.(check bool)
    (Printf.sprintf "bucket frequencies monotone (%d > %d > %d)" b0 b1 b2)
    true
    (b0 > b1 && b1 > b2)

(* ----------------------------- Combin ----------------------------- *)

let test_choose_values () =
  List.iter
    (fun (n, k, expected) ->
      Alcotest.(check int) (Printf.sprintf "C(%d,%d)" n k) expected (Combin.choose n k))
    [
      (0, 0, 1); (5, 0, 1); (5, 5, 1); (5, 1, 5); (5, 2, 10); (10, 3, 120);
      (60, 1, 60); (10, 5, 252); (5, 6, 0); (5, -1, 0); (52, 5, 2598960);
    ]

let test_subsets_exhaustive () =
  let ss = Combin.subsets [ 1; 2; 3; 4 ] 2 in
  Alcotest.(check int) "C(4,2) subsets" 6 (List.length ss);
  Alcotest.(check (list (list int))) "lexicographic order"
    [ [ 1; 2 ]; [ 1; 3 ]; [ 1; 4 ]; [ 2; 3 ]; [ 2; 4 ]; [ 3; 4 ] ]
    ss

let test_subsets_edges () =
  Alcotest.(check (list (list int))) "k=0" [ [] ] (Combin.subsets [ 1; 2 ] 0);
  Alcotest.(check (list (list int))) "k>n" [] (Combin.subsets [ 1; 2 ] 3);
  Alcotest.(check (list (list int))) "empty base k=0" [ [] ] (Combin.subsets [] 0)

let prop_subsets_count =
  QCheck.Test.make ~name:"|subsets xs k| = C(|xs|,k)" ~count:100
    QCheck.(pair (list_of_size Gen.(0 -- 8) small_int) (int_range 0 8))
    (fun (xs, k) ->
      List.length (Combin.subsets xs k) = Combin.choose (List.length xs) k)

let test_pairs () =
  Alcotest.(check (list (pair int int))) "pairs"
    [ (1, 2); (1, 3); (2, 3) ]
    (Combin.pairs [ 1; 2; 3 ]);
  Alcotest.(check (list (pair int int))) "empty" [] (Combin.pairs [])

(* ------------------------------- dpool ------------------------------- *)

let with_pool domains f =
  let p = Dpool.create ~domains in
  Fun.protect ~finally:(fun () -> Dpool.shutdown p) (fun () -> f p)

let test_dpool_map_order () =
  List.iter
    (fun domains ->
      with_pool domains (fun p ->
          Alcotest.(check int) "size" (max 1 domains) (Dpool.size p);
          (* Uneven per-chunk work so fast lanes steal extra chunks; the
             merge must still come back in chunk order. *)
          let got =
            Dpool.map p 37 (fun i ->
                let spin = (i * 31) mod 97 in
                let acc = ref 0 in
                for j = 1 to spin * 1000 do
                  acc := (!acc + j) mod 1009
                done;
                ignore !acc;
                i * i)
          in
          Alcotest.(check (array int))
            (Printf.sprintf "domains=%d" domains)
            (Array.init 37 (fun i -> i * i))
            got))
    [ 1; 2; 4; 8 ]

exception Boom of int

let test_dpool_lowest_fault_wins () =
  with_pool 4 (fun p ->
      (* Several chunks raise; the re-raised exception must be the one
         a sequential left-to-right run would have hit first. *)
      match Dpool.map p 32 (fun i -> if i mod 5 = 2 then raise (Boom i) else i) with
      | (_ : int array) -> Alcotest.fail "expected a raise"
      | exception Boom i -> Alcotest.(check int) "smallest chunk's fault" 2 i)

let test_dpool_busy_fallback () =
  with_pool 4 (fun p ->
      (* Occupy the pool from one thread; a concurrent try_map must
         return None instead of blocking. *)
      let inside = Semaphore.Binary.make false in
      let release = Semaphore.Binary.make false in
      let t =
        Thread.create
          (fun () ->
            ignore
              (Dpool.map p 8 (fun i ->
                   if i = 0 then begin
                     Semaphore.Binary.release inside;
                     Semaphore.Binary.acquire release
                   end;
                   i)
                : int array))
          ()
      in
      Semaphore.Binary.acquire inside;
      Alcotest.(check bool) "busy pool refuses" true
        (Dpool.try_map p 8 (fun i -> i) = None);
      Semaphore.Binary.release release;
      Thread.join t;
      Alcotest.(check bool) "free pool accepts" true
        (Dpool.try_map p 8 (fun i -> i) <> None))

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_pqueue_matches_sort; prop_pqueue_ops_model; prop_subsets_count ]

let () =
  Alcotest.run "putil"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int invalid" `Quick test_rng_int_invalid;
          Alcotest.test_case "int_in range" `Quick test_rng_int_in;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "copy" `Quick test_rng_copy_independent;
          Alcotest.test_case "split" `Quick test_rng_split;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "sample w/o replacement" `Quick
            test_rng_sample_without_replacement;
        ] );
      ( "zipf",
        [
          Alcotest.test_case "uniform at s=0" `Quick test_zipf_uniform_when_s0;
          Alcotest.test_case "skew" `Quick test_zipf_skew;
          Alcotest.test_case "pmf sums to 1" `Quick test_zipf_pmf_sums_to_one;
          Alcotest.test_case "sample distribution" `Quick test_zipf_sample_distribution;
          Alcotest.test_case "same-seed sequence exact" `Quick
            test_zipf_same_seed_sequence;
          Alcotest.test_case "bucket ranks monotone" `Quick
            test_zipf_bucket_ranks_monotone;
          Alcotest.test_case "invalid args" `Quick test_zipf_invalid;
        ] );
      ( "pqueue",
        [
          Alcotest.test_case "order" `Quick test_pqueue_order;
          Alcotest.test_case "fifo ties" `Quick test_pqueue_fifo_ties;
          Alcotest.test_case "interleaved" `Quick test_pqueue_interleaved;
          Alcotest.test_case "to_sorted_list" `Quick test_pqueue_to_sorted_list;
        ] );
      ( "combin",
        [
          Alcotest.test_case "choose" `Quick test_choose_values;
          Alcotest.test_case "subsets exhaustive" `Quick test_subsets_exhaustive;
          Alcotest.test_case "subsets edges" `Quick test_subsets_edges;
          Alcotest.test_case "pairs" `Quick test_pairs;
        ] );
      ( "dpool",
        [
          Alcotest.test_case "chunk-ordered merge" `Quick test_dpool_map_order;
          Alcotest.test_case "lowest-chunk fault wins" `Quick
            test_dpool_lowest_fault_wins;
          Alcotest.test_case "busy try_map falls back" `Quick
            test_dpool_busy_fallback;
        ] );
      ("properties", qsuite);
    ]
