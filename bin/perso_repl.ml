(* perso_repl — an interactive personalized-SQL shell.

   Every SQL statement typed at the prompt is personalized under the
   session's profile before execution, so the shell behaves like the
   paper's Personalized Database System front end.  Dot-commands control
   the session:

     .help                 this text
     .load DIR             load a database from schema.ddl + CSVs
     .tiny                 switch to the built-in example database
     .gen N                switch to a synthetic database with N movies
     .profile FILE         load the session profile (text format)
     .like  [ COND, D ]    add one preference to the session profile
     .unlike [ COND, D ]   add one dislike (negative preference)
     .k N | .l N | .m N    personalization parameters
     .method sq|mq         integration method
     .cache [on|off]       plan-cache stats, or toggle it
     .plain SQL            run SQL without personalization
     .show                 session state (db summary, profile, params)
     .explain SQL          show the personalized SQL without running it
     .quit                 leave

   Run with: dune exec bin/perso_repl.exe *)

type session = {
  mutable db : Relal.Database.t;
  mutable db_desc : string;
  mutable profile : Perso.Profile.t;
  mutable dislikes : Perso.Profile.t;
  mutable k : int;
  mutable l : int;
  mutable m : int;
  mutable method_ : [ `SQ | `MQ ];
  (* Plan cache over the current db.  The shell has no Profile_store —
     the profile lives in [profile] — so instead of store revisions it
     keys entries on [rev], bumped on every profile edit. *)
  mutable cache : Perso.Perso_cache.t option;
  mutable cache_on : bool;
  mutable rev : int;
}

let fresh () =
  {
    db = Moviedb.Personas.tiny_db ();
    db_desc = "tiny example database";
    profile = Perso.Profile.empty;
    dislikes = Perso.Profile.empty;
    k = 5;
    l = 1;
    m = 0;
    method_ = `MQ;
    cache = None;
    cache_on = true;
    rev = 0;
  }

let cache_of s =
  match s.cache with
  | Some c -> c
  | None ->
      let c = Perso.Perso_cache.create s.db in
      s.cache <- Some c;
      c

(* A db switch orphans the cache (entries personalize against the old
   schema); a profile edit just moves the revision so stale entries
   become patch donors. *)
let switched_db s = s.cache <- None
let edited_profile s = s.rev <- s.rev + 1

let params s =
  {
    Perso.Personalize.k = Perso.Criteria.Top_r s.k;
    m = `Count s.m;
    l = `At_least s.l;
    method_ = s.method_;
    rank = s.method_ = `MQ;
  }

let print_result res = Format.printf "%a" (Relal.Exec.pp_result ~max_rows:20) res

let report_error what e = Printf.printf "%s: %s\n" what e

let parse_pref_line text =
  (* Accept both "[ COND, D ]" and bare "COND, D". *)
  let text = String.trim text in
  let text =
    if String.length text >= 2 && text.[0] = '[' then text
    else "[ " ^ text ^ " ]"
  in
  match Perso.Profile.of_string text with
  | Ok p -> (
      match Perso.Profile.entries p with
      | [ (atom, deg) ] -> Ok (atom, deg)
      | _ -> Error "expected exactly one [ condition, degree ] entry")
  | Error e -> Error e

let run_personalized s sql =
    if Perso.Profile.cardinal s.profile = 0 && Perso.Profile.cardinal s.dislikes = 0
    then begin
      Printf.printf "(no profile loaded; running plain)\n";
      print_result (Relal.Engine.run_sql s.db sql)
    end
    else if Perso.Profile.cardinal s.dislikes > 0 then begin
      (* Dislikes present: rank via the negative-preference pipeline. *)
      let q = Relal.Sql_parser.parse sql in
      let o =
        Perso.Negative.personalize
          ~k:(Perso.Criteria.Top_r s.k)
          ~l:s.l s.db ~likes:s.profile ~dislikes:s.dislikes q
      in
      Printf.printf "likes used: %d, dislikes used: %d\n"
        (List.length o.Perso.Negative.liked)
        (List.length o.Perso.Negative.disliked);
      List.iteri
        (fun i r ->
          if i < 20 then
            Printf.printf "  %-40s score=%.4f%s\n"
              (String.concat ", "
                 (Array.to_list (Array.map Relal.Value.to_string r.Perso.Negative.row)))
              r.Perso.Negative.score
              (if r.Perso.Negative.penalty > 0. then
                 Printf.sprintf "  (penalty %.2f)" r.Perso.Negative.penalty
               else ""))
        o.Perso.Negative.rows;
      Printf.printf "(%d rows)\n" (List.length o.Perso.Negative.rows)
    end
    else if s.cache_on then begin
      let q = Relal.Sql_parser.parse sql in
      let outcome, src =
        Perso.Perso_cache.personalize (cache_of s) ~params:(params s)
          ~user:"session" ~revision:s.rev s.profile q
      in
      Printf.printf "preferences used: %d (cache %s)\n"
        (List.length outcome.Perso.Personalize.selected)
        (match src with
        | Perso.Perso_cache.Hit -> "hit"
        | Perso.Perso_cache.Incremental -> "incremental"
        | Perso.Perso_cache.Miss -> "miss"
        | Perso.Perso_cache.Bypass -> "bypass");
      print_result (Perso.Personalize.execute s.db outcome)
    end
    else begin
      let outcome, res =
        Perso.Personalize.personalize_sql ~params:(params s) s.db s.profile sql
      in
      Printf.printf "preferences used: %d\n"
        (List.length outcome.Perso.Personalize.selected);
      print_result res
    end

let show s =
  Printf.printf "database: %s\n" s.db_desc;
  Format.printf "%a" Relal.Database.pp_summary s.db;
  Printf.printf "profile: %d preferences (%d selections)\n"
    (Perso.Profile.cardinal s.profile)
    (Perso.Profile.size s.profile);
  if Perso.Profile.cardinal s.profile > 0 then
    print_string (Perso.Profile.to_string s.profile);
  if Perso.Profile.cardinal s.dislikes > 0 then begin
    Printf.printf "dislikes:\n";
    print_string (Perso.Profile.to_string s.dislikes)
  end;
  Printf.printf "params: K=%d L=%d M=%d method=%s\n" s.k s.l s.m
    (match s.method_ with `SQ -> "sq" | `MQ -> "mq")

let explain s sql =
  let q = Relal.Sql_parser.parse sql in
  let outcome = Perso.Personalize.personalize ~params:(params s) s.db s.profile q in
  print_string (Perso.Explain.outcome_report outcome)

let help () =
  print_string
    "commands: .help .load DIR .tiny .gen N .profile FILE .like [COND, D]\n\
    \          .unlike [COND, D] .k N .l N .m N .method sq|mq .cache [on|off]\n\
    \          .plain SQL .show .explain SQL .quit — anything else runs as \
     personalized SQL\n"

let cache_command s arg =
  match String.trim arg with
  | "on" ->
      s.cache_on <- true;
      Printf.printf "cache on\n"
  | "off" ->
      s.cache_on <- false;
      Printf.printf "cache off\n"
  | "" ->
      if not s.cache_on then Printf.printf "cache off\n"
      else
        let st =
          match s.cache with
          | Some c -> Perso.Perso_cache.stats c
          | None -> Perso.Perso_cache.stats (cache_of s)
        in
        Printf.printf
          "cache on: %d hits, %d incremental, %d misses, %d evictions, %d \
           invalidations, %d entries\n"
          st.Perso.Perso_cache.hits st.Perso.Perso_cache.incremental
          st.Perso.Perso_cache.misses st.Perso.Perso_cache.evictions
          st.Perso.Perso_cache.invalidations st.Perso.Perso_cache.entries
  | other -> report_error "unknown cache argument" other

let int_arg arg ~default =
  match int_of_string_opt (String.trim arg) with Some n when n >= 0 -> n | _ -> default

let handle_command s line =
  let cmd, arg =
    match String.index_opt line ' ' with
    | Some i ->
        ( String.sub line 0 i,
          String.trim (String.sub line i (String.length line - i)) )
    | None -> (line, "")
  in
  match cmd with
  | ".help" -> help ()
  | ".quit" | ".exit" -> raise Exit
  | ".tiny" ->
      s.db <- Moviedb.Personas.tiny_db ();
      s.db_desc <- "tiny example database";
      switched_db s;
      Printf.printf "switched to %s\n" s.db_desc
  | ".gen" ->
      let n = int_arg arg ~default:2000 in
      s.db <- Moviedb.Datagen.(generate (scale n));
      s.db_desc <- Printf.sprintf "synthetic database (%d movies)" n;
      switched_db s;
      Printf.printf "switched to %s\n" s.db_desc
  | ".load" -> (
      match Relal.Csv.load_db_r ~dir:arg with
      | Ok db ->
          s.db <- db;
          s.db_desc <- "loaded from " ^ arg;
          switched_db s;
          Printf.printf "loaded %s\n" arg
      | Error e ->
          print_endline
            (Perso.Error.to_string (Perso.Error.of_load_error e)))
  | ".profile" -> (
      match Perso.Profile.load arg with
      | Ok p ->
          s.profile <- p;
          edited_profile s;
          Printf.printf "loaded %d preferences\n" (Perso.Profile.cardinal p)
      | Error e -> report_error "profile error" e)
  | ".like" -> (
      match parse_pref_line arg with
      | Ok (atom, deg) ->
          s.profile <- Perso.Profile.add s.profile atom deg;
          edited_profile s;
          Printf.printf "added %s (%s)\n" (Perso.Atom.to_string atom)
            (Perso.Degree.to_string deg)
      | Error e -> report_error "preference error" e)
  | ".unlike" -> (
      match parse_pref_line arg with
      | Ok (atom, deg) ->
          s.dislikes <- Perso.Profile.add s.dislikes atom deg;
          edited_profile s;
          Printf.printf "added dislike %s (%s)\n" (Perso.Atom.to_string atom)
            (Perso.Degree.to_string deg)
      | Error e -> report_error "preference error" e)
  | ".k" -> s.k <- int_arg arg ~default:s.k
  | ".l" -> s.l <- int_arg arg ~default:s.l
  | ".m" -> s.m <- int_arg arg ~default:s.m
  | ".method" -> (
      match String.trim arg with
      | "sq" -> s.method_ <- `SQ
      | "mq" -> s.method_ <- `MQ
      | other -> report_error "unknown method" other)
  | ".cache" -> cache_command s arg
  | ".plain" -> print_result (Relal.Engine.run_sql s.db arg)
  | ".show" -> show s
  | ".explain" -> explain s arg
  | other -> Printf.printf "unknown command %s (try .help)\n" other

let () =
  let s = fresh () in
  Printf.printf "perdb personalized-SQL shell — .help for commands\n";
  (try
     while true do
       print_string "perdb> ";
       flush stdout;
       match In_channel.input_line stdin with
       | None -> raise Exit
       | Some line -> (
           let line = String.trim line in
           if line = "" then ()
           else
             (* One catch-all per input line: any failure — parse,
                bind, storage, even Stack_overflow or Out_of_memory
                from a pathological query — becomes a one-line typed
                message and the session continues. *)
             try
               if line.[0] = '.' then handle_command s line
               else run_personalized s line
             with
             | Exit -> raise Exit
             | e ->
                 print_endline
                   (Perso.Error.to_string (Perso.Error.of_exn_any e)))
     done
   with Exit -> ());
  print_newline ()
