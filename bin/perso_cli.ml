(* perdb — command-line front end to the query-personalization library.

   Subcommands:
     demo          run the paper's Julie example end-to-end on the tiny DB
     run-sql       execute ad-hoc SQL on a movie database
     personalize   personalize and run a query under a profile file
     gen-profile   write a synthetic profile (text format) to a file
     learn-profile derive a profile from a file of logged queries
     dump-data     write a database as schema.ddl + CSVs
     dot           print a profile's personalization graph as Graphviz
     serve         run the concurrent personalization server on a socket
     scrub         verify / repair a profile store's on-disk file set
     call          send one request to a running server
     sim           deterministic simulation + metamorphic oracle suite

   Databases come from three sources: the built-in tiny example DB
   (--movies 0), the synthetic generator (--movies N), or a directory of
   schema.ddl + CSV files (--data-dir DIR). *)

open Cmdliner

let movies_arg =
  let doc = "Number of movies in the synthetic database (0 = tiny example DB)." in
  Arg.(value & opt int 2000 & info [ "movies" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Random seed for data/profile generation." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let data_dir_arg =
  let doc = "Load the database from this directory (schema.ddl + CSV files)." in
  (* a plain string, not Arg.dir: the loader must see missing paths
     itself so it can recover a dump parked at <dir>.old by an
     interrupted save, and report the rest as typed storage errors *)
  Arg.(value & opt (some string) None & info [ "data-dir" ] ~docv:"DIR" ~doc)

let db_of ?data_dir ~movies ~seed () =
  match data_dir with
  | Some dir -> Relal.Csv.load_db ~dir
  | None ->
      if movies <= 0 then Moviedb.Personas.tiny_db ()
      else Moviedb.Datagen.(generate (scale ~seed movies))

let print_result res = Format.printf "%a" (Relal.Exec.pp_result ~max_rows:25) res

(* Uniform failure discipline: every subcommand body runs under
   [guarded], so any failure — parse, bind, storage, budget, injected
   fault, even Stack_overflow — exits non-zero with a one-line typed
   message on stderr instead of a backtrace. *)
let handle_error e =
  Printf.eprintf "%s\n" (Perso.Error.to_string e);
  Perso.Error.exit_code e

let guarded f =
  match Perso.Error.guard f with Ok code -> code | Error e -> handle_error e

(* ---------------- flag validation ---------------- *)

(* Out-of-range flags are [Usage] errors (family "usage", exit code 6)
   reported before any work starts, not assertion failures deep in the
   server.  [pos_int]/[pos_float] yield a complaint when a flag is
   nonsensical; [validated] reports the first complaint or runs the
   command. *)
let pos_int name v =
  if v > 0 then None
  else Some (Printf.sprintf "--%s must be positive (got %d)" name v)

let pos_float name v =
  if v > 0. then None
  else Some (Printf.sprintf "--%s must be positive (got %g)" name v)

let validated checks k =
  match List.find_map Fun.id checks with
  | Some msg -> handle_error (Perso.Error.Usage msg)
  | None -> k ()

(* ---------------- query budgets ---------------- *)

let deadline_arg =
  let doc = "Abort execution after this many wall-clock milliseconds." in
  Arg.(value & opt (some float) None & info [ "deadline-ms" ] ~docv:"MS" ~doc)

let max_rows_arg =
  let doc = "Abort execution after producing this many intermediate rows." in
  Arg.(value & opt (some int) None & info [ "max-rows" ] ~docv:"N" ~doc)

let max_expansions_arg =
  let doc = "Abort preference selection after this many graph expansions." in
  Arg.(value & opt (some int) None & info [ "max-expansions" ] ~docv:"N" ~doc)

let budget_of deadline_ms max_rows max_expansions =
  { Relal.Governor.deadline_ms; max_rows; max_expansions }

let gov_of budget =
  if Relal.Governor.is_unlimited budget then None
  else Some (Relal.Governor.start budget)

(* ---------------- execution domains ---------------- *)

let with_pool domains f =
  if domains <= 1 then f ()
  else begin
    let pool = Putil.Dpool.create ~domains in
    Relal.Exec.set_pool (Some pool);
    Fun.protect
      ~finally:(fun () ->
        Relal.Exec.set_pool None;
        Putil.Dpool.shutdown pool)
      f
  end

let domains_arg =
  let doc =
    "Evaluate large scans and joins across this many domains (cores); \
     results are byte-identical to sequential execution (1 = sequential)."
  in
  Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N" ~doc)

(* ---------------- demo ---------------- *)

let demo () =
  guarded (fun () ->
      let db = Moviedb.Personas.tiny_db () in
      let julie = Moviedb.Personas.julie () in
      let q = Moviedb.Workload.tonight_query () in
      Format.printf "== Original query ==@.%s@.@."
        (Relal.Sql_print.query_to_pretty (Relal.Binder.bind db q));
      let params =
        { Perso.Personalize.default_params with k = Perso.Criteria.Top_r 3 }
      in
      let outcome = Perso.Personalize.personalize ~params db julie q in
      print_string (Perso.Explain.outcome_report outcome);
      Format.printf "@.== Ranked results (Julie) ==@.";
      print_result (Perso.Personalize.execute db outcome);
      0)

let demo_cmd =
  Cmd.v (Cmd.info "demo" ~doc:"Run the paper's Julie example end-to-end")
    Term.(const demo $ const ())

(* ---------------- run-sql ---------------- *)

let run_sql movies seed data_dir deadline max_rows max_expansions domains sql =
  validated [ pos_int "domains" domains ] @@ fun () ->
  guarded (fun () ->
      with_pool domains (fun () ->
          let db = db_of ?data_dir ~movies ~seed () in
          let gov = gov_of (budget_of deadline max_rows max_expansions) in
          print_result (Relal.Engine.run_sql ?gov db sql);
          0))

let sql_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"SQL" ~doc:"SQL text.")

let run_sql_cmd =
  Cmd.v (Cmd.info "run-sql" ~doc:"Execute SQL on a synthetic movie database")
    Term.(
      const run_sql $ movies_arg $ seed_arg $ data_dir_arg $ deadline_arg
      $ max_rows_arg $ max_expansions_arg $ domains_arg $ sql_arg)

(* ---------------- personalize ---------------- *)

let personalize movies seed data_dir deadline max_rows max_expansions domains
    profile_path sql k l m method_ topn semantic =
  validated [ pos_int "domains" domains ] @@ fun () ->
  guarded (fun () ->
      with_pool domains @@ fun () ->
      let db = db_of ?data_dir ~movies ~seed () in
      match Perso.Profile.load profile_path with
      | Error e -> handle_error (Perso.Error.Profile e)
      | Ok profile -> (
          let params =
            {
              Perso.Personalize.k = Perso.Criteria.Top_r k;
              m = `Count m;
              l = `At_least l;
              method_ = (if method_ = "sq" then `SQ else `MQ);
              rank = method_ <> "sq";
            }
          in
          let budget = budget_of deadline max_rows max_expansions in
          let related =
            if semantic then begin
              let bound = Relal.Binder.bind db (Relal.Sql_parser.parse sql) in
              let qg = Perso.Qgraph.of_query db bound in
              Some (Perso.Semantic.instance_related db qg)
            end
            else None
          in
          match
            Perso.Personalize.personalize_sql_r ~params ~budget ?related db
              profile sql
          with
          | Error e -> handle_error e
          | Ok run ->
              List.iter
                (fun d ->
                  Printf.eprintf "degraded: %s\n"
                    (Perso.Personalize.degradation_to_string d))
                run.Perso.Personalize.degradations;
              (match (run.Perso.Personalize.outcome, topn) with
              | None, _ ->
                  Format.printf "== Unpersonalized results ==@.";
                  print_result run.Perso.Personalize.result
              | Some outcome, None ->
                  print_string (Perso.Explain.outcome_report outcome);
                  Format.printf "@.== Results ==@.";
                  print_result run.Perso.Personalize.result
              | Some outcome, Some n ->
                  print_string (Perso.Explain.outcome_report outcome);
                  let top =
                    Perso.Topn.top_n ~l ~n db
                      (Perso.Qgraph.of_query db
                         (Relal.Binder.bind db (Relal.Sql_parser.parse sql)))
                      ~mandatory:outcome.Perso.Personalize.mandatory
                      ~optional:outcome.Perso.Personalize.optional ()
                  in
                  Format.printf
                    "@.== Top-%d results (%d/%d partials executed, %d probes) ==@."
                    n top.Perso.Topn.stats.Perso.Topn.partials_executed
                    top.Perso.Topn.stats.Perso.Topn.partials_total
                    top.Perso.Topn.stats.Perso.Topn.random_probes;
                  List.iter
                    (fun (row, deg) ->
                      Format.printf "  %-40s doi=%s@."
                        (String.concat ", "
                           (Array.to_list (Array.map Relal.Value.to_string row)))
                        (Perso.Degree.to_string deg))
                    top.Perso.Topn.rows);
              0))

let profile_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "profile" ] ~docv:"FILE" ~doc:"Profile file (text format).")

let k_arg = Arg.(value & opt int 5 & info [ "k" ] ~doc:"Top-K preferences.")
let l_arg = Arg.(value & opt int 1 & info [ "l" ] ~doc:"Minimum preferences per row.")
let m_arg = Arg.(value & opt int 0 & info [ "m" ] ~doc:"Mandatory preferences.")

let method_arg =
  Arg.(
    value
    & opt (enum [ ("sq", "sq"); ("mq", "mq") ]) "mq"
    & info [ "method" ] ~doc:"Integration method: sq or mq.")

let topn_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "top" ] ~docv:"N"
        ~doc:"Deliver only the N most interesting rows (early-terminating).")

let semantic_arg =
  Arg.(
    value & flag
    & info [ "semantic" ]
        ~doc:
          "Filter preferences at the semantic level: keep only those \
           satisfiable together with the query on the current data.")

let personalize_cmd =
  Cmd.v
    (Cmd.info "personalize" ~doc:"Personalize and execute a query under a profile")
    Term.(
      const personalize $ movies_arg $ seed_arg $ data_dir_arg $ deadline_arg
      $ max_rows_arg $ max_expansions_arg $ domains_arg $ profile_arg $ sql_arg
      $ k_arg $ l_arg $ m_arg $ method_arg $ topn_arg $ semantic_arg)

(* ---------------- gen-profile ---------------- *)

let gen_profile movies seed size out =
  guarded (fun () ->
      let db = db_of ~movies ~seed () in
      let cfg = { Moviedb.Profile_gen.default with seed; n_selections = size } in
      let profile = Moviedb.Profile_gen.generate db cfg in
      Perso.Profile.save out profile;
      Printf.printf "wrote %d selections (+%d joins) to %s\n"
        (Perso.Profile.size profile)
        (Perso.Profile.cardinal profile - Perso.Profile.size profile)
        out;
      0)

let size_arg =
  Arg.(value & opt int 20 & info [ "size" ] ~doc:"Number of atomic selections.")

let out_arg =
  Arg.(
    required & opt (some string) None & info [ "out" ] ~docv:"FILE" ~doc:"Output file.")

let gen_profile_cmd =
  Cmd.v (Cmd.info "gen-profile" ~doc:"Generate a synthetic profile file")
    Term.(const gen_profile $ movies_arg $ seed_arg $ size_arg $ out_arg)

(* ---------------- learn-profile ---------------- *)

let learn_profile movies seed data_dir log_path out =
  guarded (fun () ->
      let db = db_of ?data_dir ~movies ~seed () in
      let lines =
        In_channel.with_open_text log_path In_channel.input_lines
        |> List.map String.trim
        |> List.filter (fun l ->
               l <> "" && not (String.length l > 0 && l.[0] = '#'))
      in
      let queries =
        List.filter_map
          (fun line ->
            match Relal.Sql_parser.parse line with
            | q -> Some q
            | exception Relal.Sql_parser.Parse_error e ->
                Printf.eprintf "skipping unparseable log line (%s): %s\n" e line;
                None
            | exception Relal.Sql_lexer.Lex_error (e, _) ->
                Printf.eprintf "skipping unlexable log line (%s): %s\n" e line;
                None)
          lines
      in
      let profile = Perso.Learn.learn db queries in
      Perso.Profile.save out profile;
      Printf.printf "learned %d preferences from %d queries -> %s\n"
        (Perso.Profile.cardinal profile)
        (List.length queries) out;
      0)

let log_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "log" ] ~docv:"FILE" ~doc:"Query log: one SQL statement per line.")

let learn_profile_cmd =
  Cmd.v
    (Cmd.info "learn-profile"
       ~doc:"Derive a profile from a query log (implicit profile creation)")
    Term.(
      const learn_profile $ movies_arg $ seed_arg $ data_dir_arg $ log_arg $ out_arg)

(* ---------------- dump-data ---------------- *)

let dump_data movies seed dir =
  guarded (fun () ->
      let db = db_of ~movies ~seed () in
      Relal.Csv.save_db ~dir db;
      Format.printf "%a" Relal.Database.pp_summary db;
      Printf.printf "wrote schema.ddl + CSVs to %s\n" dir;
      0)

let dir_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "dir" ] ~docv:"DIR" ~doc:"Output directory.")

let dump_data_cmd =
  Cmd.v
    (Cmd.info "dump-data" ~doc:"Write a synthetic database as schema.ddl + CSVs")
    Term.(const dump_data $ movies_arg $ seed_arg $ dir_arg)

(* ---------------- dot ---------------- *)

let dot profile_path =
  guarded (fun () ->
      match Perso.Profile.load profile_path with
      | Error e -> handle_error (Perso.Error.Profile e)
      | Ok profile ->
          Format.printf "%a" Perso.Pgraph.pp_dot
            (Perso.Pgraph.of_profile profile);
          0)

let dot_cmd =
  Cmd.v
    (Cmd.info "dot" ~doc:"Print a profile's personalization graph as Graphviz")
    Term.(const dot $ profile_arg)

(* ---------------- serve ---------------- *)

(* "--store memory" or "--store disk:DIR"; anything else is a Usage
   complaint (returned, not raised, so [validated] can report it). *)
let parse_store = function
  | "memory" -> Ok None
  | s when String.length s > 5 && String.sub s 0 5 = "disk:" ->
      Ok (Some (String.sub s 5 (String.length s - 5)))
  | s ->
      Error
        (Printf.sprintf "--store must be 'memory' or 'disk:DIR' (got %S)" s)

(* "--io threads" (an OS thread per connection) or "--io evloop" (the
   single-domain event loop); same wire behavior either way. *)
let parse_io = function
  | "threads" -> Ok `Threads
  | "evloop" -> Ok `Evloop
  | s ->
      Error (Printf.sprintf "--io must be 'threads' or 'evloop' (got %S)" s)

let serve movies seed data_dir deadline max_rows max_expansions socket tcp
    workers queue drain_ms breaker_threshold breaker_cooldown dump_dir
    chaos_seed chaos_p no_cache cache_entries cache_mb domains shards store
    replicas profile_lru io =
  let store_dir = parse_store store in
  let io = parse_io io in
  validated
    [
      (match store_dir with Error m -> Some m | Ok _ -> None);
      (match io with Error m -> Some m | Ok _ -> None);
      pos_int "workers" workers;
      pos_int "queue" queue;
      pos_int "cache-entries" cache_entries;
      pos_float "cache-mb" cache_mb;
      pos_int "domains" domains;
      pos_int "shards" shards;
      pos_int "replicas" replicas;
      (if profile_lru >= 0 then None
       else
         Some
           (Printf.sprintf "--profile-lru must be >= 0 (got %d)" profile_lru));
    ]
  @@ fun () ->
  let store_dir = Result.get_ok store_dir in
  let io = Result.get_ok io in
  guarded (fun () ->
      with_pool domains @@ fun () ->
      let db = db_of ?data_dir ~movies ~seed () in
      (match chaos_p with
      | Some p when p > 0. ->
          ignore (Relal.Chaos.arm ~seed:chaos_seed ~p () : Relal.Chaos.stats);
          Printf.eprintf "chaos armed: seed=%d p=%g\n%!" chaos_seed p
      | _ -> ());
      let cfg =
        {
          (Perso_server.Server.default_config ~socket_path:socket) with
          Perso_server.Server.tcp_port = tcp;
          workers;
          queue_capacity = queue;
          deadline_ms = deadline;
          max_rows;
          max_expansions;
          drain_ms;
          breaker_threshold;
          breaker_cooldown_ms = breaker_cooldown;
          dump_dir;
          cache = not no_cache;
          cache_entries;
          cache_mb;
          shards;
          store_dir;
          replicas;
          profile_lru_entries = profile_lru;
        }
      in
      (* Recovery surfaced in the startup log: silent on clean opens so
         scripted output stays stable, loud whenever the store tier
         truncated torn WAL tails, failed over, or quarantined files. *)
      let print_recovery h =
        let hv k = Option.value ~default:"0" (List.assoc_opt k h) in
        let torn = hv "store_torn_truncated" in
        if torn <> "0" then
          Printf.eprintf "recovery: truncated %s torn WAL tail(s)\n%!" torn;
        let fo = hv "store_failover" and q = hv "store_quarantined" in
        if fo <> "0" || q <> "0" then
          Printf.eprintf
            "recovery: failover=%s quarantined=%s salvaged=%s catchups=%s\n%!"
            fo q (hv "store_salvaged") (hv "store_catchups")
      in
      let print_serving suffix =
        Printf.eprintf "serving on %s%s (workers=%d queue=%d)%s\n%!" socket
          (match tcp with
          | Some p -> Printf.sprintf " and 127.0.0.1:%d" p
          | None -> "")
          workers queue suffix
      in
      let set_signals on_signal =
        (* SIGTERM/SIGINT begin the drain; the runtime completes it. *)
        (try Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal)
         with Invalid_argument _ -> ());
        try Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal)
        with Invalid_argument _ -> ()
      in
      let print_outcome (outcome : Perso_server.Server.drain_outcome) =
        Printf.eprintf "drained=%b shed_at_stop=%d%s\n%!"
          outcome.Perso_server.Server.drained
          outcome.Perso_server.Server.shed_at_stop
          (match outcome.Perso_server.Server.dump with
          | Some (Ok dir) -> Printf.sprintf " dumped=%s" dir
          | Some (Error e) -> Printf.sprintf " dump-failed=%s" e
          | None -> "");
        if outcome.Perso_server.Server.drained then 0 else 1
      in
      match io with
      | `Threads ->
          let t = Perso_server.Server.start cfg db in
          print_recovery (Perso_server.Server.health t);
          set_signals (fun _ -> Perso_server.Server.request_stop t);
          print_serving "";
          print_outcome (Perso_server.Server.wait t)
      | `Evloop ->
          (* The loop runs on this very thread; the signal handler only
             flips an atomic the supervisor task polls. *)
          let stop_flag = Atomic.make false in
          set_signals (fun _ -> Atomic.set stop_flag true);
          let on_started h =
            print_recovery h;
            print_serving " io=evloop"
          in
          print_outcome
            (Perso_server.Server_ev.run ~stop_flag ~on_started cfg db))

let socket_arg =
  let doc = "Unix-domain socket path to listen on." in
  Arg.(
    required & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let tcp_arg =
  let doc = "Also listen on 127.0.0.1:$(docv)." in
  Arg.(value & opt (some int) None & info [ "tcp" ] ~docv:"PORT" ~doc)

let workers_arg =
  let doc = "Worker-pool size." in
  Arg.(value & opt int 4 & info [ "workers" ] ~docv:"N" ~doc)

let queue_arg =
  let doc = "Admission-queue capacity; requests beyond it are shed." in
  Arg.(value & opt int 64 & info [ "queue" ] ~docv:"N" ~doc)

let drain_arg =
  let doc = "Graceful-shutdown drain deadline (milliseconds)." in
  Arg.(value & opt float 2000. & info [ "drain-ms" ] ~docv:"MS" ~doc)

let breaker_threshold_arg =
  let doc = "Consecutive storage faults that trip the circuit breaker." in
  Arg.(value & opt int 3 & info [ "breaker-threshold" ] ~docv:"N" ~doc)

let breaker_cooldown_arg =
  let doc = "Circuit-breaker open -> half-open cooldown (milliseconds)." in
  Arg.(value & opt float 250. & info [ "breaker-cooldown-ms" ] ~docv:"MS" ~doc)

let dump_dir_arg =
  let doc = "Crash-safe-dump the database here on graceful shutdown." in
  Arg.(value & opt (some string) None & info [ "dump-dir" ] ~docv:"DIR" ~doc)

let chaos_seed_arg =
  let doc = "Seed for --chaos-p fault injection." in
  Arg.(value & opt int 1337 & info [ "chaos-seed" ] ~docv:"SEED" ~doc)

let chaos_p_arg =
  let doc =
    "Arm seeded fault injection at this probability per injection point \
     (testing aid)."
  in
  Arg.(value & opt (some float) None & info [ "chaos-p" ] ~docv:"P" ~doc)

let no_cache_arg =
  let doc =
    "Disable the personalization plan cache (every request recomputes cold)."
  in
  Arg.(value & flag & info [ "no-cache" ] ~doc)

let cache_entries_arg =
  let doc = "Plan-cache capacity in entries (LRU beyond it)." in
  Arg.(value & opt int 512 & info [ "cache-entries" ] ~docv:"N" ~doc)

let cache_mb_arg =
  let doc = "Plan-cache capacity in mebibytes of reachable heap." in
  Arg.(value & opt float 32. & info [ "cache-mb" ] ~docv:"MB" ~doc)

let shards_arg =
  let doc =
    "User-id shards for the profile store: a PROFILE SAVE locks only its \
     shard, so queries and other users' saves keep flowing."
  in
  Arg.(value & opt int 1 & info [ "shards" ] ~docv:"N" ~doc)

let store_arg =
  let doc =
    "Profile-store backend: $(b,memory) (default, profiles live only in \
     the catalog) or $(b,disk:DIR) — a crash-consistent log-structured \
     store rooted at DIR with one store per shard; on startup a non-empty \
     DIR is authoritative and its write-ahead logs are replayed."
  in
  Arg.(value & opt string "memory" & info [ "store" ] ~docv:"BACKEND" ~doc)

let replicas_arg =
  let doc =
    "Replica-set members per shard store (requires $(b,--store disk:DIR)): \
     every save ships to N byte-identical copies; recovery scrubs damaged \
     copies, salvages their valid prefixes, and fails over to the freshest \
     healthy member."
  in
  Arg.(value & opt int 1 & info [ "replicas" ] ~docv:"N" ~doc)

let profile_lru_arg =
  let doc =
    "Hot parsed-profile LRU capacity in entries, split across shards \
     (0 disables it)."
  in
  Arg.(value & opt int 512 & info [ "profile-lru" ] ~docv:"N" ~doc)

let io_arg =
  let doc =
    "I/O runtime: $(b,threads) (default; one OS thread per connection) or \
     $(b,evloop) (single-domain event loop over nonblocking sockets, \
     byte-identical wire behavior)."
  in
  Arg.(value & opt string "threads" & info [ "io" ] ~docv:"RUNTIME" ~doc)

let serve_cmd =
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve personalized queries concurrently over a socket (admission \
          control, circuit breaking, graceful drain)")
    Term.(
      const serve $ movies_arg $ seed_arg $ data_dir_arg $ deadline_arg
      $ max_rows_arg $ max_expansions_arg $ socket_arg $ tcp_arg $ workers_arg
      $ queue_arg $ drain_arg $ breaker_threshold_arg $ breaker_cooldown_arg
      $ dump_dir_arg $ chaos_seed_arg $ chaos_p_arg $ no_cache_arg
      $ cache_entries_arg $ cache_mb_arg $ domains_arg $ shards_arg
      $ store_arg $ replicas_arg $ profile_lru_arg $ io_arg)

(* ---------------- scrub ---------------- *)

(* Offline verification of a profile-store directory: walk every file
   the manifests name, re-verify frame CRCs and promised sizes, and —
   with --repair — quarantine damaged files, salvage their valid
   prefixes, and rebuild them from healthy replicas.  DIR is either one
   replica root or a serve-layout store root (SHARDS marker + shard-NN
   subdirectories). *)
let scrub dir repair =
  guarded (fun () ->
      let shard_roots =
        if Sys.file_exists (Filename.concat dir "SHARDS") then
          Sys.readdir dir |> Array.to_list
          |> List.filter (fun n ->
                 String.length n > 6 && String.sub n 0 6 = "shard-")
          |> List.sort compare
          |> List.map (fun n -> Filename.concat dir n)
        else [ dir ]
      in
      let label root file =
        if root = dir then file else Filename.concat (Filename.basename root) file
      in
      let damaged = ref 0 in
      let print_reports root reports =
        List.iteri
          (fun i (rep : Perso_store.Scrub.report) ->
            List.iter
              (fun (fr : Perso_store.Scrub.file_report) ->
                Printf.printf "%s: %s (%d records)\n"
                  (label root (Filename.concat (Printf.sprintf "r%d" i) fr.file))
                  (Perso_store.Scrub.status_name fr.status)
                  fr.records)
              rep.files;
            damaged := !damaged + List.length rep.damaged)
          reports
      in
      List.iter
        (fun root ->
          if repair then begin
            (* Replica recovery *is* the repair: open (adopting the
               root's recorded replica count), scrub every member, and
               let failover + quarantine + clone do their work. *)
            let r = Perso_store.Replica.open_ root in
            let reports = Perso_store.Replica.scrub_now r in
            print_reports root reports;
            let rs = Perso_store.Replica.rstats r in
            Printf.printf
              "%s: repaired (failovers=%d salvaged=%d quarantined=%d \
               catchups=%d)\n"
              (if root = dir then "." else Filename.basename root)
              rs.Perso_store.Replica.failovers rs.Perso_store.Replica.salvaged
              rs.Perso_store.Replica.quarantined
              rs.Perso_store.Replica.catchups;
            Perso_store.Replica.close r
          end
          else begin
            (* Read-only: scan member directories (or a legacy flat
               root) without touching a byte. *)
            let members =
              if Sys.file_exists root && Sys.is_directory root then
                Sys.readdir root |> Array.to_list
                |> List.filter (fun n ->
                       String.length n >= 2
                       && n.[0] = 'r'
                       && String.for_all
                            (fun c -> c >= '0' && c <= '9')
                            (String.sub n 1 (String.length n - 1))
                       && Sys.is_directory (Filename.concat root n))
                |> List.sort compare
              else []
            in
            let targets =
              if members = [] then [ (root, root) ]
              else List.map (fun m -> (Filename.concat root m, m)) members
            in
            List.iter
              (fun (mdir, mname) ->
                let rep = Perso_store.Scrub.scan_dir mdir in
                List.iter
                  (fun (fr : Perso_store.Scrub.file_report) ->
                    Printf.printf "%s: %s (%d records)\n"
                      (label root
                         (if mdir = root then fr.file
                          else Filename.concat mname fr.file))
                      (Perso_store.Scrub.status_name fr.status)
                      fr.records)
                  rep.Perso_store.Scrub.files;
                damaged :=
                  !damaged + List.length rep.Perso_store.Scrub.damaged)
              targets
          end)
        shard_roots;
      if !damaged > 0 then begin
        Printf.printf "scrub: %d damaged file(s)\n" !damaged;
        2
      end
      else 0)

let scrub_dir_arg =
  let doc = "Profile-store directory (a store root or one replica root)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR" ~doc)

let repair_arg =
  let doc =
    "Repair: quarantine damaged files, salvage their valid prefixes, \
     rebuild from healthy replicas (fails with the typed storage error \
     when no replica has a clean copy)."
  in
  Arg.(value & flag & info [ "repair" ] ~doc)

let scrub_cmd =
  Cmd.v
    (Cmd.info "scrub"
       ~doc:
         "Verify (and with --repair, heal) a profile store's on-disk file \
          set: CRC-check every record, quarantine and salvage damage, \
          rebuild from replicas")
    Term.(const scrub $ scrub_dir_arg $ repair_arg)

(* ---------------- sim ---------------- *)

let sim seed runs steps mutate oracle_cases oracle_movies oracle_selections =
  guarded (fun () ->
      Perso_sim.Driver.main
        {
          Perso_sim.Driver.seed;
          runs;
          steps;
          mutate;
          oracle_cases;
          oracle_movies;
          oracle_selections;
        })

let sim_runs_arg =
  let doc = "Number of scenario seeds to simulate (seed, seed+1, …)." in
  Arg.(value & opt int 5 & info [ "runs" ] ~docv:"M" ~doc)

let sim_steps_arg =
  let doc =
    "Replay exactly this encoded step list under --seed instead of \
     generating scenarios (printed by every failure report)."
  in
  Arg.(value & opt (some string) None & info [ "steps" ] ~docv:"STEPS" ~doc)

let sim_mutate_arg =
  let doc =
    "Mutation self-test: inject the dropped-completed_ok ledger bug and \
     require the harness to catch it and shrink the repro to ≤ 10 steps."
  in
  Arg.(value & flag & info [ "mutate" ] ~doc)

let sim_oracle_cases_arg =
  let doc = "Metamorphic/differential oracle cases (0 skips the oracle)." in
  Arg.(value & opt int 2 & info [ "oracle-cases" ] ~docv:"N" ~doc)

let sim_oracle_movies_arg =
  let doc = "Synthetic database size for the oracle layer." in
  Arg.(value & opt int 1200 & info [ "oracle-movies" ] ~docv:"N" ~doc)

let sim_oracle_selections_arg =
  let doc = "Profile size for the oracle layer." in
  Arg.(value & opt int 120 & info [ "oracle-selections" ] ~docv:"N" ~doc)

let sim_cmd =
  Cmd.v
    (Cmd.info "sim"
       ~doc:
         "Deterministic simulation: seeded client fleets against the server \
          core under a virtual clock, invariant audits, failure shrinking, \
          and metamorphic oracles over the personalization engine")
    Term.(
      const sim $ seed_arg $ sim_runs_arg $ sim_steps_arg $ sim_mutate_arg
      $ sim_oracle_cases_arg $ sim_oracle_movies_arg $ sim_oracle_selections_arg)

(* ---------------- call ---------------- *)

let print_response = function
  | Perso_server.Protocol.Rows { notes; cols; rows } ->
      List.iter (fun n -> Printf.printf "note: %s\n" n) notes;
      if cols <> [] then print_endline (String.concat " | " cols);
      List.iter (fun r -> print_endline (String.concat " | " r)) rows;
      Printf.printf "(%d rows)\n" (List.length rows);
      0
  | Perso_server.Protocol.Stats stats ->
      List.iter (fun (k, v) -> Printf.printf "%s %s\n" k v) stats;
      0
  | Perso_server.Protocol.Message m ->
      print_endline m;
      0
  | Perso_server.Protocol.Failed { family; code; message } ->
      Printf.eprintf "%s (family %s)\n" message family;
      code

let call socket wait_ms deadline max_rows max_expansions command =
  guarded (fun () ->
      let c = Perso_server.Client.connect ~wait_ms socket in
      Fun.protect
        ~finally:(fun () -> Perso_server.Client.close c)
        (fun () ->
          match
            Perso_server.Client.request ?deadline_ms:deadline
              ?max_rows ?max_expansions c (String.concat " " command)
          with
          | Ok resp -> print_response resp
          | Error e -> handle_error (Perso.Error.Internal ("client: " ^ e))))

let call_socket_arg =
  let doc = "Unix-domain socket of the running server." in
  Arg.(
    required & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let wait_ms_arg =
  let doc = "Keep retrying the connection for this long (server startup)." in
  Arg.(value & opt float 0. & info [ "wait-ms" ] ~docv:"MS" ~doc)

let command_arg =
  Arg.(
    non_empty & pos_all string []
    & info [] ~docv:"COMMAND"
        ~doc:"Request words, e.g. RUN select ... or HEALTH or SHUTDOWN.")

let call_cmd =
  Cmd.v
    (Cmd.info "call"
       ~doc:
         "Send one request to a running server; exits with the error \
          family's code on ERR")
    Term.(
      const call $ call_socket_arg $ wait_ms_arg $ deadline_arg $ max_rows_arg
      $ max_expansions_arg $ command_arg)

let () =
  let info = Cmd.info "perso_cli" ~doc:"Query personalization (ICDE 2004) toolkit" in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            demo_cmd; run_sql_cmd; personalize_cmd; gen_profile_cmd;
            learn_profile_cmd; dump_data_cmd; dot_cmd; serve_cmd; scrub_cmd;
            call_cmd; sim_cmd;
          ]))
