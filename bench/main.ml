(* Benchmark harness: regenerates every figure of the paper's evaluation
   (§7) on the synthetic movie database, and runs Bechamel micro-bench
   kernels for the timed inner loops (one Test.make per figure).

   Usage:
     dune exec bench/main.exe                 # all figures + kernels
     dune exec bench/main.exe -- fig6 fig8    # a subset
     BENCH_SCALE=quick|default|paper          # workload size

   Absolute numbers will not match the paper's Oracle-9i/2003-hardware
   setup; the claims under test are the *shapes* (see EXPERIMENTS.md). *)

open Perso

(* --------------------------------------------------------------------- *)
(* Scales and timing                                                     *)
(* --------------------------------------------------------------------- *)

type scale = {
  label : string;
  movies : int;
  profiles : int;  (** profiles per parameter point *)
  queries : int;  (** queries per parameter point *)
}

let scale =
  match Sys.getenv_opt "BENCH_SCALE" with
  | Some "quick" -> { label = "quick"; movies = 500; profiles = 2; queries = 4 }
  | Some "paper" -> { label = "paper"; movies = 20_000; profiles = 10; queries = 20 }
  | _ -> { label = "default"; movies = 2_000; profiles = 4; queries = 8 }

let now_ms () = Int64.to_float (Monotonic_clock.now ()) /. 1e6

let time f =
  let t0 = now_ms () in
  let r = f () in
  (r, now_ms () -. t0)

let avg = function
  | [] -> Float.nan
  | l -> List.fold_left ( +. ) 0. l /. float_of_int (List.length l)

let pct x = 100. *. x

(* --------------------------------------------------------------------- *)
(* Shared setup                                                          *)
(* --------------------------------------------------------------------- *)

let db =
  lazy
    (let cfg = Moviedb.Datagen.scale ~seed:42 scale.movies in
     let t0 = now_ms () in
     let db = Moviedb.Datagen.generate cfg in
     Printf.printf "# generated %d-movie database in %.0f ms (scale: %s)\n%!"
       scale.movies (now_ms () -. t0) scale.label;
     db)

let queries_for seed n =
  let db = Lazy.force db in
  Moviedb.Workload.queries db ~n ~seed

let profile_for ~seed ~size =
  Moviedb.Profile_gen.generate (Lazy.force db)
    { Moviedb.Profile_gen.default with seed; n_selections = size }

let profiles_for ~seed0 ~size n =
  List.init n (fun i -> profile_for ~seed:(seed0 + i) ~size)

(* Personalization plumbing with separately-timed phases. *)

type timed_run = {
  t_select : float;  (** preference selection, ms *)
  t_integrate : float;  (** instantiation + SQ/MQ construction, ms *)
  t_exec : float;  (** personalized-query execution, ms *)
  n_selected : int;
  rows : int;
}

let run_one ?(method_ = `MQ) ~k ~l db profile query =
  let bound = Relal.Binder.bind db query in
  let qg = Qgraph.of_query db bound in
  let g = Pgraph.of_profile profile in
  let selected, t_select =
    time (fun () -> Select.select db g qg (Criteria.Top_r k))
  in
  let q', t_integrate =
    time (fun () ->
        let insts = Integrate.instantiate db qg selected in
        let l = min l (List.length insts) in
        match method_ with
        | `SQ -> Integrate.sq db qg ~mandatory:[] ~optional:insts ~l
        | `MQ ->
            Integrate.mq ~rank:false db qg ~mandatory:[] ~optional:insts
              ~l:(`At_least l) ())
  in
  let res, t_exec = time (fun () -> Relal.Engine.run_query db q') in
  {
    t_select;
    t_integrate;
    t_exec;
    n_selected = List.length selected;
    rows = List.length res.Relal.Exec.rows;
  }

let distinct_initial_rows db query =
  let q = { query with Relal.Sql_ast.distinct = true } in
  List.length (Relal.Engine.run_query db q).Relal.Exec.rows

(* --------------------------------------------------------------------- *)
(* Figure 6: Preference Selection Time vs profile size                   *)
(* --------------------------------------------------------------------- *)

let fig6 () =
  let db = Lazy.force db in
  let ks = [ 5; 10; 15 ] in
  let sizes = [ 10; 20; 30; 40; 50; 60; 70; 80; 90; 100 ] in
  let queries = queries_for 101 scale.queries in
  (* Global warm-up: run the selection path once so the first measured
     cell does not absorb cold-start effects. *)
  (let profile = profile_for ~seed:999 ~size:50 in
   List.iter
     (fun q ->
       let bound = Relal.Binder.bind db q in
       let qg = Qgraph.of_query db bound in
       ignore (Select.select db (Pgraph.of_profile profile) qg (Criteria.Top_r 15)))
     queries);
  Printf.printf
    "\n\
     ## Figure 6 — Preference Selection Time (ms) vs profile size\n\
     ## avg over %d profiles x %d queries; M=0\n" scale.profiles scale.queries;
  Printf.printf "%-13s %10s %10s %10s\n" "profile_size" "K=5" "K=10" "K=15";
  List.iter
    (fun size ->
      let profiles = profiles_for ~seed0:(1000 + size) ~size scale.profiles in
      let cells =
        List.map
          (fun k ->
            let samples =
              List.concat_map
                (fun profile ->
                  List.map
                    (fun q ->
                      let bound = Relal.Binder.bind db q in
                      let qg = Qgraph.of_query db bound in
                      let g = Pgraph.of_profile profile in
                      (* One untimed warm-up call per combination. *)
                      ignore (Select.select db g qg (Criteria.Top_r k));
                      snd (time (fun () -> Select.select db g qg (Criteria.Top_r k))))
                    queries)
                profiles
            in
            avg samples)
          ks
      in
      match cells with
      | [ a; b; c ] -> Printf.printf "%-13d %10.4f %10.4f %10.4f\n%!" size a b c
      | _ -> ())
    sizes

(* --------------------------------------------------------------------- *)
(* Figure 7: result size of personalized queries                         *)
(* --------------------------------------------------------------------- *)

let result_size_pct ~k ~l ~size ~seed0 =
  let db = Lazy.force db in
  let queries = queries_for 202 scale.queries in
  let profiles = profiles_for ~seed0 ~size scale.profiles in
  let samples =
    List.concat_map
      (fun profile ->
        List.filter_map
          (fun q ->
            let initial = distinct_initial_rows db q in
            if initial = 0 then None
            else begin
              let r = run_one ~k ~l db profile q in
              Some (float_of_int r.rows /. float_of_int initial)
            end)
          queries)
      profiles
  in
  pct (avg samples)

let fig7a () =
  Printf.printf "\n## Figure 7(a) — %% of initial query's rows vs K (L=1, M=0)\n";
  Printf.printf "%-6s %14s\n" "K" "%rows";
  List.iter
    (fun k ->
      Printf.printf "%-6d %14.1f\n%!" k (result_size_pct ~k ~l:1 ~size:55 ~seed0:300))
    [ 10; 20; 30; 40; 50 ]

let fig7b () =
  Printf.printf "\n## Figure 7(b) — %% of initial query's rows vs L (K=10, M=0)\n";
  Printf.printf "%-6s %14s\n" "L" "%rows";
  List.iter
    (fun l ->
      Printf.printf "%-6d %14.2f\n%!" l (result_size_pct ~k:10 ~l ~size:20 ~seed0:400))
    [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]

let fig7c () =
  Printf.printf "\n## Figure 7(c) — %% of initial query's rows vs L (K=60, M=0)\n";
  Printf.printf "%-6s %14s\n" "L" "%rows";
  List.iter
    (fun l ->
      Printf.printf "%-6d %14.1f\n%!" l (result_size_pct ~k:60 ~l ~size:70 ~seed0:500))
    [ 1; 5; 10; 15; 20; 25 ]

(* --------------------------------------------------------------------- *)
(* Figures 8 & 9: SQ vs MQ                                               *)
(* --------------------------------------------------------------------- *)

let sq_mq_point ~k ~l ~size ~seed0 =
  let db = Lazy.force db in
  let queries = queries_for 203 scale.queries in
  let profiles = profiles_for ~seed0 ~size scale.profiles in
  let samples method_ =
    List.concat_map
      (fun profile ->
        List.filter_map
          (fun q ->
            match run_one ~method_ ~k ~l db profile q with
            | r -> Some (r.t_integrate, r.t_exec)
            | exception Integrate.Integration_error _ -> None)
          queries)
      profiles
  in
  let sq = samples `SQ and mq = samples `MQ in
  ( avg (List.map fst sq),
    avg (List.map snd sq),
    avg (List.map fst mq),
    avg (List.map snd mq) )

let fig8 () =
  Printf.printf
    "\n## Figure 8 — SQ vs MQ, integration and execution times (ms) vs K (L=1, M=0)\n";
  Printf.printf "%-6s %12s %12s %12s %12s\n" "K" "SQ_integr" "MQ_integr" "SQ_exec"
    "MQ_exec";
  List.iter
    (fun k ->
      let si, se, mi, me = sq_mq_point ~k ~l:1 ~size:70 ~seed0:600 in
      Printf.printf "%-6d %12.4f %12.4f %12.3f %12.3f\n%!" k si mi se me)
    [ 0; 5; 10; 20; 30; 40; 50; 60 ]

let fig9 () =
  Printf.printf
    "\n## Figure 9 — SQ vs MQ, integration and execution times (ms) vs L (K=10, M=0)\n";
  Printf.printf "%-6s %12s %12s %12s %12s\n" "L" "SQ_integr" "MQ_integr" "SQ_exec"
    "MQ_exec";
  List.iter
    (fun l ->
      let si, se, mi, me = sq_mq_point ~k:10 ~l ~size:20 ~seed0:700 in
      Printf.printf "%-6d %12.4f %12.4f %12.3f %12.3f\n%!" l si mi se me)
    [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]

(* --------------------------------------------------------------------- *)
(* Figure 10: performance of personalization (MQ)                        *)
(* --------------------------------------------------------------------- *)

let fig10_point ~k ~l ~size ~seed0 =
  let db = Lazy.force db in
  let queries = queries_for 204 scale.queries in
  let profiles = profiles_for ~seed0 ~size scale.profiles in
  let samples =
    List.concat_map
      (fun profile ->
        List.map
          (fun q ->
            let _, t_initial = time (fun () -> Relal.Engine.run_query db q) in
            let r = run_one ~method_:`MQ ~k ~l db profile q in
            (t_initial, r.t_select +. r.t_integrate, r.t_exec))
          queries)
      profiles
  in
  ( avg (List.map (fun (a, _, _) -> a) samples),
    avg (List.map (fun (_, b, _) -> b) samples),
    avg (List.map (fun (_, _, c) -> c) samples) )

let fig10 () =
  Printf.printf "\n## Figure 10 — Performance of personalization with K (L=1, MQ)\n";
  Printf.printf "%-6s %14s %16s %16s\n" "K" "initial_exec" "personalization"
    "personal_exec";
  List.iter
    (fun k ->
      let i, p, e = fig10_point ~k ~l:1 ~size:70 ~seed0:800 in
      Printf.printf "%-6d %14.3f %16.4f %16.3f\n%!" k i p e)
    [ 0; 5; 10; 20; 30; 40; 50; 60 ];
  Printf.printf "\n## Figure 10 — Performance of personalization with L (K=10, MQ)\n";
  Printf.printf "%-6s %14s %16s %16s\n" "L" "initial_exec" "personalization"
    "personal_exec";
  List.iter
    (fun l ->
      let i, p, e = fig10_point ~k:10 ~l ~size:20 ~seed0:900 in
      Printf.printf "%-6d %14.3f %16.4f %16.3f\n%!" l i p e)
    [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]

(* --------------------------------------------------------------------- *)
(* Bechamel kernels — one Test.make per figure's inner loop              *)
(* --------------------------------------------------------------------- *)

let kernels () =
  let open Bechamel in
  let open Toolkit in
  let db = Lazy.force db in
  let profile = profile_for ~seed:9000 ~size:50 in
  let small_profile = profile_for ~seed:9001 ~size:20 in
  let query = Moviedb.Workload.tonight_query () in
  let bound = Relal.Binder.bind db query in
  let qg = Qgraph.of_query db bound in
  let g = Pgraph.of_profile profile in
  let g_small = Pgraph.of_profile small_profile in
  let selected = Select.select db g qg (Criteria.Top_r 10) in
  let insts = Integrate.instantiate db qg selected in
  let selected_small = Select.select db g_small qg (Criteria.Top_r 10) in
  let insts_small = Integrate.instantiate db qg selected_small in
  let mq =
    Integrate.mq ~rank:true db qg ~mandatory:[] ~optional:insts ~l:(`At_least 1) ()
  in
  let sq = Integrate.sq db qg ~mandatory:[] ~optional:insts ~l:1 in
  let tests =
    [
      (* Figure 6 kernel: the preference-selection graph computation. *)
      Test.make ~name:"fig6/select-K10-size50"
        (Staged.stage (fun () -> Select.select db g qg (Criteria.Top_r 10)));
      (* Figure 7 kernel: executing the MQ personalized query. *)
      Test.make ~name:"fig7/exec-mq-K10-L1"
        (Staged.stage (fun () -> Relal.Engine.run_query db mq));
      (* Figure 8 kernels: the two integration methods. *)
      Test.make ~name:"fig8/integrate-sq-K10-L1"
        (Staged.stage (fun () ->
             Integrate.sq db qg ~mandatory:[] ~optional:insts ~l:1));
      Test.make ~name:"fig8/integrate-mq-K10-L1"
        (Staged.stage (fun () ->
             Integrate.mq ~rank:false db qg ~mandatory:[] ~optional:insts
               ~l:(`At_least 1) ()));
      (* Figure 9 kernel: SQ's combination blow-up at L=5 (C(10,5)=252). *)
      Test.make ~name:"fig9/integrate-sq-K10-L5"
        (Staged.stage (fun () ->
             match Integrate.sq db qg ~mandatory:[] ~optional:insts_small ~l:5 with
             | q -> Some q
             | exception Integrate.Integration_error _ -> None));
      (* Figure 9 execution kernel: the SQ query itself. *)
      Test.make ~name:"fig9/exec-sq-K10-L1"
        (Staged.stage (fun () -> Relal.Engine.run_query db sq));
      (* Figure 10 kernel: the whole pipeline. *)
      Test.make ~name:"fig10/pipeline-K10-L1"
        (Staged.stage (fun () ->
             let outcome =
               Personalize.personalize
                 ~params:
                   {
                     Personalize.default_params with
                     k = Criteria.Top_r 10;
                     rank = false;
                   }
                 db profile query
             in
             Personalize.execute db outcome));
    ]
  in
  Printf.printf "\n## Bechamel kernels (OLS estimate per run)\n";
  Printf.printf "%-28s %14s %8s\n" "kernel" "time/run" "r^2";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.4) ~stabilize:false () in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      let res = Analyze.all ols Instance.monotonic_clock raw in
      Hashtbl.iter
        (fun name o ->
          let est =
            match Analyze.OLS.estimates o with Some (e :: _) -> e | _ -> Float.nan
          in
          let r2 = Option.value ~default:Float.nan (Analyze.OLS.r_square o) in
          let human =
            if est > 1e9 then Printf.sprintf "%.3f s" (est /. 1e9)
            else if est > 1e6 then Printf.sprintf "%.3f ms" (est /. 1e6)
            else if est > 1e3 then Printf.sprintf "%.3f us" (est /. 1e3)
            else Printf.sprintf "%.0f ns" est
          in
          Printf.printf "%-28s %14s %8.4f\n%!" name human r2)
        res)
    tests

(* --------------------------------------------------------------------- *)
(* Ablations — design choices DESIGN.md calls out                        *)
(* --------------------------------------------------------------------- *)

(* Ablation 1: the conjunctive combination function used for ranking.
   The paper picks 1-prod(1-d); alternatives satisfying the same bound
   f(D) >= max(D) are max itself (degenerate) and a capped sum.  We
   compare how well each discriminates between result rows. *)
let ablation_funcs () =
  let db = Lazy.force db in
  let profile = profile_for ~seed:9100 ~size:40 in
  let queries = queries_for 205 scale.queries in
  Printf.printf
    "\n\
     ## Ablation — conjunctive ranking function (K=10, L=1)\n\
     ## distinct-scores: how many distinct rank levels the function yields\n\
     ## (higher = finer discrimination between result rows)\n";
  Printf.printf "%-12s %18s %18s %18s\n" "query" "noisy-or (paper)" "max" "capped-sum";
  let noisy_or ds = 1. -. List.fold_left (fun a d -> a *. (1. -. d)) 1. ds in
  let max_f ds = List.fold_left max 0. ds in
  let capped ds = min 1.0 (List.fold_left ( +. ) 0. ds) in
  List.iteri
    (fun qi q ->
      let bound = Relal.Binder.bind db q in
      let qg = Qgraph.of_query db bound in
      let g = Pgraph.of_profile profile in
      let selected = Select.select db g qg (Criteria.Top_r 10) in
      let insts = Integrate.instantiate db qg selected in
      (* Satisfied-preference sets per row, via the partial queries. *)
      let rows : (string, float list) Hashtbl.t = Hashtbl.create 64 in
      List.iter
        (fun inst ->
          let q' =
            Integrate.mq ~rank:false db qg ~mandatory:[] ~optional:[ inst ]
              ~l:(`At_least 1) ()
          in
          let res = Relal.Engine.run_query db q' in
          let d = Degree.to_float inst.Integrate.path.Path.degree in
          List.iter
            (fun row ->
              let key =
                String.concat "|"
                  (Array.to_list (Array.map Relal.Value.to_string row))
              in
              Hashtbl.replace rows key
                (d :: Option.value ~default:[] (Hashtbl.find_opt rows key)))
            res.Relal.Exec.rows)
        insts;
      let distinct f =
        let scores = Hashtbl.fold (fun _ ds acc -> f ds :: acc) rows [] in
        List.length
          (List.sort_uniq compare (List.map (fun s -> Float.round (s *. 1e6)) scores))
      in
      if Hashtbl.length rows > 0 && qi < 6 then
        Printf.printf "q%-11d %18d %18d %18d   (%d rows)\n%!" qi
          (distinct noisy_or) (distinct max_f) (distinct capped)
          (Hashtbl.length rows))
    queries

(* Ablation 2: top-N early termination vs executing the full ranked MQ.
   Under the paper's noisy-or conjunctive scoring the TA threshold
   1-prod(1-d_rest) stays near 1 while many high-degree preferences
   remain, so early termination only pays when profile degrees decay
   quickly — the two profile shapes below demonstrate exactly that. *)
let ablation_topn () =
  let db = Lazy.force db in
  let uniform = profile_for ~seed:9200 ~size:70 in
  (* Same atoms, geometrically decaying selection degrees. *)
  let decaying =
    let rank = ref (-1) in
    List.fold_left
      (fun acc (atom, d) ->
        match atom with
        | Atom.Join _ -> Profile.add acc atom d
        | Atom.Sel _ ->
            incr rank;
            let d' = Float.max 0.02 (0.9 *. Float.pow 0.55 (float_of_int !rank)) in
            Profile.add acc atom (Degree.of_float d'))
      Profile.empty (Profile.entries uniform)
  in
  let queries = queries_for 206 scale.queries in
  Printf.printf
    "\n## Ablation — top-N early termination vs full MQ (K=20, L=1)\n";
  Printf.printf "%-10s %-6s %12s %12s %16s %14s\n" "degrees" "N" "full_ms"
    "topn_ms" "partials_run" "probes";
  List.iter
    (fun (label, profile) ->
      List.iter
        (fun n ->
          let samples =
            List.filter_map
              (fun q ->
                let bound = Relal.Binder.bind db q in
                let qg = Qgraph.of_query db bound in
                let g = Pgraph.of_profile profile in
                let selected = Select.select db g qg (Criteria.Top_r 20) in
                if selected = [] then None
                else begin
                  let insts = Integrate.instantiate db qg selected in
                  let mq =
                    Integrate.mq ~rank:true db qg ~mandatory:[] ~optional:insts
                      ~l:(`At_least 1) ()
                  in
                  let _, t_full = time (fun () -> Relal.Engine.run_query db mq) in
                  let r, t_top =
                    time (fun () ->
                        Topn.top_n ~n db qg ~mandatory:[] ~optional:insts ())
                  in
                  Some
                    ( t_full,
                      t_top,
                      float_of_int r.Topn.stats.Topn.partials_executed
                      /. float_of_int (max 1 r.Topn.stats.Topn.partials_total),
                      float_of_int r.Topn.stats.Topn.random_probes )
                end)
              queries
          in
          Printf.printf "%-10s %-6d %12.3f %12.3f %15.0f%% %14.1f\n%!" label n
            (avg (List.map (fun (a, _, _, _) -> a) samples))
            (avg (List.map (fun (_, b, _, _) -> b) samples))
            (100. *. avg (List.map (fun (_, _, c, _) -> c) samples))
            (avg (List.map (fun (_, _, _, d) -> d) samples)))
        [ 1; 3; 5; 10 ])
    [ ("uniform", uniform); ("decaying", decaying) ]

(* Ablation 3: index access paths (index-equality materialization +
   index-nested-loop joins) vs pure hash joins over scans. *)
let ablation_index () =
  let cfg = Moviedb.Datagen.scale ~seed:42 scale.movies in
  let with_idx = Moviedb.Datagen.generate cfg in
  let without_idx = Moviedb.Datagen.generate ~index:false cfg in
  let profile_of db =
    Moviedb.Profile_gen.generate db
      { Moviedb.Profile_gen.default with seed = 9300; n_selections = 20 }
  in
  let run_suite db =
    let profile = profile_of db in
    let queries = Moviedb.Workload.queries db ~n:scale.queries ~seed:207 in
    let samples =
      List.map
        (fun q ->
          let r = run_one ~method_:`MQ ~k:10 ~l:1 db profile q in
          r.t_exec)
        queries
    in
    avg samples
  in
  Printf.printf "\n## Ablation — index access paths (MQ execution, K=10, L=1)\n";
  Printf.printf "%-28s %12s\n" "configuration" "exec_ms";
  Printf.printf "%-28s %12.3f\n%!" "hash joins over scans" (run_suite without_idx);
  Printf.printf "%-28s %12.3f\n%!" "index paths + INLJ" (run_suite with_idx)

(* Ablation 4: greedy (smallest input) vs cost-based (estimated output)
   join ordering on the personalized-query workload. *)
let ablation_planner () =
  let db = Lazy.force db in
  let stats = Relal.Stats.create db in
  (* Warm the statistics cache outside the timed region. *)
  List.iter
    (fun t ->
      ignore
        (Relal.Stats.ndv stats
           (Relal.Schema.name (Relal.Table.schema t))
           (Relal.Schema.columns (Relal.Table.schema t)).(0).Relal.Schema.cname))
    (Relal.Database.tables db);
  let profile = profile_for ~seed:9400 ~size:30 in
  let queries = queries_for 208 (2 * scale.queries) in
  let run strategy =
    let samples =
      List.map
        (fun q ->
          let bound = Relal.Binder.bind db q in
          let qg = Qgraph.of_query db bound in
          let g = Pgraph.of_profile profile in
          let selected = Select.select db g qg (Criteria.Top_r 10) in
          let insts = Integrate.instantiate db qg selected in
          let mq =
            Integrate.mq ~rank:false db qg ~mandatory:[] ~optional:insts
              ~l:(`At_least (min 1 (List.length insts))) ()
          in
          snd (time (fun () -> Relal.Exec.run ~strategy ~stats db mq)))
        queries
    in
    avg samples
  in
  Printf.printf "\n## Ablation — join ordering (MQ execution, K=10, L=1)\n";
  Printf.printf "%-36s %12s\n" "strategy" "exec_ms";
  Printf.printf "%-36s %12.3f\n%!" "greedy (smallest input)" (run `Auto);
  Printf.printf "%-36s %12.3f\n%!" "cost-based (estimated join output)" (run `Cost)

(* --------------------------------------------------------------------- *)
(* Executor benchmark — machine-readable baseline (BENCH_EXEC.json)      *)
(* --------------------------------------------------------------------- *)

(* Times the relational executor alone (queries pre-built outside the
   timed region) on the §7 figure workloads, and writes per-figure
   timings to BENCH_EXEC.json so perf PRs are judged against recorded
   numbers rather than folklore.  Override the output path with
   BENCH_EXEC_OUT. *)

let bench_exec () =
  let db = Lazy.force db in
  let personalized ~method_ ~k ~l ~size ~seed0 =
    let queries = queries_for 210 scale.queries in
    let profiles = profiles_for ~seed0 ~size scale.profiles in
    List.concat_map
      (fun profile ->
        List.filter_map
          (fun q ->
            let bound = Relal.Binder.bind db q in
            let qg = Qgraph.of_query db bound in
            let g = Pgraph.of_profile profile in
            let selected = Select.select db g qg (Criteria.Top_r k) in
            let insts = Integrate.instantiate db qg selected in
            let l = min l (List.length insts) in
            match method_ with
            | `SQ -> (
                match Integrate.sq db qg ~mandatory:[] ~optional:insts ~l with
                | q' -> Some q'
                | exception Integrate.Integration_error _ -> None)
            | `MQ ->
                Some
                  (Integrate.mq ~rank:false db qg ~mandatory:[] ~optional:insts
                     ~l:(`At_least l) ()))
          queries)
      profiles
  in
  let figures =
    [
      (* Multi-join SPJ workload, no personalization: the raw executor. *)
      ("workload_spj", queries_for 210 (4 * scale.queries));
      (* §7 figure workloads: MQ/SQ personalized queries. *)
      ("fig7_mq_k10_l1", personalized ~method_:`MQ ~k:10 ~l:1 ~size:70 ~seed0:600);
      ("fig7_mq_k30_l1", personalized ~method_:`MQ ~k:30 ~l:1 ~size:70 ~seed0:600);
      ("fig7_mq_k60_l1", personalized ~method_:`MQ ~k:60 ~l:1 ~size:70 ~seed0:600);
      ("fig8_sq_k10_l1", personalized ~method_:`SQ ~k:10 ~l:1 ~size:70 ~seed0:600);
      ("fig9_mq_k10_l5", personalized ~method_:`MQ ~k:10 ~l:5 ~size:20 ~seed0:700);
    ]
  in
  let reps = 3 in
  Printf.printf "\n## Executor benchmark (avg of %d reps; queries pre-built)\n" reps;
  Printf.printf "%-18s %8s %12s %14s %10s\n" "figure" "queries" "ms_total"
    "ms_per_query" "rows";
  let results =
    List.map
      (fun (name, qs) ->
        (* Warm-up pass, then timed repetitions. *)
        let run_all () =
          List.fold_left
            (fun acc q ->
              acc + List.length (Relal.Engine.run_query db q).Relal.Exec.rows)
            0 qs
        in
        let rows = run_all () in
        let times =
          List.init reps (fun _ -> snd (time (fun () -> ignore (run_all ()))))
        in
        let ms = avg times in
        let n = List.length qs in
        Printf.printf "%-18s %8d %12.3f %14.4f %10d\n%!" name n ms
          (ms /. float_of_int (max 1 n))
          rows;
        (name, n, ms, rows))
      figures
  in
  let total_ms = List.fold_left (fun a (_, _, ms, _) -> a +. ms) 0. results in
  (* ---- multicore scaling: fig7 K=60 across domain counts ---------- *)
  (* The heaviest §7 workload re-timed under the domain pool.  Results
     are byte-identical at every domain count (enforced by test_par);
     what this records is the wall-clock scaling, which only shows on
     hardware that actually has the cores — so the physical core count
     travels with the figures and `make bench-par` gates on speedup
     only when cores >= 4. *)
  let cores = Domain.recommended_domain_count () in
  let par_figure = "fig7_mq_k60_l1" in
  let par_qs = List.assoc par_figure figures in
  let par_run () =
    List.fold_left
      (fun acc q ->
        acc + List.length (Relal.Engine.run_query db q).Relal.Exec.rows)
      0 par_qs
  in
  let time_at_domains d =
    let timed () =
      ignore (par_run () : int) (* warm-up *);
      avg (List.init reps (fun _ -> snd (time (fun () -> ignore (par_run (): int)))))
    in
    if d <= 1 then timed ()
    else begin
      let pool = Putil.Dpool.create ~domains:d in
      Relal.Exec.set_pool (Some pool);
      Fun.protect
        ~finally:(fun () ->
          Relal.Exec.set_pool None;
          Putil.Dpool.shutdown pool)
        timed
    end
  in
  let domain_counts = [ 1; 2; 4; 8 ] in
  let par_results = List.map (fun d -> (d, time_at_domains d)) domain_counts in
  let par_base = List.assoc 1 par_results in
  Printf.printf "\n## Multicore scaling — %s (%d cores on this host)\n"
    par_figure cores;
  Printf.printf "%-10s %12s %10s\n" "domains" "ms_total" "speedup";
  List.iter
    (fun (d, ms) ->
      Printf.printf "%-10d %12.3f %9.2fx\n%!" d ms (par_base /. ms))
    par_results;
  (* ---- sharded profile store: serve-path throughput ---------------- *)
  (* Mixed PROFILE SAVE / PROFILE LOAD pressure through the server core
     (no sockets): with one shard every save excludes everything; with
     N shards only same-shard traffic queues behind it. *)
  let store_threads = 8 and store_per_thread = 100 in
  let store_reqs = store_threads * store_per_thread in
  let store_db =
    Moviedb.Datagen.generate
      (Moviedb.Datagen.scale ~seed:7 (min 300 scale.movies))
  in
  let bench_store shards =
    let module Core = Perso_server.Server_core.Make (Perso_server.Runtime.Threads) in
    let cfg =
      {
        (Perso_server.Server_core.default_config ~socket_path:"<bench>") with
        Perso_server.Server_core.workers = store_threads;
        queue_capacity = store_threads * 4;
        shards;
      }
    in
    let core = Core.create cfg store_db in
    let run tid =
      for i = 0 to store_per_thread - 1 do
        let user = Printf.sprintf "u%02d" (((tid * 7) + i) mod 32) in
        let cmd =
          if i land 1 = 0 then
            (* Degrees vary so every save is an effective mutation, not
               the identical-resave no-op. *)
            Perso_server.Protocol.Profile_save
              {
                user;
                entries =
                  Printf.sprintf "[ GENRE.genre = 'comedy', 0.%d ]"
                    (1 + ((tid + i) mod 9));
              }
          else Perso_server.Protocol.Profile_show user
        in
        ignore
          (Core.submit core Perso_server.Protocol.empty_header cmd
            : Perso_server.Server_core.reply)
      done
    in
    let _, ms =
      time (fun () ->
          let ts = List.init store_threads (fun tid -> Thread.create run tid) in
          List.iter Thread.join ts)
    in
    ignore (Core.stop core : Perso_server.Server_core.drain_outcome);
    ms
  in
  let store_results = List.map (fun s -> (s, bench_store s)) [ 1; 4; 8 ] in
  Printf.printf
    "\n## Sharded profile store — %d threads x %d requests (save/load mix)\n"
    store_threads store_per_thread;
  Printf.printf "%-10s %12s %12s\n" "shards" "ms_total" "req/s";
  List.iter
    (fun (s, ms) ->
      Printf.printf "%-10d %12.3f %12.0f\n%!" s ms
        (float_of_int store_reqs /. ms *. 1000.))
    store_results;
  let path =
    Option.value ~default:"BENCH_EXEC.json" (Sys.getenv_opt "BENCH_EXEC_OUT")
  in
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"bench\": \"exec\",\n  \"scale\": %S,\n  \"reps\": %d,\n"
    scale.label reps;
  Printf.fprintf oc "  \"cores\": %d,\n" cores;
  Printf.fprintf oc "  \"figures\": [\n";
  List.iteri
    (fun i (name, n, ms, rows) ->
      Printf.fprintf oc
        "    {\"name\": %S, \"queries\": %d, \"ms_total\": %.3f, \
         \"ms_per_query\": %.4f, \"rows\": %d}%s\n"
        name n ms
        (ms /. float_of_int (max 1 n))
        rows
        (if i = List.length results - 1 then "" else ","))
    results;
  Printf.fprintf oc "  ],\n";
  Printf.fprintf oc "  \"parallel\": {\"figure\": %S, \"queries\": %d, \"domains\": [\n"
    par_figure (List.length par_qs);
  List.iteri
    (fun i (d, ms) ->
      Printf.fprintf oc
        "    {\"domains\": %d, \"ms_total\": %.3f, \"speedup\": %.3f}%s\n" d ms
        (par_base /. ms)
        (if i = List.length par_results - 1 then "" else ","))
    par_results;
  Printf.fprintf oc "  ]},\n";
  Printf.fprintf oc
    "  \"sharded_store\": {\"threads\": %d, \"requests\": %d, \"configs\": [\n"
    store_threads store_reqs;
  List.iteri
    (fun i (s, ms) ->
      Printf.fprintf oc
        "    {\"shards\": %d, \"ms_total\": %.3f, \"req_per_s\": %.0f}%s\n" s ms
        (float_of_int store_reqs /. ms *. 1000.)
        (if i = List.length store_results - 1 then "" else ","))
    store_results;
  Printf.fprintf oc "  ]},\n  \"total_ms\": %.3f\n}\n" total_ms;
  close_out oc;
  Printf.printf "# wrote %s (total %.3f ms)\n%!" path total_ms

(* --------------------------------------------------------------------- *)
(* Plan-cache benchmark — machine-readable (BENCH_PERSO.json)            *)
(* --------------------------------------------------------------------- *)

(* Cold / warm / edited personalization cost under a Zipf-skewed
   (user, query-template) workload.  Personalization only — no query
   execution — since the cache saves the pipeline, not the executor.
   Four passes over the same request sequence:

     cold         every request runs the full §4 pipeline, no cache
     warm         a primed {!Perso.Perso_cache}; every request hits
     invalidate   primed cache with the patcher OFF, but every 10th
                  request first retunes one of that user's selections
                  and saves it to {!Perso.Profile_store} — consults
                  after an edit recompute cold
     incremental  the same edit sequence with the patcher ON — consults
                  after an edit are spliced when provably sound

   The two edited passes replay the identical edit sequence from the
   same starting profiles (snapshot/restore + a dedicated edit RNG), so
   invalidate vs incremental isolates exactly the patcher's effect.

   Writes BENCH_PERSO.json (override with BENCH_PERSO_OUT); `make check`
   gates on warm being >= 5x faster than cold. *)

let bench_perso () =
  let movies = min 1000 scale.movies in
  let pdb = Moviedb.Datagen.generate (Moviedb.Datagen.scale ~seed:7 movies) in
  let n_users = 8 and n_templates = 12 in
  let users = Array.init n_users (fun i -> Printf.sprintf "u%02d" i) in
  let profiles =
    Array.init n_users (fun i ->
        let p =
          Moviedb.Profile_gen.generate pdb
            {
              Moviedb.Profile_gen.default with
              seed = 900 + i;
              n_selections = 30;
            }
        in
        Profile_store.save pdb ~user:users.(i) p;
        ref p)
  in
  let templates =
    Array.of_list (Moviedb.Workload.queries pdb ~n:n_templates ~seed:210)
  in
  let n_req = 30 * n_users in
  let rng = Putil.Rng.create 4242 in
  let zu = Putil.Zipf.create ~n:n_users ~s:1.1 in
  let zt = Putil.Zipf.create ~n:n_templates ~s:1.1 in
  let reqs =
    List.init n_req (fun _ ->
        (Putil.Zipf.sample zu rng, Putil.Zipf.sample zt rng))
  in
  (* K above the profiles' related-path count: the donor top-K is not
     cut off, so single-selection retunes take the patcher's rescale
     fast path (a full top-K forces its sound cold fallback). *)
  let params = { Personalize.default_params with k = Criteria.top_r 50 } in
  let pass ?cache ?erng ?(edit_every = 0) () =
    (* One sweep over [reqs]; returns total ms inside personalization. *)
    let i = ref 0 in
    List.fold_left
      (fun acc (u, t) ->
        incr i;
        (match erng with
        | Some erng when edit_every > 0 && !i mod edit_every = 0 -> (
            let p = profiles.(u) in
            match Profile.selections !p with
            | [] -> ()
            | sels ->
                let a, _ =
                  List.nth sels (Putil.Rng.int erng (List.length sels))
                in
                let d =
                  Degree.of_float
                    (Float.round ((0.3 +. Putil.Rng.float erng 0.7) *. 1000.)
                    /. 1000.)
                in
                p := Profile.add !p (Atom.Sel a) d;
                Profile_store.save pdb ~user:users.(u) !p)
        | _ -> ());
        let _, ms =
          time (fun () ->
              match cache with
              | None ->
                  ignore
                    (Personalize.personalize ~params pdb !(profiles.(u))
                       templates.(t)
                      : Personalize.outcome)
              | Some c ->
                  ignore
                    (Perso_cache.personalize c ~params ~user:users.(u)
                       !(profiles.(u)) templates.(t)
                      : Personalize.outcome * Perso_cache.source))
        in
        acc +. ms)
      0. reqs
  in
  let snapshot = Array.map (fun p -> !p) profiles in
  let restore () =
    Array.iteri
      (fun i p ->
        p := snapshot.(i);
        Profile_store.save pdb ~user:users.(i) snapshot.(i))
      profiles
  in
  (* One edited pass: restore profiles, prime a fresh cache, then replay
     the edit sequence.  Returns (ms, hits, patched, cold). *)
  let edited ~incremental () =
    restore ();
    let c = Perso_cache.create ~incremental pdb in
    ignore (pass ~cache:c () : float) (* prime *);
    let st0 = Perso_cache.stats c in
    let ms = pass ~cache:c ~erng:(Putil.Rng.create 777) ~edit_every:10 () in
    let st1 = Perso_cache.stats c in
    ( ms,
      st1.Perso_cache.hits - st0.Perso_cache.hits,
      st1.Perso_cache.incremental - st0.Perso_cache.incremental,
      st1.Perso_cache.misses - st0.Perso_cache.misses )
  in
  let ms_cold = pass () in
  let warm_cache = Perso_cache.create pdb in
  ignore (pass ~cache:warm_cache () : float) (* prime *);
  let warm_st0 = Perso_cache.stats warm_cache in
  let ms_warm = pass ~cache:warm_cache () in
  let warm_st = Perso_cache.stats warm_cache in
  let warm_hits = warm_st.Perso_cache.hits - warm_st0.Perso_cache.hits in
  let ms_inv, inv_hits, _, inv_cold = edited ~incremental:false () in
  let ms_inc, inc_hits, inc_patched, inc_cold = edited ~incremental:true () in
  let per ms = ms /. float_of_int n_req in
  let speedup_warm = per ms_cold /. per ms_warm in
  let speedup_inc = per ms_inv /. per ms_inc in
  Printf.printf
    "\n## Plan cache (%d movies, %d users x %d templates, %d requests, Zipf \
     s=1.1)\n"
    movies n_users n_templates n_req;
  Printf.printf "%-12s %12s %14s %30s\n" "mode" "ms_total" "ms_per_query"
    "served";
  Printf.printf "%-12s %12.3f %14.4f %30s\n" "cold" ms_cold (per ms_cold) "-";
  Printf.printf "%-12s %12.3f %14.4f %30s\n" "warm" ms_warm (per ms_warm)
    (Printf.sprintf "%d hits" warm_hits);
  Printf.printf "%-12s %12.3f %14.4f %30s\n" "invalidate" ms_inv (per ms_inv)
    (Printf.sprintf "%d hits, %d cold" inv_hits inv_cold);
  Printf.printf "%-12s %12.3f %14.4f %30s\n%!" "incremental" ms_inc (per ms_inc)
    (Printf.sprintf "%d hits, %d patched, %d cold" inc_hits inc_patched
       inc_cold);
  Printf.printf "# speedup: warm %.1fx vs cold, incremental %.2fx vs \
                 invalidate\n%!"
    speedup_warm speedup_inc;
  let path =
    Option.value ~default:"BENCH_PERSO.json" (Sys.getenv_opt "BENCH_PERSO_OUT")
  in
  let oc = open_out path in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": \"perso\",\n\
    \  \"scale\": %S,\n\
    \  \"movies\": %d,\n\
    \  \"users\": %d,\n\
    \  \"templates\": %d,\n\
    \  \"requests\": %d,\n\
    \  \"zipf_s\": 1.1,\n\
    \  \"modes\": [\n"
    scale.label movies n_users n_templates n_req;
  Printf.fprintf oc
    "    {\"name\": \"cold\", \"ms_total\": %.3f, \"ms_per_query\": %.4f},\n"
    ms_cold (per ms_cold);
  Printf.fprintf oc
    "    {\"name\": \"warm\", \"ms_total\": %.3f, \"ms_per_query\": %.4f, \
     \"hits\": %d},\n"
    ms_warm (per ms_warm) warm_hits;
  Printf.fprintf oc
    "    {\"name\": \"invalidate\", \"ms_total\": %.3f, \"ms_per_query\": \
     %.4f, \"hits\": %d, \"misses\": %d},\n"
    ms_inv (per ms_inv) inv_hits inv_cold;
  Printf.fprintf oc
    "    {\"name\": \"incremental\", \"ms_total\": %.3f, \"ms_per_query\": \
     %.4f, \"hits\": %d, \"incremental\": %d, \"misses\": %d}\n"
    ms_inc (per ms_inc) inc_hits inc_patched inc_cold;
  Printf.fprintf oc
    "  ],\n  \"speedup_warm\": %.2f,\n  \"speedup_incremental\": %.2f\n}\n"
    speedup_warm speedup_inc;
  close_out oc;
  Printf.printf "# wrote %s\n%!" path

(* --------------------------------------------------------------------- *)
(* Durable store benchmark — machine-readable (BENCH_STORE.json)         *)
(* --------------------------------------------------------------------- *)

(* The I/O face of Figure 6: profile size drives record size, which
   drives save (WAL append + fsync) and point-load latency.  Also times
   what only a durable tier has — cold recovery (reopen replaying
   sealed segments + WAL) and compaction.  Writes BENCH_STORE.json
   (override with BENCH_STORE_OUT); `make check` validates it. *)
let bench_store () =
  let module Store = Perso_store.Store in
  Printf.printf "\n== store: durable profile tier (scale=%s) ==\n%!"
    scale.label;
  let movies = max 200 (scale.movies / 4) in
  let db = Moviedb.Datagen.(generate (Moviedb.Datagen.scale ~seed:3 movies)) in
  let sizes, users_per_size =
    match scale.label with
    | "quick" -> ([ 8; 32 ], 48)
    | "paper" -> ([ 8; 32; 128; 512 ], 256)
    | _ -> ([ 8; 32; 128 ], 96)
  in
  let dir = Filename.temp_file "bench_store" "" in
  Sys.remove dir;
  (* Small segments so the workload crosses rotation and compaction. *)
  let config =
    { Store.default_config with segment_bytes = 64 * 1024 }
  in
  let s = ref (Store.open_ ~config dir) in
  let rev = ref 0 in
  let rows =
    List.map
      (fun n_selections ->
        let entries =
          List.init users_per_size (fun i ->
              Perso.Profile_store.entries_of_profile
                (Moviedb.Profile_gen.generate db
                   { Moviedb.Profile_gen.default with seed = i; n_selections }))
        in
        let usernames =
          List.mapi (fun i _ -> Printf.sprintf "s%d-u%03d" n_selections i)
            entries
        in
        let (), save_ms =
          time (fun () ->
              List.iter2
                (fun user es ->
                  incr rev;
                  Store.save !s ~user ~revision:!rev es)
                usernames entries)
        in
        let (), load_ms =
          time (fun () ->
              List.iter
                (fun user -> ignore (Store.load !s ~user))
                usernames)
        in
        let ops = float_of_int users_per_size in
        Printf.printf
          "  size %3d: save %.3f ms/op (%.0f ops/s), load %.3f ms/op\n%!"
          n_selections (save_ms /. ops)
          (1000. /. (save_ms /. ops))
          (load_ms /. ops);
        (n_selections, save_ms /. ops, load_ms /. ops))
      sizes
  in
  let work = Store.stats !s in
  let appends = work.Store.appends in
  Store.close !s;
  let s', reopen_ms = time (fun () -> Store.open_ ~config dir) in
  s := s';
  let before = Store.stats !s in
  let (), compact_ms = time (fun () -> Store.compact_now !s) in
  let after = Store.stats !s in
  Printf.printf
    "  recovery: %d records replayed in %.1f ms; compaction %d -> %d \
     segments in %.1f ms\n%!"
    appends reopen_ms before.Store.segments after.Store.segments compact_ms;
  (* recovery of the compacted store *)
  Store.close !s;
  let s'', reopen2_ms = time (fun () -> Store.open_ ~config dir) in
  let live = (Store.stats s'').Store.live_users in
  Store.close s'';
  let path =
    Option.value ~default:"BENCH_STORE.json" (Sys.getenv_opt "BENCH_STORE_OUT")
  in
  let oc = open_out path in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": \"store\",\n\
    \  \"scale\": %S,\n\
    \  \"movies\": %d,\n\
    \  \"users_per_size\": %d,\n\
    \  \"sizes\": [\n"
    scale.label movies users_per_size;
  List.iteri
    (fun i (n, save_ms, load_ms) ->
      Printf.fprintf oc
        "    {\"selections\": %d, \"save_ms_per_op\": %.4f, \
         \"load_ms_per_op\": %.4f}%s\n"
        n save_ms load_ms
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc
    "  ],\n\
    \  \"workload\": {\"appends\": %d, \"rotations\": %d, \
     \"compactions\": %d},\n\
    \  \"recovery\": {\"records\": %d, \"reopen_ms\": %.3f, \
     \"reopen_compacted_ms\": %.3f, \"live_users\": %d},\n\
    \  \"compaction\": {\"segments_before\": %d, \"segments_after\": %d, \
     \"ms\": %.3f}\n\
     }\n"
    appends work.Store.rotations work.Store.compactions appends reopen_ms
    reopen2_ms live before.Store.segments after.Store.segments compact_ms;
  close_out oc;
  ignore (Sys.command ("rm -rf " ^ Filename.quote dir));
  Printf.printf "# wrote %s\n%!" path

(* --------------------------------------------------------------------- *)
(* Serve-path benchmark — machine-readable (BENCH_SERVE.json)            *)
(* --------------------------------------------------------------------- *)

(* End-to-end: a real [perso_cli serve]-shaped server (socket and all),
   driven by {!Perso_server.Loadgen}'s open-loop Poisson arrivals with
   Zipf-skewed users, once per I/O runtime (`threads` and `evloop`).
   Latency quantiles come from the mergeable log-bucketed histogram;
   every client-side tally is cross-checked against the server's own
   HEALTH ledger delta, so a dropped or double-counted request anywhere
   in either runtime fails the ledger_balanced gate in `make check`.

   On a one-core container threads-vs-evloop throughput is noise — the
   client threads and the server share the core — so the JSON records
   the host's core count and `make check` gates only on sanity
   (ledger balance, quantile monotonicity), never absolute numbers.
   Writes BENCH_SERVE.json; override with BENCH_SERVE_OUT. *)

let bench_serve () =
  let open Perso_server in
  let rate, requests, clients, users =
    match scale.label with
    | "quick" -> (300., 600, 4, 50)
    | "paper" -> (800., 10_000, 8, 200)
    | _ -> (400., 2_000, 4, 100)
  in
  let movies = min 500 scale.movies in
  let sdb = Moviedb.Datagen.generate (Moviedb.Datagen.scale ~seed:11 movies) in
  let sqls =
    Moviedb.Workload.queries sdb ~n:6 ~seed:77
    |> List.map Relal.Sql_print.query_to_string
    |> Array.of_list
  in
  (* Wire-format profile entry lists (one line) for PROFILE SAVE. *)
  let profile_wires =
    Array.init 4 (fun i ->
        Moviedb.Profile_gen.generate sdb
          { Moviedb.Profile_gen.default with seed = 50 + i; n_selections = 15 }
        |> Perso.Profile.to_string
        |> String.split_on_char '\n'
        |> List.map String.trim
        |> List.filter (fun l -> l <> "")
        |> String.concat " ")
  in
  let health_of c =
    match Client.request c "HEALTH" with
    | Ok (Protocol.Stats kvs) -> kvs
    | _ -> failwith "bench serve: HEALTH request failed"
  in
  let stat kvs k =
    match List.assoc_opt k kvs with
    | Some v -> ( match int_of_string_opt v with Some i -> i | None -> 0)
    | None -> 0
  in
  let run_io (io, start_server) =
    let socket_path = Filename.temp_file "bench_serve" ".sock" in
    Sys.remove socket_path;
    let cfg =
      {
        (Server.default_config ~socket_path) with
        Server.workers = 4;
        queue_capacity = 64;
        shards = 4;
        deadline_ms = None;
      }
    in
    let stop_server = start_server cfg in
    Fun.protect ~finally:stop_server (fun () ->
        (* Preseed every user's profile so PERSONALIZE and PROFILE LOAD
           hit real data, then snapshot the ledger: the benchmark is
           reconciled against the delta, not absolute counters. *)
        let c = Client.connect ~wait_ms:5_000. socket_path in
        for u = 0 to users - 1 do
          match
            Client.request c
              (Printf.sprintf "PROFILE SAVE u%d %s" u
                 profile_wires.(u mod Array.length profile_wires))
          with
          | Ok (Protocol.Message _) -> ()
          | _ -> failwith "bench serve: preseed save failed"
        done;
        let h0 = health_of c in
        Client.close c;
        let lcfg =
          {
            (Loadgen.default_config ~socket_path) with
            Loadgen.rate;
            requests;
            clients;
            users;
            seed = 1234;
          }
        in
        let r =
          match Loadgen.run lcfg ~sqls ~profiles:profile_wires with
          | Ok r -> r
          | Error e -> failwith ("bench serve: " ^ Perso.Error.to_string e)
        in
        let c = Client.connect ~wait_ms:5_000. socket_path in
        let h1 = health_of c in
        Client.close c;
        let d k = stat h1 k - stat h0 k in
        (* Client tallies vs the server's ledger delta.  HEALTH probes
           are control-plane (answered off-queue), hence data_sent;
           shed_breaker replies are errors the server also counts in
           completed_err, hence the subtraction. *)
        let shed_total =
          d "shed_queue_full" + d "shed_expired" + d "shed_draining"
          + d "shed_breaker"
        in
        let checks =
          [
            ("ok = completed_ok", r.Loadgen.ok, d "completed_ok");
            ("overloaded = sheds", r.Loadgen.err_overloaded, shed_total);
            ( "err_other = completed_err - shed_breaker",
              r.Loadgen.err_other,
              d "completed_err" - d "shed_breaker" );
            ( "data_sent = accepted + pre-admission sheds",
              r.Loadgen.data_sent,
              d "accepted" + d "shed_queue_full" + d "shed_draining" );
            ("hist count = sent", Putil.Histogram.count r.Loadgen.hist,
              r.Loadgen.sent);
            ("no transport errors", r.Loadgen.err_transport, 0);
          ]
        in
        let balanced =
          List.for_all
            (fun (what, got, want) ->
              if got <> want then
                Printf.printf "# LEDGER MISMATCH (%s): %s: client %d vs server %d\n%!"
                  io what got want;
              got = want)
            checks
        in
        let q p = Putil.Histogram.quantile r.Loadgen.hist p in
        let row =
          Printf.sprintf
            "    {\"io\": %S, \"req_per_s\": %.1f, \"elapsed_s\": %.3f, \
             \"sent\": %d, \"ok\": %d, \"ok_health\": %d, \
             \"err_overloaded\": %d, \"err_other\": %d, \
             \"err_transport\": %d, \"p50_us\": %d, \"p99_us\": %d, \
             \"p999_us\": %d, \"max_us\": %d, \"mean_us\": %.1f, \
             \"shed_queue_full\": %d, \"shed_expired\": %d, \
             \"shed_draining\": %d, \"shed_breaker\": %d, \
             \"ledger_balanced\": %b}"
            io
            (float_of_int r.Loadgen.sent /. r.Loadgen.elapsed_s)
            r.Loadgen.elapsed_s r.Loadgen.sent r.Loadgen.ok
            r.Loadgen.ok_health r.Loadgen.err_overloaded r.Loadgen.err_other
            r.Loadgen.err_transport (q 0.50) (q 0.99) (q 0.999)
            (Putil.Histogram.max_value r.Loadgen.hist)
            (Putil.Histogram.mean r.Loadgen.hist)
            (d "shed_queue_full") (d "shed_expired") (d "shed_draining")
            (d "shed_breaker") balanced
        in
        Printf.printf
          "%-8s %9.1f %9.1f %9.3f %9.3f %9.3f %6d %6d %6s\n%!" io rate
          (float_of_int r.Loadgen.sent /. r.Loadgen.elapsed_s)
          (float_of_int (q 0.50) /. 1e3)
          (float_of_int (q 0.99) /. 1e3)
          (float_of_int (q 0.999) /. 1e3)
          r.Loadgen.ok r.Loadgen.err_overloaded
          (if balanced then "yes" else "NO");
        row)
  in
  Printf.printf
    "\n\
     ## Serve benchmark — open-loop Poisson @ %.0f req/s, %d requests, %d \
     clients, %d Zipf users\n"
    rate requests clients users;
  Printf.printf "%-8s %9s %9s %9s %9s %9s %6s %6s %6s\n" "io" "offered"
    "achieved" "p50_ms" "p99_ms" "p999_ms" "ok" "shed" "ledger";
  let rows =
    List.map run_io
      [
        ("threads", fun cfg ->
            let t = Server.start cfg sdb in
            fun () -> ignore (Server.stop t : Server.drain_outcome));
        ("evloop", fun cfg ->
            let t = Server_ev.start cfg sdb in
            fun () -> ignore (Server_ev.stop t : Server_ev.drain_outcome));
      ]
  in
  let path =
    Option.value ~default:"BENCH_SERVE.json" (Sys.getenv_opt "BENCH_SERVE_OUT")
  in
  let oc = open_out path in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": \"serve\",\n\
    \  \"scale\": %S,\n\
    \  \"cores\": %d,\n\
    \  \"movies\": %d,\n\
    \  \"rate\": %.1f,\n\
    \  \"requests\": %d,\n\
    \  \"clients\": %d,\n\
    \  \"users\": %d,\n\
    \  \"zipf_s\": 1.1,\n\
    \  \"runtimes\": [\n%s\n  ]\n\
     }\n"
    scale.label
    (Domain.recommended_domain_count ())
    movies rate requests clients users
    (String.concat ",\n" rows);
  close_out oc;
  Printf.printf "# wrote %s\n%!" path

(* --------------------------------------------------------------------- *)
(* Driver                                                                *)
(* --------------------------------------------------------------------- *)

let all_figs =
  [
    ("fig6", fig6); ("fig7a", fig7a); ("fig7b", fig7b); ("fig7c", fig7c);
    ("fig8", fig8); ("fig9", fig9); ("fig10", fig10); ("exec", bench_exec);
    ("perso", bench_perso); ("kernels", kernels);
    ("ablation-funcs", ablation_funcs); ("ablation-topn", ablation_topn);
    ("ablation-index", ablation_index); ("ablation-planner", ablation_planner);
    ("store", bench_store); ("serve", bench_serve);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map fst all_figs
  in
  let t0 = now_ms () in
  List.iter
    (fun name ->
      match List.assoc_opt name all_figs with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown figure %s (have: %s)\n" name
            (String.concat ", " (List.map fst all_figs)))
    requested;
  Printf.printf "\n# total bench time: %.1f s\n" ((now_ms () -. t0) /. 1000.)
