(* The full architecture of Figure 1, closed into a loop: the system
   monitors a user's queries (Profile Creation), learns a structured
   profile from them, and uses it to personalize the next request (Query
   Personalization) — no explicit preference input at any point.

   Run with: dune exec examples/learning_loop.exe *)

let () =
  let db = Moviedb.Personas.tiny_db () in

  (* Week 1: the system only observes.  This user keeps asking about
     comedies and about N. Kidman. *)
  let monitored_queries =
    List.map Relal.Sql_parser.parse
      [
        "select m.title from movie m, genre g where m.mid = g.mid and g.genre = 'comedy'";
        "select m.title from movie m, genre g where m.mid = g.mid and g.genre = 'comedy' and m.year = 2003";
        "select m.title from movie m, cast c, actor a where m.mid = c.mid and c.aid = a.aid and a.name = 'N. Kidman'";
        "select m.title from movie m, genre g where m.mid = g.mid and g.genre = 'comedy'";
        "select m.title from movie m, cast c, actor a where m.mid = c.mid and c.aid = a.aid and a.name = 'N. Kidman'";
        "select t.name from theatre t where t.region = 'downtown'";
      ]
  in
  Format.printf "The system monitored %d queries. Learning a profile...@.@."
    (List.length monitored_queries);
  let learned = Perso.Learn.learn db monitored_queries in
  Format.printf "== Learned profile ==@.%s@." (Perso.Profile.to_string learned);

  (* Week 2: the user asks the generic question; the learned profile
     personalizes it. *)
  let query = Moviedb.Workload.tonight_query () in
  let outcome =
    Perso.Personalize.personalize
      ~params:{ Perso.Personalize.default_params with k = Perso.Criteria.Top_r 4 }
      db learned query
  in
  Format.printf "== Preferences selected for 'what is shown tonight?' ==@.";
  print_string (Perso.Explain.selection_report outcome.Perso.Personalize.selected);
  let res = Perso.Personalize.execute db outcome in
  Format.printf "@.== Ranked answer from the learned profile ==@.";
  Format.printf "%a@." (Relal.Exec.pp_result ~max_rows:8) res;

  (* The user later states one preference explicitly; explicit degrees
     survive merging with observations. *)
  let explicit =
    Perso.Profile.of_list
      [
        ( Perso.Atom.sel "director" "name" (Relal.Value.Str "D. Lynch"),
          Perso.Degree.of_float 0.95 );
      ]
  in
  let merged = Perso.Learn.merge ~old_profile:explicit ~learned in
  Format.printf "After merging one explicit preference (D. Lynch, 0.95):@.";
  let outcome2 = Perso.Personalize.personalize db merged query in
  print_string (Perso.Explain.selection_report outcome2.Perso.Personalize.selected)
