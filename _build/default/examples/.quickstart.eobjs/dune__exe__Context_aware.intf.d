examples/context_aware.mli:
