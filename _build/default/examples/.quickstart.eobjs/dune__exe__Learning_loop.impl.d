examples/learning_loop.ml: Format List Moviedb Perso Relal
