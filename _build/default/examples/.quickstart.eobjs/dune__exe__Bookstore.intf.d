examples/bookstore.mli:
