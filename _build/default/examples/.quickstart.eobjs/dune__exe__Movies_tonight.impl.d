examples/movies_tonight.ml: Array Format List Moviedb Perso Relal String
