examples/bookstore.ml: Database Engine Format List Perso Relal Schema Value
