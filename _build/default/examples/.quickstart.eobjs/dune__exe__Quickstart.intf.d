examples/quickstart.mli:
