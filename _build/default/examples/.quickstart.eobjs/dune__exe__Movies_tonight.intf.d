examples/movies_tonight.mli:
