examples/context_aware.ml: Array Format List Moviedb Perso Relal
