examples/quickstart.ml: Format Moviedb Perso Relal
