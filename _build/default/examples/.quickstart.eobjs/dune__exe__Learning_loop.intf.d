examples/learning_loop.mli:
