(* Quickstart: the smallest complete use of the library.

   1. Build (or load) a database with schema metadata.
   2. Write a profile — atomic selections and directed joins with degrees
      of interest.
   3. Personalize a query and read the ranked answers.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* A ready-made movie database (the paper's schema, 12 movies). *)
  let db = Moviedb.Personas.tiny_db () in

  (* A profile, written inline in the paper's Figure-2 text format.
     Degrees of interest are in [0,1]; joins are directed — the left side
     is the relation already in the query. *)
  let profile =
    match
      Perso.Profile.of_string
        {|# what I like
[ MOVIE.mid = GENRE.mid, 0.9 ]
[ MOVIE.mid = CAST.mid, 0.8 ]
[ CAST.aid = ACTOR.aid, 1 ]
[ GENRE.genre = 'comedy', 0.9 ]
[ GENRE.genre = 'sci-fi', 0.6 ]
[ ACTOR.name = 'N. Kidman', 0.9 ]
|}
    with
    | Ok p -> p
    | Error e -> failwith e
  in

  (* The query any movie-listings front end would send. *)
  let sql =
    "select mv.title from movie mv, play pl where mv.mid = pl.mid and pl.date = \
     '2003-07-02'"
  in

  (* Personalize: select the top-K preferences relevant to this query and
     integrate them (MQ method, ranked output). *)
  let params =
    { Perso.Personalize.default_params with k = Perso.Criteria.Top_r 3 }
  in
  let outcome, results = Perso.Personalize.personalize_sql ~params db profile sql in

  print_endline "Preferences the system selected for this query:";
  print_string (Perso.Explain.selection_report outcome.Perso.Personalize.selected);
  print_newline ();
  print_endline "Personalized SQL:";
  print_endline (Relal.Sql_print.query_to_pretty outcome.Perso.Personalize.personalized);
  print_newline ();
  print_endline "Ranked results (most interesting first):";
  Format.printf "%a" (Relal.Exec.pp_result ~max_rows:10) results
