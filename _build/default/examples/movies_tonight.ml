(* The paper's motivating example (§1), end to end: Julie and Rob both
   ask "what is shown tonight?" through the same interface — the same
   SQL query — and receive different, personally ranked answers.

   Run with: dune exec examples/movies_tonight.exe *)

let show_person name profile db query =
  Format.printf "=== %s asks: what is shown tonight? ===@." name;
  let params =
    { Perso.Personalize.default_params with k = Perso.Criteria.Top_r 3 }
  in
  let outcome = Perso.Personalize.personalize ~params db profile query in
  Format.printf "Top preferences selected from %s's profile:@." name;
  print_string (Perso.Explain.selection_report outcome.Perso.Personalize.selected);
  let results = Perso.Personalize.execute db outcome in
  Format.printf "@.%s's ranked answer:@." name;
  Format.printf "%a@." (Relal.Exec.pp_result ~max_rows:6) results;
  (* Top-N delivery (§8): just the best two suggestions, e.g. for an SMS. *)
  let top2 = Perso.Personalize.top_n ~n:2 db outcome in
  Format.printf "Best two picks for %s: %s@.@." name
    (String.concat ", "
       (List.map
          (fun row -> match row.(0) with Relal.Value.Str s -> s | _ -> "?")
          top2.Relal.Exec.rows))

let () =
  let db = Moviedb.Personas.tiny_db () in
  let query = Moviedb.Workload.tonight_query () in

  Format.printf "The interface sends the same query for everyone:@.%s@.@."
    (Relal.Sql_print.query_to_pretty (Relal.Binder.bind db query));

  (* Julie likes comedies and thrillers, D. Lynch, N. Kidman... *)
  show_person "Julie" (Moviedb.Personas.julie ()) db query;

  (* Rob likes sci-fi movies and actress J. Roberts. *)
  show_person "Rob" (Moviedb.Personas.rob ()) db query;

  (* And a brand-new customer with an empty profile gets the plain,
     unranked listing — the personalization process degrades gracefully. *)
  show_person "A new customer" Perso.Profile.empty db query
