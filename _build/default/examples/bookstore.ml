(* The introduction's bookseller, on a schema the library has never seen:
   "When asking Lisa, your favourite bookseller, 'Are there any good new
   books?', you would prefer to receive 'The Order of the Phoenix' and
   'Matisse and Picasso' if you like author J.K. Rowling and you are also
   a fan of 20th century art, instead of 'Essentials of Asian Cuisine'."

   The personalization framework is schema-independent: everything it
   needs — relations, attributes, key/foreign-key metadata — comes from
   the catalog, so a four-table bookstore works exactly like the movie
   database.

   Run with: dune exec examples/bookstore.exe *)

open Relal

let build_bookstore () =
  let db = Database.create () in
  let t = Value.TStr and i = Value.TInt in
  Database.add_table db
    (Schema.make ~name:"book"
       ~cols:[ ("bid", i); ("title", t); ("year", i) ]
       ~key:[ "bid" ] ());
  (* One author per book here, so book->wrote is to-one. *)
  Database.add_table db
    (Schema.make ~name:"wrote" ~cols:[ ("bid", i); ("auid", i) ] ~key:[ "bid" ] ());
  Database.add_table db
    (Schema.make ~name:"author" ~cols:[ ("auid", i); ("name", t) ] ~key:[ "auid" ] ());
  (* A book covers many topics: to-many. *)
  Database.add_table db
    (Schema.make ~name:"topic"
       ~cols:[ ("bid", i); ("subject", t) ]
       ~key:[ "bid"; "subject" ] ());
  Database.add_fk db ~from_:("wrote", "bid") ~to_:("book", "bid");
  Database.add_fk db ~from_:("wrote", "auid") ~to_:("author", "auid");
  Database.add_fk db ~from_:("topic", "bid") ~to_:("book", "bid");
  let s x = Value.Str x and n x = Value.Int x in
  List.iteri
    (fun idx name -> Database.insert db "author" [ n idx; s name ])
    [ "J.K. Rowling"; "H. Matisse"; "A. Chef"; "P. Historian" ];
  List.iter
    (fun (bid, title, year, auid, subjects) ->
      Database.insert db "book" [ n bid; s title; n year ];
      Database.insert db "wrote" [ n bid; n auid ];
      List.iter (fun sub -> Database.insert db "topic" [ n bid; s sub ]) subjects)
    [
      (0, "The Order of the Phoenix", 2003, 0, [ "fantasy" ]);
      (1, "Matisse and Picasso", 2003, 1, [ "art"; "20th century" ]);
      (2, "Essentials of Asian Cuisine", 2003, 2, [ "cooking" ]);
      (3, "Quidditch Through the Ages", 2001, 0, [ "fantasy"; "sports" ]);
      (4, "A History of Rome", 1998, 3, [ "history" ]);
    ];
  db

let () =
  let db = build_bookstore () in
  let d = Perso.Degree.of_float in

  (* Your profile: Rowling and 20th-century art, definitely not cooking. *)
  let profile =
    Perso.Profile.of_list
      [
        (Perso.Atom.join ("book", "bid") ("wrote", "bid"), d 1.0);
        (Perso.Atom.join ("wrote", "auid") ("author", "auid"), d 1.0);
        (Perso.Atom.join ("book", "bid") ("topic", "bid"), d 0.9);
        (Perso.Atom.sel "author" "name" (Value.Str "J.K. Rowling"), d 0.9);
        (Perso.Atom.sel "topic" "subject" (Value.Str "20th century"), d 0.8);
        (Perso.Atom.sel "topic" "subject" (Value.Str "cooking"), d 0.05);
      ]
  in

  (* "Are there any good new books?" *)
  let sql = "select b.title from book b where b.year = 2003" in
  Format.printf "The question, as SQL: %s@.@." sql;

  let params =
    { Perso.Personalize.default_params with k = Perso.Criteria.Top_r 2 }
  in
  let outcome, results = Perso.Personalize.personalize_sql ~params db profile sql in
  Format.printf "Lisa knows you like:@.";
  print_string (Perso.Explain.selection_report outcome.Perso.Personalize.selected);
  Format.printf "@.Lisa's answer:@.%a@." (Relal.Exec.pp_result ~max_rows:10) results;

  (* The same question with no profile: the anonymous answer ('the new
     releases are in aisles 4 and 5'). *)
  let plain = Engine.run_sql db sql in
  Format.printf "Without a profile, everyone gets:@.%a@."
    (Relal.Exec.pp_result ~max_rows:10)
    plain
