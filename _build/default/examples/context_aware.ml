(* Context-driven personalization (§4): "if the user sends a request
   using her mobile phone, then the system may decide to consider a few
   top preferences; when the user switches to her computer, then the
   system may decide to consider all her preferences."

   The same user, the same query, three devices — K/M/L are derived from
   the query context by Personalize.Context policies, and the answers
   shrink or grow accordingly.

   Run with: dune exec examples/context_aware.exe *)

let () =
  let db = Moviedb.Datagen.(generate { default with movies = 1200 }) in
  let profile =
    Moviedb.Profile_gen.generate db
      { Moviedb.Profile_gen.default with seed = 5; n_selections = 30 }
  in
  let query = Moviedb.Workload.tonight_query () in
  let initial = Relal.Engine.run_query db query in
  Format.printf
    "Synthetic database: %d movies; profile: %d selection preferences.@."
    1200
    (Perso.Profile.size profile);
  Format.printf "The unpersonalized query returns %d rows.@.@."
    (List.length initial.Relal.Exec.rows);

  List.iter
    (fun (label, ctx) ->
      let params = Perso.Personalize.Context.params_for ctx in
      let outcome = Perso.Personalize.personalize ~params db profile query in
      let res = Perso.Personalize.execute db outcome in
      let k_desc = Perso.Criteria.to_string params.Perso.Personalize.k in
      Format.printf "%-28s criterion: %-22s preferences used: %2d   rows: %4d@."
        label k_desc
        (List.length outcome.Perso.Personalize.selected)
        (List.length res.Relal.Exec.rows);
      (* Show the top three suggestions for this context. *)
      let top = Perso.Personalize.top_n ~n:3 db outcome in
      List.iter
        (fun row ->
          match (row.(0), row.(Array.length row - 1)) with
          | Relal.Value.Str title, Relal.Value.Float doi ->
              Format.printf "    %-30s (interest %.3f)@." title doi
          | Relal.Value.Str title, _ -> Format.printf "    %s@." title
          | _ -> ())
        top.Relal.Exec.rows;
      Format.printf "@.")
    [
      ( "Phone (tiny screen):",
        { Perso.Personalize.Context.device = Mobile; latency_budget_ms = None } );
      ( "Phone, flaky network:",
        { Perso.Personalize.Context.device = Mobile; latency_budget_ms = Some 30. } );
      ( "Desktop:",
        { Perso.Personalize.Context.device = Desktop; latency_budget_ms = None } );
      ( "Voice assistant:",
        { Perso.Personalize.Context.device = Voice; latency_budget_ms = None } );
    ]
