(* Preference integration (§6): tuple-variable allocation, SQ and MQ
   construction, and — crucially — semantic equivalence of the two
   approaches on live data. *)

open Perso
open Relal

let d = Helpers.deg
let str s = Value.Str s

let setting ?(profile = Moviedb.Personas.julie ()) ?(k = 5) () =
  let db = Moviedb.Personas.tiny_db () in
  let q = Binder.bind db (Moviedb.Workload.tonight_query ()) in
  let qg = Qgraph.of_query db q in
  let pk = Select.select db (Pgraph.of_profile profile) qg (Criteria.top_r k) in
  (db, qg, Integrate.instantiate db qg pk)

(* -------------------------- instantiate --------------------------- *)

let test_instantiate_fresh_variables () =
  let db, qg, insts = setting () in
  ignore qg;
  (* No introduced alias may collide with the query's (mv, pl). *)
  List.iter
    (fun inst ->
      List.iter
        (fun (r : Sql_ast.table_ref) ->
          Alcotest.(check bool)
            (Printf.sprintf "alias %s fresh" r.Sql_ast.alias)
            false
            (List.mem r.Sql_ast.alias [ "mv"; "pl" ]))
        inst.Integrate.trefs)
    insts;
  ignore db

let test_instantiate_to_one_prefix_shared () =
  (* Two director-name preferences must share the DIRECTED/DIRECTOR
     variables (all-to-one prefix), making them explicitly conflicting. *)
  let profile =
    Profile.of_list
      [
        (Atom.join ("movie", "mid") ("directed", "mid"), d 1.0);
        (Atom.join ("directed", "did") ("director", "did"), d 1.0);
        (Atom.sel "director" "name" (str "W. Allen"), d 0.7);
        (Atom.sel "director" "name" (str "D. Lynch"), d 0.8);
      ]
  in
  let _, _, insts = setting ~profile () in
  Alcotest.(check int) "two preferences" 2 (List.length insts);
  let aliases inst =
    List.map (fun (r : Sql_ast.table_ref) -> r.Sql_ast.alias) inst.Integrate.trefs
    |> List.sort compare
  in
  match insts with
  | [ a; b ] ->
      Alcotest.(check (list string)) "same variables" (aliases a) (aliases b)
  | _ -> Alcotest.fail "two expected"

let test_instantiate_to_many_branches () =
  (* Two actor-name preferences reach ACTOR through the to-many CAST
     join: each must get its own CAST/ACTOR variables (§6(b) case 2). *)
  let profile =
    Profile.of_list
      [
        (Atom.join ("movie", "mid") ("cast", "mid"), d 0.8);
        (Atom.join ("cast", "aid") ("actor", "aid"), d 1.0);
        (Atom.sel "actor" "name" (str "I. Rossellini"), d 0.6);
        (Atom.sel "actor" "name" (str "A. Hopkins"), d 0.8);
      ]
  in
  let _, _, insts = setting ~profile () in
  match insts with
  | [ a; b ] ->
      let aliases inst =
        List.map (fun (r : Sql_ast.table_ref) -> r.Sql_ast.alias) inst.Integrate.trefs
      in
      List.iter
        (fun al ->
          Alcotest.(check bool)
            (Printf.sprintf "alias %s not shared" al)
            false
            (List.mem al (aliases b)))
        (aliases a)
  | _ -> Alcotest.fail "two expected"

let test_instantiate_date_coercion () =
  let profile =
    Profile.of_list
      [
        (Atom.join ("movie", "mid") ("play", "mid"), d 0.9);
        (Atom.sel "play" "date" (str "2003-07-05"), d 0.5);
      ]
  in
  let db = Moviedb.Personas.tiny_db () in
  (* Query over MOVIE only so the PLAY preference needs the join. *)
  let q = Binder.bind db (Sql_parser.parse "select m.title from movie m") in
  let qg = Qgraph.of_query db q in
  let pk = Select.select db (Pgraph.of_profile profile) qg (Criteria.top_r 5) in
  let insts = Integrate.instantiate db qg pk in
  match insts with
  | [ inst ] ->
      let sql = Sql_print.pred_to_string inst.Integrate.pred in
      Alcotest.(check bool) "date literal coerced" true
        (let rec contains i =
           i + 12 <= String.length sql
           && (String.sub sql i 12 = "'2003-07-05'" || contains (i + 1))
         in
         contains 0)
  | _ -> Alcotest.fail "one preference expected"

(* ------------------------------ SQ ------------------------------- *)

let test_sq_structure () =
  let db, qg, insts = setting ~k:3 () in
  let sq = Integrate.sq db qg ~mandatory:[] ~optional:insts ~l:2 in
  Alcotest.(check bool) "distinct" true sq.Sql_ast.distinct;
  (* C(3,2) = 3 disjuncts unless conflicts removed some. *)
  (match sq.Sql_ast.where with
  | Sql_ast.P_and ps -> (
      match List.rev ps with
      | Sql_ast.P_or disjuncts :: _ ->
          Alcotest.(check bool) "at most C(3,2) disjuncts" true
            (List.length disjuncts <= 3)
      | _ -> Alcotest.fail "disjunction last")
  | _ -> Alcotest.fail "conjunction at top");
  (* The SQ query must bind and run. *)
  ignore (Engine.run_query db sq)

let test_sq_l0_is_query_plus_mandatory () =
  let db, qg, insts = setting ~k:2 () in
  let sq = Integrate.sq db qg ~mandatory:insts ~optional:[] ~l:0 in
  let base = Engine.run_query db sq in
  (* All mandatory: every returned movie satisfies both preferences. *)
  Alcotest.(check bool) "runs" true (base.Exec.cols <> [||])

let test_sq_errors () =
  let db, qg, insts = setting ~k:2 () in
  Alcotest.(check bool) "l too large" true
    (try
       ignore (Integrate.sq db qg ~mandatory:[] ~optional:insts ~l:5);
       false
     with Integrate.Integration_error _ -> true)

let test_sq_conflicting_combos_dropped () =
  (* Two shared-variable director preferences conflict; with L=2 every
     combination contains the conflicting pair, which must raise. *)
  let profile =
    Profile.of_list
      [
        (Atom.join ("movie", "mid") ("directed", "mid"), d 1.0);
        (Atom.join ("directed", "did") ("director", "did"), d 1.0);
        (Atom.sel "director" "name" (str "W. Allen"), d 0.7);
        (Atom.sel "director" "name" (str "D. Lynch"), d 0.8);
      ]
  in
  let db, qg, insts = setting ~profile () in
  Alcotest.(check bool) "all-conflicting combos rejected" true
    (try
       ignore (Integrate.sq db qg ~mandatory:[] ~optional:insts ~l:2);
       false
     with Integrate.Integration_error _ -> true);
  (* With L=1 both are usable as alternatives. *)
  let sq = Integrate.sq db qg ~mandatory:[] ~optional:insts ~l:1 in
  let res = Engine.run_query db sq in
  Alcotest.(check (slist string String.compare)) "Lynch or Allen tonight"
    [
      "Sweet Chaos"; "Midnight Maze"; "Laughing Waters"; "Blue Velvet Road";
      "Double Take"; "Dream Logic";
    ]
    (Helpers.titles res)

let test_dedup_conjuncts () =
  let p1 = Sql_parser.parse_pred "a.x = 1" in
  let p2 = Sql_parser.parse_pred "a.y = 2" in
  Alcotest.(check int) "dedup" 2
    (List.length (Integrate.dedup_conjuncts [ p1; p2; p1; p1 ]))

(* ------------------------------ MQ ------------------------------- *)

let test_mq_structure () =
  let db, qg, insts = setting ~k:3 () in
  let mq = Integrate.mq db qg ~mandatory:[] ~optional:insts ~l:(`At_least 1) () in
  (match mq.Sql_ast.from with
  | [ Sql_ast.F_derived (C_union_all branches, "temp") ] ->
      Alcotest.(check int) "one partial per optional pref" 3 (List.length branches)
  | _ -> Alcotest.fail "derived union-all");
  Alcotest.(check bool) "grouped" true (mq.Sql_ast.group_by <> []);
  Alcotest.(check bool) "ranked" true (mq.Sql_ast.order_by <> []);
  ignore (Engine.run_query db mq)

let test_mq_unranked () =
  let db, qg, insts = setting ~k:3 () in
  let mq = Integrate.mq ~rank:false db qg ~mandatory:[] ~optional:insts ~l:(`At_least 1) () in
  Alcotest.(check int) "only the projection" 1 (List.length mq.Sql_ast.select);
  Alcotest.(check bool) "no order" true (mq.Sql_ast.order_by = [])

let test_mq_min_doi () =
  let db, qg, insts = setting ~k:5 () in
  let mq = Integrate.mq db qg ~mandatory:[] ~optional:insts ~l:(`Min_doi 0.85) () in
  let res = Engine.run_query db mq in
  List.iter
    (fun row ->
      match row.(Array.length row - 1) with
      | Value.Float f -> Alcotest.(check bool) "row doi above threshold" true (f > 0.85)
      | _ -> Alcotest.fail "doi column expected")
    res.Exec.rows

let test_mq_mandatory_in_every_partial () =
  let db, qg, insts = setting ~k:3 () in
  match insts with
  | top :: rest ->
      let mq = Integrate.mq db qg ~mandatory:[ top ] ~optional:rest ~l:(`At_least 1) () in
      let sql = Sql_print.query_to_string mq in
      let needle = Sql_print.pred_to_string top.Integrate.pred in
      let count_occurrences s sub =
        let n = String.length s and m = String.length sub in
        let c = ref 0 in
        for i = 0 to n - m do
          if String.sub s i m = sub then incr c
        done;
        !c
      in
      Alcotest.(check int) "mandatory condition in both partials" 2
        (count_occurrences sql needle)
  | _ -> Alcotest.fail "need preferences"

(* --------------------- SQ ≡ MQ (live equivalence) --------------------- *)

let titles_set res = List.sort_uniq compare (Helpers.titles res)

let equivalence_case profile k l () =
  let db, qg, insts = setting ~profile ~k () in
  let l = min l (List.length insts) in
  let sq = Integrate.sq db qg ~mandatory:[] ~optional:insts ~l in
  let mq = Integrate.mq ~rank:false db qg ~mandatory:[] ~optional:insts ~l:(`At_least l) () in
  let rs = Engine.run_query db sq and rm = Engine.run_query db mq in
  Alcotest.(check (list string))
    (Printf.sprintf "SQ = MQ for K=%d L=%d" k l)
    (titles_set rs) (titles_set rm)

let test_sq_mq_equivalence_julie () =
  List.iter
    (fun (k, l) -> equivalence_case (Moviedb.Personas.julie ()) k l ())
    [ (1, 1); (3, 1); (3, 2); (5, 1); (5, 2); (5, 3); (8, 2) ]

let test_sq_mq_equivalence_rob () =
  List.iter
    (fun (k, l) -> equivalence_case (Moviedb.Personas.rob ()) k l ())
    [ (2, 1); (3, 1); (3, 2) ]

let test_sq_mq_equivalence_with_mandatory () =
  let db, qg, insts = setting ~k:4 () in
  match insts with
  | top :: rest when List.length rest >= 2 ->
      let sq = Integrate.sq db qg ~mandatory:[ top ] ~optional:rest ~l:1 in
      let mq =
        Integrate.mq ~rank:false db qg ~mandatory:[ top ] ~optional:rest
          ~l:(`At_least 1) ()
      in
      Alcotest.(check (list string)) "SQ = MQ with M=1"
        (titles_set (Engine.run_query db sq))
        (titles_set (Engine.run_query db mq))
  | _ -> Alcotest.fail "need at least 3 preferences"

(* MQ ranking respects the conjunctive degree ordering. *)
let test_mq_rank_order () =
  let db, qg, insts = setting ~k:5 () in
  let mq = Integrate.mq db qg ~mandatory:[] ~optional:insts ~l:(`At_least 1) () in
  let res = Engine.run_query db mq in
  let dois =
    List.map
      (fun row ->
        match row.(Array.length row - 1) with
        | Value.Float f -> f
        | _ -> Alcotest.fail "doi expected")
      res.Exec.rows
  in
  let rec decreasing = function
    | a :: (b :: _ as rest) -> a >= b -. 1e-12 && decreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "ranked descending" true (decreasing dois)

(* Randomized SQ-vs-MQ relation over synthetic databases, profiles and
   queries.  For L = 1 the two approaches coincide.  For L >= 2 they are
   equivalent only when the projection determines the query's tuple
   variables (the paper's implicit setting — project MV.title, prefer
   movies): SQ requires a single witness assignment of the original
   query's variables to satisfy all L conditions, while MQ's UNION lets
   each preference be witnessed by a different base-query row agreeing on
   the projection.  Hence the general law: rows(SQ) ⊆ rows(MQ), with
   equality at L = 1.  (See DESIGN.md, "SQ vs MQ equivalence".) *)
let prop_sq_mq_random =
  let db =
    Moviedb.Datagen.generate
      { Moviedb.Datagen.default with movies = 150; actors = 60; directors = 15; theatres = 6 }
  in
  QCheck.Test.make ~name:"SQ = MQ on random settings" ~count:30
    QCheck.(pair small_int (int_range 1 2))
    (fun (seed, l) ->
      let profile =
        Moviedb.Profile_gen.generate db
          { Moviedb.Profile_gen.default with seed = seed + 50; n_selections = 10 }
      in
      let rng = Putil.Rng.create (seed + 99) in
      let q = Binder.bind db (Moviedb.Workload.random_query db rng) in
      let qg = Qgraph.of_query db q in
      let pk = Select.select db (Pgraph.of_profile profile) qg (Criteria.top_r 6) in
      let insts = Integrate.instantiate db qg pk in
      let l = min l (List.length insts) in
      if insts = [] then true
      else
        match Integrate.sq db qg ~mandatory:[] ~optional:insts ~l with
        | exception Integrate.Integration_error _ -> true (* all combos conflict *)
        | sq ->
            let mq =
              Integrate.mq ~rank:false db qg ~mandatory:[] ~optional:insts
                ~l:(`At_least l) ()
            in
            let rows q' =
              (Engine.run_query db q').Exec.rows
              |> List.map (fun r -> Array.map Value.to_string r |> Array.to_list)
              |> List.sort_uniq compare
            in
            let rs = rows sq and rm = rows mq in
            if l <= 1 then rs = rm
            else List.for_all (fun r -> List.mem r rm) rs)

let () =
  Alcotest.run "integrate"
    [
      ( "instantiate",
        [
          Alcotest.test_case "fresh variables" `Quick test_instantiate_fresh_variables;
          Alcotest.test_case "to-one prefix shared" `Quick
            test_instantiate_to_one_prefix_shared;
          Alcotest.test_case "to-many branches" `Quick test_instantiate_to_many_branches;
          Alcotest.test_case "date coercion" `Quick test_instantiate_date_coercion;
        ] );
      ( "sq",
        [
          Alcotest.test_case "structure" `Quick test_sq_structure;
          Alcotest.test_case "L=0 degenerate" `Quick test_sq_l0_is_query_plus_mandatory;
          Alcotest.test_case "errors" `Quick test_sq_errors;
          Alcotest.test_case "conflicting combos" `Quick test_sq_conflicting_combos_dropped;
          Alcotest.test_case "dedup conjuncts" `Quick test_dedup_conjuncts;
        ] );
      ( "mq",
        [
          Alcotest.test_case "structure" `Quick test_mq_structure;
          Alcotest.test_case "unranked" `Quick test_mq_unranked;
          Alcotest.test_case "min-doi having" `Quick test_mq_min_doi;
          Alcotest.test_case "mandatory in partials" `Quick
            test_mq_mandatory_in_every_partial;
          Alcotest.test_case "rank order" `Quick test_mq_rank_order;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "SQ=MQ (Julie)" `Quick test_sq_mq_equivalence_julie;
          Alcotest.test_case "SQ=MQ (Rob)" `Quick test_sq_mq_equivalence_rob;
          Alcotest.test_case "SQ=MQ with mandatory" `Quick
            test_sq_mq_equivalence_with_mandatory;
          QCheck_alcotest.to_alcotest prop_sq_mq_random;
        ] );
    ]
