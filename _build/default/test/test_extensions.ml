(* The §8 extensions: top-N delivery with early termination, semantic
   (instance-level) relatedness, and implicit profile creation from
   query logs. *)

open Perso
open Relal

let d = Helpers.deg
let str s = Value.Str s
let tiny = Moviedb.Personas.tiny_db

let setting ?(profile = Moviedb.Personas.julie ()) ?(k = 5) () =
  let db = tiny () in
  let q = Binder.bind db (Moviedb.Workload.tonight_query ()) in
  let qg = Qgraph.of_query db q in
  let pk = Select.select db (Pgraph.of_profile profile) qg (Criteria.top_r k) in
  (db, qg, Integrate.instantiate db qg pk)

(* ------------------------------ Top-N ------------------------------ *)

let full_ranking db qg insts ~l =
  let mq = Integrate.mq ~rank:true db qg ~mandatory:[] ~optional:insts ~l:(`At_least l) () in
  let res = Engine.run_query db mq in
  List.map
    (fun row ->
      let n = Array.length row in
      ( Array.sub row 0 (n - 1),
        match row.(n - 1) with Value.Float f -> f | _ -> Alcotest.fail "doi" ))
    res.Exec.rows

let test_topn_matches_full_mq () =
  let db, qg, insts = setting ~k:5 () in
  List.iter
    (fun (n, l) ->
      let full = full_ranking db qg insts ~l in
      let expected = List.filteri (fun i _ -> i < n) full in
      let got = Topn.top_n ~l ~n db qg ~mandatory:[] ~optional:insts () in
      Alcotest.(check int)
        (Printf.sprintf "row count n=%d l=%d" n l)
        (List.length expected) (List.length got.Topn.rows);
      (* Scores must match pairwise (order may differ among exact ties,
         so compare the score multiset). *)
      let scores rows = List.map snd rows |> List.sort compare in
      Alcotest.(check (list (float 1e-9)))
        (Printf.sprintf "scores n=%d l=%d" n l)
        (scores expected)
        (scores (List.map (fun (r, deg) -> (r, Degree.to_float deg)) got.Topn.rows)))
    [ (1, 1); (2, 1); (3, 1); (5, 1); (100, 1); (2, 2); (3, 2) ]

let test_topn_early_termination () =
  (* A genuinely dominant winner: 'Sweet Chaos' satisfies the two top
     preferences (its own title at 0.95 and comedy at 0.9), giving it a
     confirmed score of 1-(0.05)(0.19) = 0.9905 after two partials, while
     any other comedy can reach at most 1-0.19·(0.9)³ and unseen rows at
     most 1-(0.9)³ — the bounds fire after 2 of 5 partials. *)
  let profile =
    Profile.of_list
      [
        (Atom.join ("movie", "mid") ("genre", "mid"), d 1.0);
        (Atom.sel "movie" "title" (str "Sweet Chaos"), d 0.95);
        (Atom.sel "genre" "genre" (str "comedy"), d 0.9);
        (Atom.sel "genre" "genre" (str "drama"), d 0.1);
        (Atom.sel "genre" "genre" (str "romance"), d 0.1);
        (Atom.sel "genre" "genre" (str "mystery"), d 0.1);
      ]
  in
  let db, qg, insts = setting ~profile ~k:10 () in
  Alcotest.(check int) "five optional prefs" 5 (List.length insts);
  let got = Topn.top_n ~n:1 db qg ~mandatory:[] ~optional:insts () in
  Alcotest.(check bool) "stopped early" true
    (got.Topn.stats.Topn.partials_executed < got.Topn.stats.Topn.partials_total);
  (* And still exact: identical to the full ranked MQ's first row. *)
  let full = full_ranking db qg insts ~l:1 in
  match (got.Topn.rows, full) with
  | [ (row, deg) ], (frow, fdeg) :: _ ->
      Alcotest.(check Helpers.value_testable) "same winner" frow.(0) row.(0);
      Helpers.check_float "same score" fdeg (Degree.to_float deg)
  | _ -> Alcotest.fail "one row expected"

let test_topn_edges () =
  let db, qg, insts = setting ~k:3 () in
  let zero = Topn.top_n ~n:0 db qg ~mandatory:[] ~optional:insts () in
  Alcotest.(check int) "n=0" 0 (List.length zero.Topn.rows);
  let none = Topn.top_n ~n:5 db qg ~mandatory:[] ~optional:[] () in
  Alcotest.(check int) "no preferences" 0 (List.length none.Topn.rows);
  Alcotest.(check bool) "negative n rejected" true
    (try
       ignore (Topn.top_n ~n:(-1) db qg ~mandatory:[] ~optional:insts ());
       false
     with Invalid_argument _ -> true)

let test_topn_respects_l () =
  let db, qg, insts = setting ~k:5 () in
  let got = Topn.top_n ~l:2 ~n:10 db qg ~mandatory:[] ~optional:insts () in
  let full = full_ranking db qg insts ~l:2 in
  Alcotest.(check int) "same qualified rows" (List.length full)
    (List.length got.Topn.rows)

(* Randomized: top-N scores must be a prefix of the full MQ ranking's
   score list, on synthetic databases/profiles/queries. *)
let prop_topn_random =
  let db =
    Moviedb.Datagen.generate
      { Moviedb.Datagen.default with movies = 150; actors = 60; directors = 15; theatres = 6 }
  in
  QCheck.Test.make ~name:"top-N = prefix of full ranking (random)" ~count:25
    QCheck.(pair small_int (int_range 1 4))
    (fun (seed, n) ->
      let profile =
        Moviedb.Profile_gen.generate db
          { Moviedb.Profile_gen.default with seed = seed + 70; n_selections = 12 }
      in
      let rng = Putil.Rng.create (seed + 71) in
      let q = Relal.Binder.bind db (Moviedb.Workload.random_query db rng) in
      let qg = Qgraph.of_query db q in
      let pk = Select.select db (Pgraph.of_profile profile) qg (Criteria.top_r 8) in
      let insts = Integrate.instantiate db qg pk in
      if insts = [] then true
      else begin
        let full = full_ranking db qg insts ~l:1 in
        let expected =
          List.filteri (fun i _ -> i < n) full |> List.map snd |> List.sort compare
        in
        let got = Topn.top_n ~n db qg ~mandatory:[] ~optional:insts () in
        let scores =
          List.map (fun (_, deg) -> Degree.to_float deg) got.Topn.rows
          |> List.sort compare
        in
        List.length expected = List.length scores
        && List.for_all2 (fun a b -> abs_float (a -. b) < 1e-9) expected scores
      end)

(* ----------------------------- Semantic ----------------------------- *)

let test_semantic_related_and_conflicting () =
  (* Query about comedies; a W. Allen preference is instance-related
     (Allen directed comedies in the tiny db), an S. Spielberg-style
     no-comedy director is not.  D. Lynch directed only thrillers and
     mysteries there, so he is semantically conflicting with comedies —
     exactly the paper's Tarkowski example. *)
  let db = tiny () in
  let q =
    Binder.bind db
      (Sql_parser.parse
         "select m.title from movie m, genre g where m.mid = g.mid and g.genre = \
          'comedy'")
  in
  let qg = Qgraph.of_query db q in
  let director_path name =
    let p = Path.start ~anchor_tv:"m" ~anchor_rel:"movie" in
    let j1 = Atom.{ j_from_rel = "movie"; j_from_att = "mid"; j_to_rel = "directed"; j_to_att = "mid" } in
    let j2 = Atom.{ j_from_rel = "directed"; j_from_att = "did"; j_to_rel = "director"; j_to_att = "did" } in
    let s = Atom.{ s_rel = "director"; s_att = "name"; s_op = Sql_ast.Eq; s_val = str name } in
    let p = Result.get_ok (Path.extend_join p j1 (d 1.0)) in
    let p = Result.get_ok (Path.extend_join p j2 (d 1.0)) in
    Result.get_ok (Path.extend_sel p s (d 0.7))
  in
  Alcotest.(check bool) "Allen related to comedies" true
    (Semantic.instance_related db qg (director_path "W. Allen"));
  Alcotest.(check bool) "Lynch conflicts with comedies" false
    (Semantic.instance_related db qg (director_path "D. Lynch"));
  Alcotest.(check bool) "unknown director conflicts" false
    (Semantic.instance_related db qg (director_path "M. Tarkowski"))

let test_semantic_filter_in_selection () =
  (* Plugging the instance filter into Select.select keeps only
     satisfiable preferences. *)
  let db = tiny () in
  let q =
    Binder.bind db
      (Sql_parser.parse
         "select m.title from movie m, genre g where m.mid = g.mid and g.genre = \
          'comedy'")
  in
  let qg = Qgraph.of_query db q in
  let g = Pgraph.of_profile (Moviedb.Personas.julie ()) in
  let all = Select.select db g qg (Criteria.top_r 20) in
  let filtered =
    Select.select ~related:(Semantic.instance_related db qg) db g qg
      (Criteria.top_r 20)
  in
  Alcotest.(check bool) "filter removed something" true
    (List.length filtered < List.length all);
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Path.to_condition_string p ^ " satisfiable")
        true
        (Semantic.instance_related db qg p))
    filtered;
  (* Lynch (no comedies) must be among the removed. *)
  let has_lynch l =
    List.exists
      (fun p ->
        match Path.selection p with
        | Some (s, _) -> Value.equal s.Atom.s_val (str "D. Lynch")
        | None -> false)
      l
  in
  Alcotest.(check bool) "Lynch present syntactically" true (has_lynch all);
  Alcotest.(check bool) "Lynch filtered semantically" false (has_lynch filtered)

let test_semantic_superset_property () =
  (* Semantically related ⊆ syntactically related on random settings. *)
  let db = tiny () in
  let q = Binder.bind db (Moviedb.Workload.tonight_query ()) in
  let qg = Qgraph.of_query db q in
  let g = Pgraph.of_profile (Moviedb.Personas.rob ()) in
  let syntactic = Select.select db g qg (Criteria.top_r 50) in
  let semantic = Semantic.filter db qg syntactic in
  Alcotest.(check bool) "subset" true
    (List.for_all (fun p -> List.exists (Path.equal p) syntactic) semantic)

(* ------------------------------ Learn ------------------------------ *)

let test_observe () =
  let db = tiny () in
  let q =
    Sql_parser.parse
      "select m.title from movie m, genre g where m.mid = g.mid and g.genre = \
       'comedy' and m.year = 2003"
  in
  match Learn.observe db q with
  | Error e -> Alcotest.failf "observe: %s" e
  | Ok atoms ->
      Alcotest.(check int) "two selections + one join" 3 (List.length atoms);
      Alcotest.(check bool) "join direction as written" true
        (List.exists
           (fun a -> Atom.equal a (Atom.join ("movie", "mid") ("genre", "mid")))
           atoms);
      Alcotest.(check bool) "comedy selection" true
        (List.exists
           (fun a -> Atom.equal a (Atom.sel "genre" "genre" (str "comedy")))
           atoms)

let test_learn_frequencies () =
  let db = tiny () in
  let comedy_q =
    "select m.title from movie m, genre g where m.mid = g.mid and g.genre = 'comedy'"
  in
  let scifi_q =
    "select m.title from movie m, genre g where m.mid = g.mid and g.genre = 'sci-fi'"
  in
  let log =
    List.map Sql_parser.parse
      [ comedy_q; comedy_q; comedy_q; comedy_q; scifi_q ]
  in
  let p = Learn.learn db log in
  let deg atom = Option.map Degree.to_float (Profile.find p atom) in
  let comedy = deg (Atom.sel "genre" "genre" (str "comedy")) in
  let scifi = deg (Atom.sel "genre" "genre" (str "sci-fi")) in
  (match (comedy, scifi) with
  | Some c, Some s ->
      Alcotest.(check bool) "recurring condition scores higher" true (c > s);
      Alcotest.(check bool) "degrees in [floor, ceil]" true
        (c <= 0.95 && s >= 0.1)
  | _ -> Alcotest.fail "learned atoms missing");
  (* The join was used in every query: highest count of all. *)
  match deg (Atom.join ("movie", "mid") ("genre", "mid")) with
  | Some j -> Alcotest.(check bool) "join learned strongest" true (j >= 0.6)
  | None -> Alcotest.fail "join not learned"

let test_learn_skips_bad_queries () =
  let db = tiny () in
  let log =
    [
      Sql_parser.parse "select m.title from movie m where m.year = 2000";
      Sql_parser.parse "select m.title from nosuch m";
      Sql_parser.parse "select m.title from movie m where m.year = 1999 or m.year = 2000";
    ]
  in
  let p = Learn.learn db log in
  Alcotest.(check int) "only the good query contributes" 1 (Profile.cardinal p)

let test_learn_min_count () =
  let db = tiny () in
  let log =
    List.map Sql_parser.parse
      [
        "select m.title from movie m where m.year = 2000";
        "select m.title from movie m where m.year = 2000";
        "select m.title from movie m where m.year = 1998";
      ]
  in
  let p = Learn.learn ~config:{ Learn.default with min_count = 2 } db log in
  Alcotest.(check bool) "frequent kept" true
    (Profile.find p (Atom.sel "movie" "year" (Value.Int 2000)) <> None);
  Alcotest.(check bool) "singleton dropped" true
    (Profile.find p (Atom.sel "movie" "year" (Value.Int 1998)) = None)

let test_learn_merge () =
  let db = tiny () in
  let explicit =
    Profile.of_list [ (Atom.sel "genre" "genre" (str "comedy"), d 0.9) ]
  in
  let log =
    List.map Sql_parser.parse
      [
        "select m.title from movie m, genre g where m.mid = g.mid and g.genre = 'comedy'";
        "select m.title from movie m, genre g where m.mid = g.mid and g.genre = 'drama'";
      ]
  in
  let learned = Learn.learn db log in
  let merged = Learn.merge ~old_profile:explicit ~learned in
  (* Explicit degree wins over the (lower) learned one. *)
  Alcotest.(check (option Helpers.degree_testable)) "explicit preserved"
    (Some (d 0.9))
    (Profile.find merged (Atom.sel "genre" "genre" (str "comedy")));
  Alcotest.(check bool) "new atoms added" true
    (Profile.find merged (Atom.sel "genre" "genre" (str "drama")) <> None)

let test_learned_profile_personalizes () =
  (* End to end: a user who keeps asking for comedies gets comedies
     ranked first from the learned profile. *)
  let db = tiny () in
  let log =
    List.init 4 (fun _ ->
        Sql_parser.parse
          "select m.title from movie m, genre g where m.mid = g.mid and g.genre \
           = 'comedy'")
  in
  let profile = Learn.learn db log in
  let outcome =
    Personalize.personalize db profile (Moviedb.Workload.tonight_query ())
  in
  let res = Personalize.execute db outcome in
  match Helpers.titles res with
  | first :: _ ->
      Alcotest.(check bool) "a comedy tops the ranking" true
        (List.mem first [ "Sweet Chaos"; "Double Take"; "Laughing Waters"; "Second Spring" ])
  | [] -> Alcotest.fail "no results"

(* ------------------------------- Soft ------------------------------- *)

let movie_genre_scaffold =
  [ (Atom.join ("movie", "mid") ("genre", "mid"), Helpers.deg 0.9) ]

let mv_anchor () = Path.start ~anchor_tv:"mv" ~anchor_rel:"movie"

let test_soft_make_validation () =
  let p = mv_anchor () in
  Alcotest.(check bool) "valid" true
    (Result.is_ok
       (Soft.make ~path:p ~att:"year" ~target:2000. ~tolerance:5. ~weight:(d 0.8)));
  Alcotest.(check bool) "zero tolerance rejected" true
    (Result.is_error
       (Soft.make ~path:p ~att:"year" ~target:2000. ~tolerance:0. ~weight:(d 0.8)));
  let selp =
    Result.get_ok
      (Path.extend_sel
         (Result.get_ok
            (Path.extend_join p
               Atom.{ j_from_rel = "movie"; j_from_att = "mid"; j_to_rel = "genre"; j_to_att = "mid" }
               (d 0.9)))
         Atom.{ s_rel = "genre"; s_att = "genre"; s_op = Sql_ast.Eq; s_val = str "comedy" }
         (d 0.9))
  in
  Alcotest.(check bool) "selection path rejected" true
    (Result.is_error
       (Soft.make ~path:selp ~att:"year" ~target:2000. ~tolerance:5. ~weight:(d 0.8)))

let test_soft_closeness_kernel () =
  let s =
    Result.get_ok
      (Soft.make ~path:(mv_anchor ()) ~att:"year" ~target:2000. ~tolerance:4.
         ~weight:(d 1.0))
  in
  Helpers.check_float "exact" 1.0 (Soft.closeness s 2000.);
  Helpers.check_float "half" 0.5 (Soft.closeness s 2002.);
  Helpers.check_float "at tolerance" 0.0 (Soft.closeness s 2004.);
  Helpers.check_float "beyond" 0.0 (Soft.closeness s 1990.)

let test_soft_row_degrees () =
  (* 'Recent movies': year near 2003 with tolerance 3, weight 0.9,
     directly on the query's movie variable. *)
  let db = tiny () in
  let q = Binder.bind db (Moviedb.Workload.tonight_query ()) in
  let qg = Qgraph.of_query db q in
  let s =
    Result.get_ok
      (Soft.make ~path:(mv_anchor ()) ~att:"year" ~target:2003. ~tolerance:3.
         ~weight:(d 0.9))
  in
  let degs = Soft.row_degrees db qg s in
  let deg_of title =
    List.find_map
      (fun (row, deg) ->
        if Relal.Value.equal row.(0) (str title) then
          Some (Degree.to_float deg)
        else None)
      degs
  in
  (* Laughing Waters is from 2003: full closeness -> 0.9. *)
  Helpers.check_float "2003 movie" 0.9 (Option.get (deg_of "Laughing Waters"));
  (* Sweet Chaos (2002): closeness 2/3 -> 0.6. *)
  Helpers.check_float "2002 movie" 0.6 (Option.get (deg_of "Sweet Chaos"));
  (* Garden of Glass (2000) is exactly at tolerance: dropped. *)
  Alcotest.(check (option (float 1e-9))) "at tolerance omitted" None
    (deg_of "Garden of Glass")

let test_soft_through_join_path () =
  (* Soft preference reached through a join: query over theatres, year
     of the movies they play tonight, damped by the join degrees. *)
  let db = tiny () in
  let q =
    Binder.bind db
      (Sql_parser.parse
         "select t.name from theatre t, play p where t.tid = p.tid and p.date = \
          '2003-07-02'")
  in
  let qg = Qgraph.of_query db q in
  let path =
    Result.get_ok
      (Path.extend_join
         (Path.start ~anchor_tv:"p" ~anchor_rel:"play")
         Atom.{ j_from_rel = "play"; j_from_att = "mid"; j_to_rel = "movie"; j_to_att = "mid" }
         (d 0.8))
  in
  let s =
    Result.get_ok
      (Soft.make ~path ~att:"year" ~target:2003. ~tolerance:2. ~weight:(d 1.0))
  in
  let degs = Soft.row_degrees db qg s in
  Alcotest.(check bool) "some theatres score" true (degs <> []);
  (* Every theatre plays at least one 2003 or 2002 movie tonight; the
     best is a 2003 movie at closeness 1, so max degree = 0.8 (the join
     damping). *)
  List.iter
    (fun (_, deg) ->
      Alcotest.(check bool) "damped by path degree" true
        (Degree.to_float deg <= 0.8 +. 1e-9))
    degs;
  Alcotest.(check bool) "best reaches the damping bound" true
    (List.exists (fun (_, deg) -> abs_float (Degree.to_float deg -. 0.8) < 1e-9) degs)

let test_soft_rank_combination () =
  (* Hard comedy like + soft recency: a 2003 comedy must outrank both a
     2002 comedy and a non-comedy 2003 movie. *)
  let db = tiny () in
  let q = Binder.bind db (Moviedb.Workload.tonight_query ()) in
  let qg = Qgraph.of_query db q in
  let likes =
    let profile =
      Profile.of_list
        (movie_genre_scaffold @ [ (Atom.sel "genre" "genre" (str "comedy"), d 0.8) ])
    in
    Integrate.instantiate db qg
      (Select.select db (Pgraph.of_profile profile) qg (Criteria.top_r 5))
  in
  let soft =
    [
      Result.get_ok
        (Soft.make ~path:(mv_anchor ()) ~att:"year" ~target:2003. ~tolerance:3.
           ~weight:(d 0.9));
    ]
  in
  let ranked = Soft.rank db qg ~likes ~soft () in
  let pos title =
    let rec go i = function
      | [] -> None
      | (row, _) :: rest ->
          if Relal.Value.equal row.(0) (str title) then Some i else go (i + 1) rest
    in
    go 0 ranked
  in
  let p2003_comedy = Option.get (pos "Laughing Waters") in
  let p2002_comedy = Option.get (pos "Sweet Chaos") in
  let p2003_plain = Option.get (pos "Iron Harvest") in
  Alcotest.(check bool) "recent comedy first" true
    (p2003_comedy < p2002_comedy && p2003_comedy < p2003_plain)

(* ----------------------------- Negative ----------------------------- *)

let test_negative_penalty_sinks_rows () =
  (* Likes comedies and thrillers equally; dislikes thrillers' companion
     genre 'mystery' — mystery-thrillers must sink below pure comedies. *)
  let likes =
    Profile.of_list
      (movie_genre_scaffold
      @ [
          (Atom.sel "genre" "genre" (str "comedy"), d 0.8);
          (Atom.sel "genre" "genre" (str "thriller"), d 0.8);
        ])
  in
  let dislikes =
    Profile.of_list
      (movie_genre_scaffold @ [ (Atom.sel "genre" "genre" (str "mystery"), d 0.7) ])
  in
  let db = tiny () in
  let o =
    Negative.personalize db ~likes ~dislikes (Moviedb.Workload.tonight_query ())
  in
  Alcotest.(check int) "two likes" 2 (List.length o.Negative.liked);
  Alcotest.(check int) "one dislike" 1 (List.length o.Negative.disliked);
  let score_of title =
    List.find_map
      (fun r ->
        if Relal.Value.equal r.Negative.row.(0) (str title) then
          Some r.Negative.score
        else None)
      o.Negative.rows
  in
  (* 'Midnight Maze' and 'Dream Logic' are thriller+mystery; 'Blue Velvet
     Road' is thriller only. *)
  (match (score_of "Midnight Maze", score_of "Blue Velvet Road") with
  | Some penalized, Some clean ->
      Alcotest.(check bool) "mystery thriller sinks below clean thriller" true
        (penalized < clean)
  | _ -> Alcotest.fail "expected both rows present");
  (* Penalty recorded on the row. *)
  let mm =
    List.find
      (fun r -> Relal.Value.equal r.Negative.row.(0) (str "Midnight Maze"))
      o.Negative.rows
  in
  Helpers.check_float "penalty = 0.9*0.7 transitive" (0.9 *. 0.7) mm.Negative.penalty

let test_negative_veto () =
  (* A strength-1 dislike is a hard veto: direct selection on the movie
     relation (no join damping). *)
  let likes =
    Profile.of_list
      (movie_genre_scaffold @ [ (Atom.sel "genre" "genre" (str "comedy"), d 0.8) ])
  in
  let dislikes =
    Profile.of_list [ (Atom.sel "movie" "title" (str "Double Take"), d 1.0) ]
  in
  let db = tiny () in
  let o =
    Negative.personalize db ~likes ~dislikes (Moviedb.Workload.tonight_query ())
  in
  Alcotest.(check bool) "vetoed row absent" true
    (List.for_all
       (fun r -> not (Relal.Value.equal r.Negative.row.(0) (str "Double Take")))
       o.Negative.rows);
  Alcotest.(check bool) "other comedies survive" true
    (List.exists
       (fun r -> Relal.Value.equal r.Negative.row.(0) (str "Sweet Chaos"))
       o.Negative.rows)

let test_negative_empty_dislikes_matches_mq () =
  let db, qg, insts = setting ~k:5 () in
  let plain = Negative.rank db qg ~likes:insts ~dislikes:[] () in
  let full = full_ranking db qg insts ~l:1 in
  Alcotest.(check int) "same row count" (List.length full) (List.length plain);
  List.iter2
    (fun (frow, fdeg) r ->
      Alcotest.(check Helpers.value_testable) "same row order" frow.(0)
        r.Negative.row.(0);
      Helpers.check_float "same score" fdeg r.Negative.score)
    full plain

let test_negative_l_threshold () =
  let db, qg, insts = setting ~k:5 () in
  let l1 = Negative.rank ~l:1 db qg ~likes:insts ~dislikes:[] () in
  let l2 = Negative.rank ~l:2 db qg ~likes:insts ~dislikes:[] () in
  Alcotest.(check bool) "L=2 is a subset" true (List.length l2 <= List.length l1)

let () =
  Alcotest.run "extensions"
    [
      ( "topn",
        [
          Alcotest.test_case "matches full MQ" `Quick test_topn_matches_full_mq;
          Alcotest.test_case "early termination" `Quick test_topn_early_termination;
          Alcotest.test_case "edge cases" `Quick test_topn_edges;
          Alcotest.test_case "respects L" `Quick test_topn_respects_l;
          QCheck_alcotest.to_alcotest prop_topn_random;
        ] );
      ( "semantic",
        [
          Alcotest.test_case "related vs conflicting" `Quick
            test_semantic_related_and_conflicting;
          Alcotest.test_case "filter in selection" `Quick test_semantic_filter_in_selection;
          Alcotest.test_case "subset of syntactic" `Quick test_semantic_superset_property;
        ] );
      ( "soft",
        [
          Alcotest.test_case "make validation" `Quick test_soft_make_validation;
          Alcotest.test_case "closeness kernel" `Quick test_soft_closeness_kernel;
          Alcotest.test_case "row degrees" `Quick test_soft_row_degrees;
          Alcotest.test_case "through join path" `Quick test_soft_through_join_path;
          Alcotest.test_case "rank combination" `Quick test_soft_rank_combination;
        ] );
      ( "negative",
        [
          Alcotest.test_case "penalty sinks rows" `Quick test_negative_penalty_sinks_rows;
          Alcotest.test_case "veto" `Quick test_negative_veto;
          Alcotest.test_case "empty dislikes = MQ" `Quick
            test_negative_empty_dislikes_matches_mq;
          Alcotest.test_case "L threshold" `Quick test_negative_l_threshold;
        ] );
      ( "learn",
        [
          Alcotest.test_case "observe" `Quick test_observe;
          Alcotest.test_case "frequencies" `Quick test_learn_frequencies;
          Alcotest.test_case "skips bad queries" `Quick test_learn_skips_bad_queries;
          Alcotest.test_case "min count" `Quick test_learn_min_count;
          Alcotest.test_case "merge" `Quick test_learn_merge;
          Alcotest.test_case "personalizes end-to-end" `Quick
            test_learned_profile_personalizes;
        ] );
    ]
