(* Shared helpers for the test suites. *)

let deg = Perso.Degree.of_float

let check_float = Alcotest.(check (float 1e-9))

let degree_testable =
  Alcotest.testable
    (fun fmt d -> Perso.Degree.pp fmt d)
    (fun a b -> abs_float (Perso.Degree.to_float a -. Perso.Degree.to_float b) < 1e-9)

let value_testable =
  Alcotest.testable Relal.Value.pp Relal.Value.equal

let rows_to_list (r : Relal.Exec.result) =
  List.map Array.to_list r.Relal.Exec.rows

let sorted_rows r = rows_to_list (Relal.Exec.sort_rows r)

let run db sql = Relal.Engine.run_sql db sql

let string_cell = function
  | Relal.Value.Str s -> s
  | v -> Alcotest.failf "expected string cell, got %s" (Relal.Value.to_string v)

let first_col (r : Relal.Exec.result) = List.map (fun row -> row.(0)) r.Relal.Exec.rows

let titles r = List.map string_cell (first_col r)

(* A 3-table schema unrelated to movies, for schema-independence tests:
   the intro's bookstore. *)
let bookstore_db () =
  let open Relal in
  let db = Database.create () in
  let t = Value.TStr and i = Value.TInt in
  Database.add_table db
    (Schema.make ~name:"book" ~cols:[ ("bid", i); ("title", t); ("year", i) ]
       ~key:[ "bid" ] ());
  Database.add_table db
    (Schema.make ~name:"wrote" ~cols:[ ("bid", i); ("auid", i) ] ~key:[ "bid" ] ());
  Database.add_table db
    (Schema.make ~name:"author" ~cols:[ ("auid", i); ("name", t) ] ~key:[ "auid" ] ());
  Database.add_table db
    (Schema.make ~name:"topic" ~cols:[ ("bid", i); ("subject", t) ]
       ~key:[ "bid"; "subject" ] ());
  Database.add_fk db ~from_:("wrote", "bid") ~to_:("book", "bid");
  Database.add_fk db ~from_:("wrote", "auid") ~to_:("author", "auid");
  Database.add_fk db ~from_:("topic", "bid") ~to_:("book", "bid");
  let s x = Value.Str x and n x = Value.Int x in
  List.iteri
    (fun idx name -> Database.insert db "author" [ n idx; s name ])
    [ "J.K. Rowling"; "H. Matisse"; "A. Chef"; "P. Historian" ];
  List.iter
    (fun (bid, title, year, auid, subjects) ->
      Database.insert db "book" [ n bid; s title; n year ];
      Database.insert db "wrote" [ n bid; n auid ];
      List.iter (fun sub -> Database.insert db "topic" [ n bid; s sub ]) subjects)
    [
      (0, "The Order of the Phoenix", 2003, 0, [ "fantasy" ]);
      (1, "Matisse and Picasso", 2003, 1, [ "art"; "20th century" ]);
      (2, "Essentials of Asian Cuisine", 2003, 2, [ "cooking" ]);
      (3, "Quidditch Through the Ages", 2001, 0, [ "fantasy"; "sports" ]);
      (4, "A History of Rome", 1998, 3, [ "history" ]);
    ];
  db
