(* Executor tests: binder diagnostics, every operator, the DNF path, and
   an oracle property — the optimized executor must agree with naive
   cross-product semantics on random queries over a small database. *)

open Relal

let db () = Moviedb.Personas.tiny_db ()
let run = Helpers.run

let check_titles name expected res =
  Alcotest.(check (slist string String.compare)) name expected (Helpers.titles res)

(* ------------------------------ Binder ------------------------------ *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let bind_fails sql fragment =
  let db = db () in
  match Engine.run_sql db sql with
  | _ -> Alcotest.failf "expected bind error (%s)" fragment
  | exception Binder.Bind_error e ->
      if not (contains e fragment) then
        Alcotest.failf "error %S does not mention %S" e fragment

let test_bind_errors () =
  bind_fails "select m.title from nosuch m" "unknown table";
  bind_fails "select m.nope from movie m" "no column";
  bind_fails "select x.title from movie m" "unknown tuple variable";
  bind_fails "select m.title from movie m, movie m" "duplicate tuple variable";
  bind_fails "select mid from movie m, play p" "ambiguous";
  bind_fails "select m.title from movie m where m.title = 3" "compares";
  bind_fails "select m.title from movie m, play p where p.date = 'gibberish'"
    "not a valid date";
  bind_fails "select m.title, count(*) as n from movie m" "GROUP BY";
  bind_fails "select sum(m.title) as s from movie m group by m.title"
    "non-numeric"

let test_bind_resolves_bare_columns () =
  let res = run (db ()) "select title from movie where year = 2003" in
  Alcotest.(check int) "four 2003 movies" 4 (List.length res.Exec.rows)

let test_bind_date_coercion () =
  let r1 = run (db ()) "select m.title from movie m, play p where m.mid = p.mid and p.date = '2003-07-02'" in
  let r2 = run (db ()) "select m.title from movie m, play p where m.mid = p.mid and p.date = '2/7/2003'" in
  Alcotest.(check int) "12 screenings tonight" 12 (List.length r1.Exec.rows);
  Alcotest.(check bool) "paper date format equivalent" true
    (Exec.result_equal_bag r1 r2)

(* ---------------------------- Operators ----------------------------- *)

let test_select_where () =
  check_titles "year filter" [ "Garden of Glass"; "Second Spring" ]
    (run (db ()) "select m.title from movie m where m.year = 2000")

let test_projection_const () =
  let res = run (db ()) "select m.title, 1 as tag from movie m where m.year = 1998" in
  Alcotest.(check int) "one row" 1 (List.length res.Exec.rows);
  Alcotest.(check (array string)) "cols" [| "title"; "tag" |] res.Exec.cols

let test_join_hash () =
  check_titles "Lynch movies"
    [ "Midnight Maze"; "Blue Velvet Road"; "Dream Logic" ]
    (run (db ())
       "select m.title from movie m, directed d, director r where m.mid = d.mid \
        and d.did = r.did and r.name = 'D. Lynch'")

let test_join_self () =
  (* Movies sharing a director with 'Sweet Chaos' (self-join on movie). *)
  let res =
    run (db ())
      "select distinct m2.title from movie m1, directed d1, directed d2, movie m2 \
       where m1.title = 'Sweet Chaos' and m1.mid = d1.mid and d1.did = d2.did and \
       d2.mid = m2.mid"
  in
  check_titles "Allen movies" [ "Sweet Chaos"; "Laughing Waters"; "Double Take" ] res

let test_cross_product_when_no_join () =
  let res = run (db ()) "select m.title, d.name from movie m, director d where m.year = 1998" in
  (* 1 movie from 1998 x 4 directors *)
  Alcotest.(check int) "cartesian" 4 (List.length res.Exec.rows)

let test_distinct () =
  let with_dup = run (db ()) "select g.genre from genre g" in
  let without = run (db ()) "select distinct g.genre from genre g" in
  Alcotest.(check bool) "duplicates removed" true
    (List.length without.Exec.rows < List.length with_dup.Exec.rows);
  let uniq = List.sort_uniq compare (Helpers.titles with_dup) in
  Alcotest.(check int) "distinct = set size" (List.length uniq)
    (List.length without.Exec.rows)

let test_or_dnf_path () =
  (* DISTINCT + OR triggers the DNF split; verify against known data. *)
  let res =
    run (db ())
      "select distinct m.title from movie m, genre g where m.mid = g.mid and \
       (g.genre = 'sci-fi' or g.genre = 'action')"
  in
  check_titles "sci-fi or action"
    [ "Star Harbor"; "The Quiet Comet"; "Iron Harvest" ]
    res

let test_or_without_distinct () =
  (* No DISTINCT: the generic path must still be correct (with duplicates
     from the to-many genre join when both disjuncts hold). *)
  let res =
    run (db ())
      "select m.title from movie m, genre g where m.mid = g.mid and (g.genre = \
       'mystery' or g.genre = 'thriller')"
  in
  (* Midnight Maze (thriller+mystery) twice, Blue Velvet Road once,
     Dream Logic (mystery+thriller) twice. *)
  Alcotest.(check int) "bag semantics" 5 (List.length res.Exec.rows)

let test_group_having_count () =
  let res =
    run (db ())
      "select g.genre, count(*) as n from genre g group by g.genre having \
       count(*) >= 3 order by n desc, g.genre asc"
  in
  List.iter
    (fun row ->
      match row.(1) with
      | Value.Int n -> Alcotest.(check bool) "count >= 3" true (n >= 3)
      | _ -> Alcotest.fail "count type")
    res.Exec.rows;
  (* comedy appears 4 times in tiny_db, thriller 3. *)
  Alcotest.(check bool) "comedy present" true
    (List.mem "comedy" (Helpers.titles res))

let test_aggregates () =
  let res =
    run (db ())
      "select d.name, count(*) as n, min(m.year) as lo, max(m.year) as hi, \
       avg(m.year) as mean, sum(m.year) as total from director d, directed dd, \
       movie m where d.did = dd.did and dd.mid = m.mid group by d.name order by \
       d.name asc"
  in
  Alcotest.(check int) "four directors" 4 (List.length res.Exec.rows);
  let allen = List.find (fun r -> r.(0) = Value.Str "W. Allen") res.Exec.rows in
  Alcotest.(check Helpers.value_testable) "count" (Value.Int 3) allen.(1);
  Alcotest.(check Helpers.value_testable) "min" (Value.Int 2002) allen.(2);
  Alcotest.(check Helpers.value_testable) "max" (Value.Int 2003) allen.(3);
  (match allen.(4) with
  | Value.Float f -> Helpers.check_float "avg" ((2002. +. 2003. +. 2003.) /. 3.) f
  | _ -> Alcotest.fail "avg type");
  Alcotest.(check Helpers.value_testable) "sum" (Value.Int 6008) allen.(5)

let test_aggregate_empty_group_by () =
  let res = run (db ()) "select count(*) as n from movie m where m.year = 1800" in
  (* SQL says one row with count 0 — our engine returns no groups from an
     empty input, a documented deviation... unless it does return 0. *)
  match res.Exec.rows with
  | [] -> ()
  | [ [| Value.Int 0 |] ] -> ()
  | _ -> Alcotest.fail "empty aggregate shape"

let test_union_all () =
  let res =
    run (db ())
      "select t.title from ((select m.title from movie m where m.year = 2000) \
       union all (select m.title from movie m where m.year = 2000)) t group by \
       t.title having count(*) >= 2"
  in
  check_titles "same branch twice" [ "Garden of Glass"; "Second Spring" ] res

let test_union_having_threshold () =
  let res =
    run (db ())
      "select t.title from ((select distinct m.title from movie m, genre g where \
       m.mid = g.mid and g.genre = 'comedy') union all (select distinct m.title \
       from movie m, genre g where m.mid = g.mid and g.genre = 'drama')) t group \
       by t.title having count(*) >= 2"
  in
  (* Only 'Second Spring' is both comedy and drama. *)
  check_titles "intersection via having" [ "Second Spring" ] res

let test_degree_of_conjunction_aggregate () =
  let res =
    run (db ())
      "select t.title, degree_of_conjunction(t.doi, t.pref) as doi from ((select \
       distinct m.title as title, 0.8 as doi, 0 as pref from movie m, genre g \
       where m.mid = g.mid and g.genre = 'comedy') union all (select distinct \
       m.title as title, 0.5 as doi, 1 as pref from movie m, genre g where m.mid \
       = g.mid and g.genre = 'drama')) t group by t.title order by doi desc, \
       t.title asc"
  in
  let first = List.hd res.Exec.rows in
  Alcotest.(check Helpers.value_testable) "both prefs first" (Value.Str "Second Spring")
    first.(0);
  (match first.(1) with
  | Value.Float f -> Helpers.check_float "1-(1-0.8)(1-0.5)" 0.9 f
  | _ -> Alcotest.fail "doi type");
  (* A comedy-only row scores 0.8. *)
  let comedy_only = List.nth res.Exec.rows 1 in
  match comedy_only.(1) with
  | Value.Float f -> Helpers.check_float "single pref" 0.8 f
  | _ -> Alcotest.fail "doi type"

let test_doi_dedupes_pref_ids () =
  (* The same preference reaching a row through two partials must count
     once: duplicate branch with identical pref id. *)
  let res =
    run (db ())
      "select t.title, degree_of_conjunction(t.doi, t.pref) as doi from ((select \
       distinct m.title as title, 0.5 as doi, 0 as pref from movie m where m.year \
       = 2000) union all (select distinct m.title as title, 0.5 as doi, 0 as pref \
       from movie m where m.year = 2000)) t group by t.title"
  in
  List.iter
    (fun row ->
      match row.(1) with
      | Value.Float f -> Helpers.check_float "deduped" 0.5 f
      | _ -> Alcotest.fail "doi type")
    res.Exec.rows

let test_order_by_limit () =
  let res =
    run (db ()) "select m.title, m.year from movie m order by m.year desc, m.title asc limit 3"
  in
  Alcotest.(check int) "limit" 3 (List.length res.Exec.rows);
  match res.Exec.rows with
  | [ r1; r2; r3 ] ->
      Alcotest.(check Helpers.value_testable) "2003 first" (Value.Int 2003) r1.(1);
      Alcotest.(check Helpers.value_testable) "tie alpha" (Value.Str "Double Take") r1.(0);
      Alcotest.(check Helpers.value_testable) "then" (Value.Str "Iron Harvest") r2.(0);
      Alcotest.(check Helpers.value_testable) "then" (Value.Str "Laughing Waters") r3.(0)
  | _ -> Alcotest.fail "row count"

let test_empty_results () =
  let res = run (db ()) "select m.title from movie m where m.year = 1800" in
  Alcotest.(check int) "empty" 0 (List.length res.Exec.rows);
  let res = run (db ()) "select m.title from movie m where false" in
  Alcotest.(check int) "constant false" 0 (List.length res.Exec.rows)

let test_constant_true () =
  let res = run (db ()) "select m.title from movie m where true" in
  Alcotest.(check int) "all rows" 12 (List.length res.Exec.rows)

let test_not_predicate () =
  let res = run (db ()) "select m.title from movie m where not m.year = 2003 and not m.year = 2002" in
  Alcotest.(check int) "negation" 6 (List.length res.Exec.rows)

let test_dnf_with_order_and_limit () =
  (* The DNF path must still honour ORDER BY and LIMIT applied after the
     branch union. *)
  let res =
    run (db ())
      "select distinct m.title, m.year from movie m, genre g where m.mid = g.mid \
       and (g.genre = 'comedy' or g.genre = 'thriller') order by m.year desc, \
       m.title asc limit 3"
  in
  Alcotest.(check int) "limit applied" 3 (List.length res.Exec.rows);
  (match res.Exec.rows with
  | first :: _ ->
      Alcotest.(check Helpers.value_testable) "newest first" (Value.Int 2003)
        first.(1)
  | [] -> Alcotest.fail "rows expected");
  (* Compare the full ordered list against the naive oracle. *)
  let sql =
    "select distinct m.title, m.year from movie m, genre g where m.mid = g.mid \
     and (g.genre = 'comedy' or g.genre = 'thriller') order by m.year desc, \
     m.title asc"
  in
  let d = db () in
  let bound = Binder.bind d (Sql_parser.parse sql) in
  Alcotest.(check bool) "ordered rows equal naive" true
    (Exec.result_equal_list
       (Exec.run ~strategy:`Auto d bound)
       (Exec.run ~strategy:`Naive d bound))

let test_unused_from_table_semantics () =
  (* SQL cross-product semantics: an unreferenced FROM table multiplies
     rows (bag) and gates results on non-emptiness (distinct). *)
  let d = db () in
  let bag = run d "select m.title from movie m, director r where m.year = 1998" in
  Alcotest.(check int) "multiplied by |director|" 4 (List.length bag.Exec.rows);
  (* With an empty unreferenced table, even DISTINCT queries return
     nothing. *)
  let d2 = db () in
  Relal.Table.clear (Database.table d2 "director");
  let empty =
    run d2
      "select distinct m.title from movie m, director r where m.year = 1998 and \
       (m.year = 1998 or m.year = 1999)"
  in
  Alcotest.(check int) "empty unreferenced table empties result" 0
    (List.length empty.Exec.rows)

let test_inequality_joins_as_residual () =
  (* Non-equi cross-tv predicate must be enforced even though it is not a
     hash-join key. *)
  let res =
    run (db ())
      "select distinct m1.title from movie m1, movie m2 where m1.year < m2.year \
       and m2.title = 'Sweet Chaos'"
  in
  (* Movies strictly older than 2002. *)
  Alcotest.(check int) "older movies" 6 (List.length res.Exec.rows)

(* --------------------------- Oracle property --------------------------- *)

(* Random SPJ queries on a reduced tiny db: Auto must equal Naive. *)
let prop_auto_equals_naive =
  let db = db () in
  let gen =
    QCheck.make
      ~print:(fun q -> Sql_print.query_to_string q)
      (QCheck.Gen.map
         (fun seed ->
           let rng = Putil.Rng.create seed in
           Moviedb.Workload.random_query db rng)
         QCheck.Gen.small_int)
  in
  QCheck.Test.make ~name:"auto strategy = naive semantics" ~count:60 gen
    (fun q ->
      let bound = Binder.bind db q in
      let a = Exec.run ~strategy:`Auto db bound in
      let n = Exec.run ~strategy:`Naive db bound in
      Exec.result_equal_bag a n)

(* Disjunctive DISTINCT queries: DNF path vs naive. *)
let prop_dnf_equals_naive =
  let db = db () in
  let genres = [ "comedy"; "thriller"; "sci-fi"; "drama"; "romance"; "mystery" ] in
  let gen =
    QCheck.make
      ~print:(fun (a, b, c) -> Printf.sprintf "%s|%s|%s" a b c)
      QCheck.Gen.(
        map3 (fun a b c -> (a, b, c)) (oneofl genres) (oneofl genres) (oneofl genres))
  in
  QCheck.Test.make ~name:"DNF split = naive on disjunctions" ~count:40 gen
    (fun (a, b, c) ->
      let sql =
        Printf.sprintf
          "select distinct m.title from movie m, genre g, directed dd where m.mid \
           = g.mid and m.mid = dd.mid and (g.genre = '%s' or g.genre = '%s' or \
           (g.genre = '%s' and m.year = 2003))"
          a b c
      in
      let bound = Binder.bind db (Sql_parser.parse sql) in
      Exec.result_equal_bag
        (Exec.run ~strategy:`Auto db bound)
        (Exec.run ~strategy:`Naive db bound))

let () =
  Alcotest.run "exec"
    [
      ( "binder",
        [
          Alcotest.test_case "errors" `Quick test_bind_errors;
          Alcotest.test_case "bare columns" `Quick test_bind_resolves_bare_columns;
          Alcotest.test_case "date coercion" `Quick test_bind_date_coercion;
        ] );
      ( "operators",
        [
          Alcotest.test_case "select/where" `Quick test_select_where;
          Alcotest.test_case "projection const" `Quick test_projection_const;
          Alcotest.test_case "hash join" `Quick test_join_hash;
          Alcotest.test_case "self join" `Quick test_join_self;
          Alcotest.test_case "cross product" `Quick test_cross_product_when_no_join;
          Alcotest.test_case "distinct" `Quick test_distinct;
          Alcotest.test_case "or (dnf path)" `Quick test_or_dnf_path;
          Alcotest.test_case "or (generic path)" `Quick test_or_without_distinct;
          Alcotest.test_case "group/having" `Quick test_group_having_count;
          Alcotest.test_case "aggregates" `Quick test_aggregates;
          Alcotest.test_case "aggregate over empty" `Quick test_aggregate_empty_group_by;
          Alcotest.test_case "union all" `Quick test_union_all;
          Alcotest.test_case "union having threshold" `Quick test_union_having_threshold;
          Alcotest.test_case "degree_of_conjunction" `Quick
            test_degree_of_conjunction_aggregate;
          Alcotest.test_case "doi dedup" `Quick test_doi_dedupes_pref_ids;
          Alcotest.test_case "order by / limit" `Quick test_order_by_limit;
          Alcotest.test_case "empty results" `Quick test_empty_results;
          Alcotest.test_case "constant true" `Quick test_constant_true;
          Alcotest.test_case "not" `Quick test_not_predicate;
          Alcotest.test_case "non-equi residual" `Quick test_inequality_joins_as_residual;
          Alcotest.test_case "dnf order/limit" `Quick test_dnf_with_order_and_limit;
          Alcotest.test_case "unused FROM table" `Quick test_unused_from_table_semantics;
        ] );
      ( "oracle",
        List.map QCheck_alcotest.to_alcotest
          [ prop_auto_equals_naive; prop_dnf_equals_naive ] );
    ]
