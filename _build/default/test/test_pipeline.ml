(* End-to-end personalization (§4): the two-phase pipeline, ranking,
   top-N, context policies, and schema independence (the bookstore). *)

open Perso
open Relal

let d = Helpers.deg

let tiny = Moviedb.Personas.tiny_db

let test_julie_end_to_end () =
  let db = tiny () in
  let params = { Personalize.default_params with k = Criteria.Top_r 3 } in
  let outcome =
    Personalize.personalize ~params db (Moviedb.Personas.julie ())
      (Moviedb.Workload.tonight_query ())
  in
  Alcotest.(check int) "three selected" 3 (List.length outcome.Personalize.selected);
  let res = Personalize.execute db outcome in
  Alcotest.(check (array string)) "title + doi" [| "title"; "doi" |] res.Exec.cols;
  (* Top row: a downtown comedy — 1-(1-0.81)(1-0.8) = 0.962. *)
  (match res.Exec.rows with
  | first :: _ -> (
      match first.(1) with
      | Value.Float f -> Helpers.check_float "top doi" 0.962 f
      | _ -> Alcotest.fail "doi type")
  | [] -> Alcotest.fail "no results");
  (* Every returned movie satisfies at least one preference (L=1). *)
  Alcotest.(check bool) "nonempty" true (res.Exec.rows <> [])

let test_rob_end_to_end () =
  let db = tiny () in
  let outcome =
    Personalize.personalize db (Moviedb.Personas.rob ())
      (Moviedb.Workload.tonight_query ())
  in
  let res = Personalize.execute db outcome in
  let titles = Helpers.titles res in
  (* Rob's sci-fi picks must surface; Star Harbor and The Quiet Comet play
     tonight. *)
  Alcotest.(check bool) "sci-fi present" true
    (List.mem "Star Harbor" titles && List.mem "The Quiet Comet" titles);
  Alcotest.(check bool) "ranked first is sci-fi" true
    (match titles with
    | first :: _ -> List.mem first [ "Star Harbor"; "The Quiet Comet"; "Iron Harvest" ]
    | [] -> false)

let test_personalized_results_subset_of_initial () =
  let db = tiny () in
  let q = Moviedb.Workload.tonight_query () in
  let initial = Engine.run_query db q in
  let outcome = Personalize.personalize db (Moviedb.Personas.julie ()) q in
  let personalized = Personalize.execute db outcome in
  let initial_titles = List.sort_uniq compare (Helpers.titles initial) in
  List.iter
    (fun row ->
      match row.(0) with
      | Value.Str t ->
          Alcotest.(check bool) (t ^ " in initial results") true
            (List.mem t initial_titles)
      | _ -> Alcotest.fail "title type")
    personalized.Exec.rows

let test_top_n () =
  let db = tiny () in
  let outcome =
    Personalize.personalize db (Moviedb.Personas.julie ())
      (Moviedb.Workload.tonight_query ())
  in
  let full = Personalize.execute db outcome in
  let top2 = Personalize.top_n ~n:2 db outcome in
  Alcotest.(check int) "two rows" 2 (List.length top2.Exec.rows);
  Alcotest.(check bool) "prefix of full ranking" true
    (List.for_all2 Relal.Value.equal
       (Array.to_list (List.hd top2.Exec.rows))
       (Array.to_list (List.hd full.Exec.rows)))

let test_sq_params () =
  let db = tiny () in
  let params =
    {
      Personalize.default_params with
      method_ = `SQ;
      rank = false;
      k = Criteria.Top_r 3;
      l = `At_least 2;
    }
  in
  let outcome =
    Personalize.personalize ~params db (Moviedb.Personas.julie ())
      (Moviedb.Workload.tonight_query ())
  in
  Alcotest.(check bool) "SQ has no derived tables" true
    (List.for_all
       (function Sql_ast.F_rel _ -> true | _ -> false)
       outcome.Personalize.personalized.Sql_ast.from);
  ignore (Personalize.execute db outcome)

let test_mandatory_min_degree () =
  (* Julie's join to THEATRE has degree 1; her top selection paths don't
     reach 1, so with `Min_degree 1.0 nothing is mandatory; with 0.8 the
     two top preferences become mandatory. *)
  let db = tiny () in
  let params =
    { Personalize.default_params with k = Criteria.Top_r 3; m = `Min_degree 0.8 }
  in
  let outcome =
    Personalize.personalize ~params db (Moviedb.Personas.julie ())
      (Moviedb.Workload.tonight_query ())
  in
  Alcotest.(check int) "two mandatory (0.81, 0.8, 0.8)" 3
    (List.length outcome.Personalize.mandatory);
  let res = Personalize.execute db outcome in
  (* Mandatory-only personalization: downtown Lynch comedies tonight. *)
  Alcotest.(check bool) "runs" true (res.Exec.cols <> [||])

let test_l_clamped () =
  let db = tiny () in
  let params =
    { Personalize.default_params with k = Criteria.Top_r 2; l = `At_least 10 }
  in
  let outcome =
    Personalize.personalize ~params db (Moviedb.Personas.julie ())
      (Moviedb.Workload.tonight_query ())
  in
  (* L clamps to the 2 available preferences rather than erroring. *)
  ignore (Personalize.execute db outcome);
  Alcotest.(check pass) "clamped" () ()

let test_not_conjunctive_rejected () =
  let db = tiny () in
  Alcotest.(check bool) "OR query rejected" true
    (try
       ignore
         (Personalize.personalize db (Moviedb.Personas.julie ())
            (Sql_parser.parse
               "select m.title from movie m where m.year = 2000 or m.year = 2001"));
       false
     with Qgraph.Not_conjunctive _ -> true)

let test_empty_profile_noop () =
  let db = tiny () in
  let q = Moviedb.Workload.tonight_query () in
  let outcome = Personalize.personalize db Profile.empty q in
  let res = Personalize.execute db outcome in
  let initial = Engine.run_query db q in
  (* No preferences: the personalized query degrades to the initial one
     (distinct). *)
  Alcotest.(check (slist string String.compare)) "same titles"
    (List.sort_uniq compare (Helpers.titles initial))
    (Helpers.titles res)

let test_personalize_sql_wrapper () =
  let db = tiny () in
  let outcome, res =
    Personalize.personalize_sql db (Moviedb.Personas.julie ())
      "select mv.title from movie mv, play pl where mv.mid = pl.mid and pl.date \
       = '2/7/2003'"
  in
  Alcotest.(check bool) "selected something" true (outcome.Personalize.selected <> []);
  Alcotest.(check bool) "produced rows" true (res.Exec.rows <> [])

let test_profile_evolution () =
  (* §3.1: "the query personalization process is not affected by changes
     in the profiles" — re-running after an update uses the new degrees
     with no other machinery. *)
  let db = tiny () in
  let q = Moviedb.Workload.tonight_query () in
  let p1 = Moviedb.Personas.rob () in
  let o1 = Personalize.personalize db p1 q in
  let p2 = Profile.add p1 (Atom.sel "genre" "genre" (Value.Str "drama")) (d 0.95) in
  let o2 = Personalize.personalize db p2 q in
  let top o =
    match o.Personalize.selected with
    | p :: _ -> Path.to_condition_string p
    | [] -> ""
  in
  Alcotest.(check bool) "drama now ranks first for Rob" true (top o1 <> top o2)

let test_context_policies () =
  let open Personalize.Context in
  let mobile = params_for { device = Mobile; latency_budget_ms = None } in
  let desktop = params_for { device = Desktop; latency_budget_ms = None } in
  let rushed = params_for { device = Desktop; latency_budget_ms = Some 10. } in
  let voice = params_for { device = Voice; latency_budget_ms = None } in
  let k_of p = match p.Personalize.k with Criteria.Top_r r -> r | _ -> -1 in
  Alcotest.(check int) "mobile small" 3 (k_of mobile);
  Alcotest.(check int) "desktop larger" 10 (k_of desktop);
  Alcotest.(check int) "latency halves" 5 (k_of rushed);
  Alcotest.(check bool) "voice uses min-doi" true
    (match voice.Personalize.l with `Min_doi _ -> true | _ -> false)

let test_explain_report () =
  let db = tiny () in
  let outcome =
    Personalize.personalize db (Moviedb.Personas.julie ())
      (Moviedb.Workload.tonight_query ())
  in
  let report = Explain.outcome_report outcome in
  List.iter
    (fun needle ->
      let contains s sub =
        let n = String.length s and m = String.length sub in
        let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
        m = 0 || go 0
      in
      Alcotest.(check bool) ("report mentions " ^ needle) true (contains report needle))
    [ "Selected preferences"; "Personalized query"; "union all"; "doi" ]

(* ------------------- Schema independence: books -------------------- *)

let test_bookstore_personalization () =
  (* The intro's bookseller scenario on a completely different schema:
     'Are there any good new books?' personalized by a Rowling +
     20th-century-art profile. *)
  let db = Helpers.bookstore_db () in
  let profile =
    Profile.of_list
      [
        (Atom.join ("book", "bid") ("wrote", "bid"), d 1.0);
        (Atom.join ("wrote", "auid") ("author", "auid"), d 1.0);
        (Atom.join ("book", "bid") ("topic", "bid"), d 0.9);
        (Atom.sel "author" "name" (Value.Str "J.K. Rowling"), d 0.9);
        (Atom.sel "topic" "subject" (Value.Str "20th century"), d 0.8);
        (Atom.sel "topic" "subject" (Value.Str "cooking"), d 0.1);
      ]
  in
  let outcome, res =
    Personalize.personalize_sql
      ~params:{ Personalize.default_params with k = Criteria.Top_r 2 }
      db profile "select b.title from book b where b.year = 2003"
  in
  Alcotest.(check int) "two preferences" 2 (List.length outcome.Personalize.selected);
  let titles = Helpers.titles res in
  Alcotest.(check (slist string String.compare)) "Lisa's answer"
    [ "The Order of the Phoenix"; "Matisse and Picasso" ]
    titles;
  (* And the cooking book is exactly what she does NOT get. *)
  Alcotest.(check bool) "no cuisine" true
    (not (List.mem "Essentials of Asian Cuisine" titles))

let () =
  Alcotest.run "pipeline"
    [
      ( "end-to-end",
        [
          Alcotest.test_case "Julie" `Quick test_julie_end_to_end;
          Alcotest.test_case "Rob" `Quick test_rob_end_to_end;
          Alcotest.test_case "subset of initial" `Quick
            test_personalized_results_subset_of_initial;
          Alcotest.test_case "top-N" `Quick test_top_n;
          Alcotest.test_case "SQ params" `Quick test_sq_params;
          Alcotest.test_case "mandatory by degree" `Quick test_mandatory_min_degree;
          Alcotest.test_case "L clamped" `Quick test_l_clamped;
          Alcotest.test_case "rejects non-conjunctive" `Quick
            test_not_conjunctive_rejected;
          Alcotest.test_case "empty profile no-op" `Quick test_empty_profile_noop;
          Alcotest.test_case "sql wrapper" `Quick test_personalize_sql_wrapper;
          Alcotest.test_case "profile evolution" `Quick test_profile_evolution;
          Alcotest.test_case "context policies" `Quick test_context_policies;
          Alcotest.test_case "explain report" `Quick test_explain_report;
        ] );
      ( "bookstore",
        [ Alcotest.test_case "schema independence" `Quick test_bookstore_personalization ] );
    ]
