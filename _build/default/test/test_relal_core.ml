(* Unit tests for the storage layer: values, schemas, tables, catalog. *)

open Relal

let v = Helpers.value_testable

(* ------------------------------ Value ------------------------------ *)

let test_value_compare () =
  Alcotest.(check bool) "int order" true (Value.compare (Int 1) (Int 2) < 0);
  Alcotest.(check bool) "mixed numeric" true
    (Value.compare (Int 1) (Float 1.5) < 0);
  Alcotest.(check bool) "numeric equal across types" true
    (Value.compare (Float 2.0) (Int 2) = 0);
  Alcotest.(check bool) "string order" true
    (Value.compare (Str "a") (Str "b") < 0);
  Alcotest.(check bool) "null first" true (Value.compare Null (Int (-100)) < 0);
  Alcotest.(check bool) "date order" true
    (Value.compare (Value.date_of_ymd 2003 7 1) (Value.date_of_ymd 2003 7 2) < 0)

let test_value_compare_incompatible () =
  Alcotest.check_raises "str vs int"
    (Invalid_argument "Value.compare: incompatible values (string, int)")
    (fun () -> ignore (Value.compare (Str "x") (Int 1)))

let test_value_equal () =
  Alcotest.(check bool) "int/float eq" true (Value.equal (Int 3) (Float 3.));
  Alcotest.(check bool) "null eq null" true (Value.equal Null Null);
  Alcotest.(check bool) "null ne int" false (Value.equal Null (Int 0));
  Alcotest.(check bool) "case-sensitive strings" false
    (Value.equal (Str "A") (Str "a"))

let test_value_hash_consistent () =
  Alcotest.(check bool) "equal values hash equal" true
    (Value.hash (Int 3) = Value.hash (Float 3.))

let test_value_dates () =
  Alcotest.(check v) "iso parse" (Value.date_of_ymd 2003 7 2)
    (Option.get (Value.parse_date "2003-07-02"));
  Alcotest.(check v) "paper format parse" (Value.date_of_ymd 2003 7 2)
    (Option.get (Value.parse_date "2/7/2003"));
  Alcotest.(check (option v)) "garbage" None (Value.parse_date "not-a-date");
  Alcotest.(check (option v)) "impossible date" None (Value.parse_date "2003-02-30");
  Alcotest.check_raises "month 13"
    (Invalid_argument "Value.date_of_ymd: month out of range") (fun () ->
      ignore (Value.date_of_ymd 2003 13 1));
  (* Leap years. *)
  Alcotest.(check bool) "2004-02-29 valid" true
    (Value.parse_date "2004-02-29" <> None);
  Alcotest.(check (option v)) "1900-02-29 invalid" None (Value.parse_date "1900-02-29")

let test_value_to_string () =
  Alcotest.(check string) "string quoting" "'O''Hara'" (Value.to_string (Str "O'Hara"));
  Alcotest.(check string) "int" "42" (Value.to_string (Int 42));
  Alcotest.(check string) "float keeps dot" "2.0" (Value.to_string (Float 2.));
  Alcotest.(check string) "date iso" "'2003-07-02'"
    (Value.to_string (Value.date_of_ymd 2003 7 2));
  Alcotest.(check string) "null" "NULL" (Value.to_string Null);
  Alcotest.(check string) "bool" "TRUE" (Value.to_string (Bool true))

(* ------------------------------ Schema ------------------------------ *)

let movie_schema () =
  Schema.make ~name:"movie"
    ~cols:[ ("mid", Value.TInt); ("title", Value.TStr); ("year", Value.TInt) ]
    ~key:[ "mid" ] ()

let test_schema_basics () =
  let s = movie_schema () in
  Alcotest.(check string) "name" "movie" (Schema.name s);
  Alcotest.(check int) "arity" 3 (Schema.arity s);
  Alcotest.(check (option int)) "col index" (Some 1) (Schema.col_index s "title");
  Alcotest.(check (option int)) "case-insensitive" (Some 1) (Schema.col_index s "TITLE");
  Alcotest.(check (option int)) "missing col" None (Schema.col_index s "nope");
  Alcotest.(check bool) "mid unique (single pk)" true (Schema.is_unique_col s "mid");
  Alcotest.(check bool) "title not unique" false (Schema.is_unique_col s "title")

let test_schema_composite_key_not_unique () =
  let s =
    Schema.make ~name:"genre"
      ~cols:[ ("mid", Value.TInt); ("genre", Value.TStr) ]
      ~key:[ "mid"; "genre" ] ()
  in
  Alcotest.(check bool) "composite key column not unique alone" false
    (Schema.is_unique_col s "mid")

let test_schema_unique_constraint () =
  let s =
    Schema.make ~name:"u"
      ~cols:[ ("a", Value.TInt); ("b", Value.TStr) ]
      ~key:[ "a" ] ~unique:[ "b" ] ()
  in
  Alcotest.(check bool) "declared unique" true (Schema.is_unique_col s "b")

let test_schema_validation () =
  Alcotest.check_raises "duplicate column"
    (Invalid_argument "Schema.make: duplicate column t.a") (fun () ->
      ignore (Schema.make ~name:"t" ~cols:[ ("a", Value.TInt); ("A", Value.TStr) ] ()));
  Alcotest.check_raises "key not a column"
    (Invalid_argument "Schema.make: key column z not in table t") (fun () ->
      ignore (Schema.make ~name:"t" ~cols:[ ("a", Value.TInt) ] ~key:[ "z" ] ()))

(* ------------------------------ Table ------------------------------ *)

let test_table_insert_scan () =
  let t = Table.create (movie_schema ()) in
  Table.insert_values t [ Int 1; Str "A"; Int 2000 ];
  Table.insert_values t [ Int 2; Str "B"; Int 2001 ];
  Alcotest.(check int) "cardinality" 2 (Table.cardinality t);
  Alcotest.(check v) "get row" (Str "B") (Table.get t 1).(1);
  let sum = Table.fold t ~init:0 ~f:(fun acc r -> acc + match r.(0) with Int i -> i | _ -> 0) in
  Alcotest.(check int) "fold" 3 sum

let test_table_type_checks () =
  let t = Table.create (movie_schema ()) in
  Alcotest.check_raises "wrong arity"
    (Invalid_argument "Table.insert: arity 2, expected 3 in movie") (fun () ->
      Table.insert_values t [ Int 1; Str "A" ]);
  Alcotest.check_raises "wrong type"
    (Invalid_argument "Table.insert: movie.title expects string, got int")
    (fun () -> Table.insert_values t [ Int 1; Int 2; Int 3 ]);
  (* Nulls accepted anywhere; int widens into float column but not vice versa. *)
  Table.insert_values t [ Int 1; Null; Int 2000 ];
  Alcotest.(check int) "null ok" 1 (Table.cardinality t)

let test_table_lookup_scan_vs_index () =
  let t = Table.create (movie_schema ()) in
  for i = 0 to 99 do
    Table.insert_values t [ Int i; Str (if i mod 10 = 0 then "round" else "x"); Int i ]
  done;
  let without_index = Table.lookup t "title" (Str "round") in
  Table.build_index t "title";
  let with_index = Table.lookup t "title" (Str "round") in
  Alcotest.(check int) "scan finds 10" 10 (List.length without_index);
  Alcotest.(check int) "index finds same" 10 (List.length with_index);
  (* Index stays in sync with later inserts. *)
  Table.insert_values t [ Int 100; Str "round"; Int 100 ];
  Alcotest.(check int) "index updated" 11 (List.length (Table.lookup t "title" (Str "round")))

let test_table_clear () =
  let t = Table.create (movie_schema ()) in
  Table.build_index t "mid";
  Table.insert_values t [ Int 1; Str "A"; Int 2000 ];
  Table.clear t;
  Alcotest.(check int) "empty" 0 (Table.cardinality t);
  Alcotest.(check int) "index emptied" 0 (List.length (Table.lookup t "mid" (Int 1)))

(* ----------------------------- Database ----------------------------- *)

let test_database_catalog () =
  let db = Moviedb.Movie_schema.create () in
  Alcotest.(check int) "eight tables" 8 (List.length (Database.tables db));
  Alcotest.(check bool) "mem" true (Database.mem_table db "MOVIE");
  Alcotest.(check bool) "not mem" false (Database.mem_table db "nope");
  Alcotest.(check int) "seven fks" 7 (List.length (Database.fks db))

let test_database_duplicate_table () =
  let db = Database.create () in
  Database.add_table db (movie_schema ());
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Database.add_table: duplicate table movie") (fun () ->
      Database.add_table db (movie_schema ()))

let test_database_fk_validation () =
  let db = Database.create () in
  Database.add_table db (movie_schema ());
  Alcotest.(check bool) "unknown table rejected" true
    (try
       Database.add_fk db ~from_:("movie", "mid") ~to_:("nope", "x");
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "type mismatch rejected" true
    (try
       Database.add_fk db ~from_:("movie", "title") ~to_:("movie", "mid");
       false
     with Invalid_argument _ -> true)

let test_join_cardinality () =
  let db = Moviedb.Movie_schema.create () in
  (* play.mid -> movie.mid: movie.mid is a single-column key, so to-one. *)
  Alcotest.(check bool) "play->movie to-one" true
    (Database.join_is_to_one db ~from_:("play", "mid") ~to_:("movie", "mid"));
  (* movie.mid -> genre.mid: genre's key is composite, so to-many. *)
  Alcotest.(check bool) "movie->genre to-many" false
    (Database.join_is_to_one db ~from_:("movie", "mid") ~to_:("genre", "mid"));
  Alcotest.(check bool) "movie->directed to-one" true
    (Database.join_is_to_one db ~from_:("movie", "mid") ~to_:("directed", "mid"));
  Alcotest.(check bool) "movie->cast to-many" false
    (Database.join_is_to_one db ~from_:("movie", "mid") ~to_:("cast", "mid"));
  Alcotest.(check bool) "cast->actor to-one" true
    (Database.join_is_to_one db ~from_:("cast", "aid") ~to_:("actor", "aid"))

let () =
  Alcotest.run "relal-core"
    [
      ( "value",
        [
          Alcotest.test_case "compare" `Quick test_value_compare;
          Alcotest.test_case "compare incompatible" `Quick test_value_compare_incompatible;
          Alcotest.test_case "equal" `Quick test_value_equal;
          Alcotest.test_case "hash" `Quick test_value_hash_consistent;
          Alcotest.test_case "dates" `Quick test_value_dates;
          Alcotest.test_case "to_string" `Quick test_value_to_string;
        ] );
      ( "schema",
        [
          Alcotest.test_case "basics" `Quick test_schema_basics;
          Alcotest.test_case "composite key" `Quick test_schema_composite_key_not_unique;
          Alcotest.test_case "unique constraint" `Quick test_schema_unique_constraint;
          Alcotest.test_case "validation" `Quick test_schema_validation;
        ] );
      ( "table",
        [
          Alcotest.test_case "insert/scan" `Quick test_table_insert_scan;
          Alcotest.test_case "type checks" `Quick test_table_type_checks;
          Alcotest.test_case "lookup scan vs index" `Quick test_table_lookup_scan_vs_index;
          Alcotest.test_case "clear" `Quick test_table_clear;
        ] );
      ( "database",
        [
          Alcotest.test_case "catalog" `Quick test_database_catalog;
          Alcotest.test_case "duplicate table" `Quick test_database_duplicate_table;
          Alcotest.test_case "fk validation" `Quick test_database_fk_validation;
          Alcotest.test_case "join cardinality" `Quick test_join_cardinality;
        ] );
    ]
