(* Paths, conflicts, criteria, the query graph, and the Preference
   Selection algorithm — including Theorem 1 (ordered emission) and
   Theorem 2 (completeness vs the brute-force enumerator) on random
   profiles and queries. *)

open Perso
open Relal

let d = Helpers.deg
let str s = Value.Str s

let db () = Moviedb.Movie_schema.create ()

(* The exact profile of Figure 2/3 (no theatre-region selection). *)
let julie_paper () =
  Profile.remove (Moviedb.Personas.julie ())
    (Atom.sel "theatre" "region" (str "downtown"))

let tonight_qg db =
  Qgraph.of_query db (Binder.bind db (Moviedb.Workload.tonight_query ()))

(* ------------------------------ Path ------------------------------ *)

let genre_join = Atom.{ j_from_rel = "movie"; j_from_att = "mid"; j_to_rel = "genre"; j_to_att = "mid" }
let comedy_sel = Atom.{ s_rel = "genre"; s_att = "genre"; s_op = Sql_ast.Eq; s_val = str "comedy" }

let test_path_build () =
  let p0 = Path.start ~anchor_tv:"mv" ~anchor_rel:"movie" in
  Alcotest.(check bool) "empty path is not a selection" false (Path.is_selection p0);
  Alcotest.(check int) "length 0" 0 (Path.length p0);
  let p1 = Result.get_ok (Path.extend_join p0 genre_join (d 0.9)) in
  Alcotest.(check string) "ends at genre" "genre" (Path.end_rel p1);
  let p2 = Result.get_ok (Path.extend_sel p1 comedy_sel (d 0.9)) in
  Alcotest.(check bool) "now a selection" true (Path.is_selection p2);
  Helpers.check_float "degree is product" 0.81 (Degree.to_float p2.Path.degree);
  Alcotest.(check string) "condition string"
    "MOVIE.mid = GENRE.mid and GENRE.genre = 'comedy'"
    (Path.to_condition_string p2)

let test_path_errors () =
  let p0 = Path.start ~anchor_tv:"mv" ~anchor_rel:"movie" in
  let p1 = Result.get_ok (Path.extend_join p0 genre_join (d 0.9)) in
  (* Wrong source relation. *)
  Alcotest.(check bool) "non-composable join" true
    (Result.is_error (Path.extend_join p1 genre_join (d 0.9)));
  (* Cycle back to movie. *)
  let back = Atom.reverse_join genre_join in
  Alcotest.(check bool) "cycle rejected" true
    (Result.is_error (Path.extend_join p1 back (d 0.9)));
  (* Selection on the wrong relation. *)
  Alcotest.(check bool) "selection not at end" true
    (Result.is_error (Path.extend_sel p0 comedy_sel (d 0.9)));
  (* Extending past a selection. *)
  let p2 = Result.get_ok (Path.extend_sel p1 comedy_sel (d 0.9)) in
  Alcotest.(check bool) "terminated path frozen" true
    (Result.is_error (Path.extend_join p2 genre_join (d 0.9)))

(* ----------------------------- Qgraph ----------------------------- *)

let test_qgraph_extraction () =
  let db = db () in
  let qg = tonight_qg db in
  Alcotest.(check (list (pair string string))) "tvs"
    [ ("mv", "movie"); ("pl", "play") ]
    (Qgraph.tvs qg);
  Alcotest.(check (list string)) "relations" [ "movie"; "play" ] (Qgraph.relations qg);
  Alcotest.(check bool) "mem" true (Qgraph.mem_relation qg "MOVIE");
  Alcotest.(check int) "one selection (the date)" 1
    (List.length (Qgraph.all_selections qg));
  Alcotest.(check int) "date on pl" 1 (List.length (Qgraph.selections_on qg "pl"))

let test_qgraph_rejects_disjunctions () =
  let db = db () in
  let q =
    Binder.bind db
      (Sql_parser.parse
         "select m.title from movie m, genre g where m.mid = g.mid and (g.genre = \
          'a' or g.genre = 'b')")
  in
  Alcotest.(check bool) "OR rejected" true
    (try
       ignore (Qgraph.of_query db q);
       false
     with Qgraph.Not_conjunctive _ -> true)

let test_qgraph_replicated_relation () =
  let db = db () in
  let q =
    Binder.bind db
      (Sql_parser.parse "select m1.title from movie m1, movie m2 where m1.year = m2.year")
  in
  let qg = Qgraph.of_query db q in
  Alcotest.(check (list string)) "two tvs one relation" [ "m1"; "m2" ]
    (Qgraph.tvs_of_rel qg "movie")

(* ---------------------------- Conflict ----------------------------- *)

let path_of db anchor_tv anchor_rel steps sel =
  let g = ignore db in
  ignore g;
  let p = ref (Path.start ~anchor_tv ~anchor_rel) in
  List.iter
    (fun (j, deg) -> p := Result.get_ok (Path.extend_join !p j (d deg)))
    steps;
  (match sel with
  | Some (s, deg) -> p := Result.get_ok (Path.extend_sel !p s (d deg))
  | None -> ());
  !p

let mk_sel rel att v = Atom.{ s_rel = rel; s_att = att; s_op = Sql_ast.Eq; s_val = str v }
let mk_join (r1, a1) (r2, a2) =
  Atom.{ j_from_rel = r1; j_from_att = a1; j_to_rel = r2; j_to_att = a2 }

let test_conflict_same_attribute_no_joins () =
  let db = db () in
  let p1 = path_of db "th" "theatre" [] (Some (mk_sel "theatre" "region" "uptown", 0.5)) in
  let p2 = path_of db "th" "theatre" [] (Some (mk_sel "theatre" "region" "downtown", 0.5)) in
  Alcotest.(check bool) "regions conflict" true (Conflict.paths_conflict db p1 p2);
  Alcotest.(check bool) "same value no conflict" false (Conflict.paths_conflict db p1 p1)

let test_conflict_to_one_chain () =
  let db = db () in
  let j = mk_join ("play", "mid") ("movie", "mid") in
  let p1 = path_of db "pl" "play" [ (j, 1.0) ] (Some (mk_sel "movie" "title" "A", 0.5)) in
  let p2 = path_of db "pl" "play" [ (j, 1.0) ] (Some (mk_sel "movie" "title" "B", 0.5)) in
  Alcotest.(check bool) "one movie per play: titles conflict" true
    (Conflict.paths_conflict db p1 p2)

let test_no_conflict_to_many () =
  let db = db () in
  let j = mk_join ("movie", "mid") ("genre", "mid") in
  let p1 = path_of db "mv" "movie" [ (j, 0.9) ] (Some (mk_sel "genre" "genre" "comedy", 0.9)) in
  let p2 = path_of db "mv" "movie" [ (j, 0.9) ] (Some (mk_sel "genre" "genre" "thriller", 0.7)) in
  Alcotest.(check bool) "genres do not conflict (to-many)" false
    (Conflict.paths_conflict db p1 p2)

let test_no_conflict_different_anchor_or_joins () =
  let db = db () in
  let p1 = path_of db "th" "theatre" [] (Some (mk_sel "theatre" "region" "uptown", 0.5)) in
  let p2 = path_of db "th2" "theatre" [] (Some (mk_sel "theatre" "region" "downtown", 0.5)) in
  Alcotest.(check bool) "different anchors" false (Conflict.paths_conflict db p1 p2);
  let j = mk_join ("movie", "mid") ("directed", "mid") in
  let j2 = mk_join ("directed", "did") ("director", "did") in
  let p3 =
    path_of db "mv" "movie" [ (j, 1.0); (j2, 1.0) ]
      (Some (mk_sel "director" "name" "A", 0.5))
  in
  Alcotest.(check bool) "different join chains" false (Conflict.paths_conflict db p1 p3)

let test_conflict_with_query () =
  let db = db () in
  let q =
    Binder.bind db
      (Sql_parser.parse "select t.name from theatre t where t.region = 'uptown'")
  in
  let qg = Qgraph.of_query db q in
  let p = path_of db "t" "theatre" [] (Some (mk_sel "theatre" "region" "downtown", 0.5)) in
  Alcotest.(check bool) "conflicts with query selection" true
    (Conflict.conflicts_with_query db qg p);
  let agree = path_of db "t" "theatre" [] (Some (mk_sel "theatre" "region" "uptown", 0.5)) in
  Alcotest.(check bool) "same value fine" false
    (Conflict.conflicts_with_query db qg agree)

(* ---------------------------- Criteria ----------------------------- *)

let test_criteria_top_r () =
  let c = Criteria.top_r 2 in
  Alcotest.(check bool) "accepts under r" true
    (Criteria.accepts c ~current:[ d 0.9 ] (d 0.5));
  Alcotest.(check bool) "rejects beyond r" false
    (Criteria.accepts c ~current:[ d 0.9; d 0.8 ] (d 0.5));
  Alcotest.(check bool) "top_r 0 rejects all" false
    (Criteria.accepts (Criteria.top_r 0) ~current:[] (d 1.0))

let test_criteria_above () =
  let c = Criteria.above 0.6 in
  Alcotest.(check bool) "above" true (Criteria.accepts c ~current:[] (d 0.7));
  Alcotest.(check bool) "at threshold rejected" false
    (Criteria.accepts c ~current:[] (d 0.6));
  Alcotest.(check bool) "below" false (Criteria.accepts c ~current:[ d 0.9 ] (d 0.5))

let test_criteria_disj_above () =
  let c = Criteria.disj_above 0.6 in
  (* avg(0.9, 0.5) = 0.7 > 0.6 *)
  Alcotest.(check bool) "avg above" true (Criteria.accepts c ~current:[ d 0.9 ] (d 0.5));
  (* avg(0.9, 0.5, 0.1) = 0.5 < 0.6 *)
  Alcotest.(check bool) "avg drops below" false
    (Criteria.accepts c ~current:[ d 0.9; d 0.5 ] (d 0.1))

let test_criteria_conj_above () =
  let c = Criteria.conj_above 0.9 in
  Alcotest.(check bool) "single below" false (Criteria.accepts c ~current:[] (d 0.5));
  Alcotest.(check bool) "conjunction exceeds" true
    (Criteria.accepts c ~current:[ d 0.8 ] (d 0.8));
  Alcotest.(check bool) "prefix-monotone flags" true
    (Criteria.prefix_monotone (Criteria.top_r 3)
    && Criteria.prefix_monotone (Criteria.above 0.1)
    && Criteria.prefix_monotone (Criteria.disj_above 0.1)
    && not (Criteria.prefix_monotone c))

(* ------------------------ Selection: Julie ------------------------- *)

let test_julie_top3_matches_paper () =
  (* §5.2's example: the top 3 preferences for the "tonight" query are
     comedies (0.81), D. Lynch (0.8), N. Kidman (0.72). *)
  let db = db () in
  let qg = tonight_qg db in
  let g = Pgraph.of_profile (julie_paper ()) in
  let pk = Select.select db g qg (Criteria.top_r 3) in
  let conds = List.map Path.to_condition_string pk in
  Alcotest.(check (list string)) "paper's P_K"
    [
      "MOVIE.mid = GENRE.mid and GENRE.genre = 'comedy'";
      "MOVIE.mid = DIRECTED.mid and DIRECTED.did = DIRECTOR.did and \
       DIRECTOR.name = 'D. Lynch'";
      "MOVIE.mid = CAST.mid and CAST.aid = ACTOR.aid and ACTOR.name = 'N. Kidman'";
    ]
    conds;
  let degs = List.map (fun p -> Degree.to_float p.Path.degree) pk in
  Alcotest.(check (list (float 1e-9))) "paper's degrees" [ 0.81; 0.8; 0.72 ] degs

let test_julie_all_preferences () =
  (* With no cut-off, every reachable selection is emitted in decreasing
     order, transitively (thriller 0.63, W. Allen 0.7, Hopkins/Rossellini
     via cast, adventure, and theatre-side paths through PLAY). *)
  let db = db () in
  let qg = tonight_qg db in
  let g = Pgraph.of_profile (julie_paper ()) in
  let pk = Select.select db g qg (Criteria.top_r 100) in
  let degs = List.map (fun p -> Degree.to_float p.Path.degree) pk in
  Alcotest.(check bool) "decreasing order" true
    (List.for_all2 (fun a b -> a >= b) (List.filteri (fun i _ -> i < List.length degs - 1) degs)
       (List.tl degs));
  (* The profile has 8 selections; every one is reachable from MOVIE/PLAY. *)
  Alcotest.(check int) "all eight reachable" 8 (List.length pk)

let test_selection_stops_on_criterion () =
  let db = db () in
  let qg = tonight_qg db in
  let g = Pgraph.of_profile (julie_paper ()) in
  let pk = Select.select db g qg (Criteria.above 0.75) in
  let degs = List.map (fun p -> Degree.to_float p.Path.degree) pk in
  Alcotest.(check (list (float 1e-9))) "only > 0.75" [ 0.81; 0.8 ] degs

let test_selection_excludes_conflicts () =
  let db = db () in
  let q =
    Binder.bind db
      (Sql_parser.parse "select t.name from theatre t where t.region = 'uptown'")
  in
  let qg = Qgraph.of_query db q in
  let profile =
    Profile.of_list
      [
        (Atom.sel "theatre" "region" (str "downtown"), d 0.9);
        (Atom.sel "theatre" "name" (str "Orpheum"), d 0.5);
      ]
  in
  let pk = Select.select db (Pgraph.of_profile profile) qg (Criteria.top_r 10) in
  Alcotest.(check (list string)) "conflicting region pruned"
    [ "THEATRE.name = 'Orpheum'" ]
    (List.map Path.to_condition_string pk)

let test_selection_related_filter () =
  let db = db () in
  let qg = tonight_qg db in
  let g = Pgraph.of_profile (julie_paper ()) in
  let only_genres p =
    match Path.selection p with Some (s, _) -> s.Atom.s_rel = "genre" | None -> false
  in
  let pk = Select.select ~related:only_genres db g qg (Criteria.top_r 10) in
  Alcotest.(check int) "three genre prefs" 3 (List.length pk);
  Alcotest.(check bool) "all genre" true (List.for_all only_genres pk)

let test_selection_stats () =
  let db = db () in
  let qg = tonight_qg db in
  let g = Pgraph.of_profile (julie_paper ()) in
  let stats = Select.fresh_stats () in
  ignore (Select.select ~stats db g qg (Criteria.top_r 3));
  Alcotest.(check bool) "pops counted" true (stats.Select.pops > 0);
  Alcotest.(check bool) "pushes >= pops" true (stats.Select.pushes >= stats.Select.pops - 1);
  Alcotest.(check bool) "cycles pruned" true (stats.Select.discarded_cycles > 0)

let test_selection_empty_profile () =
  let db = db () in
  let qg = tonight_qg db in
  let pk = Select.select db (Pgraph.of_profile Profile.empty) qg (Criteria.top_r 5) in
  Alcotest.(check int) "nothing to select" 0 (List.length pk)

let test_selection_query_relation_selection () =
  (* A selection preference on a relation of the query itself attaches
     with zero joins and full degree. *)
  let db = db () in
  let qg = tonight_qg db in
  let profile = Profile.of_list [ (Atom.sel "movie" "year" (Value.Int 2003), d 0.6) ] in
  let pk = Select.select db (Pgraph.of_profile profile) qg (Criteria.top_r 5) in
  match pk with
  | [ p ] ->
      Alcotest.(check string) "direct selection" "MOVIE.year = 2003"
        (Path.to_condition_string p);
      Helpers.check_float "degree undamped" 0.6 (Degree.to_float p.Path.degree)
  | _ -> Alcotest.fail "one preference expected"

(* -------------------- Theorems 1 & 2 (vs brute) -------------------- *)

let random_setting seed =
  let cfg = { Moviedb.Datagen.default with movies = 120; actors = 60; directors = 20; theatres = 8 } in
  let db = Moviedb.Datagen.generate { cfg with seed } in
  let profile =
    Moviedb.Profile_gen.generate db
      { Moviedb.Profile_gen.default with seed = seed + 1; n_selections = 12 }
  in
  let rng = Putil.Rng.create (seed + 2) in
  let q = Binder.bind db (Moviedb.Workload.random_query db rng) in
  (db, profile, q)

let prop_theorem1_ordered =
  QCheck.Test.make ~name:"Theorem 1: emission in decreasing degree order" ~count:25
    QCheck.small_int (fun seed ->
      let db, profile, q = random_setting seed in
      let qg = Qgraph.of_query db q in
      let pk =
        Select.select db (Pgraph.of_profile profile) qg (Criteria.top_r 15)
      in
      let rec decreasing = function
        | a :: (b :: _ as rest) ->
            Degree.to_float a.Path.degree >= Degree.to_float b.Path.degree -. 1e-12
            && decreasing rest
        | _ -> true
      in
      decreasing pk)

let prop_theorem2_complete =
  QCheck.Test.make ~name:"Theorem 2: completeness vs brute force" ~count:25
    QCheck.small_int (fun seed ->
      let db, profile, q = random_setting seed in
      let qg = Qgraph.of_query db q in
      let g = Pgraph.of_profile profile in
      List.for_all
        (fun ci ->
          let fast = Select.select db g qg ci in
          let slow = Brute.select db g qg ci in
          let degs l =
            List.map (fun p -> Float.round (Degree.to_float p.Path.degree *. 1e9)) l
          in
          degs fast = degs slow)
        [ Criteria.top_r 5; Criteria.top_r 12; Criteria.above 0.5; Criteria.disj_above 0.6 ])

let prop_selected_never_conflicts_query =
  QCheck.Test.make ~name:"selected preferences never conflict with the query"
    ~count:25 QCheck.small_int (fun seed ->
      let db, profile, q = random_setting seed in
      let qg = Qgraph.of_query db q in
      let pk = Select.select db (Pgraph.of_profile profile) qg (Criteria.top_r 20) in
      List.for_all (fun p -> not (Conflict.conflicts_with_query db qg p)) pk)

let prop_paths_acyclic_and_outward =
  QCheck.Test.make ~name:"paths are acyclic and expand outward" ~count:25
    QCheck.small_int (fun seed ->
      let db, profile, q = random_setting seed in
      let qg = Qgraph.of_query db q in
      let pk = Select.select db (Pgraph.of_profile profile) qg (Criteria.top_r 20) in
      List.for_all
        (fun p ->
          let rels = List.map (fun (j, _) -> j.Atom.j_to_rel) p.Path.joins in
          (* No relation revisited, none inside the query graph. *)
          List.length rels = List.length (List.sort_uniq compare rels)
          && List.for_all (fun r -> not (Qgraph.mem_relation qg r)) rels)
        pk)

let () =
  Alcotest.run "select"
    [
      ( "path",
        [
          Alcotest.test_case "build" `Quick test_path_build;
          Alcotest.test_case "errors" `Quick test_path_errors;
        ] );
      ( "qgraph",
        [
          Alcotest.test_case "extraction" `Quick test_qgraph_extraction;
          Alcotest.test_case "rejects disjunction" `Quick test_qgraph_rejects_disjunctions;
          Alcotest.test_case "replicated relation" `Quick test_qgraph_replicated_relation;
        ] );
      ( "conflict",
        [
          Alcotest.test_case "same attribute" `Quick test_conflict_same_attribute_no_joins;
          Alcotest.test_case "to-one chain" `Quick test_conflict_to_one_chain;
          Alcotest.test_case "to-many no conflict" `Quick test_no_conflict_to_many;
          Alcotest.test_case "different anchor/joins" `Quick
            test_no_conflict_different_anchor_or_joins;
          Alcotest.test_case "with query" `Quick test_conflict_with_query;
        ] );
      ( "criteria",
        [
          Alcotest.test_case "top_r" `Quick test_criteria_top_r;
          Alcotest.test_case "above" `Quick test_criteria_above;
          Alcotest.test_case "disj_above" `Quick test_criteria_disj_above;
          Alcotest.test_case "conj_above" `Quick test_criteria_conj_above;
        ] );
      ( "algorithm",
        [
          Alcotest.test_case "Julie top-3 (paper example)" `Quick
            test_julie_top3_matches_paper;
          Alcotest.test_case "Julie exhaustive" `Quick test_julie_all_preferences;
          Alcotest.test_case "stops on criterion" `Quick test_selection_stops_on_criterion;
          Alcotest.test_case "excludes conflicts" `Quick test_selection_excludes_conflicts;
          Alcotest.test_case "related filter" `Quick test_selection_related_filter;
          Alcotest.test_case "stats" `Quick test_selection_stats;
          Alcotest.test_case "empty profile" `Quick test_selection_empty_profile;
          Alcotest.test_case "query-relation selection" `Quick
            test_selection_query_relation_selection;
        ] );
      ( "theorems",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_theorem1_ordered; prop_theorem2_complete;
            prop_selected_never_conflicts_query; prop_paths_acyclic_and_outward;
          ] );
    ]
