test/test_exec.ml: Alcotest Array Binder Database Engine Exec Helpers List Moviedb Printf Putil QCheck QCheck_alcotest Relal Sql_parser Sql_print String Value
