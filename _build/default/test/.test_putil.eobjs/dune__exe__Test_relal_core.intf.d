test/test_relal_core.mli:
