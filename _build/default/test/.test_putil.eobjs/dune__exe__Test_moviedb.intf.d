test/test_moviedb.mli:
