test/helpers.ml: Alcotest Array Database List Perso Relal Schema Value
