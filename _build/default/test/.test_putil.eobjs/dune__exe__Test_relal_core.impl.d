test/test_relal_core.ml: Alcotest Array Database Helpers List Moviedb Option Relal Schema Table Value
