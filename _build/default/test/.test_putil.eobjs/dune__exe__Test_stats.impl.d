test/test_stats.ml: Alcotest Binder Database Exec Format Helpers Moviedb Perso Putil QCheck QCheck_alcotest Relal Schema Sql_print Stats String Value
