test/test_putil.ml: Alcotest Array Combin Fun Gen List Option Pqueue Printf Putil QCheck QCheck_alcotest Rng Zipf
