test/test_degree.ml: Alcotest Degree Float Gen Helpers List Perso Putil QCheck QCheck_alcotest
