test/test_pipeline.ml: Alcotest Array Atom Criteria Engine Exec Explain Helpers List Moviedb Path Perso Personalize Profile Qgraph Relal Sql_ast Sql_parser String Value
