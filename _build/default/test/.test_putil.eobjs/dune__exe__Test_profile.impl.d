test/test_profile.ml: Alcotest Array Atom Degree Filename Format Helpers List Moviedb Perso Pgraph Profile Profile_store Relal Result Sql_ast Sql_parser String Value
