test/test_persist.ml: Alcotest Array Csv Database Ddl Engine Exec Filename Format Helpers List Moviedb Perso Printf QCheck QCheck_alcotest Relal Schema Sys Table Value
