test/test_moviedb.ml: Alcotest Array Binder Database Engine Exec Hashtbl Helpers List Moviedb Option Perso Relal Schema Sql_ast Sql_print Table Value
