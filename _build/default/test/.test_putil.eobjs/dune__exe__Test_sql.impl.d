test/test_sql.ml: Alcotest List Printf QCheck QCheck_alcotest Relal Sql_ast Sql_lexer Sql_parser Sql_print Value
