test/test_putil.mli:
