test/test_degree.mli:
