(* Lexer, parser, printer: unit tests plus a generator-based print→parse
   round-trip property. *)

open Relal

(* ------------------------------ Lexer ------------------------------ *)

let test_lexer_basic () =
  let toks = Sql_lexer.tokenize "SELECT a.b, 'it''s' <> 3.5 <= >= < > != ()" in
  let open Sql_lexer in
  Alcotest.(check int) "token count" 16 (List.length toks);
  Alcotest.(check bool) "keyword lowered" true (List.hd toks = KW "select");
  Alcotest.(check bool) "string unescaped" true
    (List.exists (function STRING "it's" -> true | _ -> false) toks);
  Alcotest.(check bool) "ne from !=" true
    (List.filter (function NE -> true | _ -> false) toks |> List.length = 2)

let test_lexer_numbers () =
  let open Sql_lexer in
  (match tokenize "12 3.5 0.81 1e3" with
  | [ INT 12; FLOAT a; FLOAT b; FLOAT c; EOF ] ->
      Alcotest.(check (float 1e-9)) "3.5" 3.5 a;
      Alcotest.(check (float 1e-9)) "0.81" 0.81 b;
      Alcotest.(check (float 1e-9)) "1e3" 1000. c
  | _ -> Alcotest.fail "unexpected tokenization")

let test_lexer_errors () =
  Alcotest.(check bool) "unterminated string" true
    (try
       ignore (Sql_lexer.tokenize "select 'oops");
       false
     with Sql_lexer.Lex_error _ -> true);
  Alcotest.(check bool) "illegal char" true
    (try
       ignore (Sql_lexer.tokenize "select #");
       false
     with Sql_lexer.Lex_error _ -> true)

(* ------------------------------ Parser ------------------------------ *)

let parse = Sql_parser.parse

let test_parse_simple () =
  let q = parse "select mv.title from movie mv, play pl where mv.mid = pl.mid" in
  Alcotest.(check int) "two from items" 2 (List.length q.Sql_ast.from);
  Alcotest.(check bool) "not distinct" false q.Sql_ast.distinct;
  Alcotest.(check (list string)) "output names" [ "title" ]
    (Sql_ast.select_output_names q)

let test_parse_precedence () =
  let q = parse "select a.x from t a where a.x = 1 and a.y = 2 or a.z = 3" in
  (match q.Sql_ast.where with
  | Sql_ast.P_or [ P_and [ _; _ ]; _ ] -> ()
  | p -> Alcotest.failf "AND should bind tighter: %s" (Sql_print.pred_to_string p));
  let q2 = parse "select a.x from t a where a.x = 1 and (a.y = 2 or a.z = 3)" in
  match q2.Sql_ast.where with
  | Sql_ast.P_and [ _; P_or [ _; _ ] ] -> ()
  | p -> Alcotest.failf "parens respected: %s" (Sql_print.pred_to_string p)

let test_parse_not () =
  let q = parse "select a.x from t a where not a.x = 1" in
  match q.Sql_ast.where with
  | Sql_ast.P_not (P_cmp (Eq, _, _)) -> ()
  | _ -> Alcotest.fail "NOT parsed"

let test_parse_group_having_order () =
  let q =
    parse
      "select t.title, count(*) as n from plays t group by t.title having \
       count(*) >= 2 and min(t.year) > 1990 order by n desc, t.title asc limit 5"
  in
  Alcotest.(check bool) "distinct off" false q.Sql_ast.distinct;
  Alcotest.(check int) "group by one col" 1 (List.length q.Sql_ast.group_by);
  Alcotest.(check bool) "having parsed" true (q.Sql_ast.having <> None);
  Alcotest.(check int) "two order keys" 2 (List.length q.Sql_ast.order_by);
  Alcotest.(check (option int)) "limit" (Some 5) q.Sql_ast.limit

let test_parse_union_all_derived () =
  let q =
    parse
      "select t.title from ((select m.title from movie m) union all (select \
       m.title from movie m where m.year = 2000)) t group by t.title having \
       count(*) >= 2"
  in
  match q.Sql_ast.from with
  | [ Sql_ast.F_derived (C_union_all [ _; _ ], "t") ] -> ()
  | _ -> Alcotest.fail "derived union-all FROM"

let test_parse_doi_aggregate () =
  let q =
    parse
      "select t.title, degree_of_conjunction(t.doi, t.pref) as doi from temp t \
       group by t.title order by doi desc"
  in
  match q.Sql_ast.select with
  | [ _; Sql_ast.Sel_agg (A_doi_conj (a, b), "doi") ] ->
      Alcotest.(check string) "doi col" "doi" a.Sql_ast.col;
      Alcotest.(check string) "pref col" "pref" b.Sql_ast.col
  | _ -> Alcotest.fail "degree_of_conjunction parsed"

let test_parse_const_select_items () =
  let q = parse "select m.title, 0.81 as doi, 3 as pref from movie m" in
  match q.Sql_ast.select with
  | [ Sql_ast.Sel_attr _; Sel_const (Value.Float f, "doi"); Sel_const (Value.Int 3, "pref") ]
    ->
      Alcotest.(check (float 1e-9)) "const float" 0.81 f
  | _ -> Alcotest.fail "const select items"

let test_parse_bare_columns () =
  let q = parse "select title from movie where year = 2000" in
  match q.Sql_ast.select with
  | [ Sql_ast.Sel_attr (a, None) ] -> Alcotest.(check string) "bare tv" "" a.Sql_ast.tv
  | _ -> Alcotest.fail "bare column"

let test_parse_errors () =
  List.iter
    (fun sql ->
      Alcotest.(check bool)
        (Printf.sprintf "rejects %S" sql)
        true
        (try
           ignore (parse sql);
           false
         with Sql_parser.Parse_error _ -> true))
    [
      "select from movie";
      "select m.title from";
      "select m.title from movie m where";
      "select m.title from (select m.title from movie m)";
      (* derived without alias *)
      "select m.title from movie m trailing junk = 1";
      "select m.title from movie m limit x";
    ]

let test_parse_trailing_semicolon () =
  ignore (parse "select m.title from movie m;");
  Alcotest.(check pass) "semicolon tolerated" () ()

(* --------------------------- Print→parse --------------------------- *)

(* Structural equality modulo nothing: the printer must re-parse to the
   exact same AST for bound-style queries. *)
let roundtrip_case name sql =
  Alcotest.test_case name `Quick (fun () ->
      let q = parse sql in
      let printed = Sql_print.query_to_string q in
      let q2 = parse printed in
      if q <> q2 then
        Alcotest.failf "round-trip mismatch:\n%s\n---\n%s" printed
          (Sql_print.query_to_string q2);
      (* Pretty printer must also re-parse. *)
      let q3 = parse (Sql_print.query_to_pretty q) in
      if q <> q3 then Alcotest.failf "pretty round-trip mismatch for %s" name)

let roundtrip_cases =
  [
    roundtrip_case "spj" "select mv.title from movie mv, play pl where mv.mid = pl.mid and pl.date = '2003-07-02'";
    roundtrip_case "distinct or"
      "select distinct mv.title from movie mv, genre gn where mv.mid = gn.mid and (gn.genre = 'comedy' or gn.genre = 'thriller')";
    roundtrip_case "not" "select m.title from movie m where not m.year = 2000";
    roundtrip_case "union having"
      "select t.title from ((select m.title from movie m) union all (select m.title from movie m where m.year = 1999)) t group by t.title having count(*) >= 2";
    roundtrip_case "rank"
      "select t.title as title, degree_of_conjunction(t.doi, t.pref) as doi from ((select m.title as title, 0.81 as doi, 0 as pref from movie m)) t group by t.title order by doi desc";
    roundtrip_case "comparisons"
      "select m.title from movie m where m.year >= 1990 and m.year <= 2000 and m.title <> 'X' and m.year < 2005 and m.year > 1900";
    roundtrip_case "limit" "select m.title from movie m order by m.title asc limit 10";
    roundtrip_case "quoting" "select m.title from movie m where m.title = 'O''Hara''s luck'";
    roundtrip_case "nested bool"
      "select m.title from movie m where (m.year = 1 or m.year = 2) and (m.year = 3 or m.year = 4 and m.title = 'x')";
  ]

(* Generator-based round-trip over random predicate trees. *)
let gen_pred =
  let open QCheck.Gen in
  let attr_g = map2 Sql_ast.attr (oneofl [ "a"; "b" ]) (oneofl [ "x"; "y"; "z" ]) in
  let scalar_g =
    oneof
      [
        map (fun a -> Sql_ast.S_attr a) attr_g;
        map (fun i -> Sql_ast.S_const (Value.Int i)) small_int;
        map (fun s -> Sql_ast.S_const (Value.Str s)) (oneofl [ "v"; "it's"; "" ]);
      ]
  in
  let cmp_g = oneofl [ Sql_ast.Eq; Ne; Lt; Le; Gt; Ge ] in
  let leaf = map3 (fun op a b -> Sql_ast.P_cmp (op, a, b)) cmp_g scalar_g scalar_g in
  fix
    (fun self n ->
      if n = 0 then leaf
      else
        frequency
          [
            (3, leaf);
            (1, map (fun p -> Sql_ast.P_not p) (self (n - 1)));
            ( 2,
              map
                (fun ps -> Sql_ast.P_and ps)
                (list_size (2 -- 3) (self (n / 2))) );
            ( 2,
              map
                (fun ps -> Sql_ast.P_or ps)
                (list_size (2 -- 3) (self (n / 2))) );
          ])
    3

let prop_pred_roundtrip =
  QCheck.Test.make ~name:"pred print→parse round-trip" ~count:300
    (QCheck.make gen_pred)
    (fun p ->
      let s = Sql_print.pred_to_string p in
      Sql_parser.parse_pred s = p)

let () =
  Alcotest.run "sql"
    [
      ( "lexer",
        [
          Alcotest.test_case "basic" `Quick test_lexer_basic;
          Alcotest.test_case "numbers" `Quick test_lexer_numbers;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
        ] );
      ( "parser",
        [
          Alcotest.test_case "simple" `Quick test_parse_simple;
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "not" `Quick test_parse_not;
          Alcotest.test_case "group/having/order" `Quick test_parse_group_having_order;
          Alcotest.test_case "union all derived" `Quick test_parse_union_all_derived;
          Alcotest.test_case "doi aggregate" `Quick test_parse_doi_aggregate;
          Alcotest.test_case "const select items" `Quick test_parse_const_select_items;
          Alcotest.test_case "bare columns" `Quick test_parse_bare_columns;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "trailing semicolon" `Quick test_parse_trailing_semicolon;
        ] );
      ("roundtrip", roundtrip_cases @ [ QCheck_alcotest.to_alcotest prop_pred_roundtrip ]);
    ]
