(* Atoms, profiles (including the Figure 2 text format) and the
   personalization graph. *)

open Perso
open Relal

let d = Helpers.deg

(* ------------------------------ Atom ------------------------------ *)

let test_atom_construction () =
  let a = Atom.sel "GENRE" "Genre" (Value.Str "comedy") in
  Alcotest.(check string) "lower-cased, printed upper"
    "GENRE.genre = 'comedy'" (Atom.to_string a);
  let j = Atom.join ("MOVIE", "mid") ("PLAY", "mid") in
  Alcotest.(check string) "join rendering" "MOVIE.mid = PLAY.mid" (Atom.to_string j)

let test_atom_equal_directionality () =
  let j1 = Atom.join ("movie", "mid") ("play", "mid") in
  let j2 = Atom.join ("play", "mid") ("movie", "mid") in
  Alcotest.(check bool) "directions are distinct atoms" false (Atom.equal j1 j2);
  match (j1, j2) with
  | Atom.Join j1', Atom.Join j2' ->
      Alcotest.(check bool) "reverse matches" true
        (Atom.equal (Atom.Join (Atom.reverse_join j1')) (Atom.Join j2'))
  | _ -> Alcotest.fail "joins expected"

let test_atom_validate () =
  let db = Moviedb.Movie_schema.create () in
  Alcotest.(check bool) "valid selection" true
    (Atom.validate db (Atom.sel "genre" "genre" (Value.Str "comedy")) = Ok ());
  Alcotest.(check bool) "valid join" true
    (Atom.validate db (Atom.join ("movie", "mid") ("play", "mid")) = Ok ());
  Alcotest.(check bool) "unknown relation" true
    (Result.is_error (Atom.validate db (Atom.sel "nope" "x" (Value.Int 1))));
  Alcotest.(check bool) "unknown attribute" true
    (Result.is_error (Atom.validate db (Atom.sel "movie" "nope" (Value.Int 1))));
  Alcotest.(check bool) "type mismatch" true
    (Result.is_error (Atom.validate db (Atom.sel "movie" "year" (Value.Str "x"))));
  Alcotest.(check bool) "date string ok for date column" true
    (Atom.validate db (Atom.sel "play" "date" (Value.Str "2003-07-02")) = Ok ())

let test_atom_of_pred () =
  (match Atom.of_pred (Sql_parser.parse_pred "GENRE.genre = 'comedy'") with
  | Ok (Atom.Sel s) ->
      Alcotest.(check string) "rel" "genre" s.Atom.s_rel;
      Alcotest.(check Helpers.value_testable) "value" (Value.Str "comedy") s.Atom.s_val
  | _ -> Alcotest.fail "selection expected");
  (match Atom.of_pred (Sql_parser.parse_pred "MOVIE.mid = PLAY.mid") with
  | Ok (Atom.Join j) ->
      Alcotest.(check string) "from" "movie" j.Atom.j_from_rel;
      Alcotest.(check string) "to" "play" j.Atom.j_to_rel
  | _ -> Alcotest.fail "join expected");
  (match Atom.of_pred (Sql_parser.parse_pred "2000 < MOVIE.year") with
  | Ok (Atom.Sel s) -> Alcotest.(check bool) "flipped op" true (s.Atom.s_op = Sql_ast.Gt)
  | _ -> Alcotest.fail "flipped selection expected");
  Alcotest.(check bool) "non-atomic rejected" true
    (Result.is_error (Atom.of_pred (Sql_parser.parse_pred "a.x = 1 and a.y = 2")))

(* ----------------------------- Profile ----------------------------- *)

let sample_profile () =
  Profile.of_list
    [
      (Atom.join ("theatre", "tid") ("play", "tid"), d 1.0);
      (Atom.join ("movie", "mid") ("genre", "mid"), d 0.9);
      (Atom.sel "genre" "genre" (Value.Str "comedy"), d 0.9);
      (Atom.sel "genre" "genre" (Value.Str "thriller"), d 0.7);
      (Atom.sel "actor" "name" (Value.Str "A. Hopkins"), d 0.8);
    ]

let test_profile_basics () =
  let p = sample_profile () in
  Alcotest.(check int) "cardinal" 5 (Profile.cardinal p);
  Alcotest.(check int) "size counts selections" 3 (Profile.size p);
  Alcotest.(check (option Helpers.degree_testable)) "find" (Some (d 0.7))
    (Profile.find p (Atom.sel "genre" "genre" (Value.Str "thriller")));
  let entries = Profile.entries p in
  let degs = List.map (fun (_, deg) -> Degree.to_float deg) entries in
  Alcotest.(check (list (float 1e-9))) "decreasing order"
    [ 1.0; 0.9; 0.9; 0.8; 0.7 ] degs

let test_profile_zero_rejected () =
  Alcotest.(check bool) "zero degree rejected" true
    (try
       ignore (Profile.add Profile.empty (Atom.sel "a" "b" (Value.Int 1)) (d 0.));
       false
     with Invalid_argument _ -> true)

let test_profile_duplicate_rejected () =
  let a = Atom.sel "genre" "genre" (Value.Str "comedy") in
  Alcotest.(check bool) "of_list duplicate" true
    (try
       ignore (Profile.of_list [ (a, d 0.5); (a, d 0.6) ]);
       false
     with Invalid_argument _ -> true);
  (* add replaces silently. *)
  let p = Profile.add (Profile.add Profile.empty a (d 0.5)) a (d 0.6) in
  Alcotest.(check (option Helpers.degree_testable)) "add replaces" (Some (d 0.6))
    (Profile.find p a)

let test_profile_remove_union () =
  let p = sample_profile () in
  let a = Atom.sel "genre" "genre" (Value.Str "comedy") in
  Alcotest.(check int) "remove" 4 (Profile.cardinal (Profile.remove p a));
  let q = Profile.of_list [ (a, d 0.1) ] in
  Alcotest.(check (option Helpers.degree_testable)) "union right-biased"
    (Some (d 0.1))
    (Profile.find (Profile.union p q) a)

let test_profile_text_roundtrip () =
  let p = sample_profile () in
  let s = Profile.to_string p in
  match Profile.of_string s with
  | Error e -> Alcotest.failf "re-parse failed: %s" e
  | Ok p2 ->
      Alcotest.(check int) "same cardinal" (Profile.cardinal p) (Profile.cardinal p2);
      List.iter2
        (fun (a1, d1) (a2, d2) ->
          Alcotest.(check bool) "same atom" true (Atom.equal a1 a2);
          Alcotest.(check Helpers.degree_testable) "same degree" d1 d2)
        (Profile.entries p) (Profile.entries p2)

let test_profile_figure2_format () =
  (* Literal lines from Figure 2 of the paper. *)
  let text =
    {|# Julie's profile (Figure 2)
[ THEATRE.tid = PLAY.tid,  1 ]
[ PLAY.tid = THEATRE.tid,  1 ]
[ PLAY.mid = MOVIE.mid,  1 ]
[ MOVIE.mid = PLAY.mid,  0.8 ]
[ MOVIE.mid = GENRE.mid, 0.9 ]
[ ACTOR.name = 'A. Hopkins',  0.8 ]
[ GENRE.genre = 'comedy',  0.9 ]
[ GENRE.genre = 'thriller',  0.7 ]
|}
  in
  match Profile.of_string text with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok p ->
      Alcotest.(check int) "eight entries" 8 (Profile.cardinal p);
      Alcotest.(check int) "three selections" 3 (Profile.size p);
      Alcotest.(check (option Helpers.degree_testable)) "directed join degree"
        (Some (d 0.8))
        (Profile.find p (Atom.join ("movie", "mid") ("play", "mid")));
      Alcotest.(check (option Helpers.degree_testable)) "other direction"
        (Some (d 1.0))
        (Profile.find p (Atom.join ("play", "mid") ("movie", "mid")))

let test_profile_parse_errors () =
  let expect_err text =
    match Profile.of_string text with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected parse error for %S" text
  in
  expect_err "[ GENRE.genre = 'comedy' ]";
  expect_err "[ GENRE.genre = 'comedy', nan ]";
  expect_err "[ GENRE.genre = 'comedy', 1.5 ]";
  expect_err "[ GENRE.genre = 'comedy', 0 ]";
  expect_err "GENRE.genre = 'comedy', 0.5";
  expect_err "[ not a condition at all, 0.5 ]"

let test_profile_validate () =
  let db = Moviedb.Movie_schema.create () in
  Alcotest.(check bool) "valid profile" true
    (Profile.validate db (sample_profile ()) = Ok ());
  let bad = Profile.add (sample_profile ()) (Atom.sel "nope" "x" (Value.Int 1)) (d 0.5) in
  match Profile.validate db bad with
  | Error [ e ] ->
      Alcotest.(check bool) "mentions relation" true
        (String.length e > 0)
  | _ -> Alcotest.fail "one error expected"

(* ------------------------------ Pgraph ------------------------------ *)

let test_pgraph_adjacency () =
  let g = Pgraph.of_profile (sample_profile ()) in
  Alcotest.(check int) "edge count" 5 (Pgraph.edge_count g);
  let genre_sels = Pgraph.out_selections g "genre" in
  Alcotest.(check int) "two genre selections" 2 (List.length genre_sels);
  (* Decreasing degree. *)
  (match genre_sels with
  | [ (_, d1); (_, d2) ] ->
      Alcotest.(check bool) "sorted" true (Degree.compare d1 d2 >= 0)
  | _ -> Alcotest.fail "two expected");
  Alcotest.(check int) "theatre out joins" 1
    (List.length (Pgraph.out_joins g "theatre"));
  Alcotest.(check int) "no actor out joins" 0
    (List.length (Pgraph.out_joins g "actor"))

let test_pgraph_out_edges_merged_order () =
  let g = Pgraph.of_profile (sample_profile ()) in
  let edges = Pgraph.out_edges g "movie" in
  (* movie has one join edge (0.9); selections live on genre/actor. *)
  Alcotest.(check int) "movie edges" 1 (List.length edges);
  let degs = List.map (fun (_, deg) -> Degree.to_float deg) (Pgraph.out_edges g "genre") in
  Alcotest.(check (list (float 1e-9))) "genre edges decreasing" [ 0.9; 0.7 ] degs

let test_pgraph_lookup () =
  let g = Pgraph.of_profile (sample_profile ()) in
  (match Atom.join ("movie", "mid") ("genre", "mid") with
  | Atom.Join j ->
      Alcotest.(check (option Helpers.degree_testable)) "join degree" (Some (d 0.9))
        (Pgraph.join_degree g j)
  | _ -> assert false);
  match Atom.sel "actor" "name" (Value.Str "A. Hopkins") with
  | Atom.Sel s ->
      Alcotest.(check (option Helpers.degree_testable)) "sel degree" (Some (d 0.8))
        (Pgraph.selection_degree g s)
  | _ -> assert false

let test_pgraph_relations_and_dot () =
  let g = Pgraph.of_profile (sample_profile ()) in
  Alcotest.(check (list string)) "relations with out-edges"
    [ "actor"; "genre"; "movie"; "theatre" ]
    (Pgraph.relations g);
  let dot = Format.asprintf "%a" Pgraph.pp_dot g in
  Alcotest.(check bool) "dot mentions GENRE" true
    (let rec contains i =
       i + 5 <= String.length dot && (String.sub dot i 5 = "GENRE" || contains (i + 1))
     in
     contains 0)

(* --------------------------- Profile_store -------------------------- *)

let test_store_roundtrip () =
  let db = Moviedb.Personas.tiny_db () in
  let julie = Moviedb.Personas.julie () in
  let rob = Moviedb.Personas.rob () in
  Profile_store.save db ~user:"Julie" julie;
  Profile_store.save db ~user:"rob" rob;
  Alcotest.(check (list string)) "users" [ "julie"; "rob" ] (Profile_store.users db);
  (match Profile_store.load db ~user:"JULIE" with
  | Ok p ->
      Alcotest.(check string) "julie round-trips" (Profile.to_string julie)
        (Profile.to_string p)
  | Error es -> Alcotest.failf "load errors: %s" (String.concat "; " es));
  match Profile_store.load db ~user:"rob" with
  | Ok p ->
      Alcotest.(check string) "rob round-trips" (Profile.to_string rob)
        (Profile.to_string p)
  | Error es -> Alcotest.failf "load errors: %s" (String.concat "; " es)

let test_store_replace_and_delete () =
  let db = Moviedb.Personas.tiny_db () in
  Profile_store.save db ~user:"u" (Moviedb.Personas.julie ());
  let smaller =
    Profile.of_list [ (Atom.sel "genre" "genre" (Value.Str "comedy"), d 0.5) ]
  in
  Profile_store.save db ~user:"u" smaller;
  (match Profile_store.load db ~user:"u" with
  | Ok p -> Alcotest.(check int) "replaced, not merged" 1 (Profile.cardinal p)
  | Error _ -> Alcotest.fail "load");
  Profile_store.delete db ~user:"u";
  Alcotest.(check (list string)) "deleted" [] (Profile_store.users db);
  match Profile_store.load db ~user:"u" with
  | Ok p -> Alcotest.(check int) "empty after delete" 0 (Profile.cardinal p)
  | Error _ -> Alcotest.fail "load after delete"

let test_store_unknown_user_and_bad_rows () =
  let db = Moviedb.Personas.tiny_db () in
  Profile_store.install db;
  (match Profile_store.load db ~user:"nobody" with
  | Ok p -> Alcotest.(check int) "unknown user empty" 0 (Profile.cardinal p)
  | Error _ -> Alcotest.fail "unknown user should not error");
  (* A hand-corrupted row surfaces as an error, not an exception. *)
  Relal.Database.insert db Profile_store.table_name
    [ Relal.Value.Str "broken"; Relal.Value.Str "((not sql"; Relal.Value.Float 0.5 ];
  match Profile_store.load db ~user:"broken" with
  | Error [ _ ] -> ()
  | _ -> Alcotest.fail "expected one parse error"

let test_store_queryable_and_survives_dump () =
  (* The store is an ordinary table: SQL sees it, and it travels with
     CSV dumps. *)
  let db = Moviedb.Personas.tiny_db () in
  Profile_store.save db ~user:"julie" (Moviedb.Personas.julie ());
  let res =
    Helpers.run db
      "select count(*) as n from profiles p where p.username = 'julie'"
  in
  Alcotest.(check Helpers.value_testable) "sql count"
    (Relal.Value.Int (Profile.cardinal (Moviedb.Personas.julie ())))
    (List.hd res.Relal.Exec.rows).(0);
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "perdb_store_test" in
  Relal.Csv.save_db ~dir db;
  let db2 = Relal.Csv.load_db ~dir in
  match Profile_store.load db2 ~user:"julie" with
  | Ok p ->
      Alcotest.(check string) "profile survives dump/load"
        (Profile.to_string (Moviedb.Personas.julie ()))
        (Profile.to_string p)
  | Error es -> Alcotest.failf "load errors: %s" (String.concat "; " es)

let () =
  Alcotest.run "profile"
    [
      ( "atom",
        [
          Alcotest.test_case "construction" `Quick test_atom_construction;
          Alcotest.test_case "directionality" `Quick test_atom_equal_directionality;
          Alcotest.test_case "validate" `Quick test_atom_validate;
          Alcotest.test_case "of_pred" `Quick test_atom_of_pred;
        ] );
      ( "profile",
        [
          Alcotest.test_case "basics" `Quick test_profile_basics;
          Alcotest.test_case "zero rejected" `Quick test_profile_zero_rejected;
          Alcotest.test_case "duplicates" `Quick test_profile_duplicate_rejected;
          Alcotest.test_case "remove/union" `Quick test_profile_remove_union;
          Alcotest.test_case "text round-trip" `Quick test_profile_text_roundtrip;
          Alcotest.test_case "figure 2 format" `Quick test_profile_figure2_format;
          Alcotest.test_case "parse errors" `Quick test_profile_parse_errors;
          Alcotest.test_case "validate" `Quick test_profile_validate;
        ] );
      ( "store",
        [
          Alcotest.test_case "round-trip" `Quick test_store_roundtrip;
          Alcotest.test_case "replace/delete" `Quick test_store_replace_and_delete;
          Alcotest.test_case "unknown user / bad rows" `Quick
            test_store_unknown_user_and_bad_rows;
          Alcotest.test_case "queryable + dumps" `Quick
            test_store_queryable_and_survives_dump;
        ] );
      ( "pgraph",
        [
          Alcotest.test_case "adjacency" `Quick test_pgraph_adjacency;
          Alcotest.test_case "edge order" `Quick test_pgraph_out_edges_merged_order;
          Alcotest.test_case "degree lookup" `Quick test_pgraph_lookup;
          Alcotest.test_case "relations/dot" `Quick test_pgraph_relations_and_dot;
        ] );
    ]
