  $ perso_cli demo | head -12
  $ perso_cli run-sql --movies 0 "select count(*) as n from movie m"
  $ perso_cli run-sql --movies 0 "select g.genre, count(*) as n from genre g group by g.genre having count(*) >= 3 order by n desc, g.genre asc"
  $ perso_cli run-sql --movies 0 "select nope"
  $ perso_cli run-sql --movies 0 "select m.title from missing m"
  $ perso_cli dump-data --movies 0 --dir data > /dev/null
  $ ls data | head -3
  $ perso_cli run-sql --data-dir data "select count(*) as n from play p"
  $ cat > log.sql <<'SQL'
  > select m.title from movie m, genre g where m.mid = g.mid and g.genre = 'comedy'
  > select m.title from movie m, genre g where m.mid = g.mid and g.genre = 'comedy'
  > select m.title from movie m, cast c, actor a where m.mid = c.mid and c.aid = a.aid and a.name = 'N. Kidman'
  > SQL
  $ perso_cli learn-profile --movies 0 --log log.sql --out learned.profile
  $ cat learned.profile
  $ perso_cli personalize --movies 0 --profile learned.profile -k 2 --top 3 "select mv.title from movie mv, play pl where mv.mid = pl.mid and pl.date = '2/7/2003'" | tail -5
  $ cat > julie.profile <<'PROFILE'
  > [ MOVIE.mid = GENRE.mid, 0.9 ]
  > [ MOVIE.mid = DIRECTED.mid, 1 ]
  > [ DIRECTED.did = DIRECTOR.did, 1 ]
  > [ GENRE.genre = 'comedy', 0.9 ]
  > [ DIRECTOR.name = 'D. Lynch', 0.8 ]
  > PROFILE
  $ perso_cli personalize --movies 0 --profile julie.profile -k 5 --semantic "select m.title from movie m, genre g where m.mid = g.mid and g.genre = 'comedy'" | head -4
