  $ perso_repl <<'SESSION'
  > .help
  > .like [ GENRE.genre = 'comedy', 0.9 ]
  > .like [ MOVIE.mid = GENRE.mid, 0.9 ]
  > select mv.title from movie mv, play pl where mv.mid = pl.mid and pl.date = '2/7/2003'
  > .unlike [ MOVIE.title = 'Double Take', 1 ]
  > select mv.title from movie mv, play pl where mv.mid = pl.mid and pl.date = '2/7/2003'
  > .k 3
  > .show
  > .plain select count(*) as n from play p
  > .explain select mv.title from movie mv where mv.year = 2003
  > .badcmd
  > select nonsense
  > .quit
  > SESSION
