(* Statistics and the cost-based join-ordering strategy. *)

open Relal

let db () = Moviedb.Personas.tiny_db ()

let test_row_counts () =
  let db = db () in
  let s = Stats.create db in
  Alcotest.(check int) "movies" 12 (Stats.row_count s "movie");
  Alcotest.(check int) "actors" 6 (Stats.row_count s "actor");
  Alcotest.(check bool) "unknown table" true
    (try
       ignore (Stats.row_count s "nope");
       false
     with Invalid_argument _ -> true)

let test_ndv () =
  let db = db () in
  let s = Stats.create db in
  (* mid is the movie key: ndv = row count. *)
  Alcotest.(check int) "key column ndv" 12 (Stats.ndv s "movie" "mid");
  (* director ids in DIRECTED: four directors used. *)
  Alcotest.(check int) "did ndv" 4 (Stats.ndv s "directed" "did");
  (* theatre regions: downtown, uptown, suburbs. *)
  Alcotest.(check int) "region ndv" 3 (Stats.ndv s "theatre" "region");
  Alcotest.(check bool) "unknown column" true
    (try
       ignore (Stats.ndv s "movie" "nope");
       false
     with Invalid_argument _ -> true)

let test_eq_selectivity () =
  let db = db () in
  let s = Stats.create db in
  Helpers.check_float "1/ndv" (1. /. 3.) (Stats.eq_selectivity s "theatre" "region")

let test_join_size_estimate () =
  let db = db () in
  let s = Stats.create db in
  (* directed ⋈ director on did: |directed| * |director| / max(4,4) = 12. *)
  let est = Stats.join_size s ~left_rows:12. ("directed", "did") ("director", "did") in
  Helpers.check_float "containment formula" 12. est

let test_cache_invalidation () =
  let db = db () in
  let s = Stats.create db in
  Alcotest.(check int) "before" 4 (Stats.ndv s "director" "did");
  Database.insert db "director" [ Value.Int 99; Value.Str "New Person" ];
  Alcotest.(check int) "after insert, recomputed" 5 (Stats.ndv s "director" "did")

let test_empty_table_safe () =
  let db = Database.create () in
  Database.add_table db
    (Schema.make ~name:"e" ~cols:[ ("a", Value.TInt) ] ());
  let s = Stats.create db in
  Alcotest.(check int) "ndv of empty table is 1" 1 (Stats.ndv s "e" "a");
  Helpers.check_float "selectivity defined" 1.0 (Stats.eq_selectivity s "e" "a")

(* The cost-based strategy must agree with naive semantics on random
   queries — same oracle as the greedy strategy. *)
let prop_cost_equals_naive =
  let db = db () in
  let stats = Stats.create db in
  let gen =
    QCheck.make
      ~print:(fun q -> Sql_print.query_to_string q)
      (QCheck.Gen.map
         (fun seed ->
           let rng = Putil.Rng.create seed in
           Moviedb.Workload.random_query db rng)
         QCheck.Gen.small_int)
  in
  QCheck.Test.make ~name:"cost strategy = naive semantics" ~count:50 gen (fun q ->
      let bound = Binder.bind db q in
      Exec.result_equal_bag
        (Exec.run ~strategy:`Cost ~stats db bound)
        (Exec.run ~strategy:`Naive db bound))

let test_cost_on_personalized_query () =
  (* The whole personalization pipeline under the cost-based strategy
     must return the same ranked answer as the default one. *)
  let db = db () in
  let outcome =
    Perso.Personalize.personalize db (Moviedb.Personas.julie ())
      (Moviedb.Workload.tonight_query ())
  in
  let a = Perso.Personalize.execute ~strategy:`Auto db outcome in
  let c = Perso.Personalize.execute ~strategy:`Cost db outcome in
  Alcotest.(check bool) "same ranked rows" true (Exec.result_equal_list a c)

let test_pp_stats () =
  let db = db () in
  let s = Stats.create db in
  let text = Format.asprintf "%a" Stats.pp s in
  Alcotest.(check bool) "dump mentions movie" true
    (let rec contains i =
       i + 5 <= String.length text
       && (String.sub text i 5 = "movie" || contains (i + 1))
     in
     contains 0)

let () =
  Alcotest.run "stats"
    [
      ( "stats",
        [
          Alcotest.test_case "row counts" `Quick test_row_counts;
          Alcotest.test_case "ndv" `Quick test_ndv;
          Alcotest.test_case "eq selectivity" `Quick test_eq_selectivity;
          Alcotest.test_case "join size" `Quick test_join_size_estimate;
          Alcotest.test_case "cache invalidation" `Quick test_cache_invalidation;
          Alcotest.test_case "empty table" `Quick test_empty_table_safe;
          Alcotest.test_case "pp" `Quick test_pp_stats;
        ] );
      ( "cost-strategy",
        QCheck_alcotest.to_alcotest prop_cost_equals_naive
        :: [
             Alcotest.test_case "personalized query" `Quick
               test_cost_on_personalized_query;
           ] );
    ]
