(** Deterministic synthetic data for the movie schema — the stand-in for
    the paper's 340k-movie IMDb extract.

    Skew matters for realistic experiments: genre, actor and director
    popularity are Zipf-distributed (popular actors appear in many casts,
    popular genres tag many movies), matching the heavy tails of the real
    IMDb data the paper used.  Fan-outs reproduce the schema's
    cardinalities: one DIRECTED row per movie (to-one), several GENRE and
    CAST rows (to-many), theatres playing a handful of movies per day
    over a date window containing the paper's example date. *)

type config = {
  seed : int;
  movies : int;
  actors : int;
  directors : int;
  theatres : int;
  days : int;  (** date window starting 2003-07-01 *)
  max_genres_per_movie : int;
  max_cast_per_movie : int;
  plays_per_theatre_day : int;
  zipf_s : float;  (** popularity skew for genres/actors/directors *)
}

val default : config
(** 2 000 movies, 800 actors, 200 directors, 40 theatres, 7 days —
    laptop-quick while preserving the fan-outs. *)

val scale : ?seed:int -> int -> config
(** [scale n] keeps the default's proportions with [n] movies. *)

val generate : ?index:bool -> config -> Relal.Database.t
(** Build and populate a database; every column is hash-indexed unless
    [index:false] (used by the access-path ablation benchmark). *)

val example_date : Relal.Value.t
(** 2003-07-02 — the paper's "what is shown tonight" date, guaranteed to
    be inside the generated window. *)
