open Relal

let relations =
  [ "theatre"; "play"; "movie"; "cast"; "actor"; "directed"; "director"; "genre" ]

let fk_joins =
  [
    ("play", "tid", "theatre", "tid");
    ("play", "mid", "movie", "mid");
    ("cast", "mid", "movie", "mid");
    ("cast", "aid", "actor", "aid");
    ("directed", "mid", "movie", "mid");
    ("directed", "did", "director", "did");
    ("genre", "mid", "movie", "mid");
  ]

let create () =
  let db = Database.create () in
  let t = Value.TStr and i = Value.TInt and d = Value.TDate in
  Database.add_table db
    (Schema.make ~name:"theatre"
       ~cols:[ ("tid", i); ("name", t); ("phone", t); ("region", t) ]
       ~key:[ "tid" ] ());
  Database.add_table db
    (Schema.make ~name:"play"
       ~cols:[ ("tid", i); ("mid", i); ("date", d) ]
       ~key:[ "tid"; "mid"; "date" ] ());
  Database.add_table db
    (Schema.make ~name:"movie"
       ~cols:[ ("mid", i); ("title", t); ("year", i) ]
       ~key:[ "mid" ] ());
  Database.add_table db
    (Schema.make ~name:"cast"
       ~cols:[ ("mid", i); ("aid", i); ("award", t); ("role", t) ]
       ~key:[ "mid"; "aid" ] ());
  Database.add_table db
    (Schema.make ~name:"actor" ~cols:[ ("aid", i); ("name", t) ] ~key:[ "aid" ] ());
  Database.add_table db
    (Schema.make ~name:"directed"
       ~cols:[ ("mid", i); ("did", i) ]
       ~key:[ "mid" ] ());
  Database.add_table db
    (Schema.make ~name:"director" ~cols:[ ("did", i); ("name", t) ] ~key:[ "did" ] ());
  Database.add_table db
    (Schema.make ~name:"genre"
       ~cols:[ ("mid", i); ("genre", t) ]
       ~key:[ "mid"; "genre" ] ());
  List.iter
    (fun (r1, a1, r2, a2) -> Database.add_fk db ~from_:(r1, a1) ~to_:(r2, a2))
    fk_joins;
  db
