let genres =
  [|
    "drama"; "comedy"; "thriller"; "action"; "romance"; "sci-fi"; "horror";
    "adventure"; "crime"; "documentary"; "fantasy"; "mystery"; "animation";
    "western"; "musical"; "war"; "film-noir"; "biography";
  |]

let regions = [| "downtown"; "uptown"; "midtown"; "suburbs"; "riverside"; "old town" |]

let roles =
  [|
    "lead"; "villain"; "sidekick"; "mentor"; "love interest"; "detective";
    "narrator"; "comic relief"; "antihero"; "batman";
  |]

let awards = [| ""; "oscar"; "golden globe"; "bafta"; "palme d'or" |]

let first_names =
  [|
    "James"; "Mary"; "Nicole"; "Anthony"; "Isabella"; "Julia"; "David"; "Woody";
    "Grace"; "Henry"; "Iris"; "Jack"; "Karen"; "Liam"; "Marta"; "Nora"; "Oscar";
    "Paula"; "Quentin"; "Rita"; "Sam"; "Tina"; "Uma"; "Victor"; "Wendy";
    "Xavier"; "Yara"; "Zoe"; "Alan"; "Bella"; "Carl"; "Dora";
  |]

let last_names =
  [|
    "Kidman"; "Hopkins"; "Rossellini"; "Roberts"; "Allen"; "Lynch"; "Smith";
    "Jones"; "Brown"; "Garcia"; "Miller"; "Davis"; "Wilson"; "Moore"; "Taylor";
    "Anderson"; "Thomas"; "Jackson"; "White"; "Harris"; "Martin"; "Thompson";
    "Lee"; "Clark"; "Lewis"; "Walker"; "Hall"; "Young"; "King"; "Wright";
    "Scott"; "Green";
  |]

let title_adjectives =
  [|
    "Last"; "Silent"; "Broken"; "Golden"; "Hidden"; "Crimson"; "Eternal";
    "Forgotten"; "Midnight"; "Distant"; "Burning"; "Frozen"; "Sacred"; "Wild";
    "Lonely"; "Electric";
  |]

let title_nouns =
  [|
    "Dictator"; "Garden"; "Mohican"; "Phoenix"; "River"; "Station"; "Mirror";
    "Harbor"; "Empire"; "Voyage"; "Letter"; "Orchard"; "Covenant"; "Horizon";
    "Carnival"; "Labyrinth";
  |]

let indexed_name first last i =
  let nf = Array.length first and nl = Array.length last in
  let f = first.(i mod nf) and l = last.(i / nf mod nl) in
  let serial = i / (nf * nl) in
  if serial = 0 then Printf.sprintf "%s %s" f l
  else Printf.sprintf "%s %s %d" f l (serial + 1)

let actor_name i = indexed_name first_names last_names i

let director_name i =
  (* Offset so director and actor pools do not coincide name-for-name. *)
  indexed_name last_names first_names i

let theatre_name i = Printf.sprintf "Cinema %s %d" regions.(i mod Array.length regions) i

let phone i = Printf.sprintf "555-%04d" (i mod 10000)

let movie_title i =
  let na = Array.length title_adjectives and nn = Array.length title_nouns in
  let a = title_adjectives.(i mod na) and n = title_nouns.(i / na mod nn) in
  let serial = i / (na * nn) in
  if serial = 0 then Printf.sprintf "The %s %s" a n
  else Printf.sprintf "The %s %s %d" a n (serial + 1)
