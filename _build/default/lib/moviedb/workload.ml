open Relal

type config = {
  max_extra_rels : int;
  max_selections : int;
  max_projections : int;
}

let default = { max_extra_rels = 3; max_selections = 2; max_projections = 2 }

(* Schema join graph, both directions. *)
let adjacency =
  let add acc (r1, a1, r2, a2) =
    let push rel edge acc =
      let existing = Option.value ~default:[] (List.assoc_opt rel acc) in
      (rel, edge :: existing) :: List.remove_assoc rel acc
    in
    acc |> push r1 (r1, a1, r2, a2) |> push r2 (r2, a2, r1, a1)
  in
  List.fold_left add [] Movie_schema.fk_joins

(* Attributes worth projecting per relation (ids are uninteresting). *)
let projectable =
  [
    ("theatre", [ "name"; "region" ]);
    ("play", [ "date" ]);
    ("movie", [ "title"; "year" ]);
    ("cast", [ "role" ]);
    ("actor", [ "name" ]);
    ("directed", []);
    ("director", [ "name" ]);
    ("genre", [ "genre" ]);
  ]

let selectable =
  [
    ("theatre", [ "region" ]);
    ("play", [ "date" ]);
    ("movie", [ "year" ]);
    ("cast", [ "role" ]);
    ("actor", [ "name" ]);
    ("director", [ "name" ]);
    ("genre", [ "genre" ]);
  ]

let sample_value db rng rel att =
  let t = Database.table db rel in
  let n = Table.cardinality t in
  if n = 0 then None
  else begin
    let row = Table.get t (Putil.Rng.int rng n) in
    match Schema.col_index (Table.schema t) att with
    | None -> None
    | Some i -> ( match row.(i) with Value.Null -> None | v -> Some v)
  end

let random_query ?(cfg = default) db rng =
  let rels = Array.of_list Movie_schema.relations in
  let start = Putil.Rng.choice rng rels in
  let in_query = ref [ start ] in
  let join_preds = ref [] in
  let extra = Putil.Rng.int rng (cfg.max_extra_rels + 1) in
  for _ = 1 to extra do
    (* Edges from any in-query relation to a fresh one. *)
    let candidates =
      List.concat_map
        (fun r ->
          List.filter
            (fun (_, _, r2, _) -> not (List.mem r2 !in_query))
            (Option.value ~default:[] (List.assoc_opt r adjacency)))
        !in_query
    in
    if candidates <> [] then begin
      let r1, a1, r2, a2 = List.nth candidates (Putil.Rng.int rng (List.length candidates)) in
      in_query := r2 :: !in_query;
      join_preds :=
        Sql_ast.P_cmp
          (Eq, S_attr (Sql_ast.attr r1 a1), S_attr (Sql_ast.attr r2 a2))
        :: !join_preds
    end
  done;
  let members = List.rev !in_query in
  (* Projections. *)
  let proj_candidates =
    List.concat_map
      (fun r ->
        List.map (fun a -> (r, a)) (Option.value ~default:[] (List.assoc_opt r projectable)))
      members
  in
  let n_proj = 1 + Putil.Rng.int rng cfg.max_projections in
  let select =
    if proj_candidates = [] then
      (* Fall back to the first column of the start relation. *)
      let t = Database.table db start in
      let c = (Schema.columns (Table.schema t)).(0).Schema.cname in
      [ Sql_ast.Sel_attr (Sql_ast.attr start c, None) ]
    else begin
      let arr = Array.of_list proj_candidates in
      Putil.Rng.shuffle rng arr;
      Array.to_list (Array.sub arr 0 (min n_proj (Array.length arr)))
      |> List.map (fun (r, a) -> Sql_ast.Sel_attr (Sql_ast.attr r a, None))
    end
  in
  (* Selections with live values. *)
  let sel_preds = ref [] in
  let n_sel = Putil.Rng.int rng (cfg.max_selections + 1) in
  let sel_candidates =
    List.concat_map
      (fun r ->
        List.map (fun a -> (r, a)) (Option.value ~default:[] (List.assoc_opt r selectable)))
      members
  in
  if sel_candidates <> [] then
    for _ = 1 to n_sel do
      let r, a = List.nth sel_candidates (Putil.Rng.int rng (List.length sel_candidates)) in
      match sample_value db rng r a with
      | None -> ()
      | Some v ->
          sel_preds :=
            Sql_ast.P_cmp (Eq, S_attr (Sql_ast.attr r a), S_const v) :: !sel_preds
    done;
  Sql_ast.simple ~distinct:false ~select
    ~from:(List.map (fun r -> Sql_ast.F_rel (Sql_ast.tref r)) members)
    ~where:(Sql_ast.conj (List.rev_append !join_preds (List.rev !sel_preds)))
    ()

let queries ?cfg db ~n ~seed =
  let rng = Putil.Rng.create seed in
  List.init n (fun _ -> random_query ?cfg db rng)

let tonight_query () =
  Sql_parser.parse
    "select mv.title from movie mv, play pl where mv.mid = pl.mid and pl.date = \
     '2003-07-02'"
