(** Name pools for the synthetic IMDb-like generator: realistic-looking
    actors, directors, titles, genres, theatre names, regions and roles,
    all deterministic. *)

val genres : string array
(** 18 genres, most-popular first (the Zipf sampler's rank order). *)

val regions : string array

val roles : string array

val awards : string array
(** Award labels; index 0 is the empty string (no award, the common
    case). *)

val actor_name : int -> string
(** [actor_name i] is a unique, human-looking name for actor id [i]. *)

val director_name : int -> string

val theatre_name : int -> string

val phone : int -> string

val movie_title : int -> string
(** Unique title per movie id, composed from word pools. *)
