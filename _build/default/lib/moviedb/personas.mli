(** The paper's running examples, made concrete: Julie's and Rob's
    profiles (Figures 2–3 and the motivating example) and a small,
    hand-authored movie database on which every example from the paper
    plays out with predictable answers — used by the quickstart, the
    documentation and the unit tests with known-good expectations. *)

val julie : unit -> Perso.Profile.t
(** Julie (§3.1): downtown theatres; comedies (0.9) > thrillers (0.7) >
    adventures (0.5); directors D. Lynch (0.8) > W. Allen (0.7); actors
    N. Kidman (0.9) > A. Hopkins (0.8) > I. Rossellini (0.6); join
    scaffolding as in Figure 2, including the two directions of
    MOVIE–PLAY with degrees 1 and 0.8, and MOVIE–GENRE at 0.9.  The
    derived degrees reproduce the paper's worked numbers: movies starring
    N. Kidman 0.8·1·0.9 = 0.72, comedies 0.9·0.9 = 0.81, comedies by
    W. Allen 1−(1−0.7)(1−0.81) = 0.943. *)

val rob : unit -> Perso.Profile.t
(** Rob (§1): sci-fi movies and actress J. Roberts. *)

val tiny_db : unit -> Relal.Database.t
(** A 12-movie database containing the entities the examples name
    (W. Allen and D. Lynch films, N. Kidman and J. Roberts casts, comedy
    / thriller / sci-fi genres, downtown and uptown theatres, screenings
    on 2003-07-02). *)
