open Relal

let d = Perso.Degree.of_float
let str s = Value.Str s

let join_scaffold =
  (* Figure 2's join preferences, extended to cover the whole schema so
     preferences on any relation are reachable from any query. *)
  [
    (Perso.Atom.join ("theatre", "tid") ("play", "tid"), 1.0);
    (Perso.Atom.join ("play", "tid") ("theatre", "tid"), 1.0);
    (Perso.Atom.join ("play", "mid") ("movie", "mid"), 1.0);
    (Perso.Atom.join ("movie", "mid") ("play", "mid"), 0.8);
    (Perso.Atom.join ("movie", "mid") ("genre", "mid"), 0.9);
    (Perso.Atom.join ("genre", "mid") ("movie", "mid"), 0.9);
    (Perso.Atom.join ("movie", "mid") ("cast", "mid"), 0.8);
    (Perso.Atom.join ("cast", "mid") ("movie", "mid"), 0.8);
    (Perso.Atom.join ("cast", "aid") ("actor", "aid"), 1.0);
    (Perso.Atom.join ("actor", "aid") ("cast", "aid"), 1.0);
    (Perso.Atom.join ("movie", "mid") ("directed", "mid"), 1.0);
    (Perso.Atom.join ("directed", "mid") ("movie", "mid"), 1.0);
    (Perso.Atom.join ("directed", "did") ("director", "did"), 1.0);
    (Perso.Atom.join ("director", "did") ("directed", "did"), 1.0);
  ]

let profile_of entries =
  List.fold_left
    (fun p (a, deg) -> Perso.Profile.add p a (d deg))
    Perso.Profile.empty entries

let julie () =
  profile_of
    (join_scaffold
    @ [
        (Perso.Atom.sel "theatre" "region" (str "downtown"), 0.8);
        (Perso.Atom.sel "genre" "genre" (str "comedy"), 0.9);
        (Perso.Atom.sel "genre" "genre" (str "thriller"), 0.7);
        (Perso.Atom.sel "genre" "genre" (str "adventure"), 0.5);
        (Perso.Atom.sel "director" "name" (str "D. Lynch"), 0.8);
        (Perso.Atom.sel "director" "name" (str "W. Allen"), 0.7);
        (Perso.Atom.sel "actor" "name" (str "N. Kidman"), 0.9);
        (Perso.Atom.sel "actor" "name" (str "A. Hopkins"), 0.8);
        (Perso.Atom.sel "actor" "name" (str "I. Rossellini"), 0.6);
      ])

let rob () =
  profile_of
    (join_scaffold
    @ [
        (Perso.Atom.sel "genre" "genre" (str "sci-fi"), 0.9);
        (Perso.Atom.sel "actor" "name" (str "J. Roberts"), 0.8);
        (Perso.Atom.sel "genre" "genre" (str "action"), 0.6);
      ])

let tiny_db () =
  let db = Movie_schema.create () in
  let i x = Value.Int x and s = str in
  let date = Datagen.example_date in
  let other_date = Value.date_of_ymd 2003 7 5 in
  (* Directors. *)
  List.iteri
    (fun idx name -> Database.insert db "director" [ i idx; s name ])
    [ "W. Allen"; "D. Lynch"; "S. Spielberg"; "A. Varda" ];
  (* Actors. *)
  List.iteri
    (fun idx name -> Database.insert db "actor" [ i idx; s name ])
    [
      "N. Kidman"; "A. Hopkins"; "I. Rossellini"; "J. Roberts"; "G. Oldman";
      "M. Streep";
    ];
  (* Movies: (mid, title, year, director, genres, cast). *)
  let movies =
    [
      (0, "Sweet Chaos", 2002, 0, [ "comedy" ], [ 0; 5 ]);
      (1, "Midnight Maze", 2001, 1, [ "thriller"; "mystery" ], [ 1 ]);
      (2, "Laughing Waters", 2003, 0, [ "comedy"; "romance" ], [ 2; 5 ]);
      (3, "Star Harbor", 2003, 2, [ "sci-fi" ], [ 3; 4 ]);
      (4, "Blue Velvet Road", 1999, 1, [ "thriller" ], [ 0; 4 ]);
      (5, "Garden of Glass", 2000, 3, [ "drama" ], [ 2 ]);
      (6, "The Quiet Comet", 2002, 2, [ "sci-fi"; "adventure" ], [ 5 ]);
      (7, "Double Take", 2003, 0, [ "comedy" ], [ 1; 3 ]);
      (8, "Northern Lights", 1998, 3, [ "romance" ], [ 0 ]);
      (9, "Iron Harvest", 2003, 2, [ "action" ], [ 4; 3 ]);
      (10, "Dream Logic", 2001, 1, [ "mystery"; "thriller" ], [ 0; 2 ]);
      (11, "Second Spring", 2000, 3, [ "comedy"; "drama" ], [ 5 ]);
    ]
  in
  List.iter
    (fun (mid, title, year, did, genres, cast) ->
      Database.insert db "movie" [ i mid; s title; i year ];
      Database.insert db "directed" [ i mid; i did ];
      List.iter (fun g -> Database.insert db "genre" [ i mid; s g ]) genres;
      List.iter
        (fun aid -> Database.insert db "cast" [ i mid; i aid; s ""; s "lead" ])
        cast)
    movies;
  (* Theatres. *)
  List.iteri
    (fun idx (name, region) ->
      Database.insert db "theatre" [ i idx; s name; s (Names.phone idx); s region ])
    [
      ("Orpheum", "downtown"); ("Rialto", "uptown"); ("Lux", "downtown");
      ("Astra", "suburbs");
    ];
  (* Tonight's screenings (2003-07-02): a mix covering every persona. *)
  List.iter
    (fun (tid, mid) -> Database.insert db "play" [ i tid; i mid; date ])
    [
      (0, 0); (0, 1); (0, 3); (1, 2); (1, 4); (1, 9); (2, 6); (2, 7); (2, 10);
      (3, 5); (3, 8); (3, 11);
    ];
  (* Other nights, so date selections are selective. *)
  List.iter
    (fun (tid, mid) -> Database.insert db "play" [ i tid; i mid; other_date ])
    [ (0, 5); (1, 0); (2, 3); (3, 1) ];
  Database.index_all_columns db;
  db
