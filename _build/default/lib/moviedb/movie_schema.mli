(** The paper's movie database schema (§1, motivating example):

    {v
    THEATRE(tid, name, phone, region)
    PLAY(tid, mid, date)
    MOVIE(mid, title, year)
    CAST(mid, aid, award, role)
    ACTOR(aid, name)
    DIRECTED(mid, did)
    DIRECTOR(did, name)
    GENRE(mid, genre)
    v}

    Cardinality choices (they drive conflicts and tuple-variable
    policy): a play shows one movie ([PLAY.mid=MOVIE.mid] to-one), a
    movie has one DIRECTED row ([MOVIE.mid=DIRECTED.mid] to-one, key on
    [mid]) but many GENRE and CAST rows (to-many). *)

val create : unit -> Relal.Database.t
(** Fresh empty catalog with all eight tables and their foreign keys
    registered (both directions of each join are meaningful to the
    personalization graph; FKs are stored once, child → parent). *)

val relations : string list
(** The eight relation names, lower-case. *)

val fk_joins : (string * string * string * string) list
(** Every natural join as (rel1, att1, rel2, att2), one entry per FK;
    profile generators emit both directions from these. *)
