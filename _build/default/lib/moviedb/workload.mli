(** Random conjunctive SPJ queries over the movie schema — the "100
    randomly created queries" the paper's experiments average over (§7).

    A query is built by a random walk on the schema's join graph: start
    at a random relation, attach 0–3 more relations through natural
    joins, project one or two attributes, and add up to two equality
    selections whose values are sampled from the live data (so queries
    are satisfiable rather than vacuous). *)

type config = {
  max_extra_rels : int;  (** random-walk length beyond the start (0–n) *)
  max_selections : int;
  max_projections : int;
}

val default : config
(** 3 extra relations, 2 selections, 2 projections. *)

val random_query :
  ?cfg:config -> Relal.Database.t -> Putil.Rng.t -> Relal.Sql_ast.query
(** One random query (already bindable: aliases are relation names,
    attributes qualified). *)

val queries :
  ?cfg:config -> Relal.Database.t -> n:int -> seed:int -> Relal.Sql_ast.query list
(** A reproducible batch. *)

val tonight_query : unit -> Relal.Sql_ast.query
(** The paper's motivating query: movie titles playing on 2003-07-02. *)
