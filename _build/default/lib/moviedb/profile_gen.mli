(** Synthetic user profiles over a movie database — the paper's profile
    generator stand-in (§7: "synthetic profiles were automatically
    produced with the use of a profile generator").

    Profile {e size} is the number of atomic selections (the x-axis of
    Figure 6).  Selections are drawn over the schema's describable
    attributes (genres, actor/director names, regions, years, roles,
    titles) with values sampled from the {e actual} database contents, so
    personalized queries have matching rows.  Join preferences cover the
    schema's natural joins in both directions with high degrees — the
    scaffolding that lets selection preferences on distant relations be
    reached from a query (Figure 2 rows 1–5). *)

type config = {
  seed : int;
  n_selections : int;
  sel_degree : float * float;  (** uniform range for selection degrees *)
  join_degree : float * float;  (** uniform range for join degrees *)
  join_fraction : float;
      (** fraction of the 14 directed natural joins present in the
          profile (1.0 = all; smaller profiles are sparser over the
          schema graph, the effect Figure 6 discusses) *)
}

val default : config
(** seed 7, 20 selections, selections in [0.3,1.0], joins in [0.6,1.0],
    all joins present. *)

val generate : Relal.Database.t -> config -> Perso.Profile.t
(** @raise Invalid_argument if the database has no rows to sample
    values from. *)

val selectable_attributes : (string * string) list
(** The (relation, attribute) pairs selections are drawn over. *)
