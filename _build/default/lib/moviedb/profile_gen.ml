open Relal

type config = {
  seed : int;
  n_selections : int;
  sel_degree : float * float;
  join_degree : float * float;
  join_fraction : float;
}

let default =
  {
    seed = 7;
    n_selections = 20;
    sel_degree = (0.3, 1.0);
    join_degree = (0.6, 1.0);
    join_fraction = 1.0;
  }

let selectable_attributes =
  [
    ("theatre", "region");
    ("movie", "year");
    ("movie", "title");
    ("genre", "genre");
    ("actor", "name");
    ("director", "name");
    ("cast", "role");
    ("cast", "award");
  ]

let uniform rng (lo, hi) = lo +. Putil.Rng.float rng (hi -. lo)

(* Degrees are rounded to 3 decimals: profiles survive a text round-trip
   bit-exactly, and accidental ties stay rare. *)
let degree rng range =
  Perso.Degree.of_float (Float.round (uniform rng range *. 1000.) /. 1000.)

let sample_value db rng rel att =
  let t = Database.table db rel in
  let n = Table.cardinality t in
  if n = 0 then None
  else begin
    let row = Table.get t (Putil.Rng.int rng n) in
    match Schema.col_index (Table.schema t) att with
    | None -> None
    | Some i -> (
        match row.(i) with
        | Value.Null | Value.Str "" -> None (* unset awards etc. *)
        | v -> Some v)
  end

let generate db cfg =
  let rng = Putil.Rng.create cfg.seed in
  (* Join scaffolding: both directions of each natural join. *)
  let directed_joins =
    List.concat_map
      (fun (r1, a1, r2, a2) ->
        [ Perso.Atom.join (r1, a1) (r2, a2); Perso.Atom.join (r2, a2) (r1, a1) ])
      Movie_schema.fk_joins
  in
  let n_joins =
    let total = List.length directed_joins in
    max 2 (int_of_float (Float.round (cfg.join_fraction *. float_of_int total)))
  in
  let join_arr = Array.of_list directed_joins in
  Putil.Rng.shuffle rng join_arr;
  let joins =
    Array.to_list (Array.sub join_arr 0 (min n_joins (Array.length join_arr)))
  in
  let profile = ref Perso.Profile.empty in
  List.iter
    (fun j -> profile := Perso.Profile.add !profile j (degree rng cfg.join_degree))
    joins;
  (* Distinct selections with values present in the data. *)
  let attrs = Array.of_list selectable_attributes in
  let added = ref 0 in
  let attempts = ref 0 in
  let max_attempts = 200 * max 1 cfg.n_selections in
  while !added < cfg.n_selections && !attempts < max_attempts do
    incr attempts;
    let rel, att = attrs.(Putil.Rng.int rng (Array.length attrs)) in
    match sample_value db rng rel att with
    | None -> ()
    | Some v ->
        let atom = Perso.Atom.sel rel att v in
        if Perso.Profile.find !profile atom = None then begin
          profile := Perso.Profile.add !profile atom (degree rng cfg.sel_degree);
          incr added
        end
  done;
  if !added < cfg.n_selections then
    invalid_arg
      (Printf.sprintf
         "Profile_gen.generate: only found %d distinct selections (wanted %d); \
          database too small"
         !added cfg.n_selections);
  !profile
