open Relal

type config = {
  seed : int;
  movies : int;
  actors : int;
  directors : int;
  theatres : int;
  days : int;
  max_genres_per_movie : int;
  max_cast_per_movie : int;
  plays_per_theatre_day : int;
  zipf_s : float;
}

let default =
  {
    seed = 42;
    movies = 2_000;
    actors = 800;
    directors = 200;
    theatres = 40;
    days = 7;
    max_genres_per_movie = 3;
    max_cast_per_movie = 6;
    plays_per_theatre_day = 3;
    zipf_s = 1.0;
  }

let scale ?(seed = 42) n =
  let ratio what = max 1 (what * n / default.movies) in
  {
    default with
    seed;
    movies = n;
    actors = ratio default.actors;
    directors = ratio default.directors;
    theatres = ratio default.theatres;
  }

let example_date = Value.date_of_ymd 2003 7 2

let base_date_days = (2003, 7, 1)

let date_of_offset off =
  (* The window never exceeds a month in practice; clamp to July's 31
     days, spilling into August when a caller asks for more. *)
  let y, m, d = base_date_days in
  let d = d + off in
  if d <= 31 then Value.date_of_ymd y m d else Value.date_of_ymd y (m + 1) (d - 31)

let generate ?(index = true) cfg =
  let db = Movie_schema.create () in
  let rng = Putil.Rng.create cfg.seed in
  let i x = Value.Int x and s x = Value.Str x in
  (* Actors / directors / theatres. *)
  for a = 0 to cfg.actors - 1 do
    Database.insert db "actor" [ i a; s (Names.actor_name a) ]
  done;
  for d = 0 to cfg.directors - 1 do
    Database.insert db "director" [ i d; s (Names.director_name d) ]
  done;
  for t = 0 to cfg.theatres - 1 do
    Database.insert db "theatre"
      [
        i t;
        s (Names.theatre_name t);
        s (Names.phone t);
        s Names.regions.(Putil.Rng.int rng (Array.length Names.regions));
      ]
  done;
  (* Movies with genres, one director, and a cast. *)
  let genre_z = Putil.Zipf.create ~n:(Array.length Names.genres) ~s:cfg.zipf_s in
  let actor_z = Putil.Zipf.create ~n:cfg.actors ~s:cfg.zipf_s in
  let director_z = Putil.Zipf.create ~n:cfg.directors ~s:cfg.zipf_s in
  for m = 0 to cfg.movies - 1 do
    Database.insert db "movie"
      [ i m; s (Names.movie_title m); i (1950 + Putil.Rng.int rng 54) ];
    (* 1..max distinct genres. *)
    let n_genres = 1 + Putil.Rng.int rng cfg.max_genres_per_movie in
    let chosen = Hashtbl.create 4 in
    let attempts = ref 0 in
    while Hashtbl.length chosen < n_genres && !attempts < 20 do
      incr attempts;
      Hashtbl.replace chosen (Putil.Zipf.sample genre_z rng) ()
    done;
    Hashtbl.iter
      (fun g () -> Database.insert db "genre" [ i m; s Names.genres.(g) ])
      chosen;
    Database.insert db "directed" [ i m; i (Putil.Zipf.sample director_z rng) ];
    let n_cast = 2 + Putil.Rng.int rng (max 1 (cfg.max_cast_per_movie - 1)) in
    let cast = Hashtbl.create 8 in
    let attempts = ref 0 in
    while Hashtbl.length cast < n_cast && !attempts < 40 do
      incr attempts;
      Hashtbl.replace cast (Putil.Zipf.sample actor_z rng) ()
    done;
    Hashtbl.iter
      (fun a () ->
        let award =
          (* Awards are rare: ~4% of cast rows. *)
          if Putil.Rng.int rng 25 = 0 then
            Names.awards.(1 + Putil.Rng.int rng (Array.length Names.awards - 1))
          else Names.awards.(0)
        in
        Database.insert db "cast"
          [
            i m;
            i a;
            s award;
            s Names.roles.(Putil.Rng.int rng (Array.length Names.roles));
          ])
      cast
  done;
  (* Screenings: distinct movies per theatre per day. *)
  for t = 0 to cfg.theatres - 1 do
    for day = 0 to cfg.days - 1 do
      let picks =
        Putil.Rng.sample_without_replacement rng
          (min cfg.plays_per_theatre_day cfg.movies)
          cfg.movies
      in
      List.iter
        (fun m -> Database.insert db "play" [ i t; i m; date_of_offset day ])
        picks
    done
  done;
  if index then Database.index_all_columns db;
  db
