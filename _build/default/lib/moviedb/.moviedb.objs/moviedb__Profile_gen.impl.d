lib/moviedb/profile_gen.ml: Array Database Float List Movie_schema Perso Printf Putil Relal Schema Table Value
