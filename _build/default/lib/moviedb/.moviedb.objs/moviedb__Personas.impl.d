lib/moviedb/personas.ml: Database Datagen List Movie_schema Names Perso Relal Value
