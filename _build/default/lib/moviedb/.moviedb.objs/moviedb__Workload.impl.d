lib/moviedb/workload.ml: Array Database List Movie_schema Option Putil Relal Schema Sql_ast Sql_parser Table Value
