lib/moviedb/names.mli:
