lib/moviedb/profile_gen.mli: Perso Relal
