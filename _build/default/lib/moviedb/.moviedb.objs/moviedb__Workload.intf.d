lib/moviedb/workload.mli: Putil Relal
