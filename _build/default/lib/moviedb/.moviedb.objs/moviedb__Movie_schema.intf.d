lib/moviedb/movie_schema.mli: Relal
