lib/moviedb/names.ml: Array Printf
