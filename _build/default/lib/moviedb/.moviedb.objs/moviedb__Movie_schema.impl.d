lib/moviedb/movie_schema.ml: Database List Relal Schema Value
