lib/moviedb/personas.mli: Perso Relal
