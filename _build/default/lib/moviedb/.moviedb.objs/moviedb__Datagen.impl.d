lib/moviedb/datagen.ml: Array Database Hashtbl List Movie_schema Names Putil Relal Value
