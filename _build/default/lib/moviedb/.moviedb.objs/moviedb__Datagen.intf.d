lib/moviedb/datagen.mli: Relal
