(* Binary max-heap over (priority, sequence) pairs.  The sequence number
   makes ties pop FIFO, which the selection algorithm's pruning proof
   relies on (shorter paths first among equal degrees). *)

type 'a entry = { prio : float; seq : int; v : 'a }

type 'a t = {
  mutable heap : 'a entry array; (* heap.(0) unused when size = 0 *)
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }

let is_empty q = q.size = 0
let length q = q.size

(* [before a b]: should a pop before b? *)
let before a b = a.prio > b.prio || (a.prio = b.prio && a.seq < b.seq)

(* [grow q fill] doubles capacity, padding fresh slots with [fill] (any
   value of the right type keeps the array monomorphic without resorting
   to options or unsafe tricks). *)
let grow q fill =
  let cap = Array.length q.heap in
  let ncap = if cap = 0 then 16 else 2 * cap in
  let nh = Array.make ncap fill in
  Array.blit q.heap 0 nh 0 q.size;
  q.heap <- nh

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before q.heap.(i) q.heap.(parent) then begin
      let tmp = q.heap.(i) in
      q.heap.(i) <- q.heap.(parent);
      q.heap.(parent) <- tmp;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < q.size && before q.heap.(l) q.heap.(!best) then best := l;
  if r < q.size && before q.heap.(r) q.heap.(!best) then best := r;
  if !best <> i then begin
    let tmp = q.heap.(i) in
    q.heap.(i) <- q.heap.(!best);
    q.heap.(!best) <- tmp;
    sift_down q !best
  end

let push q prio v =
  let e = { prio; seq = q.next_seq; v } in
  if q.size = Array.length q.heap then grow q e;
  q.heap.(q.size) <- e;
  q.next_seq <- q.next_seq + 1;
  q.size <- q.size + 1;
  sift_up q (q.size - 1)

let peek q = if q.size = 0 then None else Some (q.heap.(0).prio, q.heap.(0).v)

let pop q =
  if q.size = 0 then None
  else begin
    let top = q.heap.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.heap.(0) <- q.heap.(q.size);
      sift_down q 0
    end;
    Some (top.prio, top.v)
  end

let to_sorted_list q =
  let entries = Array.sub q.heap 0 q.size in
  let l = Array.to_list entries in
  let l = List.sort (fun a b -> if before a b then -1 else if before b a then 1 else 0) l in
  List.map (fun e -> (e.prio, e.v)) l
