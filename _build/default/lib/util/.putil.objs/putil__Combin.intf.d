lib/util/combin.mli:
