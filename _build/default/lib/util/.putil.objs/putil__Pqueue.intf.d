lib/util/pqueue.mli:
