lib/util/rng.ml: Array Fun Hashtbl Int64
