lib/util/rng.mli:
