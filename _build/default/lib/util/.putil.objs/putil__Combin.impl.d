lib/util/combin.ml: List
