(** Stable max-priority queue keyed by float priority.

    The preference-selection algorithm (paper §5.2) keeps candidate paths
    "in order of decreasing degree of interest", and inserts each new path
    *after the last path with degree greater than or equal to its degree*,
    "to favour the selection of preferences that correspond to shorter
    paths among those with the same degree of interest".  That is exactly
    FIFO tie-breaking on a max-priority queue, which this module provides
    via an insertion-sequence secondary key. *)

type 'a t
(** Mutable queue of ['a] elements with float priorities. *)

val create : unit -> 'a t
(** Fresh empty queue. *)

val is_empty : 'a t -> bool

val length : 'a t -> int

val push : 'a t -> float -> 'a -> unit
(** [push q prio x] enqueues [x].  Among equal priorities, elements pop in
    insertion order. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the highest-priority (earliest-inserted among ties)
    element, or [None] when empty. *)

val peek : 'a t -> (float * 'a) option
(** Like {!pop} without removing. *)

val to_sorted_list : 'a t -> (float * 'a) list
(** Non-destructive: contents in pop order.  O(n log n). *)
