(** Combinatorics helpers.

    Preference integration's SQ approach materialises the disjunction of
    all [C(K-M, L)] conjunctions of [L] preferences (paper §6); these
    helpers enumerate and count those combinations. *)

val choose : int -> int -> int
(** [choose n k] = binomial coefficient C(n, k); 0 when [k < 0] or
    [k > n].  Overflow-safe for the small arguments personalization uses
    (n ≤ 60 in the paper's experiments), computed with intermediate
    division. *)

val subsets : 'a list -> int -> 'a list list
(** [subsets xs k] enumerates every k-element subset of [xs], each subset
    preserving the relative order of [xs], subsets in lexicographic order
    of member positions.  [subsets xs 0 = [[]]]. *)

val pairs : 'a list -> ('a * 'a) list
(** All unordered pairs of distinct positions, in order. *)
