(** Zipf-distributed sampling.

    Popularity in the movie database (genres, actors, directors and the
    values users put in their profiles) follows a heavy-tailed
    distribution; a Zipf sampler reproduces the skew the paper's IMDb
    extract exhibits. *)

type t
(** A sampler over ranks [0 .. n-1] with P(rank = i) proportional to
    [1 / (i+1)^s]. *)

val create : n:int -> s:float -> t
(** [create ~n ~s] precomputes the cumulative distribution for [n] ranks
    with exponent [s].  [s = 0.] degenerates to uniform.
    @raise Invalid_argument if [n <= 0] or [s < 0.]. *)

val n : t -> int
(** Number of ranks. *)

val exponent : t -> float
(** The skew exponent [s]. *)

val sample : t -> Rng.t -> int
(** Draw a rank in [\[0, n)]; rank 0 is the most popular. *)

val pmf : t -> int -> float
(** [pmf t i] is the probability of rank [i].
    @raise Invalid_argument if [i] is out of range. *)
