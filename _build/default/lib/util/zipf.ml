type t = { n : int; s : float; cdf : float array }

let create ~n ~s =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if s < 0. then invalid_arg "Zipf.create: s must be non-negative";
  let cdf = Array.make n 0. in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. (1. /. Float.pow (float_of_int (i + 1)) s);
    cdf.(i) <- !acc
  done;
  let total = !acc in
  for i = 0 to n - 1 do
    cdf.(i) <- cdf.(i) /. total
  done;
  (* Guard against floating-point shortfall at the top end. *)
  cdf.(n - 1) <- 1.0;
  { n; s; cdf }

let n t = t.n
let exponent t = t.s

let sample t rng =
  let u = Rng.float rng 1.0 in
  (* Binary search for the first index with cdf >= u. *)
  let lo = ref 0 and hi = ref (t.n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo

let pmf t i =
  if i < 0 || i >= t.n then invalid_arg "Zipf.pmf: rank out of range";
  if i = 0 then t.cdf.(0) else t.cdf.(i) -. t.cdf.(i - 1)
