let choose n k =
  if k < 0 || k > n then 0
  else begin
    let k = min k (n - k) in
    let acc = ref 1 in
    for i = 1 to k do
      (* Multiply before dividing; the running product after dividing by i!
         is always an integer (it is C(n - k + i, i)). *)
      acc := !acc * (n - k + i) / i
    done;
    !acc
  end

let rec subsets xs k =
  if k = 0 then [ [] ]
  else
    match xs with
    | [] -> []
    | x :: rest ->
        let with_x = List.map (fun s -> x :: s) (subsets rest (k - 1)) in
        let without_x = subsets rest k in
        with_x @ without_x

let pairs xs =
  let rec go = function
    | [] -> []
    | x :: rest -> List.map (fun y -> (x, y)) rest @ go rest
  in
  go xs
