(** Deterministic pseudo-random number generation.

    A small, fast, splittable PRNG (SplitMix64) used everywhere randomness
    is needed — data generation, synthetic profiles, random workloads —
    so that every experiment in the repository is reproducible from a
    seed.  The interface mirrors the parts of [Random.State] we need, but
    the sequence is stable across OCaml versions. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator deterministically derived
    from [seed]. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of [t]'s continuation. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)].  @raise Invalid_argument if
    [n <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] (inclusive).
    @raise Invalid_argument if [hi < lo]. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val bool : t -> bool
(** Fair coin. *)

val choice : t -> 'a array -> 'a
(** Uniform element of a non-empty array.
    @raise Invalid_argument on an empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_without_replacement : t -> int -> int -> int list
(** [sample_without_replacement t k n] draws [k] distinct integers from
    [\[0, n)], in random order.  @raise Invalid_argument if [k > n] or
    [k < 0]. *)
