(* SplitMix64: public-domain algorithm by Sebastiano Vigna.  Chosen for
   determinism across platforms and OCaml releases, trivial state (one
   int64) and cheap splitting. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix (Int64.of_int seed) }

let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let s = bits64 t in
  { state = s }

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let n64 = Int64.of_int n in
  let rec go () =
    let r = Int64.shift_right_logical (bits64 t) 1 in
    let v = Int64.rem r n64 in
    if Int64.(sub r v > sub (sub max_int n64) 1L) then go () else Int64.to_int v
  in
  go ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: hi < lo";
  lo + int t (hi - lo + 1)

let float t x =
  (* 53 random bits -> [0,1) *)
  let r = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float r /. 9007199254740992.0 *. x

let bool t = Int64.(logand (bits64 t) 1L) = 1L

let choice t a =
  if Array.length a = 0 then invalid_arg "Rng.choice: empty array";
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_without_replacement t k n =
  if k < 0 || k > n then invalid_arg "Rng.sample_without_replacement";
  if k * 3 >= n then begin
    (* Dense case: shuffle a full index array. *)
    let a = Array.init n Fun.id in
    shuffle t a;
    Array.to_list (Array.sub a 0 k)
  end
  else begin
    (* Sparse case: rejection into a hash set. *)
    let seen = Hashtbl.create (2 * k) in
    let acc = ref [] in
    while Hashtbl.length seen < k do
      let v = int t n in
      if not (Hashtbl.mem seen v) then begin
        Hashtbl.add seen v ();
        acc := v :: !acc
      end
    done;
    !acc
  end
