let path_line p =
  Printf.sprintf "%-70s doi=%s  (via %s)"
    (Path.to_condition_string p)
    (Degree.to_string p.Path.degree)
    p.Path.anchor_tv

let selection_report paths =
  match paths with
  | [] -> "no preferences selected\n"
  | _ ->
      String.concat "\n"
        (List.mapi (fun i p -> Printf.sprintf "%2d. %s" (i + 1) (path_line p)) paths)
      ^ "\n"

let outcome_report (o : Personalize.outcome) =
  let b = Buffer.create 512 in
  Buffer.add_string b "== Selected preferences (P_K) ==\n";
  Buffer.add_string b (selection_report o.selected);
  Buffer.add_string b
    (Printf.sprintf "mandatory: %d, optional: %d\n" (List.length o.mandatory)
       (List.length o.optional));
  let st = o.selection_stats in
  Buffer.add_string b
    (Printf.sprintf
       "selection stats: %d pops, %d pushes, %d expansions, %d conflicts \
        discarded, %d cycles pruned, max queue %d\n"
       st.Select.pops st.Select.pushes st.Select.expansions
       st.Select.discarded_conflicts st.Select.discarded_cycles st.Select.max_queue);
  Buffer.add_string b "== Personalized query ==\n";
  Buffer.add_string b (Relal.Sql_print.query_to_pretty o.personalized);
  Buffer.add_string b "\n";
  Buffer.contents b

let pp_outcome fmt o = Format.pp_print_string fmt (outcome_report o)
