type t = float

let of_float_opt f =
  if Float.is_nan f || f < 0. || f > 1. then None else Some f

let of_float f =
  match of_float_opt f with
  | Some d -> d
  | None -> invalid_arg (Printf.sprintf "Degree.of_float: %g not in [0,1]" f)

let to_float d = d
let zero = 0.
let one = 1.
let equal (a : t) b = a = b
let compare (a : t) b = Float.compare a b
let compare_desc (a : t) b = Float.compare b a

let trans ds = List.fold_left (fun acc d -> acc *. d) 1. ds
let trans2 a b = a *. b

let conj = function
  | [] -> invalid_arg "Degree.conj: empty"
  | ds -> 1. -. List.fold_left (fun acc d -> acc *. (1. -. d)) 1. ds

let disj = function
  | [] -> invalid_arg "Degree.disj: empty"
  | ds ->
      List.fold_left (fun acc d -> acc +. d) 0. ds /. float_of_int (List.length ds)

let to_string d =
  let s = Printf.sprintf "%.4f" d in
  (* Trim trailing zeros but keep at least one decimal. *)
  let rec trim i = if i > 3 && s.[i - 1] = '0' then trim (i - 1) else i in
  String.sub s 0 (trim (String.length s))

let pp fmt d = Format.pp_print_string fmt (to_string d)
