let all_selection_paths ?(max_len = 12) db g qg =
  let out = ref [] in
  let rec dfs path =
    if Path.length path < max_len then begin
      List.iter
        (fun (atom, d) ->
          match atom with
          | Atom.Sel s -> (
              match Path.extend_sel path s d with
              | Error _ -> ()
              | Ok p ->
                  if not (Conflict.conflicts_with_query db qg p) then
                    out := p :: !out)
          | Atom.Join j ->
              if not (Qgraph.mem_relation qg j.Atom.j_to_rel) then (
                match Path.extend_join path j d with
                | Error _ -> ()
                | Ok p -> dfs p))
        (Pgraph.out_edges g (Path.end_rel path))
    end
  in
  List.iter
    (fun (tv, rel) -> dfs (Path.start ~anchor_tv:tv ~anchor_rel:rel))
    (Qgraph.tvs qg);
  !out

let select db g qg ci =
  let candidates = all_selection_paths db g qg in
  (* Decreasing degree; shorter paths first among equal degrees (the
     queue's tie-break in the best-first algorithm). *)
  let sorted =
    List.stable_sort
      (fun p1 p2 ->
        match Degree.compare_desc p1.Path.degree p2.Path.degree with
        | 0 -> Int.compare (Path.length p1) (Path.length p2)
        | c -> c)
      candidates
  in
  let rec take acc degrees = function
    | [] -> List.rev acc
    | p :: rest ->
        if Criteria.accepts ci ~current:(List.rev degrees) p.Path.degree then
          take (p :: acc) (p.Path.degree :: degrees) rest
        else List.rev acc
  in
  take [] [] sorted
