(** Soft preferences (§8; §2's "price near $20").

    The paper's stored preferences are {e hard} constraints — satisfied
    or not.  A soft preference targets a {e numeric} attribute and awards
    partial satisfaction by closeness: reaching the attribute through a
    join path (transitively damped, like any preference), a row whose
    value [v] lies within [tolerance] of [target] satisfies the
    preference to degree

    [weight · path_degree · max(0, 1 − |v − target| / tolerance)].

    Soft conditions cannot be integrated as WHERE predicates without
    losing their gradual nature, so — like {!Negative} — they are
    evaluated as partial queries that additionally project the target
    attribute, and their per-row degrees join the hard preferences'
    degrees inside the usual conjunctive combination
    [1 − Π(1−dᵢ)] at ranking time.  A row reached several times through a
    to-many path (e.g. several screenings) takes its {e best} closeness. *)

type t = {
  path : Path.t;
      (** join-only path from a query tuple variable to the relation
          holding the attribute (length 0 for a query relation itself) *)
  att : string;  (** numeric attribute of the path's end relation *)
  target : float;
  tolerance : float;  (** > 0; values at distance ≥ tolerance score 0 *)
  weight : Degree.t;  (** interest in a perfectly matching value *)
}

val make :
  path:Path.t ->
  att:string ->
  target:float ->
  tolerance:float ->
  weight:Degree.t ->
  (t, string) result
(** Validates: the path must not end in a selection, tolerance must be
    positive. *)

val closeness : t -> float -> float
(** The closeness kernel [max(0, 1 − |v − target| / tolerance)] alone,
    before weight and path damping. *)

val row_degrees :
  Relal.Database.t -> Qgraph.t -> t -> (Relal.Value.t array * Degree.t) list
(** Execute the soft preference's partial query: each qualifying result
    row of the original query paired with its (best) soft degree; rows
    scoring 0 are omitted. *)

val rank :
  ?l:int ->
  Relal.Database.t ->
  Qgraph.t ->
  likes:Integrate.instantiated list ->
  soft:t list ->
  unit ->
  (Relal.Value.t array * Degree.t) list
(** Ranked rows combining hard likes and soft preferences: a row
    qualifies with at least [l] (default 1) satisfied preferences of
    either kind, and scores the conjunctive combination of all its hard
    degrees and non-zero soft degrees. *)
