(** Syntactic conflict detection (§5, §6(a)).

    Two conditions are syntactically conflicting when they are comprised
    of a {e common transitive join} plus atomic equality selections on the
    {e same attribute} with different values, and every constituent atomic
    join, in the direction of the selection, is {e to-one}: the chain then
    pins a single row, which cannot carry two different values.

    Examples over the movie schema:
    - [THEATRE.region='uptown'] vs [THEATRE.region='downtown'] conflict
      (no joins; a theatre is in one region);
    - [PLAY→MOVIE.title='A'] vs [PLAY→MOVIE.title='B'] conflict
      (PLAY.mid=MOVIE.mid is to-one: one movie per play);
    - [MOVIE→GENRE.genre='comedy'] vs [MOVIE→GENRE.genre='thriller'] do
      {e not} conflict (MOVIE.mid=GENRE.mid is to-many: a movie has many
      genre rows, so both can hold via different tuple variables).

    As in the paper's prototype, conflicts are handled {e pairwise};
    multi-condition conflicts (the "one movie at a time" example) are out
    of scope. *)

val joins_all_to_one : Relal.Database.t -> Atom.join list -> bool
(** Is every join of the chain to-one in the path direction? *)

val paths_conflict : Relal.Database.t -> Path.t -> Path.t -> bool
(** Pairwise conflict between two candidate preferences: both must be
    selection paths anchored at the same query tuple variable, with
    identical join sequences whose joins are all to-one, carrying
    equality selections on the same attribute with different values. *)

val conflicts_with_query : Relal.Database.t -> Qgraph.t -> Path.t -> bool
(** Does the path's selection conflict with an atomic selection already
    in the query's qualification?  A query condition has an empty
    transitive join, so this triggers exactly for join-free paths whose
    selection contradicts a query selection on the same tuple
    variable. *)
