open Relal

type stats = {
  partials_total : int;
  partials_executed : int;
  rows_tracked : int;
  random_probes : int;
}

type result = {
  rows : (Value.t array * Degree.t) list;
  stats : stats;
}

module Key = struct
  type t = Value.t array

  let equal a b =
    Array.length a = Array.length b
    &&
    let rec go i = i >= Array.length a || (Value.equal a.(i) b.(i) && go (i + 1)) in
    go 0

  let hash a = Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 a
end

module KH = Hashtbl.Make (Key)

(* One partial query: the original query + mandatory + this preference,
   DISTINCT, projecting only the original output columns. *)
let partial_query db qg ~mandatory inst =
  ignore db;
  let q0 = Qgraph.query qg in
  let where =
    Sql_ast.conj
      (Integrate.dedup_conjuncts
         (Sql_ast.conjuncts q0.Sql_ast.where
         @ List.map (fun i -> i.Integrate.pred) mandatory
         @ [ inst.Integrate.pred ]))
  in
  let extra =
    let seen = Hashtbl.create 8 in
    List.filter
      (fun (r : Sql_ast.table_ref) ->
        if Hashtbl.mem seen r.Sql_ast.alias then false
        else begin
          Hashtbl.add seen r.Sql_ast.alias ();
          true
        end)
      (List.concat_map (fun i -> i.Integrate.trefs) (mandatory @ [ inst ]))
  in
  {
    q0 with
    Sql_ast.distinct = true;
    from = q0.Sql_ast.from @ List.map (fun r -> Sql_ast.F_rel r) extra;
    where;
    order_by = [];
    limit = None;
  }

let conj_deg = function [] -> 0. | ds -> Degree.to_float (Degree.conj ds)

let top_n ?(l = 1) ~n db qg ~mandatory ~optional () =
  if n < 0 then invalid_arg "Topn.top_n: negative n";
  let partials = Array.of_list optional in
  let k = Array.length partials in
  (* Degrees in partial order (decreasing). *)
  let degs =
    Array.map (fun i -> i.Integrate.path.Path.degree) partials
  in
  (* suffix_degrees.(i) = degrees of partials i..k-1 (the "remaining"
     degrees before executing partial i). *)
  let suffix i = Array.to_list (Array.sub degs i (k - i)) in
  (* candidate rows: key -> (satisfied degrees, satisfied count) *)
  let seen : (Degree.t list * int) KH.t = KH.create 64 in
  (* Rows whose exact final score is already known, through random-access
     probes against every remaining partial (Fagin's TA).  Such rows must
     not be re-credited when those partials later execute. *)
  let complete : unit KH.t = KH.create 16 in
  let executed = ref 0 in
  let probes = ref 0 in
  let finished = ref false in
  let i = ref 0 in
  (* Lower bound (confirmed score) of a row: qualified rows score their
     current conjunction, unqualified rows score 0. *)
  let lower (ds, cnt) = if cnt >= l then conj_deg ds else 0. in
  (* Upper bound: the row additionally satisfies every remaining partial
     — unless its score is already exact. *)
  let upper row remaining ((ds, cnt) as s) =
    if KH.mem complete row then lower s
    else begin
      let all = ds @ remaining in
      if cnt + List.length remaining >= l then conj_deg all else 0.
    end
  in
  (* The current top-n candidate set by confirmed score, with a
     deterministic tie-break, so the termination check can bound the
     rows *outside* it (ties included) rather than everything below the
     n-th score. *)
  let row_key row = Array.map Value.to_string row in
  let current_top_set () =
    let scored = KH.fold (fun row s acc -> (row, lower s) :: acc) seen [] in
    let sorted =
      List.sort
        (fun (r1, s1) (r2, s2) ->
          match compare s2 s1 with 0 -> compare (row_key r1) (row_key r2) | c -> c)
        scored
    in
    List.filteri (fun idx _ -> idx < n) sorted
  in
  (* Forward declaration of the random-access probe (defined with the
     other query builders below). *)
  let probe_row inst row =
    incr probes;
    let q0 = Qgraph.query qg in
    let proj_attrs =
      List.filter_map
        (function Sql_ast.Sel_attr (a, _) -> Some a | _ -> None)
        q0.Sql_ast.select
    in
    let pin =
      List.mapi
        (fun idx a -> Sql_ast.P_cmp (Eq, S_attr a, S_const row.(idx)))
        proj_attrs
    in
    let q = partial_query db qg ~mandatory inst in
    let q =
      { q with Sql_ast.where = Sql_ast.conj (q.Sql_ast.where :: pin); limit = Some 1 }
    in
    (Engine.run_query db q).Exec.rows <> []
  in
  (* Complete a row's score exactly against the unexecuted partials. *)
  let complete_row row =
    if not (KH.mem complete row) then begin
      let remaining_insts = Array.to_list (Array.sub partials !i (k - !i)) in
      let ds, cnt = try KH.find seen row with Not_found -> ([], 0) in
      let extra =
        List.filter_map
          (fun inst ->
            if probe_row inst row then Some inst.Integrate.path.Path.degree
            else None)
          remaining_insts
      in
      KH.replace seen row (ds @ extra, cnt + List.length extra);
      KH.replace complete row ()
    end
  in
  (* Termination: the n-th best confirmed score must dominate the upper
     bound of every row outside the candidate window and of unseen rows.
     When only a handful of seen rows block termination, resolve them by
     random access instead of executing more partials (TA's trade). *)
  let rec try_finish () =
    if n > 0 then begin
      let remaining = suffix !i in
      let top = current_top_set () in
      if List.length top = n then begin
        let nth = snd (List.nth top (n - 1)) in
        let in_top row = List.exists (fun (r, _) -> row_key r = row_key row) top in
        let unseen_upper =
          if List.length remaining >= l then conj_deg remaining else 0.
        in
        if unseen_upper <= nth then begin
          let blockers =
            KH.fold
              (fun row s acc ->
                if (not (in_top row)) && upper row remaining s > nth then
                  row :: acc
                else acc)
              seen []
          in
          if blockers = [] then finished := true
          else if List.length blockers <= max 4 (2 * n) then begin
            List.iter complete_row blockers;
            (* Completion may promote a blocker into the window; recheck
               with exact uppers.  Progress is guaranteed: completed rows
               never block again. *)
            try_finish ()
          end
        end
      end
    end
  in
  while (not !finished) && !i < k do
    let inst = partials.(!i) in
    let q = partial_query db qg ~mandatory inst in
    let res = Engine.run_query db q in
    incr executed;
    List.iter
      (fun row ->
        if not (KH.mem complete row) then begin
          let entry =
            match KH.find_opt seen row with Some e -> e | None -> ([], 0)
          in
          let ds, cnt = entry in
          KH.replace seen row (inst.Integrate.path.Path.degree :: ds, cnt + 1)
        end)
      res.Exec.rows;
    incr i;
    try_finish ();
    if !i >= k then finished := true
  done;
  (* When the loop stopped early, the candidate window's membership is
     settled but not every member's exact score; complete the window with
     random-access probes (no-ops for rows already completed), then take
     the qualified top-n. *)
  let sort_scored scored =
    List.sort
      (fun (r1, d1) (r2, d2) ->
        match Degree.compare_desc d1 d2 with
        | 0 ->
            (* Deterministic tie-break on row contents. *)
            compare (Array.map Value.to_string r1) (Array.map Value.to_string r2)
        | c -> c)
      scored
  in
  let top =
    if !i >= k then begin
      (* Every partial ran: scores are exact, no probing needed. *)
      let scored =
        KH.fold
          (fun row (ds, cnt) acc ->
            if cnt >= l && ds <> [] then (row, Degree.conj ds) :: acc else acc)
          seen []
      in
      List.filteri (fun idx _ -> idx < n) (sort_scored scored)
    end
    else begin
      (* The candidate window includes rows that have not yet satisfied
         [l] preferences, since the probes may still qualify them. *)
      let candidates = current_top_set () in
      List.iter (fun (row, _) -> complete_row row) candidates;
      let completed =
        List.filter_map
          (fun (row, _) ->
            let ds, cnt = KH.find seen row in
            if cnt >= l && ds <> [] then Some (row, Degree.conj ds) else None)
          candidates
      in
      List.filteri (fun idx _ -> idx < n) (sort_scored completed)
    end
  in
  {
    rows = top;
    stats =
      {
        partials_total = k;
        partials_executed = !executed;
        rows_tracked = KH.length seen;
        random_probes = !probes;
      };
  }
