type t = {
  anchor_tv : string;
  anchor_rel : string;
  joins : (Atom.join * Degree.t) list;
  sel : (Atom.selection * Degree.t) option;
  degree : Degree.t;
  rels : string list;
}

let start ~anchor_tv ~anchor_rel =
  let anchor_rel = String.lowercase_ascii anchor_rel in
  {
    anchor_tv = String.lowercase_ascii anchor_tv;
    anchor_rel;
    joins = [];
    sel = None;
    degree = Degree.one;
    rels = [ anchor_rel ];
  }

let end_rel t =
  match t.sel with
  | Some (s, _) -> s.Atom.s_rel
  | None -> (
      match t.rels with last :: _ -> last | [] -> t.anchor_rel)

(* rels is kept most-recent-first. *)
let visits t rel = List.mem (String.lowercase_ascii rel) t.rels

let extend_join t (j : Atom.join) d =
  if t.sel <> None then Error "path already terminated by a selection"
  else if j.Atom.j_from_rel <> end_rel t then
    Error
      (Printf.sprintf "join %s does not start at path end %s" (Atom.to_string (Join j))
         (end_rel t))
  else if visits t j.Atom.j_to_rel then
    Error (Printf.sprintf "cycle: relation %s already on path" j.Atom.j_to_rel)
  else
    Ok
      {
        t with
        joins = t.joins @ [ (j, d) ];
        degree = Degree.trans2 t.degree d;
        rels = j.Atom.j_to_rel :: t.rels;
      }

let extend_sel t (s : Atom.selection) d =
  if t.sel <> None then Error "path already terminated by a selection"
  else if s.Atom.s_rel <> end_rel t then
    Error
      (Printf.sprintf "selection %s is not on path end %s"
         (Atom.to_string (Sel s)) (end_rel t))
  else Ok { t with sel = Some (s, d); degree = Degree.trans2 t.degree d }

let is_selection t = t.sel <> None
let length t = List.length t.joins + match t.sel with Some _ -> 1 | None -> 0

let atoms t =
  List.map (fun (j, d) -> (Atom.Join j, d)) t.joins
  @ match t.sel with Some (s, d) -> [ (Atom.Sel s, d) ] | None -> []

let join_atoms t = List.map fst t.joins
let selection t = t.sel

let equal a b =
  a.anchor_tv = b.anchor_tv
  && a.anchor_rel = b.anchor_rel
  && List.length a.joins = List.length b.joins
  && List.for_all2 (fun (j1, _) (j2, _) -> j1 = j2) a.joins b.joins
  && (match (a.sel, b.sel) with
     | None, None -> true
     | Some (s1, _), Some (s2, _) -> Atom.equal (Sel s1) (Sel s2)
     | _ -> false)

let to_condition_string t =
  let parts = List.map (fun (a, _) -> Atom.to_string a) (atoms t) in
  match parts with [] -> "TRUE" | _ -> String.concat " and " parts

let pp fmt t =
  Format.fprintf fmt "%s  [doi %s, via %s]" (to_condition_string t)
    (Degree.to_string t.degree) t.anchor_tv
