type t =
  | Top_r of int
  | Above of Degree.t
  | Disj_above of Degree.t
  | Conj_above of Degree.t

let top_r r =
  if r < 0 then invalid_arg "Criteria.top_r: negative" else Top_r r

let above d = Above (Degree.of_float d)
let disj_above d = Disj_above (Degree.of_float d)
let conj_above d = Conj_above (Degree.of_float d)

let holds c degrees =
  match c with
  | Top_r r -> List.length degrees <= r
  | Above d -> (
      (* Degrees are decreasing: only the last (smallest) one matters. *)
      match List.rev degrees with
      | [] -> true
      | last :: _ -> Degree.compare last d > 0)
  | Disj_above d -> (
      match degrees with
      | [] -> true
      | _ -> Degree.compare (Degree.disj degrees) d > 0)
  | Conj_above d -> (
      match degrees with
      | [] -> true
      | _ -> Degree.compare (Degree.conj degrees) d > 0)

let accepts c ~current d = holds c (current @ [ d ])

let prefix_monotone = function
  | Top_r _ | Above _ | Disj_above _ -> true
  | Conj_above _ -> false

let expansion_prunable = function
  | Top_r _ | Above _ -> true
  | Disj_above _ | Conj_above _ -> false

let to_string = function
  | Top_r r -> Printf.sprintf "top %d" r
  | Above d -> Printf.sprintf "degree > %s" (Degree.to_string d)
  | Disj_above d -> Printf.sprintf "disjunction degree > %s" (Degree.to_string d)
  | Conj_above d -> Printf.sprintf "conjunction degree > %s" (Degree.to_string d)

let pp fmt c = Format.pp_print_string fmt (to_string c)
