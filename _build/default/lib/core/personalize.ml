open Relal

type params = {
  k : Criteria.t;
  m : [ `Count of int | `Min_degree of float ];
  l : [ `At_least of int | `Min_doi of float ];
  method_ : [ `SQ | `MQ ];
  rank : bool;
}

let default_params =
  { k = Criteria.Top_r 5; m = `Count 0; l = `At_least 1; method_ = `MQ; rank = true }

type outcome = {
  selected : Path.t list;
  mandatory : Integrate.instantiated list;
  optional : Integrate.instantiated list;
  personalized : Sql_ast.query;
  selection_stats : Select.stats;
}

let personalize ?(params = default_params) ?related db profile q =
  let q = Binder.bind db q in
  let qg = Qgraph.of_query db q in
  let g = Pgraph.of_profile profile in
  let stats = Select.fresh_stats () in
  let selected = Select.select ~stats ?related db g qg params.k in
  let instantiated = Integrate.instantiate db qg selected in
  let mandatory, optional =
    Integrate.split_mandatory ~m:params.m instantiated (fun i ->
        i.Integrate.path.Path.degree)
  in
  (* Clamp L to the available optional preferences so interactive callers
     get the best achievable requirement rather than an error. *)
  let personalized =
    match params.method_ with
    | `SQ ->
        let l =
          match params.l with
          | `At_least n -> min n (List.length optional)
          | `Min_doi _ ->
              invalid_arg "SQ integration does not support a minimum-degree L"
        in
        Integrate.sq db qg ~mandatory ~optional ~l
    | `MQ ->
        let l =
          match params.l with
          | `At_least n -> `At_least (min n (List.length optional))
          | `Min_doi d -> `Min_doi d
        in
        Integrate.mq ~rank:params.rank db qg ~mandatory ~optional ~l ()
  in
  { selected; mandatory; optional; personalized; selection_stats = stats }

let execute ?strategy db outcome = Engine.run_query ?strategy db outcome.personalized

let personalize_sql ?params db profile sql =
  let q = Sql_parser.parse sql in
  let outcome = personalize ?params db profile q in
  (outcome, execute db outcome)

let top_n ?strategy ~n db outcome =
  let res = execute ?strategy db outcome in
  { res with Exec.rows = List.filteri (fun i _ -> i < n) res.Exec.rows }

module Context = struct
  type device = Mobile | Desktop | Voice

  type t = { device : device; latency_budget_ms : float option }

  let params_for t =
    let base =
      match t.device with
      | Mobile -> { default_params with k = Criteria.Top_r 3 }
      | Desktop -> { default_params with k = Criteria.Top_r 10 }
      | Voice ->
          {
            default_params with
            k = Criteria.Top_r 2;
            l = `Min_doi 0.5;
          }
    in
    match t.latency_budget_ms with
    | Some ms when ms < 50. -> (
        match base.k with
        | Criteria.Top_r r -> { base with k = Criteria.Top_r (max 1 (r / 2)) }
        | _ -> base)
    | _ -> base
end
