(** Implicit profile creation from query logs.

    The paper's architecture (Figure 1) includes a {e Profile Creation}
    module that collects preferences "implicitly by monitoring user
    interaction with the system"; its construction is listed as future
    work (§8: "the automatic construction of structured profiles").

    This module implements the natural frequency-based learner: every
    atomic condition a user writes into her queries is evidence of
    interest.  Over a log of conjunctive queries we count, per atomic
    element,
    - equality selections (a direct statement of interest in a value),
    - join conditions, in the direction the query used them (the relation
      listed first is the one "already there" — matching the paper's
      directed-join semantics);
    and convert counts to degrees with the saturating map
    [d = c / (c + smoothing)], so one-off conditions get modest degrees
    and recurring ones approach (but never reach) 1.  Degrees are then
    scaled into [\[floor, ceil\]].

    The learned profile feeds straight into {!Personalize.personalize} —
    there is no representational gap between learned and hand-written
    profiles, which is the point of the paper's atomic-preference
    format. *)

type config = {
  smoothing : float;  (** half-saturation count; default 2.0 *)
  floor : float;  (** minimum emitted degree; default 0.1 *)
  ceil : float;  (** maximum emitted degree; default 0.95 *)
  min_count : int;  (** ignore atoms seen fewer times; default 1 *)
}

val default : config

val observe :
  Relal.Database.t -> Relal.Sql_ast.query -> (Atom.t list, string) result
(** The atomic elements of one (bindable, conjunctive) query: equality
    selections and directed joins.  Errors mirror binder /
    {!Qgraph.Not_conjunctive} failures so callers can skip unparseable
    log entries. *)

val learn :
  ?config:config ->
  Relal.Database.t ->
  Relal.Sql_ast.query list ->
  Profile.t
(** Build a profile from a query log, silently skipping queries that do
    not bind or are not conjunctive. *)

val merge : old_profile:Profile.t -> learned:Profile.t -> Profile.t
(** Combine an existing profile with newly learned preferences: atoms in
    both keep the {e maximum} of the two degrees (explicit statements are
    never weakened by observation); atoms in either survive. *)
