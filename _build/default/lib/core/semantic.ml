open Relal

let probe_query db qg path =
  let q0 = Qgraph.query qg in
  match Integrate.instantiate db qg [ path ] with
  | [ inst ] ->
      {
        Sql_ast.distinct = false;
        select = [ Sql_ast.Sel_const (Value.Int 1, "probe") ];
        from =
          q0.Sql_ast.from
          @ List.map (fun r -> Sql_ast.F_rel r) inst.Integrate.trefs;
        where =
          Sql_ast.conj
            (Integrate.dedup_conjuncts
               (Sql_ast.conjuncts q0.Sql_ast.where @ [ inst.Integrate.pred ]));
        group_by = [];
        having = None;
        order_by = [];
        limit = Some 1;
      }
  | _ -> assert false

let instance_related db qg path =
  let q = probe_query db qg path in
  match Engine.run_query db q with
  | { Exec.rows = []; _ } -> false
  | _ -> true
  | exception Exec.Exec_error _ -> false

let filter db qg paths = List.filter (instance_related db qg) paths
