(** Top-N delivery of personalized results with early termination —
    the paper's §8 future-work item "the delivery of top-N results in
    order of the estimated degree of interest", implemented in the spirit
    of Fagin's threshold algorithm over the MQ partial queries.

    MQ executes one partial query per optional preference and ranks rows
    by the conjunctive degree of the preferences they satisfy.  For a
    top-N request it is wasteful to run all K partials: processing them
    in decreasing degree order, after the first [i] partials
    - a row never seen so far can score at most
      [conj(d_{i+1}, …, d_K)] (it can only satisfy the rest), and
    - a seen row's score can rise at most to
      [conj(satisfied ∪ remaining)].
    When the N-th best {e confirmed} score dominates both bounds, the
    remaining partials cannot change the top-N set and execution stops.

    Rows must satisfy at least [l] preferences to qualify (rows below the
    threshold score as unqualified until enough partials have matched
    them, exactly like MQ's [HAVING count( * ) >= L]). *)

type stats = {
  partials_total : int;
  partials_executed : int;  (** how many partial queries actually ran *)
  rows_tracked : int;  (** distinct candidate rows materialized *)
  random_probes : int;
      (** LIMIT-1 membership probes used to complete the exact scores of
          the top rows after an early stop (Fagin-style random access) *)
}

type result = {
  rows : (Relal.Value.t array * Degree.t) list;
      (** the top rows with their estimated degrees, best first; at most
          [n] entries *)
  stats : stats;
}

val top_n :
  ?l:int ->
  n:int ->
  Relal.Database.t ->
  Qgraph.t ->
  mandatory:Integrate.instantiated list ->
  optional:Integrate.instantiated list ->
  unit ->
  result
(** [top_n ~n db qg ~mandatory ~optional ()] returns the [n] rows of the
    personalized query with the highest degree of interest, executing
    partial queries lazily.  [l] defaults to 1.  The optional list must
    be in decreasing degree order (as produced by {!Select.select} and
    {!Integrate.instantiate}).

    Equivalent to executing the full ranked MQ query and keeping the
    first [n] rows — an equivalence the test suite checks — but
    executing only as many partials as the bounds require. *)
