type t = {
  sels : (string, (Atom.selection * Degree.t) list) Hashtbl.t;
  joins : (string, (Atom.join * Degree.t) list) Hashtbl.t;
  edges : int;
}

let by_degree_desc d1 d2 = Degree.compare_desc d1 d2

let of_profile p =
  let sels = Hashtbl.create 16 and joins = Hashtbl.create 16 in
  let push tbl key v =
    Hashtbl.replace tbl key (v :: (Option.value ~default:[] (Hashtbl.find_opt tbl key)))
  in
  let count = ref 0 in
  List.iter
    (fun (a, d) ->
      incr count;
      match a with
      | Atom.Sel s -> push sels s.Atom.s_rel (s, d)
      | Atom.Join j -> push joins j.Atom.j_from_rel (j, d))
    (Profile.entries p);
  let sort_tbl tbl =
    Hashtbl.iter
      (fun k v ->
        Hashtbl.replace tbl k
          (List.stable_sort (fun (_, d1) (_, d2) -> by_degree_desc d1 d2) v))
      (Hashtbl.copy tbl)
  in
  sort_tbl sels;
  sort_tbl joins;
  { sels; joins; edges = !count }

let out_selections t rel =
  Option.value ~default:[] (Hashtbl.find_opt t.sels (String.lowercase_ascii rel))

let out_joins t rel =
  Option.value ~default:[] (Hashtbl.find_opt t.joins (String.lowercase_ascii rel))

let out_edges t rel =
  let sels = List.map (fun (s, d) -> (Atom.Sel s, d)) (out_selections t rel) in
  let joins = List.map (fun (j, d) -> (Atom.Join j, d)) (out_joins t rel) in
  List.merge
    (fun (_, d1) (_, d2) -> by_degree_desc d1 d2)
    (List.stable_sort (fun (_, d1) (_, d2) -> by_degree_desc d1 d2) sels)
    (List.stable_sort (fun (_, d1) (_, d2) -> by_degree_desc d1 d2) joins)

let join_degree t j =
  List.find_map
    (fun (j', d) -> if j' = j then Some d else None)
    (out_joins t j.Atom.j_from_rel)

let selection_degree t s =
  List.find_map
    (fun (s', d) ->
      if
        s'.Atom.s_att = s.Atom.s_att
        && s'.Atom.s_op = s.Atom.s_op
        && Relal.Value.equal s'.Atom.s_val s.Atom.s_val
      then Some d
      else None)
    (out_selections t s.Atom.s_rel)

let relations t =
  let set = Hashtbl.create 16 in
  Hashtbl.iter (fun k _ -> Hashtbl.replace set k ()) t.sels;
  Hashtbl.iter (fun k _ -> Hashtbl.replace set k ()) t.joins;
  List.sort String.compare (Hashtbl.fold (fun k () acc -> k :: acc) set [])

let edge_count t = t.edges

let pp_dot fmt t =
  Format.fprintf fmt "digraph personalization {@.";
  Format.fprintf fmt "  rankdir=LR;@.";
  let rel_node r = Printf.sprintf "rel_%s" r in
  let seen_rel = Hashtbl.create 16 in
  let emit_rel r =
    if not (Hashtbl.mem seen_rel r) then begin
      Hashtbl.add seen_rel r ();
      Format.fprintf fmt "  %s [shape=box,label=%S];@." (rel_node r)
        (String.uppercase_ascii r)
    end
  in
  Hashtbl.iter
    (fun rel edges ->
      emit_rel rel;
      List.iteri
        (fun i (s, d) ->
          let vnode = Printf.sprintf "val_%s_%d" rel i in
          Format.fprintf fmt "  %s [shape=oval,label=%S];@." vnode
            (Relal.Value.to_string s.Atom.s_val);
          Format.fprintf fmt "  %s -> %s [label=\"%s=%s\"];@." (rel_node rel) vnode
            s.Atom.s_att (Degree.to_string d))
        edges)
    t.sels;
  Hashtbl.iter
    (fun rel edges ->
      emit_rel rel;
      List.iter
        (fun (j, d) ->
          emit_rel j.Atom.j_to_rel;
          Format.fprintf fmt "  %s -> %s [label=\"%s=%s.%s %s\"];@." (rel_node rel)
            (rel_node j.Atom.j_to_rel) j.Atom.j_from_att j.Atom.j_to_rel
            j.Atom.j_to_att (Degree.to_string d))
        edges)
    t.joins;
  Format.fprintf fmt "}@."
