(** Semantic-level relatedness of preferences (§5, §8).

    The paper distinguishes syntactic relatedness (derivable from the
    schema — what {!Select.select} computes) from {e semantic}
    relatedness, which "needs additional knowledge about the data": a
    preference for W. Allen is semantically related to a query about
    comedies only if Allen actually directed comedies; a preference for
    M. Tarkowski is semantically {e conflicting} with that query — if
    conjunctively combined, no results will be returned.  The paper
    leaves the semantic level as future work but designs the selection
    algorithm to accept it as a filter (its [related] hook).

    This module supplies that knowledge from the database instance
    itself: a candidate preference is {e instance-related} to the query
    when the conjunction of the query's qualification and the
    preference's condition is satisfiable on the current data —
    established by a LIMIT-1 probe query.  Semantically conflicting
    preferences (unsatisfiable conjunctions) are exactly the ones the
    probe rejects.

    Syntactically related preferences are a superset of semantically
    related ones, so plugging {!instance_related} into
    [Select.select ~related] only filters the algorithm's output — its
    ordering and completeness guarantees are untouched. *)

val probe_query :
  Relal.Database.t -> Qgraph.t -> Path.t -> Relal.Sql_ast.query
(** The LIMIT-1 satisfiability probe for a candidate preference: the
    original query with the instantiated preference condition added
    conjunctively, projecting a single constant. *)

val instance_related : Relal.Database.t -> Qgraph.t -> Path.t -> bool
(** [instance_related db qg path]: does any row satisfy the query's
    qualification together with [path]'s condition?  Intended as the
    [related] argument of {!Select.select}. *)

val filter : Relal.Database.t -> Qgraph.t -> Path.t list -> Path.t list
(** Keep only the instance-related paths of a selected set (e.g. to
    post-filter an already-computed [P_K]). *)
