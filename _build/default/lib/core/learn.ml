open Relal

type config = {
  smoothing : float;
  floor : float;
  ceil : float;
  min_count : int;
}

let default = { smoothing = 2.0; floor = 0.1; ceil = 0.95; min_count = 1 }

let observe db q =
  match Binder.bind db q with
  | exception Binder.Bind_error e -> Error e
  | bound -> (
      match Qgraph.of_query db bound with
      | exception Qgraph.Not_conjunctive e -> Error e
      | qg ->
          let rel_of tv =
            match Qgraph.rel_of_tv qg tv with Some r -> r | None -> tv
          in
          let sels =
            List.filter_map
              (fun (_, (s : Atom.selection)) ->
                (* Only equality selections are stored preferences in the
                   paper's model. *)
                if s.Atom.s_op = Sql_ast.Eq then Some (Atom.Sel s) else None)
              (Qgraph.all_selections qg)
          in
          let joins =
            List.filter_map
              (fun p ->
                match p with
                | Sql_ast.P_cmp (Eq, S_attr a, S_attr b)
                  when a.Sql_ast.tv <> b.Sql_ast.tv ->
                    Some
                      (Atom.join
                         (rel_of a.Sql_ast.tv, a.Sql_ast.col)
                         (rel_of b.Sql_ast.tv, b.Sql_ast.col))
                | _ -> None)
              (Sql_ast.conjuncts bound.Sql_ast.where)
          in
          Ok (sels @ joins))

let learn ?(config = default) db log =
  let counts : (Atom.t, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun q ->
      match observe db q with
      | Error _ -> ()
      | Ok atoms ->
          List.iter
            (fun a ->
              Hashtbl.replace counts a
                (1 + Option.value ~default:0 (Hashtbl.find_opt counts a)))
            atoms)
    log;
  Hashtbl.fold
    (fun atom c acc ->
      if c < config.min_count then acc
      else begin
        let saturating = float_of_int c /. (float_of_int c +. config.smoothing) in
        let d = config.floor +. ((config.ceil -. config.floor) *. saturating) in
        match Degree.of_float_opt d with
        | Some deg when not (Degree.equal deg Degree.zero) ->
            Profile.add acc atom deg
        | _ -> acc
      end)
    counts Profile.empty

let merge ~old_profile ~learned =
  List.fold_left
    (fun acc (atom, d) ->
      match Profile.find acc atom with
      | Some existing when Degree.compare existing d >= 0 -> acc
      | _ -> Profile.add acc atom d)
    old_profile (Profile.entries learned)
