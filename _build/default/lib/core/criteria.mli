(** Interest criteria (§5.1, Table 1).

    A criterion [CI] decides how many top preferences are selected: the
    algorithm keeps admitting the next-best candidate [P] while
    [CI(PK ∪ {P})] holds.  The four expressions of Table 1:

    - [Top_r r] — at most [r] preferences ([t <= r]);
    - [Above d] — only preferences with degree of interest greater than
      [d] ([d_t > d]);
    - [Disj_above d] — preferences whose {e disjunction} has degree
      greater than [d] ([(d_1+…+d_t)/t > d]);
    - [Conj_above d] — preferences whose {e conjunction} has degree
      greater than [d] ([1 − Π(1−d_i) > d]).

    The best-first algorithm's early-stop argument requires the criterion
    to be {e prefix-monotone} over degree-decreasing sequences: once it
    fails it must keep failing.  The first three expressions are; the
    conjunctive one is monotone in the {e opposite} direction (adding
    preferences only raises the conjunction degree), so under the
    algorithm's stop rule it acts as an all-or-nothing gate on the first
    candidate.  {!prefix_monotone} reports which regime a criterion is
    in; the property is exercised in tests. *)

type t =
  | Top_r of int
  | Above of Degree.t
  | Disj_above of Degree.t
  | Conj_above of Degree.t

val top_r : int -> t
(** @raise Invalid_argument if negative. *)

val above : float -> t
val disj_above : float -> t
val conj_above : float -> t

val holds : t -> Degree.t list -> bool
(** [holds c degrees] — evaluate [CI] on a set of selected preferences
    given as their degrees in decreasing order. *)

val accepts : t -> current:Degree.t list -> Degree.t -> bool
(** [accepts c ~current d] = [holds c (current @ [d])]: would admitting a
    candidate with degree [d] keep the criterion satisfied?  [current]
    must be the degrees already selected, decreasing. *)

val prefix_monotone : t -> bool
(** Whether failure is permanent along a degree-decreasing sequence. *)

val expansion_prunable : t -> bool
(** Whether the algorithm's expansion-time pruning (§5.2 rule (iv)) is
    sound for this criterion.  Rule (iv) rejects a candidate extension by
    evaluating [CI] against the preferences selected {e so far}; that
    rejection is only permanent when the criterion cannot start accepting
    again as the selected set grows.  [Top_r] (the count only grows) and
    [Above] (depends on the candidate alone) qualify; [Disj_above] does
    not — the running average {e rises} as more high-degree preferences
    are selected, so a candidate rejected during expansion may become
    acceptable by the time it would pop (the paper's Theorem 2 implicitly
    assumes this away).  For non-prunable criteria {!Select.select} skips
    rule (iv) and relies on pop-time checks, which are always sound. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
