(** Human-readable traces of the personalization process — what the
    paper's examples show in prose: which preferences were selected with
    which degrees, how they were split into mandatory/optional, and the
    final SQL. *)

val path_line : Path.t -> string
(** One line: condition, degree, anchor. *)

val selection_report : Path.t list -> string
(** Numbered list of selected preferences, decreasing degree. *)

val outcome_report : Personalize.outcome -> string
(** Full trace: selected preferences, mandatory/optional split,
    selection statistics and the personalized SQL (pretty-printed). *)

val pp_outcome : Format.formatter -> Personalize.outcome -> unit
