(** Brute-force reference implementation of preference selection.

    Exhaustively enumerates (by depth-first search) {e every} acyclic
    transitive selection attached to the query graph, filters conflicts,
    sorts by decreasing degree (shorter paths first among ties) and
    applies the interest criterion greedily — the specification
    {!Select.select} is tested against (Theorem 2, completeness).
    Exponential in the profile's join fan-out; for tests and small
    profiles only. *)

val all_selection_paths :
  ?max_len:int -> Relal.Database.t -> Pgraph.t -> Qgraph.t -> Path.t list
(** Every syntactically related, non-conflicting transitive selection of
    length at most [max_len] (default 12), unsorted. *)

val select :
  Relal.Database.t -> Pgraph.t -> Qgraph.t -> Criteria.t -> Path.t list
(** Reference result: sorted candidates cut off by the criterion using
    the same stop rule as the best-first algorithm. *)
