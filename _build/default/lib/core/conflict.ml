open Relal

let joins_all_to_one db joins =
  List.for_all
    (fun (j : Atom.join) ->
      Database.join_is_to_one db
        ~from_:(j.Atom.j_from_rel, j.Atom.j_from_att)
        ~to_:(j.Atom.j_to_rel, j.Atom.j_to_att))
    joins

let sels_contradict (s1 : Atom.selection) (s2 : Atom.selection) =
  s1.Atom.s_rel = s2.Atom.s_rel
  && s1.Atom.s_att = s2.Atom.s_att
  && s1.Atom.s_op = Sql_ast.Eq
  && s2.Atom.s_op = Sql_ast.Eq
  && not (Value.equal s1.Atom.s_val s2.Atom.s_val)

let paths_conflict db (p1 : Path.t) (p2 : Path.t) =
  match (Path.selection p1, Path.selection p2) with
  | Some (s1, _), Some (s2, _) ->
      p1.Path.anchor_tv = p2.Path.anchor_tv
      && Path.join_atoms p1 = Path.join_atoms p2
      && sels_contradict s1 s2
      && joins_all_to_one db (Path.join_atoms p1)
  | _ -> false

let conflicts_with_query db qg (p : Path.t) =
  match Path.selection p with
  | None -> false
  | Some (s, _) ->
      Path.join_atoms p = []
      && joins_all_to_one db []
      && List.exists
           (fun qs -> sels_contradict s qs)
           (Qgraph.selections_on qg p.Path.anchor_tv)
