(** Atomic query elements — the vocabulary of stored preferences (§3.1).

    An atomic user preference attaches a degree of interest to either:
    - an {b atomic selection}: an (equality, in the paper's scope)
      condition between a relation's attribute and a value, e.g.
      [GENRE.genre = 'comedy'];
    - an {b atomic join}: a {e directed} equality between two relation
      attributes, e.g. [MOVIE.mid = PLAY.mid].  Direction matters: the
      left side names the relation already present in a query, so the
      same schema join may be stored twice with different degrees, once
      per direction (Figure 2, rows 3–4).

    Atoms are schema-level objects (relation names, not tuple variables);
    the integration step instantiates them with tuple variables. *)

type selection = {
  s_rel : string;  (** relation name *)
  s_att : string;  (** attribute name *)
  s_op : Relal.Sql_ast.cmp_op;  (** [Eq] throughout the paper's scope *)
  s_val : Relal.Value.t;
}

type join = {
  j_from_rel : string;
  j_from_att : string;
  j_to_rel : string;
  j_to_att : string;
}
(** Directed: [j_from_rel] is the side assumed already in the query. *)

type t = Sel of selection | Join of join

val sel :
  ?op:Relal.Sql_ast.cmp_op -> string -> string -> Relal.Value.t -> t
(** [sel "genre" "genre" (Str "comedy")]; [op] defaults to [Eq].
    Names are lower-cased. *)

val join : string * string -> string * string -> t
(** [join ("movie","mid") ("play","mid")] is the directed join
    MOVIE.mid=PLAY.mid (movie side already in the query). *)

val reverse_join : join -> join
(** The opposite direction. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val validate : Relal.Database.t -> t -> (unit, string) result
(** Check the atom against a catalog: relations and attributes exist,
    selection value type-compatible with the column, join ends
    type-compatible. *)

val to_string : t -> string
(** SQL-condition syntax: [GENRE.genre = 'comedy'],
    [MOVIE.mid = PLAY.mid]. *)

val pp : Format.formatter -> t -> unit

val of_pred : Relal.Sql_ast.pred -> (t, string) result
(** Interpret a single comparison predicate (with relation names in tuple
    variable position) as an atom — the profile text format's reader.
    Attribute-vs-constant becomes [Sel]; attribute-vs-attribute becomes a
    [Join] directed left-to-right. *)
