(** Negative preferences — dislikes (§8: "extending our model in order to
    encompass more types of preferences, such negative and soft ones").

    A negative preference is stored exactly like a positive one — an
    atomic condition with a degree — but in a separate {e dislike}
    profile, and its degree reads as {e strength of aversion}: 1 means
    "must not have" (a hard veto), smaller values penalize without
    excluding.

    Everything upstream is reused unchanged: dislikes live on their own
    personalization graph, and the {e same} best-first selection
    algorithm extracts the top dislikes relevant to a query (transitive
    composition dampens them along join paths just like interests).
    Integration differs: negative conditions cannot be conjoined into the
    qualification (that would {e require} the disliked property) nor
    simply negated (NOT over a to-many join means "some genre differs",
    not "no genre matches"), so they are evaluated as their own partial
    queries and combined at ranking time:

    [score(row) = conj(satisfied likes) · (1 − conj(satisfied dislikes))]

    — a row matching dislikes of combined strength 1 is vetoed outright.
    This keeps the model's semantics (conjunctive combination on both
    sides) and needs no new engine machinery. *)

type scored_row = {
  row : Relal.Value.t array;
  positive : Degree.t;  (** conj of satisfied likes *)
  penalty : float;  (** conj of satisfied dislikes; 0 when none *)
  score : float;  (** positive · (1 − penalty) *)
}

val rank :
  ?l:int ->
  Relal.Database.t ->
  Qgraph.t ->
  likes:Integrate.instantiated list ->
  dislikes:Integrate.instantiated list ->
  unit ->
  scored_row list
(** Execute the positive and negative partial queries and return the
    qualifying rows (at least [l] likes satisfied, default 1; penalty
    < 1) ranked by {!scored_row.score}, best first, with a deterministic
    tie-break.  With [dislikes = \[\]] this coincides with MQ's ranked
    result. *)

type outcome = {
  liked : Path.t list;  (** selected positive preferences *)
  disliked : Path.t list;  (** selected negative preferences *)
  rows : scored_row list;
}

val personalize :
  ?k:Criteria.t ->
  ?k_neg:Criteria.t ->
  ?l:int ->
  Relal.Database.t ->
  likes:Profile.t ->
  dislikes:Profile.t ->
  Relal.Sql_ast.query ->
  outcome
(** Full pipeline with a dislike profile: select top likes (criterion
    [k], default top 5) and top dislikes ([k_neg], default top 5), then
    {!rank}. *)
