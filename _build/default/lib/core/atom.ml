open Relal

type selection = {
  s_rel : string;
  s_att : string;
  s_op : Sql_ast.cmp_op;
  s_val : Value.t;
}

type join = {
  j_from_rel : string;
  j_from_att : string;
  j_to_rel : string;
  j_to_att : string;
}

type t = Sel of selection | Join of join

let lc = String.lowercase_ascii

let sel ?(op = Sql_ast.Eq) rel att v =
  Sel { s_rel = lc rel; s_att = lc att; s_op = op; s_val = v }

let join (r1, a1) (r2, a2) =
  Join { j_from_rel = lc r1; j_from_att = lc a1; j_to_rel = lc r2; j_to_att = lc a2 }

let reverse_join j =
  {
    j_from_rel = j.j_to_rel;
    j_from_att = j.j_to_att;
    j_to_rel = j.j_from_rel;
    j_to_att = j.j_from_att;
  }

let equal a b =
  match (a, b) with
  | Sel s1, Sel s2 ->
      s1.s_rel = s2.s_rel && s1.s_att = s2.s_att && s1.s_op = s2.s_op
      && Value.equal s1.s_val s2.s_val
  | Join j1, Join j2 -> j1 = j2
  | _ -> false

let compare a b =
  match (a, b) with
  | Sel _, Join _ -> -1
  | Join _, Sel _ -> 1
  | Sel s1, Sel s2 ->
      let c = String.compare s1.s_rel s2.s_rel in
      if c <> 0 then c
      else
        let c = String.compare s1.s_att s2.s_att in
        if c <> 0 then c
        else
          let c = Stdlib.compare s1.s_op s2.s_op in
          if c <> 0 then c
          else String.compare (Value.to_string s1.s_val) (Value.to_string s2.s_val)
  | Join j1, Join j2 -> Stdlib.compare j1 j2

let cmp_str = function
  | Sql_ast.Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let to_string = function
  | Sel s ->
      Printf.sprintf "%s.%s %s %s" (String.uppercase_ascii s.s_rel) s.s_att
        (cmp_str s.s_op) (Value.to_string s.s_val)
  | Join j ->
      Printf.sprintf "%s.%s = %s.%s"
        (String.uppercase_ascii j.j_from_rel)
        j.j_from_att
        (String.uppercase_ascii j.j_to_rel)
        j.j_to_att

let pp fmt a = Format.pp_print_string fmt (to_string a)

let validate db t =
  let check_col rel att =
    match Database.find_table db rel with
    | None -> Error (Printf.sprintf "unknown relation %s" rel)
    | Some tbl -> (
        match Schema.col_type (Table.schema tbl) att with
        | None -> Error (Printf.sprintf "unknown attribute %s.%s" rel att)
        | Some ty -> Ok ty)
  in
  match t with
  | Sel s -> (
      match check_col s.s_rel s.s_att with
      | Error e -> Error e
      | Ok ty -> (
          match Value.ty_of s.s_val with
          | None -> Ok () (* NULL comparisons allowed *)
          | Some vty ->
              if Value.compatible ty vty then Ok ()
              else if ty = Value.TDate && vty = Value.TStr then Ok ()
              else
                Error
                  (Printf.sprintf "selection %s: %s column vs %s value"
                     (to_string t) (Value.ty_name ty) (Value.ty_name vty))))
  | Join j -> (
      match (check_col j.j_from_rel j.j_from_att, check_col j.j_to_rel j.j_to_att) with
      | Error e, _ | _, Error e -> Error e
      | Ok t1, Ok t2 ->
          if Value.compatible t1 t2 then Ok ()
          else
            Error
              (Printf.sprintf "join %s: %s vs %s" (to_string t) (Value.ty_name t1)
                 (Value.ty_name t2)))

let of_pred = function
  | Sql_ast.P_cmp (op, S_attr a, S_const v) when a.tv <> "" ->
      Ok (Sel { s_rel = a.tv; s_att = a.col; s_op = op; s_val = v })
  | Sql_ast.P_cmp (op, S_const v, S_attr a) when a.tv <> "" ->
      let flip = function
        | Sql_ast.Eq -> Sql_ast.Eq
        | Ne -> Ne
        | Lt -> Gt
        | Le -> Ge
        | Gt -> Lt
        | Ge -> Le
      in
      Ok (Sel { s_rel = a.tv; s_att = a.col; s_op = flip op; s_val = v })
  | Sql_ast.P_cmp (Eq, S_attr a, S_attr b) when a.tv <> "" && b.tv <> "" ->
      Ok
        (Join
           { j_from_rel = a.tv; j_from_att = a.col; j_to_rel = b.tv; j_to_att = b.col })
  | p -> Error ("not an atomic condition: " ^ Relal.Sql_print.pred_to_string p)
