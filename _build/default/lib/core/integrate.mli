(** Preference integration (§6): build the personalized query.

    Given the original query [Q], the selected preferences [P_K] (in
    decreasing degree order), the number [M] of mandatory preferences and
    the requirement [L] on the remaining [K−M], two equivalent
    constructions are offered:

    - {b SQ} (single query): one qualification — the original one, AND
      the conjunction of the mandatory conditions, AND the disjunction of
      all [C(K−M, L)] conjunctions of [L] optional conditions.
      Conjunctions containing pairwise-conflicting conditions are
      excluded (§6(a)); repeated conditions are removed; the result uses
      [SELECT DISTINCT].
    - {b MQ} (multiple queries): one partial query per optional
      preference ([Q] AND mandatory AND that preference, [SELECT
      DISTINCT], plus constant columns [doi] — the preference's degree —
      and [pref] — its index), combined with [UNION ALL] in a derived
      table, grouped by the original projection, kept when
      [count( * ) >= L] — or, alternatively, when
      [DEGREE_OF_CONJUNCTION(doi, pref) > d] — and optionally ranked by
      that aggregate, descending (the paper's result-ranking mechanism).

    Tuple variables (§6(b)): each preference path is instantiated once
    with fresh tuple variables; a path prefix whose joins are all to-one
    is shared between paths (sharing is forced there), and variables
    branch at the first to-many join — "as close as possible to the start
    of the paths". *)

type instantiated = {
  path : Path.t;
  index : int;  (** position in [P_K]; the MQ [pref] identifier *)
  pred : Relal.Sql_ast.pred;
      (** the transitive condition over concrete tuple variables *)
  trefs : Relal.Sql_ast.table_ref list;
      (** table refs the condition introduces beyond the query's own *)
}

val instantiate :
  Relal.Database.t -> Qgraph.t -> Path.t list -> instantiated list
(** Allocate tuple variables for each selected path (with forced sharing
    of to-one prefixes) and render its condition. *)

val split_mandatory :
  m:[ `Count of int | `Min_degree of float ] ->
  'a list ->
  ('a -> Degree.t) ->
  'a list * 'a list
(** Split a degree-decreasing preference list into (mandatory, optional):
    [`Count m] takes the top [m]; [`Min_degree d] takes the prefix with
    degree ≥ [d] (e.g. 1.0 for the paper's "degree equal to 1 means
    mandatory" criterion). *)

exception Integration_error of string

val sq :
  Relal.Database.t ->
  Qgraph.t ->
  mandatory:instantiated list ->
  optional:instantiated list ->
  l:int ->
  Relal.Sql_ast.query
(** The SQ personalized query.  [l = 0] yields [Q] AND the mandatory
    conditions.  @raise Integration_error if [l] exceeds the number of
    optional preferences or the projection is not attribute-only. *)

val mq :
  ?rank:bool ->
  Relal.Database.t ->
  Qgraph.t ->
  mandatory:instantiated list ->
  optional:instantiated list ->
  l:[ `At_least of int | `Min_doi of float ] ->
  unit ->
  Relal.Sql_ast.query
(** The MQ personalized query.  [rank] (default [true]) adds the
    [DEGREE_OF_CONJUNCTION] output column and the descending ORDER BY.
    With no optional preferences (or [`At_least 0]) the result degrades
    to [Q] AND the mandatory conditions, as in SQ.
    @raise Integration_error as for {!sq}. *)

val dedup_conjuncts : Relal.Sql_ast.pred list -> Relal.Sql_ast.pred list
(** Structural de-duplication preserving first occurrence — "any repeated
    conditions are removed" (§6). *)
