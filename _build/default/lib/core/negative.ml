open Relal

type scored_row = {
  row : Value.t array;
  positive : Degree.t;
  penalty : float;
  score : float;
}

module KH = Hashtbl.Make (struct
  type t = Value.t array

  let equal a b =
    Array.length a = Array.length b
    &&
    let rec go i = i >= Array.length a || (Value.equal a.(i) b.(i) && go (i + 1)) in
    go 0

  let hash a = Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 a
end)

(* One partial query for an instantiated condition: the original query
   plus that condition, DISTINCT over the original projection. *)
let partial db qg inst =
  ignore db;
  let q0 = Qgraph.query qg in
  {
    q0 with
    Sql_ast.distinct = true;
    from =
      q0.Sql_ast.from
      @ List.map (fun r -> Sql_ast.F_rel r) inst.Integrate.trefs;
    where =
      Sql_ast.conj
        (Integrate.dedup_conjuncts
           (Sql_ast.conjuncts q0.Sql_ast.where @ [ inst.Integrate.pred ]));
    order_by = [];
    limit = None;
  }

let accumulate db qg insts =
  let acc : Degree.t list KH.t = KH.create 64 in
  List.iter
    (fun inst ->
      let res = Engine.run_query db (partial db qg inst) in
      List.iter
        (fun row ->
          KH.replace acc row
            (inst.Integrate.path.Path.degree
            :: Option.value ~default:[] (KH.find_opt acc row)))
        res.Exec.rows)
    insts;
  acc

let rank ?(l = 1) db qg ~likes ~dislikes () =
  let pos = accumulate db qg likes in
  let neg = accumulate db qg dislikes in
  let rows =
    KH.fold
      (fun row pos_degs acc ->
        if List.length pos_degs < l then acc
        else begin
          let positive = Degree.conj pos_degs in
          let penalty =
            match KH.find_opt neg row with
            | None | Some [] -> 0.
            | Some neg_degs -> Degree.to_float (Degree.conj neg_degs)
          in
          if penalty >= 1. then acc (* hard veto *)
          else begin
            let score = Degree.to_float positive *. (1. -. penalty) in
            { row; positive; penalty; score } :: acc
          end
        end)
      pos []
  in
  List.sort
    (fun a b ->
      match Float.compare b.score a.score with
      | 0 ->
          compare
            (Array.map Value.to_string a.row)
            (Array.map Value.to_string b.row)
      | c -> c)
    rows

type outcome = {
  liked : Path.t list;
  disliked : Path.t list;
  rows : scored_row list;
}

let personalize ?(k = Criteria.Top_r 5) ?(k_neg = Criteria.Top_r 5) ?l db ~likes
    ~dislikes q =
  let q = Binder.bind db q in
  let qg = Qgraph.of_query db q in
  let liked = Select.select db (Pgraph.of_profile likes) qg k in
  let disliked = Select.select db (Pgraph.of_profile dislikes) qg k_neg in
  let like_insts = Integrate.instantiate db qg liked in
  let dislike_insts = Integrate.instantiate db qg disliked in
  let rows = rank ?l db qg ~likes:like_insts ~dislikes:dislike_insts () in
  { liked; disliked; rows }
