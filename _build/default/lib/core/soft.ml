open Relal

type t = {
  path : Path.t;
  att : string;
  target : float;
  tolerance : float;
  weight : Degree.t;
}

let make ~path ~att ~target ~tolerance ~weight =
  if Path.is_selection path then
    Error "soft preference path must be a join path (no terminal selection)"
  else if tolerance <= 0. then Error "tolerance must be positive"
  else Ok { path; att = String.lowercase_ascii att; target; tolerance; weight }

let closeness t v = Float.max 0. (1. -. (Float.abs (v -. t.target) /. t.tolerance))

module KH = Hashtbl.Make (struct
  type t = Value.t array

  let equal a b =
    Array.length a = Array.length b
    &&
    let rec go i = i >= Array.length a || (Value.equal a.(i) b.(i) && go (i + 1)) in
    go 0

  let hash a = Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 a
end)

(* The partial query: the original query joined with the soft path,
   projecting the original outputs plus the soft attribute. *)
let soft_query db qg t =
  match Integrate.instantiate db qg [ t.path ] with
  | [ inst ] ->
      let q0 = Qgraph.query qg in
      (* The tuple variable holding the soft attribute: the last alias the
         instantiation introduced, or the anchor itself for an empty
         path. *)
      let end_tv =
        match List.rev inst.Integrate.trefs with
        | last :: _ -> last.Sql_ast.alias
        | [] -> t.path.Path.anchor_tv
      in
      let select =
        q0.Sql_ast.select
        @ [ Sql_ast.Sel_attr (Sql_ast.attr end_tv t.att, Some "soft_val") ]
      in
      ( {
          q0 with
          Sql_ast.distinct = true;
          select;
          from =
            q0.Sql_ast.from
            @ List.map (fun r -> Sql_ast.F_rel r) inst.Integrate.trefs;
          where =
            Sql_ast.conj
              (Integrate.dedup_conjuncts
                 (Sql_ast.conjuncts q0.Sql_ast.where @ [ inst.Integrate.pred ]));
          order_by = [];
          limit = None;
        },
        List.length q0.Sql_ast.select )
  | _ -> assert false

let row_degrees db qg t =
  let q, n_out = soft_query db qg t in
  let res = Engine.run_query db q in
  let best : float KH.t = KH.create 32 in
  List.iter
    (fun row ->
      let out = Array.sub row 0 n_out in
      let v =
        match row.(n_out) with
        | Value.Int i -> Some (float_of_int i)
        | Value.Float f -> Some f
        | _ -> None
      in
      match v with
      | None -> ()
      | Some v ->
          let c = closeness t v in
          if c > 0. then begin
            let prev = Option.value ~default:0. (KH.find_opt best out) in
            if c > prev then KH.replace best out c
          end)
    res.Exec.rows;
  let path_degree = Degree.to_float t.path.Path.degree in
  KH.fold
    (fun row c acc ->
      match
        Degree.of_float_opt (Degree.to_float t.weight *. path_degree *. c)
      with
      | Some d when not (Degree.equal d Degree.zero) -> (row, d) :: acc
      | _ -> acc)
    best []

let rank ?(l = 1) db qg ~likes ~soft () =
  let acc : Degree.t list KH.t = KH.create 64 in
  let add row d =
    KH.replace acc row (d :: Option.value ~default:[] (KH.find_opt acc row))
  in
  (* Hard likes through their partial queries. *)
  List.iter
    (fun inst ->
      let q0 = Qgraph.query qg in
      let q =
        {
          q0 with
          Sql_ast.distinct = true;
          from =
            q0.Sql_ast.from
            @ List.map (fun r -> Sql_ast.F_rel r) inst.Integrate.trefs;
          where =
            Sql_ast.conj
              (Integrate.dedup_conjuncts
                 (Sql_ast.conjuncts q0.Sql_ast.where @ [ inst.Integrate.pred ]));
          order_by = [];
          limit = None;
        }
      in
      let res = Engine.run_query db q in
      List.iter (fun row -> add row inst.Integrate.path.Path.degree) res.Exec.rows)
    likes;
  (* Soft contributions. *)
  List.iter
    (fun s -> List.iter (fun (row, d) -> add row d) (row_degrees db qg s))
    soft;
  KH.fold
    (fun row ds rows ->
      if List.length ds >= l then (row, Degree.conj ds) :: rows else rows)
    acc []
  |> List.sort (fun (r1, d1) (r2, d2) ->
         match Degree.compare_desc d1 d2 with
         | 0 ->
             compare
               (Array.map Value.to_string r1)
               (Array.map Value.to_string r2)
         | c -> c)
