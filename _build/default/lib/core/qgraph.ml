open Relal

exception Not_conjunctive of string

type t = {
  q : Sql_ast.query;
  tv_rel : (string * string) list;
  sels : (string * Atom.selection) list; (* (tv, selection-with-rel) *)
  rels : string list;
}

let of_query _db (q : Sql_ast.query) =
  let tv_rel =
    List.map
      (function
        | Sql_ast.F_rel r -> (r.Sql_ast.alias, r.Sql_ast.rel)
        | Sql_ast.F_derived _ ->
            invalid_arg "Qgraph.of_query: derived tables not personalizable")
      q.Sql_ast.from
  in
  let rel_of tv =
    match List.assoc_opt tv tv_rel with
    | Some r -> r
    | None -> raise (Not_conjunctive ("unknown tuple variable " ^ tv))
  in
  let sels = ref [] in
  let rec walk p =
    match p with
    | Sql_ast.P_true -> ()
    | P_and ps -> List.iter walk ps
    | P_cmp (op, S_attr a, S_const v) ->
        sels :=
          ( a.Sql_ast.tv,
            { Atom.s_rel = rel_of a.Sql_ast.tv; s_att = a.Sql_ast.col; s_op = op; s_val = v } )
          :: !sels
    | P_cmp (op, S_const v, S_attr a) ->
        let flip = function
          | Sql_ast.Eq -> Sql_ast.Eq
          | Ne -> Ne
          | Lt -> Gt
          | Le -> Ge
          | Gt -> Lt
          | Ge -> Le
        in
        sels :=
          ( a.Sql_ast.tv,
            {
              Atom.s_rel = rel_of a.Sql_ast.tv;
              s_att = a.Sql_ast.col;
              s_op = flip op;
              s_val = v;
            } )
          :: !sels
    | P_cmp (_, S_attr _, S_attr _) -> () (* join conditions: graph edges *)
    | P_cmp (_, S_const _, S_const _) -> ()
    | P_or _ | P_not _ | P_false ->
        raise (Not_conjunctive (Sql_print.pred_to_string p))
  in
  walk q.Sql_ast.where;
  let rels =
    List.sort_uniq String.compare (List.map snd tv_rel)
  in
  { q; tv_rel; sels = List.rev !sels; rels }

let query t = t.q
let tvs t = t.tv_rel
let rel_of_tv t tv = List.assoc_opt (String.lowercase_ascii tv) t.tv_rel

let tvs_of_rel t rel =
  let rel = String.lowercase_ascii rel in
  List.filter_map (fun (tv, r) -> if r = rel then Some tv else None) t.tv_rel

let relations t = t.rels
let mem_relation t rel = List.mem (String.lowercase_ascii rel) t.rels

let selections_on t tv =
  let tv = String.lowercase_ascii tv in
  List.filter_map (fun (tv', s) -> if tv' = tv then Some s else None) t.sels

let all_selections t = t.sels
