(** Degrees of interest and the paper's combination functions (§3).

    A degree of interest is a real number in [\[0,1\]]: 0 means no
    interest (never stored in a profile), 1 means extreme, "must-have"
    interest.  Derived preferences combine degrees with three functions:

    - transitive composition (directed path): [trans D = d1·d2·…·dN],
      which satisfies the required bound [trans D <= min D];
    - conjunction: [conj D = 1 − (1−d1)(1−d2)…(1−dN)], satisfying
      [conj D >= max D];
    - disjunction: [disj D = (d1+…+dN)/N], satisfying
      [min D <= disj D <= max D].

    The bounds are property-tested in the test suite, as is the paper's
    subsumption theorem built on them. *)

type t = private float
(** A validated degree in [\[0,1\]]. *)

val of_float : float -> t
(** @raise Invalid_argument if outside [\[0,1\]] or NaN. *)

val of_float_opt : float -> t option

val to_float : t -> float

val zero : t
val one : t

val equal : t -> t -> bool
val compare : t -> t -> int

(* Decreasing order — the order profiles, queues and selected preference
   lists use throughout. *)
val compare_desc : t -> t -> int

val trans : t list -> t
(** Degree of a transitive preference: product of the members.
    [trans [] = one] (empty path = the anchor itself). *)

val trans2 : t -> t -> t
(** Binary case, used by incremental path expansion. *)

val conj : t list -> t
(** Degree of a conjunctive preference: [1 − Π(1−dᵢ)].
    @raise Invalid_argument on an empty list. *)

val disj : t list -> t
(** Degree of a disjunctive preference: arithmetic mean.
    @raise Invalid_argument on an empty list. *)

val pp : Format.formatter -> t -> unit
(** Prints with up to 4 significant decimals, e.g. [0.943]. *)

val to_string : t -> string
