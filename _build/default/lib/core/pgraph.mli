(** The personalization graph (§3.1).

    A directed graph over the database schema with relation, attribute and
    value nodes; selection edges (attribute → value) and join edges
    (attribute → attribute), labelled with the user's degrees of interest.
    Only edges the user cares about exist — the graph {e is} the profile,
    organised for traversal.

    The representation is adjacency by relation: the preference-selection
    algorithm repeatedly asks "which atomic elements leave relation R?",
    i.e. all selection edges on R's attributes and all join edges whose
    source attribute belongs to R, in decreasing order of degree (the
    order §5.2's expansion step consumes them in). *)

type t

val of_profile : Profile.t -> t

val out_selections : t -> string -> (Atom.selection * Degree.t) list
(** Selection edges on attributes of the given relation, decreasing
    degree. *)

val out_joins : t -> string -> (Atom.join * Degree.t) list
(** Join edges leaving the given relation, decreasing degree. *)

val out_edges : t -> string -> (Atom.t * Degree.t) list
(** All edges leaving the relation (selections and joins merged),
    decreasing degree — exactly the candidate composable elements for a
    path currently ending at that relation. *)

val join_degree : t -> Atom.join -> Degree.t option
(** Degree of a specific directed join edge, if stored. *)

val selection_degree : t -> Atom.selection -> Degree.t option

val relations : t -> string list
(** Relations with at least one outgoing edge. *)

val edge_count : t -> int

val pp_dot : Format.formatter -> t -> unit
(** Graphviz rendering (relation boxes, value ovals, degree-labelled
    edges) — Figure 3 of the paper, for documentation and debugging. *)
