lib/core/conflict.ml: Atom Database List Path Qgraph Relal Sql_ast Value
