lib/core/pgraph.ml: Atom Degree Format Hashtbl List Option Printf Profile Relal String
