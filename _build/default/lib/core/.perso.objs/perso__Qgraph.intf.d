lib/core/qgraph.mli: Atom Relal
