lib/core/atom.mli: Format Relal
