lib/core/profile_store.mli: Profile Relal
