lib/core/soft.mli: Degree Integrate Path Qgraph Relal
