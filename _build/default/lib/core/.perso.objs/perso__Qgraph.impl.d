lib/core/qgraph.ml: Atom List Relal Sql_ast Sql_print String
