lib/core/semantic.ml: Engine Exec Integrate List Qgraph Relal Sql_ast Value
