lib/core/pgraph.mli: Atom Degree Format Profile
