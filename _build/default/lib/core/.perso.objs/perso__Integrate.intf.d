lib/core/integrate.mli: Degree Path Qgraph Relal
