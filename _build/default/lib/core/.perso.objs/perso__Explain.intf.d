lib/core/explain.mli: Format Path Personalize
