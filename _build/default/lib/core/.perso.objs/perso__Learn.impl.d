lib/core/learn.ml: Atom Binder Degree Hashtbl List Option Profile Qgraph Relal Sql_ast
