lib/core/degree.mli: Format
