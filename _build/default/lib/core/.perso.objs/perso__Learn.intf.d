lib/core/learn.mli: Atom Profile Relal
