lib/core/integrate.ml: Atom Buffer Conflict Database Degree Format Hashtbl List Path Printf Putil Qgraph Relal Schema Sql_ast Sql_print String Table Value
