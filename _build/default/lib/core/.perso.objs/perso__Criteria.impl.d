lib/core/criteria.ml: Degree Format List Printf
