lib/core/personalize.ml: Binder Criteria Engine Exec Integrate List Path Pgraph Qgraph Relal Select Sql_ast Sql_parser
