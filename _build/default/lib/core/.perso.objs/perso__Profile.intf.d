lib/core/profile.mli: Atom Degree Format Relal
