lib/core/degree.ml: Float Format List Printf String
