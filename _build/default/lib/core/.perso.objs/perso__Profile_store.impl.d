lib/core/profile_store.ml: Array Atom Database Degree List Printf Profile Relal Schema Sql_lexer Sql_parser String Table Value
