lib/core/profile.ml: Atom Degree Format In_channel List Map Out_channel Printf Relal String
