lib/core/negative.ml: Array Binder Criteria Degree Engine Exec Float Hashtbl Integrate List Option Path Pgraph Qgraph Relal Select Sql_ast Value
