lib/core/atom.ml: Database Format Printf Relal Schema Sql_ast Stdlib String Table Value
