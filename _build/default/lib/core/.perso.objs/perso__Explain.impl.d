lib/core/explain.ml: Buffer Degree Format List Path Personalize Printf Relal Select String
