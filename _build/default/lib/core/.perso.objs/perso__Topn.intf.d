lib/core/topn.mli: Degree Integrate Qgraph Relal
