lib/core/negative.mli: Criteria Degree Integrate Path Profile Qgraph Relal
