lib/core/topn.ml: Array Degree Engine Exec Hashtbl Integrate List Path Qgraph Relal Sql_ast Value
