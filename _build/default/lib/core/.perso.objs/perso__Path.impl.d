lib/core/path.ml: Atom Degree Format List Printf String
