lib/core/select.mli: Criteria Path Pgraph Qgraph Relal
