lib/core/soft.ml: Array Degree Engine Exec Float Hashtbl Integrate List Option Path Qgraph Relal Sql_ast String Value
