lib/core/brute.ml: Atom Conflict Criteria Degree Int List Path Pgraph Qgraph
