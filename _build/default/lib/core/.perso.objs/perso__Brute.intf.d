lib/core/brute.mli: Criteria Path Pgraph Qgraph Relal
