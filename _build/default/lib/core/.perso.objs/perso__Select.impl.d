lib/core/select.ml: Atom Conflict Criteria Degree List Path Pgraph Putil Qgraph
