lib/core/criteria.mli: Degree Format
