lib/core/semantic.mli: Path Qgraph Relal
