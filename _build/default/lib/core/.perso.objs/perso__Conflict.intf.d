lib/core/conflict.mli: Atom Path Qgraph Relal
