lib/core/personalize.mli: Criteria Integrate Path Profile Relal Select
