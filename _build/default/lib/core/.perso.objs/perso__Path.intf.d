lib/core/path.mli: Atom Degree Format
