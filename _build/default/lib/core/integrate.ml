open Relal

exception Integration_error of string

let err fmt = Format.kasprintf (fun s -> raise (Integration_error s)) fmt

type instantiated = {
  path : Path.t;
  index : int;
  pred : Sql_ast.pred;
  trefs : Sql_ast.table_ref list;
}

(* ------------------------------------------------------------------ *)
(* Tuple-variable allocation                                           *)
(* ------------------------------------------------------------------ *)

let alias_base rel =
  (* "directed" -> "dd"-style two-letter base, like the paper's examples
     (MV, PL, GN, CA, AC, DD, DI). *)
  if String.length rel >= 2 then String.sub rel 0 2 else rel

let instantiate db qg paths =
  let used = Hashtbl.create 16 in
  List.iter (fun (tv, _) -> Hashtbl.replace used tv ()) (Qgraph.tvs qg);
  let fresh rel =
    let a =
      Sql_ast.fresh_alias ~used:(fun c -> Hashtbl.mem used c) (alias_base rel)
    in
    Hashtbl.replace used a ();
    a
  in
  (* Cache of shared to-one prefixes: key is the anchor tv plus the join
     chain rendered textually. *)
  let shared : (string, string) Hashtbl.t = Hashtbl.create 16 in
  List.mapi
    (fun index path ->
      let preds = ref [] in
      let trefs = ref [] in
      let current_tv = ref path.Path.anchor_tv in
      let all_to_one = ref true in
      let prefix = Buffer.create 32 in
      Buffer.add_string prefix path.Path.anchor_tv;
      List.iter
        (fun ((j : Atom.join), _) ->
          let to_one =
            Database.join_is_to_one db
              ~from_:(j.Atom.j_from_rel, j.Atom.j_from_att)
              ~to_:(j.Atom.j_to_rel, j.Atom.j_to_att)
          in
          all_to_one := !all_to_one && to_one;
          Buffer.add_string prefix ("|" ^ Atom.to_string (Join j));
          let target_tv, is_new =
            if !all_to_one then begin
              let key = Buffer.contents prefix in
              match Hashtbl.find_opt shared key with
              | Some tv -> (tv, false)
              | None ->
                  let tv = fresh j.Atom.j_to_rel in
                  Hashtbl.add shared key tv;
                  (tv, true)
            end
            else (fresh j.Atom.j_to_rel, true)
          in
          if is_new then
            trefs := { Sql_ast.rel = j.Atom.j_to_rel; alias = target_tv } :: !trefs
          else
            (* Shared variable: the tref must still be attached to this
               instantiation so FROM collection remains per-preference. *)
            trefs := { Sql_ast.rel = j.Atom.j_to_rel; alias = target_tv } :: !trefs;
          preds :=
            Sql_ast.P_cmp
              ( Eq,
                S_attr (Sql_ast.attr !current_tv j.Atom.j_from_att),
                S_attr (Sql_ast.attr target_tv j.Atom.j_to_att) )
            :: !preds;
          current_tv := target_tv)
        path.Path.joins;
      (match path.Path.sel with
      | None -> ()
      | Some ((s : Atom.selection), _) ->
          let v =
            (* Dates in profiles are stored as strings; align with the
               binder's coercion. *)
            match s.Atom.s_val with
            | Value.Str str as orig -> (
                match Database.find_table db s.Atom.s_rel with
                | Some t
                  when Schema.col_type (Table.schema t) s.Atom.s_att
                       = Some Value.TDate -> (
                    match Value.parse_date str with Some d -> d | None -> orig)
                | _ -> orig)
            | v -> v
          in
          preds :=
            Sql_ast.P_cmp
              (s.Atom.s_op, S_attr (Sql_ast.attr !current_tv s.Atom.s_att), S_const v)
            :: !preds);
      { path; index; pred = Sql_ast.conj (List.rev !preds); trefs = List.rev !trefs })
    paths

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)
(* ------------------------------------------------------------------ *)

let split_mandatory ~m prefs degree_of =
  match m with
  | `Count m ->
      let rec go i acc = function
        | rest when i = m -> (List.rev acc, rest)
        | [] -> (List.rev acc, [])
        | p :: rest -> go (i + 1) (p :: acc) rest
      in
      go 0 [] prefs
  | `Min_degree d ->
      List.partition (fun p -> Degree.to_float (degree_of p) >= d) prefs

let dedup_conjuncts preds =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun p ->
      let key = Sql_print.pred_to_string p in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    preds

let dedup_trefs (trefs : Sql_ast.table_ref list) =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun (r : Sql_ast.table_ref) ->
      if Hashtbl.mem seen r.Sql_ast.alias then false
      else begin
        Hashtbl.add seen r.Sql_ast.alias ();
        true
      end)
    trefs

let check_projection (q : Sql_ast.query) =
  List.iter
    (function
      | Sql_ast.Sel_attr _ -> ()
      | _ -> err "personalizable queries must project plain attributes")
    q.Sql_ast.select

(* Output names of the original projection, uniquified for use as the
   derived-table columns of MQ. *)
let uniquified_outputs (q : Sql_ast.query) =
  let names = Sql_ast.select_output_names q in
  let seen = Hashtbl.create 8 in
  List.map
    (fun n ->
      match Hashtbl.find_opt seen n with
      | None ->
          Hashtbl.add seen n 1;
          n
      | Some k ->
          Hashtbl.replace seen n (k + 1);
          Printf.sprintf "%s_%d" n (k + 1))
    names

let conflicting_pair db p1 p2 = Conflict.paths_conflict db p1.path p2.path

(* ------------------------------------------------------------------ *)
(* SQ                                                                  *)
(* ------------------------------------------------------------------ *)

let sq db qg ~mandatory ~optional ~l =
  let q0 = Qgraph.query qg in
  check_projection q0;
  if l < 0 then err "SQ: negative L";
  if l > List.length optional then
    err "SQ: L = %d exceeds the %d optional preferences" l (List.length optional);
  let mandatory_ok =
    not
      (List.exists
         (fun (a, b) -> conflicting_pair db a b)
         (Putil.Combin.pairs mandatory))
  in
  let combos =
    if l = 0 then []
    else
      Putil.Combin.subsets optional l
      |> List.filter (fun combo ->
             not
               (List.exists
                  (fun (a, b) -> conflicting_pair db a b)
                  (Putil.Combin.pairs combo)))
  in
  if l > 0 && combos = [] then
    err "SQ: every %d-combination of the optional preferences conflicts" l;
  let used_opt =
    if l = 0 then []
    else
      let seen = Hashtbl.create 16 in
      List.concat_map
        (fun combo ->
          List.filter
            (fun inst ->
              if Hashtbl.mem seen inst.index then false
              else begin
                Hashtbl.add seen inst.index ();
                true
              end)
            combo)
        combos
  in
  let disjunction =
    if l = 0 then Sql_ast.P_true
    else
      Sql_ast.disj
        (List.map
           (fun combo ->
             Sql_ast.conj (dedup_conjuncts (List.map (fun i -> i.pred) combo)))
           combos)
  in
  let where =
    if not mandatory_ok then Sql_ast.P_false
    else
      Sql_ast.conj
        (dedup_conjuncts
           (Sql_ast.conjuncts q0.Sql_ast.where
           @ List.map (fun i -> i.pred) mandatory
           @ [ disjunction ]))
  in
  let extra_trefs =
    dedup_trefs (List.concat_map (fun i -> i.trefs) (mandatory @ used_opt))
  in
  {
    q0 with
    Sql_ast.distinct = true;
    from = q0.Sql_ast.from @ List.map (fun r -> Sql_ast.F_rel r) extra_trefs;
    where;
  }

(* ------------------------------------------------------------------ *)
(* MQ                                                                  *)
(* ------------------------------------------------------------------ *)

let base_plus_mandatory db qg ~mandatory =
  let q0 = Qgraph.query qg in
  let mandatory_ok =
    not
      (List.exists
         (fun (a, b) -> conflicting_pair db a b)
         (Putil.Combin.pairs mandatory))
  in
  let where =
    if not mandatory_ok then Sql_ast.P_false
    else
      Sql_ast.conj
        (dedup_conjuncts
           (Sql_ast.conjuncts q0.Sql_ast.where @ List.map (fun i -> i.pred) mandatory))
  in
  let extra = dedup_trefs (List.concat_map (fun i -> i.trefs) mandatory) in
  {
    q0 with
    Sql_ast.distinct = true;
    from = q0.Sql_ast.from @ List.map (fun r -> Sql_ast.F_rel r) extra;
    where;
  }

let mq ?(rank = true) db qg ~mandatory ~optional ~l () =
  let q0 = Qgraph.query qg in
  check_projection q0;
  (match l with
  | `At_least n when n < 0 -> err "MQ: negative L"
  | `At_least n when n > List.length optional && optional <> [] ->
      err "MQ: L = %d exceeds the %d optional preferences" n (List.length optional)
  | _ -> ());
  match (optional, l) with
  | [], _ | _, `At_least 0 ->
      (* Degenerate: nothing optional to require. *)
      base_plus_mandatory db qg ~mandatory
  | _ ->
      let out_names = uniquified_outputs q0 in
      let proj_attrs =
        List.map
          (function
            | Sql_ast.Sel_attr (a, _) -> a
            | _ -> err "personalizable queries must project plain attributes")
          q0.Sql_ast.select
      in
      let partial inst =
        let select =
          List.map2
            (fun a name -> Sql_ast.Sel_attr (a, Some name))
            proj_attrs out_names
          @ [
              Sql_ast.Sel_const
                (Value.Float (Degree.to_float inst.path.Path.degree), "doi");
              Sql_ast.Sel_const (Value.Int inst.index, "pref");
            ]
        in
        let where =
          Sql_ast.conj
            (dedup_conjuncts
               (Sql_ast.conjuncts q0.Sql_ast.where
               @ List.map (fun i -> i.pred) mandatory
               @ [ inst.pred ]))
        in
        let extra =
          dedup_trefs (List.concat_map (fun i -> i.trefs) (mandatory @ [ inst ]))
        in
        Sql_ast.C_single
          {
            q0 with
            Sql_ast.distinct = true;
            select;
            from = q0.Sql_ast.from @ List.map (fun r -> Sql_ast.F_rel r) extra;
            where;
            order_by = [];
            limit = None;
          }
      in
      let union = Sql_ast.C_union_all (List.map partial optional) in
      let t = "temp" in
      let group_by = List.map (fun n -> Sql_ast.attr t n) out_names in
      let doi_agg =
        Sql_ast.A_doi_conj (Sql_ast.attr t "doi", Sql_ast.attr t "pref")
      in
      let having =
        match l with
        | `At_least n ->
            Sql_ast.H_cmp (Ge, H_agg Sql_ast.A_count_star, H_const (Value.Int n))
        | `Min_doi d ->
            Sql_ast.H_cmp (Gt, H_agg doi_agg, H_const (Value.Float d))
      in
      let select =
        List.map (fun n -> Sql_ast.Sel_attr (Sql_ast.attr t n, Some n)) out_names
        @ (if rank then [ Sql_ast.Sel_agg (doi_agg, "doi") ] else [])
      in
      Sql_ast.query ~distinct:false ~group_by ~having
        ~order_by:(if rank then [ (Sql_ast.O_alias "doi", Sql_ast.Desc) ] else [])
        ~select
        ~from:[ Sql_ast.F_derived (union, t) ]
        ~where:Sql_ast.P_true ()
