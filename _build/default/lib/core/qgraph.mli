(** The query graph: a query represented as a sub-graph on top of the
    personalization graph (§5).

    From a (bound, conjunctive) SPJ query we extract:
    - the tuple variables and the relations they range over (nodes,
      replicated per tuple variable);
    - the atomic selection conditions of the qualification, grouped by
      tuple variable (needed for conflict checks);
    - the set of relations appearing in the query (paths must not expand
      back into it — §5.2 pruning rule (i)).

    A preference path is {e syntactically related} to the query when it
    attaches at one of these tuple variables and expands outward. *)

type t

exception Not_conjunctive of string
(** Raised when the query's qualification is not a conjunction of atomic
    conditions (the paper's personalization scope). *)

val of_query : Relal.Database.t -> Relal.Sql_ast.query -> t
(** Build the query graph of a bound query.  @raise Not_conjunctive if
    the qualification contains OR / NOT, @raise Invalid_argument if the
    FROM clause contains derived tables. *)

val query : t -> Relal.Sql_ast.query
(** The underlying (bound) query. *)

val tvs : t -> (string * string) list
(** (tuple variable, relation) pairs, FROM order. *)

val rel_of_tv : t -> string -> string option

val tvs_of_rel : t -> string -> string list
(** Tuple variables ranging over the given relation. *)

val relations : t -> string list
(** Distinct relations in the query, sorted. *)

val mem_relation : t -> string -> bool

val selections_on : t -> string -> Atom.selection list
(** Atomic equality selections of the qualification on the given tuple
    variable (relation field of the returned selections is the tv's
    relation). *)

val all_selections : t -> (string * Atom.selection) list
(** (tuple variable, selection) for every atomic selection in the
    qualification. *)
