(** Transitive preferences as directed paths (§3.2).

    A candidate preference under construction is a directed acyclic path
    in the personalization graph that begins at a tuple variable of the
    query graph (its {e anchor}) and expands outward: zero or more
    composable join edges, optionally terminated by one selection edge.
    A path ending in a selection is a {e transitive selection} — the only
    kind the selection algorithm outputs; a path of joins only is a
    {e transitive join}, an intermediate candidate.

    The degree of interest of a path is the product of its constituent
    atomic degrees ([Degree.trans]); it therefore only decreases as the
    path grows — the monotonicity Theorem 1's proof rests on. *)

type t = private {
  anchor_tv : string;  (** query tuple variable the path attaches to *)
  anchor_rel : string;  (** the relation that tuple variable ranges over *)
  joins : (Atom.join * Degree.t) list;  (** in path order *)
  sel : (Atom.selection * Degree.t) option;
  degree : Degree.t;  (** product of constituent degrees *)
  rels : string list;  (** relations visited, anchor first *)
}

val start : anchor_tv:string -> anchor_rel:string -> t
(** Empty path at a query node; degree 1, no atoms. *)

val extend_join : t -> Atom.join -> Degree.t -> (t, string) result
(** Append a composable join edge.  Errors when the path already ends in
    a selection, the edge's source relation is not the path's end, or the
    edge's target relation is already on the path (cycle — §3.2 forbids
    cyclic transitive preferences). *)

val extend_sel : t -> Atom.selection -> Degree.t -> (t, string) result
(** Terminate with a selection edge on the path's end relation.  Errors
    when already terminated or on a relation mismatch. *)

val is_selection : t -> bool
(** Ends in a selection edge (an outputtable transitive selection). *)

val end_rel : t -> string
(** The relation the path currently ends at. *)

val length : t -> int
(** Number of atomic elements (joins + selection). *)

val visits : t -> string -> bool
(** Does the path pass through the given relation (anchor included)? *)

val atoms : t -> (Atom.t * Degree.t) list
(** Constituent atoms in order. *)

val join_atoms : t -> Atom.join list

val selection : t -> (Atom.selection * Degree.t) option

val equal : t -> t -> bool
(** Structural equality (anchor, atoms). *)

val to_condition_string : t -> string
(** The transitive query element as a SQL-ish conjunction, e.g.
    ["MOVIE.mid = GENRE.mid and GENRE.genre = 'comedy'"]. *)

val pp : Format.formatter -> t -> unit
(** [to_condition_string] plus the degree. *)
