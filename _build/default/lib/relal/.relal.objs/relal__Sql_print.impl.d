lib/relal/sql_print.ml: Buffer Format List Sql_ast String Value
