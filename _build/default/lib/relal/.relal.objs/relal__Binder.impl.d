lib/relal/binder.ml: Array Database Format Hashtbl List Option Schema Sql_ast String Table Value
