lib/relal/binder.mli: Database Sql_ast Value
