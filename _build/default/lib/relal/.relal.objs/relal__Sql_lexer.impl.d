lib/relal/sql_lexer.ml: Buffer Format List Printf String
