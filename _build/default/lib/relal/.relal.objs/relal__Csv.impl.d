lib/relal/csv.ml: Array Buffer Database Ddl Filename Format In_channel List Out_channel Printf Schema String Sys Table Value
