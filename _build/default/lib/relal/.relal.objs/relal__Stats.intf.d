lib/relal/stats.mli: Database Format
