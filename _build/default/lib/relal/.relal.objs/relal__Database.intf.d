lib/relal/database.mli: Format Schema Table Value
