lib/relal/database.ml: Array Format Hashtbl List Printf Schema String Table Value
