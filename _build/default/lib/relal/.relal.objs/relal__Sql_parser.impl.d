lib/relal/sql_parser.ml: Format List Printf Sql_ast Sql_lexer String Value
