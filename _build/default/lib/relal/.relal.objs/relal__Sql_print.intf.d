lib/relal/sql_print.mli: Format Sql_ast
