lib/relal/ddl.mli: Database
