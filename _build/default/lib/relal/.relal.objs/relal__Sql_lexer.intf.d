lib/relal/sql_lexer.mli: Format
