lib/relal/exec.ml: Array Database Format Hashtbl Lazy List Option Schema Sql_ast Stats String Table Value
