lib/relal/exec.mli: Database Format Sql_ast Stats Value
