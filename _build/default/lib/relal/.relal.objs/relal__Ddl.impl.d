lib/relal/ddl.ml: Array Buffer Database Format List Printf Schema Sql_lexer String Table Value
