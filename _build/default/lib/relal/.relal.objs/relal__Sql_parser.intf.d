lib/relal/sql_parser.mli: Sql_ast
