lib/relal/csv.mli: Database Schema Table
