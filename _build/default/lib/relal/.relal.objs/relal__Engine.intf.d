lib/relal/engine.mli: Database Exec Sql_ast
