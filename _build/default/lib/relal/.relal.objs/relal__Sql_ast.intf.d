lib/relal/sql_ast.mli: Value
