lib/relal/stats.ml: Array Database Format Hashtbl List Printf Schema String Table Value
