lib/relal/table.ml: Array Hashtbl List Printf Schema Value
