lib/relal/sql_ast.ml: List String Value
