lib/relal/engine.ml: Binder Exec Sql_parser Sql_print
