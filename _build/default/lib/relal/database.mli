(** The catalog: a named collection of tables plus the foreign keys that
    connect them.

    The personalization graph (paper §3.1) is derived from this catalog:
    relation/attribute nodes come from the schemas, and the candidate join
    edges come from the registered foreign keys (plus any extra joins a
    designer declares).  The catalog also answers the {e to-one / to-many}
    question for a join direction, which drives conflict detection. *)

type t

val create : unit -> t

val add_table : t -> Schema.t -> unit
(** Register an empty table.  @raise Invalid_argument if a table with the
    same (case-insensitive) name already exists. *)

val add_fk :
  t -> from_:string * string -> to_:string * string -> unit
(** [add_fk db ~from_:(t1,c1) ~to_:(t2,c2)] declares the foreign key
    [t1.c1 -> t2.c2].  @raise Invalid_argument on unknown tables/columns
    or incompatible column types. *)

val table : t -> string -> Table.t
(** @raise Not_found if absent. *)

val find_table : t -> string -> Table.t option

val mem_table : t -> string -> bool

val tables : t -> Table.t list
(** All tables, in registration order. *)

val fks : t -> Schema.fk list
(** All foreign keys, in registration order. *)

val insert : t -> string -> Value.t list -> unit
(** [insert db tname row] appends into the named table. *)

val join_is_to_one : t -> from_:string * string -> to_:string * string -> bool
(** [join_is_to_one db ~from_:(t1,c1) ~to_:(t2,c2)]: does each [t1] row
    match at most one [t2] row through [t1.c1 = t2.c2]?  True exactly when
    [c2] is unique in [t2] (single-column primary key or unique
    constraint).  E.g. in the movie schema, PLAY.mid=MOVIE.mid is to-one
    while MOVIE.mid=GENRE.mid is to-many. *)

val index_fk_columns : t -> unit
(** Build hash indexes on both ends of every registered foreign key —
    the access paths personalized queries exercise. *)

val index_all_columns : t -> unit
(** Build hash indexes on every column of every table.  Preference
    selections land on arbitrary describable attributes (genre names,
    regions, years), so a fully indexed database gives the executor the
    output-proportional access paths a production system would have. *)

val pp_summary : Format.formatter -> t -> unit
(** Table names with cardinalities, one per line. *)
