(** A CREATE TABLE subset, so databases can be described in plain text
    files rather than OCaml code.

    Grammar (case-insensitive, [--] comments to end of line):
    {v
    create table movie (
      mid int primary key,
      title string,
      year int
    );
    create table genre (
      mid int references movie(mid),
      genre string,
      primary key (mid, genre)
    );
    v}
    Column types: [int], [float], [string], [bool], [date].  Column
    constraints: [primary key], [unique], [references table(column)].
    A table-level [primary key (c1, c2, …)] declares a composite key.

    [references] clauses both register a foreign key and (through the
    referenced column's uniqueness) determine the to-one/to-many
    direction information the personalization layer depends on. *)

exception Ddl_error of string

val parse : string -> Database.t
(** Parse a schema script into a fresh catalog (tables empty).
    @raise Ddl_error on syntax errors, unknown types, references to
    undeclared tables/columns, or duplicate declarations. *)

val to_string : Database.t -> string
(** Render a catalog back to DDL text; [parse (to_string db)] declares
    the same tables, keys and foreign keys. *)
