(** Name resolution and type checking.

    [bind db q] validates a parsed query against the catalog and returns a
    normalized query in which:
    - every bare attribute ([title]) is qualified with the unique tuple
      variable that provides it;
    - string literals compared against [date] columns are converted to
      [Value.Date] (accepting both ["YYYY-MM-DD"] and the paper's
      ["D/M/YYYY"]);
    - aggregate shorthand attributes (e.g. [DEGREE_OF_CONJUNCTION( * )])
      are resolved against the input columns.

    The executor ({!Exec}) requires its input to have passed this
    function. *)

exception Bind_error of string

val bind : Database.t -> Sql_ast.query -> Sql_ast.query
(** @raise Bind_error with a human-readable message on any violation:
    unknown table/column/alias, duplicate alias, ambiguous bare column,
    incomparable types, non-grouped select column under GROUP BY, ORDER BY
    key that resolves to nothing, or mismatched UNION ALL branches. *)

val output_schema : Database.t -> Sql_ast.query -> (string * Value.ty) list
(** Output column names and types of a bound query, in SELECT order.
    @raise Bind_error if the query does not bind. *)
