open Sql_ast

exception Parse_error of string

type state = { mutable toks : Sql_lexer.token list }

let peek st = match st.toks with [] -> Sql_lexer.EOF | t :: _ -> t

let peek2 st = match st.toks with _ :: t :: _ -> t | _ -> Sql_lexer.EOF

let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let fail st msg =
  raise
    (Parse_error
       (Format.asprintf "%s (at %a)" msg Sql_lexer.pp_token (peek st)))

let expect st tok what =
  if peek st = tok then advance st else fail st ("expected " ^ what)

let expect_kw st kw =
  match peek st with
  | Sql_lexer.KW k when k = kw -> advance st
  | _ -> fail st ("expected keyword " ^ String.uppercase_ascii kw)

let accept_kw st kw =
  match peek st with
  | Sql_lexer.KW k when k = kw ->
      advance st;
      true
  | _ -> false

let ident st what =
  match peek st with
  | Sql_lexer.IDENT s ->
      advance st;
      s
  | _ -> fail st ("expected " ^ what)

let agg_names = [ "count"; "sum"; "min"; "max"; "avg"; "degree_of_conjunction" ]

(* attr or bare column: IDENT [DOT IDENT] *)
let parse_attr st =
  let a = ident st "attribute" in
  if peek st = Sql_lexer.DOT then begin
    advance st;
    let b = ident st "column name after '.'" in
    attr a b
  end
  else attr "" a

let parse_literal st =
  match peek st with
  | Sql_lexer.INT i ->
      advance st;
      Value.Int i
  | Sql_lexer.FLOAT f ->
      advance st;
      Value.Float f
  | Sql_lexer.STRING s ->
      advance st;
      Value.Str s
  | Sql_lexer.KW "true" ->
      advance st;
      Value.Bool true
  | Sql_lexer.KW "false" ->
      advance st;
      Value.Bool false
  | Sql_lexer.KW "null" ->
      advance st;
      Value.Null
  | _ -> fail st "expected literal"

let is_literal_start st =
  match peek st with
  | Sql_lexer.INT _ | Sql_lexer.FLOAT _ | Sql_lexer.STRING _
  | Sql_lexer.KW ("true" | "false" | "null") ->
      true
  | _ -> false

let is_agg_start st =
  match (peek st, peek2 st) with
  | Sql_lexer.IDENT f, Sql_lexer.LPAREN -> List.mem f agg_names
  | _ -> false

let parse_agg st =
  let f = ident st "aggregate function" in
  expect st Sql_lexer.LPAREN "'('";
  let result =
    match f with
    | "count" ->
        if peek st = Sql_lexer.STAR then begin
          advance st;
          A_count_star
        end
        else A_count (parse_attr st)
    | "sum" -> A_sum (parse_attr st)
    | "min" -> A_min (parse_attr st)
    | "max" -> A_max (parse_attr st)
    | "avg" -> A_avg (parse_attr st)
    | "degree_of_conjunction" ->
        (* Accept the paper's shorthand DEGREE_OF_CONJUNCTION( star ) as well
           as the explicit two-column form. *)
        if peek st = Sql_lexer.STAR then begin
          advance st;
          A_doi_conj (attr "" "doi", attr "" "pref")
        end
        else begin
          let a = parse_attr st in
          expect st Sql_lexer.COMMA "','";
          let b = parse_attr st in
          A_doi_conj (a, b)
        end
    | _ -> fail st ("unknown aggregate " ^ f)
  in
  expect st Sql_lexer.RPAREN "')'";
  result

let parse_scalar st =
  if is_literal_start st then S_const (parse_literal st)
  else S_attr (parse_attr st)

let cmp_of_token = function
  | Sql_lexer.EQ -> Some Eq
  | Sql_lexer.NE -> Some Ne
  | Sql_lexer.LT -> Some Lt
  | Sql_lexer.LE -> Some Le
  | Sql_lexer.GT -> Some Gt
  | Sql_lexer.GE -> Some Ge
  | _ -> None

let parse_cmp_op st =
  match cmp_of_token (peek st) with
  | Some op ->
      advance st;
      op
  | None -> fail st "expected comparison operator"

let rec parse_pred_or st =
  let first = parse_pred_and st in
  let rec loop acc =
    if accept_kw st "or" then loop (parse_pred_and st :: acc) else List.rev acc
  in
  match loop [ first ] with [ p ] -> p | ps -> P_or ps

and parse_pred_and st =
  let first = parse_pred_not st in
  let rec loop acc =
    if accept_kw st "and" then loop (parse_pred_not st :: acc) else List.rev acc
  in
  match loop [ first ] with [ p ] -> p | ps -> P_and ps

and parse_pred_not st =
  if accept_kw st "not" then P_not (parse_pred_not st) else parse_pred_atom st

and parse_pred_atom st =
  match peek st with
  | Sql_lexer.LPAREN ->
      advance st;
      let p = parse_pred_or st in
      expect st Sql_lexer.RPAREN "')'";
      p
  | Sql_lexer.KW "true" ->
      advance st;
      P_true
  | Sql_lexer.KW "false" ->
      advance st;
      P_false
  | _ ->
      let lhs = parse_scalar st in
      let op = parse_cmp_op st in
      let rhs = parse_scalar st in
      P_cmp (op, lhs, rhs)

let parse_hscalar st =
  if is_agg_start st then H_agg (parse_agg st) else H_const (parse_literal st)

let rec parse_having_or st =
  let first = parse_having_and st in
  let rec loop acc =
    if accept_kw st "or" then loop (parse_having_and st :: acc) else List.rev acc
  in
  match loop [ first ] with [ h ] -> h | hs -> H_or hs

and parse_having_and st =
  let first = parse_having_atom st in
  let rec loop acc =
    if accept_kw st "and" then loop (parse_having_atom st :: acc)
    else List.rev acc
  in
  match loop [ first ] with [ h ] -> h | hs -> H_and hs

and parse_having_atom st =
  match peek st with
  | Sql_lexer.LPAREN when not (is_agg_start st) ->
      advance st;
      let h = parse_having_or st in
      expect st Sql_lexer.RPAREN "')'";
      h
  | _ ->
      let lhs = parse_hscalar st in
      let op = parse_cmp_op st in
      let rhs = parse_hscalar st in
      H_cmp (op, lhs, rhs)

let parse_opt_alias st =
  if accept_kw st "as" then Some (ident st "alias after AS")
  else
    match peek st with
    | Sql_lexer.IDENT a ->
        advance st;
        Some a
    | _ -> None

let parse_select_item st idx =
  if is_agg_start st then begin
    let a = parse_agg st in
    let alias =
      match parse_opt_alias st with
      | Some al -> al
      | None -> Printf.sprintf "agg%d" (idx + 1)
    in
    Sel_agg (a, alias)
  end
  else if is_literal_start st then begin
    let v = parse_literal st in
    let alias =
      match parse_opt_alias st with
      | Some al -> al
      | None -> Printf.sprintf "c%d" (idx + 1)
    in
    Sel_const (v, alias)
  end
  else begin
    let a = parse_attr st in
    Sel_attr (a, parse_opt_alias st)
  end

let rec parse_query st =
  expect_kw st "select";
  let distinct = accept_kw st "distinct" in
  let select =
    let rec items acc idx =
      let item = parse_select_item st idx in
      if peek st = Sql_lexer.COMMA then begin
        advance st;
        items (item :: acc) (idx + 1)
      end
      else List.rev (item :: acc)
    in
    items [] 0
  in
  expect_kw st "from";
  let from =
    let rec items acc =
      let item = parse_from_item st in
      if peek st = Sql_lexer.COMMA then begin
        advance st;
        items (item :: acc)
      end
      else List.rev (item :: acc)
    in
    items []
  in
  let where = if accept_kw st "where" then parse_pred_or st else P_true in
  let group_by =
    if accept_kw st "group" then begin
      expect_kw st "by";
      let rec keys acc =
        let a = parse_attr st in
        if peek st = Sql_lexer.COMMA then begin
          advance st;
          keys (a :: acc)
        end
        else List.rev (a :: acc)
      in
      keys []
    end
    else []
  in
  let having = if accept_kw st "having" then Some (parse_having_or st) else None in
  let order_by =
    if accept_kw st "order" then begin
      expect_kw st "by";
      let key st =
        if is_agg_start st then O_agg (parse_agg st)
        else begin
          let a = parse_attr st in
          if a.tv = "" then O_alias a.col else O_attr a
        end
      in
      let dir st =
        if accept_kw st "desc" then Desc
        else begin
          ignore (accept_kw st "asc");
          Asc
        end
      in
      let rec keys acc =
        let k = key st in
        let d = dir st in
        if peek st = Sql_lexer.COMMA then begin
          advance st;
          keys ((k, d) :: acc)
        end
        else List.rev ((k, d) :: acc)
      in
      keys []
    end
    else []
  in
  let limit =
    if accept_kw st "limit" then begin
      match peek st with
      | Sql_lexer.INT n ->
          advance st;
          Some n
      | _ -> fail st "expected integer after LIMIT"
    end
    else None
  in
  { distinct; select; from; where; group_by; having; order_by; limit }

and parse_from_item st =
  match peek st with
  | Sql_lexer.LPAREN ->
      advance st;
      let c = parse_compound st in
      expect st Sql_lexer.RPAREN "')'";
      let alias =
        match parse_opt_alias st with
        | Some a -> a
        | None -> fail st "derived table requires an alias"
      in
      F_derived (c, alias)
  | _ ->
      let rel = ident st "table name" in
      let alias = parse_opt_alias st in
      F_rel (tref ?alias rel)

and parse_compound st =
  let element st =
    match peek st with
    | Sql_lexer.LPAREN ->
        advance st;
        let c = parse_compound st in
        expect st Sql_lexer.RPAREN "')'";
        c
    | _ -> C_single (parse_query st)
  in
  let first = element st in
  let rec loop acc =
    if accept_kw st "union" then begin
      expect_kw st "all";
      loop (element st :: acc)
    end
    else List.rev acc
  in
  match loop [ first ] with [ c ] -> c | cs -> C_union_all cs

let run_parser p s =
  let st = { toks = Sql_lexer.tokenize s } in
  let result = p st in
  (* Tolerate a single trailing semicolon-free EOF; anything else is junk. *)
  (match peek st with
  | Sql_lexer.EOF -> ()
  | _ -> fail st "trailing input after statement");
  result

let parse s =
  (* Strip one optional trailing ';'. *)
  let s =
    let s = String.trim s in
    if String.length s > 0 && s.[String.length s - 1] = ';' then
      String.sub s 0 (String.length s - 1)
    else s
  in
  run_parser parse_query s

let parse_pred s = run_parser parse_pred_or s
