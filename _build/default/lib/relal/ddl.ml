exception Ddl_error of string

let err fmt = Format.kasprintf (fun s -> raise (Ddl_error s)) fmt

(* Strip "--" comments, then reuse the SQL lexer. *)
let strip_comments s =
  let b = Buffer.create (String.length s) in
  let lines = String.split_on_char '\n' s in
  List.iter
    (fun line ->
      let cut =
        let n = String.length line in
        let rec go i =
          if i + 1 >= n then n
          else if line.[i] = '-' && line.[i + 1] = '-' then i
          else go (i + 1)
        in
        go 0
      in
      Buffer.add_string b (String.sub line 0 cut);
      Buffer.add_char b '\n')
    lines;
  Buffer.contents b

type state = { mutable toks : Sql_lexer.token list }

let peek st = match st.toks with [] -> Sql_lexer.EOF | t :: _ -> t
let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let ident st what =
  match peek st with
  | Sql_lexer.IDENT s ->
      advance st;
      s
  | t -> err "expected %s (at %s)" what (Format.asprintf "%a" Sql_lexer.pp_token t)

let expect_ident st word =
  let s = ident st ("keyword " ^ word) in
  if s <> word then err "expected %s, got %s" word s

let expect st tok what = if peek st = tok then advance st else err "expected %s" what

let accept st tok =
  if peek st = tok then begin
    advance st;
    true
  end
  else false

let accept_ident st word =
  match peek st with
  | Sql_lexer.IDENT s when s = word ->
      advance st;
      true
  | _ -> false

let ty_of_name = function
  | "int" | "integer" -> Value.TInt
  | "float" | "real" | "double" -> Value.TFloat
  | "string" | "text" | "varchar" -> Value.TStr
  | "bool" | "boolean" -> Value.TBool
  | "date" -> Value.TDate
  | t -> err "unknown column type %s" t

type coldef = {
  cd_name : string;
  cd_ty : Value.ty;
  cd_pk : bool;
  cd_unique : bool;
  cd_ref : (string * string) option;
}

let parse_coldef st =
  let name = ident st "column name" in
  let ty = ty_of_name (ident st "column type") in
  let pk = ref false and uniq = ref false and reference = ref None in
  let continue_ = ref true in
  while !continue_ do
    if accept_ident st "primary" then begin
      expect_ident st "key";
      pk := true
    end
    else if accept_ident st "unique" then uniq := true
    else if accept_ident st "references" then begin
      let t = ident st "referenced table" in
      expect st Sql_lexer.LPAREN "'('";
      let c = ident st "referenced column" in
      expect st Sql_lexer.RPAREN "')'";
      reference := Some (t, c)
    end
    else continue_ := false
  done;
  { cd_name = name; cd_ty = ty; cd_pk = !pk; cd_unique = !uniq; cd_ref = !reference }

let parse_table st =
  expect_ident st "create";
  expect_ident st "table";
  let tname = ident st "table name" in
  expect st Sql_lexer.LPAREN "'('";
  let cols = ref [] in
  let table_pk = ref [] in
  let finished = ref false in
  while not !finished do
    (* Either a table-level primary key or a column definition. *)
    (if accept_ident st "primary" then begin
       expect_ident st "key";
       expect st Sql_lexer.LPAREN "'('";
       let rec keys acc =
         let c = ident st "key column" in
         if accept st Sql_lexer.COMMA then keys (c :: acc) else List.rev (c :: acc)
       in
       table_pk := keys [];
       expect st Sql_lexer.RPAREN "')'"
     end
     else cols := parse_coldef st :: !cols);
    if not (accept st Sql_lexer.COMMA) then begin
      expect st Sql_lexer.RPAREN "')' or ','";
      finished := true
    end
  done;
  (* Optional trailing semicolon: the lexer has no ';', so scripts are
     pre-split on ';' by [parse]. *)
  (tname, List.rev !cols, !table_pk)

let parse text =
  let db = Database.create () in
  let statements =
    String.split_on_char ';' (strip_comments text)
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let fks = ref [] in
  List.iter
    (fun stmt ->
      let toks =
        try Sql_lexer.tokenize stmt
        with Sql_lexer.Lex_error (e, _) -> err "lexical error: %s" e
      in
      let st = { toks } in
      let tname, cols, table_pk = parse_table st in
      (match peek st with
      | Sql_lexer.EOF -> ()
      | t -> err "trailing input after table %s (%s)" tname
               (Format.asprintf "%a" Sql_lexer.pp_token t));
      let key =
        if table_pk <> [] then table_pk
        else List.filter_map (fun c -> if c.cd_pk then Some c.cd_name else None) cols
      in
      let unique =
        List.filter_map (fun c -> if c.cd_unique then Some c.cd_name else None) cols
      in
      let schema =
        try
          Schema.make ~name:tname
            ~cols:(List.map (fun c -> (c.cd_name, c.cd_ty)) cols)
            ~key ~unique ()
        with Invalid_argument e -> err "%s" e
      in
      (try Database.add_table db schema
       with Invalid_argument e -> err "%s" e);
      List.iter
        (fun c ->
          match c.cd_ref with
          | Some (t, rc) -> fks := (tname, c.cd_name, t, rc) :: !fks
          | None -> ())
        cols)
    statements;
  (* Register foreign keys after all tables exist, so forward references
     between tables are legal. *)
  List.iter
    (fun (t1, c1, t2, c2) ->
      try Database.add_fk db ~from_:(t1, c1) ~to_:(t2, c2)
      with Invalid_argument e -> err "%s" e)
    (List.rev !fks);
  db

let to_string db =
  let b = Buffer.create 512 in
  let fks = Database.fks db in
  List.iter
    (fun t ->
      let s = Table.schema t in
      Buffer.add_string b (Printf.sprintf "create table %s (\n" (Schema.name s));
      let cols = Array.to_list (Schema.columns s) in
      let single_pk = match s.Schema.key with [ k ] -> Some k | _ -> None in
      let col_lines =
        List.map
          (fun c ->
            let name = String.lowercase_ascii c.Schema.cname in
            let fk =
              List.find_opt
                (fun f ->
                  f.Schema.from_table = String.lowercase_ascii (Schema.name s)
                  && f.Schema.from_col = name)
                fks
            in
            Printf.sprintf "  %s %s%s%s%s" name
              (Value.ty_name c.Schema.cty)
              (if single_pk = Some name then " primary key" else "")
              (if List.mem name s.Schema.unique then " unique" else "")
              (match fk with
              | Some f ->
                  Printf.sprintf " references %s(%s)" f.Schema.to_table
                    f.Schema.to_col
              | None -> ""))
          cols
      in
      let constraint_lines =
        match s.Schema.key with
        | [] | [ _ ] -> []
        | ks -> [ Printf.sprintf "  primary key (%s)" (String.concat ", " ks) ]
      in
      Buffer.add_string b (String.concat ",\n" (col_lines @ constraint_lines));
      Buffer.add_string b "\n);\n")
    (Database.tables db);
  Buffer.contents b
