type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | KW of string
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | STAR
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | EOF

exception Lex_error of string * int

let keywords =
  [
    "select"; "distinct"; "from"; "where"; "and"; "or"; "not"; "group"; "by";
    "having"; "order"; "asc"; "desc"; "limit"; "union"; "all"; "as"; "true";
    "false"; "null";
  ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let emit t = toks := t :: !toks in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '(' then (emit LPAREN; incr i)
    else if c = ')' then (emit RPAREN; incr i)
    else if c = ',' then (emit COMMA; incr i)
    else if c = '.' && not (!i + 1 < n && is_digit s.[!i + 1]) then (emit DOT; incr i)
    else if c = '*' then (emit STAR; incr i)
    else if c = '=' then (emit EQ; incr i)
    else if c = '<' then begin
      if !i + 1 < n && s.[!i + 1] = '=' then (emit LE; i := !i + 2)
      else if !i + 1 < n && s.[!i + 1] = '>' then (emit NE; i := !i + 2)
      else (emit LT; incr i)
    end
    else if c = '>' then begin
      if !i + 1 < n && s.[!i + 1] = '=' then (emit GE; i := !i + 2)
      else (emit GT; incr i)
    end
    else if c = '!' && !i + 1 < n && s.[!i + 1] = '=' then (emit NE; i := !i + 2)
    else if c = '\'' then begin
      let buf = Buffer.create 16 in
      let start = !i in
      incr i;
      let closed = ref false in
      while not !closed do
        if !i >= n then raise (Lex_error ("unterminated string literal", start));
        if s.[!i] = '\'' then
          if !i + 1 < n && s.[!i + 1] = '\'' then begin
            Buffer.add_char buf '\'';
            i := !i + 2
          end
          else begin
            closed := true;
            incr i
          end
        else begin
          Buffer.add_char buf s.[!i];
          incr i
        end
      done;
      emit (STRING (Buffer.contents buf))
    end
    else if is_digit c || (c = '.' && !i + 1 < n && is_digit s.[!i + 1]) then begin
      let start = !i in
      let is_float = ref false in
      while !i < n && (is_digit s.[!i] || s.[!i] = '.' || s.[!i] = 'e' || s.[!i] = 'E'
                      || ((s.[!i] = '+' || s.[!i] = '-') && !i > start
                          && (s.[!i - 1] = 'e' || s.[!i - 1] = 'E'))) do
        if s.[!i] = '.' || s.[!i] = 'e' || s.[!i] = 'E' then is_float := true;
        incr i
      done;
      let text = String.sub s start (!i - start) in
      if !is_float then
        match float_of_string_opt text with
        | Some f -> emit (FLOAT f)
        | None -> raise (Lex_error ("bad numeric literal " ^ text, start))
      else
        match int_of_string_opt text with
        | Some v -> emit (INT v)
        | None -> raise (Lex_error ("bad integer literal " ^ text, start))
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char s.[!i] do
        incr i
      done;
      let word = String.lowercase_ascii (String.sub s start (!i - start)) in
      if List.mem word keywords then emit (KW word) else emit (IDENT word)
    end
    else raise (Lex_error (Printf.sprintf "illegal character %C" c, !i))
  done;
  emit EOF;
  List.rev !toks

let pp_token fmt = function
  | IDENT s -> Format.fprintf fmt "IDENT(%s)" s
  | INT i -> Format.fprintf fmt "INT(%d)" i
  | FLOAT f -> Format.fprintf fmt "FLOAT(%g)" f
  | STRING s -> Format.fprintf fmt "STRING(%s)" s
  | KW s -> Format.fprintf fmt "KW(%s)" s
  | LPAREN -> Format.pp_print_string fmt "("
  | RPAREN -> Format.pp_print_string fmt ")"
  | COMMA -> Format.pp_print_string fmt ","
  | DOT -> Format.pp_print_string fmt "."
  | STAR -> Format.pp_print_string fmt "*"
  | EQ -> Format.pp_print_string fmt "="
  | NE -> Format.pp_print_string fmt "<>"
  | LT -> Format.pp_print_string fmt "<"
  | LE -> Format.pp_print_string fmt "<="
  | GT -> Format.pp_print_string fmt ">"
  | GE -> Format.pp_print_string fmt ">="
  | EOF -> Format.pp_print_string fmt "EOF"
