let run_query ?strategy db q = Exec.run ?strategy db (Binder.bind db q)

let run_sql ?strategy db sql = run_query ?strategy db (Sql_parser.parse sql)

let explain db q = Sql_print.query_to_pretty (Binder.bind db q)
