module H = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

type index = { col : int; buckets : int list ref H.t }
(* Buckets store row ids (positions in [rows]) most-recent first. *)

type t = {
  sch : Schema.t;
  mutable rows : Value.t array array;
  mutable size : int;
  mutable indexes : index list;
}

let create sch = { sch; rows = [||]; size = 0; indexes = [] }
let schema t = t.sch
let cardinality t = t.size

let check_row t row =
  let cols = Schema.columns t.sch in
  if Array.length row <> Array.length cols then
    invalid_arg
      (Printf.sprintf "Table.insert: arity %d, expected %d in %s"
         (Array.length row) (Array.length cols)
         (Schema.name t.sch));
  Array.iteri
    (fun i v ->
      match Value.ty_of v with
      | None -> ()
      | Some ty ->
          if not (Value.compatible ty cols.(i).Schema.cty) then
            invalid_arg
              (Printf.sprintf "Table.insert: %s.%s expects %s, got %s"
                 (Schema.name t.sch) cols.(i).Schema.cname
                 (Value.ty_name cols.(i).Schema.cty)
                 (Value.ty_name ty)))
    row

let grow t row =
  let cap = Array.length t.rows in
  let ncap = if cap = 0 then 64 else 2 * cap in
  let nr = Array.make ncap row in
  Array.blit t.rows 0 nr 0 t.size;
  t.rows <- nr

let index_add idx rowid v =
  match H.find_opt idx.buckets v with
  | Some l -> l := rowid :: !l
  | None -> H.add idx.buckets v (ref [ rowid ])

let insert t row =
  check_row t row;
  if t.size = Array.length t.rows then grow t row;
  t.rows.(t.size) <- row;
  List.iter (fun idx -> index_add idx t.size row.(idx.col)) t.indexes;
  t.size <- t.size + 1

let insert_values t vs = insert t (Array.of_list vs)

let get t i =
  if i < 0 || i >= t.size then invalid_arg "Table.get: row id out of bounds";
  t.rows.(i)

let iter t f =
  for i = 0 to t.size - 1 do
    f t.rows.(i)
  done

let fold t ~init ~f =
  let acc = ref init in
  iter t (fun r -> acc := f !acc r);
  !acc

let to_list t =
  let acc = ref [] in
  for i = t.size - 1 downto 0 do
    acc := t.rows.(i) :: !acc
  done;
  !acc

let build_index t col =
  match Schema.col_index t.sch col with
  | None ->
      invalid_arg
        (Printf.sprintf "Table.build_index: no column %s in %s" col
           (Schema.name t.sch))
  | Some ci ->
      if not (List.exists (fun idx -> idx.col = ci) t.indexes) then begin
        let idx = { col = ci; buckets = H.create (max 16 t.size) } in
        for i = 0 to t.size - 1 do
          index_add idx i t.rows.(i).(ci)
        done;
        t.indexes <- idx :: t.indexes
      end

let has_index t col =
  match Schema.col_index t.sch col with
  | None -> false
  | Some ci -> List.exists (fun idx -> idx.col = ci) t.indexes

let lookup t col v =
  match Schema.col_index t.sch col with
  | None ->
      invalid_arg
        (Printf.sprintf "Table.lookup: no column %s in %s" col
           (Schema.name t.sch))
  | Some ci -> (
      match List.find_opt (fun idx -> idx.col = ci) t.indexes with
      | Some idx -> (
          match H.find_opt idx.buckets v with
          | None -> []
          | Some ids -> List.rev_map (fun i -> t.rows.(i)) !ids)
      | None ->
          let acc = ref [] in
          for i = t.size - 1 downto 0 do
            if Value.equal t.rows.(i).(ci) v then acc := t.rows.(i) :: !acc
          done;
          !acc)

let clear t =
  t.rows <- [||];
  t.size <- 0;
  t.indexes <- List.map (fun idx -> { idx with buckets = H.create 16 }) t.indexes
