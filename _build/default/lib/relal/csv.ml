exception Csv_error of string

let err fmt = Format.kasprintf (fun s -> raise (Csv_error s)) fmt

(* ------------------------------ writing ------------------------------ *)

let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let quote_field ?(force = false) s =
  if (not force) && not (needs_quoting s) then s
  else begin
    let b = Buffer.create (String.length s + 2) in
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string b "\"\"" else Buffer.add_char b c)
      s;
    Buffer.add_char b '"';
    Buffer.contents b
  end

(* Returns the field text and whether quoting is mandatory even when the
   text needs none — the empty string must stay distinguishable from
   NULL (an empty unquoted field). *)
let field_of_value = function
  | Value.Null -> ("", false)
  | Value.Int i -> (string_of_int i, false)
  | Value.Float f -> (Printf.sprintf "%.17g" f, false)
  | Value.Bool b -> ((if b then "true" else "false"), false)
  | Value.Date d ->
      ( Printf.sprintf "%04d-%02d-%02d" (d / 10000) (d / 100 mod 100) (d mod 100),
        false )
  | Value.Str s -> (s, s = "")

let table_to_string t =
  let b = Buffer.create 4096 in
  let cols = Schema.columns (Table.schema t) in
  Buffer.add_string b
    (String.concat ","
       (Array.to_list (Array.map (fun c -> quote_field c.Schema.cname) cols)));
  Buffer.add_char b '\n';
  Table.iter t (fun row ->
      let line =
        String.concat ","
          (Array.to_list
             (Array.map
                (fun v ->
                  let text, force = field_of_value v in
                  quote_field ~force text)
                row))
      in
      Buffer.add_string b line;
      Buffer.add_char b '\n');
  Buffer.contents b

(* ------------------------------ parsing ------------------------------ *)

(* Split CSV text into records of (field, was_quoted) lists. *)
let parse_records text =
  let records = ref [] in
  let fields = ref [] in
  let buf = Buffer.create 32 in
  let quoted = ref false in
  let in_quotes = ref false in
  let n = String.length text in
  let flush_field () =
    fields := (Buffer.contents buf, !quoted) :: !fields;
    Buffer.clear buf;
    quoted := false
  in
  let flush_record () =
    flush_field ();
    records := List.rev !fields :: !records;
    fields := []
  in
  let i = ref 0 in
  while !i < n do
    let c = text.[!i] in
    if !in_quotes then begin
      if c = '"' then
        if !i + 1 < n && text.[!i + 1] = '"' then begin
          Buffer.add_char buf '"';
          i := !i + 2
        end
        else begin
          in_quotes := false;
          incr i
        end
      else begin
        Buffer.add_char buf c;
        incr i
      end
    end
    else begin
      (match c with
      | '"' ->
          in_quotes := true;
          quoted := true
      | ',' -> flush_field ()
      | '\n' -> flush_record ()
      | '\r' -> () (* tolerate CRLF *)
      | c -> Buffer.add_char buf c);
      incr i
    end
  done;
  if !in_quotes then err "unterminated quoted field";
  (* Final record without trailing newline. *)
  if Buffer.length buf > 0 || !fields <> [] then flush_record ();
  List.rev !records

let value_of_field ty (s, was_quoted) =
  if s = "" && not was_quoted then Value.Null
  else
    match ty with
    | Value.TStr -> Value.Str s
    | Value.TInt -> (
        match int_of_string_opt s with
        | Some i -> Value.Int i
        | None -> err "bad int field %S" s)
    | Value.TFloat -> (
        match float_of_string_opt s with
        | Some f -> Value.Float f
        | None -> err "bad float field %S" s)
    | Value.TBool -> (
        match String.lowercase_ascii s with
        | "true" | "t" | "1" -> Value.Bool true
        | "false" | "f" | "0" -> Value.Bool false
        | _ -> err "bad bool field %S" s)
    | Value.TDate -> (
        match Value.parse_date s with
        | Some d -> d
        | None -> err "bad date field %S" s)

let table_of_string schema text =
  match parse_records text with
  | [] -> err "missing header line"
  | header :: rows ->
      let cols = Schema.columns schema in
      let expected = Array.to_list (Array.map (fun c -> String.lowercase_ascii c.Schema.cname) cols) in
      let got = List.map (fun (f, _) -> String.lowercase_ascii f) header in
      if got <> expected then
        err "header mismatch for %s: expected %s, got %s" (Schema.name schema)
          (String.concat "," expected) (String.concat "," got);
      let t = Table.create schema in
      List.iteri
        (fun lineno fields ->
          if List.length fields <> Array.length cols then
            err "row %d of %s has %d fields, expected %d" (lineno + 2)
              (Schema.name schema) (List.length fields) (Array.length cols);
          let row =
            Array.of_list
              (List.mapi
                 (fun i f ->
                   try value_of_field cols.(i).Schema.cty f
                   with Csv_error e ->
                     err "row %d of %s, column %s: %s" (lineno + 2)
                       (Schema.name schema) cols.(i).Schema.cname e)
                 fields)
          in
          try Table.insert t row
          with Invalid_argument e -> err "row %d of %s: %s" (lineno + 2) (Schema.name schema) e)
        rows;
      t

(* ----------------------------- databases ----------------------------- *)

let save_db ~dir db =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  Out_channel.with_open_text (Filename.concat dir "schema.ddl") (fun oc ->
      output_string oc (Ddl.to_string db));
  List.iter
    (fun t ->
      let name = Schema.name (Table.schema t) in
      Out_channel.with_open_text (Filename.concat dir (name ^ ".csv")) (fun oc ->
          output_string oc (table_to_string t)))
    (Database.tables db)

let load_db ~dir =
  let ddl_path = Filename.concat dir "schema.ddl" in
  if not (Sys.file_exists ddl_path) then err "no schema.ddl in %s" dir;
  let schema_db =
    Ddl.parse (In_channel.with_open_text ddl_path In_channel.input_all)
  in
  List.iter
    (fun t ->
      let schema = Table.schema t in
      let path = Filename.concat dir (Schema.name schema ^ ".csv") in
      if Sys.file_exists path then begin
        let text = In_channel.with_open_text path In_channel.input_all in
        let parsed = table_of_string schema text in
        Table.iter parsed (fun row -> Table.insert t (Array.copy row))
      end)
    (Database.tables schema_db);
  Database.index_fk_columns schema_db;
  schema_db
