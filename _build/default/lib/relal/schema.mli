(** Relation schemas and integrity metadata.

    Besides the usual column/type/primary-key information, schemas carry
    the two pieces of metadata the personalization framework leans on:

    - {b foreign keys}, which induce the "natural" join edges of the
      personalization graph (paper §3.1);
    - {b uniqueness}, from which the engine derives whether a join edge is
      {e to-one} or {e to-many} in a given direction — the property that
      decides both syntactic conflicts (§5) and tuple-variable sharing
      (§6(b)). *)

type column = { cname : string; cty : Value.ty }

type t = private {
  tname : string;
  cols : column array;
  key : string list;  (** primary key columns, possibly composite *)
  unique : string list;  (** additional single-column unique constraints *)
}

val make :
  name:string ->
  cols:(string * Value.ty) list ->
  ?key:string list ->
  ?unique:string list ->
  unit ->
  t
(** Build a schema.  @raise Invalid_argument on duplicate column names or
    key/unique columns that do not exist. *)

val name : t -> string
val columns : t -> column array
val arity : t -> int

val col_index : t -> string -> int option
(** Position of a column (case-insensitive), if present. *)

val col_type : t -> string -> Value.ty option

val mem_col : t -> string -> bool

val is_unique_col : t -> string -> bool
(** [is_unique_col s c]: does every value of [c] appear in at most one row
    — i.e. [c] is the whole primary key or carries a unique constraint?
    This is what makes a join {e to-one} towards this relation. *)

type fk = {
  from_table : string;
  from_col : string;
  to_table : string;
  to_col : string;
}
(** A foreign key [from_table.from_col -> to_table.to_col].  FKs are
    registered on the database (catalog), not on individual schemas. *)

val pp : Format.formatter -> t -> unit
(** [TABLE(col ty, ...; key: ...)] one-line rendering. *)
