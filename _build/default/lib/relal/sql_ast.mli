(** Abstract syntax for the SQL subset the personalization framework
    manipulates.

    The fragment covers exactly what the paper needs (§6): SPJ queries
    whose qualification combines atomic selection and join conditions with
    AND/OR, [SELECT DISTINCT], derived tables built from [UNION ALL],
    [GROUP BY] / [HAVING] with aggregates (including the paper's
    [DEGREE_OF_CONJUNCTION]), [ORDER BY], and [LIMIT] (for top-N delivery,
    a §8 extension).  Construction helpers keep client code — notably the
    SQ/MQ integration step — short and readable. *)

type attr = { tv : string; col : string }
(** A tuple-variable-qualified attribute, e.g. [MV.title]. *)

type table_ref = { rel : string; alias : string }
(** [FROM rel alias].  When no alias is written, [alias = rel]. *)

type cmp_op = Eq | Ne | Lt | Le | Gt | Ge

type scalar = S_attr of attr | S_const of Value.t

type pred =
  | P_true
  | P_false
  | P_cmp of cmp_op * scalar * scalar
  | P_and of pred list
  | P_or of pred list
  | P_not of pred

type agg =
  | A_count_star  (** [count( * )] *)
  | A_count of attr
  | A_sum of attr
  | A_min of attr
  | A_max of attr
  | A_avg of attr
  | A_doi_conj of attr * attr
      (** [DEGREE_OF_CONJUNCTION(doi_col, pref_col)] — the paper's
          user-defined aggregate: over a group, deduplicate by the
          preference-identifier column and combine the degree column with
          the conjunctive function 1 − Π(1−dᵢ). *)

type select_item =
  | Sel_attr of attr * string option  (** column, optional AS alias *)
  | Sel_const of Value.t * string  (** literal with mandatory alias *)
  | Sel_agg of agg * string  (** aggregate with mandatory alias *)

type hscalar = H_agg of agg | H_const of Value.t

type having =
  | H_cmp of cmp_op * hscalar * hscalar
  | H_and of having list
  | H_or of having list

type order_key = O_attr of attr | O_alias of string | O_agg of agg

type dir = Asc | Desc

type query = {
  distinct : bool;
  select : select_item list;
  from : from_item list;
  where : pred;
  group_by : attr list;
  having : having option;
  order_by : (order_key * dir) list;
  limit : int option;
}

and from_item =
  | F_rel of table_ref
  | F_derived of compound * string  (** [(…) alias] *)

and compound = C_single of query | C_union_all of compound list

(** {1 Constructors} *)

val attr : string -> string -> attr
(** [attr "MV" "title"], lower-casing both parts. *)

val tref : ?alias:string -> string -> table_ref

val eq : scalar -> scalar -> pred
val col : string -> string -> scalar
val const : Value.t -> scalar
val str : string -> scalar
val int : int -> scalar

val conj : pred list -> pred
(** Flattening conjunction: drops [P_true], collapses to [P_false] when
    any member is, returns the single member unwrapped. *)

val disj : pred list -> pred
(** Dual of {!conj}. *)

val simple :
  ?distinct:bool ->
  select:select_item list ->
  from:from_item list ->
  where:pred ->
  unit ->
  query
(** SPJ query with no grouping/ordering. *)

val query :
  ?distinct:bool ->
  ?group_by:attr list ->
  ?having:having ->
  ?order_by:(order_key * dir) list ->
  ?limit:int ->
  select:select_item list ->
  from:from_item list ->
  where:pred ->
  unit ->
  query

(** {1 Observations} *)

val equal_attr : attr -> attr -> bool
val compare_attr : attr -> attr -> int

val conjuncts : pred -> pred list
(** Top-level conjunctive factors ([P_and] flattened; anything else is a
    single factor). *)

val pred_attrs : pred -> attr list
(** All attributes mentioned, with duplicates. *)

val query_tvs : query -> table_ref list
(** The plain table refs of the FROM clause (derived tables excluded). *)

val select_output_names : query -> string list
(** Output column names, in order (alias if given, else the column). *)

val fresh_alias : used:(string -> bool) -> string -> string
(** [fresh_alias ~used base] returns [base] or [base1], [base2], … — the
    first candidate for which [used] is false.  Used when integration
    introduces new tuple variables (§6(b)). *)
