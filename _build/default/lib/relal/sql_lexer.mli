(** Tokenizer for the SQL subset.

    Keywords are case-insensitive; identifiers are lower-cased (the whole
    engine is case-insensitive, like the paper's Oracle prototype).
    String literals use single quotes with [''] escaping. *)

type token =
  | IDENT of string  (** lower-cased identifier *)
  | INT of int
  | FLOAT of float
  | STRING of string  (** unescaped contents *)
  | KW of string  (** lower-cased keyword, e.g. "select" *)
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | STAR
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | EOF

exception Lex_error of string * int
(** Message and byte offset. *)

val keywords : string list
(** The reserved words recognised as [KW]. *)

val tokenize : string -> token list
(** @raise Lex_error on an illegal character or unterminated string. *)

val pp_token : Format.formatter -> token -> unit
