(** Recursive-descent parser for the SQL subset of {!Sql_ast}.

    Attribute references may be written qualified ([MV.title]) or bare
    ([title]); bare references carry an empty tuple variable and are
    resolved later by {!Binder}.  The parser is the inverse of
    {!Sql_print}: [parse (Sql_print.query_to_string q)] re-reads any query
    the engine prints (a property-tested round trip). *)

exception Parse_error of string
(** Human-readable message, including the offending token. *)

val parse : string -> Sql_ast.query
(** Parse a single SELECT statement (an optional trailing [';'] is
    allowed).  @raise Parse_error on syntax errors,
    @raise Sql_lexer.Lex_error on lexical errors. *)

val parse_pred : string -> Sql_ast.pred
(** Parse a bare predicate (used by the profile text format and tests). *)
