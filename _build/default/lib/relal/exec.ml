open Sql_ast

exception Exec_error of string

let err fmt = Format.kasprintf (fun s -> raise (Exec_error s)) fmt

type result = { cols : string array; rows : Value.t array list }

(* --------------------------------------------------------------------- *)
(* Working relations                                                      *)
(* --------------------------------------------------------------------- *)

(* Intermediate relation: each column addressed as tuple-variable.column. *)
type wrel = { header : (string * string) array; wrows : Value.t array list }

(* A FROM item the join loop has not touched yet.  Base tables stay lazy
   so the loop can pick index access paths (index-equality materialization
   and index-nested-loop joins) instead of scanning. *)
type source =
  | S_mat of wrel
  | S_base of { alias : string; tbl : Table.t }

let base_header alias tbl =
  Array.map
    (fun c -> (alias, String.lowercase_ascii c.Schema.cname))
    (Schema.columns (Table.schema tbl))

let source_card = function
  | S_mat w -> List.length w.wrows
  | S_base { tbl; _ } -> Table.cardinality tbl

let source_header = function
  | S_mat w -> w.header
  | S_base { alias; tbl } -> base_header alias tbl

let col_idx w (a : attr) =
  let n = Array.length w.header in
  let rec go i =
    if i >= n then None
    else begin
      let tv, c = w.header.(i) in
      if tv = a.tv && c = a.col then Some i else go (i + 1)
    end
  in
  go 0

let col_idx_exn w a =
  match col_idx w a with
  | Some i -> i
  | None -> err "executor: unresolved attribute %s.%s" a.tv a.col

let _has_tv w tv = Array.exists (fun (t, _) -> t = tv) w.header

(* --------------------------------------------------------------------- *)
(* Row-key hash tables (for joins, distinct, grouping)                    *)
(* --------------------------------------------------------------------- *)

module Key = struct
  type t = Value.t array

  let equal a b =
    Array.length a = Array.length b
    &&
    let rec go i =
      i >= Array.length a || (Value.equal a.(i) b.(i) && go (i + 1))
    in
    go 0

  let hash a = Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 a
end

module KH = Hashtbl.Make (Key)

(* --------------------------------------------------------------------- *)
(* Predicate evaluation                                                   *)
(* --------------------------------------------------------------------- *)

let eval_cmp op a b =
  match op with
  | Eq -> Value.equal a b
  | Ne -> not (Value.equal a b)
  | Lt -> Value.compare a b < 0
  | Le -> Value.compare a b <= 0
  | Gt -> Value.compare a b > 0
  | Ge -> Value.compare a b >= 0

(* Compile a predicate into a closure over rows of [w].  All attributes
   must resolve in [w]'s header. *)
let compile_pred w p =
  let scalar = function
    | S_const v -> fun _ -> v
    | S_attr a ->
        let i = col_idx_exn w a in
        fun row -> row.(i)
  in
  let rec go = function
    | P_true -> fun _ -> true
    | P_false -> fun _ -> false
    | P_not p ->
        let f = go p in
        fun row -> not (f row)
    | P_and ps ->
        let fs = List.map go ps in
        fun row -> List.for_all (fun f -> f row) fs
    | P_or ps ->
        let fs = List.map go ps in
        fun row -> List.exists (fun f -> f row) fs
    | P_cmp (op, l, r) ->
        let fl = scalar l and fr = scalar r in
        fun row -> eval_cmp op (fl row) (fr row)
  in
  go p

let rec pred_tvs acc = function
  | P_true | P_false -> acc
  | P_not p -> pred_tvs acc p
  | P_and ps | P_or ps -> List.fold_left pred_tvs acc ps
  | P_cmp (_, l, r) ->
      let s acc = function S_attr a -> a.tv :: acc | S_const _ -> acc in
      s (s acc l) r

let tvs_of_pred p = List.sort_uniq String.compare (pred_tvs [] p)

(* --------------------------------------------------------------------- *)
(* FROM materialization                                                   *)
(* --------------------------------------------------------------------- *)

let rec source_of_from ?cost db item : string * source =
  match item with
  | F_rel r -> (
      match Database.find_table db r.rel with
      | None -> err "executor: unknown table %s" r.rel
      | Some t -> (r.alias, S_base { alias = r.alias; tbl = t }))
  | F_derived (c, alias) ->
      let res = run_compound ?cost db c in
      let header = Array.map (fun c -> (alias, c)) res.cols in
      (alias, S_mat { header; wrows = res.rows })

and materialize_from ?cost db item : wrel =
  match source_of_from ?cost db item with
  | _, S_mat w -> w
  | _, S_base { alias; tbl } ->
      { header = base_header alias tbl; wrows = Table.to_list tbl }

(* --------------------------------------------------------------------- *)
(* Conjunctive planning: pushdown + greedy hash joins                     *)
(* --------------------------------------------------------------------- *)

and filter_wrel w preds =
  match preds with
  | [] -> w
  | _ ->
      let f = compile_pred w (conj preds) in
      { w with wrows = List.filter f w.wrows }

and hash_join left right keys =
  (* keys: (left_attr, right_attr) equi-join pairs. *)
  let li = List.map (fun (a, _) -> col_idx_exn left a) keys in
  let ri = List.map (fun (_, b) -> col_idx_exn right b) keys in
  let key_of idxs row = Array.of_list (List.map (fun i -> row.(i)) idxs) in
  (* Build on the smaller input. *)
  let swap = List.length right.wrows < List.length left.wrows in
  let build, bidx, probe, pidx =
    if swap then (right, ri, left, li) else (left, li, right, ri)
  in
  let h = KH.create (max 16 (List.length build.wrows)) in
  List.iter
    (fun row ->
      let k = key_of bidx row in
      match KH.find_opt h k with
      | Some l -> l := row :: !l
      | None -> KH.add h k (ref [ row ]))
    build.wrows;
  let out = ref [] in
  List.iter
    (fun prow ->
      let k = key_of pidx prow in
      match KH.find_opt h k with
      | None -> ()
      | Some matches ->
          List.iter
            (fun brow ->
              let lrow, rrow = if swap then (prow, brow) else (brow, prow) in
              out := Array.append lrow rrow :: !out)
            !matches)
    probe.wrows;
  { header = Array.append left.header right.header; wrows = !out }

and cross_product left right =
  let out = ref [] in
  List.iter
    (fun l ->
      List.iter (fun r -> out := Array.append l r :: !out) right.wrows)
    left.wrows;
  { header = Array.append left.header right.header; wrows = !out }

(* Materialize a base table under its local predicates, choosing an
   access path: if some equality predicate lands on an indexed column the
   matching rows are fetched through the index and the remaining
   predicates are applied to them; otherwise a filtered scan. *)
and materialize_base ~preds alias tbl : wrel =
  let header = base_header alias tbl in
  let index_probe =
    List.find_map
      (fun p ->
        match p with
        | P_cmp (Eq, S_attr a, S_const v) | P_cmp (Eq, S_const v, S_attr a)
          when Table.has_index tbl a.col ->
            Some (a.col, v, p)
        | _ -> None)
      preds
  in
  match index_probe with
  | Some (col, v, used) ->
      let rest = List.filter (fun p -> p != used) preds in
      let w = { header; wrows = Table.lookup tbl col v } in
      filter_wrel w rest
  | None -> filter_wrel { header; wrows = Table.to_list tbl } preds

(* Index-nested-loop join: [keys] are (probe-side, base-side) equi-join
   attributes; rows of [current] probe the base table's index on the
   first indexed base column, and the remaining key equalities are
   checked on each match.  Cost is proportional to |current| plus the
   output — never a scan of the base table. *)
and index_nl_join current keys alias tbl : wrel option =
  let indexed, others =
    List.partition (fun ((_ : attr), (b : attr)) -> Table.has_index tbl b.col) keys
  in
  match indexed with
  | [] -> None
  | (pa, pb) :: rest_indexed ->
      let others = rest_indexed @ others in
      let pi = col_idx_exn current pa in
      let bh = base_header alias tbl in
      let base_idx (b : attr) =
        match Schema.col_index (Table.schema tbl) b.col with
        | Some i -> i
        | None -> err "executor: no column %s in %s" b.col alias
      in
      let checks =
        List.map (fun (a, b) -> (col_idx_exn current a, base_idx b)) others
      in
      let out = ref [] in
      List.iter
        (fun row ->
          List.iter
            (fun brow ->
              if
                List.for_all
                  (fun (ci, bi) -> Value.equal row.(ci) brow.(bi))
                  checks
              then out := Array.append row brow :: !out)
            (Table.lookup tbl pb.col row.(pi)))
        current.wrows;
      Some { header = Array.append current.header bh; wrows = !out }

(* Evaluate a conjunctive block: [sources] is an association
   (tv -> source) — base tables lazy, derived tables materialized;
   [conjuncts] the predicate factors.  Returns the joined wrel covering
   every tv in [sources].  With [?cost] statistics, the next join is the
   one with the smallest estimated output (System-R containment formula);
   without, the greedy smallest-input heuristic. *)
and join_conjunctive ?cost (sources : (string * source) list) conjuncts : wrel =
  (* Classify conjuncts. *)
  let local, joins, residual =
    List.fold_left
      (fun (local, joins, residual) p ->
        match p with
        | P_cmp (Eq, S_attr a, S_attr b) when a.tv <> b.tv ->
            (local, (a, b) :: joins, residual)
        | _ -> (
            match tvs_of_pred p with
            | [ tv ] -> ((tv, p) :: local, joins, residual)
            | [] -> (local, joins, p :: residual) (* constant predicate *)
            | _ -> (local, joins, p :: residual)))
      ([], [], []) conjuncts
  in
  (* Constant predicates: a constant FALSE empties everything. *)
  let const_preds, residual =
    List.partition (fun p -> tvs_of_pred p = []) residual
  in
  let const_ok =
    List.for_all (fun p -> compile_pred { header = [||]; wrows = [] } p [||]) const_preds
  in
  (* Pushdown local filters: any tv carrying one is materialized through
     its best access path; unfiltered base tables stay lazy so the join
     loop can probe them with index-nested loops. *)
  let sources =
    List.map
      (fun (tv, src) ->
        let preds = List.filter_map (fun (t, p) -> if t = tv then Some p else None) local in
        if not const_ok then
          (tv, S_mat { header = source_header src; wrows = [] })
        else
          match (src, preds) with
          | S_base _, [] -> (tv, src)
          | S_base { alias; tbl }, preds ->
              (tv, S_mat (materialize_base ~preds alias tbl))
          | S_mat w, preds -> (tv, S_mat (filter_wrel w preds)))
      sources
  in
  let force = function
    | S_mat w -> w
    | S_base { alias; tbl } ->
        { header = base_header alias tbl; wrows = Table.to_list tbl }
  in
  match sources with
  | [] -> err "executor: empty FROM"
  | _ ->
      let remaining = ref sources in
      let joins = ref joins in
      let residual = ref residual in
      (* Start from the smallest (estimated) relation. *)
      let smallest () =
        List.fold_left
          (fun best (tv, src) ->
            match best with
            | None -> Some (tv, src)
            | Some (_, bsrc) ->
                if source_card src < source_card bsrc then Some (tv, src)
                else best)
          None !remaining
      in
      let tv0, src0 = Option.get (smallest ()) in
      remaining := List.remove_assoc tv0 !remaining;
      let current = ref (force src0) in
      let joined_tvs = ref [ tv0 ] in
      let apply_ready_residuals () =
        let ready, rest =
          List.partition
            (fun p ->
              List.for_all (fun tv -> List.mem tv !joined_tvs) (tvs_of_pred p))
            !residual
        in
        residual := rest;
        if ready <> [] then current := filter_wrel !current ready
      in
      apply_ready_residuals ();
      while !remaining <> [] do
        (* Find join edges from the joined set to a single new tv. *)
        let edge_groups = Hashtbl.create 8 in
        List.iter
          (fun (a, b) ->
            let a_in = List.mem a.tv !joined_tvs
            and b_in = List.mem b.tv !joined_tvs in
            if a_in && not b_in then begin
              let l = try Hashtbl.find edge_groups b.tv with Not_found -> [] in
              Hashtbl.replace edge_groups b.tv ((a, b) :: l)
            end
            else if b_in && not a_in then begin
              let l = try Hashtbl.find edge_groups a.tv with Not_found -> [] in
              Hashtbl.replace edge_groups a.tv ((b, a) :: l)
            end)
          !joins;
        let next =
          (* Rank joinable relations: with statistics, by estimated join
             output |cur|·|R| / max(ndv); otherwise by raw input size. *)
          let score src keys =
            match cost with
            | None -> float_of_int (source_card src)
            | Some stats -> (
                let cur = float_of_int (List.length !current.wrows) in
                match (src, keys) with
                | S_base { tbl; _ }, (_, (b : attr)) :: _ -> (
                    let tname = Schema.name (Table.schema tbl) in
                    match Stats.ndv stats tname b.col with
                    | n ->
                        cur *. float_of_int (Table.cardinality tbl)
                        /. float_of_int (max 1 n)
                    | exception Invalid_argument _ ->
                        cur *. float_of_int (Table.cardinality tbl))
                | _ ->
                    (* Materialized input: assume a key join (output ≈
                       the current side). *)
                    cur)
          in
          Hashtbl.fold
            (fun tv keys best ->
              match List.assoc_opt tv !remaining with
              | None -> best
              | Some src -> (
                  let s = score src keys in
                  match best with
                  | Some (_, _, _, bs) when bs <= s -> best
                  | _ -> Some (tv, src, keys, s)))
            edge_groups None
          |> Option.map (fun (tv, src, keys, _) -> (tv, src, keys))
        in
        (match next with
        | Some (tv, src, keys) ->
            (* keys are (already-joined attr, new attr) pairs.  Against a
               lazy base table with an index on a join column, probe with
               an index-nested loop; otherwise hash join the
               materialization. *)
            let joined =
              match src with
              | S_base { alias; tbl } -> (
                  match index_nl_join !current keys alias tbl with
                  | Some w -> w
                  | None ->
                      hash_join !current (force src)
                        (List.map (fun (a, b) -> (a, b)) keys))
              | S_mat w -> hash_join !current w keys
            in
            current := joined;
            joined_tvs := tv :: !joined_tvs;
            remaining := List.remove_assoc tv !remaining;
            (* The join keys are now satisfied; drop them so the
               internal-edge sweep below does not re-filter on them. *)
            joins :=
              List.filter
                (fun (a, b) ->
                  not
                    (List.exists
                       (fun (ka, kb) ->
                         (equal_attr a ka && equal_attr b kb)
                         || (equal_attr a kb && equal_attr b ka))
                       keys))
                !joins
        | None ->
            (* No connecting edge: cartesian step with the smallest rest. *)
            let tv, src = Option.get (smallest ()) in
            current := cross_product !current (force src);
            joined_tvs := tv :: !joined_tvs;
            remaining := List.remove_assoc tv !remaining);
        (* Enforce any join edge that has become internal (both sides
           joined) but was not one of the hash keys. *)
        let internal, external_ =
          List.partition
            (fun (a, b) ->
              List.mem a.tv !joined_tvs && List.mem b.tv !joined_tvs)
            !joins
        in
        joins := external_;
        if internal <> [] then
          current :=
            filter_wrel !current
              (List.map (fun (a, b) -> P_cmp (Eq, S_attr a, S_attr b)) internal);
        apply_ready_residuals ()
      done;
      apply_ready_residuals ();
      if !residual <> [] then
        err "executor: residual predicates with unknown tuple variables";
      !current

(* --------------------------------------------------------------------- *)
(* Aggregation                                                            *)
(* --------------------------------------------------------------------- *)

and agg_of_rows w agg rows =
  match agg with
  | A_count_star -> Value.Int (List.length rows)
  | A_count a ->
      let i = col_idx_exn w a in
      Value.Int
        (List.length (List.filter (fun r -> r.(i) <> Value.Null) rows))
  | A_sum a ->
      let i = col_idx_exn w a in
      let fsum, is_float =
        List.fold_left
          (fun (acc, isf) r ->
            match r.(i) with
            | Value.Int v -> (acc +. float_of_int v, isf)
            | Value.Float v -> (acc +. v, true)
            | Value.Null -> (acc, isf)
            | v -> err "sum over non-numeric value %s" (Value.to_string v))
          (0., false) rows
      in
      if is_float then Value.Float fsum else Value.Int (int_of_float fsum)
  | A_min a ->
      let i = col_idx_exn w a in
      List.fold_left
        (fun acc r ->
          if r.(i) = Value.Null then acc
          else
            match acc with
            | Value.Null -> r.(i)
            | m -> if Value.compare r.(i) m < 0 then r.(i) else m)
        Value.Null rows
  | A_max a ->
      let i = col_idx_exn w a in
      List.fold_left
        (fun acc r ->
          if r.(i) = Value.Null then acc
          else
            match acc with
            | Value.Null -> r.(i)
            | m -> if Value.compare r.(i) m > 0 then r.(i) else m)
        Value.Null rows
  | A_avg a ->
      let i = col_idx_exn w a in
      let sum, n =
        List.fold_left
          (fun (acc, n) r ->
            match r.(i) with
            | Value.Int v -> (acc +. float_of_int v, n + 1)
            | Value.Float v -> (acc +. v, n + 1)
            | Value.Null -> (acc, n)
            | v -> err "avg over non-numeric value %s" (Value.to_string v))
          (0., 0) rows
      in
      if n = 0 then Value.Null else Value.Float (sum /. float_of_int n)
  | A_doi_conj (doi_a, pref_a) ->
      (* The paper's aggregate: combine, with the conjunctive function
         1 - prod(1 - d_i), the degrees of the *distinct* preferences the
         group satisfies (a preference can reach a row through several
         partial queries only once). *)
      let di = col_idx_exn w doi_a and pi = col_idx_exn w pref_a in
      let seen = KH.create 8 in
      let prod = ref 1.0 in
      List.iter
        (fun r ->
          let key = [| r.(pi) |] in
          if not (KH.mem seen key) then begin
            KH.add seen key ();
            let d =
              match r.(di) with
              | Value.Float f -> f
              | Value.Int i -> float_of_int i
              | v -> err "degree_of_conjunction over non-numeric %s" (Value.to_string v)
            in
            prod := !prod *. (1. -. d)
          end)
        rows;
      Value.Float (1. -. !prod)

and eval_having w rows h =
  let rec go = function
    | H_and hs -> List.for_all go hs
    | H_or hs -> List.exists go hs
    | H_cmp (op, l, r) ->
        let v = function
          | H_agg a -> agg_of_rows w a rows
          | H_const c -> c
        in
        eval_cmp op (v l) (v r)
  in
  go h

(* --------------------------------------------------------------------- *)
(* Post-pipeline: group / having / order / project / distinct / limit     *)
(* --------------------------------------------------------------------- *)

and post_pipeline (q : query) (w : wrel) : result =
  let has_aggs =
    List.exists (function Sel_agg _ -> true | _ -> false) q.select
    || q.having <> None
    || List.exists (function O_agg _, _ -> true | _ -> false) q.order_by
  in
  let grouped = q.group_by <> [] || has_aggs in
  let out_names = Array.of_list (select_output_names q) in
  let projected_with_keys =
    if grouped then begin
      (* Group rows. *)
      let key_idxs = List.map (col_idx_exn w) q.group_by in
      let groups = KH.create 64 in
      let order = ref [] in
      List.iter
        (fun row ->
          let k = Array.of_list (List.map (fun i -> row.(i)) key_idxs) in
          match KH.find_opt groups k with
          | Some l -> l := row :: !l
          | None ->
              KH.add groups k (ref [ row ]);
              order := k :: !order)
        w.wrows;
      let keys_in_order = List.rev !order in
      List.filter_map
        (fun k ->
          let rows = !(KH.find groups k) in
          let keep =
            match q.having with
            | None -> true
            | Some h -> eval_having w rows h
          in
          if not keep then None
          else begin
            (* Lazy: an all-aggregate projection over an empty group (the
               GROUP-BY-less aggregate case) never touches a row. *)
            let rep = lazy (List.hd rows) in
            let out =
              Array.of_list
                (List.map
                   (function
                     | Sel_attr (a, _) -> (Lazy.force rep).(col_idx_exn w a)
                     | Sel_const (v, _) -> v
                     | Sel_agg (agg, _) -> agg_of_rows w agg rows)
                   q.select)
            in
            let sort_key =
              List.map
                (fun (k, d) ->
                  let v =
                    match k with
                    | O_attr a -> (Lazy.force rep).(col_idx_exn w a)
                    | O_agg agg -> agg_of_rows w agg rows
                    | O_alias name -> (
                        match
                          Array.to_list out_names
                          |> List.mapi (fun i n -> (n, i))
                          |> List.assoc_opt name
                        with
                        | Some i -> out.(i)
                        | None -> err "ORDER BY alias %s not in output" name)
                  in
                  (v, d))
                q.order_by
            in
            Some (out, sort_key)
          end)
        keys_in_order
    end
    else
      List.map
        (fun row ->
          let out =
            Array.of_list
              (List.map
                 (function
                   | Sel_attr (a, _) -> row.(col_idx_exn w a)
                   | Sel_const (v, _) -> v
                   | Sel_agg _ -> err "aggregate in ungrouped projection")
                 q.select)
          in
          let sort_key =
            List.map
              (fun (k, d) ->
                let v =
                  match k with
                  | O_attr a -> row.(col_idx_exn w a)
                  | O_agg _ -> err "ORDER BY aggregate in ungrouped query"
                  | O_alias name -> (
                      match
                        Array.to_list out_names
                        |> List.mapi (fun i n -> (n, i))
                        |> List.assoc_opt name
                      with
                      | Some i -> out.(i)
                      | None -> err "ORDER BY alias %s not in output" name)
                in
                (v, d))
              q.order_by
          in
          (out, sort_key))
        w.wrows
  in
  (* DISTINCT before ORDER BY (SQL evaluation order). *)
  let projected_with_keys =
    if q.distinct then begin
      let seen = KH.create 64 in
      List.filter
        (fun (out, _) ->
          if KH.mem seen out then false
          else begin
            KH.add seen out ();
            true
          end)
        projected_with_keys
    end
    else projected_with_keys
  in
  let sorted =
    match q.order_by with
    | [] -> projected_with_keys
    | _ ->
        List.stable_sort
          (fun (_, k1) (_, k2) ->
            let rec cmp ks1 ks2 =
              match (ks1, ks2) with
              | [], [] -> 0
              | (v1, d) :: r1, (v2, _) :: r2 ->
                  let c = Value.compare v1 v2 in
                  let c = match d with Asc -> c | Desc -> -c in
                  if c <> 0 then c else cmp r1 r2
              | _ -> 0
            in
            cmp k1 k2)
          projected_with_keys
  in
  let rows = List.map fst sorted in
  let rows =
    match q.limit with
    | None -> rows
    | Some n -> List.filteri (fun i _ -> i < n) rows
  in
  { cols = out_names; rows }

(* --------------------------------------------------------------------- *)
(* DNF splitting (for DISTINCT + disjunctive qualifications, i.e. SQ)     *)
(* --------------------------------------------------------------------- *)

and dnf_branches cap p : pred list list option =
  (* Returns up to [cap] conjunctions of "literal" predicates, or None if
     the expansion would exceed [cap]. *)
  let product l1 l2 =
    List.concat_map (fun c1 -> List.map (fun c2 -> c1 @ c2) l2) l1
  in
  let rec go p : pred list list option =
    match p with
    | P_true -> Some [ [] ]
    | P_false -> Some []
    | P_cmp _ | P_not _ -> Some [ [ p ] ]
    | P_or ps ->
        List.fold_left
          (fun acc p ->
            match (acc, go p) with
            | Some a, Some b when List.length a + List.length b <= cap ->
                Some (a @ b)
            | _ -> None)
          (Some []) ps
    | P_and ps ->
        List.fold_left
          (fun acc p ->
            match (acc, go p) with
            | Some a, Some b when List.length a * List.length b <= cap ->
                Some (product a b)
            | _ -> None)
          (Some [ [] ]) ps
  in
  go p

and contains_or = function
  | P_or _ -> true
  | P_and ps -> List.exists contains_or ps
  | P_not p -> contains_or p
  | _ -> false

and select_attrs q =
  List.filter_map (function Sel_attr (a, _) -> Some a | _ -> None) q.select

(* --------------------------------------------------------------------- *)
(* Top-level evaluation                                                   *)
(* --------------------------------------------------------------------- *)

and run_auto ?cost db (q : query) : result =
  let wrels = List.map (source_of_from ?cost db) q.from in
  let has_aggs =
    List.exists (function Sel_agg _ -> true | _ -> false) q.select
    || q.having <> None
  in
  let dnf_eligible =
    q.distinct && q.group_by = [] && (not has_aggs) && contains_or q.where
  in
  let dnf =
    if dnf_eligible then dnf_branches 4096 q.where else None
  in
  match dnf with
  | Some branches ->
      (* Evaluate each conjunctive branch over only the tuple variables it
         (or the output) references; unreferenced FROM entries must merely
         be non-empty (sound because DISTINCT erases multiplicities). *)
      let needed_base =
        List.sort_uniq String.compare
          (List.map (fun (a : attr) -> a.tv) (select_attrs q)
          @ List.concat_map
              (fun (k, _) ->
                match k with O_attr a -> [ a.tv ] | _ -> [])
              q.order_by)
      in
      let all_rows = ref [] in
      List.iter
        (fun branch ->
          let branch_tvs =
            List.sort_uniq String.compare
              (needed_base @ List.concat_map tvs_of_pred branch)
          in
          let used, unused =
            List.partition (fun (tv, _) -> List.mem tv branch_tvs) wrels
          in
          let nonempty_unused =
            List.for_all (fun (_, src) -> source_card src > 0) unused
          in
          if nonempty_unused && used <> [] then begin
            let joined = join_conjunctive ?cost used branch in
            let res =
              post_pipeline
                { q with where = P_true; order_by = []; limit = None }
                joined
            in
            all_rows := List.rev_append res.rows !all_rows
          end)
        branches;
      let merged =
        {
          header =
            Array.of_list
              (List.map (fun n -> ("", n)) (select_output_names q));
          wrows = List.rev !all_rows;
        }
      in
      (* Re-run the tail of the pipeline on the merged projection for
         distinct / order / limit.  Column references now address the
         projected names: an ORDER BY attribute must map to the output
         name of the select item that produced it. *)
      let output_name_of (a : attr) =
        let rec go = function
          | [] -> err "ORDER BY column %s.%s not in DISTINCT output" a.tv a.col
          | Sel_attr (a', alias) :: _ when equal_attr a a' -> (
              match alias with Some al -> al | None -> a'.col)
          | _ :: rest -> go rest
        in
        go q.select
      in
      let q' =
        {
          q with
          from = [];
          where = P_true;
          select =
            List.map
              (function
                | Sel_attr (a, alias) ->
                    let name =
                      match alias with Some al -> al | None -> a.col
                    in
                    Sel_attr ({ tv = ""; col = name }, Some name)
                | item -> item)
              q.select;
          order_by =
            List.map
              (fun (k, d) ->
                ( (match k with
                  | O_attr a -> O_attr { tv = ""; col = output_name_of a }
                  | k -> k),
                  d ))
              q.order_by;
        }
      in
      post_pipeline q' merged
  | None ->
      let conjuncts = conjuncts q.where in
      (* Keep disjunctions and other non-splittable factors as residual
         filters inside the conjunctive join. *)
      let joined = join_conjunctive ?cost wrels conjuncts in
      post_pipeline { q with where = P_true } joined

and run_naive db (q : query) : result =
  let wrels = List.map (materialize_from db) q.from in
  let joined =
    match wrels with
    | [] -> err "executor: empty FROM"
    | w :: rest -> List.fold_left cross_product w rest
  in
  let filtered = filter_wrel joined [ q.where ] in
  post_pipeline { q with where = P_true } filtered

and run_compound ?cost db (c : compound) : result =
  match c with
  | C_single q -> run_auto ?cost db q
  | C_union_all [] -> err "executor: empty UNION ALL"
  | C_union_all (c :: cs) ->
      let first = run_compound ?cost db c in
      let rows =
        List.fold_left
          (fun acc c' ->
            let r = run_compound ?cost db c' in
            List.rev_append (List.rev r.rows) acc)
          first.rows cs
      in
      { first with rows }

let run ?(strategy = `Auto) ?stats db q =
  match strategy with
  | `Auto -> run_auto db q
  | `Naive -> run_naive db q
  | `Cost ->
      let stats = match stats with Some s -> s | None -> Stats.create db in
      run_auto ~cost:stats db q

(* --------------------------------------------------------------------- *)
(* Result helpers                                                         *)
(* --------------------------------------------------------------------- *)

let compare_rows (a : Value.t array) (b : Value.t array) =
  let la = Array.length a and lb = Array.length b in
  let rec go i =
    if i >= la && i >= lb then 0
    else if i >= la then -1
    else if i >= lb then 1
    else
      let c = Value.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let sort_rows r = { r with rows = List.sort compare_rows r.rows }

let result_equal_list a b =
  List.length a.rows = List.length b.rows
  && List.for_all2 (fun x y -> Key.equal x y) a.rows b.rows

let result_equal_bag a b = result_equal_list (sort_rows a) (sort_rows b)

let pp_result ?(max_rows = 20) fmt r =
  let shown = List.filteri (fun i _ -> i < max_rows) r.rows in
  let cells = List.map (fun row -> Array.map Value.to_string row) shown in
  let ncols = Array.length r.cols in
  let width = Array.make ncols 0 in
  Array.iteri (fun i c -> width.(i) <- String.length c) r.cols;
  List.iter
    (fun row ->
      Array.iteri (fun i s -> width.(i) <- max width.(i) (String.length s)) row)
    cells;
  let line sep =
    Format.pp_print_string fmt sep;
    Array.iteri
      (fun i _ ->
        Format.pp_print_string fmt (String.make (width.(i) + 2) '-');
        Format.pp_print_string fmt sep)
      width;
    Format.pp_print_newline fmt ()
  in
  let row_out (cells : string array) =
    Format.pp_print_string fmt "|";
    Array.iteri
      (fun i s -> Format.fprintf fmt " %-*s |" width.(i) s)
      cells;
    Format.pp_print_newline fmt ()
  in
  line "+";
  row_out r.cols;
  line "+";
  List.iter row_out cells;
  line "+";
  let total = List.length r.rows in
  if total > max_rows then
    Format.fprintf fmt "... (%d of %d rows shown)@." max_rows total
  else Format.fprintf fmt "(%d rows)@." total
