type column = { cname : string; cty : Value.ty }

type t = {
  tname : string;
  cols : column array;
  key : string list;
  unique : string list;
}

type fk = {
  from_table : string;
  from_col : string;
  to_table : string;
  to_col : string;
}

let lc = String.lowercase_ascii

let make ~name ~cols ?(key = []) ?(unique = []) () =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (c, _) ->
      let c = lc c in
      if Hashtbl.mem seen c then
        invalid_arg (Printf.sprintf "Schema.make: duplicate column %s.%s" name c);
      Hashtbl.add seen c ())
    cols;
  let check_exists what c =
    if not (Hashtbl.mem seen (lc c)) then
      invalid_arg
        (Printf.sprintf "Schema.make: %s column %s not in table %s" what c name)
  in
  List.iter (check_exists "key") key;
  List.iter (check_exists "unique") unique;
  {
    tname = name;
    cols = Array.of_list (List.map (fun (c, ty) -> { cname = c; cty = ty }) cols);
    key = List.map lc key;
    unique = List.map lc unique;
  }

let name s = s.tname
let columns s = s.cols
let arity s = Array.length s.cols

let col_index s c =
  let c = lc c in
  let n = Array.length s.cols in
  let rec go i =
    if i >= n then None else if lc s.cols.(i).cname = c then Some i else go (i + 1)
  in
  go 0

let col_type s c =
  match col_index s c with None -> None | Some i -> Some s.cols.(i).cty

let mem_col s c = col_index s c <> None

let is_unique_col s c =
  let c = lc c in
  (match s.key with [ k ] -> k = c | _ -> false) || List.mem c s.unique

let pp fmt s =
  Format.fprintf fmt "%s(%s%s)" s.tname
    (String.concat ", "
       (Array.to_list
          (Array.map (fun c -> c.cname ^ " " ^ Value.ty_name c.cty) s.cols)))
    (match s.key with
    | [] -> ""
    | ks -> "; key: " ^ String.concat ", " ks)
