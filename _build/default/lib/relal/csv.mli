(** CSV persistence for tables and whole databases.

    Format: RFC-4180-style — fields separated by commas, quoted with
    double quotes when they contain commas, quotes or newlines, embedded
    quotes doubled.  The first line is a header of column names.  Values
    are rendered type-faithfully ([Null] as the empty unquoted field,
    dates as [YYYY-MM-DD]) and parsed back under the schema's column
    types, so a round trip is value-exact.

    A database directory holds [schema.ddl] (see {!Ddl}) plus one
    [<table>.csv] per table — a human-editable on-disk database the CLI
    can load with [--data-dir]. *)

exception Csv_error of string

val table_to_string : Table.t -> string
(** Header plus one line per row. *)

val table_of_string : Schema.t -> string -> Table.t
(** Parse rows under the given schema (header validated).
    @raise Csv_error on malformed CSV, a header mismatch, arity
    mismatches, or unparseable typed fields. *)

val save_db : dir:string -> Database.t -> unit
(** Write [schema.ddl] and one CSV per table; creates [dir] if needed. *)

val load_db : dir:string -> Database.t
(** Read a directory written by {!save_db} (or by hand).  Tables listed
    in the DDL but missing a CSV load empty.  Foreign-key columns are
    hash-indexed after loading.
    @raise Csv_error / @raise Ddl.Ddl_error on malformed input. *)
