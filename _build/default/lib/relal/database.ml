let lc = String.lowercase_ascii

type t = {
  tbl : (string, Table.t) Hashtbl.t;
  mutable order : string list; (* registration order, reversed *)
  mutable fk_list : Schema.fk list; (* reversed *)
}

let create () = { tbl = Hashtbl.create 16; order = []; fk_list = [] }

let add_table db sch =
  let key = lc (Schema.name sch) in
  if Hashtbl.mem db.tbl key then
    invalid_arg ("Database.add_table: duplicate table " ^ Schema.name sch);
  Hashtbl.add db.tbl key (Table.create sch);
  db.order <- key :: db.order

let find_table db name = Hashtbl.find_opt db.tbl (lc name)

let table db name =
  match find_table db name with Some t -> t | None -> raise Not_found

let mem_table db name = Hashtbl.mem db.tbl (lc name)

let tables db = List.rev_map (fun k -> Hashtbl.find db.tbl k) db.order

let check_col db what tname cname =
  match find_table db tname with
  | None -> invalid_arg (Printf.sprintf "Database.add_fk: unknown %s table %s" what tname)
  | Some t -> (
      match Schema.col_type (Table.schema t) cname with
      | None ->
          invalid_arg
            (Printf.sprintf "Database.add_fk: unknown column %s.%s" tname cname)
      | Some ty -> ty)

let add_fk db ~from_:(t1, c1) ~to_:(t2, c2) =
  let ty1 = check_col db "source" t1 c1 in
  let ty2 = check_col db "target" t2 c2 in
  if not (Value.compatible ty1 ty2) then
    invalid_arg
      (Printf.sprintf "Database.add_fk: %s.%s (%s) vs %s.%s (%s)" t1 c1
         (Value.ty_name ty1) t2 c2 (Value.ty_name ty2));
  db.fk_list <-
    { Schema.from_table = lc t1; from_col = lc c1; to_table = lc t2; to_col = lc c2 }
    :: db.fk_list

let fks db = List.rev db.fk_list

let insert db tname row = Table.insert_values (table db tname) row

let join_is_to_one db ~from_:(_t1, _c1) ~to_:(t2, c2) =
  match find_table db t2 with
  | None -> invalid_arg ("Database.join_is_to_one: unknown table " ^ t2)
  | Some t -> Schema.is_unique_col (Table.schema t) c2

let index_fk_columns db =
  List.iter
    (fun { Schema.from_table; from_col; to_table; to_col } ->
      Table.build_index (table db from_table) from_col;
      Table.build_index (table db to_table) to_col)
    (fks db)

let index_all_columns db =
  List.iter
    (fun t ->
      Array.iter
        (fun c -> Table.build_index t c.Schema.cname)
        (Schema.columns (Table.schema t)))
    (tables db)

let pp_summary fmt db =
  List.iter
    (fun t ->
      Format.fprintf fmt "%-12s %8d rows@." (Schema.name (Table.schema t))
        (Table.cardinality t))
    (tables db)
