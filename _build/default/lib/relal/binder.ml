open Sql_ast

exception Bind_error of string

let err fmt = Format.kasprintf (fun s -> raise (Bind_error s)) fmt

(* Environment: one entry per FROM item, in order. *)
type env_entry = { alias : string; cols : (string * Value.ty) list }
type env = env_entry list

let entry_col_ty (e : env_entry) col = List.assoc_opt col e.cols

let lookup_qualified env (a : attr) =
  match List.find_opt (fun e -> e.alias = a.tv) env with
  | None -> err "unknown tuple variable %s" a.tv
  | Some e -> (
      match entry_col_ty e a.col with
      | None -> err "tuple variable %s has no column %s" a.tv a.col
      | Some ty -> ty)

let resolve_attr env (a : attr) : attr * Value.ty =
  if a.tv <> "" then (a, lookup_qualified env a)
  else begin
    let hits =
      List.filter_map
        (fun e ->
          match entry_col_ty e a.col with
          | Some ty -> Some (e.alias, ty)
          | None -> None)
        env
    in
    match hits with
    | [ (alias, ty) ] -> ({ tv = alias; col = a.col }, ty)
    | [] -> err "column %s does not appear in any FROM item" a.col
    | _ -> err "column %s is ambiguous; qualify it" a.col
  end

(* Coerce a string literal to a date when compared against a date column. *)
let coerce_const ty v =
  match (ty, v) with
  | Value.TDate, Value.Str s -> (
      match Value.parse_date s with
      | Some d -> d
      | None -> err "string %S is not a valid date literal" s)
  | _ -> v

let check_cmp what lty rty =
  if not (Value.compatible lty rty) then
    err "%s compares %s with %s" what (Value.ty_name lty) (Value.ty_name rty)

let bind_scalar env = function
  | S_attr a ->
      let a, ty = resolve_attr env a in
      (S_attr a, Some ty)
  | S_const v -> (S_const v, Value.ty_of v)

let rec bind_pred env = function
  | P_true -> P_true
  | P_false -> P_false
  | P_not p -> P_not (bind_pred env p)
  | P_and ps -> P_and (List.map (bind_pred env) ps)
  | P_or ps -> P_or (List.map (bind_pred env) ps)
  | P_cmp (op, l, r) -> (
      let l, lty = bind_scalar env l in
      let r, rty = bind_scalar env r in
      match (lty, rty) with
      | Some lt, Some rt when Value.compatible lt rt -> P_cmp (op, l, r)
      | Some lt, Some rt -> (
          (* Try date coercion in either direction before failing. *)
          match (l, r) with
          | S_attr _, S_const v when lt = Value.TDate ->
              P_cmp (op, l, S_const (coerce_const lt v))
          | S_const v, S_attr _ when rt = Value.TDate ->
              P_cmp (op, S_const (coerce_const rt v), r)
          | _ ->
              check_cmp "predicate" lt rt;
              P_cmp (op, l, r))
      | _ -> P_cmp (op, l, r) (* NULL literal comparisons are permitted *))

let agg_attrs = function
  | A_count_star -> []
  | A_count a | A_sum a | A_min a | A_max a | A_avg a -> [ a ]
  | A_doi_conj (a, b) -> [ a; b ]

let rebuild_agg agg resolved =
  match (agg, resolved) with
  | A_count_star, [] -> A_count_star
  | A_count _, [ a ] -> A_count a
  | A_sum _, [ a ] -> A_sum a
  | A_min _, [ a ] -> A_min a
  | A_max _, [ a ] -> A_max a
  | A_avg _, [ a ] -> A_avg a
  | A_doi_conj _, [ a; b ] -> A_doi_conj (a, b)
  | _ -> assert false

let bind_agg env agg =
  let resolved =
    List.map
      (fun a ->
        let a, ty = resolve_attr env a in
        (match agg with
        | A_sum _ | A_avg _ ->
            if ty <> Value.TInt && ty <> Value.TFloat then
              err "aggregate over non-numeric column %s.%s" a.tv a.col
        | A_doi_conj _ -> ()
        | _ -> ());
        a)
      (agg_attrs agg)
  in
  rebuild_agg agg resolved

let agg_ty env = function
  | A_count_star | A_count _ -> Value.TInt
  | A_sum a -> lookup_qualified env a
  | A_min a | A_max a -> lookup_qualified env a
  | A_avg _ -> Value.TFloat
  | A_doi_conj _ -> Value.TFloat

let rec bind_having env = function
  | H_and hs -> H_and (List.map (bind_having env) hs)
  | H_or hs -> H_or (List.map (bind_having env) hs)
  | H_cmp (op, l, r) ->
      let bind_h = function
        | H_agg a -> H_agg (bind_agg env a)
        | H_const v -> H_const v
      in
      let l = bind_h l and r = bind_h r in
      let hty = function
        | H_agg a -> Some (agg_ty env a)
        | H_const v -> Value.ty_of v
      in
      (match (hty l, hty r) with
      | Some lt, Some rt -> check_cmp "HAVING" lt rt
      | _ -> ());
      H_cmp (op, l, r)

let rec build_env db (from : from_item list) : env =
  let entries =
    List.map
      (fun item ->
        match item with
        | F_rel r -> (
            match Database.find_table db r.rel with
            | None -> err "unknown table %s" r.rel
            | Some t ->
                let cols =
                  Array.to_list
                    (Array.map
                       (fun c ->
                         (String.lowercase_ascii c.Schema.cname, c.Schema.cty))
                       (Schema.columns (Table.schema t)))
                in
                { alias = r.alias; cols })
        | F_derived (c, alias) -> { alias; cols = compound_schema db c })
      from
  in
  (* Alias uniqueness. *)
  let seen = Hashtbl.create 8 in
  List.iter
    (fun e ->
      if Hashtbl.mem seen e.alias then err "duplicate tuple variable %s" e.alias;
      Hashtbl.add seen e.alias ())
    entries;
  entries

and compound_schema db = function
  | C_single q -> output_schema db q
  | C_union_all [] -> err "empty UNION ALL"
  | C_union_all (c :: cs) ->
      let first = compound_schema db c in
      List.iter
        (fun c' ->
          let s = compound_schema db c' in
          if List.length s <> List.length first then
            err "UNION ALL branches have different arities";
          List.iter2
            (fun (_, t1) (_, t2) ->
              if not (Value.compatible t1 t2) then
                err "UNION ALL branches have incompatible column types")
            first s)
        cs;
      first

and output_schema db (q : query) : (string * Value.ty) list =
  let env = build_env db q.from in
  List.map
    (fun item ->
      match item with
      | Sel_attr (a, alias) ->
          let a, ty = resolve_attr env a in
          ((match alias with Some al -> al | None -> a.col), ty)
      | Sel_const (v, alias) ->
          let ty = match Value.ty_of v with Some t -> t | None -> Value.TStr in
          (alias, ty)
      | Sel_agg (agg, alias) -> (alias, agg_ty env (bind_agg env agg)))
    q.select

let has_aggregates q =
  List.exists (function Sel_agg _ -> true | _ -> false) q.select
  || q.having <> None

let rec bind db (q : query) : query =
  let env = build_env db q.from in
  let from =
    List.map
      (function
        | F_rel r -> F_rel r
        | F_derived (c, alias) -> F_derived (bind_compound db c, alias))
      q.from
  in
  let select =
    List.map
      (fun item ->
        match item with
        | Sel_attr (a, alias) ->
            let a, _ = resolve_attr env a in
            Sel_attr (a, alias)
        | Sel_const (v, alias) -> Sel_const (v, alias)
        | Sel_agg (agg, alias) -> Sel_agg (bind_agg env agg, alias))
      q.select
  in
  let where = bind_pred env q.where in
  let group_by = List.map (fun a -> fst (resolve_attr env a)) q.group_by in
  let having = Option.map (bind_having env) q.having in
  (* Grouping discipline: under GROUP BY (or any aggregate), every plain
     selected column must be a grouping column. *)
  let grouped = group_by <> [] || has_aggregates q in
  if grouped then
    List.iter
      (function
        | Sel_attr (a, _) ->
            if not (List.exists (equal_attr a) group_by) then
              err "column %s.%s must appear in GROUP BY" a.tv a.col
        | _ -> ())
      select;
  (* ORDER BY resolution: alias must name an output column, attr must be
     either an output column or (when not grouped) any bound attr, agg
     must match a selected aggregate or be computable (grouped only). *)
  let out_names = select_output_names { q with select } in
  let order_by =
    List.map
      (fun (k, d) ->
        let k =
          match k with
          | O_alias s ->
              if List.mem s out_names then O_alias s
              else begin
                (* Maybe it is a bare column reference. *)
                let a, _ = resolve_attr env (attr "" s) in
                O_attr a
              end
          | O_attr a ->
              let a, _ = resolve_attr env a in
              O_attr a
          | O_agg agg ->
              if not grouped then err "ORDER BY aggregate in ungrouped query";
              O_agg (bind_agg env agg)
        in
        (k, d))
      q.order_by
  in
  (match q.limit with
  | Some n when n < 0 -> err "negative LIMIT"
  | _ -> ());
  { q with from; select; where; group_by; having; order_by }

and bind_compound db = function
  | C_single q -> C_single (bind db q)
  | C_union_all cs ->
      let bound = C_union_all (List.map (bind_compound db) cs) in
      ignore (compound_schema db bound);
      bound
