(** Table and column statistics, and the cardinality estimates built on
    them.

    The executor's join-order decisions need sizes: the greedy heuristic
    (pick the smallest materialized input) is blind to how much a join
    will {e produce}.  These statistics give the planner the textbook
    estimates:

    - selectivity of an equality selection on column [c]:
      [1 / ndv(c)] (uniformity assumption);
    - output of an equi-join [L.a = R.b]:
      [|L|·|R| / max(ndv(a), ndv(b))] (containment assumption).

    Statistics are computed exactly (a hash pass per column), cached per
    table, and invalidated by cardinality change — adequate for an
    in-memory engine, and the estimates still follow the classical
    System-R formulas so the planner code reads like the literature. *)

type t
(** Statistics for one catalog. *)

val create : Database.t -> t
(** Empty cache bound to a database; statistics are computed lazily on
    first use and recomputed when a table's cardinality has changed. *)

val row_count : t -> string -> int
(** Rows in the named table. *)

val ndv : t -> string -> string -> int
(** Number of distinct values in table.column (at least 1 for a
    non-empty table; 1 for an empty one to keep divisions safe).
    @raise Invalid_argument on unknown table/column. *)

val eq_selectivity : t -> string -> string -> float
(** [1 / ndv] — the fraction of rows an equality selection on the column
    keeps. *)

val join_size : t -> left_rows:float -> (string * string) -> (string * string) -> float
(** [join_size t ~left_rows (lt, lc) (rt, rc)] estimates the output of an
    equi-join whose left input currently has [left_rows] rows (already
    filtered) of table [lt]'s distribution joined on [lt.lc = rt.rc]
    against the whole table [rt]. *)

val pp : Format.formatter -> t -> unit
(** Dump the cached statistics (tables, row counts, per-column ndv). *)
