module VH = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

type table_stats = {
  at_cardinality : int;  (** cache validity token *)
  ndvs : (string, int) Hashtbl.t;
}

type t = { db : Database.t; cache : (string, table_stats) Hashtbl.t }

let create db = { db; cache = Hashtbl.create 16 }

let compute_table_stats tbl =
  let schema = Table.schema tbl in
  let cols = Schema.columns schema in
  let sets = Array.map (fun _ -> VH.create 64) cols in
  Table.iter tbl (fun row ->
      Array.iteri (fun i v -> VH.replace sets.(i) v ()) row);
  let ndvs = Hashtbl.create (Array.length cols) in
  Array.iteri
    (fun i c ->
      Hashtbl.replace ndvs
        (String.lowercase_ascii c.Schema.cname)
        (max 1 (VH.length sets.(i))))
    cols;
  { at_cardinality = Table.cardinality tbl; ndvs }

let table_stats t name =
  let name = String.lowercase_ascii name in
  let tbl =
    match Database.find_table t.db name with
    | Some tbl -> tbl
    | None -> invalid_arg ("Stats: unknown table " ^ name)
  in
  match Hashtbl.find_opt t.cache name with
  | Some ts when ts.at_cardinality = Table.cardinality tbl -> ts
  | _ ->
      let ts = compute_table_stats tbl in
      Hashtbl.replace t.cache name ts;
      ts

let row_count t name =
  match Database.find_table t.db name with
  | Some tbl -> Table.cardinality tbl
  | None -> invalid_arg ("Stats: unknown table " ^ name)

let ndv t tname cname =
  let ts = table_stats t tname in
  match Hashtbl.find_opt ts.ndvs (String.lowercase_ascii cname) with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "Stats: unknown column %s.%s" tname cname)

let eq_selectivity t tname cname = 1. /. float_of_int (ndv t tname cname)

let join_size t ~left_rows (lt, lc) (rt, rc) =
  let nl = ndv t lt lc and nr = ndv t rt rc in
  let right_rows = float_of_int (row_count t rt) in
  left_rows *. right_rows /. float_of_int (max nl nr)

let pp fmt t =
  List.iter
    (fun tbl ->
      let name = Schema.name (Table.schema tbl) in
      let ts = table_stats t name in
      Format.fprintf fmt "%s: %d rows;" name (Table.cardinality tbl);
      Hashtbl.iter (fun c n -> Format.fprintf fmt " ndv(%s)=%d" c n) ts.ndvs;
      Format.fprintf fmt "@.")
    (Database.tables t.db)
