(** Typed atomic values stored in relations and appearing in queries.

    The engine is dynamically typed at the row level (a row is an array of
    [Value.t]) but statically checked by the binder: every column has a
    declared {!ty} and comparisons must be between compatible types. *)

type t =
  | Null
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool
  | Date of int  (** days encoded as [yyyymmdd]; ordered chronologically *)

type ty = TInt | TFloat | TStr | TBool | TDate

val ty_of : t -> ty option
(** [ty_of v] is [None] for [Null], otherwise the value's type. *)

val ty_name : ty -> string
(** Lower-case SQL-ish name ("int", "float", "string", "bool", "date"). *)

val compatible : ty -> ty -> bool
(** Can values of these types be compared?  Equal types are compatible,
    and so are [TInt]/[TFloat] (numeric widening). *)

val compare : t -> t -> int
(** Total order used by ORDER BY and DISTINCT.  [Null] sorts first;
    numeric values compare by magnitude across [Int]/[Float]; comparing
    other mixed types raises [Invalid_argument] (the binder prevents it
    for well-typed queries). *)

val equal : t -> t -> bool
(** SQL-style equality except that [Null] equals [Null] (the engine uses
    two-valued logic; the personalization framework never relies on
    three-valued NULL semantics). *)

val hash : t -> int
(** Hash consistent with {!equal} (numeric values hash by float value). *)

val date_of_ymd : int -> int -> int -> t
(** [date_of_ymd y m d] builds a [Date].  @raise Invalid_argument on an
    impossible month/day. *)

val parse_date : string -> t option
(** Accepts ["YYYY-MM-DD"] and the paper's ["D/M/YYYY"] format. *)

val to_string : t -> string
(** SQL literal syntax: strings and dates quoted, others bare. *)

val pp : Format.formatter -> t -> unit
(** Formatter version of {!to_string}. *)
