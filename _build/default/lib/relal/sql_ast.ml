type attr = { tv : string; col : string }
type table_ref = { rel : string; alias : string }
type cmp_op = Eq | Ne | Lt | Le | Gt | Ge
type scalar = S_attr of attr | S_const of Value.t

type pred =
  | P_true
  | P_false
  | P_cmp of cmp_op * scalar * scalar
  | P_and of pred list
  | P_or of pred list
  | P_not of pred

type agg =
  | A_count_star
  | A_count of attr
  | A_sum of attr
  | A_min of attr
  | A_max of attr
  | A_avg of attr
  | A_doi_conj of attr * attr

type select_item =
  | Sel_attr of attr * string option
  | Sel_const of Value.t * string
  | Sel_agg of agg * string

type hscalar = H_agg of agg | H_const of Value.t

type having =
  | H_cmp of cmp_op * hscalar * hscalar
  | H_and of having list
  | H_or of having list

type order_key = O_attr of attr | O_alias of string | O_agg of agg
type dir = Asc | Desc

type query = {
  distinct : bool;
  select : select_item list;
  from : from_item list;
  where : pred;
  group_by : attr list;
  having : having option;
  order_by : (order_key * dir) list;
  limit : int option;
}

and from_item = F_rel of table_ref | F_derived of compound * string
and compound = C_single of query | C_union_all of compound list

let lc = String.lowercase_ascii
let attr tv col = { tv = lc tv; col = lc col }

let tref ?alias rel =
  let rel = lc rel in
  { rel; alias = (match alias with Some a -> lc a | None -> rel) }

let eq a b = P_cmp (Eq, a, b)
let col tv c = S_attr (attr tv c)
let const v = S_const v
let str s = S_const (Value.Str s)
let int i = S_const (Value.Int i)

let conj ps =
  let rec flatten acc = function
    | [] -> Some (List.rev acc)
    | P_true :: rest -> flatten acc rest
    | P_false :: _ -> None
    | P_and qs :: rest -> flatten acc (qs @ rest)
    | p :: rest -> flatten (p :: acc) rest
  in
  match flatten [] ps with
  | None -> P_false
  | Some [] -> P_true
  | Some [ p ] -> p
  | Some ps -> P_and ps

let disj ps =
  let rec flatten acc = function
    | [] -> Some (List.rev acc)
    | P_false :: rest -> flatten acc rest
    | P_true :: _ -> None
    | P_or qs :: rest -> flatten acc (qs @ rest)
    | p :: rest -> flatten (p :: acc) rest
  in
  match flatten [] ps with
  | None -> P_true
  | Some [] -> P_false
  | Some [ p ] -> p
  | Some ps -> P_or ps

let query ?(distinct = false) ?(group_by = []) ?having ?(order_by = []) ?limit
    ~select ~from ~where () =
  { distinct; select; from; where; group_by; having; order_by; limit }

let simple ?distinct ~select ~from ~where () =
  query ?distinct ~select ~from ~where ()

let equal_attr a b = String.equal a.tv b.tv && String.equal a.col b.col

let compare_attr a b =
  match String.compare a.tv b.tv with 0 -> String.compare a.col b.col | c -> c

let conjuncts p = match p with P_and ps -> ps | P_true -> [] | p -> [ p ]

let pred_attrs p =
  let scalar acc = function S_attr a -> a :: acc | S_const _ -> acc in
  let rec go acc = function
    | P_true | P_false -> acc
    | P_cmp (_, a, b) -> scalar (scalar acc a) b
    | P_and ps | P_or ps -> List.fold_left go acc ps
    | P_not p -> go acc p
  in
  List.rev (go [] p)

let query_tvs q =
  List.filter_map (function F_rel r -> Some r | F_derived _ -> None) q.from

let select_output_names q =
  List.map
    (function
      | Sel_attr (a, None) -> a.col
      | Sel_attr (_, Some alias) -> alias
      | Sel_const (_, alias) -> alias
      | Sel_agg (_, alias) -> alias)
    q.select

let fresh_alias ~used base =
  let base = lc base in
  if not (used base) then base
  else begin
    let rec go i =
      let cand = base ^ string_of_int i in
      if used cand then go (i + 1) else cand
    in
    go 1
  end
