(** A reusable pool of worker domains for data-parallel loops with a
    deterministic, chunk-indexed merge.

    [create ~domains:n] spawns [n - 1] worker domains; the caller of
    {!map} is the [n]-th lane.  A parallel region splits work into
    chunks [0 .. n-1]; domains claim chunk indices from a shared atomic
    cursor (fast domains drain more — cheap work stealing), and results
    come back as an array indexed by chunk.  Concatenating the array
    therefore reproduces the sequential left-to-right order regardless
    of scheduling — the property the executor's byte-identical
    parallelism rests on.

    If several chunks raise, the exception from the {e smallest} chunk
    index is re-raised after the region completes: the same fault a
    sequential run would have hit first.

    One region runs at a time; {!try_map} returns [None] instead of
    blocking when another thread holds the pool, so callers can fall
    back to their sequential loop (which by construction produces the
    same bytes). *)

type t

val create : domains:int -> t
(** [create ~domains:n] spawns [max 1 n - 1] worker domains.  The pool
    is usable from any systhread; regions are serialized internally. *)

val size : t -> int
(** Total parallel lanes, caller included (= the [domains] argument,
    clamped to at least 1). *)

val try_map : t -> int -> (int -> 'a) -> 'a array option
(** [try_map t n f] computes [Array.init n f] with chunks distributed
    over the pool's domains, or returns [None] without blocking if
    another region is in flight.  [f] may raise; see the module header
    for fault determinism.  A pool of size 1 (or [n <= 1]) computes
    inline and never returns [None]. *)

val map : t -> int -> (int -> 'a) -> 'a array
(** {!try_map} with an inline sequential fallback instead of [None]. *)

val shutdown : t -> unit
(** Join the worker domains.  The pool must be idle; idempotent. *)
