(* Log-linear bucket scheme, fixed for every instance (see the .mli for
   why that makes merge trivially associative/commutative):

     v < 64            -> bucket v                      (width 1, exact)
     2^e <= v < 2^e+1  -> one of 32 buckets of width 2^(e-5), e >= 6

   Since every bucket's low end is at least 32 widths up its octave,
   width <= low / 32: the inclusive upper bound reported by [quantile]
   overshoots a contained sample by at most v/32. *)

let sub_bits = 6
let sub_count = 1 lsl sub_bits (* 64 *)
let half = sub_count / 2 (* 32 *)

(* Highest exponent reachable by a non-negative OCaml int (2^62 - 1 on
   64-bit): msb index <= 61. *)
let max_exp = 61
let n_buckets = sub_count + ((max_exp - sub_bits + 1) * half)

let msb v =
  (* Position of the highest set bit of [v >= 1]. *)
  let rec go v k = if v <= 1 then k else go (v lsr 1) (k + 1) in
  go v 0

let index_of v =
  let v = max v 0 in
  if v < sub_count then v
  else begin
    let e = msb v in
    let shift = e - sub_bits + 1 in
    let sub = v lsr shift in
    (* sub is in [half, sub_count) *)
    sub_count + ((e - sub_bits) * half) + (sub - half)
  end

let bounds_of_index i =
  if i < 0 then invalid_arg "Histogram.bounds_of_index"
  else if i < sub_count then (i, i)
  else begin
    let j = i - sub_count in
    let e = sub_bits + (j / half) in
    let sub = half + (j mod half) in
    let shift = e - sub_bits + 1 in
    let low = sub lsl shift in
    (low, low + (1 lsl shift) - 1)
  end

type t = {
  counts : int array;
  mutable n : int;
  mutable sum : int;
  mutable min_v : int;
  mutable max_v : int;
}

let create () =
  { counts = Array.make n_buckets 0; n = 0; sum = 0; min_v = max_int; max_v = 0 }

let record_n t v n =
  if n < 0 then invalid_arg "Histogram.record_n: negative multiplicity"
  else if n > 0 then begin
    let v = max v 0 in
    let i = index_of v in
    t.counts.(i) <- t.counts.(i) + n;
    t.n <- t.n + n;
    t.sum <- t.sum + (v * n);
    if v < t.min_v then t.min_v <- v;
    if v > t.max_v then t.max_v <- v
  end

let record t v = record_n t v 1
let count t = t.n
let total t = t.sum
let min_value t = if t.n = 0 then 0 else t.min_v
let max_value t = t.max_v
let mean t = if t.n = 0 then Float.nan else float_of_int t.sum /. float_of_int t.n

let quantile t q =
  if t.n = 0 then 0
  else begin
    let q = Float.min 1. (Float.max 0. q) in
    let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int t.n))) in
    let rank = min rank t.n in
    let rec walk i seen =
      let seen = seen + t.counts.(i) in
      if seen >= rank then snd (bounds_of_index i) else walk (i + 1) seen
    in
    walk 0 0
  end

let merge_into ~dst src =
  Array.iteri
    (fun i c -> if c > 0 then dst.counts.(i) <- dst.counts.(i) + c)
    src.counts;
  dst.n <- dst.n + src.n;
  dst.sum <- dst.sum + src.sum;
  if src.n > 0 then begin
    if src.min_v < dst.min_v then dst.min_v <- src.min_v;
    if src.max_v > dst.max_v then dst.max_v <- src.max_v
  end

let merge a b =
  let t = create () in
  merge_into ~dst:t a;
  merge_into ~dst:t b;
  t
