(** Log-bucketed latency histogram (HDR-style), mergeable across
    threads.

    Values are non-negative integers — by convention microseconds on the
    serve path.  The bucket scheme is log-linear and {e fixed} (no
    per-instance configuration): values below {!sub_count} get exact
    unit-width buckets; above it, each power-of-two octave is divided
    into [sub_count / 2] equal sub-buckets, bounding the relative
    quantile error at [2 / sub_count] (≈ 3.1%).  A fixed global scheme
    is what makes {!merge} a plain counter addition — associative and
    commutative by construction — so per-client-thread histograms can be
    combined in any order without re-deriving boundaries.

    Quantiles use the nearest-rank definition and report the containing
    bucket's inclusive upper bound, so for any recorded sample [v] the
    reported quantile [q] satisfies [v <= q <= v + v / 32]. *)

type t

val sub_count : int
(** Sub-buckets per octave (64): unit-width below it, [sub_count / 2]
    sub-buckets per octave above it. *)

val create : unit -> t

val record : t -> int -> unit
(** Record one value.  Negative values clamp to 0. *)

val record_n : t -> int -> int -> unit
(** [record_n t v n] records [v] with multiplicity [n >= 0]. *)

val count : t -> int
(** Total recorded values. *)

val total : t -> int
(** Sum of recorded values (for means).  Saturates like native [int]. *)

val min_value : t -> int
(** Smallest recorded value (exact, not bucketed); 0 when empty. *)

val max_value : t -> int
(** Largest recorded value (exact, not bucketed); 0 when empty. *)

val mean : t -> float
(** Arithmetic mean of recorded values; [nan] when empty. *)

val quantile : t -> float -> int
(** [quantile t q] for [q] in [\[0, 1\]]: the inclusive upper bound of
    the bucket holding the nearest-rank sample [ceil (q * count)]
    (rank 1 when [q = 0.]).  0 when empty.  Monotone in [q]. *)

val merge_into : dst:t -> t -> unit
(** Add every count of the source into [dst]. *)

val merge : t -> t -> t
(** Fresh histogram holding both operands' counts. *)

(** {2 Bucket scheme — exposed for tests} *)

val index_of : int -> int
(** Bucket index of a value (clamped to 0 below). *)

val bounds_of_index : int -> int * int
(** [(low, high)] inclusive value range of a bucket. *)

val n_buckets : int
