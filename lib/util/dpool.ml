(* A small fixed pool of worker domains executing indexed chunks.

   The pool exists for data-parallel loops with a *deterministic merge*:
   a caller splits work into [n] chunks, every chunk [i] computes a
   value independently, and the caller gets the results back as an
   array indexed by chunk — so concatenating them reproduces the
   sequential order no matter which domain ran which chunk, or in what
   interleaving.  Scheduling is a shared atomic cursor (cheap work
   stealing: fast domains drain more chunks), which randomizes timing
   but never placement of results.

   Exceptions are deterministic too: if several chunks raise, the one
   with the smallest chunk index is re-raised — the same exception a
   sequential left-to-right run would have hit first.

   One parallel region runs at a time.  [try_map] takes the region slot
   with [Mutex.try_lock]; a caller finding the pool busy (e.g. two
   server threads racing into the executor) gets [None] and runs its
   loop sequentially — safe exactly because parallel output is
   byte-identical to sequential.  Worker domains park on a condition
   variable between regions, so an idle pool costs nothing. *)

type job = {
  epoch : int;
  nchunks : int;
  next : int Atomic.t;  (* cursor: next chunk index to claim *)
  completed : int Atomic.t;
  run : int -> unit;  (* never raises; captures its own faults *)
}

type t = {
  domains : int;  (* total lanes including the caller *)
  m : Mutex.t;
  work : Condition.t;  (* workers park here between regions *)
  done_ : Condition.t;  (* the caller parks here awaiting completion *)
  region : Mutex.t;  (* serializes parallel regions across threads *)
  mutable job : job option;
  mutable epoch : int;
  mutable shutdown : bool;
  mutable workers : unit Domain.t list;
}

let size t = t.domains

let run_chunks job =
  let rec go () =
    let i = Atomic.fetch_and_add job.next 1 in
    if i < job.nchunks then begin
      job.run i;
      ignore (Atomic.fetch_and_add job.completed 1 : int);
      go ()
    end
  in
  go ()

let worker t =
  let last = ref 0 in
  let rec loop () =
    Mutex.lock t.m;
    while
      (not t.shutdown)
      && (match t.job with None -> true | Some j -> j.epoch = !last)
    do
      Condition.wait t.work t.m
    done;
    if t.shutdown then Mutex.unlock t.m
    else begin
      let j = match t.job with Some j -> j | None -> assert false in
      last := j.epoch;
      Mutex.unlock t.m;
      run_chunks j;
      (* Wake a caller possibly parked on completion.  Harmless when
         this worker claimed no chunk at all. *)
      Mutex.lock t.m;
      Condition.broadcast t.done_;
      Mutex.unlock t.m;
      loop ()
    end
  in
  loop ()

let create ~domains =
  let domains = max 1 domains in
  let t =
    {
      domains;
      m = Mutex.create ();
      work = Condition.create ();
      done_ = Condition.create ();
      region = Mutex.create ();
      job = None;
      epoch = 0;
      shutdown = false;
      workers = [];
    }
  in
  t.workers <- List.init (domains - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let shutdown t =
  Mutex.lock t.m;
  let ws = t.workers in
  t.workers <- [];
  t.shutdown <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.m;
  List.iter Domain.join ws

(* Run [n] chunks through the pool, caller participating.  The region
   lock is held by the caller; [f] is the raw (possibly raising) chunk
   body. *)
let map_locked t n f =
  let results = Array.make n None in
  let faults = Array.make n None in
  let run i =
    match f i with
    | v -> results.(i) <- Some v
    | exception e -> faults.(i) <- Some e
  in
  Mutex.lock t.m;
  t.epoch <- t.epoch + 1;
  let j =
    { epoch = t.epoch; nchunks = n; next = Atomic.make 0;
      completed = Atomic.make 0; run }
  in
  t.job <- Some j;
  Condition.broadcast t.work;
  Mutex.unlock t.m;
  run_chunks j;
  Mutex.lock t.m;
  while Atomic.get j.completed < n do
    Condition.wait t.done_ t.m
  done;
  t.job <- None;
  Mutex.unlock t.m;
  (* Deterministic fault propagation: lowest chunk index wins, as a
     sequential left-to-right run would have raised it first. *)
  Array.iter (function Some e -> raise e | None -> ()) faults;
  Array.map (function Some v -> v | None -> assert false) results

let seq_map n f = Array.init n f

let try_map t n f =
  if n <= 0 then Some [||]
  else if t.domains <= 1 || n = 1 then Some (seq_map n f)
  else if not (Mutex.try_lock t.region) then None
  else
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.region)
      (fun () -> Some (map_locked t n f))

let map t n f =
  match try_map t n f with Some r -> r | None -> seq_map n f
