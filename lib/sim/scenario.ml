module Core = Perso_server.Server_core.Make (Sim_runtime.R)
module Protocol = Perso_server.Protocol
module Server_core = Perso_server.Server_core

type req =
  | Run_sql of int
  | Pers of int
  | Save of int
  | Load
  | Health_probe

type step =
  | Request of { cid : int; req : req; deadline_ms : int option }
  | Advance of int
  | Chaos_on of { cseed : int; permille : int }
  | Chaos_off
  | Drain

(* ------------------------------ encoding ----------------------------- *)

let step_to_string = function
  | Request { cid; req; deadline_ms } ->
      let body =
        match req with
        | Run_sql i -> Printf.sprintf "q%d" i
        | Pers i -> Printf.sprintf "p%d" i
        | Save i -> Printf.sprintf "s%d" i
        | Load -> "l"
        | Health_probe -> "h"
      in
      let dl =
        match deadline_ms with Some d -> Printf.sprintf "@%d" d | None -> ""
      in
      Printf.sprintf "r%d.%s%s" cid body dl
  | Advance ms -> Printf.sprintf "a%d" ms
  | Chaos_on { cseed; permille } -> Printf.sprintf "c%dx%d" cseed permille
  | Chaos_off -> "coff"
  | Drain -> "drain"

let steps_to_string steps = String.concat "," (List.map step_to_string steps)

let step_of_string s =
  let fail () = Error (Printf.sprintf "bad step %S" s) in
  let int_of str = int_of_string_opt str in
  if s = "drain" then Ok Drain
  else if s = "coff" then Ok Chaos_off
  else if String.length s >= 2 && s.[0] = 'a' then
    match int_of (String.sub s 1 (String.length s - 1)) with
    | Some ms -> Ok (Advance ms)
    | None -> fail ()
  else if String.length s >= 2 && s.[0] = 'c' then (
    match String.index_opt s 'x' with
    | None -> fail ()
    | Some i -> (
        match
          ( int_of (String.sub s 1 (i - 1)),
            int_of (String.sub s (i + 1) (String.length s - i - 1)) )
        with
        | Some cseed, Some permille -> Ok (Chaos_on { cseed; permille })
        | _ -> fail ()))
  else if String.length s >= 4 && s.[0] = 'r' then (
    match String.index_opt s '.' with
    | None -> fail ()
    | Some dot -> (
        match int_of (String.sub s 1 (dot - 1)) with
        | None -> fail ()
        | Some cid -> (
            let rest = String.sub s (dot + 1) (String.length s - dot - 1) in
            let body, deadline_ms =
              match String.index_opt rest '@' with
              | None -> (rest, Ok None)
              | Some at -> (
                  ( String.sub rest 0 at,
                    match
                      int_of
                        (String.sub rest (at + 1) (String.length rest - at - 1))
                    with
                    | Some d -> Ok (Some d)
                    | None -> Error () ))
            in
            match deadline_ms with
            | Error () -> fail ()
            | Ok deadline_ms -> (
                let idx tail =
                  int_of (String.sub body 1 (String.length body - 1))
                  |> Option.map tail
                in
                let req =
                  if body = "l" then Some Load
                  else if body = "h" then Some Health_probe
                  else if String.length body >= 2 && body.[0] = 'q' then
                    idx (fun i -> Run_sql i)
                  else if String.length body >= 2 && body.[0] = 'p' then
                    idx (fun i -> Pers i)
                  else if String.length body >= 2 && body.[0] = 's' then
                    idx (fun i -> Save i)
                  else None
                in
                match req with
                | Some req -> Ok (Request { cid; req; deadline_ms })
                | None -> fail ()))))
  else fail ()

let steps_of_string s =
  String.split_on_char ',' s
  |> List.filter (fun s -> String.trim s <> "")
  |> List.fold_left
       (fun acc chunk ->
         match (acc, step_of_string (String.trim chunk)) with
         | Error e, _ -> Error e
         | Ok _, Error e -> Error e
         | Ok steps, Ok st -> Ok (st :: steps))
       (Ok [])
  |> Result.map List.rev

(* ------------------------------ generator ---------------------------- *)

let n_queries = 6
let n_save_variants = 4

let generate ~seed =
  let rng = Putil.Rng.create (0x5ce9a510 + (seed * 7919)) in
  let n_clients = Putil.Rng.int_in rng 2 4 in
  let n = Putil.Rng.int_in rng 12 40 in
  let random_request rng =
    let cid = Putil.Rng.int rng n_clients in
    let req =
      match Putil.Rng.int rng 100 with
      | x when x < 40 -> Run_sql (Putil.Rng.int rng n_queries)
      | x when x < 65 -> Pers (Putil.Rng.int rng n_queries)
      | x when x < 80 -> Save (Putil.Rng.int rng n_save_variants)
      | x when x < 92 -> Load
      | _ -> Health_probe
    in
    let deadline_ms =
      if Putil.Rng.int rng 100 < 25 then Some (Putil.Rng.int_in rng 5 300)
      else None
    in
    Request { cid; req; deadline_ms }
  in
  let steps =
    List.init n (fun _ ->
        match Putil.Rng.int rng 100 with
        | roll when roll < 55 -> random_request rng
        | roll when roll < 80 -> Advance (Putil.Rng.int_in rng 5 400)
        | roll when roll < 88 ->
            Chaos_on
              {
                cseed = Putil.Rng.int rng 100_000;
                permille = Putil.Rng.int_in rng 20 250;
              }
        | roll when roll < 94 -> Chaos_off
        | _ -> Advance (Putil.Rng.int_in rng 50 150))
  in
  (* Half the scenarios drain mid-traffic, then keep submitting so the
     admission-time shed path is exercised. *)
  if Putil.Rng.bool rng then
    let after = List.init (Putil.Rng.int_in rng 0 3) (fun _ -> random_request rng) in
    steps @ (Drain :: after) @ [ Advance 50 ]
  else steps

(* -------------------------------- runner ----------------------------- *)

type failure = { invariant : string; detail : string }

type result = {
  verdict : (unit, failure) Stdlib.result;
  digest : string;
  sched_steps : int;
  vnow : float;
  n_steps : int;
}

let save_variants =
  [|
    "[ GENRE.genre = 'comedy', 0.9 ] [ MOVIE.mid = GENRE.mid, 0.8 ]";
    "[ ACTOR.name = 'N. Kidman', 0.7 ] [ CAST.aid = ACTOR.aid, 0.9 ] [ \
     MOVIE.mid = CAST.mid, 0.9 ]";
    "";
    "[ not a condition, 2 ]";
  |]

let server_config =
  {
    (Server_core.default_config ~socket_path:"<sim>") with
    workers = 2;
    queue_capacity = 3;
    (* The server-side deadline cap stays on: queue expiry only trips
       when a scenario's [Advance] steps move virtual time, which is
       exactly the determinism the harness wants. *)
    deadline_ms = Some 2_000.;
    max_rows = Some 200_000;
    max_expansions = Some 2_000;
    drain_ms = 300.;
    breaker_threshold = 2;
    breaker_cooldown_ms = 120.;
    dump_dir = None;
  }

(* Fresh per-run store roots for the durable-tier sweep.  Uniqueness
   comes from pid + a counter, so two runs of the same seed never share
   a directory; the path itself stays out of digests and audit
   messages, keeping same-seed runs byte-identical. *)
let dir_counter = ref 0

let fresh_store_root () =
  incr dir_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "perso-sim-%d-%d" (Unix.getpid ()) !dir_counter)
  in
  Sys.mkdir dir 0o700;
  dir

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

type mailbox = {
  mm : Sched.mutex;
  mc : Sched.cond;
  items : (int * req * int option) Queue.t;
  mutable closed : bool;
}

exception Audit of failure

let audit invariant fmt =
  Printf.ksprintf (fun detail -> raise (Audit { invariant; detail })) fmt

let hstat health name =
  match List.assoc_opt name health with
  | Some v -> ( match int_of_string_opt v with Some i -> i | None -> -1)
  | None -> -1

let run ~seed steps =
  let n_steps = List.length steps in
  let steps_arr = Array.of_list steps in
  let n_clients =
    1
    + Array.fold_left
        (fun m -> function Request { cid; _ } -> max m cid | _ -> m)
        0 steps_arr
  in
  let db = Moviedb.Personas.tiny_db () in
  (* Even seeds run the durable profile tier under the scenario, so the
     sweep alternates memory and disk backends deterministically. *)
  let store_root = if seed land 1 = 0 then Some (fresh_store_root ()) else None in
  let sqls =
    Moviedb.Workload.queries db ~n:n_queries ~seed:(seed + 17)
    |> List.map Relal.Sql_print.query_to_string
    |> Array.of_list
  in
  (* Per-step outcome summaries; write-once (a second write is the
     "duplicate reply" violation). *)
  let outcomes = Array.make (max n_steps 1) None in
  let record idx summary =
    match outcomes.(idx) with
    | Some prev ->
        Sched.fail
          (Printf.sprintf "duplicate-reply: step %d answered %S then %S" idx
             prev summary)
    | None -> outcomes.(idx) <- Some summary
  in
  let submits = ref 0 in
  let client_ok = ref 0 in
  let final_health = ref [] in
  let stop_elapsed = ref 0. in
  let drain_outcome = ref None in
  let prev_mutate = !Server_core.mutate_drop_completed_ok in
  Relal.Chaos.set_sleep (fun ms -> Sched.sleep (ms /. 1000.));
  Relal.Governor.set_clock (fun () -> Sched.now ());
  let restore () =
    Relal.Governor.set_clock Relal.Governor.real_clock;
    Relal.Chaos.set_sleep ignore;
    Relal.Chaos.disarm ();
    Server_core.mutate_drop_completed_ok := prev_mutate;
    Option.iter rm_rf store_root
  in
  Fun.protect ~finally:restore @@ fun () ->
  let main () =
    (* Shard and replica counts derive from the seed so the sweep
       exercises the sharded store at several widths — and the
       replicated tier at 1–3 members — deterministically. *)
    let core =
      Core.create
        {
          server_config with
          shards = 1 + (seed mod 3);
          store_dir = store_root;
          replicas =
            (match store_root with
            | Some _ -> 1 + (seed / 2 mod 3)
            | None -> 1);
        }
        db
    in
    Sched.add_probe (fun () ->
        (* Main database rwlock and every profile-shard rwlock must
           each satisfy exclusion — the cross-shard audit. *)
        List.iteri
          (fun i (readers, writer) ->
            if writer && readers > 0 then
              Sched.fail
                (Printf.sprintf
                   "rwlock-exclusion: lock %d writer active with %d reader(s)"
                   i readers))
          (Core.lock_states core));
    let mailboxes =
      Array.init n_clients (fun _ ->
          {
            mm = Sched.mutex_create ();
            mc = Sched.cond_create ();
            items = Queue.create ();
            closed = false;
          })
    in
    let exec_request cid idx req deadline_ms =
      match req with
      | Health_probe ->
          (* Control plane: answered off-queue, like a connection
             thread does. *)
          let h = Core.health core in
          record idx (Printf.sprintf "health:%s" (List.assoc "state" h))
      | _ ->
          incr submits;
          let user = Printf.sprintf "u%d" cid in
          let cmd =
            match req with
            | Run_sql i -> Protocol.Run sqls.(i mod Array.length sqls)
            | Pers i ->
                Protocol.Personalize
                  { user; sql = sqls.(i mod Array.length sqls) }
            | Save i ->
                Protocol.Profile_save
                  { user; entries = save_variants.(i mod n_save_variants) }
            | Load -> Protocol.Profile_show user
            | Health_probe -> assert false
          in
          let hdr =
            {
              Protocol.empty_header with
              deadline_ms = Option.map float_of_int deadline_ms;
            }
          in
          let summary =
            match Core.submit core hdr cmd with
            | Server_core.R_rows { result; _ } ->
                incr client_ok;
                Printf.sprintf "rows:%d" (List.length result.Relal.Exec.rows)
            | Server_core.R_message _ ->
                incr client_ok;
                "msg"
            | Server_core.R_error e ->
                Printf.sprintf "err:%s" (Perso.Error.family_name e)
          in
          record idx summary
    in
    let client cid =
      let mb = mailboxes.(cid) in
      let rec loop () =
        Sched.lock mb.mm;
        while Queue.is_empty mb.items && not mb.closed do
          Sched.wait mb.mc mb.mm
        done;
        if Queue.is_empty mb.items then Sched.unlock mb.mm
        else begin
          let idx, req, deadline_ms = Queue.pop mb.items in
          Sched.unlock mb.mm;
          exec_request cid idx req deadline_ms;
          loop ()
        end
      in
      loop ()
    in
    let clients =
      List.init n_clients (fun cid ->
          Sched.spawn ~name:(Printf.sprintf "client-%d" cid) (fun () ->
              client cid))
    in
    let driver () =
      Array.iteri
        (fun idx step ->
          match step with
          | Request { cid; req; deadline_ms } ->
              let mb = mailboxes.(cid) in
              Sched.lock mb.mm;
              Queue.push (idx, req, deadline_ms) mb.items;
              Sched.signal mb.mc;
              Sched.unlock mb.mm
          | Advance ms -> Sched.sleep (float_of_int ms /. 1000.)
          | Chaos_on { cseed; permille } ->
              ignore
                (Relal.Chaos.arm ~seed:cseed
                   ~p:(float_of_int permille /. 1000.)
                   ()
                  : Relal.Chaos.stats)
          | Chaos_off -> Relal.Chaos.disarm ()
          | Drain ->
              Core.request_stop core;
              Core.begin_drain core)
        steps_arr;
      Array.iter
        (fun mb ->
          Sched.lock mb.mm;
          mb.closed <- true;
          Sched.broadcast mb.mc;
          Sched.unlock mb.mm)
        mailboxes
    in
    let d = Sched.spawn ~name:"driver" driver in
    Sched.join d;
    List.iter Sched.join clients;
    let t0 = Sched.now () in
    drain_outcome := Some (Core.stop core);
    stop_elapsed := Sched.now () -. t0;
    final_health := Core.health core
  in
  let sched = Sched.run ~seed main in
  let audits () =
    (match sched.Sched.result with
    | Ok () -> ()
    | Error msg ->
        let invariant =
          match String.index_opt msg ':' with
          | Some i when String.sub msg 0 i = "duplicate-reply" ->
              "duplicate-reply"
          | Some i when String.sub msg 0 i = "rwlock-exclusion" ->
              "rwlock-exclusion"
          | _ ->
              if String.length msg >= 8 && String.sub msg 0 8 = "deadlock"
              then "deadlock"
              else "sched"
        in
        raise (Audit { invariant; detail = msg }));
    (* every dispatched request got exactly one reply *)
    Array.iteri
      (fun idx step ->
        match step with
        | Request _ when outcomes.(idx) = None ->
            audit "lost-reply" "step %d (%s) never answered" idx
              (step_to_string step)
        | _ -> ())
      steps_arr;
    let h = !final_health in
    let d_outcome =
      match !drain_outcome with
      | Some o -> o
      | None -> audit "sched" "server never stopped"
    in
    let accepted = hstat h "accepted" in
    let completed_ok = hstat h "completed_ok" in
    let completed_err = hstat h "completed_err" in
    let shed_queue_full = hstat h "shed_queue_full" in
    let shed_expired = hstat h "shed_expired" in
    let shed_draining = hstat h "shed_draining" in
    let queue_depth = hstat h "queue_depth" in
    let in_flight = hstat h "in_flight" in
    let shed_at_stop = d_outcome.Server_core.shed_at_stop in
    if List.assoc_opt "state" h <> Some "stopped" then
      audit "ledger" "server not stopped after stop: %s"
        (Option.value ~default:"?" (List.assoc_opt "state" h));
    if queue_depth <> 0 || in_flight <> 0 then
      audit "ledger" "residual work after stop: queue=%d in_flight=%d"
        queue_depth in_flight;
    let arrivals_rhs = accepted + shed_queue_full + (shed_draining - shed_at_stop) in
    if !submits <> arrivals_rhs then
      audit "ledger"
        "arrivals %d <> accepted %d + shed_queue_full %d + shed_draining' %d"
        !submits accepted shed_queue_full
        (shed_draining - shed_at_stop);
    let accepted_rhs =
      completed_ok + completed_err + shed_expired + shed_at_stop
    in
    if accepted <> accepted_rhs then
      audit "ledger"
        "accepted %d <> completed_ok %d + completed_err %d + shed_expired %d \
         + shed_at_stop %d"
        accepted completed_ok completed_err shed_expired shed_at_stop;
    if !client_ok <> completed_ok then
      audit "ledger" "client-observed successes %d <> completed_ok %d"
        !client_ok completed_ok;
    (* Personalization sub-ledger: every completed PERSONALIZE reply is
       accounted once by outcome and once by plan source. *)
    let pers_ok = hstat h "pers_ok" in
    let pers_err = hstat h "pers_err" in
    let cache_hit = hstat h "cache_hit" in
    let cache_miss = hstat h "cache_miss" in
    let cache_incremental = hstat h "cache_incremental" in
    let cache_bypass = hstat h "cache_bypass" in
    if pers_ok + pers_err <> cache_hit + cache_miss + cache_incremental + cache_bypass
    then
      audit "ledger"
        "pers_ok %d + pers_err %d <> cache_hit %d + cache_miss %d + \
         cache_incremental %d + cache_bypass %d"
        pers_ok pers_err cache_hit cache_miss cache_incremental cache_bypass;
    if pers_ok + pers_err > completed_ok + completed_err then
      audit "ledger" "personalize completions %d exceed total completions %d"
        (pers_ok + pers_err)
        (completed_ok + completed_err);
    (* Drain bound: drain_ms plus a bounded tail (in-flight jobs finish
       their retries; backoff waits are capped at 100 ms each). *)
    let bound = (server_config.Server_core.drain_ms /. 1000.) +. 0.5 in
    if !stop_elapsed > bound then
      audit "drain-bound" "stop took %.3fs of virtual time (bound %.3fs)"
        !stop_elapsed bound;
    (* Durable-tier audit: after stop (merge_back has synced and closed
       the stores), reopen every shard store cold — running the same
       crash-recovery path a restart would — and require agreement with
       the main catalog: entries per live user, and the revision
       high-water marks.  Detail strings avoid the per-run directory
       path so a failure is still digest-deterministic. *)
    Option.iter
      (fun root ->
        let n = 1 + (seed mod 3) in
        let replicas = 1 + (seed / 2 mod 3) in
        let catalog_rows_of user =
          match Relal.Database.find_table db Perso.Profile_store.table_name with
          | None -> []
          | Some t ->
              Relal.Table.to_list t
              |> List.filter_map (fun row ->
                     match (row.(0), row.(1), row.(2)) with
                     | ( Relal.Value.Str u,
                         Relal.Value.Str c,
                         Relal.Value.Float d )
                       when u = user ->
                         Some (c, d)
                     | _ -> None)
        in
        let main_revs = Perso.Profile_store.revisions db in
        let store_revs = ref [] in
        (* Deterministic mid-fleet corruption: with a replicated tier,
           flip one byte in shard 0's member r0 before the cold reopen.
           Recovery must scrub the damage (quarantine, or truncate-and-
           catch-up when the flip lands in the WAL tail's framing),
           promote a fresher member if r0 was primary, and still agree
           with the catalog byte-for-byte. *)
        let corrupted = ref false in
        if replicas >= 2 then begin
          let r0 =
            Filename.concat (Filename.concat root "shard-00") "r0"
          in
          match Perso_store.Store.read_manifest r0 with
          | Some (sealed, wal) ->
              let size_of p =
                match (Unix.stat p).Unix.st_size with
                | s -> s
                | exception Unix.Unix_error _ -> 0
              in
              let target =
                let wpath = Filename.concat r0 wal in
                if size_of wpath > 0 then Some wpath
                else
                  List.find_map
                    (fun (nm, sz) ->
                      if sz > 0 then Some (Filename.concat r0 nm) else None)
                    sealed
              in
              Option.iter
                (fun path ->
                  Relal.Chaos.flip_byte_in_file path 0.5;
                  corrupted := true)
                target
          | None | (exception Perso_store.Store.Store_error _) -> ()
        end;
        for i = 0 to n - 1 do
          let s =
            Perso_store.Replica.open_
              (Filename.concat root (Printf.sprintf "shard-%02d" i))
          in
          Fun.protect ~finally:(fun () -> Perso_store.Replica.close s)
          @@ fun () ->
          (if Perso_store.Replica.replicas s <> replicas then
             audit "replica" "shard %d: reopened with %d member(s), expected %d"
               i
               (Perso_store.Replica.replicas s)
               replicas);
          (let rs = Perso_store.Replica.rstats s in
           let repairs =
             rs.Perso_store.Replica.failovers
             + rs.Perso_store.Replica.quarantined
             + rs.Perso_store.Replica.catchups
           in
           if i = 0 && !corrupted && repairs = 0 then
             audit "replica"
               "shard 0: corrupted member reopened with no repair recorded";
           if (i > 0 || not !corrupted)
              && (rs.Perso_store.Replica.failovers <> 0
                 || rs.Perso_store.Replica.quarantined <> 0)
           then
             audit "replica"
               "shard %d: clean reopen performed repairs (failovers=%d \
                quarantined=%d)"
               i rs.Perso_store.Replica.failovers
               rs.Perso_store.Replica.quarantined);
          store_revs := !store_revs @ Perso_store.Replica.revisions s;
          List.iter
            (fun user ->
              let got =
                Perso_store.Replica.load s ~user
                |> Option.value ~default:[]
                |> List.map (fun e ->
                       (e.Perso_store.Codec.cond, e.Perso_store.Codec.degree))
              in
              let want = catalog_rows_of user in
              if got <> want then
                audit "persistence"
                  "shard %d user %s: %d recovered entries <> %d catalog rows"
                  i user (List.length got) (List.length want))
            (Perso_store.Replica.users s)
        done;
        (* The registry's marks must all be in the store at the same
           value; the store may additionally hold revision-0 records
           for seeded, never-saved users. *)
        List.iter
          (fun (u, r) ->
            match List.assoc_opt u !store_revs with
            | Some r' when r' = r -> ()
            | Some r' ->
                audit "persistence" "user %s: store revision %d <> catalog %d"
                  u r' r
            | None ->
                audit "persistence" "user %s: revision %d missing from store" u
                  r)
          main_revs;
        List.iter
          (fun (u, r) ->
            if r > 0 && List.assoc_opt u main_revs <> Some r then
              audit "persistence"
                "user %s: store revision %d not in catalog registry" u r)
          !store_revs)
      store_root
  in
  let verdict = try Ok (audits ()) with Audit f -> Error f in
  let summary = Buffer.create 256 in
  Buffer.add_string summary sched.Sched.digest;
  Array.iter
    (fun o -> Buffer.add_string summary (Option.value ~default:"." o))
    outcomes;
  List.iter
    (fun (k, v) ->
      Buffer.add_string summary k;
      Buffer.add_string summary v)
    !final_health;
  (match verdict with
  | Ok () -> Buffer.add_string summary "PASS"
  | Error { invariant; detail } ->
      Buffer.add_string summary invariant;
      Buffer.add_string summary detail);
  {
    verdict;
    digest = Digest.to_hex (Digest.string (Buffer.contents summary));
    sched_steps = sched.Sched.steps;
    vnow = sched.Sched.vnow;
    n_steps;
  }

let run_seed ~seed = run ~seed (generate ~seed)

let shrink ~seed steps (f : failure) =
  Shrink.minimize
    ~check:(fun candidate ->
      match (run ~seed candidate).verdict with
      | Error f' -> f'.invariant = f.invariant
      | Ok () -> false)
    steps
