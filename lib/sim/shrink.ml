let drop_range xs lo len =
  List.filteri (fun i _ -> i < lo || i >= lo + len) xs

let minimize ?(max_checks = 400) ~check xs =
  let checks = ref 0 in
  let try_check candidate =
    if !checks >= max_checks then false
    else begin
      incr checks;
      check candidate
    end
  in
  (* Scan left-to-right removing [size]-element chunks; restart the
     chunk size after any successful removal (a smaller list often
     unlocks larger drops). *)
  let rec pass xs size =
    if size < 1 then xs
    else begin
      let n = List.length xs in
      let rec scan lo =
        if lo >= n then None
        else
          let candidate = drop_range xs lo size in
          if candidate <> xs && try_check candidate then Some candidate
          else scan (lo + size)
      in
      match scan 0 with
      | Some smaller -> pass smaller (List.length smaller / 2)
      | None -> pass xs (size / 2)
    end
  in
  let n = List.length xs in
  if n = 0 then xs else pass xs (n / 2)
