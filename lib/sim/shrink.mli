(** Greedy delta-debugging list minimization.

    [minimize ~check xs] returns a (locally) 1-minimal sublist that
    still satisfies [check] (i.e. still fails), assuming [check xs] is
    true.  The strategy is ddmin-style: try dropping large contiguous
    chunks first, halving the chunk size down to single elements, and
    restart whenever a drop succeeds — greedy, deterministic, and
    bounded by [max_checks] replays. *)

val minimize : ?max_checks:int -> check:('a list -> bool) -> 'a list -> 'a list
