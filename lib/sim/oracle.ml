open Perso
open Relal

type check = { name : string; ok : bool; detail : string }

type report = {
  cases : int;
  movies : int;
  selections : int;
  checks : check list;
}

let all_ok r = List.for_all (fun c -> c.ok) r.checks
let failures r = List.filter (fun c -> not c.ok) r.checks

(* One generated setting: a scaled database, a synthetic profile over
   it, and a random conjunctive query — the same shape as
   test_select.random_setting, ~10× larger. *)
let setting ~movies ~selections seed =
  let db = Moviedb.Datagen.(generate (scale ~seed movies)) in
  let profile =
    Moviedb.Profile_gen.generate db
      { Moviedb.Profile_gen.default with seed = seed + 1; n_selections = selections }
  in
  let rng = Putil.Rng.create (seed + 2) in
  let q = Binder.bind db (Moviedb.Workload.random_query db rng) in
  (db, profile, q)

let degs paths =
  List.map (fun p -> Float.round (Degree.to_float p.Path.degree *. 1e9)) paths

let path_keys paths =
  List.map
    (fun p ->
      ( Path.to_condition_string p,
        Float.round (Degree.to_float p.Path.degree *. 1e9) ))
    paths

(* (condition, rounded degree) multiset — stable under reordering of
   equal-degree paths. *)
let path_multiset paths = List.sort compare (path_keys paths)

let rows_multiset (r : Exec.result) =
  r.Exec.rows
  |> List.map (fun row ->
         Array.to_list row |> List.map Value.to_string |> String.concat "\t")
  |> List.sort compare

(* [sub] is a sub-multiset of [super]; both sorted. *)
let rec sub_multiset sub super =
  match (sub, super) with
  | [], _ -> true
  | _, [] -> false
  | x :: xs, y :: ys ->
      if x = y then sub_multiset xs ys
      else if compare x y > 0 then sub_multiset sub ys
      else false

let rec is_prefix xs ys =
  match (xs, ys) with
  | [], _ -> true
  | x :: xs', y :: ys' -> x = y && is_prefix xs' ys'
  | _, [] -> false

let rank_of_atom paths (s : Atom.selection) =
  let rec go i = function
    | [] -> None
    | p :: rest -> (
        match Path.selection p with
        | Some (s', _) when s' = s -> Some i
        | _ -> go (i + 1) rest)
  in
  go 0 paths

let case_checks ~movies ~selections case_seed tag =
  let db, profile, q = setting ~movies ~selections case_seed in
  let qg = Qgraph.of_query db q in
  let g = Pgraph.of_profile profile in
  let check name ok detail = { name = tag ^ ":" ^ name; ok; detail } in
  let checks = ref [] in
  let add c = checks := c :: !checks in

  (* ----- Theorem 1: ordered emission (differential with sort) ----- *)
  let top40 = Select.select db g qg (Criteria.top_r 40) in
  let rec decreasing = function
    | a :: (b :: _ as rest) ->
        Degree.to_float a.Path.degree >= Degree.to_float b.Path.degree -. 1e-12
        && decreasing rest
    | _ -> true
  in
  add
    (check "theorem1-ordered" (decreasing top40)
       (Printf.sprintf "%d paths emitted" (List.length top40)));

  (* ----- Theorem 2: completeness vs brute force ----- *)
  List.iter
    (fun (cname, ci) ->
      let fast = Select.select db g qg ci in
      let slow = Brute.select db g qg ci in
      add
        (check
           (Printf.sprintf "theorem2-%s" cname)
           (degs fast = degs slow)
           (Printf.sprintf "select=%d brute=%d paths" (List.length fast)
              (List.length slow))))
    [
      ("top5", Criteria.top_r 5);
      ("top25", Criteria.top_r 25);
      ("above05", Criteria.above 0.5);
      ("disj06", Criteria.disj_above 0.6);
    ];

  (* ----- K-prefix: raising K only appends ----- *)
  let top10 = Select.select db g qg (Criteria.top_r 10) in
  let top25 = Select.select db g qg (Criteria.top_r 25) in
  add
    (check "k-prefix"
       (is_prefix (path_keys top10) (path_keys top25))
       (Printf.sprintf "%d then %d" (List.length top10) (List.length top25)));

  (* ----- raise-rank: boosting a preference never demotes it ----- *)
  let all_paths = Select.select db g qg (Criteria.top_r 1_000) in
  (match
     (* a selected atom with headroom to raise, not already first *)
     List.filteri (fun i _ -> i > 0) all_paths
     |> List.find_map (fun p ->
            match Path.selection p with
            | Some (s, _) -> (
                match
                  List.find_map
                    (fun (a, deg) ->
                      match a with
                      | Atom.Sel s' when s' = s ->
                          Some (a, Degree.to_float deg)
                      | _ -> None)
                    (Profile.entries profile)
                with
                | Some (a, d) when d < 0.95 -> Some (s, a, d)
                | _ -> None)
            | None -> None)
   with
  | None -> add (check "raise-rank" true "no raisable atom; vacuous")
  | Some (s, a, d) -> (
      let raised = Float.min 1.0 ((d *. 1.3) +. 0.05) in
      let profile' = Profile.add profile a (Degree.of_float raised) in
      let paths' =
        Select.select db (Pgraph.of_profile profile') qg (Criteria.top_r 1_000)
      in
      match (rank_of_atom all_paths s, rank_of_atom paths' s) with
      | Some before, Some after ->
          add
            (check "raise-rank" (after <= before)
               (Printf.sprintf "%s: %.2f->%.2f rank %d->%d" (Atom.to_string a)
                  d raised before after))
      | before, after ->
          add
            (check "raise-rank" false
               (Printf.sprintf "%s: rank %s -> %s" (Atom.to_string a)
                  (match before with Some i -> string_of_int i | None -> "-")
                  (match after with Some i -> string_of_int i | None -> "-")))));

  (* ----- delete-unselected: dropping a non-contributing preference
     leaves the top-K unchanged ----- *)
  let k = 10 in
  let topk = Select.select db g qg (Criteria.top_r k) in
  let contributes a =
    List.exists
      (fun p ->
        match (a, Path.selection p) with
        | Atom.Sel s, Some (s', _) -> s = s'
        | _ -> false)
      topk
  in
  (match
     Profile.entries profile
     |> List.find_opt (fun (a, _) ->
            match a with Atom.Sel _ -> not (contributes a) | Atom.Join _ -> false)
   with
  | None -> add (check "delete-unselected" true "every selection in top-K; vacuous")
  | Some (a, _) ->
      let profile' = Profile.remove profile a in
      let topk' =
        Select.select db (Pgraph.of_profile profile') qg (Criteria.top_r k)
      in
      add
        (check "delete-unselected"
           (path_multiset topk = path_multiset topk')
           (Printf.sprintf "removed %s" (Atom.to_string a))));

  (* ----- subset: personalized answers ⊆ plain answers ----- *)
  let params =
    {
      Personalize.k = Criteria.top_r 5;
      m = `Count 0;
      l = `At_least 1;
      method_ = `MQ;
      rank = false;
    }
  in
  (match
     Error.guard (fun () ->
         let outcome = Personalize.personalize ~params db profile q in
         let pers = Personalize.execute db outcome in
         let plain = Engine.run_sql db (Sql_print.query_to_string q) in
         (pers, plain))
   with
  | Ok (pers, plain) ->
      add
        (check "subset"
           (sub_multiset (rows_multiset pers) (rows_multiset plain))
           (Printf.sprintf "personalized %d rows, plain %d rows"
              (List.length pers.Exec.rows)
              (List.length plain.Exec.rows)))
  | Error e ->
      add (check "subset" false ("execution failed: " ^ Error.to_string e)));

  List.rev !checks

(* ----- cache: cold / cached / incremental byte-equality -------------

   The plan-cache relation (ISSUE 6): drive the same (profile-edit,
   query) sequence through three paths — cold-only, a cache with the
   incremental patcher disabled, and a cache with it enabled — saving
   each edited profile to the store (the revision/invalidation signal)
   and asserting the personalized SQL and the executed rows are
   byte-identical across all three on every step.  Repeat consults must
   be served as [Hit].  Runs at a reduced scale: each step costs a cold
   pipeline plus four cache consults and five executions. *)
let cache_checks ~movies ~selections case_seed tag =
  let movies = max 120 (movies / 4) in
  let selections = max 8 (selections / 3) in
  let db, profile0, q = setting ~movies ~selections (case_seed + 31) in
  let user = "oracle" in
  let params =
    {
      (* Alternate the cutoff regime by seed: a tight K keeps the donor
         top-K full (restricted re-expansion, cold fallbacks); a K above
         the path count leaves it not-full (the rescale fast path). *)
      Personalize.k =
        (if case_seed land 1 = 0 then Criteria.top_r 5 else Criteria.top_r 40);
      m = `Count 0;
      l = `At_least 1;
      method_ = `MQ;
      rank = false;
    }
  in
  let plain = Perso_cache.create ~incremental:false db in
  let inc = Perso_cache.create db in
  let rng = Putil.Rng.create (case_seed + 77) in
  (* Withhold a few selections from the starting profile so the edit
     sequence has fresh atoms to add back. *)
  let profile = ref profile0 in
  let stash = ref [] in
  List.iteri
    (fun i (s, d) ->
      if i < 3 then begin
        stash := (Atom.Sel s, d) :: !stash;
        profile := Profile.remove !profile (Atom.Sel s)
      end)
    (Profile.selections profile0);
  let checks = ref [] in
  let add name ok detail = checks := { name = tag ^ ":" ^ name; ok; detail } :: !checks in
  let n_inc = ref 0 and n_cold = ref 0 in
  let render o =
    ( Sql_print.query_to_string o.Personalize.personalized,
      (Personalize.execute db o).Exec.rows
      |> List.map (fun row ->
             Array.to_list row |> List.map Value.to_string |> String.concat "\t")
    )
  in
  let src_name = function
    | Perso_cache.Hit -> "hit"
    | Perso_cache.Incremental -> "incremental"
    | Perso_cache.Miss -> "miss"
    | Perso_cache.Bypass -> "bypass"
  in
  let random_degree () =
    Degree.of_float
      (Float.round ((0.3 +. Putil.Rng.float rng 0.7) *. 1000.) /. 1000.)
  in
  let edit () =
    let sels =
      List.filter
        (fun (a, _) -> match a with Atom.Sel _ -> true | Atom.Join _ -> false)
        (Profile.entries !profile)
    in
    let joins =
      List.filter
        (fun (a, _) -> match a with Atom.Join _ -> true | Atom.Sel _ -> false)
        (Profile.entries !profile)
    in
    let pick l = List.nth l (Putil.Rng.int rng (List.length l)) in
    match Putil.Rng.int rng 8 with
    | 0 | 1 when !stash <> [] ->
        let a, d = List.hd !stash in
        stash := List.tl !stash;
        profile := Profile.add !profile a d
    | 2 when List.length sels > 1 ->
        let a, d = pick sels in
        stash := (a, d) :: !stash;
        profile := Profile.remove !profile a
    | 7 when joins <> [] ->
        (* join retune: the incremental path must refuse and fall back *)
        let a, _ = pick joins in
        profile := Profile.add !profile a (random_degree ())
    | _ when sels <> [] ->
        let a, _ = pick sels in
        profile := Profile.add !profile a (random_degree ())
    | _ -> ()
  in
  let steps = 6 in
  for i = 0 to steps - 1 do
    if i > 0 then edit ();
    Profile_store.save db ~user !profile;
    match
      Error.guard (fun () ->
          let cold = render (Personalize.personalize ~params db !profile q) in
          let consult cname c =
            let o1, s1 = Perso_cache.personalize c ~params ~user !profile q in
            let o2, s2 = Perso_cache.personalize c ~params ~user !profile q in
            (match s1 with
            | Perso_cache.Incremental -> incr n_inc
            | Perso_cache.Miss -> incr n_cold
            | _ -> ());
            add
              (Printf.sprintf "cache-%s-bytes-%d" cname i)
              (render o1 = cold && render o2 = cold)
              (Printf.sprintf "sources %s,%s" (src_name s1) (src_name s2));
            add
              (Printf.sprintf "cache-%s-hit-%d" cname i)
              (s2 = Perso_cache.Hit)
              ("repeat consult served as " ^ src_name s2)
          in
          consult "plain" plain;
          consult "inc" inc)
    with
    | Ok () -> ()
    | Error e ->
        add
          (Printf.sprintf "cache-step-%d" i)
          false
          ("cache oracle step failed: " ^ Error.to_string e)
  done;
  add "cache-exercised" true
    (Printf.sprintf "incremental=%d cold=%d over %d steps" !n_inc !n_cold steps);
  List.rev !checks

let run ?(movies = 1200) ?(selections = 120) ?(cases = 2) ~seed () =
  let checks =
    List.concat
      (List.init cases (fun i ->
           let case_seed = seed + (i * 101) in
           let tag = Printf.sprintf "case%d" i in
           case_checks ~movies ~selections case_seed tag
           @ cache_checks ~movies ~selections case_seed tag))
  in
  { cases; movies; selections; checks }
