(* The virtual concurrency substrate: {!Perso_server.Runtime.S}
   implemented on the ambient {!Sched} simulation, so
   [Server_core.Make (Sim_runtime.R)] runs the production admission /
   drain / ledger code single-threaded under seeded interleavings and
   virtual time. *)

module R : Perso_server.Runtime.S = struct
  type thread = Sched.task
  type mutex = Sched.mutex
  type cond = Sched.cond

  let now = Sched.now
  let sleep = Sched.sleep
  let spawn f = Sched.spawn ?name:None f
  let join = Sched.join
  let mutex_create = Sched.mutex_create
  let lock = Sched.lock
  let unlock = Sched.unlock
  let cond_create = Sched.cond_create
  let wait = Sched.wait
  let signal = Sched.signal
  let broadcast = Sched.broadcast
end
