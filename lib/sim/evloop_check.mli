(** Simulation leg for the event-loop runtime.

    Runs [Server_core.Make (Evloop.R)] — the exact core behind
    [serve --io evloop] — on the event-loop scheduler's virtual clock
    with a seeded client fleet, probing rwlock exclusion every scheduler
    step and auditing the HEALTH ledger equations after the drain; the
    run is then repeated and must reproduce field-for-field (the loop is
    FIFO, the clock virtual, the workload seeded — any divergence is a
    runtime bug). *)

val run : seed:int -> (unit, string) result
