(** Virtual time for the deterministic scheduler.

    Time never flows on its own: it is a number that {!advance} moves
    forward to the earliest pending timer when every task is blocked.
    Pure computation therefore takes zero virtual time — only explicit
    sleeps (and whatever the scenario's [Advance] steps inject) make
    deadlines, breaker cooldowns, and drain budgets progress, which is
    what makes runs bit-reproducible. *)

type 'a t

val create : unit -> 'a t

val now : 'a t -> float
(** Current virtual time, seconds since simulation start. *)

val park : 'a t -> float -> 'a -> unit
(** Schedule a waiter to be released at an absolute virtual time. *)

val advance : 'a t -> 'a list
(** Jump [now] to the earliest pending timer and pop every waiter due
    at (or before) the new time, in park order.  [[]] iff no timers are
    pending; [now] is unchanged in that case. *)

val pending : 'a t -> int
(** Number of parked waiters. *)
