(** Entry point behind [perso_cli sim] and [make sim].

    Modes, chosen by {!options}:
    {ul
    {- default: [runs] scenario simulations at seeds [seed], [seed+1],
       … plus the {!Oracle} layer — exit 0 iff everything passes;}
    {- [steps = Some s]: replay exactly that encoded step list under
       [seed] (the command printed on every failure);}
    {- [mutate = true]: self-test — inject the ledger bug
       ({!Perso_server.Server_core.mutate_drop_completed_ok}), require
       a generated scenario to catch it and the shrunk repro to fit in
       10 steps.}}

    Every failure prints an exact
    [perso_cli sim --seed N --steps '…'] replay line. *)

type options = {
  seed : int;
  runs : int;
  steps : string option;  (** encoded step list to replay verbatim *)
  mutate : bool;
  oracle_cases : int;  (** 0 skips the oracle layer *)
  oracle_movies : int;
  oracle_selections : int;
}

val default_options : seed:int -> options
(** runs = 5, no replay, no mutation, oracle at 2 cases × 1200 movies
    × 120 selections. *)

val main : options -> int
(** Runs the selected mode, printing deterministic one-line reports to
    stdout; returns the process exit code (0 pass, 1 fail, 2 bad
    [--steps]). *)
