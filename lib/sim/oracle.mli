(** Differential and metamorphic oracles over the personalization core.

    Differential (the paper's theorems, at ~10× the scale of the unit
    suite): Theorem 1 — {!Perso.Select} emits paths in decreasing
    degree order; Theorem 2 — for prefix-monotone criteria its output
    matches the brute-force enumerator {!Perso.Brute} degree-for-degree.

    Metamorphic (no ground truth needed, only relations between runs):
    {ul
    {- {b raise-rank}: raising the degree of a selected preference
       never demotes that preference's best path in the emission order;}
    {- {b K-prefix}: enlarging Top-K only appends — [top_r k] is a
       prefix of [top_r k'] for [k < k'];}
    {- {b delete-unselected}: removing a preference that contributed no
       top-K path leaves the top-K unchanged (as multisets of
       (condition, degree));}
    {- {b subset}: with every preference optional and "at least one"
       required, personalized answers are a sub-multiset of the plain
       query's answers;}
    {- {b cache}: the same (profile-edit, query) sequence driven
       through cold-only, cached, and incremental-cache paths yields
       byte-identical personalized SQL and result rows, and repeat
       consults are served as cache hits ({!cache_checks}).}} *)

type check = { name : string; ok : bool; detail : string }

type report = {
  cases : int;
  movies : int;
  selections : int;
  checks : check list;  (** in deterministic order *)
}

val run :
  ?movies:int -> ?selections:int -> ?cases:int -> seed:int -> unit -> report
(** Default scale: [movies = 1200], [selections = 120] — 10× the
    setting of [test_select.ml] — over [cases = 2] generated
    (database, profile, query) triples derived from [seed]. *)

val cache_checks :
  movies:int -> selections:int -> int -> string -> check list
(** [cache_checks ~movies ~selections seed tag]: the plan-cache
    relation alone, at a scale reduced from the given one (each step
    costs a cold pipeline, four cache consults and five executions).
    Drives a seeded single-preference edit sequence — adds, removals,
    retunes, the occasional join retune to force the cold fallback —
    through {!Perso.Perso_cache} with the incremental patcher off and
    on, saving each edit to {!Perso.Profile_store} (the invalidation
    signal), and checks byte-identical personalized SQL and rows
    against cold runs, plus [Hit] service on repeat consults.  Exposed
    separately so the unit suite can sweep it across many seeds. *)

val all_ok : report -> bool
val failures : report -> check list
