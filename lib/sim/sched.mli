(** Seeded cooperative scheduler with virtual time.

    A simulation is a set of tasks multiplexed on the one real thread.
    Tasks are ordinary OCaml functions that suspend through effect
    handlers at every concurrency primitive — {!yield}, {!sleep},
    {!lock}/{!unlock}, {!wait}/{!signal}, {!join} — and at each
    suspension the scheduler consults a seeded {!Putil.Rng} to pick
    which runnable task (or which lock/condvar waiter) goes next.  Same
    seed, same program ⇒ the identical interleaving, trace, and
    verdict; an adversarial interleaving found at seed [s] replays from
    [s] forever.

    Time is {!Vclock} virtual time: it advances only when every task is
    blocked, jumping to the earliest pending timer.  Pure computation is
    instantaneous, so deadline/breaker/drain behavior depends only on
    the scenario's explicit time steps — never on machine speed.

    Invariant probes registered with {!add_probe} run before every
    scheduling decision; a probe (or any task) calls {!fail} to abort
    the run with a verdict.  If no task is runnable, no timer is
    pending, and unfinished tasks remain, the run fails with a deadlock
    report — lost wakeups become first-class bugs.

    All task-side primitives must be called from inside {!run};
    elsewhere they raise. *)

type task
type mutex
type cond

exception Failed of string
(** An invariant violation or crash aborting the simulation. *)

type outcome = {
  result : (unit, string) result;
      (** [Ok ()] iff the main function returned and every spawned task
          finished. *)
  steps : int;  (** scheduling decisions taken *)
  vnow : float;  (** final virtual time, seconds *)
  trace : string;  (** one line per scheduling event *)
  digest : string;  (** MD5 of the trace — the bit-reproducibility witness *)
}

val run : ?max_steps:int -> seed:int -> (unit -> unit) -> outcome
(** Run [main] as the root task until quiescence.  Exceeding
    [max_steps] (default [1_000_000]) fails the run — a livelock
    backstop. *)

(* ------------------------ task-side primitives ----------------------- *)

val spawn : ?name:string -> (unit -> unit) -> task
val join : task -> unit
val yield : unit -> unit

val sleep : float -> unit
(** Block for the given virtual seconds. *)

val now : unit -> float
(** Current virtual time, seconds. *)

val mutex_create : unit -> mutex
val lock : mutex -> unit

val unlock : mutex -> unit
(** @raise Failed when the caller does not hold the mutex. *)

val cond_create : unit -> cond
val wait : cond -> mutex -> unit
val signal : cond -> unit
val broadcast : cond -> unit

val fail : string -> 'a
(** Abort the whole simulation with an invariant-violation verdict. *)

val add_probe : (unit -> unit) -> unit
(** Register an invariant check to run before every scheduling
    decision (typically calls {!fail} on violation). *)

val trace_note : string -> unit
(** Append an application-level event to the trace (and digest). *)
