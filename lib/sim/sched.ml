exception Failed of string

(* A waiter is a parked slice of a task: resuming it runs the task until
   its next suspension (or completion), then control returns to the
   scheduler loop. *)
type waiter = { wtid : int; wname : string; resume : unit -> unit }

type task = {
  tid : int;
  name : string;
  mutable finished : bool;
  mutable joiners : waiter list;
}

type mutex = {
  mutable owner : int option;
  mutable mwaiters : waiter list;
}

type cond = { mutable cwaiters : (mutex * waiter) list }

type t = {
  rng : Putil.Rng.t;
  clock : waiter Vclock.t;
  mutable runq : waiter list;  (* tail-append; seeded pick *)
  mutable alive : int;  (* spawned but unfinished tasks *)
  mutable cur : int;  (* tid currently executing *)
  mutable next_tid : int;
  mutable steps : int;
  max_steps : int;
  trace : Buffer.t;
  mutable probes : (unit -> unit) list;
  mutable blocked_names : (int * string) list;  (* tid -> where it blocks *)
}

type _ Effect.t += Suspend : string * (t -> waiter -> unit) -> unit Effect.t

let current : t option ref = ref None

let sch () =
  match !current with
  | Some s -> s
  | None -> raise (Failed "Sched primitive used outside Sched.run")

let tracef s fmt = Format.kasprintf (fun line -> Buffer.add_string s.trace line; Buffer.add_char s.trace '\n') fmt

let block_at s tid label =
  s.blocked_names <- (tid, label) :: List.remove_assoc tid s.blocked_names

let unblock s tid = s.blocked_names <- List.remove_assoc tid s.blocked_names

let push_runnable s (w : waiter) =
  unblock s w.wtid;
  s.runq <- s.runq @ [ w ]

(* Remove and return element [i] of a list. *)
let take_nth i l =
  let rec go acc i = function
    | [] -> invalid_arg "take_nth"
    | x :: rest ->
        if i = 0 then (x, List.rev_append acc rest) else go (x :: acc) (i - 1) rest
  in
  go [] i l

let pick_seeded s = function
  | [] -> None
  | l ->
      let i = Putil.Rng.int_in s.rng 0 (List.length l - 1) in
      Some (take_nth i l)

(* ------------------------------ suspension --------------------------- *)

let suspend label park = Effect.perform (Suspend (label, park))

let yield () = suspend "yield" (fun s w -> push_runnable s w)

let sleep d =
  suspend "sleep"
    (fun s w ->
      block_at s w.wtid "sleep";
      Vclock.park s.clock (Vclock.now s.clock +. Float.max d 0.) w)

let now () = Vclock.now (sch ()).clock

let fail msg = raise (Failed msg)

let add_probe p =
  let s = sch () in
  s.probes <- s.probes @ [ p ]

let trace_note note =
  let s = sch () in
  tracef s "note %s" note

(* -------------------------------- tasks ------------------------------ *)

let finish_task s task =
  task.finished <- true;
  s.alive <- s.alive - 1;
  List.iter (push_runnable s) task.joiners;
  task.joiners <- []

(* Build the waiter that starts a task from the beginning.  The deep
   handler installed here stays in force across every later [continue],
   so each suspension unwinds to whoever called [resume] — the
   scheduler loop. *)
let first_waiter s task (body : unit -> unit) : waiter =
  let open Effect.Deep in
  let handler =
    {
      retc = (fun () -> finish_task s task);
      exnc =
        (fun e ->
          finish_task s task;
          match e with
          | Failed _ -> raise e
          | e ->
              raise
                (Failed
                   (Printf.sprintf "task %s crashed: %s" task.name
                      (Printexc.to_string e))));
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Suspend (label, park) ->
              Some
                (fun (k : (a, _) continuation) ->
                  tracef s "%d %s %s" s.steps task.name label;
                  park s
                    {
                      wtid = task.tid;
                      wname = task.name;
                      resume = (fun () -> continue k ());
                    })
          | _ -> None);
    }
  in
  { wtid = task.tid; wname = task.name; resume = (fun () -> match_with body () handler) }

let spawn ?name body =
  let s = sch () in
  let tid = s.next_tid in
  s.next_tid <- tid + 1;
  let name = match name with Some n -> n | None -> Printf.sprintf "task-%d" tid in
  let task = { tid; name; finished = false; joiners = [] } in
  s.alive <- s.alive + 1;
  tracef s "%d spawn %s" s.steps name;
  push_runnable s (first_waiter s task body);
  task

let join task =
  suspend "join"
    (fun s w ->
      if task.finished then push_runnable s w
      else begin
        block_at s w.wtid ("join " ^ task.name);
        task.joiners <- task.joiners @ [ w ]
      end)

(* ------------------------------- mutexes ----------------------------- *)

let mutex_create () = { owner = None; mwaiters = [] }

let lock m =
  suspend "lock"
    (fun s w ->
      match m.owner with
      | None ->
          m.owner <- Some w.wtid;
          push_runnable s w
      | Some _ ->
          block_at s w.wtid "lock";
          m.mwaiters <- m.mwaiters @ [ w ])

(* Hand the mutex to one seeded waiter (ownership transfers before the
   waiter runs, so late lockers queue behind it — deterministic handoff
   semantics). *)
let grant s m =
  m.owner <- None;
  match pick_seeded s m.mwaiters with
  | None -> ()
  | Some (w, rest) ->
      m.mwaiters <- rest;
      m.owner <- Some w.wtid;
      push_runnable s w

let unlock m =
  suspend "unlock"
    (fun s w ->
      if m.owner <> Some w.wtid then
        raise (Failed (w.wname ^ ": unlock of a mutex it does not hold"));
      grant s m;
      push_runnable s w)

(* ------------------------------ condvars ----------------------------- *)

let cond_create () = { cwaiters = [] }

let wait c m =
  suspend "wait"
    (fun s w ->
      if m.owner <> Some w.wtid then
        raise (Failed (w.wname ^ ": wait without holding the mutex"));
      grant s m;
      block_at s w.wtid "wait";
      c.cwaiters <- c.cwaiters @ [ (m, w) ])

(* A signaled waiter must re-acquire its mutex before running.  The
   signaler usually still holds it, so the waiter queues on the mutex;
   if it is free the waiter takes ownership immediately. *)
let wake s (m, w) =
  match m.owner with
  | None ->
      m.owner <- Some w.wtid;
      push_runnable s w
  | Some _ ->
      block_at s w.wtid "relock";
      m.mwaiters <- m.mwaiters @ [ w ]

let signal c =
  suspend "signal"
    (fun s w ->
      (match pick_seeded s c.cwaiters with
      | None -> ()
      | Some (entry, rest) ->
          c.cwaiters <- rest;
          wake s entry);
      push_runnable s w)

let broadcast c =
  suspend "broadcast"
    (fun s w ->
      let waiters = c.cwaiters in
      c.cwaiters <- [];
      List.iter (wake s) waiters;
      push_runnable s w)

(* -------------------------------- run -------------------------------- *)

type outcome = {
  result : (unit, string) result;
  steps : int;
  vnow : float;
  trace : string;
  digest : string;
}

let deadlock_report s =
  let blocked =
    s.blocked_names
    |> List.rev_map (fun (tid, at) -> Printf.sprintf "t%d@%s" tid at)
    |> String.concat ", "
  in
  Printf.sprintf "deadlock: %d task(s) blocked with no timer pending [%s]"
    s.alive blocked

let run ?(max_steps = 1_000_000) ~seed main =
  let s =
    {
      rng = Putil.Rng.create seed;
      clock = Vclock.create ();
      runq = [];
      alive = 0;
      cur = -1;
      next_tid = 0;
      steps = 0;
      max_steps;
      trace = Buffer.create 4096;
      probes = [];
      blocked_names = [];
    }
  in
  let prev = !current in
  current := Some s;
  Fun.protect ~finally:(fun () -> current := prev) @@ fun () ->
  let result =
    try
      ignore (spawn ~name:"main" main);
      let rec loop () =
        List.iter (fun p -> p ()) s.probes;
        if s.steps >= s.max_steps then
          Error (Printf.sprintf "step budget exceeded (%d)" s.max_steps)
        else
          match pick_seeded s s.runq with
          | Some (w, rest) ->
              s.runq <- rest;
              s.steps <- s.steps + 1;
              s.cur <- w.wtid;
              tracef s "%d run %s" s.steps w.wname;
              w.resume ();
              loop ()
          | None -> (
              match Vclock.advance s.clock with
              | [] ->
                  if s.alive > 0 then Error (deadlock_report s) else Ok ()
              | due ->
                  tracef s "%d advance %.3f" s.steps (Vclock.now s.clock);
                  List.iter (push_runnable s) due;
                  loop ())
      in
      loop ()
    with Failed msg -> Error msg
  in
  (match result with
  | Ok () -> tracef s "end ok"
  | Error msg -> tracef s "end fail %s" msg);
  let trace = Buffer.contents s.trace in
  {
    result;
    steps = s.steps;
    vnow = Vclock.now s.clock;
    trace;
    digest = Digest.to_hex (Digest.string trace);
  }
