type 'a entry = { due : float; seq : int; waiter : 'a }

type 'a t = {
  mutable now : float;
  mutable sleepers : 'a entry list;  (* unsorted; selected by (due, seq) *)
  mutable next_seq : int;  (* park order breaks due-time ties (FIFO) *)
}

let create () = { now = 0.; sleepers = []; next_seq = 0 }
let now t = t.now

let park t due waiter =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  t.sleepers <- { due; seq; waiter } :: t.sleepers

let pending t = List.length t.sleepers

let advance t =
  match t.sleepers with
  | [] -> []
  | first :: rest ->
      let earliest =
        List.fold_left
          (fun best e ->
            if e.due < best.due || (e.due = best.due && e.seq < best.seq) then e
            else best)
          first rest
      in
      if earliest.due > t.now then t.now <- earliest.due;
      let due, later =
        List.partition (fun e -> e.due <= t.now) t.sleepers
      in
      t.sleepers <- later;
      List.sort (fun a b -> compare a.seq b.seq) due
      |> List.map (fun e -> e.waiter)
