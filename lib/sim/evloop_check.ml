(* The event-loop runtime under virtual time: run the full
   [Server_core.Make (Evloop.R)] machinery — admission, worker pool,
   breaker, drain — on the production event-loop scheduler with its
   [`Virtual] clock, drive it with a seeded client fleet, and hold it to
   the same audits the Sched-based scenarios enforce: rwlock exclusion
   probed every scheduler step, the HEALTH ledger balancing exactly, and
   (since the loop is FIFO and the workload seeded) a byte-identical
   rerun.  This is what lets `--io evloop` face a benchmark only after
   the runtime has survived the sim. *)

module Core = Perso_server.Server_core.Make (Perso_server.Evloop.R)
module Evloop = Perso_server.Evloop
module Protocol = Perso_server.Protocol
module Server_core = Perso_server.Server_core

let save_variants =
  [|
    "[ GENRE.genre = 'comedy', 0.9 ] [ MOVIE.mid = GENRE.mid, 0.8 ]";
    "[ ACTOR.name = 'N. Kidman', 0.7 ] [ CAST.aid = ACTOR.aid, 0.9 ] [ \
     MOVIE.mid = CAST.mid, 0.9 ]";
    "";
    "[ not a condition, 2 ]";
  |]

type trial = {
  health : (string * string) list;
  shed_at_stop : int;
  submits : int;
  client_ok : int;
}

let hstat health name =
  match List.assoc_opt name health with
  | Some v -> ( match int_of_string_opt v with Some i -> i | None -> -1)
  | None -> -1

(* One full fleet run; everything (scripts, pauses, drain point) derives
   from [seed], so two calls must agree field for field. *)
let run_once ~seed : (trial, string) result =
  let db = Moviedb.Personas.tiny_db () in
  let sqls =
    Moviedb.Workload.queries db ~n:4 ~seed:(seed + 17)
    |> List.map Relal.Sql_print.query_to_string
    |> Array.of_list
  in
  let rng = Putil.Rng.create (0xe71009 + (seed * 31)) in
  let n_clients = Putil.Rng.int_in rng 2 4 in
  let reqs_per_client = Putil.Rng.int_in rng 6 14 in
  let drain_mid = Putil.Rng.bool rng in
  let scripts =
    Array.init n_clients (fun cid ->
        let crng = Putil.Rng.create ((seed * 1009) + cid) in
        List.init reqs_per_client (fun _ ->
            let pause =
              float_of_int (Putil.Rng.int_in crng 0 120) /. 1000.
            in
            let deadline_ms =
              if Putil.Rng.int crng 100 < 25 then
                Some (float_of_int (Putil.Rng.int_in crng 5 300))
              else None
            in
            (pause, deadline_ms, Putil.Rng.int crng 100)))
  in
  let submits = ref 0 and client_ok = ref 0 in
  let final_health = ref [] in
  let outcome = ref None in
  Relal.Chaos.set_sleep (fun ms -> Evloop.sleep (ms /. 1000.));
  Relal.Governor.set_clock (fun () -> Evloop.now ());
  let restore () =
    Relal.Governor.set_clock Relal.Governor.real_clock;
    Relal.Chaos.set_sleep ignore
  in
  Fun.protect ~finally:restore @@ fun () ->
  let loop_result =
    Evloop.run ~clock:`Virtual ~max_steps:2_000_000 (fun () ->
        let core =
          Core.create
            {
              (Server_core.default_config ~socket_path:"<evloop-sim>") with
              workers = 2;
              queue_capacity = 3;
              deadline_ms = Some 2_000.;
              max_rows = Some 200_000;
              max_expansions = Some 2_000;
              drain_ms = 300.;
              shards = 1 + (seed mod 2);
            }
            db
        in
        Evloop.add_probe (fun () ->
            List.iteri
              (fun i (readers, writer) ->
                if writer && readers > 0 then
                  raise
                    (Evloop.Failed
                       (Printf.sprintf
                          "rwlock-exclusion: lock %d writer active with %d \
                           reader(s)"
                          i readers)))
              (Core.lock_states core));
        let client cid =
          let user = Printf.sprintf "u%d" cid in
          List.iter
            (fun (pause, deadline_ms, kind) ->
              Evloop.sleep pause;
              if kind >= 92 then ignore (Core.health core : (string * string) list)
              else begin
                incr submits;
                let cmd =
                  if kind < 40 then
                    Protocol.Run sqls.(kind mod Array.length sqls)
                  else if kind < 65 then
                    Protocol.Personalize
                      { user; sql = sqls.(kind mod Array.length sqls) }
                  else if kind < 80 then
                    Protocol.Profile_save
                      {
                        user;
                        entries =
                          save_variants.(kind mod Array.length save_variants);
                      }
                  else Protocol.Profile_show user
                in
                let hdr = { Protocol.empty_header with deadline_ms } in
                match Core.submit core hdr cmd with
                | Server_core.R_rows _ | Server_core.R_message _ ->
                    incr client_ok
                | Server_core.R_error _ -> ()
              end)
            scripts.(cid)
        in
        let clients =
          List.init n_clients (fun cid ->
              Evloop.spawn
                ~name:(Printf.sprintf "client-%d" cid)
                (fun () -> client cid))
        in
        (* Half the seeds drain mid-traffic so the admission-time shed
           path runs; clients keep submitting into the draining core. *)
        if drain_mid then
          ignore
            (Evloop.spawn ~name:"drainer" (fun () ->
                 Evloop.sleep 0.15;
                 Core.request_stop core;
                 Core.begin_drain core)
              : Evloop.task);
        List.iter Evloop.join clients;
        outcome := Some (Core.stop core);
        final_health := Core.health core)
  in
  match (loop_result, !outcome) with
  | Error e, _ -> Error e
  | Ok (), None -> Error "loop finished without stopping the server"
  | Ok (), Some o ->
      Ok
        {
          health = !final_health;
          shed_at_stop = o.Server_core.shed_at_stop;
          submits = !submits;
          client_ok = !client_ok;
        }

let audit (t : trial) : (unit, string) result =
  let n k = hstat t.health k in
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if List.assoc_opt "state" t.health <> Some "stopped" then
    fail "ledger: server not stopped"
  else if n "queue_depth" <> 0 || n "in_flight" <> 0 then
    fail "ledger: residual work after stop: queue=%d in_flight=%d"
      (n "queue_depth") (n "in_flight")
  else if
    t.submits
    <> n "accepted" + n "shed_queue_full" + (n "shed_draining" - t.shed_at_stop)
  then
    fail
      "ledger: arrivals %d <> accepted %d + shed_queue_full %d + \
       shed_draining' %d"
      t.submits (n "accepted") (n "shed_queue_full")
      (n "shed_draining" - t.shed_at_stop)
  else if
    n "accepted"
    <> n "completed_ok" + n "completed_err" + n "shed_expired" + t.shed_at_stop
  then
    fail
      "ledger: accepted %d <> completed_ok %d + completed_err %d + \
       shed_expired %d + shed_at_stop %d"
      (n "accepted") (n "completed_ok") (n "completed_err") (n "shed_expired")
      t.shed_at_stop
  else if t.client_ok <> n "completed_ok" then
    fail "ledger: client-observed successes %d <> completed_ok %d" t.client_ok
      (n "completed_ok")
  else if
    n "pers_ok" + n "pers_err"
    <> n "cache_hit" + n "cache_miss" + n "cache_incremental"
       + n "cache_bypass"
  then
    fail "ledger: pers %d+%d <> cache %d+%d+%d+%d" (n "pers_ok") (n "pers_err")
      (n "cache_hit") (n "cache_miss") (n "cache_incremental")
      (n "cache_bypass")
  else Ok ()

let run ~seed : (unit, string) result =
  match run_once ~seed with
  | Error e -> Error e
  | Ok first -> (
      match audit first with
      | Error e -> Error e
      | Ok () -> (
          (* Determinism: a FIFO loop under a virtual clock with a
             seeded workload must reproduce the run exactly. *)
          match run_once ~seed with
          | Error e -> Error ("rerun failed: " ^ e)
          | Ok second ->
              if second = first then Ok ()
              else Error "nondeterministic: rerun disagrees with first run"))
