(* CLI-facing facade: run scenario fleets, the oracle layer, explicit
   step-list replays, and the mutation self-test, with deterministic
   one-line-per-event output and an exact replay command printed for
   every failure. *)

type options = {
  seed : int;
  runs : int;
  steps : string option;
  mutate : bool;
  oracle_cases : int;
  oracle_movies : int;
  oracle_selections : int;
}

let default_options ~seed =
  {
    seed;
    runs = 5;
    steps = None;
    mutate = false;
    oracle_cases = 2;
    oracle_movies = 1200;
    oracle_selections = 120;
  }

let short digest =
  if String.length digest > 12 then String.sub digest 0 12 else digest

let replay_line ~mutate ~seed steps =
  Printf.sprintf "perso_cli sim%s --seed %d --steps '%s'"
    (if mutate then " --mutate" else "")
    seed
    (Scenario.steps_to_string steps)

(* Run one step list; on failure shrink it and print the replay line.
   Returns [true] on PASS. *)
let run_one ~mutate ~seed steps =
  let r = Scenario.run ~seed steps in
  match r.Scenario.verdict with
  | Ok () ->
      Printf.printf "sim: scenario seed=%d steps=%d sched=%d vnow=%.3fs digest=%s PASS\n%!"
        seed r.Scenario.n_steps r.Scenario.sched_steps r.Scenario.vnow
        (short r.Scenario.digest);
      true
  | Error f ->
      Printf.printf "sim: scenario seed=%d FAIL invariant=%s: %s\n%!" seed
        f.Scenario.invariant f.Scenario.detail;
      let shrunk = Scenario.shrink ~seed steps f in
      Printf.printf "sim: shrunk %d -> %d step(s): %s\n%!" (List.length steps)
        (List.length shrunk)
        (Scenario.steps_to_string shrunk);
      Printf.printf "sim: replay: %s\n%!" (replay_line ~mutate ~seed shrunk);
      false

let run_scenarios ~seed ~runs =
  let ok = ref true in
  for i = 0 to runs - 1 do
    let s = seed + i in
    if not (run_one ~mutate:false ~seed:s (Scenario.generate ~seed:s)) then
      ok := false
  done;
  !ok

(* The event-loop runtime under virtual time: same core, second
   scheduler, same audits (see {!Evloop_check}). *)
let run_evloop_checks ~seed ~runs =
  let ok = ref true in
  for i = 0 to runs - 1 do
    let s = seed + i in
    match Evloop_check.run ~seed:s with
    | Ok () -> Printf.printf "sim: evloop seed=%d PASS\n%!" s
    | Error e ->
        Printf.printf "sim: evloop seed=%d FAIL: %s\n%!" s e;
        ok := false
  done;
  !ok

let run_oracle ~seed ~cases ~movies ~selections =
  if cases <= 0 then true
  else begin
    let report = Oracle.run ~movies ~selections ~cases ~seed () in
    List.iter
      (fun c ->
        if not c.Oracle.ok then
          Printf.printf "sim: oracle FAIL %s: %s\n%!" c.Oracle.name
            c.Oracle.detail)
      report.Oracle.checks;
    let n_fail = List.length (Oracle.failures report) in
    Printf.printf
      "sim: oracle seed=%d cases=%d movies=%d selections=%d checks=%d %s\n%!"
      seed cases movies selections
      (List.length report.Oracle.checks)
      (if n_fail = 0 then "PASS" else Printf.sprintf "FAIL(%d)" n_fail);
    n_fail = 0
  end

(* Inject the ledger bug, expect some generated scenario to trip the
   audit, and require the shrunk repro to be small.  Exit criterion for
   the harness's own health: the bug must be caught AND minimize to at
   most [max_repro] steps. *)
let mutation_selftest ~seed ~runs ~max_repro =
  let attempts = max runs 4 in
  let saved = !Perso_server.Server_core.mutate_drop_completed_ok in
  Perso_server.Server_core.mutate_drop_completed_ok := true;
  Fun.protect
    ~finally:(fun () ->
      Perso_server.Server_core.mutate_drop_completed_ok := saved)
    (fun () ->
      let rec hunt i =
        if i >= attempts then None
        else begin
          let s = seed + i in
          let steps = Scenario.generate ~seed:s in
          let r = Scenario.run ~seed:s steps in
          match r.Scenario.verdict with
          | Error f -> Some (s, steps, f)
          | Ok () -> hunt (i + 1)
        end
      in
      match hunt 0 with
      | None ->
          Printf.printf
            "sim: mutation NOT CAUGHT in %d scenario(s) — harness is blind to \
             a dropped completed_ok\n%!"
            attempts;
          false
      | Some (s, steps, f) ->
          let shrunk = Scenario.shrink ~seed:s steps f in
          let n = List.length shrunk in
          Printf.printf
            "sim: mutation caught seed=%d invariant=%s; shrunk %d -> %d \
             step(s): %s\n%!"
            s f.Scenario.invariant (List.length steps) n
            (Scenario.steps_to_string shrunk);
          Printf.printf "sim: replay: %s\n%!" (replay_line ~mutate:true ~seed:s shrunk);
          if n > max_repro then
            Printf.printf "sim: mutation repro too large (%d > %d steps)\n%!" n
              max_repro;
          n <= max_repro)

let with_mutation mutate f =
  if not mutate then f ()
  else begin
    let saved = !Perso_server.Server_core.mutate_drop_completed_ok in
    Perso_server.Server_core.mutate_drop_completed_ok := true;
    Fun.protect
      ~finally:(fun () ->
        Perso_server.Server_core.mutate_drop_completed_ok := saved)
      f
  end

let main opts =
  match opts.steps with
  | Some s -> (
      (* Explicit replay: run exactly these steps under --seed.  With
         --mutate the injected bug is active, so a shrunk mutation
         repro fails again here (exit 1) — that failing exit IS the
         successful reproduction. *)
      match Scenario.steps_of_string s with
      | Error e ->
          Printf.printf "sim: bad --steps: %s\n%!" e;
          2
      | Ok steps ->
          if with_mutation opts.mutate (fun () ->
                 run_one ~mutate:opts.mutate ~seed:opts.seed steps)
          then 0
          else 1)
  | None ->
      if opts.mutate then
        if mutation_selftest ~seed:opts.seed ~runs:opts.runs ~max_repro:10 then begin
          Printf.printf "sim: mutation self-test OK\n%!";
          0
        end
        else 1
      else begin
        let sc_ok = run_scenarios ~seed:opts.seed ~runs:opts.runs in
        let ev_ok = run_evloop_checks ~seed:opts.seed ~runs:opts.runs in
        let or_ok =
          run_oracle ~seed:opts.seed ~cases:opts.oracle_cases
            ~movies:opts.oracle_movies ~selections:opts.oracle_selections
        in
        if sc_ok && ev_ok && or_ok then begin
          Printf.printf "sim: OK (runs=%d oracle-cases=%d)\n%!" opts.runs
            opts.oracle_cases;
          0
        end
        else 1
      end
