(** Random client-fleet scenarios over the simulated server.

    A scenario is a list of {!step}s replayed by a driver task inside a
    {!Sched} simulation: requests are dispatched to per-client tasks
    that call the server core's [submit] (so admission, queueing,
    worker hand-off, and reply mailboxes all execute under seeded
    interleavings), [Advance] moves virtual time (tripping queue-expiry
    deadlines, breaker cooldowns, and the drain budget), [Chaos_on]/
    [Chaos_off] toggle {!Relal.Chaos} fault windows, and [Drain] begins
    a graceful shutdown mid-traffic.

    Every run is audited against the server's invariants:
    {ul
    {- exactly one reply per dispatched request (none lost, none
       duplicated — "no reply after shed");}
    {- the HEALTH ledger balances: [submits = accepted +
       shed_queue_full + shed_draining_admission] and [accepted =
       completed_ok + completed_err + shed_expired + shed_at_stop],
       with an empty queue and zero in-flight after stop, and
       client-observed successes equal to [completed_ok];}
    {- rwlock exclusion (a writer never overlaps a reader), probed at
       every scheduling decision;}
    {- the drain bound: [stop] finishes within [drain_ms] plus a small
       bounded tail of virtual time;}
    {- no deadlock and no task crash (enforced by {!Sched}).}}

    The step list has an exact textual round-trip ({!steps_to_string} /
    {!steps_of_string}) so a shrunk failing scenario replays from a
    command line. *)

type req =
  | Run_sql of int  (** index into the seed-derived query pool *)
  | Pers of int  (** personalize query [i] as user "u<cid>" *)
  | Save of int  (** index into the profile-entry variants *)
  | Load  (** PROFILE LOAD *)
  | Health_probe  (** control-plane HEALTH, bypasses the queue *)

type step =
  | Request of { cid : int; req : req; deadline_ms : int option }
  | Advance of int  (** advance virtual time by [ms] *)
  | Chaos_on of { cseed : int; permille : int }
  | Chaos_off
  | Drain  (** request_stop + begin_drain, as SHUTDOWN does *)

val generate : seed:int -> step list
(** The scenario deterministically derived from [seed]: 2–4 clients,
    12–45 steps, occasionally draining mid-traffic and submitting after
    the drain. *)

val step_to_string : step -> string
val steps_to_string : step list -> string

val steps_of_string : string -> (step list, string) result
(** Exact inverse of {!steps_to_string}. *)

type failure = { invariant : string; detail : string }

type result = {
  verdict : (unit, failure) Stdlib.result;
  digest : string;
      (** MD5 over the scheduler trace, per-step outcomes, and the
          final HEALTH snapshot — the bit-reproducibility witness *)
  sched_steps : int;
  vnow : float;  (** final virtual time, seconds *)
  n_steps : int;
}

val run : seed:int -> step list -> result
(** Simulate the steps under scheduler seed [seed] (which also derives
    the query pool).  Restores the process-global Governor clock and
    Chaos sleep/arm state on exit. *)

val run_seed : seed:int -> result
(** [run ~seed (generate ~seed)]. *)

val shrink : seed:int -> step list -> failure -> step list
(** Minimize a failing step list, preserving the failing invariant. *)
