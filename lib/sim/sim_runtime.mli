(** {!Perso_server.Runtime.S} over the {!Sched} cooperative scheduler.

    Instantiating [Server_core.Make (Sim_runtime.R)] inside a
    {!Sched.run} gives a server whose threads, locks, condition
    variables, clock, and sleeps are all simulated — every run is a
    pure function of the scheduler seed. *)

module R : Perso_server.Runtime.S
