(* Growable array of rows — the executor's and table's shared storage.
   The row count is a cached field, never recomputed by traversal. *)

type t = { mutable data : Value.t array array; mutable len : int }

let create ?(cap = 0) () =
  { data = (if cap <= 0 then [||] else Array.make cap [||]); len = 0 }

let length b = b.len

let add b row =
  let cap = Array.length b.data in
  if b.len = cap then begin
    let ncap = if cap = 0 then 64 else 2 * cap in
    let nd = Array.make ncap row in
    Array.blit b.data 0 nd 0 b.len;
    b.data <- nd
  end;
  b.data.(b.len) <- row;
  b.len <- b.len + 1

let get b i =
  if i < 0 || i >= b.len then invalid_arg "Batch.get: row id out of bounds";
  b.data.(i)

let unsafe_rows b = b.data

let of_rows rows = { data = rows; len = Array.length rows }

let of_list l =
  let rows = Array.of_list l in
  { data = rows; len = Array.length rows }

let to_list b =
  let acc = ref [] in
  for i = b.len - 1 downto 0 do
    acc := b.data.(i) :: !acc
  done;
  !acc

let iter f b =
  for i = 0 to b.len - 1 do
    f b.data.(i)
  done

let fold f init b =
  let acc = ref init in
  iter (fun r -> acc := f !acc r) b;
  !acc

let clear b =
  b.data <- [||];
  b.len <- 0
