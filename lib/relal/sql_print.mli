(** Pretty-printer producing SQL text for {!Sql_ast} values.

    Personalized queries are regular SQL statements a user (or the paper's
    Oracle backend) could read and execute; this module renders them.  The
    output re-parses to an equal AST via {!Sql_parser} (property-tested),
    modulo predicate-tree flattening performed by the smart constructors. *)

val attr_to_string : Sql_ast.attr -> string
val pred_to_string : Sql_ast.pred -> string
val agg_to_string : Sql_ast.agg -> string
val having_to_string : Sql_ast.having -> string

val query_to_string : Sql_ast.query -> string
(** Single-line rendering. *)

val query_to_key : Sql_ast.query -> string
(** Canonical single-line rendering used as the personalization plan
    cache's query-template component.  Apply it to a {e bound} AST so
    surface variation (whitespace, keyword case, implicit aliases)
    normalizes away and equal templates map to equal keys.  Currently
    identical to {!query_to_string}, but kept as a distinct entry point:
    key stability across releases is an explicit contract here, while
    [query_to_string] may evolve for readability. *)

val query_to_pretty : Sql_ast.query -> string
(** Multi-line, indented rendering for human consumption (examples, CLI,
    EXPERIMENTS.md excerpts). *)

val pp_query : Format.formatter -> Sql_ast.query -> unit
(** [query_to_pretty] through a formatter. *)
