let run_query ?strategy ?gov db q = Exec.run ?strategy ?gov db (Binder.bind db q)

let run_sql ?strategy ?gov db sql = run_query ?strategy ?gov db (Sql_parser.parse sql)

let explain db q = Sql_print.query_to_pretty (Binder.bind db q)
