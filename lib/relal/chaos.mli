(** Deterministic fault injection.

    When armed, each named injection {!point} flips a seeded coin and
    raises {!Injected} with probability [p]; a slice of the injected
    faults is marked transient (retryable).  The points sit on the
    system's failure surfaces: table scans, hash-join build and probe
    phases, profile loading, in-place store mutation, and persistence
    writes.  Because the coin stream comes from a {!Putil.Rng} seeded at
    arm time and the engine is deterministic, a chaos run is exactly
    reproducible from its seed — the property the [make chaos] suite
    relies on.

    Disarmed (the default), every hook is a single load-and-branch. *)

type point =
  | Scan  (** base-table scan / access-path materialization *)
  | Join_build  (** hash-join build phase *)
  | Join_probe  (** hash-join probe phase / index-NL probe loop *)
  | Profile_load  (** reading a profile (file or in-database store) *)
  | Store_mutate
      (** in-place mutation of an in-database store (e.g. the
          profile-table rewrite a [PROFILE SAVE] performs) *)
  | Persist_write  (** writing a table dump *)

val point_name : point -> string

exception Injected of { point : point; transient : bool }

type stats = {
  mutable evaluations : int;  (** coin flips (points crossed) *)
  mutable injected : int;  (** faults raised *)
  mutable injected_transient : int;
}

val arm : ?transient_ratio:float -> seed:int -> p:float -> unit -> stats
(** Arm global injection with probability [p] per point crossing;
    [transient_ratio] (default 0.7) of injected faults are transient.
    Returns the live counters.  Re-arming replaces the previous config. *)

val disarm : unit -> unit

val armed : unit -> bool

val point : point -> unit
(** Injection hook.  @raise Injected with probability [p] when armed. *)

val with_faults :
  ?transient_ratio:float -> seed:int -> p:float -> (unit -> 'a) -> 'a * stats
(** Run [f] with injection armed, disarming afterwards (also on
    exceptions); returns the result plus the fault counters. *)

val set_sleep : (float -> unit) -> unit
(** Replace the process-wide default sleep used by {!retry} backoff
    (argument in milliseconds; the default calls [Unix.sleepf]).  Test
    suites install [ignore] so retries stop costing wall-clock; a
    per-call [?sleep] to {!retry} takes precedence. *)

val retry :
  ?attempts:int ->
  ?backoff_ms:float ->
  ?jitter_seed:int ->
  ?sleep:(float -> unit) ->
  (unit -> 'a) ->
  'a
(** Run [f], retrying on {e transient} {!Injected} faults up to
    [attempts] times total (default 3).  Waits between attempts follow
    decorrelated jitter: each wait is drawn uniformly from
    [\[backoff_ms, 3 × previous wait\]] (seeded by [jitter_seed], so a
    retry schedule is reproducible), capped at 100 ms, starting at
    [backoff_ms] (default 1 ms).  [sleep] receives each wait in
    milliseconds (default: the process-wide sleep, see {!set_sleep}).
    Permanent faults and every other exception propagate immediately;
    the last transient fault propagates once attempts are spent.
    @raise Invalid_argument if [attempts <= 0]. *)
