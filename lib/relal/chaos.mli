(** Deterministic fault injection.

    When armed, each named injection {!point} flips a seeded coin and
    raises {!Injected} with probability [p]; a slice of the injected
    faults is marked transient (retryable).  The points sit on the
    system's failure surfaces: table scans, hash-join build and probe
    phases, profile loading, in-place store mutation, and persistence
    writes.  Because the coin stream comes from a {!Putil.Rng} seeded at
    arm time and the engine is deterministic, a chaos run is exactly
    reproducible from its seed — the property the [make chaos] suite
    relies on.

    Disarmed (the default), every hook is a single load-and-branch. *)

type point =
  | Scan  (** base-table scan / access-path materialization *)
  | Join_build  (** hash-join build phase *)
  | Join_probe  (** hash-join probe phase / index-NL probe loop *)
  | Profile_load  (** reading a profile (file or in-database store) *)
  | Store_mutate
      (** in-place mutation of an in-database store (e.g. the
          profile-table rewrite a [PROFILE SAVE] performs) *)
  | Persist_write  (** writing a table dump *)
  | Wal_append  (** appending a CRC-framed record to a write-ahead log *)
  | Wal_fsync  (** fsyncing a write-ahead log after an append *)
  | Manifest_write  (** replacing a store manifest (tmp + rename) *)
  | Compact_write  (** copying one live record during compaction *)
  | Compact_rename  (** committing a compaction (manifest swap) *)
  | Ship_append  (** replicating an acknowledged record to a follower *)
  | Scrub_read  (** scrubber verifying one store file's frames *)
  | Promote  (** failing over to the freshest healthy replica *)

val point_name : point -> string

exception Injected of { point : point; transient : bool }

(** {1 Deterministic storage faults}

    Orthogonal to the probabilistic layer: a {e plan} arms an exact
    schedule of storage faults, each firing at the [k]-th crossing
    (0-based, counted per point) of a named fault point.  Storage code
    consults {!take_fault} at each site and simulates the returned
    fault; the crash-recovery harness uses the crossing counters to
    enumerate every kill site for a given operation sequence and then
    replays with a fault planted at each one in turn. *)

type storage_fault =
  | Torn_write of float
      (** write only a strict-prefix fraction of the payload, then die
          mid-write (simulated by {!Crashed}); fraction in [0, 1) *)
  | Short_write of float
      (** a partial write that the caller {e observes} as a transient
          error (the storage layer must roll it back); fraction in
          [0, 1) *)
  | Fsync_fail
      (** the write lands but fsync reports a transient failure — the
          record must not be acknowledged *)
  | Crash  (** die before the operation touches the disk *)
  | Flip_byte of float
      (** silent corruption: one byte of the file being processed is
          flipped in place, at this fraction of its size (in [0, 1));
          the operation itself proceeds — damage surfaces later, at the
          CRC check of whichever read path touches the byte *)

exception Crashed of { point : point }
(** The simulated kill.  Storage code raising this must {e not} clean
    up (no truncate-on-error, no temp-file removal) — that is the whole
    point: recovery has to cope with whatever was left behind. *)

val plan : (point * int * storage_fault) list -> unit
(** Arm a deterministic fault schedule: [(pt, k, f)] fires fault [f] at
    the [k]-th crossing of [pt].  Replaces any previous plan and resets
    the crossing counters.
    @raise Invalid_argument on a torn/short fraction outside [0, 1). *)

val unplan : unit -> unit
(** Drop the plan (storage fault sites become free of overhead again). *)

val take_fault : point -> storage_fault option
(** Consulted by storage code at each fault site.  Increments the
    point's crossing counter and returns the planned fault for this
    crossing, if any.  Always [None] when no plan is armed. *)

val crossings : point -> int
(** How many times {!take_fault} has been consulted for [point] under
    the current plan (0 when no plan is armed).  Run an operation
    sequence under an empty plan ([plan []]) to count kill sites. *)

val flip_byte_in_file : string -> float -> unit
(** [flip_byte_in_file path frac] XOR-flips the byte at [frac] of the
    file's size (clamped to a real offset) — the corruption primitive
    behind {!Flip_byte}, also called directly by the corruption-sweep
    harness.  No-op on an empty or missing file. *)

type stats = {
  mutable evaluations : int;  (** coin flips (points crossed) *)
  mutable injected : int;  (** faults raised *)
  mutable injected_transient : int;
}

val arm : ?transient_ratio:float -> seed:int -> p:float -> unit -> stats
(** Arm global injection with probability [p] per point crossing;
    [transient_ratio] (default 0.7) of injected faults are transient.
    Returns the live counters.  Re-arming replaces the previous config. *)

val disarm : unit -> unit

val armed : unit -> bool

val point : point -> unit
(** Injection hook.  @raise Injected with probability [p] when armed. *)

val with_faults :
  ?transient_ratio:float -> seed:int -> p:float -> (unit -> 'a) -> 'a * stats
(** Run [f] with injection armed, disarming afterwards (also on
    exceptions); returns the result plus the fault counters. *)

val set_sleep : (float -> unit) -> unit
(** Replace the process-wide default sleep used by {!retry} backoff
    (argument in milliseconds; the default calls [Unix.sleepf]).  Test
    suites install [ignore] so retries stop costing wall-clock; a
    per-call [?sleep] to {!retry} takes precedence. *)

val retry :
  ?attempts:int ->
  ?backoff_ms:float ->
  ?jitter_seed:int ->
  ?sleep:(float -> unit) ->
  (unit -> 'a) ->
  'a
(** Run [f], retrying on {e transient} {!Injected} faults up to
    [attempts] times total (default 3).  Waits between attempts follow
    decorrelated jitter: each wait is drawn uniformly from
    [\[backoff_ms, 3 × previous wait\]] (seeded by [jitter_seed], so a
    retry schedule is reproducible), capped at 100 ms, starting at
    [backoff_ms] (default 1 ms).  [sleep] receives each wait in
    milliseconds (default: the process-wide sleep, see {!set_sleep}).
    Permanent faults and every other exception propagate immediately;
    the last transient fault propagates once attempts are spent.
    @raise Invalid_argument if [attempts <= 0]. *)
