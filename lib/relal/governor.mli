(** Query governor: cooperative resource budgets for query evaluation.

    A {!budget} bounds a single request — a wall-clock deadline, a cap on
    rows produced by the executor (intermediate join/filter output plus
    final projection), and a cap on best-first expansions in preference
    selection.  Arming a budget with {!start} yields a governor that the
    executor's batch loops and the selection frontier loop feed with
    cheap cooperative checks ({!poll}, {!add_rows}, {!add_expansion});
    when any bound is crossed the governor raises {!Exhausted} carrying
    partial-progress statistics, so callers get "what was done so far"
    instead of a query that runs forever.

    The result-returning entry points ({!Perso.Personalize}'s [_r]
    functions) translate {!Exhausted} into the typed
    [Resource_exhausted] error; the degradation ladder retries under
    smaller personalization parameters before giving up. *)

type budget = {
  deadline_ms : float option;  (** wall-clock limit from {!start} *)
  max_rows : int option;  (** rows produced across operators *)
  max_expansions : int option;  (** best-first expansions in selection *)
}

val unlimited : budget
(** No bounds; a governor over it never raises. *)

val is_unlimited : budget -> bool

type progress = {
  exhausted : string;  (** which bound tripped: "deadline" | "rows" | "expansions" (empty in a snapshot) *)
  rows_produced : int;
  expansions : int;
  elapsed_ms : float;
}

exception Exhausted of progress

type t
(** An armed budget: start time plus mutable counters. *)

val start : budget -> t
(** Arm a budget now.  The deadline clock starts here. *)

val fork : t -> t
(** A handle onto the {e same} armed budget for a worker domain: forks
    share the row/expansion counters (atomics — consumption anywhere is
    charged once against the one global bound, no double counting) and
    the start time, but each fork amortizes its deadline polls on its
    own stride.  With batch-sized accounting no domain overshoots
    [max_rows] or the deadline by more than one batch. *)

val set_clock : (unit -> float) -> unit
(** Replace the process-wide clock (seconds, [Unix.gettimeofday]-like)
    that governors arm and poll against.  Deterministic simulation sets
    a virtual clock here so deadlines inside the whole engine trip on
    simulated time; restore with [set_clock real_clock] afterwards. *)

val real_clock : unit -> float
(** The default wall clock ([Unix.gettimeofday]). *)

val poll : t -> unit
(** Cooperative check; reads the clock every 64th call.
    @raise Exhausted past the deadline. *)

val add_rows : t -> int -> unit
(** Record [n] rows produced, then check bounds.  A batch-sized [n]
    (>= the poll stride) checks the deadline immediately rather than on
    the amortized stride — a single call can announce a huge product
    about to be materialized.
    @raise Exhausted over [max_rows] or past the deadline. *)

val add_expansion : t -> unit
(** Record one frontier expansion, then check bounds.
    @raise Exhausted over [max_expansions] or past the deadline. *)

val check_deadline : t -> unit
(** Immediate (non-amortized) deadline check. *)

val progress : ?exhausted:string -> t -> progress
(** Snapshot of the counters so far. *)

val elapsed_ms : t -> float

val pp_progress : Format.formatter -> progress -> unit

val progress_to_string : progress -> string
(** ["<what> after <n> rows, <m> expansions, <t> ms"]. *)
