(** Query evaluation.

    The executor consumes {e bound} queries (see {!Binder.bind}) and
    produces materialized results.  Two strategies are available:

    - [`Auto] (default): per-table selection pushdown, greedy hash-join
      ordering over the equi-join conjuncts, residual predicates applied
      as soon as their tuple variables are joined.  For DISTINCT queries
      whose qualification contains disjunctions — the shape the SQ
      integration method produces (paper §6) — the qualification is split
      into DNF branches, each executed as a conjunctive plan, and the
      branch results are unioned and de-duplicated; this is semantically
      equivalent under DISTINCT and avoids the cross-product blow-up a
      naive evaluation of SQ's FROM list would suffer.
    - [`Naive]: textbook semantics — cross product of the FROM list,
      filter, then the same post-pipeline.  Exponential; used as the test
      oracle on small data.

    Post-pipeline (both strategies): GROUP BY / aggregates (including
    [DEGREE_OF_CONJUNCTION]) / HAVING, ORDER BY, projection, DISTINCT,
    LIMIT. *)

exception Exec_error of string

type result = { cols : string array; rows : Value.t array list }
(** Output column names (SELECT order) and rows. *)

val set_pool : Putil.Dpool.t option -> unit
(** Arm (or disarm) the ambient domain pool for data-parallel
    evaluation.  With a pool of [n > 1] lanes, large row loops — scans,
    hash-join build/probe sides, index-NL probes, the final projection —
    are partitioned into contiguous ranges and merged back in range
    order, so results are {e byte-identical} to the sequential path at
    every pool size.  Budgets still hold: ranges charge a
    {!Governor.fork} of the armed governor (shared atomic counters), so
    no domain overshoots [max_rows] or the deadline by more than one
    batch.  Concurrent callers (server worker threads) are safe: a busy
    pool makes the caller fall back to its sequential loop. *)

val run :
  ?strategy:[ `Auto | `Naive | `Cost ] ->
  ?stats:Stats.t ->
  ?gov:Governor.t ->
  Database.t ->
  Sql_ast.query ->
  result
(** Evaluate a bound query.  [`Cost] behaves like [`Auto] but chooses the
    next join by estimated output size ([Stats.join_size]'s containment
    formula) instead of smallest input; pass a cached [?stats] to avoid
    recomputing statistics per query (one is created ad hoc otherwise).
    [?gov] arms a {!Governor} budget for the duration of the call: the
    batch loops check it cooperatively, and row production is charged at
    every operator output (joins, filters, projection).
    @raise Governor.Exhausted when the armed budget is exceeded;
    @raise Chaos.Injected under armed fault injection;
    @raise Exec_error on internal violations (which indicate an unbound
    query or an engine bug). *)

val result_equal_bag : result -> result -> bool
(** Bag equality of rows (column names ignored); the test oracle's notion
    of equivalence for unordered queries. *)

val result_equal_list : result -> result -> bool
(** Ordered row-list equality (for ORDER BY tests). *)

val sort_rows : result -> result
(** Rows sorted lexicographically — normalization helper for comparing
    unordered results. *)

val pp_result : ?max_rows:int -> Format.formatter -> result -> unit
(** Column-aligned textual table; prints at most [max_rows] rows
    (default 20) followed by an ellipsis line. *)
