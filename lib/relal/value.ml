type t =
  | Null
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool
  | Date of int

type ty = TInt | TFloat | TStr | TBool | TDate

let ty_of = function
  | Null -> None
  | Int _ -> Some TInt
  | Float _ -> Some TFloat
  | Str _ -> Some TStr
  | Bool _ -> Some TBool
  | Date _ -> Some TDate

let ty_name = function
  | TInt -> "int"
  | TFloat -> "float"
  | TStr -> "string"
  | TBool -> "bool"
  | TDate -> "date"

let compatible a b =
  match (a, b) with
  | TInt, TFloat | TFloat, TInt -> true
  | _ -> a = b

let compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Null, _ -> -1
  | _, Null -> 1
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | Str x, Str y -> String.compare x y
  | Bool x, Bool y -> Bool.compare x y
  | Date x, Date y -> Int.compare x y
  | _ ->
      invalid_arg
        (Printf.sprintf "Value.compare: incompatible values (%s, %s)"
           (match ty_of a with Some t -> ty_name t | None -> "null")
           (match ty_of b with Some t -> ty_name t | None -> "null"))

let equal a b =
  match (a, b) with
  | Null, Null -> true
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y
  | Int x, Float y | Float y, Int x -> float_of_int x = y
  | Str x, Str y -> String.equal x y
  | Bool x, Bool y -> x = y
  | Date x, Date y -> x = y
  | _ -> false

(* Must agree with [equal] across the Int/Float overlap: [Int x] and
   [Float (float_of_int x)] compare equal, so an integral float hashes
   through its integer image.  Hashing an immediate int does not allocate
   — the Int arm is the executor's join-probe hot path, so it must not
   box (the previous [Hashtbl.hash (Float.of_int x)] boxed a float per
   probe). *)
let hash = function
  | Null -> 0
  | Int x -> Hashtbl.hash x
  | Float x ->
      if Float.is_integer x && Float.abs x <= 1e15 then
        Hashtbl.hash (Float.to_int x)
      else Hashtbl.hash x
  | Str s -> Hashtbl.hash s
  | Bool b -> Hashtbl.hash b
  | Date d -> Hashtbl.hash (d lxor 0x44)

let days_in_month y m =
  match m with
  | 1 | 3 | 5 | 7 | 8 | 10 | 12 -> 31
  | 4 | 6 | 9 | 11 -> 30
  | 2 -> if (y mod 4 = 0 && y mod 100 <> 0) || y mod 400 = 0 then 29 else 28
  | _ -> invalid_arg "Value.days_in_month"

let date_of_ymd y m d =
  if m < 1 || m > 12 then invalid_arg "Value.date_of_ymd: month out of range";
  if d < 1 || d > days_in_month y m then
    invalid_arg "Value.date_of_ymd: day out of range";
  Date ((y * 10000) + (m * 100) + d)

let parse_date s =
  let try_ints l = try Some (List.map int_of_string l) with Failure _ -> None in
  match String.split_on_char '-' s with
  | [ y; m; d ] -> (
      match try_ints [ y; m; d ] with
      | Some [ y; m; d ] -> ( try Some (date_of_ymd y m d) with Invalid_argument _ -> None)
      | _ -> None)
  | _ -> (
      match String.split_on_char '/' s with
      | [ d; m; y ] -> (
          match try_ints [ d; m; y ] with
          | Some [ d; m; y ] -> (
              try Some (date_of_ymd y m d) with Invalid_argument _ -> None)
          | _ -> None)
      | _ -> None)

let to_string = function
  | Null -> "NULL"
  | Int i -> string_of_int i
  | Float f ->
      (* Keep a trailing ".0" so the value re-parses as a float. *)
      let s = Printf.sprintf "%.12g" f in
      if String.contains s '.' || String.contains s 'e' || String.contains s 'n'
      then s
      else s ^ ".0"
  | Str s ->
      let buf = Buffer.create (String.length s + 2) in
      Buffer.add_char buf '\'';
      String.iter
        (fun c ->
          if c = '\'' then Buffer.add_string buf "''" else Buffer.add_char buf c)
        s;
      Buffer.add_char buf '\'';
      Buffer.contents buf
  | Bool b -> if b then "TRUE" else "FALSE"
  | Date d ->
      Printf.sprintf "'%04d-%02d-%02d'" (d / 10000) (d / 100 mod 100) (d mod 100)

let pp fmt v = Format.pp_print_string fmt (to_string v)
