(** Growable array of rows — the storage representation shared by
    {!Table} (base relations) and {!Exec} (intermediate batches).

    Rows are [Value.t array]s; the batch caches its row count so that
    cardinality questions are O(1) — never a list traversal.  The
    executor addresses batch rows by integer {e row id} (position), which
    is what makes late materialization possible: joins carry row ids and
    only the final projection touches values. *)

type t

val create : ?cap:int -> unit -> t
(** Empty batch, optionally pre-sized. *)

val length : t -> int
(** Cached row count. *)

val add : t -> Value.t array -> unit
(** Append a row (amortized O(1), doubling growth). *)

val get : t -> int -> Value.t array
(** [get b i] is row [i] (0-based).  The returned array must not be
    mutated.  @raise Invalid_argument if out of bounds. *)

val unsafe_rows : t -> Value.t array array
(** The physical storage.  Only indices [0 .. length b - 1] hold live
    rows; the tail is garbage.  Callers must not mutate it — exposed so
    hot loops can skip the bounds check in {!get}. *)

val of_rows : Value.t array array -> t
(** Wrap an array of rows (takes ownership; no copy). *)

val of_list : Value.t array list -> t
val to_list : t -> Value.t array list

val iter : (Value.t array -> unit) -> t -> unit
val fold : ('a -> Value.t array -> 'a) -> 'a -> t -> 'a

val clear : t -> unit
(** Drop all rows and release storage. *)
