open Sql_ast

exception Exec_error of string

let err fmt = Format.kasprintf (fun s -> raise (Exec_error s)) fmt

type result = { cols : string array; rows : Value.t array list }

(* --------------------------------------------------------------------- *)
(* Cooperative governor hooks                                             *)
(* --------------------------------------------------------------------- *)

(* The governor is ambient for the duration of one [run] (set under
   [Fun.protect]): the evaluator is a web of mutually recursive
   functions (derived tables, DNF branches, UNION ALL) that all share
   the same request budget, so threading a parameter through every one
   of them buys nothing but noise.  Disarmed, each hook is a single
   load-and-branch. *)
let governor : Governor.t option ref = ref None

let g_poll () = match !governor with None -> () | Some g -> Governor.poll g

let g_rows n = match !governor with None -> () | Some g -> Governor.add_rows g n

(* --------------------------------------------------------------------- *)
(* Data-parallel layer                                                    *)
(* --------------------------------------------------------------------- *)

(* Like the governor, the domain pool is ambient: armed once per process
   (CLI flag / server config), consulted by the operators that can
   partition their row loops.  Every parallel path splits rows into
   contiguous index ranges, computes per-range results on the pool, and
   concatenates them in range order — so output is byte-identical to the
   sequential loop and the sequential code remains the [None] /
   pool-busy fallback, not a separate semantics.

   The compiled readers and predicates the ranges share are pure row ->
   value closures over immutable storage batches; worker domains only
   ever read them.  Budget accounting inside a range goes through a
   [Governor.fork] of the ambient governor (shared atomic counters, a
   per-domain poll stride) — the ambient [ref] itself is never touched
   from a worker domain. *)
let pool : Putil.Dpool.t option ref = ref None

let set_pool p = pool := p

(* Below this many rows the chunk dispatch overhead beats the win. *)
let min_par_rows = 2048

(* Chunk geometry: a few chunks per lane so the atomic-cursor stealing
   evens out skew, but never chunks so small the dispatch dominates. *)
let plan_chunks lanes n =
  let csize = max 512 ((n + (lanes * 4) - 1) / (lanes * 4)) in
  (csize, (n + csize - 1) / csize)

let par_pool n =
  match !pool with
  | Some p when Putil.Dpool.size p > 1 && n >= min_par_rows -> Some p
  | _ -> None

(* A forked-governor (poll, charge) pair for one chunk. *)
let fork_hooks parent =
  match parent with
  | None -> (ignore, fun (_ : int) -> ())
  | Some g ->
      let g = Governor.fork g in
      ((fun () -> Governor.poll g), fun n -> Governor.add_rows g n)

let concat_int_arrays (parts : int array array) =
  let total = Array.fold_left (fun a p -> a + Array.length p) 0 parts in
  let out = Array.make total 0 in
  let off = ref 0 in
  Array.iter
    (fun p ->
      Array.blit p 0 out !off (Array.length p);
      off := !off + Array.length p)
    parts;
  out

(* --------------------------------------------------------------------- *)
(* Working relations: array-backed views with late materialization        *)
(* --------------------------------------------------------------------- *)

(* An intermediate relation is a *view* over source batches: [parts] are
   the underlying storage batches (base-table storage shared in place, or
   batches materialized for derived tables / DNF merges), and [rids]
   holds, per part, the row id each output row takes in that part's
   batch.  Joins therefore only produce int row-id columns; tuple values
   are touched when a predicate, grouping key or the final projection
   reads them — never re-copied at every join step. *)

type part = { batch : Batch.t; off : int; width : int }

type vrel = {
  header : (string * string) array;  (* tuple-variable.column per column *)
  parts : part array;
  nrows : int;  (* cached count — no List.length anywhere *)
  rids : int array array;  (* rids.(p).(r): row id of output row r in parts.(p) *)
}

let base_header alias tbl =
  Array.map
    (fun c -> (alias, String.lowercase_ascii c.Schema.cname))
    (Schema.columns (Table.schema tbl))

let vrel_of_batch header batch =
  let n = Batch.length batch in
  {
    header;
    parts = [| { batch; off = 0; width = Array.length header } |];
    nrows = n;
    rids = [| Array.init n Fun.id |];
  }

(* A single-part view whose rows are the given batch row ids — how an
   index probe materializes: ids only, no row copies. *)
let vrel_of_ids header batch ids =
  {
    header;
    parts = [| { batch; off = 0; width = Array.length header } |];
    nrows = Array.length ids;
    rids = [| ids |];
  }

let vrel_of_table alias tbl =
  Chaos.point Chaos.Scan;
  vrel_of_batch (base_header alias tbl) (Table.batch tbl)

let empty_vrel header =
  {
    header;
    parts = [| { batch = Batch.create (); off = 0; width = Array.length header } |];
    nrows = 0;
    rids = [| [||] |];
  }

let col_idx v (a : attr) =
  let n = Array.length v.header in
  let rec go i =
    if i >= n then None
    else begin
      let tv, c = v.header.(i) in
      if tv = a.tv && c = a.col then Some i else go (i + 1)
    end
  in
  go 0

let col_idx_exn v a =
  match col_idx v a with
  | Some i -> i
  | None -> err "executor: unresolved attribute %s.%s" a.tv a.col

(* Compiled column accessor: resolves the part and local column once and
   returns a closure reading the value of output row [r].  This is the
   cached form of the seed's per-row [col_idx] + [Array.append]-widened
   row indexing. *)
let reader v gi =
  let np = Array.length v.parts in
  let rec find p =
    if p >= np then err "executor: column %d out of range" gi
    else begin
      let { batch; off; width } = v.parts.(p) in
      if gi >= off && gi < off + width then begin
        let rows = Batch.unsafe_rows batch in
        let rid = v.rids.(p) in
        let lc = gi - off in
        fun r -> rows.(rid.(r)).(lc)
      end
      else find (p + 1)
    end
  in
  find 0

let attr_reader v a = reader v (col_idx_exn v a)

(* Keep output rows whose index is in [sel] (in [sel] order). *)
let select_rows v sel =
  let n = Array.length sel in
  {
    v with
    nrows = n;
    rids = Array.map (fun rid -> Array.init n (fun i -> rid.(sel.(i)))) v.rids;
  }

(* Concatenate two views row-wise under selection vectors: output row i
   is left row lsel.(i) widened with right row rsel.(i) — except nothing
   is widened; both sides' rid columns are gathered and the right part
   offsets shifted.  This is the join "materialization" step: O(parts)
   int-array gathers, no value copies. *)
let join_vrels left lsel right rsel =
  let lw = Array.length left.header in
  let n = Array.length lsel in
  let gather rid sel = Array.init n (fun i -> rid.(sel.(i))) in
  {
    header = Array.append left.header right.header;
    parts =
      Array.append left.parts
        (Array.map (fun p -> { p with off = p.off + lw }) right.parts);
    nrows = n;
    rids =
      Array.append
        (Array.map (fun rid -> gather rid lsel) left.rids)
        (Array.map (fun rid -> gather rid rsel) right.rids);
  }

(* Like [join_vrels] but the right side is a raw base batch whose row ids
   are already the selection vector (index-nested-loop output). *)
let append_base left lsel bh batch bsel =
  let lw = Array.length left.header in
  let n = Array.length lsel in
  let gather rid = Array.init n (fun i -> rid.(lsel.(i))) in
  {
    header = Array.append left.header bh;
    parts =
      Array.append left.parts
        [| { batch; off = lw; width = Array.length bh } |];
    nrows = n;
    rids = Array.append (Array.map gather left.rids) [| bsel |];
  }

(* Growable int array for selection vectors and rid-pair output. *)
module Ibuf = struct
  type t = { mutable a : int array; mutable n : int }

  let create () = { a = Array.make 64 0; n = 0 }

  let add b i =
    if b.n = Array.length b.a then begin
      let na = Array.make (2 * b.n) 0 in
      Array.blit b.a 0 na 0 b.n;
      b.a <- na
    end;
    b.a.(b.n) <- i;
    b.n <- b.n + 1

  let to_array b = Array.sub b.a 0 b.n
end

(* A FROM item the join loop has not touched yet.  Base tables stay lazy
   so the loop can pick index access paths (index-equality materialization
   and index-nested-loop joins) instead of scanning. *)
type source =
  | S_mat of vrel
  | S_base of { alias : string; tbl : Table.t }

let source_card = function
  | S_mat v -> v.nrows
  | S_base { tbl; _ } -> Table.cardinality tbl

let source_header = function
  | S_mat v -> v.header
  | S_base { alias; tbl } -> base_header alias tbl

(* --------------------------------------------------------------------- *)
(* Row-key hash tables (for distinct, grouping)                           *)
(* --------------------------------------------------------------------- *)

module Key = struct
  type t = Value.t array

  let equal a b =
    Array.length a = Array.length b
    &&
    let rec go i =
      i >= Array.length a || (Value.equal a.(i) b.(i) && go (i + 1))
    in
    go 0

  let hash a = Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 a
end

module KH = Hashtbl.Make (Key)

(* Int-keyed table for the join build side: keys are combined value
   hashes (no boxed key arrays); collisions are resolved by comparing the
   actual key columns at probe time. *)
module IH = Hashtbl.Make (struct
  type t = int

  let equal = Int.equal
  let hash = Hashtbl.hash
end)

(* --------------------------------------------------------------------- *)
(* Predicate evaluation                                                   *)
(* --------------------------------------------------------------------- *)

let eval_cmp op a b =
  match op with
  | Eq -> Value.equal a b
  | Ne -> not (Value.equal a b)
  | Lt -> Value.compare a b < 0
  | Le -> Value.compare a b <= 0
  | Gt -> Value.compare a b > 0
  | Ge -> Value.compare a b >= 0

(* Compile a predicate into a closure over row indices of [v].  Column
   positions are resolved once here, not per row.  All attributes must
   resolve in [v]'s header. *)
let compile_pred v p =
  let scalar = function
    | S_const c -> fun _ -> c
    | S_attr a -> attr_reader v a
  in
  let rec go = function
    | P_true -> fun _ -> true
    | P_false -> fun _ -> false
    | P_not p ->
        let f = go p in
        fun r -> not (f r)
    | P_and ps ->
        let fs = List.map go ps in
        fun r -> List.for_all (fun f -> f r) fs
    | P_or ps ->
        let fs = List.map go ps in
        fun r -> List.exists (fun f -> f r) fs
    | P_cmp (op, l, r) ->
        let fl = scalar l and fr = scalar r in
        fun row -> eval_cmp op (fl row) (fr row)
  in
  go p

let rec pred_tvs acc = function
  | P_true | P_false -> acc
  | P_not p -> pred_tvs acc p
  | P_and ps | P_or ps -> List.fold_left pred_tvs acc ps
  | P_cmp (_, l, r) ->
      let s acc = function S_attr a -> a.tv :: acc | S_const _ -> acc in
      s (s acc l) r

let tvs_of_pred p = List.sort_uniq String.compare (pred_tvs [] p)

(* A constant predicate (no attributes) evaluated against no row. *)
let const_pred_holds p = compile_pred (empty_vrel [||]) p 0

(* --------------------------------------------------------------------- *)
(* FROM materialization                                                   *)
(* --------------------------------------------------------------------- *)

let rec source_of_from ?cost db item : string * source =
  match item with
  | F_rel r -> (
      match Database.find_table db r.rel with
      | None -> err "executor: unknown table %s" r.rel
      | Some t -> (r.alias, S_base { alias = r.alias; tbl = t }))
  | F_derived (c, alias) ->
      let res = run_compound ?cost db c in
      let header = Array.map (fun c -> (alias, c)) res.cols in
      (alias, S_mat (vrel_of_batch header (Batch.of_list res.rows)))

and materialize_from ?cost db item : vrel =
  match source_of_from ?cost db item with
  | _, S_mat v -> v
  | _, S_base { alias; tbl } -> vrel_of_table alias tbl

(* --------------------------------------------------------------------- *)
(* Conjunctive planning: pushdown + greedy rid joins                      *)
(* --------------------------------------------------------------------- *)

and filter_vrel v preds =
  match preds with
  | [] -> v
  | _ -> (
      let f = compile_pred v (conj preds) in
      match par_filter v f with
      | Some sel ->
          if Array.length sel = v.nrows then v else select_rows v sel
      | None ->
          let sel = Ibuf.create () in
          for r = 0 to v.nrows - 1 do
            g_poll ();
            if f r then Ibuf.add sel r
          done;
          g_rows sel.Ibuf.n;
          if sel.Ibuf.n = v.nrows then v else select_rows v (Ibuf.to_array sel))

(* Partitioned scan: contiguous row ranges filtered on the pool, their
   selection vectors concatenated in range order — the very same row
   order the sequential loop emits. *)
and par_filter v f =
  match par_pool v.nrows with
  | None -> None
  | Some p ->
      let csize, nchunks = plan_chunks (Putil.Dpool.size p) v.nrows in
      let parent = !governor in
      let chunk i =
        let poll, charge = fork_hooks parent in
        let lo = i * csize and hi = min v.nrows ((i + 1) * csize) in
        let sel = Ibuf.create () in
        for r = lo to hi - 1 do
          poll ();
          if f r then Ibuf.add sel r
        done;
        charge sel.Ibuf.n;
        Ibuf.to_array sel
      in
      Option.map concat_int_arrays (Putil.Dpool.try_map p nchunks chunk)

(* Hash join producing row-id pairs.  The build side is bucketed by a
   combined int hash of its key columns (no per-row key arrays); probe
   hits verify the actual key values.  Output rows are (left-id,
   right-id) selection vectors handed to [join_vrels] — tuples are not
   widened here. *)
and hash_join left right keys =
  let lread =
    Array.of_list (List.map (fun (a, _) -> attr_reader left a) keys)
  in
  let rread =
    Array.of_list (List.map (fun (_, b) -> attr_reader right b) keys)
  in
  let nk = Array.length lread in
  (* Build on the smaller input. *)
  let swap = right.nrows < left.nrows in
  let bread, bn, pread, pn =
    if swap then (rread, right.nrows, lread, left.nrows)
    else (lread, left.nrows, rread, right.nrows)
  in
  let hash_row reads r =
    let h = ref 17 in
    for i = 0 to nk - 1 do
      h := (!h * 31) + Value.hash (reads.(i) r)
    done;
    !h land max_int
  in
  Chaos.point Chaos.Join_build;
  (* Partitioned build: the build rows are carved into contiguous index
     ranges, one private table per range — no shared mutable table, no
     locks.  A range's bucket lists are in *descending* build-row order
     (rows inserted ascending, consed onto the list), exactly like the
     single sequential table's; because the ranges are contiguous and
     probed from the last partition down to the first, the candidate
     order each probe row sees is globally descending — the same
     candidate sequence, hence the same emission bytes, as the
     one-table sequential build. *)
  let build_range poll lo hi =
    let h = IH.create (max 16 (hi - lo)) in
    if nk = 1 then begin
      let bread0 = bread.(0) in
      for r = lo to hi - 1 do
        poll ();
        let k = Value.hash (bread0 r) land max_int in
        match IH.find h k with
        | l -> l := r :: !l
        | exception Not_found -> IH.add h k (ref [ r ])
      done
    end
    else
      for r = lo to hi - 1 do
        poll ();
        let k = hash_row bread r in
        match IH.find h k with
        | l -> l := r :: !l
        | exception Not_found -> IH.add h k (ref [ r ])
      done;
    h
  in
  let tables =
    match par_pool bn with
    | None -> [| build_range g_poll 0 bn |]
    | Some p -> (
        (* One partition per lane (not per chunk): every probe row
           visits every partition, so the partition count is a probe
           cost, not a stealing knob. *)
        let lanes = Putil.Dpool.size p in
        let csize = max 1 ((bn + lanes - 1) / lanes) in
        let nparts = (bn + csize - 1) / csize in
        let parent = !governor in
        let part i =
          let poll, _ = fork_hooks parent in
          build_range poll (i * csize) (min bn ((i + 1) * csize))
        in
        match Putil.Dpool.try_map p nparts part with
        | Some ts -> ts
        | None -> [| build_range g_poll 0 bn |])
  in
  let ntab = Array.length tables in
  Chaos.point Chaos.Join_probe;
  (* Single-key joins (the overwhelmingly common case) skip the key loop:
     one hash, one reader call, one equality per candidate.  [find] +
     exception rather than [find_opt] so probe hits allocate nothing, and
     the emit loops take the probe row as an argument so their closures
     are built once, not per row. *)
  let probe_range poll lo hi =
    let bsel = Ibuf.create () and psel = Ibuf.create () in
    if nk = 1 then begin
      let bread0 = bread.(0) and pread0 = pread.(0) in
      let rec emit pr pv = function
        | [] -> ()
        | br :: tl ->
            if Value.equal (bread0 br) pv then begin
              Ibuf.add bsel br;
              Ibuf.add psel pr
            end;
            emit pr pv tl
      in
      for pr = lo to hi - 1 do
        poll ();
        let pv = pread0 pr in
        let k = Value.hash pv land max_int in
        for ti = ntab - 1 downto 0 do
          match IH.find tables.(ti) k with
          | cands -> emit pr pv !cands
          | exception Not_found -> ()
        done
      done
    end
    else begin
      let rec keys_eq br pr i =
        i >= nk
        || (Value.equal (bread.(i) br) (pread.(i) pr) && keys_eq br pr (i + 1))
      in
      let rec emit pr = function
        | [] -> ()
        | br :: tl ->
            if keys_eq br pr 0 then begin
              Ibuf.add bsel br;
              Ibuf.add psel pr
            end;
            emit pr tl
      in
      for pr = lo to hi - 1 do
        poll ();
        let k = hash_row pread pr in
        for ti = ntab - 1 downto 0 do
          match IH.find tables.(ti) k with
          | cands -> emit pr !cands
          | exception Not_found -> ()
        done
      done
    end;
    (bsel, psel)
  in
  let seq_probe () =
    let bsel, psel = probe_range g_poll 0 pn in
    g_rows psel.Ibuf.n;
    (Ibuf.to_array bsel, Ibuf.to_array psel)
  in
  let pairs =
    match par_pool pn with
    | None -> [| seq_probe () |]
    | Some p -> (
        let csize, nchunks = plan_chunks (Putil.Dpool.size p) pn in
        let parent = !governor in
        let chunk i =
          let poll, charge = fork_hooks parent in
          let lo = i * csize and hi = min pn ((i + 1) * csize) in
          let bsel, psel = probe_range poll lo hi in
          charge psel.Ibuf.n;
          (Ibuf.to_array bsel, Ibuf.to_array psel)
        in
        match Putil.Dpool.try_map p nchunks chunk with
        | Some parts -> parts
        | None -> [| seq_probe () |])
  in
  let bsel = concat_int_arrays (Array.map fst pairs)
  and psel = concat_int_arrays (Array.map snd pairs) in
  let lsel, rsel = if swap then (psel, bsel) else (bsel, psel) in
  join_vrels left lsel right rsel

and cross_product left right =
  let n = left.nrows * right.nrows in
  (* Account for the output *before* allocating it: a budget of a few
     rows must stop a runaway cross product without first building its
     selection vectors. *)
  g_rows n;
  let lsel = Array.make n 0 and rsel = Array.make n 0 in
  let k = ref 0 in
  for i = 0 to left.nrows - 1 do
    for j = 0 to right.nrows - 1 do
      lsel.(!k) <- i;
      rsel.(!k) <- j;
      incr k
    done;
    g_poll ()
  done;
  join_vrels left lsel right rsel

(* Materialize a base table under its local predicates, choosing an
   access path: if some equality predicate lands on an indexed column the
   matching row ids are fetched through the index and the remaining
   predicates are applied to them; otherwise a filtered scan.  Either way
   the result is a view over the table's storage batch — no row copies. *)
and materialize_base ~preds alias tbl : vrel =
  let header = base_header alias tbl in
  let index_probe =
    List.find_map
      (fun p ->
        match p with
        | P_cmp (Eq, S_attr a, S_const v) | P_cmp (Eq, S_const v, S_attr a)
          when Table.has_index tbl a.col ->
            Some (a.col, v, p)
        | _ -> None)
      preds
  in
  match index_probe with
  | Some (col, v, used) ->
      Chaos.point Chaos.Scan;
      let rest = List.filter (fun p -> p != used) preds in
      let ids = Array.of_list (Table.lookup_ids tbl col v) in
      filter_vrel (vrel_of_ids header (Table.batch tbl) ids) rest
  | None -> filter_vrel (vrel_of_table alias tbl) preds

(* Index-nested-loop join: [keys] are (probe-side, base-side) equi-join
   attributes; rows of [current] probe the base table's index on the
   first indexed base column, and the remaining key equalities are
   checked on each match.  Cost is proportional to |current| plus the
   output — never a scan of the base table — and the output is row-id
   pairs into [current] and the table batch. *)
and index_nl_join current keys alias tbl : vrel option =
  let indexed, others =
    List.partition
      (fun ((_ : attr), (b : attr)) -> Table.has_index tbl b.col)
      keys
  in
  match indexed with
  | [] -> None
  | (pa, pb) :: rest_indexed ->
      let others = rest_indexed @ others in
      let pread = attr_reader current pa in
      let bh = base_header alias tbl in
      let brows = Batch.unsafe_rows (Table.batch tbl) in
      let base_idx (b : attr) =
        match Schema.col_index (Table.schema tbl) b.col with
        | Some i -> i
        | None -> err "executor: no column %s in %s" b.col alias
      in
      let checks =
        Array.of_list
          (List.map (fun (a, b) -> (attr_reader current a, base_idx b)) others)
      in
      let nc = Array.length checks in
      let probe =
        match Table.prober tbl pb.col with
        | Some p -> p
        | None -> err "executor: index vanished on %s.%s" alias pb.col
      in
      Chaos.point Chaos.Join_probe;
      (* The emit loops take [r] as an argument so the closures are
         allocated once, not per probed row.  The index prober is a pure
         hash lookup over the (immutable) table index, so probe ranges
         parallelize like scan ranges: contiguous chunks, concatenated
         in chunk order. *)
      let probe_range poll lo hi =
        let csel = Ibuf.create () and bsel = Ibuf.create () in
        if nc = 0 then begin
          let rec emit r = function
            | [] -> ()
            | bi :: tl ->
                Ibuf.add csel r;
                Ibuf.add bsel bi;
                emit r tl
          in
          for r = lo to hi - 1 do
            poll ();
            emit r (probe (pread r))
          done
        end
        else begin
          let rec check_ok r bi i =
            i >= nc
            ||
            let cread, bci = checks.(i) in
            Value.equal (cread r) brows.(bi).(bci) && check_ok r bi (i + 1)
          in
          let rec emit r = function
            | [] -> ()
            | bi :: tl ->
                if check_ok r bi 0 then begin
                  Ibuf.add csel r;
                  Ibuf.add bsel bi
                end;
                emit r tl
          in
          for r = lo to hi - 1 do
            poll ();
            emit r (probe (pread r))
          done
        end;
        (csel, bsel)
      in
      let seq_probe () =
        let csel, bsel = probe_range g_poll 0 current.nrows in
        g_rows csel.Ibuf.n;
        (Ibuf.to_array csel, Ibuf.to_array bsel)
      in
      let pairs =
        match par_pool current.nrows with
        | None -> [| seq_probe () |]
        | Some p -> (
            let csize, nchunks =
              plan_chunks (Putil.Dpool.size p) current.nrows
            in
            let parent = !governor in
            let chunk i =
              let poll, charge = fork_hooks parent in
              let lo = i * csize
              and hi = min current.nrows ((i + 1) * csize) in
              let csel, bsel = probe_range poll lo hi in
              charge csel.Ibuf.n;
              (Ibuf.to_array csel, Ibuf.to_array bsel)
            in
            match Putil.Dpool.try_map p nchunks chunk with
            | Some parts -> parts
            | None -> [| seq_probe () |])
      in
      let csel = concat_int_arrays (Array.map fst pairs)
      and bsel = concat_int_arrays (Array.map snd pairs) in
      Some (append_base current csel bh (Table.batch tbl) bsel)

(* Evaluate a conjunctive block: [sources] is an association
   (tv -> source) — base tables lazy, derived tables materialized;
   [conjuncts] the predicate factors.  Returns the joined vrel covering
   every tv in [sources].  With [?cost] statistics, the next join is the
   one with the smallest estimated output (System-R containment formula);
   without, the greedy smallest-input heuristic. *)
and join_conjunctive ?cost (sources : (string * source) list) conjuncts : vrel =
  (* Classify conjuncts. *)
  let local, joins, residual =
    List.fold_left
      (fun (local, joins, residual) p ->
        match p with
        | P_cmp (Eq, S_attr a, S_attr b) when a.tv <> b.tv ->
            (local, (a, b) :: joins, residual)
        | _ -> (
            match tvs_of_pred p with
            | [ tv ] -> ((tv, p) :: local, joins, residual)
            | [] -> (local, joins, p :: residual) (* constant predicate *)
            | _ -> (local, joins, p :: residual)))
      ([], [], []) conjuncts
  in
  (* Constant predicates: a constant FALSE empties everything. *)
  let const_preds, residual =
    List.partition (fun p -> tvs_of_pred p = []) residual
  in
  let const_ok = List.for_all const_pred_holds const_preds in
  (* Pushdown local filters: any tv carrying one is materialized through
     its best access path; unfiltered base tables stay lazy so the join
     loop can probe them with index-nested loops. *)
  let sources =
    List.map
      (fun (tv, src) ->
        let preds =
          List.filter_map (fun (t, p) -> if t = tv then Some p else None) local
        in
        if not const_ok then (tv, S_mat (empty_vrel (source_header src)))
        else
          match (src, preds) with
          | S_base _, [] -> (tv, src)
          | S_base { alias; tbl }, preds ->
              (tv, S_mat (materialize_base ~preds alias tbl))
          | S_mat v, preds -> (tv, S_mat (filter_vrel v preds)))
      sources
  in
  let force = function
    | S_mat v -> v
    | S_base { alias; tbl } -> vrel_of_table alias tbl
  in
  match sources with
  | [] -> err "executor: empty FROM"
  | _ ->
      let remaining = ref sources in
      let joins = ref joins in
      let residual = ref residual in
      (* Joined tuple variables, as a hash set: the join-ordering loop
         tests membership per edge per round. *)
      let joined_tvs : (string, unit) Hashtbl.t = Hashtbl.create 8 in
      let is_joined tv = Hashtbl.mem joined_tvs tv in
      let mark_joined tv = Hashtbl.replace joined_tvs tv () in
      (* Start from the smallest (estimated) relation. *)
      let smallest () =
        List.fold_left
          (fun best (tv, src) ->
            match best with
            | None -> Some (tv, src)
            | Some (_, bsrc) ->
                if source_card src < source_card bsrc then Some (tv, src)
                else best)
          None !remaining
      in
      let tv0, src0 = Option.get (smallest ()) in
      remaining := List.remove_assoc tv0 !remaining;
      let current = ref (force src0) in
      mark_joined tv0;
      let apply_ready_residuals () =
        let ready, rest =
          List.partition
            (fun p -> List.for_all is_joined (tvs_of_pred p))
            !residual
        in
        residual := rest;
        if ready <> [] then current := filter_vrel !current ready
      in
      apply_ready_residuals ();
      while !remaining <> [] do
        (* Find join edges from the joined set to a single new tv. *)
        let edge_groups = Hashtbl.create 8 in
        List.iter
          (fun (a, b) ->
            let a_in = is_joined a.tv and b_in = is_joined b.tv in
            if a_in && not b_in then begin
              let l = try Hashtbl.find edge_groups b.tv with Not_found -> [] in
              Hashtbl.replace edge_groups b.tv ((a, b) :: l)
            end
            else if b_in && not a_in then begin
              let l = try Hashtbl.find edge_groups a.tv with Not_found -> [] in
              Hashtbl.replace edge_groups a.tv ((b, a) :: l)
            end)
          !joins;
        let next =
          (* Rank joinable relations: with statistics, by estimated join
             output |cur|·|R| / max(ndv); otherwise by raw input size. *)
          let score src keys =
            match cost with
            | None -> float_of_int (source_card src)
            | Some stats -> (
                let cur = float_of_int !current.nrows in
                match (src, keys) with
                | S_base { tbl; _ }, (_, (b : attr)) :: _ -> (
                    let tname = Schema.name (Table.schema tbl) in
                    match Stats.ndv stats tname b.col with
                    | n ->
                        cur *. float_of_int (Table.cardinality tbl)
                        /. float_of_int (max 1 n)
                    | exception Invalid_argument _ ->
                        cur *. float_of_int (Table.cardinality tbl))
                | _ ->
                    (* Materialized input: assume a key join (output ≈
                       the current side). *)
                    cur)
          in
          Hashtbl.fold
            (fun tv keys best ->
              match List.assoc_opt tv !remaining with
              | None -> best
              | Some src -> (
                  let s = score src keys in
                  match best with
                  | Some (_, _, _, bs) when bs <= s -> best
                  | _ -> Some (tv, src, keys, s)))
            edge_groups None
          |> Option.map (fun (tv, src, keys, _) -> (tv, src, keys))
        in
        (match next with
        | Some (tv, src, keys) ->
            (* keys are (already-joined attr, new attr) pairs.  Against a
               lazy base table with an index on a join column, probe with
               an index-nested loop; otherwise hash join the
               materialization. *)
            let joined =
              match src with
              | S_base { alias; tbl } -> (
                  match index_nl_join !current keys alias tbl with
                  | Some v -> v
                  | None -> hash_join !current (force src) keys)
              | S_mat v -> hash_join !current v keys
            in
            current := joined;
            mark_joined tv;
            remaining := List.remove_assoc tv !remaining;
            (* The join keys are now satisfied; drop them so the
               internal-edge sweep below does not re-filter on them. *)
            joins :=
              List.filter
                (fun (a, b) ->
                  not
                    (List.exists
                       (fun (ka, kb) ->
                         (equal_attr a ka && equal_attr b kb)
                         || (equal_attr a kb && equal_attr b ka))
                       keys))
                !joins
        | None ->
            (* No connecting edge: cartesian step with the smallest rest. *)
            let tv, src = Option.get (smallest ()) in
            current := cross_product !current (force src);
            mark_joined tv;
            remaining := List.remove_assoc tv !remaining);
        (* Enforce any join edge that has become internal (both sides
           joined) but was not one of the hash keys. *)
        let internal, external_ =
          List.partition (fun (a, b) -> is_joined a.tv && is_joined b.tv) !joins
        in
        joins := external_;
        if internal <> [] then
          current :=
            filter_vrel !current
              (List.map (fun (a, b) -> P_cmp (Eq, S_attr a, S_attr b)) internal);
        apply_ready_residuals ()
      done;
      apply_ready_residuals ();
      if !residual <> [] then
        err "executor: residual predicates with unknown tuple variables";
      !current

(* --------------------------------------------------------------------- *)
(* Aggregation                                                            *)
(* --------------------------------------------------------------------- *)

(* [rows] are output-row indices of [v] (one group). *)
and agg_of_rows v agg (rows : int list) =
  match agg with
  | A_count_star ->
      let rec len acc = function [] -> acc | _ :: t -> len (acc + 1) t in
      Value.Int (len 0 rows)
  | A_count a ->
      let read = attr_reader v a in
      Value.Int
        (List.fold_left
           (fun n r -> if read r <> Value.Null then n + 1 else n)
           0 rows)
  | A_sum a ->
      let read = attr_reader v a in
      let fsum, is_float =
        List.fold_left
          (fun (acc, isf) r ->
            match read r with
            | Value.Int v -> (acc +. float_of_int v, isf)
            | Value.Float v -> (acc +. v, true)
            | Value.Null -> (acc, isf)
            | v -> err "sum over non-numeric value %s" (Value.to_string v))
          (0., false) rows
      in
      if is_float then Value.Float fsum else Value.Int (int_of_float fsum)
  | A_min a ->
      let read = attr_reader v a in
      List.fold_left
        (fun acc r ->
          let x = read r in
          if x = Value.Null then acc
          else
            match acc with
            | Value.Null -> x
            | m -> if Value.compare x m < 0 then x else m)
        Value.Null rows
  | A_max a ->
      let read = attr_reader v a in
      List.fold_left
        (fun acc r ->
          let x = read r in
          if x = Value.Null then acc
          else
            match acc with
            | Value.Null -> x
            | m -> if Value.compare x m > 0 then x else m)
        Value.Null rows
  | A_avg a ->
      let read = attr_reader v a in
      let sum, n =
        List.fold_left
          (fun (acc, n) r ->
            match read r with
            | Value.Int v -> (acc +. float_of_int v, n + 1)
            | Value.Float v -> (acc +. v, n + 1)
            | Value.Null -> (acc, n)
            | v -> err "avg over non-numeric value %s" (Value.to_string v))
          (0., 0) rows
      in
      if n = 0 then Value.Null else Value.Float (sum /. float_of_int n)
  | A_doi_conj (doi_a, pref_a) ->
      (* The paper's aggregate: combine, with the conjunctive function
         1 - prod(1 - d_i), the degrees of the *distinct* preferences the
         group satisfies (a preference can reach a row through several
         partial queries only once). *)
      let dread = attr_reader v doi_a and pread = attr_reader v pref_a in
      let seen = KH.create 8 in
      let prod = ref 1.0 in
      List.iter
        (fun r ->
          let key = [| pread r |] in
          if not (KH.mem seen key) then begin
            KH.add seen key ();
            let d =
              match dread r with
              | Value.Float f -> f
              | Value.Int i -> float_of_int i
              | v ->
                  err "degree_of_conjunction over non-numeric %s"
                    (Value.to_string v)
            in
            prod := !prod *. (1. -. d)
          end)
        rows;
      Value.Float (1. -. !prod)

and eval_having v rows h =
  let rec go = function
    | H_and hs -> List.for_all go hs
    | H_or hs -> List.exists go hs
    | H_cmp (op, l, r) ->
        let value = function
          | H_agg a -> agg_of_rows v a rows
          | H_const c -> c
        in
        eval_cmp op (value l) (value r)
  in
  go h

(* --------------------------------------------------------------------- *)
(* Post-pipeline: group / having / order / project / distinct / limit     *)
(* --------------------------------------------------------------------- *)

and post_pipeline (q : query) (w : vrel) : result =
  (* The projection produces [w.nrows] rows (before DISTINCT/LIMIT);
     account for them up front so a scan-only query is still governed. *)
  g_rows w.nrows;
  let has_aggs =
    List.exists (function Sel_agg _ -> true | _ -> false) q.select
    || q.having <> None
    || List.exists (function O_agg _, _ -> true | _ -> false) q.order_by
  in
  let grouped = q.group_by <> [] || has_aggs in
  let out_names = Array.of_list (select_output_names q) in
  let alias_idx name =
    let rec go i =
      if i >= Array.length out_names then
        err "ORDER BY alias %s not in output" name
      else if out_names.(i) = name then i
      else go (i + 1)
    in
    go 0
  in
  if (not grouped) && q.order_by = [] then begin
    (* Fast path for the plain SPJ shape (every UNION ALL branch the MQ
       integration method emits): no sort keys, so skip the (row, keys)
       tuple plumbing — project straight into the output list, applying
       DISTINCT as we go. *)
    let item_fns =
      Array.of_list
        (List.map
           (function
             | Sel_attr (a, _) -> attr_reader w a
             | Sel_const (v, _) -> fun _ -> v
             | Sel_agg _ -> err "aggregate in ungrouped projection")
           q.select)
    in
    let ni = Array.length item_fns in
    let project r = Array.init ni (fun i -> (item_fns.(i)) r) in
    (* Projection is embarrassingly parallel (readers are pure); the
       DISTINCT hash insertion is order-dependent, so under the pool
       rows are projected in parallel chunks and de-duplicated in a
       sequential pass over the chunks in range order — the same
       first-occurrence-wins order as the sequential loop. *)
    let projected_chunks () =
      match par_pool w.nrows with
      | None -> None
      | Some p ->
          let csize, nchunks = plan_chunks (Putil.Dpool.size p) w.nrows in
          let parent = !governor in
          let chunk i =
            let poll, _ = fork_hooks parent in
            let lo = i * csize and hi = min w.nrows ((i + 1) * csize) in
            Array.init (hi - lo) (fun j ->
                poll ();
                project (lo + j))
          in
          Putil.Dpool.try_map p nchunks chunk
    in
    let rows =
      if q.distinct then begin
        let seen = KH.create 64 in
        let acc = ref [] in
        let consider out =
          if not (KH.mem seen out) then begin
            KH.add seen out ();
            acc := out :: !acc
          end
        in
        (match projected_chunks () with
        | Some chunks -> Array.iter (fun c -> Array.iter consider c) chunks
        | None ->
            for r = 0 to w.nrows - 1 do
              g_poll ();
              consider (project r)
            done);
        List.rev !acc
      end
      else
        match projected_chunks () with
        | Some chunks ->
            Array.fold_right
              (fun c acc -> Array.fold_right (fun row acc -> row :: acc) c acc)
              chunks []
        | None -> List.init w.nrows project
    in
    let rows =
      match q.limit with
      | None -> rows
      | Some n -> List.filteri (fun i _ -> i < n) rows
    in
    { cols = out_names; rows }
  end
  else
  let projected_with_keys =
    if grouped then begin
      (* Group row indices by key. *)
      let kreads = Array.of_list (List.map (attr_reader w) q.group_by) in
      let nk = Array.length kreads in
      let groups = KH.create 64 in
      let order = ref [] in
      for r = 0 to w.nrows - 1 do
        let k = Array.init nk (fun i -> kreads.(i) r) in
        match KH.find_opt groups k with
        | Some l -> l := r :: !l
        | None ->
            KH.add groups k (ref [ r ]);
            order := k :: !order
      done;
      let keys_in_order = List.rev !order in
      List.filter_map
        (fun k ->
          let rows = !(KH.find groups k) in
          let keep =
            match q.having with
            | None -> true
            | Some h -> eval_having w rows h
          in
          if not keep then None
          else begin
            (* Lazy: an all-aggregate projection over an empty group (the
               GROUP-BY-less aggregate case) never touches a row. *)
            let rep = lazy (List.hd rows) in
            let out =
              Array.of_list
                (List.map
                   (function
                     | Sel_attr (a, _) -> attr_reader w a (Lazy.force rep)
                     | Sel_const (v, _) -> v
                     | Sel_agg (agg, _) -> agg_of_rows w agg rows)
                   q.select)
            in
            let sort_key =
              List.map
                (fun (key, d) ->
                  let v =
                    match key with
                    | O_attr a -> attr_reader w a (Lazy.force rep)
                    | O_agg agg -> agg_of_rows w agg rows
                    | O_alias name -> out.(alias_idx name)
                  in
                  (v, d))
                q.order_by
            in
            Some (out, sort_key)
          end)
        keys_in_order
    end
    else begin
      (* Compile projection and sort-key extractors once, then run them
         over the row indices. *)
      let item_fns =
        List.map
          (function
            | Sel_attr (a, _) -> attr_reader w a
            | Sel_const (v, _) -> fun _ -> v
            | Sel_agg _ -> err "aggregate in ungrouped projection")
          q.select
      in
      let okey_fns =
        List.map
          (fun (key, d) ->
            match key with
            | O_attr a ->
                let f = attr_reader w a in
                fun r (_ : Value.t array) -> (f r, d)
            | O_agg _ -> err "ORDER BY aggregate in ungrouped query"
            | O_alias name ->
                let i = alias_idx name in
                fun _ out -> (out.(i), d))
          q.order_by
      in
      List.init w.nrows (fun r ->
          let out = Array.of_list (List.map (fun f -> f r) item_fns) in
          (out, List.map (fun f -> f r out) okey_fns))
    end
  in
  (* DISTINCT before ORDER BY (SQL evaluation order). *)
  let projected_with_keys =
    if q.distinct then begin
      let seen = KH.create 64 in
      List.filter
        (fun (out, _) ->
          if KH.mem seen out then false
          else begin
            KH.add seen out ();
            true
          end)
        projected_with_keys
    end
    else projected_with_keys
  in
  let sorted =
    match q.order_by with
    | [] -> projected_with_keys
    | _ ->
        List.stable_sort
          (fun (_, k1) (_, k2) ->
            let rec cmp ks1 ks2 =
              match (ks1, ks2) with
              | [], [] -> 0
              | (v1, d) :: r1, (v2, _) :: r2 ->
                  let c = Value.compare v1 v2 in
                  let c = match d with Asc -> c | Desc -> -c in
                  if c <> 0 then c else cmp r1 r2
              | _ -> 0
            in
            cmp k1 k2)
          projected_with_keys
  in
  let rows = List.map fst sorted in
  let rows =
    match q.limit with
    | None -> rows
    | Some n -> List.filteri (fun i _ -> i < n) rows
  in
  { cols = out_names; rows }

(* --------------------------------------------------------------------- *)
(* DNF splitting (for DISTINCT + disjunctive qualifications, i.e. SQ)     *)
(* --------------------------------------------------------------------- *)

and dnf_branches cap p : pred list list option =
  (* Returns up to [cap] conjunctions of "literal" predicates, or None if
     the expansion would exceed [cap]. *)
  let product l1 l2 =
    List.concat_map (fun c1 -> List.map (fun c2 -> c1 @ c2) l2) l1
  in
  let rec go p : pred list list option =
    match p with
    | P_true -> Some [ [] ]
    | P_false -> Some []
    | P_cmp _ | P_not _ -> Some [ [ p ] ]
    | P_or ps ->
        List.fold_left
          (fun acc p ->
            match (acc, go p) with
            | Some a, Some b when List.length a + List.length b <= cap ->
                Some (a @ b)
            | _ -> None)
          (Some []) ps
    | P_and ps ->
        List.fold_left
          (fun acc p ->
            match (acc, go p) with
            | Some a, Some b when List.length a * List.length b <= cap ->
                Some (product a b)
            | _ -> None)
          (Some [ [] ]) ps
  in
  go p

and contains_or = function
  | P_or _ -> true
  | P_and ps -> List.exists contains_or ps
  | P_not p -> contains_or p
  | _ -> false

and select_attrs q =
  List.filter_map (function Sel_attr (a, _) -> Some a | _ -> None) q.select

(* --------------------------------------------------------------------- *)
(* Top-level evaluation                                                   *)
(* --------------------------------------------------------------------- *)

and run_auto ?cost db (q : query) : result =
  let wrels = List.map (source_of_from ?cost db) q.from in
  let has_aggs =
    List.exists (function Sel_agg _ -> true | _ -> false) q.select
    || q.having <> None
  in
  let dnf_eligible =
    q.distinct && q.group_by = [] && (not has_aggs) && contains_or q.where
  in
  let dnf = if dnf_eligible then dnf_branches 4096 q.where else None in
  match dnf with
  | Some branches ->
      (* Evaluate each conjunctive branch over only the tuple variables it
         (or the output) references; unreferenced FROM entries must merely
         be non-empty (sound because DISTINCT erases multiplicities). *)
      let needed_base =
        List.sort_uniq String.compare
          (List.map (fun (a : attr) -> a.tv) (select_attrs q)
          @ List.concat_map
              (fun (k, _) -> match k with O_attr a -> [ a.tv ] | _ -> [])
              q.order_by)
      in
      let all_rows = ref [] in
      List.iter
        (fun branch ->
          let branch_tvs =
            List.sort_uniq String.compare
              (needed_base @ List.concat_map tvs_of_pred branch)
          in
          let used, unused =
            List.partition (fun (tv, _) -> List.mem tv branch_tvs) wrels
          in
          let nonempty_unused =
            List.for_all (fun (_, src) -> source_card src > 0) unused
          in
          if nonempty_unused && used <> [] then begin
            let joined = join_conjunctive ?cost used branch in
            let res =
              post_pipeline
                { q with where = P_true; order_by = []; limit = None }
                joined
            in
            all_rows := List.rev_append res.rows !all_rows
          end)
        branches;
      let merged =
        vrel_of_batch
          (Array.of_list
             (List.map (fun n -> ("", n)) (select_output_names q)))
          (Batch.of_list (List.rev !all_rows))
      in
      (* Re-run the tail of the pipeline on the merged projection for
         distinct / order / limit.  Column references now address the
         projected names: an ORDER BY attribute must map to the output
         name of the select item that produced it. *)
      let output_name_of (a : attr) =
        let rec go = function
          | [] -> err "ORDER BY column %s.%s not in DISTINCT output" a.tv a.col
          | Sel_attr (a', alias) :: _ when equal_attr a a' -> (
              match alias with Some al -> al | None -> a'.col)
          | _ :: rest -> go rest
        in
        go q.select
      in
      let q' =
        {
          q with
          from = [];
          where = P_true;
          select =
            List.map
              (function
                | Sel_attr (a, alias) ->
                    let name =
                      match alias with Some al -> al | None -> a.col
                    in
                    Sel_attr ({ tv = ""; col = name }, Some name)
                | item -> item)
              q.select;
          order_by =
            List.map
              (fun (k, d) ->
                ( (match k with
                  | O_attr a -> O_attr { tv = ""; col = output_name_of a }
                  | k -> k),
                  d ))
              q.order_by;
        }
      in
      post_pipeline q' merged
  | None ->
      let conjuncts = conjuncts q.where in
      (* Keep disjunctions and other non-splittable factors as residual
         filters inside the conjunctive join. *)
      let joined = join_conjunctive ?cost wrels conjuncts in
      post_pipeline { q with where = P_true } joined

and run_naive db (q : query) : result =
  let wrels = List.map (materialize_from db) q.from in
  let joined =
    match wrels with
    | [] -> err "executor: empty FROM"
    | w :: rest -> List.fold_left cross_product w rest
  in
  let filtered = filter_vrel joined [ q.where ] in
  post_pipeline { q with where = P_true } filtered

and run_compound ?cost db (c : compound) : result =
  match c with
  | C_single q -> run_auto ?cost db q
  | C_union_all [] -> err "executor: empty UNION ALL"
  | C_union_all (c :: cs) ->
      let first = run_compound ?cost db c in
      let rows =
        List.fold_left
          (fun acc c' ->
            let r = run_compound ?cost db c' in
            List.rev_append (List.rev r.rows) acc)
          first.rows cs
      in
      { first with rows }

let run ?(strategy = `Auto) ?stats ?gov db q =
  let saved = !governor in
  governor := gov;
  Fun.protect
    ~finally:(fun () -> governor := saved)
    (fun () ->
      (* A deadline that expired before we even start (or between ladder
         rungs) must trip deterministically, not after 64 polls. *)
      (match gov with Some g -> Governor.check_deadline g | None -> ());
      match strategy with
      | `Auto -> run_auto db q
      | `Naive -> run_naive db q
      | `Cost ->
          let stats = match stats with Some s -> s | None -> Stats.create db in
          run_auto ~cost:stats db q)

(* --------------------------------------------------------------------- *)
(* Result helpers                                                         *)
(* --------------------------------------------------------------------- *)

let compare_rows (a : Value.t array) (b : Value.t array) =
  let la = Array.length a and lb = Array.length b in
  let rec go i =
    if i >= la && i >= lb then 0
    else if i >= la then -1
    else if i >= lb then 1
    else
      let c = Value.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let sort_rows r = { r with rows = List.sort compare_rows r.rows }

let result_equal_list a b =
  List.length a.rows = List.length b.rows
  && List.for_all2 (fun x y -> Key.equal x y) a.rows b.rows

let result_equal_bag a b = result_equal_list (sort_rows a) (sort_rows b)

let pp_result ?(max_rows = 20) fmt r =
  let shown = List.filteri (fun i _ -> i < max_rows) r.rows in
  let cells = List.map (fun row -> Array.map Value.to_string row) shown in
  let ncols = Array.length r.cols in
  let width = Array.make ncols 0 in
  Array.iteri (fun i c -> width.(i) <- String.length c) r.cols;
  List.iter
    (fun row ->
      Array.iteri (fun i s -> width.(i) <- max width.(i) (String.length s)) row)
    cells;
  let line sep =
    Format.pp_print_string fmt sep;
    Array.iteri
      (fun i _ ->
        Format.pp_print_string fmt (String.make (width.(i) + 2) '-');
        Format.pp_print_string fmt sep)
      width;
    Format.pp_print_newline fmt ()
  in
  let row_out (cells : string array) =
    Format.pp_print_string fmt "|";
    Array.iteri
      (fun i s -> Format.fprintf fmt " %-*s |" width.(i) s)
      cells;
    Format.pp_print_newline fmt ()
  in
  line "+";
  row_out r.cols;
  line "+";
  List.iter row_out cells;
  line "+";
  let total = List.length r.rows in
  if total > max_rows then
    Format.fprintf fmt "... (%d of %d rows shown)@." max_rows total
  else Format.fprintf fmt "(%d rows)@." total
