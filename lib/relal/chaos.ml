type point =
  | Scan
  | Join_build
  | Join_probe
  | Profile_load
  | Store_mutate
  | Persist_write
  | Wal_append
  | Wal_fsync
  | Manifest_write
  | Compact_write
  | Compact_rename
  | Ship_append
  | Scrub_read
  | Promote

let point_name = function
  | Scan -> "scan"
  | Join_build -> "join-build"
  | Join_probe -> "join-probe"
  | Profile_load -> "profile-load"
  | Store_mutate -> "store-mutate"
  | Persist_write -> "persist-write"
  | Wal_append -> "wal-append"
  | Wal_fsync -> "wal-fsync"
  | Manifest_write -> "manifest-write"
  | Compact_write -> "compact-write"
  | Compact_rename -> "compact-rename"
  | Ship_append -> "ship-append"
  | Scrub_read -> "scrub-read"
  | Promote -> "promote"

exception Injected of { point : point; transient : bool }

(* --------------------- deterministic storage faults --------------------- *)

type storage_fault =
  | Torn_write of float
  | Short_write of float
  | Fsync_fail
  | Crash
  | Flip_byte of float

exception Crashed of { point : point }

type fault_plan = {
  faults : (point * int * storage_fault) list;
  counts : (point, int) Hashtbl.t;
}

let plan_state : fault_plan option ref = ref None

let plan faults =
  List.iter
    (fun (_, _, f) ->
      match f with
      | Torn_write frac | Short_write frac | Flip_byte frac ->
          if frac < 0. || frac >= 1. then
            invalid_arg "Chaos.plan: torn/short/flip fraction must be in [0, 1)"
      | Fsync_fail | Crash -> ())
    faults;
  plan_state := Some { faults; counts = Hashtbl.create 8 }

let unplan () = plan_state := None

let take_fault pt =
  match !plan_state with
  | None -> None
  | Some p ->
      let n = Option.value ~default:0 (Hashtbl.find_opt p.counts pt) in
      Hashtbl.replace p.counts pt (n + 1);
      List.find_map
        (fun (pt', k, f) -> if pt' = pt && k = n then Some f else None)
        p.faults

let crossings pt =
  match !plan_state with
  | None -> 0
  | Some p -> Option.value ~default:0 (Hashtbl.find_opt p.counts pt)

(* The corruption primitive behind [Flip_byte]: damage one byte of a
   file in place, at [frac] of its size.  Storage code applies it to
   the file it is processing when a planned [Flip_byte] fires; the
   corruption-sweep harness also calls it directly to damage chosen
   segments.  No-op on an empty or missing file. *)
let flip_byte_in_file path frac =
  match (Unix.stat path).Unix.st_size with
  | 0 -> ()
  | size ->
      let off =
        max 0 (min (size - 1) (int_of_float (frac *. float_of_int size)))
      in
      let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          ignore (Unix.lseek fd off Unix.SEEK_SET);
          let b = Bytes.create 1 in
          if Unix.read fd b 0 1 = 1 then begin
            Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xFF));
            ignore (Unix.lseek fd off Unix.SEEK_SET);
            ignore (Unix.write fd b 0 1)
          end)
  | exception Unix.Unix_error _ -> ()

type stats = {
  mutable evaluations : int;
  mutable injected : int;
  mutable injected_transient : int;
}

type config = {
  rng : Putil.Rng.t;
  p : float;
  transient_ratio : float;
  stats : stats;
}

(* One global arming, matching the process-wide injection points.  The
   default is disarmed: [point] is a single load-and-branch, so shipping
   the hooks in the hot paths costs nothing when chaos is off. *)
let state : config option ref = ref None

let fresh_stats () = { evaluations = 0; injected = 0; injected_transient = 0 }

let arm ?(transient_ratio = 0.7) ~seed ~p () =
  let cfg =
    { rng = Putil.Rng.create seed; p; transient_ratio; stats = fresh_stats () }
  in
  state := Some cfg;
  cfg.stats

let disarm () = state := None

let armed () = !state <> None

let point pt =
  match !state with
  | None -> ()
  | Some cfg ->
      cfg.stats.evaluations <- cfg.stats.evaluations + 1;
      if Putil.Rng.float cfg.rng 1.0 < cfg.p then begin
        let transient = Putil.Rng.float cfg.rng 1.0 < cfg.transient_ratio in
        cfg.stats.injected <- cfg.stats.injected + 1;
        if transient then
          cfg.stats.injected_transient <- cfg.stats.injected_transient + 1;
        raise (Injected { point = pt; transient })
      end

let with_faults ?transient_ratio ~seed ~p f =
  let stats = arm ?transient_ratio ~seed ~p () in
  Fun.protect ~finally:disarm (fun () ->
      let r = f () in
      (r, stats))

(* ------------------------- transient retries ------------------------- *)

let default_attempts = 3
let default_backoff_ms = 1.0
let max_backoff_ms = 100.0

let default_sleep =
  ref (fun ms -> if ms > 0. then Unix.sleepf (ms /. 1000.))

let set_sleep f = default_sleep := f

(* Decorrelated jitter (the AWS formulation): each wait is uniform in
   [base, 3 × previous wait], capped.  Spreads concurrent retriers out
   instead of synchronizing them into waves, while the seeded stream
   keeps any single schedule reproducible. *)
let next_backoff rng ~base prev =
  let hi = Float.min max_backoff_ms (prev *. 3.) in
  if hi <= base then Float.min base max_backoff_ms
  else base +. Putil.Rng.float rng (hi -. base)

let retry ?(attempts = default_attempts) ?(backoff_ms = default_backoff_ms)
    ?(jitter_seed = 0x7e57) ?sleep f =
  let sleep = match sleep with Some s -> s | None -> !default_sleep in
  let rng = lazy (Putil.Rng.create jitter_seed) in
  let rec go n backoff =
    match f () with
    | v -> v
    | exception Injected { transient = true; _ } when n + 1 < attempts ->
        if backoff > 0. then sleep backoff;
        go (n + 1) (next_backoff (Lazy.force rng) ~base:backoff_ms backoff)
  in
  if attempts <= 0 then invalid_arg "Chaos.retry: attempts must be positive";
  go 0 backoff_ms
