type point =
  | Scan
  | Join_build
  | Join_probe
  | Profile_load
  | Persist_write

let point_name = function
  | Scan -> "scan"
  | Join_build -> "join-build"
  | Join_probe -> "join-probe"
  | Profile_load -> "profile-load"
  | Persist_write -> "persist-write"

exception Injected of { point : point; transient : bool }

type stats = {
  mutable evaluations : int;
  mutable injected : int;
  mutable injected_transient : int;
}

type config = {
  rng : Putil.Rng.t;
  p : float;
  transient_ratio : float;
  stats : stats;
}

(* One global arming, matching the process-wide injection points.  The
   default is disarmed: [point] is a single load-and-branch, so shipping
   the hooks in the hot paths costs nothing when chaos is off. *)
let state : config option ref = ref None

let fresh_stats () = { evaluations = 0; injected = 0; injected_transient = 0 }

let arm ?(transient_ratio = 0.7) ~seed ~p () =
  let cfg =
    { rng = Putil.Rng.create seed; p; transient_ratio; stats = fresh_stats () }
  in
  state := Some cfg;
  cfg.stats

let disarm () = state := None

let armed () = !state <> None

let point pt =
  match !state with
  | None -> ()
  | Some cfg ->
      cfg.stats.evaluations <- cfg.stats.evaluations + 1;
      if Putil.Rng.float cfg.rng 1.0 < cfg.p then begin
        let transient = Putil.Rng.float cfg.rng 1.0 < cfg.transient_ratio in
        cfg.stats.injected <- cfg.stats.injected + 1;
        if transient then
          cfg.stats.injected_transient <- cfg.stats.injected_transient + 1;
        raise (Injected { point = pt; transient })
      end

let with_faults ?transient_ratio ~seed ~p f =
  let stats = arm ?transient_ratio ~seed ~p () in
  Fun.protect ~finally:disarm (fun () ->
      let r = f () in
      (r, stats))

(* ------------------------- transient retries ------------------------- *)

let default_attempts = 3
let default_backoff_ms = 1.0
let max_backoff_ms = 100.0

let retry ?(attempts = default_attempts) ?(backoff_ms = default_backoff_ms) f =
  let rec go n backoff =
    match f () with
    | v -> v
    | exception Injected { transient = true; _ } when n + 1 < attempts ->
        if backoff > 0. then Unix.sleepf (backoff /. 1000.);
        go (n + 1) (Float.min (backoff *. 2.) max_backoff_ms)
  in
  if attempts <= 0 then invalid_arg "Chaos.retry: attempts must be positive";
  go 0 backoff_ms
