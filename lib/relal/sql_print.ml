open Sql_ast

let attr_to_string (a : attr) =
  if a.tv = "" then a.col else a.tv ^ "." ^ a.col

let cmp_to_string = function
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let scalar_to_string = function
  | S_attr a -> attr_to_string a
  | S_const v -> Value.to_string v

(* Precedence: OR(1) < AND(2) < NOT/atom(3).  Parenthesize a child that
   binds looser than its context; children of AND/OR are printed at one
   level above the operator's own so that a directly nested same-operator
   node keeps its parentheses and the parse→print→parse trip is exact
   (the parser would otherwise flatten it). *)
let rec pred_prec ctx p =
  match p with
  | P_true -> "TRUE"
  | P_false -> "FALSE"
  | P_cmp (op, a, b) ->
      scalar_to_string a ^ " " ^ cmp_to_string op ^ " " ^ scalar_to_string b
  | P_not p -> "NOT " ^ pred_prec 3 p
  | P_and ps ->
      let s = String.concat " and " (List.map (pred_prec 3) ps) in
      if ctx > 2 then "(" ^ s ^ ")" else s
  | P_or ps ->
      let s = String.concat " or " (List.map (pred_prec 2) ps) in
      if ctx > 1 then "(" ^ s ^ ")" else s

let pred_to_string p = pred_prec 0 p

let agg_to_string = function
  | A_count_star -> "count(*)"
  | A_count a -> "count(" ^ attr_to_string a ^ ")"
  | A_sum a -> "sum(" ^ attr_to_string a ^ ")"
  | A_min a -> "min(" ^ attr_to_string a ^ ")"
  | A_max a -> "max(" ^ attr_to_string a ^ ")"
  | A_avg a -> "avg(" ^ attr_to_string a ^ ")"
  | A_doi_conj (a, b) ->
      "degree_of_conjunction(" ^ attr_to_string a ^ ", " ^ attr_to_string b ^ ")"

let hscalar_to_string = function
  | H_agg a -> agg_to_string a
  | H_const v -> Value.to_string v

let rec having_prec ctx h =
  match h with
  | H_cmp (op, a, b) ->
      hscalar_to_string a ^ " " ^ cmp_to_string op ^ " " ^ hscalar_to_string b
  | H_and hs ->
      let s = String.concat " and " (List.map (having_prec 3) hs) in
      if ctx > 2 then "(" ^ s ^ ")" else s
  | H_or hs ->
      let s = String.concat " or " (List.map (having_prec 2) hs) in
      if ctx > 1 then "(" ^ s ^ ")" else s

let having_to_string h = having_prec 0 h

let select_item_to_string = function
  | Sel_attr (a, None) -> attr_to_string a
  | Sel_attr (a, Some al) -> attr_to_string a ^ " as " ^ al
  | Sel_const (v, al) -> Value.to_string v ^ " as " ^ al
  | Sel_agg (a, al) -> agg_to_string a ^ " as " ^ al

let order_key_to_string = function
  | O_attr a -> attr_to_string a
  | O_alias s -> s
  | O_agg a -> agg_to_string a

let rec query_to_string (q : query) =
  let b = Buffer.create 256 in
  Buffer.add_string b "select ";
  if q.distinct then Buffer.add_string b "distinct ";
  Buffer.add_string b
    (String.concat ", " (List.map select_item_to_string q.select));
  Buffer.add_string b " from ";
  Buffer.add_string b (String.concat ", " (List.map from_item_to_string q.from));
  (match q.where with
  | P_true -> ()
  | w ->
      Buffer.add_string b " where ";
      Buffer.add_string b (pred_to_string w));
  (match q.group_by with
  | [] -> ()
  | gs ->
      Buffer.add_string b " group by ";
      Buffer.add_string b (String.concat ", " (List.map attr_to_string gs)));
  (match q.having with
  | None -> ()
  | Some h ->
      Buffer.add_string b " having ";
      Buffer.add_string b (having_to_string h));
  (match q.order_by with
  | [] -> ()
  | os ->
      Buffer.add_string b " order by ";
      Buffer.add_string b
        (String.concat ", "
           (List.map
              (fun (k, d) ->
                order_key_to_string k ^ match d with Asc -> " asc" | Desc -> " desc")
              os)));
  (match q.limit with
  | None -> ()
  | Some n -> Buffer.add_string b (" limit " ^ string_of_int n));
  Buffer.contents b

and from_item_to_string = function
  | F_rel r -> if r.alias = r.rel then r.rel else r.rel ^ " " ^ r.alias
  | F_derived (c, alias) -> "(" ^ compound_to_string c ^ ") " ^ alias

and compound_to_string = function
  | C_single q -> query_to_string q
  | C_union_all cs ->
      String.concat " union all "
        (List.map (fun c -> "(" ^ compound_to_string c ^ ")") cs)

(* The cache-key contract below is deliberately a separate entry point:
   [query_to_string] is free to evolve for readability, but a key
   renderer must stay canonical — any change here silently splits cache
   populations across releases, which is a behaviour change worth a
   deliberate edit. *)
let query_to_key q = query_to_string q

(* --- pretty (indented) rendering --- *)

let indent n = String.make (2 * n) ' '

let rec pretty_query depth (q : query) =
  let b = Buffer.create 512 in
  let pad = indent depth in
  Buffer.add_string b (pad ^ "select ");
  if q.distinct then Buffer.add_string b "distinct ";
  Buffer.add_string b
    (String.concat ", " (List.map select_item_to_string q.select));
  Buffer.add_string b ("\n" ^ pad ^ "from ");
  Buffer.add_string b
    (String.concat (",\n" ^ pad ^ "     ")
       (List.map (pretty_from_item depth) q.from));
  (match q.where with
  | P_true -> ()
  | w -> Buffer.add_string b ("\n" ^ pad ^ "where " ^ pretty_pred depth w));
  (match q.group_by with
  | [] -> ()
  | gs ->
      Buffer.add_string b
        ("\n" ^ pad ^ "group by "
        ^ String.concat ", " (List.map attr_to_string gs)));
  (match q.having with
  | None -> ()
  | Some h -> Buffer.add_string b ("\n" ^ pad ^ "having " ^ having_to_string h));
  (match q.order_by with
  | [] -> ()
  | os ->
      Buffer.add_string b
        ("\n" ^ pad ^ "order by "
        ^ String.concat ", "
            (List.map
               (fun (k, d) ->
                 order_key_to_string k
                 ^ match d with Asc -> " asc" | Desc -> " desc")
               os)));
  (match q.limit with
  | None -> ()
  | Some n -> Buffer.add_string b ("\n" ^ pad ^ "limit " ^ string_of_int n));
  Buffer.contents b

and pretty_from_item depth = function
  | F_rel r -> if r.alias = r.rel then r.rel else r.rel ^ " " ^ r.alias
  | F_derived (c, alias) ->
      "(\n" ^ pretty_compound (depth + 1) c ^ "\n" ^ indent depth ^ ") " ^ alias

and pretty_compound depth = function
  | C_single q -> pretty_query depth q
  | C_union_all cs ->
      String.concat ("\n" ^ indent depth ^ "union all\n")
        (List.map
           (fun c ->
             indent depth ^ "(\n"
             ^ pretty_compound (depth + 1) c
             ^ "\n" ^ indent depth ^ ")")
           cs)

and pretty_pred depth p =
  (* Disjunctions of conjunctions (the SQ shape) read better one disjunct
     per line. *)
  match p with
  | P_and ps when List.exists (function P_or _ -> true | _ -> false) ps ->
      String.concat (" and\n" ^ indent depth ^ "      ")
        (List.map
           (function P_or _ as p -> pretty_pred depth p | p -> pred_prec 3 p)
           ps)
  | P_and ps -> String.concat " and " (List.map (pred_prec 3) ps)
  | P_or ps when List.length ps > 1 ->
      "(" ^ String.concat ("\n" ^ indent depth ^ "   or ")
              (List.map (pred_prec 2) ps)
      ^ ")"
  | p -> pred_to_string p

let query_to_pretty q = pretty_query 0 q

let pp_query fmt q = Format.pp_print_string fmt (query_to_pretty q)
