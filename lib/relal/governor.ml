type budget = {
  deadline_ms : float option;
  max_rows : int option;
  max_expansions : int option;
}

let unlimited = { deadline_ms = None; max_rows = None; max_expansions = None }

let is_unlimited b =
  b.deadline_ms = None && b.max_rows = None && b.max_expansions = None

type progress = {
  exhausted : string;
  rows_produced : int;
  expansions : int;
  elapsed_ms : float;
}

exception Exhausted of progress

(* The clock is process-settable so a deterministic simulation can run
   every governor in the process — including those armed deep inside
   [Personalize.personalize_r] — on virtual time, the same way
   [Chaos.set_sleep] virtualizes retry backoff.  Production never calls
   [set_clock]; the default is the real wall clock. *)
let real_clock = Unix.gettimeofday
let clock = ref real_clock
let set_clock f = clock := f

(* The row/expansion counters are atomics so a governor can be [fork]ed
   onto worker domains: every fork shares the same cells, so budget
   consumed anywhere is charged once against the one global bound —
   no per-domain copies to merge, no double counting.  [polls] stays a
   plain per-fork field: the deadline-poll stride is a per-domain
   amortization of the clock read, and each domain keeps its own. *)
type t = {
  budget : budget;
  started : float;  (* !clock at arm time, seconds *)
  rows : int Atomic.t;
  exps : int Atomic.t;
  mutable polls : int;  (* amortizes the clock read in [poll] *)
}

let start budget =
  { budget; started = !clock (); rows = Atomic.make 0; exps = Atomic.make 0;
    polls = 0 }

(* Same budget, same start time, same counter cells; a fresh poll
   stride for the domain that will drive this handle. *)
let fork g = { g with polls = 0 }

let elapsed_ms g = (!clock () -. g.started) *. 1000.

let progress ?(exhausted = "") g =
  { exhausted; rows_produced = Atomic.get g.rows;
    expansions = Atomic.get g.exps; elapsed_ms = elapsed_ms g }

let exhaust g what = raise (Exhausted (progress ~exhausted:what g))

let check_deadline g =
  match g.budget.deadline_ms with
  | Some limit when elapsed_ms g > limit -> exhaust g "deadline"
  | _ -> ()

(* How many [poll]s skip the clock read.  Wall-clock reads are cheap
   (vDSO) but not free; one read per 64 cooperative checks keeps the
   governor invisible in the executor's inner loops while bounding the
   overshoot past a deadline to a few microseconds of work per
   domain. *)
let poll_stride = 64

let poll g =
  g.polls <- g.polls + 1;
  if g.polls >= poll_stride then begin
    g.polls <- 0;
    check_deadline g
  end

(* Batch-sized accounting reads the clock immediately: a single
   [add_rows] call can represent an arbitrarily large cross product
   about to be materialized, and amortizing that behind the poll stride
   would let a runaway product overshoot its deadline by the whole
   allocation.  Row-at-a-time accounting stays on the cheap stride.

   The bound is checked against the post-add total returned by the
   atomic fetch-and-add, so concurrent forks each observe a consistent
   running total: whichever add crosses [max_rows] raises, and no
   domain can overshoot by more than its own batch. *)
let add_rows g n =
  let total = Atomic.fetch_and_add g.rows n + n in
  (match g.budget.max_rows with
  | Some limit when total > limit -> exhaust g "rows"
  | _ -> ());
  if n >= poll_stride then begin
    g.polls <- 0;
    check_deadline g
  end
  else poll g

let add_expansion g =
  let total = Atomic.fetch_and_add g.exps 1 + 1 in
  (match g.budget.max_expansions with
  | Some limit when total > limit -> exhaust g "expansions"
  | _ -> ());
  poll g

let pp_progress fmt p =
  Format.fprintf fmt "%s after %d rows, %d expansions, %.2f ms" p.exhausted
    p.rows_produced p.expansions p.elapsed_ms

let progress_to_string p = Format.asprintf "%a" pp_progress p
