(** Convenience facade over the engine: parse → bind → execute.

    This is the entry point examples, the CLI and the personalization
    pipeline use when they hold SQL text or a raw AST rather than a
    pre-bound query. *)

val run_sql :
  ?strategy:[ `Auto | `Naive | `Cost ] ->
  ?gov:Governor.t ->
  Database.t ->
  string ->
  Exec.result
(** Parse, bind and evaluate a SQL string.  [?gov] arms a resource
    budget for the evaluation (see {!Exec.run}).
    @raise Sql_parser.Parse_error, @raise Sql_lexer.Lex_error,
    @raise Binder.Bind_error, @raise Exec.Exec_error,
    @raise Governor.Exhausted. *)

val run_query :
  ?strategy:[ `Auto | `Naive | `Cost ] ->
  ?gov:Governor.t ->
  Database.t ->
  Sql_ast.query ->
  Exec.result
(** Bind and evaluate an AST. *)

val explain : Database.t -> Sql_ast.query -> string
(** Bound query rendered as pretty SQL — what "EXPLAIN" means for this
    engine's users (plans are not exposed). *)
