exception Csv_error of string

let err fmt = Format.kasprintf (fun s -> raise (Csv_error s)) fmt

(* ------------------------------ writing ------------------------------ *)

let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let quote_field ?(force = false) s =
  if (not force) && not (needs_quoting s) then s
  else begin
    let b = Buffer.create (String.length s + 2) in
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string b "\"\"" else Buffer.add_char b c)
      s;
    Buffer.add_char b '"';
    Buffer.contents b
  end

(* Returns the field text and whether quoting is mandatory even when the
   text needs none — the empty string must stay distinguishable from
   NULL (an empty unquoted field). *)
let field_of_value = function
  | Value.Null -> ("", false)
  | Value.Int i -> (string_of_int i, false)
  | Value.Float f -> (Printf.sprintf "%.17g" f, false)
  | Value.Bool b -> ((if b then "true" else "false"), false)
  | Value.Date d ->
      ( Printf.sprintf "%04d-%02d-%02d" (d / 10000) (d / 100 mod 100) (d mod 100),
        false )
  | Value.Str s -> (s, s = "")

let table_to_string t =
  let b = Buffer.create 4096 in
  let cols = Schema.columns (Table.schema t) in
  Buffer.add_string b
    (String.concat ","
       (Array.to_list (Array.map (fun c -> quote_field c.Schema.cname) cols)));
  Buffer.add_char b '\n';
  Table.iter t (fun row ->
      let line =
        String.concat ","
          (Array.to_list
             (Array.map
                (fun v ->
                  let text, force = field_of_value v in
                  quote_field ~force text)
                row))
      in
      Buffer.add_string b line;
      Buffer.add_char b '\n');
  Buffer.contents b

(* ------------------------------ parsing ------------------------------ *)

(* Split CSV text into records of (field, was_quoted) lists. *)
let parse_records text =
  let records = ref [] in
  let fields = ref [] in
  let buf = Buffer.create 32 in
  let quoted = ref false in
  let in_quotes = ref false in
  let n = String.length text in
  let flush_field () =
    fields := (Buffer.contents buf, !quoted) :: !fields;
    Buffer.clear buf;
    quoted := false
  in
  let flush_record () =
    flush_field ();
    records := List.rev !fields :: !records;
    fields := []
  in
  let i = ref 0 in
  while !i < n do
    let c = text.[!i] in
    if !in_quotes then begin
      if c = '"' then
        if !i + 1 < n && text.[!i + 1] = '"' then begin
          Buffer.add_char buf '"';
          i := !i + 2
        end
        else begin
          in_quotes := false;
          incr i
        end
      else begin
        Buffer.add_char buf c;
        incr i
      end
    end
    else begin
      (match c with
      | '"' ->
          in_quotes := true;
          quoted := true
      | ',' -> flush_field ()
      | '\n' -> flush_record ()
      | '\r' -> () (* tolerate CRLF *)
      | c -> Buffer.add_char buf c);
      incr i
    end
  done;
  if !in_quotes then err "unterminated quoted field";
  (* Final record without trailing newline. *)
  if Buffer.length buf > 0 || !fields <> [] then flush_record ();
  List.rev !records

let value_of_field ty (s, was_quoted) =
  if s = "" && not was_quoted then Value.Null
  else
    match ty with
    | Value.TStr -> Value.Str s
    | Value.TInt -> (
        match int_of_string_opt s with
        | Some i -> Value.Int i
        | None -> err "bad int field %S" s)
    | Value.TFloat -> (
        match float_of_string_opt s with
        | Some f -> Value.Float f
        | None -> err "bad float field %S" s)
    | Value.TBool -> (
        match String.lowercase_ascii s with
        | "true" | "t" | "1" -> Value.Bool true
        | "false" | "f" | "0" -> Value.Bool false
        | _ -> err "bad bool field %S" s)
    | Value.TDate -> (
        match Value.parse_date s with
        | Some d -> d
        | None -> err "bad date field %S" s)

let table_of_string schema text =
  match parse_records text with
  | [] -> err "missing header line"
  | header :: rows ->
      let cols = Schema.columns schema in
      let expected = Array.to_list (Array.map (fun c -> String.lowercase_ascii c.Schema.cname) cols) in
      let got = List.map (fun (f, _) -> String.lowercase_ascii f) header in
      if got <> expected then
        err "header mismatch for %s: expected %s, got %s" (Schema.name schema)
          (String.concat "," expected) (String.concat "," got);
      let t = Table.create schema in
      List.iteri
        (fun lineno fields ->
          if List.length fields <> Array.length cols then
            err "row %d of %s has %d fields, expected %d" (lineno + 2)
              (Schema.name schema) (List.length fields) (Array.length cols);
          let row =
            Array.of_list
              (List.mapi
                 (fun i f ->
                   try value_of_field cols.(i).Schema.cty f
                   with Csv_error e ->
                     err "row %d of %s, column %s: %s" (lineno + 2)
                       (Schema.name schema) cols.(i).Schema.cname e)
                 fields)
          in
          try Table.insert t row
          with Invalid_argument e -> err "row %d of %s: %s" (lineno + 2) (Schema.name schema) e)
        rows;
      t

(* ----------------------------- databases ----------------------------- *)

(* Crash-safe dump layout: every file of a dump is written into a fresh
   temp directory and fsynced, a manifest with per-file MD5 checksums and
   sizes is written last, and the temp directory is swapped in with
   renames.  The commit point is the [tmp -> dir] rename: a crash at any
   earlier moment leaves the previous dump untouched (possibly parked at
   [<dir>.old], which [load_db_r] moves back).  Loading verifies the
   manifest, so torn or hand-truncated dumps surface as a typed
   [Torn_dump] instead of a parse error deep inside some table. *)

type load_error =
  | Missing_dump of string
  | Torn_dump of { dir : string; detail : string }
  | Malformed of string

let load_error_to_string = function
  | Missing_dump dir -> Printf.sprintf "no database dump at %s" dir
  | Torn_dump { dir; detail } ->
      Printf.sprintf "torn dump at %s: %s" dir detail
  | Malformed msg -> msg

let manifest_file = "manifest.sum"

let old_suffix = ".old"
let tmp_suffix = ".save-tmp"

let write_file_sync path contents =
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let n = String.length contents in
      let written = ref 0 in
      while !written < n do
        written := !written + Unix.write_substring fd contents !written (n - !written)
      done;
      Unix.fsync fd)

(* Directory fsync makes the renames/creates durable; not every
   filesystem supports it, so failures are ignored. *)
let fsync_dir path =
  match Unix.openfile path [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      Unix.close fd

(* Dump directories are flat — remove files then the directory. *)
let rm_rf dir =
  if Sys.file_exists dir && Sys.is_directory dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

let dump_files db =
  ("schema.ddl", Ddl.to_string db)
  :: List.map
       (fun t -> (Schema.name (Table.schema t) ^ ".csv", table_to_string t))
       (Database.tables db)

let manifest_of files =
  String.concat ""
    (List.map
       (fun (name, contents) ->
         Printf.sprintf "%s %d %s\n"
           (Digest.to_hex (Digest.string contents))
           (String.length contents) name)
       files)

let save_db_r ~dir db =
  let tmp = dir ^ tmp_suffix and old = dir ^ old_suffix in
  try
    rm_rf tmp;
    Sys.mkdir tmp 0o755;
    let files = dump_files db in
    List.iter
      (fun (name, contents) ->
        (* Each write retries transient injected faults in place. *)
        Chaos.retry (fun () ->
            Chaos.point Chaos.Persist_write;
            write_file_sync (Filename.concat tmp name) contents))
      files;
    write_file_sync (Filename.concat tmp manifest_file) (manifest_of files);
    fsync_dir tmp;
    (* Swap: park the previous dump, commit the new one, then clean up.
       A crash between the renames is recovered by [load_db_r]. *)
    rm_rf old;
    if Sys.file_exists dir then Sys.rename dir old;
    Sys.rename tmp dir;
    fsync_dir (Filename.dirname dir);
    rm_rf old;
    Ok ()
  with
  | Sys_error e -> Error e
  | Unix.Unix_error (e, fn, arg) ->
      Error (Printf.sprintf "%s(%s): %s" fn arg (Unix.error_message e))
  | Chaos.Injected { point; _ } ->
      Error (Printf.sprintf "injected fault at %s" (Chaos.point_name point))

let save_db ~dir db =
  match save_db_r ~dir db with
  | Ok () -> ()
  | Error e -> err "saving %s: %s" dir e

let verify_manifest ~dir =
  let path = Filename.concat dir manifest_file in
  let parse_line lineno line =
    match String.index_opt line ' ' with
    | None -> err "manifest line %d unparseable" (lineno + 1)
    | Some i -> (
        let digest = String.sub line 0 i in
        let rest = String.sub line (i + 1) (String.length line - i - 1) in
        match String.index_opt rest ' ' with
        | None -> err "manifest line %d unparseable" (lineno + 1)
        | Some j ->
            let size = String.sub rest 0 j in
            let name = String.sub rest (j + 1) (String.length rest - j - 1) in
            (match int_of_string_opt size with
            | None -> err "manifest line %d unparseable" (lineno + 1)
            | Some size -> (digest, size, name)))
  in
  let check (digest, size, name) =
    let fpath = Filename.concat dir name in
    if not (Sys.file_exists fpath) then err "missing file %s" name;
    let contents = In_channel.with_open_bin fpath In_channel.input_all in
    if String.length contents <> size then
      err "%s has %d bytes, manifest says %d" name (String.length contents) size;
    if Digest.to_hex (Digest.string contents) <> digest then
      err "checksum mismatch on %s" name
  in
  let lines =
    In_channel.with_open_bin path In_channel.input_all
    |> String.split_on_char '\n'
    |> List.filter (fun l -> l <> "")
  in
  (* Saves always list at least schema.ddl, so an empty manifest can
     only be a truncated write — reject it instead of "verifying"
     nothing and then trusting whatever files happen to be present. *)
  if lines = [] then err "empty manifest";
  List.iteri (fun i l -> check (parse_line i l)) lines

let load_db_r ~dir =
  let recover () =
    (* A crash between [save_db_r]'s two renames leaves the previous
       dump parked at [<dir>.old] and no [dir]; the new dump at
       [<dir>.save-tmp] was never committed, so the parked one is the
       durable state — move it back. *)
    let old = dir ^ old_suffix in
    if (not (Sys.file_exists dir)) && Sys.file_exists old then
      Sys.rename old dir
  in
  let parse_tables () =
    let ddl_path = Filename.concat dir "schema.ddl" in
    if not (Sys.file_exists ddl_path) then
      Error (Torn_dump { dir; detail = "no schema.ddl" })
    else begin
      let schema_db =
        Ddl.parse (In_channel.with_open_text ddl_path In_channel.input_all)
      in
      List.iter
        (fun t ->
          let schema = Table.schema t in
          let path = Filename.concat dir (Schema.name schema ^ ".csv") in
          if Sys.file_exists path then begin
            let text = In_channel.with_open_text path In_channel.input_all in
            let parsed = table_of_string schema text in
            Table.iter parsed (fun row -> Table.insert t (Array.copy row))
          end)
        (Database.tables schema_db);
      Database.index_fk_columns schema_db;
      Ok schema_db
    end
  in
  try
    recover ();
    if not (Sys.file_exists dir) then Error (Missing_dump dir)
    else begin
      (* Manifest-less directories (hand-written or pre-manifest dumps)
         load unverified, as before. *)
      let verified =
        if Sys.file_exists (Filename.concat dir manifest_file) then
          match verify_manifest ~dir with
          | () -> Ok ()
          | exception Csv_error e -> Error (Torn_dump { dir; detail = e })
        else Ok ()
      in
      match verified with
      | Error _ as e -> e
      | Ok () -> (
          (* Content errors past a verified manifest are a malformed dump
             (bad values written in the first place), not a torn one. *)
          match parse_tables () with
          | r -> r
          | exception Csv_error e -> Error (Malformed e)
          | exception Ddl.Ddl_error e -> Error (Malformed e))
    end
  with Sys_error e -> Error (Torn_dump { dir; detail = e })

let load_db ~dir =
  match load_db_r ~dir with
  | Ok db -> db
  | Error e -> err "%s" (load_error_to_string e)
