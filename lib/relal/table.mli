(** A stored relation: a schema plus a mutable bag of rows, with optional
    hash indexes for equality lookups.

    Rows are [Value.t array]s positionally matching the schema.  The table
    validates arity and column types on insert, so downstream operators
    can trust stored data. *)

type t

val create : Schema.t -> t
(** Empty table. *)

val schema : t -> Schema.t

val batch : t -> Batch.t
(** The table's storage batch, shared (not copied) with the caller.  The
    executor builds scans directly over it and resolves index lookups to
    row ids into it; callers must not mutate rows. *)

val cardinality : t -> int
(** Number of stored rows (O(1), cached by the batch). *)

val insert : t -> Value.t array -> unit
(** Append a row.  @raise Invalid_argument on wrong arity or a value
    whose type contradicts the schema ([Null] is accepted anywhere). *)

val insert_values : t -> Value.t list -> unit
(** List convenience around {!insert}. *)

val get : t -> int -> Value.t array
(** [get t i] is row [i] (0-based).  The returned array must not be
    mutated.  @raise Invalid_argument if out of bounds. *)

val iter : t -> (Value.t array -> unit) -> unit
(** Iterate all rows in insertion order. *)

val fold : t -> init:'a -> f:('a -> Value.t array -> 'a) -> 'a

val to_list : t -> Value.t array list
(** All rows, insertion order.  Shares row arrays with the table. *)

val build_index : t -> string -> unit
(** Ensure a hash index exists on the named column.  Indexes stay in sync
    with subsequent inserts.  @raise Invalid_argument on unknown column. *)

val has_index : t -> string -> bool
(** Does a hash index exist on the named column?  (The executor only
    chooses index access paths — selection pushdown into an index probe,
    index-nested-loop joins — where one exists.) *)

val lookup : t -> string -> Value.t -> Value.t array list
(** [lookup t col v] returns the rows with [col = v], using an index when
    one exists (building is the caller's choice), otherwise scanning. *)

val lookup_ids : t -> string -> Value.t -> int list
(** Like {!lookup} but returns row ids into {!batch} (insertion order)
    instead of materializing rows — the late-materialization access path.
    @raise Invalid_argument on unknown column. *)

val prober : t -> string -> (Value.t -> int list) option
(** [prober t col] resolves the column and its hash index {e once} and
    returns a probe closure mapping a value to the matching row ids
    (most-recent-first, shared with the index — do not mutate), or [None]
    when the column has no index.  This is the inner loop of the
    index-nested-loop join: per-probe cost is one hash lookup, with no
    string resolution or list copying. *)

val clear : t -> unit
(** Remove all rows (indexes retained but emptied). *)
