module H = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

type index = { col : int; buckets : int list ref H.t }
(* Buckets store row ids (positions in the batch) most-recent first. *)

type t = { sch : Schema.t; batch : Batch.t; mutable indexes : index list }

let create sch = { sch; batch = Batch.create (); indexes = [] }
let schema t = t.sch
let batch t = t.batch
let cardinality t = Batch.length t.batch

let check_row t row =
  let cols = Schema.columns t.sch in
  if Array.length row <> Array.length cols then
    invalid_arg
      (Printf.sprintf "Table.insert: arity %d, expected %d in %s"
         (Array.length row) (Array.length cols)
         (Schema.name t.sch));
  Array.iteri
    (fun i v ->
      match Value.ty_of v with
      | None -> ()
      | Some ty ->
          if not (Value.compatible ty cols.(i).Schema.cty) then
            invalid_arg
              (Printf.sprintf "Table.insert: %s.%s expects %s, got %s"
                 (Schema.name t.sch) cols.(i).Schema.cname
                 (Value.ty_name cols.(i).Schema.cty)
                 (Value.ty_name ty)))
    row

let index_add idx rowid v =
  match H.find_opt idx.buckets v with
  | Some l -> l := rowid :: !l
  | None -> H.add idx.buckets v (ref [ rowid ])

let insert t row =
  check_row t row;
  let rowid = Batch.length t.batch in
  Batch.add t.batch row;
  List.iter (fun idx -> index_add idx rowid row.(idx.col)) t.indexes

let insert_values t vs = insert t (Array.of_list vs)

let get t i =
  if i < 0 || i >= Batch.length t.batch then
    invalid_arg "Table.get: row id out of bounds";
  Batch.get t.batch i

let iter t f = Batch.iter f t.batch
let fold t ~init ~f = Batch.fold f init t.batch
let to_list t = Batch.to_list t.batch

let build_index t col =
  match Schema.col_index t.sch col with
  | None ->
      invalid_arg
        (Printf.sprintf "Table.build_index: no column %s in %s" col
           (Schema.name t.sch))
  | Some ci ->
      if not (List.exists (fun idx -> idx.col = ci) t.indexes) then begin
        let n = Batch.length t.batch in
        let idx = { col = ci; buckets = H.create (max 16 n) } in
        let rows = Batch.unsafe_rows t.batch in
        for i = 0 to n - 1 do
          index_add idx i rows.(i).(ci)
        done;
        t.indexes <- idx :: t.indexes
      end

let has_index t col =
  match Schema.col_index t.sch col with
  | None -> false
  | Some ci -> List.exists (fun idx -> idx.col = ci) t.indexes

let lookup_ids t col v =
  match Schema.col_index t.sch col with
  | None ->
      invalid_arg
        (Printf.sprintf "Table.lookup: no column %s in %s" col
           (Schema.name t.sch))
  | Some ci -> (
      match List.find_opt (fun idx -> idx.col = ci) t.indexes with
      | Some idx -> (
          match H.find_opt idx.buckets v with
          | None -> []
          | Some ids -> List.rev !ids)
      | None ->
          let rows = Batch.unsafe_rows t.batch in
          let acc = ref [] in
          for i = Batch.length t.batch - 1 downto 0 do
            if Value.equal rows.(i).(ci) v then acc := i :: !acc
          done;
          !acc)

let lookup t col v =
  let rows = Batch.unsafe_rows t.batch in
  List.map (fun i -> rows.(i)) (lookup_ids t col v)

let prober t col =
  match Schema.col_index t.sch col with
  | None -> None
  | Some ci -> (
      match List.find_opt (fun idx -> idx.col = ci) t.indexes with
      | None -> None
      | Some idx ->
          (* [find] + exception rather than [find_opt]: no option
             allocation on the hit path, which is every probe of an
             index-nested-loop join. *)
          Some
            (fun v ->
              match H.find idx.buckets v with
              | ids -> !ids
              | exception Not_found -> []))

let clear t =
  Batch.clear t.batch;
  t.indexes <- List.map (fun idx -> { idx with buckets = H.create 16 }) t.indexes
