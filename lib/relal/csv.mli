(** CSV persistence for tables and whole databases.

    Format: RFC-4180-style — fields separated by commas, quoted with
    double quotes when they contain commas, quotes or newlines, embedded
    quotes doubled.  The first line is a header of column names.  Values
    are rendered type-faithfully ([Null] as the empty unquoted field,
    dates as [YYYY-MM-DD]) and parsed back under the schema's column
    types, so a round trip is value-exact.

    A database directory holds [schema.ddl] (see {!Ddl}) plus one
    [<table>.csv] per table — a human-editable on-disk database the CLI
    can load with [--data-dir] — and a [manifest.sum] with per-file MD5
    checksums and sizes.

    Dumps are crash-safe: {!save_db} writes everything into a fresh
    temp directory, fsyncs each file, writes the manifest last, and
    swaps the directory in with renames, so an interrupted save leaves
    the previous dump loadable.  {!load_db_r} verifies the manifest and
    reports torn or truncated dumps as a typed {!load_error};
    directories without a manifest (hand-written, or produced before
    manifests existed) load unverified. *)

exception Csv_error of string

val table_to_string : Table.t -> string
(** Header plus one line per row. *)

val table_of_string : Schema.t -> string -> Table.t
(** Parse rows under the given schema (header validated).
    @raise Csv_error on malformed CSV, a header mismatch, arity
    mismatches, or unparseable typed fields. *)

type load_error =
  | Missing_dump of string  (** no dump directory at the given path *)
  | Torn_dump of { dir : string; detail : string }
      (** a partial or corrupted dump: manifest verification failed
          (truncated file, missing table file, checksum mismatch), or
          the directory lost files the manifest promises *)
  | Malformed of string
      (** content errors: bad CSV/DDL syntax, type mismatches *)

val load_error_to_string : load_error -> string

val manifest_file : string
(** ["manifest.sum"] — one [<md5hex> <size> <filename>] line per file.
    An existing but {e empty} manifest is treated as torn: real saves
    always list at least [schema.ddl]. *)

val write_file_sync : string -> string -> unit
(** Write [contents] to a fresh file (create/truncate) and fsync it
    before closing — the durability primitive the dump writer and the
    log-structured profile store share.  Unix errors propagate. *)

val fsync_dir : string -> unit
(** Fsync a directory so renames/creates inside it are durable.
    Filesystems that refuse directory fsync are tolerated silently. *)

val save_db_r : dir:string -> Database.t -> (unit, string) result
(** Atomically (re)write the dump at [dir]: temp directory + fsync +
    rename swap, with a manifest.  Transient injected faults
    ({!Chaos.Persist_write}) are retried with bounded backoff; permanent
    ones and I/O errors return [Error].  An interrupted save never
    corrupts the existing dump. *)

val save_db : dir:string -> Database.t -> unit
(** {!save_db_r}, raising. @raise Csv_error on failure. *)

val load_db_r : dir:string -> (Database.t, load_error) result
(** Read a directory written by {!save_db} (or by hand).  Recovers a
    dump parked by a save interrupted between its commit renames.
    Tables listed in the DDL but missing a CSV load empty when no
    manifest is present (a manifest makes every listed file mandatory).
    Foreign-key columns are hash-indexed after loading. *)

val load_db : dir:string -> Database.t
(** {!load_db_r}, raising.  @raise Csv_error on any load error. *)
