(** User profiles: atomic preferences with degrees of interest (§3.1).

    A profile is a set of [(atom, degree)] pairs — Figure 2 of the paper.
    Zero-valued preferences are rejected (the paper: "in practice,
    zero-valued preferences are not stored in a user profile").  The same
    schema join may appear twice, once per direction, with different
    degrees.

    Profiles have a line-oriented text format mirroring Figure 2:
    {v
    # Julie
    [ THEATRE.tid = PLAY.tid, 1 ]
    [ GENRE.genre = 'comedy', 0.9 ]
    v}
    Blank lines and [#] comments are ignored. *)

type t

val empty : t

val of_list : (Atom.t * Degree.t) list -> t
(** @raise Invalid_argument on a duplicate atom or a zero degree. *)

val add : t -> Atom.t -> Degree.t -> t
(** Functional update; replaces the degree if the atom is present.
    @raise Invalid_argument on a zero degree. *)

val remove : t -> Atom.t -> t

val find : t -> Atom.t -> Degree.t option

val equal : t -> t -> bool
(** Semantic equality: the same atoms with equal degrees. *)

val entries : t -> (Atom.t * Degree.t) list
(** In decreasing order of degree (ties: atom order). *)

val selections : t -> (Atom.selection * Degree.t) list
val joins : t -> (Atom.join * Degree.t) list

val size : t -> int
(** Number of atomic {e selections} — the paper's notion of profile size
    in the Figure 6 experiment. *)

val cardinal : t -> int
(** Total number of entries (selections + joins). *)

val union : t -> t -> t
(** Right-biased merge. *)

val validate : Relal.Database.t -> t -> (unit, string list) result
(** Validate every atom against the catalog; collects all errors. *)

(** {1 Text format} *)

val to_string : t -> string

val of_string : string -> (t, string) result
(** Parse the text format; errors carry the offending line. *)

val load : string -> (t, string) result
(** Read a profile file. *)

val save : string -> t -> unit

val pp : Format.formatter -> t -> unit
