(* Cheap structural size estimate for cached personalization outcomes.

   The plan cache used [Obj.reachable_words] for its byte accounting —
   exact sharing-aware sizes, but a generic graph walk with a visited
   table, measured at ~20% of a patched consult.  This module replaces
   it with a typed walk that prices each constructor from the known
   64-bit runtime layout (header word + fields; 3 words per list cons;
   [1 + (len+8)/8] words per string).

   The walk is sharing-naive, so it prices structure, not the heap
   graph.  Two deliberate choices keep it within a small factor of the
   exact measure on real outcomes:

   - [Integrate.instantiated] values are priced at a pointer-sized
     constant: their [path]s are the expansion paths already priced
     under [selected], and their [pred]/[trefs] are physically embedded
     in the [personalized] query, which is walked in full.  Walking
     them again would double-count nearly the whole outcome.
   - The query walk prices every occurrence of a pred subtree even
     when UNION ALL branches share one physically — a modest
     overcount that offsets the instantiated-list undercount.

   The unit test pins the estimate to within 2× of the old
   [Obj.reachable_words] measure on representative §7 outcomes. *)

open Relal.Sql_ast

let word_bytes = Sys.word_size / 8

(* Words of an OCaml string block: header + payload rounded up with the
   mandatory terminator byte. *)
let str s = 1 + ((String.length s + 8) / 8)

let list per l = List.fold_left (fun acc x -> acc + 3 + per x) 0 l

let opt per = function None -> 0 | Some x -> 2 + per x

let value = function
  | Relal.Value.Null -> 0
  | Int _ | Float _ | Bool _ | Date _ -> 2
  | Str s -> 2 + str s

let attr (a : attr) = 3 + str a.tv + str a.col

let tref (r : table_ref) = 3 + str r.rel + str r.alias

let scalar = function S_attr a -> 2 + attr a | S_const v -> 2 + value v

let rec pred = function
  | P_true | P_false -> 0
  | P_cmp (_, a, b) -> 4 + scalar a + scalar b
  | P_and ps | P_or ps -> 2 + list pred ps
  | P_not p -> 2 + pred p

let agg = function
  | A_count_star -> 0
  | A_count a | A_sum a | A_min a | A_max a | A_avg a -> 2 + attr a
  | A_doi_conj (a, b) -> 3 + attr a + attr b

let select_item = function
  | Sel_attr (a, alias) -> 3 + attr a + opt str alias
  | Sel_const (v, name) -> 3 + value v + str name
  | Sel_agg (g, name) -> 3 + agg g + str name

let hscalar = function H_agg g -> 2 + agg g | H_const v -> 2 + value v

let rec having = function
  | H_cmp (_, a, b) -> 4 + hscalar a + hscalar b
  | H_and hs | H_or hs -> 2 + list having hs

let order_key = function
  | O_attr a -> 2 + attr a
  | O_alias s -> 2 + str s
  | O_agg g -> 2 + agg g

let rec query (q : query) =
  9
  + list select_item q.select
  + list from_item q.from
  + pred q.where
  + list attr q.group_by
  + opt having q.having
  + list (fun (k, _) -> 3 + order_key k) q.order_by
  + opt (fun _ -> 2) q.limit

and from_item = function
  | F_rel r -> 2 + tref r
  | F_derived (c, alias) -> 3 + compound c + str alias

and compound = function
  | C_single q -> 2 + query q
  | C_union_all cs -> 2 + list compound cs

(* A boxed float (Degree.t in a mixed-field record or tuple). *)
let boxed_degree = 2

let selection_atom (s : Atom.selection) =
  5 + str s.s_rel + str s.s_att + value s.s_val

let join_atom (j : Atom.join) =
  5 + str j.j_from_rel + str j.j_from_att + str j.j_to_rel + str j.j_to_att

let atom = function
  | Atom.Sel s -> 2 + selection_atom s
  | Atom.Join j -> 2 + join_atom j

let path (p : Path.t) =
  7
  + str p.anchor_tv
  + str p.anchor_rel
  + list (fun (j, _) -> 3 + join_atom j + boxed_degree) p.joins
  + opt (fun (s, _) -> 3 + selection_atom s + boxed_degree) p.sel
  + boxed_degree
  + list str p.rels

let profile (p : Profile.t) =
  list (fun (a, _) -> 3 + atom a + boxed_degree) (Profile.entries p)

(* Priced as an opaque handle: path/pred/trefs are shared with
   [selected] and the personalized query (see the module header). *)
let instantiated (_ : Integrate.instantiated) = 5

let outcome_words ~key p (o : Personalize.outcome) =
  (* The cache entry tuple itself plus the key string. *)
  4 + str key + profile p
  + 6
  + list path o.selected
  + list instantiated o.mandatory
  + list instantiated o.optional
  + query o.personalized
  + 7 (* selection_stats: six mutable ints *)

let entry_bytes ~key p o = outcome_words ~key p o * word_bytes
