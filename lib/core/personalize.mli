(** End-to-end query personalization (§4): the two-phase pipeline
    — preference selection then preference integration — behind one
    call.

    Parameters follow the paper: an interest criterion determining [K]
    (how many top preferences affect the query), a criterion for [M]
    (how many of those are mandatory) and the requirement [L] on the
    remaining [K−M] (a count, or a minimum degree of interest per result
    row).  The {!Context} submodule derives parameter sets from a query
    context (device, desired latency), the §4 discussion. *)

type params = {
  k : Criteria.t;  (** interest criterion bounding the selection *)
  m : [ `Count of int | `Min_degree of float ];
      (** mandatory split; the paper's example: degree = 1 means
          mandatory *)
  l : [ `At_least of int | `Min_doi of float ];
      (** requirement on optional preferences *)
  method_ : [ `SQ | `MQ ];  (** integration approach (§6) *)
  rank : bool;  (** rank results by estimated degree (MQ only) *)
}

val default_params : params
(** K: top 5; M: none; L: at least 1; MQ with ranking — sensible
    interactive defaults. *)

type outcome = {
  selected : Path.t list;  (** [P_K], decreasing degree *)
  mandatory : Integrate.instantiated list;
  optional : Integrate.instantiated list;
  personalized : Relal.Sql_ast.query;
  selection_stats : Select.stats;
}

val integrate_selected :
  ?params:params ->
  Relal.Database.t ->
  Qgraph.t ->
  stats:Select.stats ->
  Path.t list ->
  outcome
(** The integration half of {!personalize}: instantiate the given
    selected paths against the query graph, split mandatory/optional,
    and build the rewritten query.  Exposed so {!Perso_cache}'s
    incremental path can rebuild an outcome from a patched [P_K]
    without re-running preference selection; given equal [selected],
    the resulting [personalized] query is byte-identical to a cold
    {!personalize} run. *)

val personalize :
  ?params:params ->
  ?related:(Path.t -> bool) ->
  ?gov:Relal.Governor.t ->
  Relal.Database.t ->
  Profile.t ->
  Relal.Sql_ast.query ->
  outcome
(** Bind the query, run preference selection against the profile's
    personalization graph, and integrate.  The input query must be a
    conjunctive SPJ query ({!Qgraph.Not_conjunctive} otherwise).
    [related] is the selection algorithm's relatedness filter — pass
    [Semantic.instance_related db qg] for semantic-level selection (the
    facade builds the query graph itself, so the curried form
    [fun p -> Semantic.instance_related db (Qgraph.of_query db q) p]
    with a pre-bound [q] is the usual shape).  [gov] meters the
    best-first selection loop; @raise Relal.Governor.Exhausted when its
    budget runs out. *)

val execute :
  ?strategy:[ `Auto | `Naive | `Cost ] ->
  ?gov:Relal.Governor.t ->
  Relal.Database.t ->
  outcome ->
  Relal.Exec.result
(** Run the personalized query.  With [rank = true] the result carries a
    final [doi] column and rows arrive most-interesting first.  [gov]
    meters execution (see {!Relal.Exec.run}). *)

val personalize_sql :
  ?params:params ->
  Relal.Database.t ->
  Profile.t ->
  string ->
  outcome * Relal.Exec.result
(** Convenience: parse SQL text, personalize, execute. *)

(** {1 Resilient entry points}

    The raising API above fails on the first problem.  The [_r] variants
    instead walk a degradation ladder: full personalization, then halved
    K/L, then the plain unpersonalized query — recording each step taken
    and why — and return a typed {!Error.t} only when even the plain
    query cannot run (or the failure is one degradation cannot fix, such
    as a parse or storage error).  Transient injected faults
    ({!Relal.Chaos}) are retried with bounded backoff at every rung. *)

type degradation =
  | Reduced of { params : params; cause : Error.t }
      (** retried with these weaker parameters because of [cause] *)
  | Unpersonalized of { cause : Error.t }
      (** personalization abandoned; the original query ran plain *)

type run = {
  outcome : outcome option;
      (** [None] when the answer is unpersonalized *)
  result : Relal.Exec.result;
  degradations : degradation list;  (** ladder steps, in order taken *)
}

val halve_params : params -> params
(** One rung down: Top-K halves (min 1), degree thresholds move halfway
    towards 1, the L requirement weakens by half. *)

val personalize_r_with :
  ?params:params ->
  ?budget:Relal.Governor.budget ->
  compute:(params:params -> gov:Relal.Governor.t option -> outcome) ->
  Relal.Database.t ->
  Relal.Sql_ast.query ->
  (run, Error.t) result
(** The degradation ladder generalized over how an outcome is produced:
    [compute] is invoked once per rung with that rung's parameters and
    governor (it may raise; raises are classified and degraded exactly
    as in {!personalize_r}), and the final unpersonalized rung runs [q]
    plain against [db].  This is how {!Perso_cache} reuses the ladder —
    consulting the cache on the full-strength rung — without a
    dependency cycle.  Never raises. *)

val personalize_r :
  ?params:params ->
  ?budget:Relal.Governor.budget ->
  ?related:(Path.t -> bool) ->
  Relal.Database.t ->
  Profile.t ->
  Relal.Sql_ast.query ->
  (run, Error.t) result
(** Personalize and execute under [budget] (each ladder rung gets a
    fresh governor), degrading instead of failing where possible.
    Never raises. *)

val personalize_sql_r :
  ?params:params ->
  ?budget:Relal.Governor.budget ->
  ?related:(Path.t -> bool) ->
  Relal.Database.t ->
  Profile.t ->
  string ->
  (run, Error.t) result
(** {!personalize_r} on SQL text; parse and bind failures are typed
    errors, not exceptions. *)

val degradation_to_string : degradation -> string
(** One-line human description, e.g. ["reduced personalization (K: top
    2, L: 0) after resource exhausted: ..."]. *)

val top_n :
  ?strategy:[ `Auto | `Naive | `Cost ] ->
  n:int ->
  Relal.Database.t ->
  outcome ->
  Relal.Exec.result
(** Top-N delivery in order of estimated degree of interest (§8 future
    work): execute and keep the [n] highest-ranked rows.  Requires an
    outcome produced with [rank = true]. *)

(** Context-driven parameter policies (§4): "if the user sends a request
    using her mobile phone, then the system may decide to consider a few
    top preferences; when the user switches to her computer, then the
    system may decide to consider all her preferences." *)
module Context : sig
  type device = Mobile | Desktop | Voice

  type t = {
    device : device;
    latency_budget_ms : float option;
        (** tighter budgets mean fewer preferences *)
  }

  val params_for : t -> params
  (** Mobile: top 3, L ≥ 1; Desktop: top 10, L ≥ 1; Voice: top 2 with
      min-degree 0.5 (short, high-confidence answers).  A latency budget
      under 50 ms halves K. *)
end
