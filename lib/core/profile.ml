module AMap = Map.Make (struct
  type t = Atom.t

  let compare = Atom.compare
end)

type t = Degree.t AMap.t

let empty = AMap.empty

let check_degree atom d =
  if Degree.equal d Degree.zero then
    invalid_arg
      ("Profile: zero-valued preference not storable: " ^ Atom.to_string atom)

let add t atom d =
  check_degree atom d;
  AMap.add atom d t

let of_list l =
  List.fold_left
    (fun acc (a, d) ->
      if AMap.mem a acc then
        invalid_arg ("Profile.of_list: duplicate atom " ^ Atom.to_string a);
      check_degree a d;
      AMap.add a d acc)
    AMap.empty l

let remove t atom = AMap.remove atom t
let find t atom = AMap.find_opt atom t

let entries t =
  AMap.bindings t
  |> List.sort (fun (a1, d1) (a2, d2) ->
         match Degree.compare_desc d1 d2 with
         | 0 -> Atom.compare a1 a2
         | c -> c)

let selections t =
  List.filter_map
    (function Atom.Sel s, d -> Some (s, d) | _ -> None)
    (entries t)

let joins t =
  List.filter_map (function Atom.Join j, d -> Some (j, d) | _ -> None) (entries t)

let equal = AMap.equal Degree.equal
let size t = List.length (selections t)
let cardinal t = AMap.cardinal t
let union a b = AMap.union (fun _ _ db -> Some db) a b

let validate db t =
  let errs =
    AMap.fold
      (fun a _ acc ->
        match Atom.validate db a with Ok () -> acc | Error e -> e :: acc)
      t []
  in
  if errs = [] then Ok () else Error (List.rev errs)

let entry_to_string (a, d) =
  Printf.sprintf "[ %s, %s ]" (Atom.to_string a) (Degree.to_string d)

let to_string t = String.concat "\n" (List.map entry_to_string (entries t)) ^ "\n"

let parse_line line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then Ok None
  else if String.length line < 2 || line.[0] <> '[' || line.[String.length line - 1] <> ']'
  then Error (Printf.sprintf "expected [ condition, degree ]: %S" line)
  else begin
    let body = String.sub line 1 (String.length line - 2) in
    (* Split at the last comma: the condition may itself contain commas
       only inside string literals, but splitting at the last comma is
       robust because the degree is a bare number. *)
    match String.rindex_opt body ',' with
    | None -> Error (Printf.sprintf "missing degree: %S" line)
    | Some i -> (
        let cond = String.trim (String.sub body 0 i) in
        let deg = String.trim (String.sub body (i + 1) (String.length body - i - 1)) in
        match float_of_string_opt deg with
        | None -> Error (Printf.sprintf "bad degree %S in %S" deg line)
        | Some f -> (
            match Degree.of_float_opt f with
            | None -> Error (Printf.sprintf "degree %g out of [0,1] in %S" f line)
            | Some d -> (
                match Relal.Sql_parser.parse_pred cond with
                | exception Relal.Sql_parser.Parse_error e ->
                    Error (Printf.sprintf "bad condition in %S: %s" line e)
                | exception Relal.Sql_lexer.Lex_error (e, _) ->
                    Error (Printf.sprintf "bad condition in %S: %s" line e)
                | p -> (
                    match Atom.of_pred p with
                    | Ok a -> Ok (Some (a, d))
                    | Error e -> Error (Printf.sprintf "in %S: %s" line e)))))
  end

let of_string s =
  let lines = String.split_on_char '\n' s in
  let rec go acc n = function
    | [] -> Ok acc
    | line :: rest -> (
        match parse_line line with
        | Error e -> Error (Printf.sprintf "line %d: %s" n e)
        | Ok None -> go acc (n + 1) rest
        | Ok (Some (a, d)) ->
            if Degree.equal d Degree.zero then
              Error (Printf.sprintf "line %d: zero-valued preference" n)
            else go (AMap.add a d acc) (n + 1) rest)
  in
  go AMap.empty 1 lines

let load path =
  Relal.Chaos.point Relal.Chaos.Profile_load;
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error e -> Error e
  | contents -> of_string contents

let save path t = Out_channel.with_open_text path (fun oc -> output_string oc (to_string t))

let pp fmt t = Format.pp_print_string fmt (to_string t)
