type stats = {
  mutable pops : int;
  mutable pushes : int;
  mutable expansions : int;
  mutable discarded_conflicts : int;
  mutable discarded_cycles : int;
  mutable max_queue : int;
}

let fresh_stats () =
  {
    pops = 0;
    pushes = 0;
    expansions = 0;
    discarded_conflicts = 0;
    discarded_cycles = 0;
    max_queue = 0;
  }

(* Build the extension of [path] by one atomic element, applying pruning
   rules (i) and (ii).  Returns None when pruned. *)
let try_extend db qg st path (atom, d) =
  match atom with
  | Atom.Sel s -> (
      match Path.extend_sel path s d with
      | Error _ -> None
      | Ok p ->
          if Conflict.conflicts_with_query db qg p then begin
            st.discarded_conflicts <- st.discarded_conflicts + 1;
            None
          end
          else Some p)
  | Atom.Join j ->
      if Qgraph.mem_relation qg j.Atom.j_to_rel then begin
        (* Rule (i): expanding back into the query graph is a cycle. *)
        st.discarded_cycles <- st.discarded_cycles + 1;
        None
      end
      else begin
        match Path.extend_join path j d with
        | Error _ ->
            (* Covers both non-composability and path-internal cycles. *)
            st.discarded_cycles <- st.discarded_cycles + 1;
            None
        | Ok p -> Some p
      end

let select ?stats ?gov ?(related = fun _ -> true) db g qg ci =
  (* A discarded per-call record, not a module-level one: a shared
     [no_stats] silently accumulated counts across every stats-less call,
     so any later reader saw garbage totals. *)
  let st = match stats with Some s -> s | None -> fresh_stats () in
  let g_poll () =
    match gov with None -> () | Some g -> Relal.Governor.poll g
  in
  let g_expand () =
    match gov with None -> () | Some g -> Relal.Governor.add_expansion g
  in
  let qp : Path.t Putil.Pqueue.t = Putil.Pqueue.create () in
  let push p =
    Putil.Pqueue.push qp (Degree.to_float p.Path.degree) p;
    st.pushes <- st.pushes + 1;
    st.max_queue <- max st.max_queue (Putil.Pqueue.length qp)
  in
  (* Step 1: seed with the atomic elements adjacent to the query graph. *)
  List.iter
    (fun (tv, rel) ->
      let anchor = Path.start ~anchor_tv:tv ~anchor_rel:rel in
      List.iter
        (fun edge ->
          match try_extend db qg st anchor edge with
          | Some p -> push p
          | None -> ())
        (Pgraph.out_edges g rel))
    (Qgraph.tvs qg);
  (* Step 2: best-first loop. *)
  let selected = ref [] in
  let degrees = ref [] (* decreasing; kept reversed for O(1) append *) in
  let current () = List.rev !degrees in
  let stop = ref false in
  while (not !stop) && not (Putil.Pqueue.is_empty qp) do
    match Putil.Pqueue.pop qp with
    | None -> stop := true
    | Some (_, p) ->
        g_poll ();
        st.pops <- st.pops + 1;
        if Path.is_selection p then begin
          if Criteria.accepts ci ~current:(current ()) p.Path.degree then begin
            if related p then begin
              selected := p :: !selected;
              degrees := p.Path.degree :: !degrees
            end
          end
          else stop := true
        end
        else if Criteria.accepts ci ~current:(current ()) p.Path.degree then begin
          g_expand ();
          st.expansions <- st.expansions + 1;
          (* Expand with composable elements in decreasing degree order;
             rule (iv) stops at the first failing extension — but only
             for criteria whose expansion-time rejection is permanent
             (see Criteria.expansion_prunable); otherwise every valid
             extension is queued and judged at pop time. *)
          let prune = Criteria.expansion_prunable ci in
          let edges = Pgraph.out_edges g (Path.end_rel p) in
          (try
             List.iter
               (fun (atom, d) ->
                 (if prune then begin
                    let ext_degree =
                      Degree.trans2 p.Path.degree d |> Degree.to_float
                    in
                    if
                      not
                        (Criteria.accepts ci ~current:(current ())
                           (Degree.of_float ext_degree))
                    then raise Exit
                  end);
                 match try_extend db qg st p (atom, d) with
                 | Some p' -> push p'
                 | None -> ())
               edges
           with Exit -> ())
        end
        else stop := true
  done;
  List.rev !selected
