(** Cheap structural byte estimate for cached personalization outcomes.

    Replaces the plan cache's [Obj.reachable_words] accounting (exact
    but a generic heap walk, ~20% of a patched consult) with a typed
    constructor-priced walk over the outcome.  Sharing-naive by design;
    calibrated to stay within 2× of the exact measure on representative
    outcomes (pinned by the unit test in [test_cache.ml]). *)

val entry_bytes : key:string -> Profile.t -> Personalize.outcome -> int
(** Estimated heap bytes of one cache entry: the key string, the
    profile it was computed against, and the personalization outcome
    (selected paths, instantiated-preference handles, the personalized
    query AST, selection stats). *)

val outcome_words : key:string -> Profile.t -> Personalize.outcome -> int
(** Same estimate in 64-bit words. *)
