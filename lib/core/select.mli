(** The Preference Selection algorithm (§5.2, Figure 5).

    Best-first traversal of the personalization graph: a queue of
    candidate paths ordered by decreasing degree of interest (FIFO among
    ties, favouring shorter paths) is seeded with the atomic elements
    adjacent to the query graph; join paths are expanded outward, and
    selection paths are emitted while the interest criterion keeps
    holding.  Pruning follows the paper exactly:

    (i) a candidate expanding into a relation already on its path, or
    into a relation of the query, is a cycle — dropped;
    (ii) candidates conflicting with the query are dropped;
    (iii) semantic relatedness is a client-supplied filter (the prototype,
    like the paper's, works at the syntactic level — pass [?related]);
    (iv) expansion of a join stops at the first composable element whose
    extension fails the criterion (elements are consumed in decreasing
    degree order, so the rest must fail too).

    Theorem 1 (emission in decreasing degree order) and Theorem 2
    (completeness w.r.t. the criterion) hold for prefix-monotone criteria
    and are verified in the test suite against {!Brute}. *)

type stats = {
  mutable pops : int;  (** queue removals *)
  mutable pushes : int;  (** queue insertions (selections + joins) *)
  mutable expansions : int;  (** join paths expanded *)
  mutable discarded_conflicts : int;
  mutable discarded_cycles : int;
  mutable max_queue : int;
}

val fresh_stats : unit -> stats

val select :
  ?stats:stats ->
  ?gov:Relal.Governor.t ->
  ?related:(Path.t -> bool) ->
  Relal.Database.t ->
  Pgraph.t ->
  Qgraph.t ->
  Criteria.t ->
  Path.t list
(** [select db g qg ci] returns the set [P_K] of transitive selections
    related to (and not conflicting with) the query, in decreasing order
    of degree of interest, cut off by the criterion.  [?related] further
    restricts output (e.g. a semantic-level filter); it defaults to
    accepting every syntactically related path.  [?gov] charges one unit
    per frontier expansion and polls the deadline per pop.
    @raise Relal.Governor.Exhausted when the armed budget runs out. *)
