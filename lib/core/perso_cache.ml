open Relal

type locker = { with_lock : 'a. (unit -> 'a) -> 'a }

let no_lock = { with_lock = (fun f -> f ()) }

type source = Hit | Incremental | Miss | Bypass

type stats = {
  hits : int;
  incremental : int;
  misses : int;
  bypasses : int;
  evictions : int;
  invalidations : int;
  entries : int;
  bytes : int;
}

(* Entries form a doubly-linked LRU list (head = most recently used)
   indexed by the hashtable.  A stale entry (revision behind the user's
   current one) is not dropped on invalidation: it stays as the donor
   for incremental re-personalization and is replaced in place by the
   next store under its key. *)
type entry = {
  key : string;
  e_user : string;
  mutable e_rev : int;
  mutable e_profile : Profile.t;
  mutable e_outcome : Personalize.outcome;
  mutable e_bytes : int;
  mutable prev : entry option;
  mutable next : entry option;
}

type t = {
  db : Database.t;  (* the query database personalization runs against *)
  store_db : Database.t;
      (* where profiles/revisions live — the same as [db] except for a
         sharded server, whose per-shard caches bind revision tracking
         to their shard's store *)
  lock : locker;
  max_entries : int;
  max_bytes : int;
  incremental_on : bool;
  tbl : (string, entry) Hashtbl.t;
  mutable head : entry option;
  mutable tail : entry option;
  mutable c_hits : int;
  mutable c_inc : int;
  mutable c_miss : int;
  mutable c_byp : int;
  mutable c_evict : int;
  mutable c_inval : int;
  mutable c_bytes : int;
}

(* ------------------------------ LRU list ---------------------------- *)

let unlink t e =
  (match e.prev with Some p -> p.next <- e.next | None -> t.head <- e.next);
  (match e.next with Some n -> n.prev <- e.prev | None -> t.tail <- e.prev);
  e.prev <- None;
  e.next <- None

let push_front t e =
  e.next <- t.head;
  (match t.head with Some h -> h.prev <- Some e | None -> t.tail <- Some e);
  t.head <- Some e

let touch t e =
  match t.head with
  | Some h when h == e -> ()
  | _ ->
      unlink t e;
      push_front t e

let drop t e =
  unlink t e;
  Hashtbl.remove t.tbl e.key;
  t.c_bytes <- t.c_bytes - e.e_bytes

(* Byte accounting: a typed structural estimate ([Size_est]) — the
   exact [Obj.reachable_words] walk was ~20% of a patched consult. *)
let measure key profile outcome = Size_est.entry_bytes ~key profile outcome

let rec enforce t =
  if Hashtbl.length t.tbl > t.max_entries || t.c_bytes > t.max_bytes then
    match t.tail with
    | None -> ()
    | Some e ->
        drop t e;
        t.c_evict <- t.c_evict + 1;
        enforce t

let store t ~key ~user ~rev profile outcome =
  (match Hashtbl.find_opt t.tbl key with
  | Some e ->
      t.c_bytes <- t.c_bytes - e.e_bytes;
      e.e_rev <- rev;
      e.e_profile <- profile;
      e.e_outcome <- outcome;
      e.e_bytes <- measure key profile outcome;
      t.c_bytes <- t.c_bytes + e.e_bytes;
      touch t e
  | None ->
      let e =
        {
          key;
          e_user = user;
          e_rev = rev;
          e_profile = profile;
          e_outcome = outcome;
          e_bytes = measure key profile outcome;
          prev = None;
          next = None;
        }
      in
      Hashtbl.replace t.tbl key e;
      push_front t e;
      t.c_bytes <- t.c_bytes + e.e_bytes);
  enforce t

let entries_of t user =
  Hashtbl.fold (fun _ e acc -> if e.e_user = user then e :: acc else acc) t.tbl []

(* A mutation makes the user's previously-fresh entries stale; count
   those as invalidations exactly once (an entry already stale from an
   earlier revision was counted then).  Saved keeps them as patch
   donors; Deleted drops them — an empty profile personalizes trivially
   and patching towards it is pointless. *)
let on_event t ~user event =
  t.lock.with_lock (fun () ->
      let rev = Profile_store.revision t.store_db ~user in
      let mine = entries_of t user in
      let was_fresh = List.filter (fun e -> e.e_rev = rev - 1) mine in
      t.c_inval <- t.c_inval + List.length was_fresh;
      match event with
      | Profile_store.Saved -> ()
      | Profile_store.Deleted -> List.iter (drop t) mine)

let create ?(lock = no_lock) ?(max_entries = 512)
    ?(max_bytes = 32 * 1024 * 1024) ?(incremental = true) ?store_db db =
  let store_db = Option.value store_db ~default:db in
  let t =
    {
      db;
      store_db;
      lock;
      max_entries = max 1 max_entries;
      max_bytes = max 0 max_bytes;
      incremental_on = incremental;
      tbl = Hashtbl.create 64;
      head = None;
      tail = None;
      c_hits = 0;
      c_inc = 0;
      c_miss = 0;
      c_byp = 0;
      c_evict = 0;
      c_inval = 0;
      c_bytes = 0;
    }
  in
  Profile_store.subscribe store_db (fun ~user event -> on_event t ~user event);
  t

(* ------------------------------ keys -------------------------------- *)

(* Parameter fingerprint: injective per field ([%h] renders floats
   exactly), so distinct parameter sets never share cached plans. *)
let params_fp (p : Personalize.params) =
  String.concat "|"
    [
      (match p.k with
      | Criteria.Top_r r -> "top#" ^ string_of_int r
      | Criteria.Above d -> Printf.sprintf "above%h" (Degree.to_float d)
      | Criteria.Disj_above d -> Printf.sprintf "disj%h" (Degree.to_float d)
      | Criteria.Conj_above d -> Printf.sprintf "conj%h" (Degree.to_float d));
      (match p.m with
      | `Count n -> "m#" ^ string_of_int n
      | `Min_degree d -> Printf.sprintf "m%h" d);
      (match p.l with
      | `At_least n -> "l#" ^ string_of_int n
      | `Min_doi d -> Printf.sprintf "l%h" d);
      (match p.method_ with `SQ -> "sq" | `MQ -> "mq");
      (if p.rank then "rank" else "norank");
    ]

(* --------------------- incremental re-personalization ---------------

   Patch rules for a single atomic-selection diff against the donor
   snapshot, each applied only when the result is provably the same
   path list a cold run would select.  Notation: [selected] is the
   donor's P_K, [full] means it reached the Top-K cutoff (so unknown
   candidates may hide beyond the frontier), [has_sel s] means one of
   its paths ends in selection [s].

   - remove s, s unselected: P_K unchanged — s's paths were all below
     the cutoff and removing a selection leaves every other path's
     degree alone (selections terminate paths; only s-paths contain s).
   - remove s, selected, not full: the donor emitted {e every} related
     path, so dropping s's paths is complete — nothing was hidden.
   - remove s, selected, full: cold — the freed slots admit paths
     beyond the old frontier that the donor never materialized.
   - retune s, selected, not full: no graph search at all.  Not full
     means the donor emitted {e every} related path, so s's paths are
     exactly the donor's s-paths; rebuild each with the new selection
     degree ({e rescaling} — join degrees are untouched and
     [Path.extend_*] recomputes the product along the same
     multiplication sequence, so degrees are bit-identical to a cold
     run's).  Rescaling can reorder, so re-sort the rescaled paths by
     decreasing degree (stable, preserving the donor's relative order)
     and merge into the non-s paths.  Any degree tie — among the
     rescaled paths or against an old one — bails to cold: FIFO order
     across lists is unknowable without a joint run.
   - add/retune s otherwise: recompute s's paths with a {e restricted}
     selection over a graph that keeps every join edge (so join-path
     expansion order — and hence FIFO tie order among s-paths — matches
     what a joint run would do) but only selection [s]; then merge by
     decreasing degree into the donor's non-s paths and cut at K.
     Sound unless s was selected while full (same hidden-frontier
     problem as removal), or some new path ties an old one in degree —
     cross-list FIFO order is unknowable without a joint run, so ties
     bail to cold.  A joint run's s-paths are always a prefix of the
     restricted run's emission (both emit s-paths in the same relative
     order and the joint cutoff only truncates), so merging and cutting
     reconstructs the joint P_K exactly.

   The rebuilt outcome re-runs integration ({!Personalize.
   integrate_selected}) on the patched path list — integration is the
   cheap phase (paper Fig. 8); the graph traversal is what's skipped. *)

let sel_matches s p =
  match Path.selection p with Some (s', _) -> s' = s | None -> false

let has_sel selected s = List.exists (sel_matches s) selected
let drop_sel selected s = List.filter (fun p -> not (sel_matches s p)) selected
let take k l = List.filteri (fun i _ -> i < k) l

type pdiff =
  | D_same
  | D_sel_removed of Atom.selection
  | D_sel_changed of Atom.selection * Degree.t  (** added or retuned *)
  | D_other

let diff donor current =
  let change = ref None and many = ref false in
  let note c =
    match !change with None -> change := Some c | Some _ -> many := true
  in
  List.iter
    (fun (a, d_old) ->
      match Profile.find current a with
      | None -> note (`Rem a)
      | Some d_new when not (Degree.equal d_old d_new) -> note (`Chg (a, d_new))
      | Some _ -> ())
    (Profile.entries donor);
  List.iter
    (fun (a, d_new) ->
      match Profile.find donor a with
      | None -> note (`Chg (a, d_new))
      | Some _ -> ())
    (Profile.entries current);
  if !many then D_other
  else
    match !change with
    | None -> D_same
    | Some (`Rem (Atom.Sel s)) -> D_sel_removed s
    | Some (`Chg (Atom.Sel s, d)) -> D_sel_changed (s, d)
    | Some (`Rem (Atom.Join _) | `Chg (Atom.Join _, _)) -> D_other

let restricted_select t ?gov ~qg ~k profile s d =
  let base =
    List.fold_left
      (fun acc (j, jd) -> Profile.add acc (Atom.Join j) jd)
      Profile.empty (Profile.joins profile)
  in
  let pf = Profile.add base (Atom.Sel s) d in
  Select.select ?gov t.db (Pgraph.of_profile pf) qg (Criteria.top_r k)

let cross_tie news olds =
  List.exists
    (fun np ->
      List.exists (fun op -> Degree.equal np.Path.degree op.Path.degree) olds)
    news

let rec internal_tie = function
  | [] | [ _ ] -> false
  | p :: rest ->
      List.exists (fun q -> Degree.equal p.Path.degree q.Path.degree) rest
      || internal_tie rest

(* Rebuild a donor s-path with the retuned selection degree.  Join
   degrees are carried over verbatim and the path is re-extended in the
   same order, so the resulting degree goes through the exact
   multiplication sequence a cold run would. *)
let rescale_path p s d =
  let open Path in
  let base = start ~anchor_tv:p.anchor_tv ~anchor_rel:p.anchor_rel in
  let joined =
    List.fold_left
      (fun acc (j, jd) ->
        match acc with
        | Error _ as e -> e
        | Ok q -> extend_join q j jd)
      (Ok base) p.joins
  in
  match joined with
  | Error _ -> None
  | Ok q -> ( match extend_sel q s d with Ok q' -> Some q' | Error _ -> None)

(* Merge two decreasing path lists with no cross ties, preserving each
   list's internal (FIFO) order: the joint emission order. *)
let rec merge_desc news olds =
  match (news, olds) with
  | [], l | l, [] -> l
  | n :: ns, o :: os ->
      if Degree.compare_desc n.Path.degree o.Path.degree < 0 then
        n :: merge_desc ns olds
      else o :: merge_desc news os

let try_patch t ?gov ~params ~qg ~donor_profile ~donor_outcome profile =
  if not t.incremental_on then None
  else
    match (params.Personalize.k : Criteria.t) with
    | Above _ | Disj_above _ | Conj_above _ -> None
    | Top_r k when k <= 0 -> None
    | Top_r k -> (
        let selected = donor_outcome.Personalize.selected in
        let full = List.length selected >= k in
        let rebuild selected' =
          Some
            (Personalize.integrate_selected ~params t.db qg
               ~stats:(Select.fresh_stats ()) selected')
        in
        let splice s d =
          if has_sel selected s then
            if full then None
            else
              let olds = drop_sel selected s in
              (* Not full: the donor holds every s-path — rescale them
                 in place of a restricted re-expansion. *)
              let rescaled =
                List.filter_map
                  (fun p ->
                    if sel_matches s p then rescale_path p s d else None)
                  selected
              in
              if
                List.length rescaled
                <> List.length selected - List.length olds
              then None
              else
                let news =
                  List.stable_sort
                    (fun a b ->
                      Degree.compare_desc a.Path.degree b.Path.degree)
                    rescaled
                in
                if internal_tie news || cross_tie news olds then None
                else rebuild (take k (merge_desc news olds))
          else if
            (* Retune of an unselected preference on a not-full donor:
               the emission was complete, so s provably has no related
               paths and its degree cannot matter. *)
            (not full) && Profile.find donor_profile (Atom.Sel s) <> None
          then Some donor_outcome
          else
            let news = restricted_select t ?gov ~qg ~k profile s d in
            if news = [] then Some donor_outcome
            else if cross_tie news selected then None
            else rebuild (take k (merge_desc news selected))
        in
        match diff donor_profile profile with
        | D_same -> Some donor_outcome
        | D_other -> None
        | D_sel_removed s ->
            if not (has_sel selected s) then Some donor_outcome
            else if full then None
            else rebuild (drop_sel selected s)
        | D_sel_changed (s, d) -> splice s d)

(* ------------------------------ lookup ------------------------------ *)

let personalize t ?(params = Personalize.default_params) ?gov ~user ?revision
    profile q =
  let user = String.lowercase_ascii user in
  let bound = Binder.bind t.db q in
  let qg = Qgraph.of_query t.db bound in
  let key =
    String.concat "\x01" [ user; params_fp params; Sql_print.query_to_key bound ]
  in
  let rev =
    match revision with
    | Some r -> r
    | None -> Profile_store.revision t.store_db ~user
  in
  let state =
    t.lock.with_lock (fun () ->
        match Hashtbl.find_opt t.tbl key with
        | Some e when e.e_rev = rev ->
            t.c_hits <- t.c_hits + 1;
            touch t e;
            `Fresh e.e_outcome
        | Some e -> `Stale (e.e_profile, e.e_outcome)
        | None -> `Cold)
  in
  match state with
  | `Fresh outcome -> (outcome, Hit)
  | (`Stale _ | `Cold) as state ->
      (* Compute outside the lock; a racing computation for the same key
         just overwrites with an identical outcome. *)
      let patched =
        match state with
        | `Stale (donor_profile, donor_outcome) ->
            try_patch t ?gov ~params ~qg ~donor_profile ~donor_outcome profile
        | `Cold -> None
      in
      let outcome, src =
        match patched with
        | Some o -> (o, Incremental)
        | None ->
            let stats = Select.fresh_stats () in
            let selected =
              Select.select ~stats ?gov t.db (Pgraph.of_profile profile) qg
                params.Personalize.k
            in
            (Personalize.integrate_selected ~params t.db qg ~stats selected, Miss)
      in
      t.lock.with_lock (fun () ->
          (match src with
          | Incremental -> t.c_inc <- t.c_inc + 1
          | _ -> t.c_miss <- t.c_miss + 1);
          store t ~key ~user ~rev profile outcome);
      (outcome, src)

let personalize_sql_r ?cache ?user ?revision ?params ?budget ?related db
    profile sql =
  let result, src =
    match (cache, user, related) with
    | Some t, Some u, None when t.db == db -> (
        match Sql_parser.parse sql with
        | exception e -> (Error (Error.of_exn_any e), Bypass)
        | q ->
            let params0 =
              Option.value params ~default:Personalize.default_params
            in
            let src = ref Bypass in
            (* Consult the cache on the full-strength rung only; degraded
               rungs always compute cold (their reduced parameters are
               transient) and reset the source so a degraded reply is
               never reported as cache-served. *)
            let compute ~params:ps ~gov =
              if ps = params0 then (
                let o, s = personalize t ~params:ps ?gov ~user:u ?revision profile q in
                src := s;
                o)
              else (
                src := Bypass;
                Personalize.personalize ~params:ps ?gov db profile q)
            in
            let r = Personalize.personalize_r_with ?params ?budget ~compute db q in
            (r, !src))
    | _ -> (Personalize.personalize_sql_r ?params ?budget ?related db profile sql, Bypass)
  in
  (match (src, cache) with
  | Bypass, Some t -> t.lock.with_lock (fun () -> t.c_byp <- t.c_byp + 1)
  | _ -> ());
  (result, src)

(* ---------------------------- maintenance --------------------------- *)

let stats t =
  t.lock.with_lock (fun () ->
      {
        hits = t.c_hits;
        incremental = t.c_inc;
        misses = t.c_miss;
        bypasses = t.c_byp;
        evictions = t.c_evict;
        invalidations = t.c_inval;
        entries = Hashtbl.length t.tbl;
        bytes = t.c_bytes;
      })

let invalidate_user t ~user =
  let user = String.lowercase_ascii user in
  t.lock.with_lock (fun () ->
      let rev = Profile_store.revision t.store_db ~user in
      let mine = entries_of t user in
      let fresh = List.filter (fun e -> e.e_rev = rev) mine in
      t.c_inval <- t.c_inval + List.length fresh;
      List.iter (drop t) mine;
      List.length mine)

let clear t =
  t.lock.with_lock (fun () ->
      let all = Hashtbl.fold (fun _ e acc -> e :: acc) t.tbl [] in
      List.iter
        (fun e ->
          if e.e_rev = Profile_store.revision t.store_db ~user:e.e_user then
            t.c_inval <- t.c_inval + 1;
          drop t e)
        all)
