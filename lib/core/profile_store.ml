open Relal

let table_name = "profiles"

let install db =
  if not (Database.mem_table db table_name) then
    Database.add_table db
      (Schema.make ~name:table_name
         ~cols:
           [
             ("username", Value.TStr); ("condition", Value.TStr);
             ("degree", Value.TFloat);
           ]
         ())

(* The table is append-only storage; user-level replace rewrites it.
   Cardinalities are small (profiles), so the rebuild is cheap.

   The rewrite is all-or-nothing: a fault between the clear and the last
   insert (the {!Chaos.Store_mutate} point is crossed once per row) rolls
   the table back to its pre-rewrite rows before re-raising, so a
   concurrent or subsequent [load] sees either the old or the new profile
   — never an empty or partial one.  The snapshot is safe to restore
   because [Table.clear] drops the backing batch rather than reusing its
   row arrays. *)
let rewrite db keep_rows =
  let t = Database.table db table_name in
  let before = Table.to_list t in
  Table.clear t;
  try
    List.iter
      (fun row ->
        Chaos.point Chaos.Store_mutate;
        Table.insert t row)
      keep_rows
  with e ->
    Table.clear t;
    List.iter (Table.insert t) before;
    raise e

let rows_except db user =
  match Database.find_table db table_name with
  | None -> []
  | Some t ->
      List.filter
        (fun row -> not (Value.equal row.(0) (Value.Str user)))
        (Table.to_list t)

let save db ~user profile =
  install db;
  let user = String.lowercase_ascii user in
  let others = rows_except db user in
  let mine =
    List.map
      (fun (atom, deg) ->
        [|
          Value.Str user;
          Value.Str (Atom.to_string atom);
          Value.Float (Degree.to_float deg);
        |])
      (Profile.entries profile)
  in
  rewrite db (others @ mine)

let load db ~user =
  Chaos.point Chaos.Profile_load;
  let user = String.lowercase_ascii user in
  match Database.find_table db table_name with
  | None -> Ok Profile.empty
  | Some t ->
      let errors = ref [] in
      let profile = ref Profile.empty in
      Table.iter t (fun row ->
          if Value.equal row.(0) (Value.Str user) then begin
            match (row.(1), row.(2)) with
            | Value.Str cond, Value.Float deg -> (
                match
                  ( Atom.of_pred (Sql_parser.parse_pred cond),
                    Degree.of_float_opt deg )
                with
                | Ok atom, Some d when not (Degree.equal d Degree.zero) ->
                    profile := Profile.add !profile atom d
                | Ok _, _ ->
                    errors := Printf.sprintf "bad degree %g for %s" deg cond :: !errors
                | Error e, _ -> errors := e :: !errors
                | exception Sql_parser.Parse_error e ->
                    errors := Printf.sprintf "%s: %s" cond e :: !errors
                | exception Sql_lexer.Lex_error (e, _) ->
                    errors := Printf.sprintf "%s: %s" cond e :: !errors)
            | _ -> errors := "malformed profile row" :: !errors
          end);
      if !errors = [] then Ok !profile else Error (List.rev !errors)

let load_r db ~user =
  match Error.guard (fun () -> load db ~user) with
  | Error e -> Error e
  | Ok (Ok p) -> Ok p
  | Ok (Error errs) -> Error (Error.Profile (String.concat "; " errs))

let users db =
  match Database.find_table db table_name with
  | None -> []
  | Some t ->
      Table.fold t ~init:[] ~f:(fun acc row ->
          match row.(0) with Value.Str u -> u :: acc | _ -> acc)
      |> List.sort_uniq String.compare

let delete db ~user =
  let user = String.lowercase_ascii user in
  if Database.mem_table db table_name then rewrite db (rows_except db user)
